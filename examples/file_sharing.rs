//! A file-sharing workload — the application the paper's introduction
//! motivates (Napster/Gnutella-class systems).
//!
//! A catalogue of files is published into the DHT (each file key is the
//! SHA-1 of its name, stored at the key's successor, as in CFS/PAST).
//! Peers then fetch files with Zipf-like popularity. We measure what a
//! *user* sees: per-fetch lookup latency, for Chord vs HIERAS over the
//! identical network.
//!
//! ```text
//! cargo run --release --example file_sharing
//! ```

use hieras::prelude::*;
use hieras::rt::Rng;

const CATALOGUE: usize = 5_000;
const FETCHES: usize = 30_000;

fn main() {
    let e = Experiment::build(ExperimentConfig {
        kind: TopologyKind::TransitStub,
        nodes: 600,
        requests: 0,
        hieras: hieras::core::HierasConfig::paper(),
        seed: 7,
        rtt_noise: 0.0,
    });
    println!("600-peer swarm, {CATALOGUE} published files, {FETCHES} fetches (Zipf popularity)\n");

    // Publish: file name -> key -> owning node.
    let keys: Vec<Id> =
        (0..CATALOGUE).map(|i| Id::hash_of(format!("file-{i}.bin").as_bytes())).collect();
    // Per-file popularity ~ Zipf(1.0): rank r gets weight 1/r.
    let weights: Vec<f64> = (1..=CATALOGUE).map(|r| 1.0 / r as f64).collect();
    let total: f64 = weights.iter().sum();

    let mut rng = Rng::seed_from_u64(99);
    let mut chord_ms = 0u64;
    let mut hieras_ms = 0u64;
    let mut chord_hops = 0usize;
    let mut hieras_hops = 0usize;
    let mut worst_chord = 0u64;
    let mut worst_hieras = 0u64;
    for _ in 0..FETCHES {
        // Zipf draw.
        let mut pick = rng.random_range(0.0..total);
        let mut file = CATALOGUE - 1;
        for (i, w) in weights.iter().enumerate() {
            if pick < *w {
                file = i;
                break;
            }
            pick -= w;
        }
        let key = keys[file];
        let client = rng.random_range(0..600u32);

        let cp = e.chord.lookup(client, key);
        let mut cl = 0u64;
        for w in cp.path.windows(2) {
            cl += u64::from(e.peer_latency(w[0], w[1]));
        }
        let ht = e.hieras.route(client, key);
        let (hl, _) = ht.latency_split(|a, b| e.peer_latency(a, b));
        assert_eq!(cp.owner(), ht.destination(), "both systems agree on the file's home");

        chord_ms += cl;
        hieras_ms += hl;
        chord_hops += cp.hops();
        hieras_hops += ht.hop_count();
        worst_chord = worst_chord.max(cl);
        worst_hieras = worst_hieras.max(hl);
    }

    let f = FETCHES as f64;
    println!("| system | avg lookup ms | avg hops | worst lookup ms |");
    println!("|--------|--------------:|---------:|----------------:|");
    println!(
        "| Chord  | {:>13.1} | {:>8.3} | {:>15} |",
        chord_ms as f64 / f,
        chord_hops as f64 / f,
        worst_chord
    );
    println!(
        "| HIERAS | {:>13.1} | {:>8.3} | {:>15} |",
        hieras_ms as f64 / f,
        hieras_hops as f64 / f,
        worst_hieras
    );
    println!(
        "\nusers wait {:.1}% as long for file lookups under HIERAS.",
        hieras_ms as f64 / chord_ms as f64 * 100.0
    );
}
