//! Protocol walkthrough: the §3.3 join choreography, message by
//! message, plus the same node logic running on real threads.
//!
//! ```text
//! cargo run --release --example protocol_demo
//! ```

use hieras::core::HierasConfig;
use hieras::id::Id;
use hieras::prelude::*;
use hieras::proto::{SimNet, ThreadNet};

fn main() {
    // A 300-peer HIERAS system over a Transit-Stub internetwork.
    let e = Experiment::build(ExperimentConfig {
        kind: TopologyKind::TransitStub,
        nodes: 300,
        requests: 0,
        hieras: HierasConfig::paper(),
        seed: 3,
        rtt_noise: 0.0,
    });

    // --- Part 1: deterministic message-level simulation -------------
    // Link delays come from the underlay shortest paths.
    let ids = e.ids.clone();
    let idx = move |id: Id| ids.iter().position(|&i| i == id);
    let mut net = SimNet::from_oracle(&e.hieras, &e.landmarks, |a, b| {
        match (idx(a), idx(b)) {
            (Some(x), Some(y)) => u64::from(e.peer_latency(x as u32, y as u32)),
            _ => 25,
        }
    });
    println!("message-level network: {} nodes\n", net.len());

    // A lookup, counted in protocol messages.
    let key = Id::hash_of(b"some-content");
    let out = net.lookup(e.ids[0], key);
    println!(
        "lookup({key}) from node[0]: owner {}, {} hops, {} ms simulated",
        out.owner, out.hops, out.latency_ms
    );

    // The §3.3 join choreography.
    let newcomer = Id::hash_of(b"newcomer:198.51.100.7:9000");
    let before = net.stats().total;
    let join = net.join(newcomer, e.ids[42], &[12, 45, 130, 80]);
    println!("\njoin of {newcomer} through node[42]:");
    println!("  rings joined : {} (founded {})", join.rings_joined, join.rings_founded);
    println!("  messages     : {} ({} total in network)", join.messages, net.stats().total);
    println!("  simulated ms : {}", join.duration_ms);
    println!("  ring name    : \"{}\"", net.node(newcomer).unwrap().layer(2).ring_name);
    println!("  traffic by kind since start:");
    let mut kinds: Vec<_> = net.stats().by_kind.iter().collect();
    kinds.sort();
    for (k, v) in kinds {
        println!("    {k:<18} {v}");
    }
    let _ = before;

    // The newcomer is now resolvable.
    let probe = net.lookup(e.ids[0], newcomer);
    assert_eq!(probe.owner, newcomer);
    println!("  probe: node[0] resolves the newcomer in {} hops ✔", probe.hops);

    // --- Part 2: the same handler on real threads --------------------
    println!("\nspawning a 64-node threaded network (1 OS thread per node)…");
    let small = Experiment::build(ExperimentConfig {
        kind: TopologyKind::TransitStub,
        nodes: 64,
        requests: 0,
        hieras: HierasConfig::paper(),
        seed: 8,
        rtt_noise: 0.0,
    });
    let tnet = ThreadNet::spawn(&small.hieras, &small.landmarks);
    let mut agree = 0;
    for k in 0..50u64 {
        let key = Id::hash_of(format!("threaded-{k}").as_bytes());
        let src_idx = (k % 64) as u32;
        let (owner, hops) = tnet.lookup(small.ids[src_idx as usize], key, 2);
        let oracle_trace = small.hieras.route(src_idx, key);
        assert_eq!(owner, small.ids[oracle_trace.destination() as usize]);
        assert_eq!(hops as usize, oracle_trace.hop_count());
        agree += 1;
    }
    let processed = tnet.shutdown();
    println!("  50/{agree} threaded lookups identical to the oracle; {processed} frames processed ✔");
}
