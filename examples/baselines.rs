//! Baseline shoot-out: Chord vs Pastry (proximity tables) vs HIERAS vs
//! CAN vs hierarchical CAN, all over the same Transit-Stub internetwork
//! and the same workload.
//!
//! ```text
//! cargo run --release --example baselines
//! ```

use hieras::can::{CanOracle, HierCan};
use hieras::core::HierasConfig;
use hieras::pastry::PastryOracle;
use hieras::prelude::*;

const NODES: usize = 700;
const REQUESTS: usize = 10_000;

fn main() {
    let e = Experiment::build(ExperimentConfig {
        kind: TopologyKind::TransitStub,
        nodes: NODES,
        requests: REQUESTS,
        hieras: HierasConfig::paper(),
        seed: 17,
        rtt_noise: 0.0,
    });
    let pastry =
        PastryOracle::build(e.ids.clone(), |a, b| e.peer_latency(a, b)).expect("distinct ids");
    let can = CanOracle::build(NODES, 3, 17).expect("CAN builds");
    let hier_can = HierCan::build(&e.orders, 3, 17).expect("HierCan builds");
    let w = Workload::new(NODES as u32, REQUESTS, 4242);

    // Chord + HIERAS via the experiment replay.
    let r = e.run_requests(REQUESTS);
    let (c, h) = (r.chord.summary(), r.hieras.summary());

    // Pastry / CAN / HierCan measured over the same latency oracle.
    let (mut ph, mut pl) = (0u64, 0u64);
    let (mut nh, mut nl) = (0u64, 0u64);
    let (mut gh, mut gl) = (0u64, 0u64);
    for (src, key) in w.iter() {
        let p = pastry.route(src, key);
        ph += p.hops() as u64;
        for pair in p.path.windows(2) {
            pl += u64::from(e.peer_latency(pair[0], pair[1]));
        }
        let cr = can.route(src, key);
        nh += cr.hops() as u64;
        for pair in cr.path.windows(2) {
            nl += u64::from(e.peer_latency(pair[0], pair[1]));
        }
        let hops = hier_can.route(src, key);
        gh += hops.len() as u64;
        for hp in &hops {
            gl += u64::from(e.peer_latency(hp.from, hp.to));
        }
    }
    let q = REQUESTS as f64;

    println!("{NODES} peers, Transit-Stub model, {REQUESTS} uniform lookups\n");
    println!("| system | avg hops | avg latency ms | vs Chord |");
    println!("|--------|---------:|---------------:|---------:|");
    println!("| Chord | {:.3} | {:.1} | 100.0% |", c.avg_hops, c.avg_latency_ms);
    println!(
        "| HIERAS (2-layer, 4 landmarks) | {:.3} | {:.1} | {:.1}% |",
        h.avg_hops,
        h.avg_latency_ms,
        h.avg_latency_ms / c.avg_latency_ms * 100.0
    );
    println!(
        "| Pastry (proximity tables) | {:.3} | {:.1} | {:.1}% |",
        ph as f64 / q,
        pl as f64 / q,
        (pl as f64 / q) / c.avg_latency_ms * 100.0
    );
    println!(
        "| CAN (d=3) | {:.3} | {:.1} | {:.1}% |",
        nh as f64 / q,
        nl as f64 / q,
        (nl as f64 / q) / c.avg_latency_ms * 100.0
    );
    println!(
        "| HIERAS-CAN (2-layer) | {:.3} | {:.1} | {:.1}% |",
        gh as f64 / q,
        gl as f64 / q,
        (gl as f64 / q) / c.avg_latency_ms * 100.0
    );
    println!("\nNotes: Pastry and CAN resolve keys to their own notion of the key's home");
    println!("(numerically closest node / zone owner), so hop paths differ per system;");
    println!("each pays its full lookup cost on the same underlay, which is the fair");
    println!("comparison the HIERAS paper's §6 sketches as future work.");
}
