//! Quickstart: build a HIERAS system over a simulated internetwork and
//! compare it against plain Chord in five minutes.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use hieras::prelude::*;

fn main() {
    // 1. Describe the experiment: a GT-ITM Transit-Stub internetwork
    //    with 800 peers, the paper's 2-layer / 4-landmark HIERAS.
    let config = ExperimentConfig {
        kind: TopologyKind::TransitStub,
        nodes: 800,
        requests: 20_000,
        hieras: hieras::core::HierasConfig::paper(),
        seed: 42,
        rtt_noise: 0.0,
    };

    // 2. Build it: generates the topology, places peers, measures
    //    landmark RTTs, bins peers into rings, and constructs both the
    //    Chord baseline and the HIERAS hierarchy.
    println!("building 800-peer experiment…");
    let e = Experiment::build(config);
    println!(
        "  topology: {} routers, {} links ({})",
        e.topo.router_count(),
        e.topo.graph.edge_count(),
        e.topo.model
    );
    println!(
        "  hierarchy: {} layers; {} lower-layer rings",
        e.hieras.layers().len(),
        e.hieras.layers().last().unwrap().ring_count()
    );

    // 3. Route a single request by hand and inspect the trace.
    let key = Id::hash_of(b"my-file.tar.gz");
    let trace = e.hieras.route(0, key);
    println!(
        "\nlookup of {key} from node 0: {} hops ({} in lower rings), owner = node {}",
        trace.hop_count(),
        trace.lower_layer_hops(),
        trace.destination()
    );
    for h in &trace.hops {
        println!(
            "  layer {} hop: node {:>3} -> node {:>3}  ({} ms)",
            h.layer,
            h.from,
            h.to,
            e.peer_latency(h.from, h.to)
        );
    }

    // 4. Replay the full workload through both algorithms.
    println!("\nreplaying 20 000 random requests…");
    let r = e.run();
    let (c, h) = (r.chord.summary(), r.hieras.summary());
    println!("  Chord : {:>6.3} hops, {:>7.2} ms avg latency", c.avg_hops, c.avg_latency_ms);
    println!("  HIERAS: {:>6.3} hops, {:>7.2} ms avg latency", h.avg_hops, h.avg_latency_ms);
    println!(
        "  => HIERAS latency is {:.1}% of Chord with {:+.2}% hops;",
        h.avg_latency_ms / c.avg_latency_ms * 100.0,
        (h.avg_hops / c.avg_hops - 1.0) * 100.0
    );
    println!(
        "     {:.1}% of hops ran inside low-latency rings (avg {:.1} ms/hop vs {:.1} ms/hop on top).",
        h.lower_hop_share * 100.0,
        h.avg_link_delay_lower_ms,
        h.avg_link_delay_top_ms
    );
}
