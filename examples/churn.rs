//! Churn: nodes join, fail silently, and leave while lookups continue.
//!
//! Exercises the dynamic Chord substrate (the maintenance machinery
//! HIERAS inherits per §3.3/§3.4): successor-list repair, stabilize /
//! notify rounds, and fix-fingers, with message accounting.
//!
//! ```text
//! cargo run --release --example churn
//! ```

use hieras::chord::DynChord;
use hieras::id::{Id, IdSpace};
use hieras::rt::Rng;

fn main() {
    let mut net = DynChord::new(IdSpace::full(), 8);
    let mut rng = Rng::seed_from_u64(5);

    // Bootstrap a 200-node ring.
    let first = Id::hash_of(b"node-0");
    net.create(first).expect("fresh network");
    let mut alive: Vec<Id> = vec![first];
    for i in 1..200u32 {
        let id = Id::hash_of(format!("node-{i}").as_bytes());
        net.join(id, first).expect("distinct ids");
        alive.push(id);
        net.stabilize_round();
        net.stabilize_round();
    }
    for _ in 0..4 {
        net.stabilize_round();
    }
    net.fix_all_fingers();
    assert!(net.ring_consistent());
    println!("bootstrapped 200 nodes; maintenance traffic so far: {:?}\n", net.stats());
    net.reset_stats();

    // Churn: 10 epochs of {5 silent failures, 5 joins, 2 graceful
    // leaves}, with stabilization between epochs and live lookups.
    let mut next_id = 200u32;
    let mut resolved = 0u32;
    let mut total = 0u32;
    for epoch in 0..10 {
        for _ in 0..5 {
            let victim = alive.swap_remove(rng.random_range(0..alive.len()));
            net.fail(victim).expect("victim was alive");
        }
        for _ in 0..2 {
            let leaver = alive.swap_remove(rng.random_range(0..alive.len()));
            net.leave(leaver).expect("leaver was alive");
        }
        for _ in 0..5 {
            let id = Id::hash_of(format!("node-{next_id}").as_bytes());
            next_id += 1;
            let boot = alive[rng.random_range(0..alive.len())];
            net.join(id, boot).expect("distinct ids");
            alive.push(id);
        }
        for _ in 0..4 {
            net.stabilize_round();
        }
        net.fix_fingers_round();

        // Lookups must keep resolving to the true owner.
        let mut ok = 0;
        for k in 0..50u64 {
            let key = Id::hash_of(format!("key-{epoch}-{k}").as_bytes());
            let want = net.true_owner(key).expect("network non-empty");
            let from = alive[rng.random_range(0..alive.len())];
            total += 1;
            if let Ok((got, _)) = net.find_successor(from, key) {
                if got == want {
                    ok += 1;
                    resolved += 1;
                }
            }
        }
        println!(
            "epoch {epoch}: {} nodes alive, {}/50 lookups exact, ring consistent: {}",
            net.len(),
            ok,
            net.ring_consistent()
        );
    }

    let s = net.stats();
    println!("\nlookup exactness under churn: {resolved}/{total}");
    println!(
        "maintenance traffic: {} stabilize msgs, {} fix-finger msgs, {} lookup msgs, {} join msgs",
        s.stabilize_msgs, s.fix_finger_msgs, s.lookup_msgs, s.join_msgs
    );
    // Final convergence: after a few quiet rounds everything is exact.
    for _ in 0..6 {
        net.stabilize_round();
    }
    net.fix_all_fingers();
    assert!(net.ring_consistent(), "ring must re-converge after churn stops");
    println!("ring re-converged after churn stopped ✔");
}
