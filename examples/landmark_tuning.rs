//! Landmark tuning: how many landmark nodes should a deployment pick?
//!
//! Reproduces the §4.4 sweep at laptop scale and prints a deployment
//! recommendation. (Figures 6/7 at paper scale: `cargo run --release
//! -p hieras-bench --bin figures -- fig6 fig7 --full`.)
//!
//! ```text
//! cargo run --release --example landmark_tuning
//! ```

use hieras::core::{Binning, HierasConfig};
use hieras::prelude::*;

fn main() {
    let nodes = 800;
    let requests = 8_000;
    println!("sweeping landmark count on a {nodes}-peer Transit-Stub network…\n");
    println!("| landmarks | rings | HIERAS hops | latency vs Chord | lower-hop share |");
    println!("|----------:|------:|------------:|-----------------:|----------------:|");
    let mut best: Option<(usize, f64)> = None;
    for landmarks in 2..=12usize {
        let e = Experiment::build(ExperimentConfig {
            kind: TopologyKind::TransitStub,
            nodes,
            requests,
            hieras: HierasConfig { depth: 2, landmarks, binning: Binning::paper() },
            seed: 11,
            rtt_noise: 0.0,
        });
        let rings = e.hieras.layers().last().unwrap().ring_count();
        let r = e.run();
        let (c, h) = (r.chord.summary(), r.hieras.summary());
        let ratio = h.avg_latency_ms / c.avg_latency_ms;
        println!(
            "| {landmarks:>9} | {rings:>5} | {:>11.3} | {:>15.1}% | {:>14.1}% |",
            h.avg_hops,
            ratio * 100.0,
            h.lower_hop_share * 100.0
        );
        if best.is_none_or(|(_, b)| ratio < b) {
            best = Some((landmarks, ratio));
        }
    }
    let (lm, ratio) = best.expect("sweep is non-empty");
    println!(
        "\nrecommendation: {lm} landmarks — lookup latency drops to {:.1}% of plain Chord.",
        ratio * 100.0
    );
    println!("(the paper finds the same shape: too few landmarks → too few rings;");
    println!(" too many → rings too small to absorb hops; the sweet spot is mid-range.)");
}
