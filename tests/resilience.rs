//! Failure-injection integration tests: landmark death, node failures,
//! ring-table holder loss.

use hieras::chord::DynChord;
use hieras::core::{Binning, HierasConfig, HierasOracle, LandmarkOrder, RingTable};
use hieras::id::{Id, IdSpace};
use hieras::prelude::*;
use std::sync::Arc;

/// §2.3: when a landmark fails, previously binned nodes drop its digit
/// and the system re-bins consistently — rings coarsen but still
/// partition the membership, and routing stays exact.
#[test]
fn landmark_failure_degrades_gracefully() {
    let e = Experiment::build(ExperimentConfig {
        kind: TopologyKind::TransitStub,
        nodes: 300,
        requests: 0,
        hieras: HierasConfig::paper(),
        seed: 31,
        rtt_noise: 0.0,
    });
    // Landmark 2 dies: every node drops digit 2 from its order.
    let degraded: Vec<LandmarkOrder> =
        e.orders.iter().map(|o| o.drop_landmark(2)).collect();
    let config = HierasConfig { depth: 2, landmarks: 3, binning: Binning::paper() };
    let rebuilt =
        HierasOracle::build(IdSpace::full(), e.ids.clone(), degraded, config).unwrap();
    // Fewer digits → no more rings than before.
    assert!(
        rebuilt.layers()[1].ring_count() <= e.hieras.layers()[1].ring_count(),
        "dropping a landmark cannot refine the partition"
    );
    // Routing must stay exact.
    for k in 0..100u64 {
        let key = Id::hash_of(&k.to_ne_bytes());
        assert_eq!(
            rebuilt.route((k % 300) as u32, key).destination(),
            e.chord.lookup((k % 300) as u32, key).owner()
        );
    }
}

/// §3.1: when a ring-table member fails, the holder re-populates the
/// slot with a surviving member and entry points stay usable.
#[test]
fn ring_table_holder_repairs_after_member_failure() {
    let order = LandmarkOrder(vec![0, 1]);
    let mut t = RingTable::new(&order);
    let members: Vec<Id> = (1..=8u64).map(|i| Id(i * 100)).collect();
    for &m in &members {
        t.observe(m);
    }
    // The four recorded extremes: 100, 200, 700, 800. Kill 100 and 700.
    assert!(t.remove(Id(100)));
    assert!(t.remove(Id(700)));
    assert_eq!(t.len(), 2);
    // The holder performs new routing procedures and re-observes
    // survivors (here: the remaining membership).
    for &m in &members {
        if m != Id(100) && m != Id(700) {
            t.observe(m);
        }
    }
    assert_eq!(t.smallest(), Some(Id(200)));
    assert_eq!(t.second_smallest(), Some(Id(300)));
    assert_eq!(t.second_largest(), Some(Id(600)));
    assert_eq!(t.largest(), Some(Id(800)));
}

/// Massive correlated failure: a third of the network fails silently;
/// successor lists + stabilization recover a consistent ring and exact
/// lookups (the Chord substrate HIERAS inherits, §3.3).
#[test]
fn mass_failure_recovery() {
    let mut net = DynChord::new(IdSpace::full(), 12);
    let first = Id::hash_of(b"root");
    net.create(first).unwrap();
    for i in 1..90u32 {
        net.join(Id::hash_of(format!("m{i}").as_bytes()), first).unwrap();
        net.stabilize_round();
        net.stabilize_round();
    }
    for _ in 0..5 {
        net.stabilize_round();
    }
    net.fix_all_fingers();
    let victims: Vec<Id> = net.node_ids().into_iter().step_by(3).collect();
    for v in &victims {
        if net.len() > 2 {
            net.fail(*v).unwrap();
        }
    }
    for _ in 0..10 {
        net.stabilize_round();
    }
    net.fix_all_fingers();
    assert!(net.ring_consistent(), "ring must recover from 33% failures");
    let survivors = net.node_ids();
    for k in 0..60u64 {
        let key = Id::hash_of(format!("q{k}").as_bytes());
        let want = net.true_owner(key).unwrap();
        let from = survivors[k as usize % survivors.len()];
        assert_eq!(net.find_successor(from, key).unwrap().0, want, "key {k}");
    }
}

/// Binning noise ablation: even ±50 % RTT measurement error keeps the
/// latency win (weaker, but present) — the paper's claim that ping
/// accuracy "is adequate".
#[test]
fn noisy_binning_keeps_most_of_the_win() {
    let mut ratios = Vec::new();
    for noise in [0.0, 0.5] {
        let e = Experiment::build(ExperimentConfig {
            kind: TopologyKind::TransitStub,
            nodes: 400,
            requests: 4_000,
            hieras: HierasConfig::paper(),
            seed: 33,
            rtt_noise: noise,
        });
        let r = e.run();
        ratios.push(r.hieras.summary().avg_latency_ms / r.chord.summary().avg_latency_ms);
    }
    assert!(ratios[0] < 0.8, "clean binning should win big: {ratios:?}");
    assert!(ratios[1] < 0.95, "noisy binning should still win: {ratios:?}");
}
