//! Property-based cross-crate invariants of the HIERAS hierarchy.

use hieras::core::{Binning, HierasConfig, HierasOracle, LandmarkOrder};
use hieras::id::{Id, IdSpace};
use proptest::prelude::*;
use std::sync::Arc;

/// Deterministic pseudo-random distinct ids.
fn make_ids(seed: u64, n: usize) -> Arc<[Id]> {
    let mut v: Vec<u64> = (0..n as u64)
        .map(|i| (seed ^ i).wrapping_mul(0x9e37_79b9_7f4a_7c15).rotate_left((i % 63) as u32))
        .collect();
    v.sort_unstable();
    v.dedup();
    v.iter().map(|&x| Id(x)).collect::<Vec<_>>().into()
}

fn make_orders(seed: u64, n: usize, landmarks: usize) -> Vec<LandmarkOrder> {
    let b = Binning::paper();
    (0..n as u64)
        .map(|i| {
            let rtts: Vec<u16> = (0..landmarks as u64)
                .map(|l| (((seed ^ i).wrapping_mul(2654435761).wrapping_add(l * 40503)) % 240) as u16)
                .collect();
            b.order(&rtts)
        })
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Rings at each layer partition the membership exactly.
    #[test]
    fn layers_partition_membership(seed in 0u64..500, n in 2usize..60, depth in 2usize..4) {
        let ids = make_ids(seed, n);
        let n = ids.len();
        let orders = make_orders(seed, n, 4);
        let o = HierasOracle::build(
            IdSpace::full(),
            ids,
            orders,
            HierasConfig { depth, landmarks: 4, binning: Binning::paper() },
        ).unwrap();
        for layer in o.layers() {
            let mut seen = vec![false; n];
            let mut total = 0usize;
            for (_, ring) in layer.rings() {
                for &m in ring.members() {
                    prop_assert!(!seen[m as usize], "node {m} in two rings of layer {}", layer.layer_no);
                    seen[m as usize] = true;
                    total += 1;
                }
            }
            prop_assert_eq!(total, n, "layer {} does not cover all nodes", layer.layer_no);
        }
    }

    /// Ring nesting: a node's layer-(j+1) ring members all share its
    /// layer-j ring (prefix refinement guarantees containment).
    #[test]
    fn rings_nest(seed in 0u64..500, n in 2usize..50, depth in 2usize..5) {
        let ids = make_ids(seed, n);
        let n = ids.len();
        let orders = make_orders(seed, n, 6);
        let o = HierasOracle::build(
            IdSpace::full(),
            ids,
            orders,
            HierasConfig { depth, landmarks: 6, binning: Binning::paper() },
        ).unwrap();
        for j in 0..depth - 1 {
            let upper = &o.layers()[j];
            let lower = &o.layers()[j + 1];
            for node in 0..n as u32 {
                let upper_name = upper.ring_name_of(node);
                for &mate in lower.ring_of(node).members() {
                    prop_assert_eq!(upper.ring_name_of(mate), upper_name);
                }
            }
        }
    }

    /// Every hop of every trace uses a layer whose ring contains both
    /// endpoints (hops never leave the ring that made them).
    #[test]
    fn hops_stay_in_their_ring(seed in 0u64..300, n in 2usize..40) {
        let ids = make_ids(seed, n);
        let n = ids.len();
        let orders = make_orders(seed, n, 4);
        let o = HierasOracle::build(
            IdSpace::full(),
            ids,
            orders,
            HierasConfig { depth: 2, landmarks: 4, binning: Binning::paper() },
        ).unwrap();
        let key = Id(seed.wrapping_mul(0x517c_c1b7_2722_0a95));
        for src in 0..n as u32 {
            let t = o.route(src, key);
            for h in &t.hops {
                let layer = &o.layers()[h.layer as usize - 1];
                prop_assert_eq!(
                    layer.ring_name_of(h.from),
                    layer.ring_name_of(h.to),
                    "hop {:?} crossed rings", h
                );
            }
        }
    }

    /// Hop count is bounded by depth × (log2-ish of the ring sizes):
    /// the paper's scalability claim with generous slack.
    #[test]
    fn hop_bound_scales_logarithmically(seed in 0u64..200, n in 4usize..64) {
        let ids = make_ids(seed, n);
        let n = ids.len();
        let orders = make_orders(seed, n, 4);
        let o = HierasOracle::build(
            IdSpace::full(),
            ids,
            orders,
            HierasConfig::paper(),
        ).unwrap();
        let log2n = (usize::BITS - n.leading_zeros()) as usize;
        let bound = 2 * 2 * (log2n + 2); // depth × 2·log₂ + slack
        for k in 0..8u64 {
            let key = Id((seed ^ k).wrapping_mul(0xdead_beef_cafe_f00d));
            let t = o.route((k % n as u64) as u32, key);
            prop_assert!(
                t.hop_count() <= bound,
                "{} hops on {} nodes (bound {})", t.hop_count(), n, bound
            );
        }
    }

    /// The ring table of every lower ring records exactly the extreme
    /// member ids of that ring.
    #[test]
    fn ring_tables_record_extremes(seed in 0u64..300, n in 2usize..50) {
        let ids = make_ids(seed, n);
        let n = ids.len();
        let orders = make_orders(seed, n, 3);
        let o = HierasOracle::build(
            IdSpace::full(),
            ids.clone(),
            orders,
            HierasConfig { depth: 2, landmarks: 3, binning: Binning::paper() },
        ).unwrap();
        for (name, ring) in o.layers()[1].rings() {
            let table = o.ring_table(&name.name()).expect("table exists for every ring");
            let mut member_ids: Vec<Id> = ring.members().iter().map(|&m| ids[m as usize]).collect();
            member_ids.sort_unstable();
            prop_assert_eq!(table.smallest(), member_ids.first().copied());
            prop_assert_eq!(table.largest(), member_ids.last().copied());
            if member_ids.len() >= 2 {
                prop_assert_eq!(table.second_smallest(), Some(member_ids[1]));
                prop_assert_eq!(table.second_largest(), Some(member_ids[member_ids.len() - 2]));
            }
        }
    }
}
