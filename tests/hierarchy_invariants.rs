//! Randomized cross-crate invariants of the HIERAS hierarchy.
//!
//! Formerly proptest suites; now deterministic seeded loops driven by
//! the in-tree PRNG so the workspace builds offline. Each test draws
//! 64 random parameter tuples from a fixed seed — failures reproduce
//! exactly and the printed `case` index identifies the tuple.

use hieras::core::{Binning, HierasConfig, HierasOracle, LandmarkOrder};
use hieras::id::{Id, IdSpace};
use hieras::rt::Rng;
use std::sync::Arc;

const CASES: u64 = 64;

/// Deterministic pseudo-random distinct ids.
fn make_ids(seed: u64, n: usize) -> Arc<[Id]> {
    let mut v: Vec<u64> = (0..n as u64)
        .map(|i| (seed ^ i).wrapping_mul(0x9e37_79b9_7f4a_7c15).rotate_left((i % 63) as u32))
        .collect();
    v.sort_unstable();
    v.dedup();
    v.iter().map(|&x| Id(x)).collect::<Vec<_>>().into()
}

fn make_orders(seed: u64, n: usize, landmarks: usize) -> Vec<LandmarkOrder> {
    let b = Binning::paper();
    (0..n as u64)
        .map(|i| {
            let rtts: Vec<u16> = (0..landmarks as u64)
                .map(|l| (((seed ^ i).wrapping_mul(2654435761).wrapping_add(l * 40503)) % 240) as u16)
                .collect();
            b.order(&rtts)
        })
        .collect()
}

/// Rings at each layer partition the membership exactly.
#[test]
fn layers_partition_membership() {
    let mut rng = Rng::seed_from_u64(0x1a7e_55);
    for case in 0..CASES {
        let seed = rng.random_range(0..500u64);
        let n = rng.random_range(2..60usize);
        let depth = rng.random_range(2..4usize);
        let ids = make_ids(seed, n);
        let n = ids.len();
        let orders = make_orders(seed, n, 4);
        let o = HierasOracle::build(
            IdSpace::full(),
            ids,
            orders,
            HierasConfig { depth, landmarks: 4, binning: Binning::paper() },
        )
        .unwrap();
        for layer in o.layers() {
            let mut seen = vec![false; n];
            let mut total = 0usize;
            for (_, ring) in layer.rings() {
                for &m in ring.members() {
                    assert!(
                        !seen[m as usize],
                        "case {case}: node {m} in two rings of layer {}",
                        layer.layer_no
                    );
                    seen[m as usize] = true;
                    total += 1;
                }
            }
            assert_eq!(total, n, "case {case}: layer {} does not cover all nodes", layer.layer_no);
        }
    }
}

/// Ring nesting: a node's layer-(j+1) ring members all share its
/// layer-j ring (prefix refinement guarantees containment).
#[test]
fn rings_nest() {
    let mut rng = Rng::seed_from_u64(0x2e57_11);
    for case in 0..CASES {
        let seed = rng.random_range(0..500u64);
        let n = rng.random_range(2..50usize);
        let depth = rng.random_range(2..5usize);
        let ids = make_ids(seed, n);
        let n = ids.len();
        let orders = make_orders(seed, n, 6);
        let o = HierasOracle::build(
            IdSpace::full(),
            ids,
            orders,
            HierasConfig { depth, landmarks: 6, binning: Binning::paper() },
        )
        .unwrap();
        for j in 0..depth - 1 {
            let upper = &o.layers()[j];
            let lower = &o.layers()[j + 1];
            for node in 0..n as u32 {
                let upper_name = upper.ring_name_of(node);
                for &mate in lower.ring_of(node).members() {
                    assert_eq!(upper.ring_name_of(mate), upper_name, "case {case}");
                }
            }
        }
    }
}

/// Every hop of every trace uses a layer whose ring contains both
/// endpoints (hops never leave the ring that made them).
#[test]
fn hops_stay_in_their_ring() {
    let mut rng = Rng::seed_from_u64(0x3109_5a);
    for case in 0..CASES {
        let seed = rng.random_range(0..300u64);
        let n = rng.random_range(2..40usize);
        let ids = make_ids(seed, n);
        let n = ids.len();
        let orders = make_orders(seed, n, 4);
        let o = HierasOracle::build(
            IdSpace::full(),
            ids,
            orders,
            HierasConfig { depth: 2, landmarks: 4, binning: Binning::paper() },
        )
        .unwrap();
        let key = Id(seed.wrapping_mul(0x517c_c1b7_2722_0a95));
        for src in 0..n as u32 {
            let t = o.route(src, key);
            for h in &t.hops {
                let layer = &o.layers()[h.layer as usize - 1];
                assert_eq!(
                    layer.ring_name_of(h.from),
                    layer.ring_name_of(h.to),
                    "case {case}: hop {h:?} crossed rings"
                );
            }
        }
    }
}

/// Hop count is bounded by depth × (log2-ish of the ring sizes):
/// the paper's scalability claim with generous slack.
#[test]
fn hop_bound_scales_logarithmically() {
    let mut rng = Rng::seed_from_u64(0x4b0b_bd);
    for case in 0..CASES {
        let seed = rng.random_range(0..200u64);
        let n = rng.random_range(4..64usize);
        let ids = make_ids(seed, n);
        let n = ids.len();
        let orders = make_orders(seed, n, 4);
        let o = HierasOracle::build(IdSpace::full(), ids, orders, HierasConfig::paper()).unwrap();
        let log2n = (usize::BITS - n.leading_zeros()) as usize;
        let bound = 2 * 2 * (log2n + 2); // depth × 2·log₂ + slack
        for k in 0..8u64 {
            let key = Id((seed ^ k).wrapping_mul(0xdead_beef_cafe_f00d));
            let t = o.route((k % n as u64) as u32, key);
            assert!(
                t.hop_count() <= bound,
                "case {case}: {} hops on {} nodes (bound {})",
                t.hop_count(),
                n,
                bound
            );
        }
    }
}

/// The ring table of every lower ring records exactly the extreme
/// member ids of that ring.
#[test]
fn ring_tables_record_extremes() {
    let mut rng = Rng::seed_from_u64(0x5ca1_ab1e);
    for case in 0..CASES {
        let seed = rng.random_range(0..300u64);
        let n = rng.random_range(2..50usize);
        let ids = make_ids(seed, n);
        let n = ids.len();
        let orders = make_orders(seed, n, 3);
        let o = HierasOracle::build(
            IdSpace::full(),
            ids.clone(),
            orders,
            HierasConfig { depth: 2, landmarks: 3, binning: Binning::paper() },
        )
        .unwrap();
        let _ = n;
        for (name, ring) in o.layers()[1].rings() {
            let table = o.ring_table(&name.name()).expect("table exists for every ring");
            let mut member_ids: Vec<Id> =
                ring.members().iter().map(|&m| ids[m as usize]).collect();
            member_ids.sort_unstable();
            assert_eq!(table.smallest(), member_ids.first().copied(), "case {case}");
            assert_eq!(table.largest(), member_ids.last().copied(), "case {case}");
            if member_ids.len() >= 2 {
                assert_eq!(table.second_smallest(), Some(member_ids[1]), "case {case}");
                assert_eq!(
                    table.second_largest(),
                    Some(member_ids[member_ids.len() - 2]),
                    "case {case}"
                );
            }
        }
    }
}
