//! JSON round-trips of every public configuration and result type —
//! experiments must be fully describable and replayable from JSON
//! using only the in-tree `hieras::rt` reader/writer.

use hieras::core::{Binning, HierasConfig, LandmarkOrder, RingTable};
use hieras::id::{Id, IdSpace};
use hieras::prelude::*;
use hieras::rt::{FromJson, Json, ToJson};
use hieras::sim::Experiment;

fn roundtrip<T: ToJson + FromJson>(v: &T) -> T {
    let text = v.to_json().dump();
    T::from_json(&Json::parse(&text).expect("parse")).expect("deserialize")
}

#[test]
fn id_serializes_transparently_as_u64() {
    let id = Id(0xdead_beef_1234_5678);
    assert_eq!(id.to_json().dump(), "16045690981402826360");
    assert_eq!(roundtrip(&id), id);
}

#[test]
fn config_types_roundtrip() {
    let cfg = ExperimentConfig {
        kind: TopologyKind::Brite,
        nodes: 1234,
        requests: 567,
        hieras: HierasConfig { depth: 3, landmarks: 7, binning: Binning::new(vec![10, 80, 300]) },
        seed: 99,
        rtt_noise: 0.25,
    };
    assert_eq!(roundtrip(&cfg), cfg);
    assert_eq!(roundtrip(&IdSpace::new(16).unwrap()), IdSpace::new(16).unwrap());
}

#[test]
fn ring_table_and_order_roundtrip() {
    let order = LandmarkOrder(vec![0, 2, 1]);
    let mut t = RingTable::new(&order);
    for i in [5u64, 900, 17, 40000] {
        t.observe(Id(i));
    }
    let back: RingTable = roundtrip(&t);
    assert_eq!(back, t);
    assert_eq!(roundtrip(&order), order);
}

#[test]
fn metrics_and_summary_roundtrip_through_json() {
    let e = Experiment::build(ExperimentConfig {
        kind: TopologyKind::TransitStub,
        nodes: 120,
        requests: 500,
        hieras: HierasConfig::paper(),
        seed: 4,
        rtt_noise: 0.0,
    });
    let r = e.run();
    let m: Metrics = roundtrip(&r.hieras);
    assert_eq!(m.total_hops, r.hieras.total_hops);
    assert_eq!(m.hop_hist, r.hieras.hop_hist);
    let s = r.hieras.summary();
    let s2: hieras::sim::Summary = roundtrip(&s);
    assert_eq!(s, s2);
}

#[test]
fn topology_configs_roundtrip() {
    use hieras::topology::{BriteConfig, InetConfig, TransitStubConfig};
    let ts = TransitStubConfig::for_peers(1000, 5);
    assert_eq!(roundtrip(&ts), ts);
    let inet = InetConfig::for_peers(4000, 6);
    assert_eq!(roundtrip(&inet), inet);
    let brite = BriteConfig::for_peers(2000, 7);
    assert_eq!(roundtrip(&brite), brite);
}

#[test]
fn route_traces_roundtrip() {
    use hieras::core::{HopRecord, RouteTrace};
    let t = RouteTrace {
        origin: 3,
        hops: vec![
            HopRecord { from: 3, to: 9, layer: 2 },
            HopRecord { from: 9, to: 1, layer: 1 },
        ],
    };
    assert_eq!(roundtrip(&t), t);
}
