//! End-to-end integration: the full §4 pipeline across crates, and the
//! paper's headline claims as assertions.

use hieras::core::{Binning, HierasConfig};
use hieras::prelude::*;

fn ts_experiment(nodes: usize, requests: usize, seed: u64) -> Experiment {
    Experiment::build(ExperimentConfig {
        kind: TopologyKind::TransitStub,
        nodes,
        requests,
        hieras: HierasConfig::paper(),
        seed,
        rtt_noise: 0.0,
    })
}

/// The paper's central result (Figures 2–3): HIERAS ≈ Chord hops,
/// much lower latency, most hops in lower rings.
#[test]
fn headline_result_on_transit_stub() {
    let e = ts_experiment(500, 5_000, 1);
    let r = e.run();
    let (c, h) = (r.chord.summary(), r.hieras.summary());
    assert!(
        h.avg_latency_ms < 0.80 * c.avg_latency_ms,
        "expected a strong latency win: HIERAS {} vs Chord {}",
        h.avg_latency_ms,
        c.avg_latency_ms
    );
    assert!(
        (h.avg_hops - c.avg_hops).abs() / c.avg_hops < 0.15,
        "hop counts should be comparable: {} vs {}",
        h.avg_hops,
        c.avg_hops
    );
    assert!(h.lower_hop_share > 0.4, "lower-hop share {}", h.lower_hop_share);
    assert!(
        h.avg_link_delay_lower_ms < 0.6 * h.avg_link_delay_top_ms,
        "lower rings must use cheaper links: {} vs {}",
        h.avg_link_delay_lower_ms,
        h.avg_link_delay_top_ms
    );
}

/// Scalability (§4.2): hops grow logarithmically with network size for
/// both systems.
#[test]
fn hops_scale_logarithmically() {
    let small = ts_experiment(200, 3_000, 2).run().hieras.summary();
    let large = ts_experiment(800, 3_000, 2).run().hieras.summary();
    // 4x nodes → log2 grows by 2 → hops grow by ≤ ~1.3 + slack.
    assert!(large.avg_hops > small.avg_hops, "more nodes, more hops");
    assert!(
        large.avg_hops < small.avg_hops + 2.5,
        "growth must be logarithmic: {} -> {}",
        small.avg_hops,
        large.avg_hops
    );
}

/// Correctness across the whole stack: HIERAS always resolves keys to
/// the same owner as Chord, on every topology model.
#[test]
fn owner_agreement_on_all_models() {
    for kind in [TopologyKind::TransitStub, TopologyKind::Brite] {
        let e = Experiment::build(ExperimentConfig {
            kind,
            nodes: 150,
            requests: 0,
            hieras: HierasConfig { depth: 3, landmarks: 4, binning: Binning::paper() },
            seed: 3,
            rtt_noise: 0.0,
        });
        for k in 0..200u64 {
            let key = Id::hash_of(&k.to_le_bytes());
            let src = (k % 150) as u32;
            assert_eq!(
                e.hieras.route(src, key).destination(),
                e.chord.lookup(src, key).owner(),
                "model {kind:?} key {k}"
            );
        }
    }
}

/// Per-run determinism across separately built experiments.
#[test]
fn experiments_are_reproducible() {
    let a = ts_experiment(200, 2_000, 77).run();
    let b = ts_experiment(200, 2_000, 77).run();
    assert_eq!(a.chord.total_hops, b.chord.total_hops);
    assert_eq!(a.hieras.total_latency_ms, b.hieras.total_latency_ms);
    assert_eq!(a.hieras.hop_hist, b.hieras.hop_hist);
}

/// Landmark count controls ring granularity (§4.4 mechanics).
#[test]
fn more_landmarks_make_more_and_smaller_rings() {
    let few = Experiment::build(ExperimentConfig {
        kind: TopologyKind::TransitStub,
        nodes: 400,
        requests: 0,
        hieras: HierasConfig { depth: 2, landmarks: 2, binning: Binning::paper() },
        seed: 5,
        rtt_noise: 0.0,
    });
    let many = Experiment::build(ExperimentConfig {
        kind: TopologyKind::TransitStub,
        nodes: 400,
        requests: 0,
        hieras: HierasConfig { depth: 2, landmarks: 10, binning: Binning::paper() },
        seed: 5,
        rtt_noise: 0.0,
    });
    let few_rings = few.hieras.layers()[1].ring_count();
    let many_rings = many.hieras.layers()[1].ring_count();
    assert!(
        many_rings > few_rings,
        "10 landmarks gave {many_rings} rings vs {few_rings} with 2"
    );
}

/// Deeper hierarchies keep correctness and add lower-layer traffic
/// (§4.5 mechanics).
#[test]
fn depth_increases_lower_layer_share() {
    let mut shares = Vec::new();
    for depth in [2usize, 3] {
        let e = Experiment::build(ExperimentConfig {
            kind: TopologyKind::TransitStub,
            nodes: 400,
            requests: 4_000,
            hieras: HierasConfig { depth, landmarks: 6, binning: Binning::paper() },
            seed: 9,
            rtt_noise: 0.0,
        });
        shares.push(e.run().hieras.summary().lower_hop_share);
    }
    assert!(
        shares[1] >= shares[0] * 0.9,
        "depth 3 should keep or grow the lower-layer share: {shares:?}"
    );
}
