//! Cross-crate equivalence: the message-level protocol engine and the
//! oracle must implement the *same* algorithm — hop-for-hop.

use hieras::core::HierasConfig;
use hieras::id::Id;
use hieras::prelude::*;
use hieras::proto::{SimNet, ThreadNet};

fn experiment(nodes: usize, seed: u64) -> Experiment {
    Experiment::build(ExperimentConfig {
        kind: TopologyKind::TransitStub,
        nodes,
        requests: 0,
        hieras: HierasConfig::paper(),
        seed,
        rtt_noise: 0.0,
    })
}

/// SimNet lookups = oracle routes, over a real binned topology.
#[test]
fn simnet_matches_oracle_on_real_topology() {
    let e = experiment(200, 21);
    let mut net = SimNet::from_oracle(&e.hieras, &e.landmarks, |a, b| {
        // Any deterministic delay works for hop equality.
        3 + (a.raw() ^ b.raw()) % 40
    });
    for k in 0..150u64 {
        let key = Id::hash_of(&k.to_be_bytes());
        let src = (k % 200) as u32;
        let oracle = e.hieras.route(src, key);
        let proto = net.lookup(e.ids[src as usize], key);
        assert_eq!(proto.owner, e.ids[oracle.destination() as usize], "key {k}");
        assert_eq!(proto.hops as usize, oracle.hop_count(), "key {k}");
    }
}

/// Joins through the §3.3 choreography leave a network where both old
/// and new members resolve keys to the correct successor.
#[test]
fn join_choreography_preserves_global_correctness() {
    let e = experiment(150, 22);
    let mut net = SimNet::from_oracle(&e.hieras, &e.landmarks, |_, _| 10);
    let mut members: Vec<Id> = e.ids.to_vec();
    for j in 0..8u64 {
        let new_id = Id::hash_of(format!("late-joiner-{j}").as_bytes());
        let boot = members[(j as usize * 13) % members.len()];
        let rtts = [
            (10 + j * 17) as u16 % 200,
            (40 + j * 31) as u16 % 200,
            (90 + j * 7) as u16 % 200,
            (120 + j * 3) as u16 % 200,
        ];
        let out = net.join(new_id, boot, &rtts);
        assert_eq!(out.rings_joined, 2);
        members.push(new_id);
    }
    let mut sorted = members.clone();
    sorted.sort_unstable();
    for k in 0..100u64 {
        let key = Id::hash_of(format!("probe-{k}").as_bytes());
        let want = *sorted.iter().find(|&&m| m >= key).unwrap_or(&sorted[0]);
        let src = members[(k as usize * 7) % members.len()];
        assert_eq!(net.lookup(src, key).owner, want, "key {k}");
    }
}

/// The threaded transport (real concurrency + serialized frames)
/// produces identical results to the oracle too.
#[test]
fn threadnet_matches_oracle() {
    let e = experiment(48, 23);
    let net = ThreadNet::spawn(&e.hieras, &e.landmarks);
    for k in 0..60u64 {
        let key = Id::hash_of(&(k * 31).to_le_bytes());
        let src = (k % 48) as u32;
        let oracle = e.hieras.route(src, key);
        let (owner, hops) = net.lookup(e.ids[src as usize], key, 2);
        assert_eq!(owner, e.ids[oracle.destination() as usize]);
        assert_eq!(hops as usize, oracle.hop_count());
    }
    assert!(net.shutdown() > 0);
}

/// Simulated lookup latency equals the sum of per-hop link delays the
/// latency oracle reports (DES clock integrity).
#[test]
fn simnet_latency_equals_trace_latency() {
    let e = experiment(120, 24);
    let ids = e.ids.clone();
    let idx = move |id: Id| ids.iter().position(|&i| i == id).expect("member id");
    let mut net = SimNet::from_oracle(&e.hieras, &e.landmarks, |a, b| {
        u64::from(e.peer_latency(idx(a) as u32, idx(b) as u32))
    });
    for k in 0..80u64 {
        let key = Id::hash_of(&(k * 101).to_be_bytes());
        let src = (k % 120) as u32;
        let trace = e.hieras.route(src, key);
        let (want, _) = trace.latency_split(|a, b| e.peer_latency(a, b));
        let got = net.lookup(e.ids[src as usize], key);
        assert_eq!(got.latency_ms, want, "key {k}");
    }
}
