//! Byte-level reproduction of the paper's worked examples: Table 1
//! (binning orders), Table 2 (two-layer finger tables of node 121) and
//! Table 3 (ring-table structure).

use hieras::core::{Binning, HierasConfig, HierasOracle, LandmarkOrder};
use hieras::id::{Id, IdSpace};
use std::sync::Arc;

/// Table 1: the six sample nodes and their landmark orders, verbatim.
#[test]
fn table1_verbatim() {
    let b = Binning::paper();
    let rows: [([u16; 4], &str); 6] = [
        ([25, 5, 30, 100], "1012"),
        ([40, 18, 12, 200], "1002"),
        ([100, 180, 5, 10], "2200"),
        ([160, 220, 8, 20], "2200"),
        ([45, 10, 100, 5], "1020"),
        ([20, 140, 50, 40], "0211"),
    ];
    for (rtts, want) in rows {
        assert_eq!(b.order(&rtts).name(), want);
    }
}

fn table2_system() -> HierasOracle {
    let space = IdSpace::new(8).unwrap();
    let nodes: [(u64, [u8; 3]); 9] = [
        (121, [0, 1, 2]),
        (124, [0, 0, 1]),
        (131, [0, 1, 1]),
        (139, [0, 2, 2]),
        (143, [0, 1, 2]),
        (158, [0, 1, 2]),
        (192, [0, 0, 1]),
        (212, [0, 1, 2]),
        (253, [0, 1, 2]),
    ];
    let ids: Arc<[Id]> = nodes.iter().map(|&(v, _)| Id(v)).collect::<Vec<_>>().into();
    let orders = nodes.iter().map(|&(_, d)| LandmarkOrder(d.to_vec())).collect();
    HierasOracle::build(
        space,
        ids,
        orders,
        HierasConfig { depth: 2, landmarks: 3, binning: Binning::paper() },
    )
    .unwrap()
}

/// Table 2: node 121 ("012")'s finger tables in the 2^8 demo system.
/// Every start, interval and successor in both layers must match the
/// paper's printed table.
#[test]
fn table2_verbatim() {
    let oracle = table2_system();
    let rows = oracle.finger_rows(0); // node index 0 = id 121
    let want: [(u64, u64, u64, u64); 8] = [
        // (start, interval_end, layer1_succ, layer2_succ)
        (122, 123, 124, 143),
        (123, 125, 124, 143),
        (125, 129, 131, 143),
        (129, 137, 131, 143),
        (137, 153, 139, 143),
        (153, 185, 158, 158),
        (185, 249, 192, 212),
        (249, 121, 253, 253),
    ];
    assert_eq!(rows.len(), 8);
    for (row, (start, end, l1, l2)) in rows.iter().zip(want) {
        assert_eq!(row.start.raw(), start);
        assert_eq!(row.end.raw(), end);
        assert_eq!(oracle.id_of(row.successors[0]).raw(), l1, "layer-1 succ of {start}");
        assert_eq!(oracle.id_of(row.successors[1]).raw(), l2, "layer-2 succ of {start}");
    }
    // The paper's ring annotations: 124 is in "001", 131 in "011", 139
    // in "022", 143/158/212/253 in "012".
    let ring = |id: u64| {
        let idx = (0..9u32).find(|&i| oracle.id_of(i).raw() == id).unwrap();
        oracle.layers()[1].ring_name_of(idx).name()
    };
    assert_eq!(ring(124), "001");
    assert_eq!(ring(131), "011");
    assert_eq!(ring(139), "022");
    for id in [143, 158, 212, 253] {
        assert_eq!(ring(id), "012");
    }
}

/// Table 3: the ring table of "012" records the two smallest and two
/// largest member ids and lives at the ring-id's successor.
#[test]
fn table3_structure() {
    let oracle = table2_system();
    let t = oracle.ring_table("012").expect("ring 012 exists");
    // Members of "012": 121, 143, 158, 212, 253.
    assert_eq!(t.smallest(), Some(Id(121)));
    assert_eq!(t.second_smallest(), Some(Id(143)));
    assert_eq!(t.second_largest(), Some(Id(212)));
    assert_eq!(t.largest(), Some(Id(253)));
    assert_eq!(t.ring_id, LandmarkOrder(vec![0, 1, 2]).ring_id());
    // Holder = global successor of the ring id.
    let holder = oracle.ring_table_holder(t.ring_id);
    assert_eq!(holder, oracle.owner_of(t.ring_id));
    // §3.3 replacement rule at the boundaries.
    assert!(t.should_update(Id(120))); // smaller than 2nd smallest
    assert!(t.should_update(Id(250))); // larger than 2nd largest
    assert!(!t.should_update(Id(150))); // middle of the pack
}

/// §3.2's worked latency example: 6 hops at 100 ms vs 4 lower hops at
/// 25 ms + 2 top hops at 100 ms = 50 % saving — our trace arithmetic
/// reproduces it exactly.
#[test]
fn section32_worked_example() {
    use hieras::core::{HopRecord, RouteTrace};
    let chord_like = RouteTrace {
        origin: 0,
        hops: (0..6).map(|i| HopRecord { from: i, to: i + 1, layer: 1 }).collect(),
    };
    let (chord_ms, _) = chord_like.latency_split(|_, _| 100);
    assert_eq!(chord_ms, 600);
    let hieras_like = RouteTrace {
        origin: 0,
        hops: (0..6)
            .map(|i| HopRecord { from: i, to: i + 1, layer: if i < 4 { 2 } else { 1 } })
            .collect(),
    };
    let (total, lower) = hieras_like.latency_split(|a, b| {
        // Lower-layer hops are the first four (nodes 0..4).
        if a < 4 && b <= 4 {
            25
        } else {
            100
        }
    });
    assert_eq!(lower, 100);
    assert_eq!(total, 300, "the paper's 50% reduction example");
}
