//! Replay determinism: the parallel executor must produce
//! *bit-identical* metrics at any thread count. The fixed-chunk
//! claim-based distribution assigns each request index to a chunk
//! independently of which worker claims it, and chunk accumulators
//! merge in index order — so 1, 2, and 8 workers (on any number of
//! physical cores) fold to the same `ComparisonResult`, including the
//! order of `latency_samples`.

use hieras::core::HierasConfig;
use hieras::prelude::*;
use hieras::rt::Executor;

fn experiment(kind: TopologyKind, nodes: usize, seed: u64) -> Experiment {
    Experiment::build(ExperimentConfig {
        kind,
        nodes,
        requests: 0,
        hieras: HierasConfig::paper(),
        seed,
        rtt_noise: 0.0,
    })
}

#[test]
fn replay_metrics_identical_across_thread_counts() {
    let e = experiment(TopologyKind::TransitStub, 300, 41);
    let requests = 5_000;
    let baseline = e.run_requests_on(&Executor::new(1), requests);
    for threads in [2, 8] {
        let r = e.run_requests_on(&Executor::new(threads), requests);
        assert_eq!(
            r, baseline,
            "replay metrics diverged between 1 and {threads} threads"
        );
    }
}

#[test]
fn replay_is_reproducible_within_one_executor() {
    let e = experiment(TopologyKind::Brite, 200, 42);
    let exec = Executor::new(4);
    let a = e.run_requests_on(&exec, 3_000);
    let b = e.run_requests_on(&exec, 3_000);
    assert_eq!(a, b, "same executor, same workload, different metrics");
}

#[test]
fn experiment_build_is_deterministic() {
    let a = experiment(TopologyKind::Inet, 3000, 43);
    let b = experiment(TopologyKind::Inet, 3000, 43);
    assert_eq!(a.ids, b.ids);
    assert_eq!(a.orders, b.orders);
    assert_eq!(a.landmarks, b.landmarks);
    assert_eq!(a.router_of, b.router_of);
}
