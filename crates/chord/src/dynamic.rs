//! Dynamic Chord: join / stabilize / notify / fix-fingers / fail.
//!
//! A faithful state-machine implementation of the Chord maintenance
//! protocol (Stoica et al., §4 of the Chord TR), used for:
//!
//! * the §3.4 cost analysis (RPC counts for joins and maintenance
//!   rounds, compared against HIERAS's multi-table variant), and
//! * churn experiments — nodes fail silently and lookups must keep
//!   resolving after stabilization repairs successor pointers.
//!
//! Message accounting: every remote procedure call (one request/response
//! pair) counts as **one message**. An RPC attempted against a dead node
//! also counts (the timeout is paid on the wire), which matches how
//! maintenance traffic is measured in DHT evaluations.

use hieras_id::{Id, IdSpace, Key};
use hieras_rt::{FromJson, Json, JsonError, ToJson};
use std::collections::BTreeMap;

/// Counters for protocol traffic, split by purpose.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct MaintStats {
    /// RPCs spent resolving application lookups.
    pub lookup_msgs: u64,
    /// RPCs spent during `join` (bootstrap lookup + table initialization).
    pub join_msgs: u64,
    /// RPCs spent in stabilize/notify rounds.
    pub stabilize_msgs: u64,
    /// RPCs spent refreshing finger entries.
    pub fix_finger_msgs: u64,
    /// RPCs attempted against dead nodes: the request is sent, the
    /// timeout is paid, and the caller reroutes. Churn experiments
    /// charge each of these one RTO of latency.
    pub timeout_msgs: u64,
    /// RPCs spent repairing auxiliary state after a failure (ring-table
    /// holder repair, landmark re-binning; unused by plain Chord).
    pub repair_msgs: u64,
}

impl MaintStats {
    /// Total RPCs across all categories.
    #[must_use]
    pub fn total(&self) -> u64 {
        self.lookup_msgs
            + self.join_msgs
            + self.stabilize_msgs
            + self.fix_finger_msgs
            + self.timeout_msgs
            + self.repair_msgs
    }

    /// Merges another accumulator into this one (per-layer roll-ups).
    pub fn merge(&mut self, other: &MaintStats) {
        self.lookup_msgs += other.lookup_msgs;
        self.join_msgs += other.join_msgs;
        self.stabilize_msgs += other.stabilize_msgs;
        self.fix_finger_msgs += other.fix_finger_msgs;
        self.timeout_msgs += other.timeout_msgs;
        self.repair_msgs += other.repair_msgs;
    }
}

impl ToJson for MaintStats {
    fn to_json(&self) -> Json {
        Json::obj([
            ("lookup_msgs", self.lookup_msgs.to_json()),
            ("join_msgs", self.join_msgs.to_json()),
            ("stabilize_msgs", self.stabilize_msgs.to_json()),
            ("fix_finger_msgs", self.fix_finger_msgs.to_json()),
            ("timeout_msgs", self.timeout_msgs.to_json()),
            ("repair_msgs", self.repair_msgs.to_json()),
            ("total", self.total().to_json()),
        ])
    }
}

impl FromJson for MaintStats {
    fn from_json(v: &Json) -> Result<Self, JsonError> {
        Ok(MaintStats {
            lookup_msgs: v.field("lookup_msgs")?,
            join_msgs: v.field("join_msgs")?,
            stabilize_msgs: v.field("stabilize_msgs")?,
            fix_finger_msgs: v.field("fix_finger_msgs")?,
            timeout_msgs: v.field("timeout_msgs")?,
            repair_msgs: v.field("repair_msgs")?,
        })
    }
}

/// Result of a traced lookup: the owner, the node path actually
/// walked (for latency accounting), and the timeouts paid en route.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LookupTrace {
    /// The key's owner.
    pub owner: Id,
    /// Every node the request visited, origin first, owner last.
    pub path: Vec<Id>,
    /// RPCs that timed out against dead table entries along the way.
    pub timeouts: u64,
}

/// Errors from dynamic-chord operations.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DynError {
    /// The node id is already present.
    Duplicate(Id),
    /// The referenced node does not exist (or has failed).
    Unknown(Id),
    /// A lookup exceeded its hop budget — the ring is (temporarily)
    /// inconsistent; run stabilization and retry.
    LookupFailed(Key),
    /// The network has no nodes.
    EmptyNetwork,
}

impl core::fmt::Display for DynError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            DynError::Duplicate(id) => write!(f, "node {id} already joined"),
            DynError::Unknown(id) => write!(f, "node {id} unknown or failed"),
            DynError::LookupFailed(k) => write!(f, "lookup for {k} failed to converge"),
            DynError::EmptyNetwork => write!(f, "network is empty"),
        }
    }
}

impl std::error::Error for DynError {}

#[derive(Debug, Clone)]
struct DynNode {
    /// Successor list, nearest first (Chord's r-entry repair list).
    succ_list: Vec<Id>,
    pred: Option<Id>,
    fingers: Vec<Option<Id>>,
    /// Round-robin index for incremental fix_fingers.
    next_finger: u32,
}

/// A dynamic Chord network under explicit protocol rounds.
///
/// Time is modelled in rounds: the caller interleaves `join`, `fail`,
/// [`DynChord::stabilize_round`] and [`DynChord::fix_fingers_round`] as
/// the experiment requires, and reads RPC counters from
/// [`DynChord::stats`].
#[derive(Debug, Clone)]
pub struct DynChord {
    space: IdSpace,
    succ_list_len: usize,
    nodes: BTreeMap<Id, DynNode>,
    stats: MaintStats,
}

impl DynChord {
    /// An empty network over `space` with `succ_list_len`-entry
    /// successor lists (Chord recommends r = O(log N); 8 is plenty for
    /// our network sizes).
    #[must_use]
    pub fn new(space: IdSpace, succ_list_len: usize) -> Self {
        assert!(succ_list_len >= 1, "successor list must hold at least one entry");
        DynChord { space, succ_list_len, nodes: BTreeMap::new(), stats: MaintStats::default() }
    }

    /// RPC counters.
    #[must_use]
    pub fn stats(&self) -> MaintStats {
        self.stats
    }

    /// Resets RPC counters (e.g. after warm-up).
    pub fn reset_stats(&mut self) {
        self.stats = MaintStats::default();
    }

    /// Alive node count.
    #[must_use]
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// True if no nodes are alive.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    /// Ids of all alive nodes, ascending.
    #[must_use]
    pub fn node_ids(&self) -> Vec<Id> {
        self.nodes.keys().copied().collect()
    }

    /// True if `id` is alive.
    #[must_use]
    pub fn contains(&self, id: Id) -> bool {
        self.nodes.contains_key(&id)
    }

    fn alive(&self, id: Id) -> bool {
        self.nodes.contains_key(&id)
    }

    /// First alive successor of `n`, following its successor list.
    fn live_successor(&self, n: Id) -> Option<Id> {
        let node = self.nodes.get(&n)?;
        node.succ_list.iter().copied().find(|s| self.alive(*s))
    }

    /// Creates the first node of the network.
    ///
    /// # Errors
    /// [`DynError::Duplicate`] if the id exists.
    pub fn create(&mut self, id: Id) -> Result<(), DynError> {
        if self.nodes.contains_key(&id) {
            return Err(DynError::Duplicate(id));
        }
        let bits = self.space.bits() as usize;
        self.nodes.insert(
            id,
            DynNode {
                succ_list: vec![id],
                pred: Some(id),
                fingers: vec![None; bits],
                next_finger: 0,
            },
        );
        Ok(())
    }

    /// Joins `id` through `bootstrap` (§4.4 of the Chord TR): look up
    /// the successor of `id`, adopt it, and leave the rest to
    /// stabilization.
    ///
    /// # Errors
    /// [`DynError::Duplicate`] / [`DynError::Unknown`] /
    /// [`DynError::LookupFailed`].
    pub fn join(&mut self, id: Id, bootstrap: Id) -> Result<(), DynError> {
        if self.nodes.contains_key(&id) {
            return Err(DynError::Duplicate(id));
        }
        if !self.alive(bootstrap) {
            return Err(DynError::Unknown(bootstrap));
        }
        let (succ, hops) = self.find_successor(bootstrap, id)?;
        self.stats.join_msgs += hops as u64 + 1; // +1 for the join RPC itself
        let bits = self.space.bits() as usize;
        let mut succ_list = vec![succ];
        if let Some(s) = self.nodes.get(&succ) {
            succ_list.extend(s.succ_list.iter().copied().take(self.succ_list_len - 1));
            self.stats.join_msgs += 1; // fetching successor's list
        }
        self.nodes.insert(
            id,
            DynNode { succ_list, pred: None, fingers: vec![None; bits], next_finger: 0 },
        );
        Ok(())
    }

    /// Silent failure: the node vanishes without notifying anyone.
    ///
    /// # Errors
    /// [`DynError::Unknown`] if the node is not alive.
    pub fn fail(&mut self, id: Id) -> Result<(), DynError> {
        self.nodes.remove(&id).map(|_| ()).ok_or(DynError::Unknown(id))
    }

    /// Graceful leave: hands its key range to the successor and splices
    /// predecessor/successor pointers before vanishing (costs 2 RPCs).
    ///
    /// # Errors
    /// [`DynError::Unknown`] if the node is not alive.
    pub fn leave(&mut self, id: Id) -> Result<(), DynError> {
        let node = self.nodes.remove(&id).ok_or(DynError::Unknown(id))?;
        let succ = node.succ_list.iter().copied().find(|s| self.alive(*s));
        let pred = node.pred.filter(|p| self.alive(*p));
        self.stats.stabilize_msgs += 2;
        if let (Some(s), Some(p)) = (succ, pred) {
            if let Some(sn) = self.nodes.get_mut(&s) {
                sn.pred = Some(p);
            }
            if let Some(pn) = self.nodes.get_mut(&p) {
                if let Some(first) = pn.succ_list.first_mut() {
                    *first = s;
                }
            }
        }
        Ok(())
    }

    /// Iterative `find_successor` over the current (possibly stale)
    /// state, skipping dead pointers. Returns the owner and hop count.
    ///
    /// # Errors
    /// [`DynError::Unknown`] for a dead origin,
    /// [`DynError::LookupFailed`] if the hop budget is exhausted.
    pub fn find_successor(&mut self, from: Id, key: Key) -> Result<(Id, usize), DynError> {
        let t = self.find_successor_traced(from, key)?;
        Ok((t.owner, t.path.len() - 1))
    }

    /// Like [`DynChord::find_successor`] but returns the full node path
    /// (for latency accounting) and the number of RPC timeouts the
    /// lookup paid rerouting around dead table entries.
    ///
    /// # Errors
    /// Same as [`DynChord::find_successor`].
    pub fn find_successor_traced(&mut self, from: Id, key: Key) -> Result<LookupTrace, DynError> {
        if !self.alive(from) {
            return Err(DynError::Unknown(from));
        }
        let budget = 2 * (self.nodes.len() + self.space.bits() as usize) + 4;
        let mut cur = from;
        let mut path = vec![from];
        let mut timeouts = 0u64;
        loop {
            if path.len() - 1 > budget {
                return Err(DynError::LookupFailed(key));
            }
            let succ = match self.live_successor_counting(cur, &mut timeouts) {
                Some(s) => s,
                None => {
                    self.stats.timeout_msgs += timeouts;
                    return Err(DynError::LookupFailed(key));
                }
            };
            if self.space.in_open_closed(cur, succ, key) {
                if succ != cur {
                    path.push(succ);
                    self.stats.lookup_msgs += 1;
                }
                self.stats.timeout_msgs += timeouts;
                return Ok(LookupTrace { owner: succ, path, timeouts });
            }
            let next = self.closest_preceding_alive(cur, key, &mut timeouts).unwrap_or(succ);
            let next = if next == cur { succ } else { next };
            path.push(next);
            self.stats.lookup_msgs += 1;
            cur = next;
        }
    }

    /// First alive successor of `cur`, counting each dead entry tried
    /// before it as one timed-out RPC.
    fn live_successor_counting(&self, cur: Id, timeouts: &mut u64) -> Option<Id> {
        let node = self.nodes.get(&cur)?;
        for &s in &node.succ_list {
            if self.alive(s) {
                return Some(s);
            }
            *timeouts += 1;
        }
        None
    }

    /// Best alive routing candidate strictly inside `(cur, key)`,
    /// drawn from fingers and the successor list. The real protocol
    /// contacts the best candidate first and only learns it is dead by
    /// timing out, so every dead candidate *better* than the returned
    /// one costs a timed-out RPC.
    fn closest_preceding_alive(&self, cur: Id, key: Key, timeouts: &mut u64) -> Option<Id> {
        let node = self.nodes.get(&cur)?;
        // Distinct routing candidates strictly inside (cur, key).
        let mut cands: Vec<Id> = Vec::new();
        for cand in node.fingers.iter().rev().flatten().copied().chain(node.succ_list.iter().copied())
        {
            if cand != cur && self.space.in_open(cur, key, cand) && !cands.contains(&cand) {
                cands.push(cand);
            }
        }
        let best = cands
            .iter()
            .copied()
            .filter(|&c| self.alive(c))
            .reduce(|a, b| self.space.closer_predecessor(key, a, b));
        // The node tries candidates best-first, so it times out once on
        // every dead candidate closer to the key than the hop it ends
        // up taking (all of them, if none is alive).
        *timeouts += cands
            .iter()
            .filter(|&&c| {
                !self.alive(c)
                    && best.is_none_or(|b| self.space.closer_predecessor(key, c, b) == c)
            })
            .count() as u64;
        best
    }

    /// One stabilization round over every alive node (in id order):
    /// `stabilize` + `notify` + successor-list refresh, exactly the
    /// Chord TR pseudo-code.
    pub fn stabilize_round(&mut self) {
        let ids: Vec<Id> = self.nodes.keys().copied().collect();
        for n in ids {
            if !self.alive(n) {
                continue;
            }
            // Repair: first alive successor.
            let succ = match self.live_successor(n) {
                Some(s) => s,
                None => continue,
            };
            self.stats.stabilize_msgs += 1; // ask successor for its predecessor
            let x = self.nodes.get(&succ).and_then(|s| s.pred);
            let new_succ = match x {
                Some(x) if x != n && self.alive(x) && self.space.in_open(n, succ, x) => x,
                _ => succ,
            };
            // Refresh our successor list from the (new) successor's list.
            self.stats.stabilize_msgs += 1;
            let mut list = vec![new_succ];
            if let Some(sn) = self.nodes.get(&new_succ) {
                list.extend(
                    sn.succ_list
                        .iter()
                        .copied()
                        .filter(|s| *s != n)
                        .take(self.succ_list_len - 1),
                );
            }
            if let Some(me) = self.nodes.get_mut(&n) {
                me.succ_list = list;
            }
            // notify(new_succ, n)
            self.stats.stabilize_msgs += 1;
            let space = self.space;
            let cur_pred = self.nodes.get(&new_succ).and_then(|sn| sn.pred);
            let adopt = match cur_pred {
                None => true,
                Some(p) => !self.nodes.contains_key(&p) || space.in_open(p, new_succ, n),
            };
            if adopt && new_succ != n {
                if let Some(sn) = self.nodes.get_mut(&new_succ) {
                    sn.pred = Some(n);
                }
            }
        }
    }

    /// One incremental fix-fingers round: every node refreshes a single
    /// finger entry (round-robin), via an internal lookup.
    pub fn fix_fingers_round(&mut self) {
        let ids: Vec<Id> = self.nodes.keys().copied().collect();
        for n in ids {
            if !self.alive(n) {
                continue;
            }
            let (i, start) = {
                let node = self.nodes.get_mut(&n).expect("checked alive");
                let i = node.next_finger;
                node.next_finger = (node.next_finger + 1) % self.space.bits();
                (i, self.space.finger_start(n, i))
            };
            let before = self.stats.lookup_msgs;
            if let Ok((owner, _)) = self.find_successor(n, start) {
                if let Some(node) = self.nodes.get_mut(&n) {
                    node.fingers[i as usize] = Some(owner);
                }
            }
            // Attribute the traffic to finger maintenance, not lookups.
            let spent = self.stats.lookup_msgs - before;
            self.stats.lookup_msgs -= spent;
            self.stats.fix_finger_msgs += spent;
        }
    }

    /// Refreshes *all* fingers of all nodes (a full fix-fingers sweep;
    /// `bits` incremental rounds in one call).
    pub fn fix_all_fingers(&mut self) {
        for _ in 0..self.space.bits() {
            self.fix_fingers_round();
        }
    }

    /// True if following first-successor pointers from the minimum id
    /// visits every alive node exactly once — the Chord ring-consistency
    /// invariant stabilization is meant to (re)establish.
    #[must_use]
    pub fn ring_consistent(&self) -> bool {
        let Some((&start, _)) = self.nodes.iter().next() else {
            return true;
        };
        let mut seen = 0usize;
        let mut cur = start;
        loop {
            let Some(succ) = self.live_successor(cur) else {
                return false;
            };
            seen += 1;
            if seen > self.nodes.len() {
                return false;
            }
            // The *immediate* successor must be the next alive id clockwise.
            let expect = self
                .nodes
                .range((std::ops::Bound::Excluded(cur), std::ops::Bound::Unbounded))
                .next()
                .map_or(start, |(&id, _)| id);
            if succ != expect {
                return false;
            }
            cur = succ;
            if cur == start {
                return seen == self.nodes.len();
            }
        }
    }

    /// The id that *should* own `key` given the alive membership
    /// (ground truth for tests).
    #[must_use]
    pub fn true_owner(&self, key: Key) -> Option<Id> {
        if self.nodes.is_empty() {
            return None;
        }
        self.nodes
            .range(key..)
            .next()
            .map(|(&id, _)| id)
            .or_else(|| self.nodes.keys().next().copied())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn space() -> IdSpace {
        IdSpace::full()
    }

    fn id(i: u64) -> Id {
        Id(i.wrapping_mul(0x9e37_79b9_7f4a_7c15))
    }

    fn build_network(n: usize) -> DynChord {
        let mut net = DynChord::new(space(), 8);
        net.create(id(0)).unwrap();
        for i in 1..n {
            net.join(id(i as u64), id(0)).unwrap();
            // A couple of stabilize rounds lets pointers settle enough
            // for the next join's bootstrap lookup to succeed.
            net.stabilize_round();
            net.stabilize_round();
        }
        for _ in 0..4 {
            net.stabilize_round();
        }
        net.fix_all_fingers();
        net
    }

    #[test]
    fn create_then_join_converges_to_consistent_ring() {
        let net = build_network(24);
        assert!(net.ring_consistent(), "ring inconsistent after joins + stabilization");
    }

    #[test]
    fn duplicate_join_rejected() {
        let mut net = DynChord::new(space(), 4);
        net.create(id(1)).unwrap();
        assert_eq!(net.create(id(1)).unwrap_err(), DynError::Duplicate(id(1)));
        assert_eq!(net.join(id(1), id(1)).unwrap_err(), DynError::Duplicate(id(1)));
    }

    #[test]
    fn join_through_dead_bootstrap_fails() {
        let mut net = DynChord::new(space(), 4);
        net.create(id(1)).unwrap();
        assert_eq!(net.join(id(2), id(99)).unwrap_err(), DynError::Unknown(id(99)));
    }

    #[test]
    fn lookups_resolve_to_true_owner() {
        let mut net = build_network(20);
        for k in 0..50u64 {
            let key = Id(k.wrapping_mul(0x517c_c1b7_2722_0a95));
            let want = net.true_owner(key).unwrap();
            let (got, hops) = net.find_successor(id(3), key).unwrap();
            assert_eq!(got, want, "key {key}");
            assert!(hops <= 2 * (20 + 64));
        }
    }

    #[test]
    fn silent_failures_are_repaired_by_stabilization() {
        let mut net = build_network(30);
        // Kill a quarter of the nodes.
        for i in (0..30u64).step_by(4) {
            net.fail(id(i)).unwrap();
        }
        // (Successor lists may already mask the failures; stabilization
        // must in any case restore the strict ring invariant.)
        for _ in 0..6 {
            net.stabilize_round();
        }
        assert!(net.ring_consistent(), "stabilization failed to repair the ring");
        net.fix_all_fingers();
        for k in 0..30u64 {
            let key = Id(k.wrapping_mul(0xdead_beef_cafe_f00d));
            let want = net.true_owner(key).unwrap();
            let from = net.node_ids()[0];
            assert_eq!(net.find_successor(from, key).unwrap().0, want);
        }
    }

    #[test]
    fn graceful_leave_keeps_ring_consistent() {
        let mut net = build_network(12);
        net.leave(id(5)).unwrap();
        net.leave(id(9)).unwrap();
        for _ in 0..4 {
            net.stabilize_round();
        }
        assert!(net.ring_consistent());
        assert_eq!(net.len(), 10);
    }

    #[test]
    fn stats_attribute_traffic_to_categories() {
        let mut net = DynChord::new(space(), 4);
        net.create(id(0)).unwrap();
        net.join(id(1), id(0)).unwrap();
        assert!(net.stats().join_msgs > 0);
        let before = net.stats();
        net.stabilize_round();
        assert!(net.stats().stabilize_msgs > before.stabilize_msgs);
        net.fix_fingers_round();
        assert!(net.stats().fix_finger_msgs > 0);
        // Fix-finger traffic must not leak into the lookup counter.
        assert_eq!(net.stats().lookup_msgs, before.lookup_msgs);
        net.reset_stats();
        assert_eq!(net.stats().total(), 0);
    }

    #[test]
    fn traced_lookup_path_matches_hops_and_counts_timeouts() {
        let mut net = build_network(20);
        let key = Id(0x1234_5678_9abc_def0);
        let t = net.find_successor_traced(id(3), key).unwrap();
        let (owner, hops) = net.find_successor(id(3), key).unwrap();
        assert_eq!(t.owner, owner);
        assert_eq!(t.path.len() - 1, hops);
        assert_eq!(t.path[0], id(3));
        assert_eq!(*t.path.last().unwrap(), owner);
        assert_eq!(t.timeouts, 0, "no failures yet, no timeouts");
        assert_eq!(net.stats().timeout_msgs, 0);
        // Kill half the network without repair: lookups now pay
        // timeouts rerouting around dead fingers.
        for i in (0..20u64).step_by(2) {
            let _ = net.fail(id(i));
        }
        let mut paid = 0u64;
        for k in 0..40u64 {
            let key = Id(k.wrapping_mul(0x517c_c1b7_2722_0a95));
            if let Ok(t) = net.find_successor_traced(net.node_ids()[0], key) {
                paid += t.timeouts;
                assert!(net.contains(t.owner));
            }
        }
        assert!(paid > 0, "dead fingers must cost timeouts");
        assert_eq!(net.stats().timeout_msgs >= paid, true);
    }

    #[test]
    fn maint_stats_merge_and_total_cover_new_fields() {
        let a = MaintStats {
            lookup_msgs: 1,
            join_msgs: 2,
            stabilize_msgs: 3,
            fix_finger_msgs: 4,
            timeout_msgs: 5,
            repair_msgs: 6,
        };
        assert_eq!(a.total(), 21);
        let mut b = a;
        b.merge(&a);
        assert_eq!(b.total(), 42);
        assert_eq!(b.timeout_msgs, 10);
        assert_eq!(b.repair_msgs, 12);
    }

    #[test]
    fn empty_network_edge_cases() {
        let net = DynChord::new(space(), 4);
        assert!(net.is_empty());
        assert!(net.ring_consistent());
        assert_eq!(net.true_owner(Id(5)), None);
    }

    #[test]
    fn single_node_owns_all_keys() {
        let mut net = DynChord::new(space(), 4);
        net.create(id(7)).unwrap();
        let (owner, hops) = net.find_successor(id(7), Id(12345)).unwrap();
        assert_eq!(owner, id(7));
        assert_eq!(hops, 0);
    }
}
