//! Reusable, allocation-free path scratch for the routing hot path.
//!
//! Every `RingView::route*` call used to heap-allocate a `Vec<u32>`
//! per layer per lookup — at 100k peers and 10⁵ requests that is
//! millions of short-lived allocations in the steady-state replay
//! loop. [`PathBuf`] removes them: paths up to [`PathBuf::INLINE`]
//! hops (covering Chord's `O(log n)` paths well past 10⁶ peers) live
//! in an inline array; longer paths spill into an internal `Vec`
//! whose capacity is *retained* across [`PathBuf::clear`], so even
//! spilled routing reaches a zero-allocation steady state.

/// A growable `u32` path with inline small-path storage.
///
/// Semantically a `Vec<u32>` that never shrinks its spill capacity;
/// reuse one instance across lookups via [`PathBuf::clear`].
#[derive(Debug, Clone)]
pub struct PathBuf {
    /// Inline storage, used while `len <= INLINE` and not spilled.
    inline: [u32; Self::INLINE],
    /// Elements in `inline` (unused once spilled).
    len: usize,
    /// Spill storage; holds the *entire* path once spilled so
    /// [`PathBuf::as_slice`] stays contiguous.
    spill: Vec<u32>,
    /// True once the path outgrew the inline array.
    spilled: bool,
}

impl PathBuf {
    /// Hops stored without touching the heap. Chord paths are
    /// `O(log n)` — ~9 expected hops at 10⁵ peers — so 24 inline
    /// slots absorb the far tail of realistic workloads.
    pub const INLINE: usize = 24;

    /// An empty scratch. Allocation-free until a path exceeds
    /// [`PathBuf::INLINE`] entries.
    #[must_use]
    pub fn new() -> Self {
        PathBuf { inline: [0; Self::INLINE], len: 0, spill: Vec::new(), spilled: false }
    }

    /// Empties the path, keeping any spill capacity for reuse.
    pub fn clear(&mut self) {
        self.len = 0;
        self.spill.clear();
        self.spilled = false;
    }

    /// Number of entries.
    #[must_use]
    pub fn len(&self) -> usize {
        if self.spilled {
            self.spill.len()
        } else {
            self.len
        }
    }

    /// True if the path holds no entries.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Appends an entry, moving to spill storage when the inline
    /// array is full.
    pub fn push(&mut self, v: u32) {
        if self.spilled {
            self.spill.push(v);
        } else if self.len < Self::INLINE {
            self.inline[self.len] = v;
            self.len += 1;
        } else {
            self.spill.extend_from_slice(&self.inline);
            self.spill.push(v);
            self.spilled = true;
        }
    }

    /// The path as a contiguous slice.
    #[must_use]
    pub fn as_slice(&self) -> &[u32] {
        if self.spilled {
            &self.spill
        } else {
            &self.inline[..self.len]
        }
    }

    /// The path as a mutable slice (used to remap ring positions to
    /// global node indices in place).
    #[must_use]
    pub fn as_mut_slice(&mut self) -> &mut [u32] {
        if self.spilled {
            &mut self.spill
        } else {
            &mut self.inline[..self.len]
        }
    }

    /// Last entry, if any.
    #[must_use]
    pub fn last(&self) -> Option<u32> {
        self.as_slice().last().copied()
    }

    /// Copies the path into a fresh `Vec` (compatibility wrappers).
    #[must_use]
    pub fn to_vec(&self) -> Vec<u32> {
        self.as_slice().to_vec()
    }
}

impl Default for PathBuf {
    fn default() -> Self {
        Self::new()
    }
}

impl PartialEq for PathBuf {
    fn eq(&self, other: &Self) -> bool {
        self.as_slice() == other.as_slice()
    }
}

impl Eq for PathBuf {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn starts_empty_and_pushes_inline() {
        let mut p = PathBuf::new();
        assert!(p.is_empty());
        assert_eq!(p.last(), None);
        p.push(7);
        p.push(9);
        assert_eq!(p.as_slice(), &[7, 9]);
        assert_eq!(p.len(), 2);
        assert_eq!(p.last(), Some(9));
    }

    #[test]
    fn spills_past_inline_capacity_and_stays_contiguous() {
        let mut p = PathBuf::new();
        let n = PathBuf::INLINE as u32 + 10;
        for v in 0..n {
            p.push(v * 3);
        }
        let want: Vec<u32> = (0..n).map(|v| v * 3).collect();
        assert_eq!(p.as_slice(), &want[..]);
        assert_eq!(p.len(), n as usize);
        assert_eq!(p.last(), Some((n - 1) * 3));
        assert_eq!(p.to_vec(), want);
    }

    #[test]
    fn clear_resets_but_keeps_spill_capacity() {
        let mut p = PathBuf::new();
        for v in 0..(PathBuf::INLINE as u32 + 5) {
            p.push(v);
        }
        let cap = p.spill.capacity();
        assert!(cap > 0);
        p.clear();
        assert!(p.is_empty());
        assert_eq!(p.spill.capacity(), cap, "clear must not release spill capacity");
        p.push(42);
        assert_eq!(p.as_slice(), &[42]);
    }

    #[test]
    fn exact_inline_boundary() {
        let mut p = PathBuf::new();
        for v in 0..PathBuf::INLINE as u32 {
            p.push(v);
        }
        assert!(!p.spilled, "boundary fill must stay inline");
        assert_eq!(p.len(), PathBuf::INLINE);
        p.push(999);
        assert!(p.spilled);
        assert_eq!(p.len(), PathBuf::INLINE + 1);
        assert_eq!(p.as_slice()[PathBuf::INLINE], 999);
        assert_eq!(p.as_slice()[..PathBuf::INLINE], (0..PathBuf::INLINE as u32).collect::<Vec<_>>()[..]);
    }

    #[test]
    fn mutable_slice_remaps_in_place() {
        let mut p = PathBuf::new();
        for v in [1u32, 2, 3] {
            p.push(v);
        }
        for v in p.as_mut_slice() {
            *v *= 10;
        }
        assert_eq!(p.as_slice(), &[10, 20, 30]);
    }

    #[test]
    fn equality_compares_contents_not_representation() {
        let mut a = PathBuf::new();
        let mut b = PathBuf::new();
        for v in 0..3 {
            a.push(v);
        }
        // Drive b through a spill and back via clear, then same content.
        for v in 0..(PathBuf::INLINE as u32 + 1) {
            b.push(v);
        }
        b.clear();
        for v in 0..3 {
            b.push(v);
        }
        assert_eq!(a, b);
    }
}
