//! Bounded recycling of ring-arena allocations.
//!
//! Steady-state epoch publishing retires one snapshot per churn batch;
//! without recycling, every retired ring's member/id/seek buffers
//! round-trip through the allocator just to be reallocated at nearly
//! the same size for the next delta application. [`RingArenaPool`] is a
//! bounded free-list the maintenance thread owns exclusively (no
//! locks): dismantled rings deposit their buffers, delta builds
//! withdraw the first one large enough, and anything past the bound is
//! dropped to keep the pool from hoarding a whole history of arenas.

use hieras_id::Id;

/// Cumulative reuse counters of one pool — the source feeding the
/// `serve.epoch.arena_reuse.*` metrics.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ArenaPoolStats {
    /// Withdrawals served by a recycled buffer (no allocation).
    pub reused: u64,
    /// Buffers deposited and retained for reuse.
    pub returned: u64,
    /// Buffers refused because the pool was at capacity.
    pub dropped: u64,
}

/// A bounded free-list of ring-arena buffers (`u32` index/seek arrays
/// and `Id` arenas), single-owner by design.
#[derive(Debug)]
pub struct RingArenaPool {
    u32s: Vec<Vec<u32>>,
    ids: Vec<Vec<Id>>,
    /// Max buffers retained per element type; 0 disables the pool.
    cap: usize,
    stats: ArenaPoolStats,
}

impl RingArenaPool {
    /// A pool retaining at most `cap` buffers of each element type.
    #[must_use]
    pub fn new(cap: usize) -> Self {
        RingArenaPool { u32s: Vec::new(), ids: Vec::new(), cap, stats: ArenaPoolStats::default() }
    }

    /// A pool that never retains anything — every take allocates fresh
    /// and every put drops. The zero-state callers without a recycling
    /// loop pass through the pooled build paths.
    #[must_use]
    pub fn disabled() -> Self {
        Self::new(0)
    }

    /// Withdraws a cleared `u32` buffer with capacity ≥ `min`, or
    /// allocates one.
    pub fn take_u32(&mut self, min: usize) -> Vec<u32> {
        match self.u32s.iter().rposition(|b| b.capacity() >= min) {
            Some(i) => {
                self.stats.reused += 1;
                let mut b = self.u32s.swap_remove(i);
                b.clear();
                b
            }
            None => Vec::with_capacity(min),
        }
    }

    /// Withdraws a cleared `Id` buffer with capacity ≥ `min`, or
    /// allocates one.
    pub fn take_ids(&mut self, min: usize) -> Vec<Id> {
        match self.ids.iter().rposition(|b| b.capacity() >= min) {
            Some(i) => {
                self.stats.reused += 1;
                let mut b = self.ids.swap_remove(i);
                b.clear();
                b
            }
            None => Vec::with_capacity(min),
        }
    }

    /// Deposits a `u32` buffer for reuse (dropped if at capacity or
    /// capacity-less).
    pub fn put_u32(&mut self, buf: Vec<u32>) {
        if buf.capacity() > 0 && self.u32s.len() < self.cap {
            self.stats.returned += 1;
            self.u32s.push(buf);
        } else {
            self.stats.dropped += 1;
        }
    }

    /// Deposits an `Id` buffer for reuse (dropped if at capacity or
    /// capacity-less).
    pub fn put_ids(&mut self, buf: Vec<Id>) {
        if buf.capacity() > 0 && self.ids.len() < self.cap {
            self.stats.returned += 1;
            self.ids.push(buf);
        } else {
            self.stats.dropped += 1;
        }
    }

    /// Buffers currently held, across both free-lists.
    #[must_use]
    pub fn held(&self) -> usize {
        self.u32s.len() + self.ids.len()
    }

    /// Cumulative reuse counters.
    #[must_use]
    pub fn stats(&self) -> ArenaPoolStats {
        self.stats
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn recycles_buffers_up_to_capacity() {
        let mut pool = RingArenaPool::new(2);
        pool.put_u32(Vec::with_capacity(64));
        pool.put_u32(Vec::with_capacity(16));
        pool.put_u32(Vec::with_capacity(32)); // over cap: dropped
        assert_eq!(pool.stats(), ArenaPoolStats { reused: 0, returned: 2, dropped: 1 });
        // Wants 20 slots: the 16-cap buffer is skipped, the 64 serves.
        let b = pool.take_u32(20);
        assert!(b.capacity() >= 20 && b.is_empty());
        assert_eq!(pool.stats().reused, 1);
        // Nothing big enough left: fresh allocation, no reuse counted.
        let c = pool.take_u32(999);
        assert!(c.capacity() >= 999);
        assert_eq!(pool.stats().reused, 1);
        assert_eq!(pool.held(), 1);
    }

    #[test]
    fn disabled_pool_never_retains() {
        let mut pool = RingArenaPool::disabled();
        pool.put_ids(Vec::with_capacity(8));
        assert_eq!(pool.held(), 0);
        assert_eq!(pool.stats().dropped, 1);
        let b = pool.take_ids(4);
        assert!(b.capacity() >= 4);
        assert_eq!(pool.stats().reused, 0);
    }

    #[test]
    fn zero_capacity_buffers_are_not_pooled() {
        let mut pool = RingArenaPool::new(4);
        pool.put_u32(Vec::new());
        assert_eq!(pool.held(), 0, "an unallocated buffer is worthless to recycle");
    }
}
