//! Oracle-mode Chord: packed routing state over a known membership.
//!
//! [`RingView`] is the workhorse shared by plain Chord and every HIERAS
//! layer: given the global id table and a *subset* of node indices, it
//! sorts the subset into a ring and routes keys with the standard Chord
//! iterative algorithm (`closest_preceding_finger` + final delivery hop
//! to the successor).
//!
//! Routing state is *compact*: instead of materializing a `bits`-entry
//! finger table per member (O(len·bits) words, cache-hostile at a
//! million peers), the ring keeps one contiguous, ring-ordered id arena
//! plus a radix *seek index* — a binary-lift jump structure that
//! answers `successor(id)` with one bucketed binary search. The
//! classic `closest_preceding_finger` is then evaluated in closed form:
//! the accepted finger with the highest index is always
//! `successor(me + 2^⌊log2 d(q)⌋)` where `q` is the key's ring
//! predecessor, so routing never needs the table at all and produces
//! hop sequences byte-identical to the per-node tables it replaces.

use crate::{PathBuf, RingArenaPool};
use hieras_id::{Id, IdSpace, Key};
use hieras_rt::Executor;
use std::sync::Arc;

/// Errors constructing a ring.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RingBuildError {
    /// The member list was empty.
    Empty,
    /// Two members share the same identifier (SHA-1 collision or a
    /// duplicated index); the ring would be ambiguous.
    DuplicateId(Id),
    /// A member index exceeded the id table.
    BadIndex(u32),
    /// An id had bits outside the ring's identifier space.
    OutOfSpace(Id),
    /// A delta tried to remove a node that is not a member of the ring.
    NotAMember(u32),
}

impl core::fmt::Display for RingBuildError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            RingBuildError::Empty => write!(f, "cannot build a ring with no members"),
            RingBuildError::DuplicateId(id) => write!(f, "duplicate node id {id}"),
            RingBuildError::BadIndex(i) => write!(f, "member index {i} out of range"),
            RingBuildError::OutOfSpace(id) => write!(f, "id {id} outside identifier space"),
            RingBuildError::NotAMember(i) => write!(f, "node {i} is not a ring member"),
        }
    }
}

impl std::error::Error for RingBuildError {}

/// The hop-by-hop result of one lookup.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LookupPath {
    /// Visited node indices (global), starting with the originator and
    /// ending with the key's owner. Length 1 means the originator
    /// already owned the key.
    pub path: Vec<u32>,
}

impl LookupPath {
    /// Number of routing hops (edges traversed).
    #[must_use]
    pub fn hops(&self) -> usize {
        self.path.len().saturating_sub(1)
    }

    /// The node that owns the key (last element of the path).
    #[must_use]
    pub fn owner(&self) -> u32 {
        *self.path.last().expect("path is never empty")
    }
}

/// Chord routing over an arbitrary membership subset, packed flat.
///
/// Members are positions `0..len` ordered by id; position arithmetic is
/// mod `len`, id arithmetic is mod `2^bits`. State is three contiguous
/// arrays — member indices, the ring-ordered id arena, and the radix
/// seek index — totalling ~12 bytes per member plus ~4 bytes per seek
/// bucket, versus `8·bits` bytes per member for materialized finger
/// tables (hot-path friendly, per the hpc-parallel guides).
#[derive(Debug, Clone)]
pub struct RingView {
    space: IdSpace,
    /// Global id table (index = global node index).
    ids: Arc<[Id]>,
    /// Member global indices, sorted ascending by id.
    members: Vec<u32>,
    /// Ring-ordered id arena: `member_ids[pos]` = id of the member at
    /// `pos`. One contiguous allocation; every routing probe streams
    /// through this array instead of chasing `ids[members[pos]]`.
    member_ids: Vec<Id>,
    /// Radix seek index: `seek[b]` = first position whose id has high
    /// bits ≥ `b` (bucket = id >> seek_shift), `seek[buckets]` = len.
    /// Bounds `successor(id)` to a binary search inside one bucket.
    seek: Vec<u32>,
    /// `bits - log2(buckets)`: right-shift mapping an id to its bucket.
    seek_shift: u32,
}

/// Packed-state equality: two rings are equal when every routing-
/// visible array matches byte for byte (the id-table handle may
/// differ; only its contents under the members matter, and those are
/// pinned by `member_ids`). This is the identity the delta path is
/// CI-gated on against full rebuilds.
impl PartialEq for RingView {
    fn eq(&self, other: &Self) -> bool {
        self.space == other.space
            && self.seek_shift == other.seek_shift
            && self.members == other.members
            && self.member_ids == other.member_ids
            && self.seek == other.seek
    }
}

impl Eq for RingView {}

impl RingView {
    /// Arena entries below which the build fills serially: a single
    /// parallel dispatch costs more than computing this many entries
    /// outright.
    const PAR_ARENA_THRESHOLD: usize = 1 << 16;

    /// Entries per parallel fill chunk (enough work to amortize the
    /// chunk claim, small enough to balance).
    const PAR_ARENA_CHUNK: usize = 8192;

    /// Cap on seek-index resolution: 2^21 buckets (8 MB) is past the
    /// point where buckets average fewer than one member each.
    const MAX_SEEK_BITS: u32 = 21;

    /// Builds a ring over `members` (global indices into `ids`).
    ///
    /// # Errors
    /// See [`RingBuildError`].
    pub fn build(
        space: IdSpace,
        ids: Arc<[Id]>,
        members: &[u32],
    ) -> Result<Self, RingBuildError> {
        Self::build_on(&Executor::default(), space, ids, members)
    }

    /// [`RingView::build`] on a caller-supplied executor: the id arena
    /// and seek index of large rings are filled in parallel. Each entry
    /// is a pure function of its index, so the packed state is
    /// bit-identical at any thread count.
    ///
    /// # Errors
    /// See [`RingBuildError`].
    pub fn build_on(
        exec: &Executor,
        space: IdSpace,
        ids: Arc<[Id]>,
        members: &[u32],
    ) -> Result<Self, RingBuildError> {
        if members.is_empty() {
            return Err(RingBuildError::Empty);
        }
        for &m in members {
            let id = *ids.get(m as usize).ok_or(RingBuildError::BadIndex(m))?;
            if !space.contains(id) {
                return Err(RingBuildError::OutOfSpace(id));
            }
        }
        let mut sorted: Vec<u32> = members.to_vec();
        sorted.sort_unstable_by_key(|&m| ids[m as usize]);
        for w in sorted.windows(2) {
            if ids[w[0] as usize] == ids[w[1] as usize] {
                return Err(RingBuildError::DuplicateId(ids[w[0] as usize]));
            }
        }
        let members = sorted;
        let len = members.len();
        let parallel = exec.threads() > 1;
        // Ring-ordered id arena, one contiguous allocation.
        let mut member_ids = vec![Id(0); len];
        let id_entry = |j: usize| ids[members[j] as usize];
        if len >= Self::PAR_ARENA_THRESHOLD && parallel {
            exec.par_fill(&mut member_ids, Self::PAR_ARENA_CHUNK, id_entry);
        } else {
            for (j, slot) in member_ids.iter_mut().enumerate() {
                *slot = id_entry(j);
            }
        }
        let (seek, seek_shift) = Self::seek_index(exec, space, &member_ids, Vec::new());
        Ok(RingView { space, ids, members, member_ids, seek, seek_shift })
    }

    /// Builds the radix seek index over a sorted id arena into `seek`
    /// (reusing its allocation when large enough). The one seek
    /// builder every construction path shares — full builds and delta
    /// applications produce the index from the same formula, so their
    /// packed state is byte-identical by construction.
    ///
    /// Each entry is the partition point of the bucket's id floor — a
    /// pure function of the bucket number, hence deterministic under
    /// `par_fill` at any thread count.
    fn seek_index(
        exec: &Executor,
        space: IdSpace,
        member_ids: &[Id],
        mut seek: Vec<u32>,
    ) -> (Vec<u32>, u32) {
        let len = member_ids.len();
        let s = len
            .next_power_of_two()
            .trailing_zeros()
            .min(space.bits())
            .min(Self::MAX_SEEK_BITS);
        let seek_shift = space.bits() - s;
        let buckets = 1usize << s;
        seek.clear();
        seek.resize(buckets + 1, 0);
        let seek_entry = |b: usize| -> u32 {
            if b == 0 {
                return 0;
            }
            let floor = Id((b as u64) << seek_shift);
            member_ids.partition_point(|&m| m < floor) as u32
        };
        if buckets >= Self::PAR_ARENA_THRESHOLD && exec.threads() > 1 {
            exec.par_fill(&mut seek[..buckets], Self::PAR_ARENA_CHUNK, seek_entry);
        } else {
            for (b, slot) in seek.iter_mut().take(buckets).enumerate() {
                *slot = seek_entry(b);
            }
        }
        seek[buckets] = len as u32;
        (seek, seek_shift)
    }

    /// Applies a membership delta to this ring, producing a new ring
    /// **byte-identical** to a full [`RingView::build_on`] over the
    /// post-delta membership — without re-sorting or re-validating the
    /// surviving members. Cost is `O(len + |delta| log len)` (one merge
    /// pass plus the seek-index refresh) versus the full build's
    /// `O(len log len)` sort, and the arenas come out of `pool` when a
    /// recycled buffer fits, so steady-state epochs stop allocating.
    ///
    /// `remove` lists current member nodes to drop; `insert` lists
    /// non-member nodes to add. A node may appear in both (drop then
    /// re-add — a no-op with the same id).
    ///
    /// # Errors
    /// [`RingBuildError::NotAMember`] for a removal that is not a
    /// member (or listed twice), [`RingBuildError::BadIndex`] /
    /// [`RingBuildError::OutOfSpace`] / [`RingBuildError::DuplicateId`]
    /// for invalid insertions, [`RingBuildError::Empty`] when the delta
    /// would empty the ring.
    pub fn apply_delta(&self, remove: &[u32], insert: &[u32]) -> Result<Self, RingBuildError> {
        self.apply_delta_on(
            &Executor::new(1),
            remove,
            insert,
            &mut RingArenaPool::disabled(),
        )
    }

    /// [`RingView::apply_delta`] on a caller-supplied executor and
    /// arena pool (the serving maintainer's form).
    ///
    /// # Errors
    /// See [`RingView::apply_delta`].
    pub fn apply_delta_on(
        &self,
        exec: &Executor,
        remove: &[u32],
        insert: &[u32],
        pool: &mut RingArenaPool,
    ) -> Result<Self, RingBuildError> {
        // Validate and id-sort the insert batch.
        let mut ins: Vec<(Id, u32)> = Vec::with_capacity(insert.len());
        for &m in insert {
            let id = *self.ids.get(m as usize).ok_or(RingBuildError::BadIndex(m))?;
            if !self.space.contains(id) {
                return Err(RingBuildError::OutOfSpace(id));
            }
            ins.push((id, m));
        }
        ins.sort_unstable();
        for w in ins.windows(2) {
            if w[0].0 == w[1].0 {
                return Err(RingBuildError::DuplicateId(w[0].0));
            }
        }
        // Resolve removals to ring positions.
        let mut rem_pos: Vec<u32> = Vec::with_capacity(remove.len());
        for &m in remove {
            rem_pos.push(self.position_of(m).ok_or(RingBuildError::NotAMember(m))?);
        }
        rem_pos.sort_unstable();
        for w in rem_pos.windows(2) {
            if w[0] == w[1] {
                return Err(RingBuildError::NotAMember(self.members[w[0] as usize]));
            }
        }
        let len = self.members.len();
        let new_len = len - rem_pos.len() + ins.len();
        if new_len == 0 {
            return Err(RingBuildError::Empty);
        }
        // Single merge-splice pass: surviving members stream through in
        // id order, insertions interleave at their sorted slots. The
        // result is exactly the id-sorted member array a full build's
        // sort would produce.
        let mut members = pool.take_u32(new_len);
        let mut member_ids = pool.take_ids(new_len);
        let (mut ri, mut ii) = (0usize, 0usize);
        for pos in 0..len {
            let id = self.member_ids[pos];
            while ii < ins.len() && ins[ii].0 < id {
                member_ids.push(ins[ii].0);
                members.push(ins[ii].1);
                ii += 1;
            }
            if ri < rem_pos.len() && rem_pos[ri] as usize == pos {
                ri += 1;
                continue;
            }
            if ii < ins.len() && ins[ii].0 == id {
                return Err(RingBuildError::DuplicateId(id));
            }
            member_ids.push(id);
            members.push(self.members[pos]);
        }
        for &(id, m) in &ins[ii..] {
            member_ids.push(id);
            members.push(m);
        }
        debug_assert_eq!(members.len(), new_len);
        let (seek, seek_shift) =
            Self::seek_index(exec, self.space, &member_ids, pool.take_u32(0));
        Ok(RingView {
            space: self.space,
            ids: Arc::clone(&self.ids),
            members,
            member_ids,
            seek,
            seek_shift,
        })
    }

    /// Order-sensitive digest of the packed routing state (member
    /// indices, id arena, seek index, seek shift) — a cheap fingerprint
    /// the delta-vs-full identity gates chain across whole hierarchies.
    #[must_use]
    pub fn arena_digest(&self) -> u64 {
        let mut h = hieras_rt::splitmix64(
            0x5ee4_a12e_5000_0000 ^ u64::from(self.space.bits()) ^ (self.members.len() as u64) << 8,
        );
        let mut mix = |v: u64| h = hieras_rt::splitmix64(h ^ v);
        for &m in &self.members {
            mix(u64::from(m));
        }
        for &id in &self.member_ids {
            mix(id.0);
        }
        for &s in &self.seek {
            mix(u64::from(s));
        }
        mix(u64::from(self.seek_shift));
        h
    }

    /// Dismantles this ring into `pool`, handing back its arena
    /// allocations for the next delta application to reuse. The id
    /// table handle simply drops (it is shared, never owned).
    pub fn recycle_into(self, pool: &mut RingArenaPool) {
        pool.put_u32(self.members);
        pool.put_ids(self.member_ids);
        pool.put_u32(self.seek);
    }

    /// Position of the first member with id ≥ `target`, wrapping to 0 —
    /// `successor(target)` in Chord terms. One seek-bucket lookup plus a
    /// binary search confined to that bucket.
    fn succ_pos(&self, target: Id) -> u32 {
        let len = self.member_ids.len();
        // Ids past the space (possible only for out-of-space queries)
        // clamp to the last bucket and resolve to position len → 0,
        // matching a plain wrapped binary search.
        let b = if self.seek_shift >= 64 {
            0
        } else {
            ((target.0 >> self.seek_shift) as usize).min(self.seek.len() - 2)
        };
        let lo = self.seek[b] as usize;
        let hi = self.seek[b + 1] as usize;
        let p = lo + self.member_ids[lo..hi].partition_point(|&m| m < target);
        (p % len) as u32
    }

    /// Id of the member at `pos`, read from the packed arena.
    #[inline]
    fn member_id(&self, pos: u32) -> Id {
        self.member_ids[pos as usize]
    }

    /// Bytes held by this ring's packed routing state (member indices,
    /// id arena, seek index).
    #[must_use]
    pub fn arena_bytes(&self) -> usize {
        self.members.len() * core::mem::size_of::<u32>()
            + self.member_ids.len() * core::mem::size_of::<Id>()
            + self.seek.len() * core::mem::size_of::<u32>()
    }

    /// The identifier space of this ring.
    #[must_use]
    pub fn space(&self) -> IdSpace {
        self.space
    }

    /// Number of members.
    #[must_use]
    pub fn len(&self) -> usize {
        self.members.len()
    }

    /// True if the ring has exactly one member (never zero by construction).
    #[must_use]
    pub fn is_empty(&self) -> bool {
        false
    }

    /// Shared handle to the global id table this ring indexes into.
    /// Snapshot builders clone this `Arc` to assemble subset rings (a
    /// churned membership, a re-binned hierarchy) without copying the
    /// table itself — every epoch of a serving hierarchy shares one
    /// id arena.
    #[must_use]
    pub fn ids_arc(&self) -> &Arc<[Id]> {
        &self.ids
    }

    /// Member global indices in ring order.
    #[must_use]
    pub fn members(&self) -> &[u32] {
        &self.members
    }

    /// Global node index of the member at `pos`.
    #[must_use]
    pub fn node_at(&self, pos: u32) -> u32 {
        self.members[pos as usize]
    }

    /// Id of the member at `pos`.
    #[must_use]
    pub fn id_at(&self, pos: u32) -> Id {
        self.member_ids[pos as usize]
    }

    /// Ring position of global node `node`, if it is a member.
    #[must_use]
    pub fn position_of(&self, node: u32) -> Option<u32> {
        let id = *self.ids.get(node as usize)?;
        let p = self.member_ids.binary_search(&id).ok()?;
        (self.members[p] == node).then_some(p as u32)
    }

    /// Position of the ring successor of `key`: the member owning the key.
    #[must_use]
    pub fn successor_of_key(&self, key: Key) -> u32 {
        self.succ_pos(key)
    }

    /// Position of the i-th finger of the member at `pos`:
    /// successor(member_id + 2^i), computed on demand from the seek
    /// index (the packed representation stores no finger table).
    #[must_use]
    pub fn finger(&self, pos: u32, i: u32) -> u32 {
        self.succ_pos(self.space.finger_start(self.member_id(pos), i))
    }

    /// Ring successor (next member clockwise).
    #[must_use]
    pub fn successor(&self, pos: u32) -> u32 {
        ((pos as usize + 1) % self.members.len()) as u32
    }

    /// Ring predecessor (previous member clockwise).
    #[must_use]
    pub fn predecessor(&self, pos: u32) -> u32 {
        ((pos as usize + self.members.len() - 1) % self.members.len()) as u32
    }

    /// The member of this ring whose finger table the Chord paper's
    /// `closest_preceding_finger(pos, key)` would return: the highest
    /// finger of `pos` lying strictly inside `(id(pos), key)`.
    ///
    /// Evaluated in closed form over the packed arena. Let `q` be the
    /// key's ring predecessor — the member maximizing clockwise
    /// distance `d(q)` from `pos` among members strictly inside the
    /// arc. The highest finger index with a member inside the arc is
    /// `i* = ⌊log2 d(q)⌋` (finger `i` lands on the first member at
    /// distance ≥ 2^i, and for `i > i*` that member is at or past the
    /// key), so the answer is `successor(me + 2^i*)` — identical to
    /// scanning a materialized table from the top.
    #[must_use]
    pub fn closest_preceding_finger(&self, pos: u32, key: Key) -> u32 {
        let len = self.member_ids.len();
        let q = ((self.succ_pos(key) as usize + len - 1) % len) as u32;
        if q == pos {
            // No member strictly inside (id(pos), key): the table scan
            // would reject every finger and fall back to `pos`.
            return pos;
        }
        let me = self.member_id(pos);
        let dp = self.space.distance_cw(me, self.member_id(q));
        let i = 63 - dp.leading_zeros();
        self.succ_pos(self.space.finger_start(me, i))
    }

    /// Routes `key` from the member at `start`, returning the sequence
    /// of *positions* visited (starting with `start`, ending with the
    /// ring successor of `key`).
    ///
    /// Standard iterative Chord: forward to the closest preceding
    /// finger while the key lies beyond the current node's successor,
    /// then take the final delivery hop. Terminates in at most
    /// `O(log len)` hops for balanced rings; a hard cap of
    /// `len + bits` hops guards against table-construction bugs.
    #[must_use]
    pub fn route(&self, start: u32, key: Key) -> Vec<u32> {
        let mut path = PathBuf::new();
        self.route_into(start, key, &mut path);
        path.to_vec()
    }

    /// Allocation-free form of [`RingView::route`]: clears `out` and
    /// fills it with the visited positions. Reusing one [`PathBuf`]
    /// across lookups keeps the replay hot path off the heap.
    pub fn route_into(&self, start: u32, key: Key, out: &mut PathBuf) {
        self.route_core(start, key, false, out);
    }

    /// The single iterative-routing core both public routes share.
    ///
    /// Both walk identically — forward to the closest preceding finger
    /// until the key lands in the next interval — and differ only at
    /// the stop: delivery (`to_predecessor == false`) takes the final
    /// hop to the key's owner, hand-off (`to_predecessor == true`)
    /// stops at (or steps back to) the owner's predecessor.
    ///
    /// The key's ring predecessor `q` (see
    /// [`RingView::closest_preceding_finger`]) does not depend on the
    /// current hop, so it is resolved once up front; each hop then
    /// costs one distance, one leading-zeros, and one seek-bounded
    /// binary search over the packed arena.
    fn route_core(&self, start: u32, key: Key, to_predecessor: bool, out: &mut PathBuf) {
        out.clear();
        out.push(start);
        let len = self.member_ids.len();
        let key_pred = ((self.succ_pos(key) as usize + len - 1) % len) as u32;
        let mut cur = start;
        let cap = len + self.space.bits() as usize + 2;
        loop {
            assert!(out.len() <= cap, "routing did not terminate — seek index corrupt");
            // Ownership check via the predecessor pointer (the paper notes
            // "predecessor and successor lists can be used to accelerate
            // the process"): if the current node already owns the key,
            // stop immediately instead of routing the long way around.
            let pred = self.predecessor(cur);
            if self.space.in_open_closed(self.member_id(pred), self.member_id(cur), key) {
                // `cur` owns the key; `pred` closest-precedes it.
                if to_predecessor && pred != cur {
                    out.push(pred);
                }
                return;
            }
            let succ = self.successor(cur);
            if self.space.in_open_closed(self.member_id(cur), self.member_id(succ), key) {
                // Key owned by our successor; deliver (unless we own it:
                // a single-member ring has successor == self), or stop
                // here — `cur` is the closest preceding member.
                if !to_predecessor && succ != cur {
                    out.push(succ);
                }
                return;
            }
            // Closed-form closest preceding finger; when no member lies
            // strictly inside (id(cur), key) — i.e. cur is the key's
            // predecessor itself, already excluded by the stop checks —
            // fall forward to the successor like the table scan would.
            let next = if key_pred == cur {
                succ
            } else {
                let me = self.member_id(cur);
                let dp = self.space.distance_cw(me, self.member_id(key_pred));
                let i = 63 - dp.leading_zeros();
                self.succ_pos(self.space.finger_start(me, i))
            };
            out.push(next);
            cur = next;
        }
    }

    /// Routes `key` from the member at `start`, stopping at the closest
    /// *preceding* member of the key — the member whose
    /// `(id, successor-id]` interval contains it — instead of taking the
    /// final delivery hop.
    ///
    /// This is the hand-off point HIERAS's m-loop needs between layers
    /// (§3.2): continuing one layer up from the predecessor leaves only
    /// the short forward arc to the key, whereas continuing from the
    /// ring-local owner (whose id lies *past* the key) would force the
    /// next layer to route almost the whole circle. If `start` itself
    /// owns the key ring-locally, its predecessor pointer supplies the
    /// answer in one backward hop.
    #[must_use]
    pub fn route_to_predecessor(&self, start: u32, key: Key) -> Vec<u32> {
        let mut path = PathBuf::new();
        self.route_to_predecessor_into(start, key, &mut path);
        path.to_vec()
    }

    /// Allocation-free form of [`RingView::route_to_predecessor`]:
    /// clears `out` and fills it with the visited positions.
    pub fn route_to_predecessor_into(&self, start: u32, key: Key, out: &mut PathBuf) {
        self.route_core(start, key, true, out);
    }

    /// Average number of distinct fingers per member — the table-size
    /// statistic used by the §3.4 cost analysis. The packed form stores
    /// no tables, so the rows are recomputed on demand from the seek
    /// index; results match the materialized tables entry for entry.
    #[must_use]
    pub fn avg_distinct_fingers(&self) -> f64 {
        let bits = self.space.bits();
        let mut total = 0usize;
        let mut scratch: Vec<u32> = Vec::with_capacity(bits as usize);
        for pos in 0..self.members.len() as u32 {
            scratch.clear();
            scratch.extend((0..bits).map(|i| self.finger(pos, i)));
            scratch.sort_unstable();
            scratch.dedup();
            total += scratch.len();
        }
        total as f64 / self.members.len() as f64
    }
}

/// Plain Chord over the full membership — the paper's baseline.
///
/// A thin wrapper around [`RingView`] covering every node, returning
/// [`LookupPath`]s in *global node indices*.
#[derive(Debug, Clone)]
pub struct ChordOracle {
    ring: RingView,
}

impl ChordOracle {
    /// Builds the global Chord ring over all ids.
    ///
    /// # Errors
    /// See [`RingBuildError`].
    pub fn build(space: IdSpace, ids: Arc<[Id]>) -> Result<Self, RingBuildError> {
        Self::build_on(&Executor::default(), space, ids)
    }

    /// [`ChordOracle::build`] on a caller-supplied executor (parallel
    /// finger-table fill for large memberships, bit-identical at any
    /// thread count).
    ///
    /// # Errors
    /// See [`RingBuildError`].
    pub fn build_on(
        exec: &Executor,
        space: IdSpace,
        ids: Arc<[Id]>,
    ) -> Result<Self, RingBuildError> {
        let members: Vec<u32> = (0..ids.len() as u32).collect();
        Ok(ChordOracle { ring: RingView::build_on(exec, space, ids, &members)? })
    }

    /// The underlying ring view.
    #[must_use]
    pub fn ring(&self) -> &RingView {
        &self.ring
    }

    /// Number of nodes.
    #[must_use]
    pub fn len(&self) -> usize {
        self.ring.len()
    }

    /// Rings are never empty.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        false
    }

    /// Global index of the node owning `key`.
    #[must_use]
    pub fn owner_of(&self, key: Key) -> u32 {
        self.ring.node_at(self.ring.successor_of_key(key))
    }

    /// Looks up `key` starting from global node `src`.
    ///
    /// # Panics
    /// Panics if `src` is not a valid node index.
    #[must_use]
    pub fn lookup(&self, src: u32, key: Key) -> LookupPath {
        let mut scratch = PathBuf::new();
        self.lookup_into(src, key, &mut scratch);
        LookupPath { path: scratch.to_vec() }
    }

    /// Allocation-free form of [`ChordOracle::lookup`]: fills `scratch`
    /// with the visited *global node indices* (origin first, owner
    /// last). The replay hot loop reuses one scratch across requests.
    ///
    /// # Panics
    /// Panics if `src` is not a valid node index.
    pub fn lookup_into(&self, src: u32, key: Key, scratch: &mut PathBuf) {
        let start = self.ring.position_of(src).expect("src must be a member");
        self.ring.route_into(start, key, scratch);
        for p in scratch.as_mut_slice() {
            *p = self.ring.node_at(*p);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ids_of(raw: &[u64]) -> Arc<[Id]> {
        raw.iter().map(|&v| Id(v)).collect::<Vec<_>>().into()
    }

    fn s8() -> IdSpace {
        IdSpace::new(8).unwrap()
    }

    #[test]
    fn build_rejects_empty_and_duplicates() {
        let ids = ids_of(&[1, 5, 5]);
        assert_eq!(
            RingView::build(s8(), ids.clone(), &[]).unwrap_err(),
            RingBuildError::Empty
        );
        assert_eq!(
            RingView::build(s8(), ids, &[0, 1, 2]).unwrap_err(),
            RingBuildError::DuplicateId(Id(5))
        );
    }

    #[test]
    fn build_rejects_bad_index_and_out_of_space() {
        let ids = ids_of(&[1, 300]);
        assert_eq!(
            RingView::build(s8(), ids.clone(), &[0, 7]).unwrap_err(),
            RingBuildError::BadIndex(7)
        );
        assert_eq!(
            RingView::build(s8(), ids, &[0, 1]).unwrap_err(),
            RingBuildError::OutOfSpace(Id(300))
        );
    }

    #[test]
    fn members_are_sorted_by_id() {
        let ids = ids_of(&[90, 10, 50]);
        let r = RingView::build(s8(), ids, &[0, 1, 2]).unwrap();
        assert_eq!(r.members(), &[1, 2, 0]);
        assert_eq!(r.id_at(0), Id(10));
        assert_eq!(r.position_of(2), Some(1));
    }

    #[test]
    fn successor_of_key_wraps() {
        let ids = ids_of(&[10, 50, 90]);
        let r = RingView::build(s8(), ids, &[0, 1, 2]).unwrap();
        assert_eq!(r.successor_of_key(Id(10)), 0); // exact hit
        assert_eq!(r.successor_of_key(Id(11)), 1);
        assert_eq!(r.successor_of_key(Id(90)), 2);
        assert_eq!(r.successor_of_key(Id(91)), 0); // wrap
        assert_eq!(r.successor_of_key(Id(0)), 0);
    }

    #[test]
    fn fingers_match_chord_definition_brute_force() {
        // Nodes at 0,60,120,180,240 in an 8-bit space.
        let ids = ids_of(&[0, 60, 120, 180, 240]);
        let members: Vec<u32> = vec![0, 1, 2, 3, 4];
        let r = RingView::build(s8(), ids.clone(), &members).unwrap();
        let space = s8();
        for pos in 0..5u32 {
            let me = r.id_at(pos);
            for i in 0..8u32 {
                let start = space.finger_start(me, i);
                // Brute-force successor among all ids.
                let mut best: Option<(u64, u32)> = None;
                for p in 0..5u32 {
                    let d = space.distance_cw(start, r.id_at(p));
                    // successor = member minimizing cw distance FROM start TO member
                    let dd = (space.mask() - d) & space.mask(); // invert: want distance start->member
                    let fwd = space.distance_cw(start, r.id_at(p));
                    let _ = dd;
                    if best.map_or(true, |(bd, _)| fwd < bd) {
                        best = Some((fwd, p));
                    }
                }
                assert_eq!(r.finger(pos, i), best.unwrap().1, "pos {pos} finger {i}");
            }
        }
    }

    #[test]
    fn route_reaches_owner_and_counts_final_hop() {
        let ids = ids_of(&[10, 50, 90, 200]);
        let r = RingView::build(s8(), ids, &[0, 1, 2, 3]).unwrap();
        // Key 60 is owned by node id 90 (position 2).
        let path = r.route(0, Id(60));
        assert_eq!(*path.last().unwrap(), 2);
        assert!(path.len() >= 2);
        // Key owned by self: single-element path.
        let path = r.route(0, Id(5)); // owner = successor(5) = id 10 = pos 0
        assert_eq!(path, vec![0]);
    }

    #[test]
    fn single_member_ring_owns_everything() {
        let ids = ids_of(&[42]);
        let r = RingView::build(s8(), ids, &[0]).unwrap();
        for k in [0u64, 41, 42, 43, 255] {
            assert_eq!(r.route(0, Id(k)), vec![0]);
        }
    }

    #[test]
    fn two_member_ring_routes_in_one_hop() {
        let ids = ids_of(&[10, 200]);
        let r = RingView::build(s8(), ids, &[0, 1]).unwrap();
        assert_eq!(r.route(0, Id(150)), vec![0, 1]);
        assert_eq!(r.route(0, Id(5)), vec![0]); // wraps to id 10 = self
    }

    #[test]
    fn oracle_lookup_owner_matches_brute_force() {
        let raw: Vec<u64> = vec![3, 17, 40, 99, 130, 222, 250];
        let ids = ids_of(&raw);
        let c = ChordOracle::build(s8(), ids).unwrap();
        let space = s8();
        for key in 0..=255u64 {
            let key = Id(key);
            let owner = c.owner_of(key);
            // Brute force: minimal cw distance key -> node.
            let brute = (0..raw.len() as u32)
                .min_by_key(|&i| space.distance_cw(key, Id(raw[i as usize])))
                .unwrap();
            assert_eq!(owner, brute, "key {key:?}");
            // Every source agrees.
            for src in 0..raw.len() as u32 {
                let p = c.lookup(src, key);
                assert_eq!(p.owner(), owner, "src {src} key {key:?}");
                assert_eq!(p.path[0], src);
            }
        }
    }

    #[test]
    fn lookup_hops_are_logarithmic() {
        // 128 evenly spread nodes in full space: hops must stay ≤ bits.
        let raw: Vec<u64> = (0..128u64).map(|i| i << 57).collect();
        let ids = ids_of(&raw);
        let c = ChordOracle::build(IdSpace::full(), ids).unwrap();
        let mut max_hops = 0;
        for k in 0..256u64 {
            let key = Id(k.wrapping_mul(0x9e37_79b9_7f4a_7c15));
            let p = c.lookup((k % 128) as u32, key);
            max_hops = max_hops.max(p.hops());
        }
        assert!(max_hops <= 8, "expected ≤ log2(128)+1 hops, saw {max_hops}");
    }

    #[test]
    fn subset_ring_routes_within_subset_only() {
        let raw: Vec<u64> = vec![5, 20, 60, 100, 140, 180, 220, 240];
        let ids = ids_of(&raw);
        let subset = vec![1u32, 3, 5, 7]; // ids 20,100,180,240
        let r = RingView::build(s8(), ids, &subset).unwrap();
        let path = r.route(0, Id(150));
        for &pos in &path {
            assert!(subset.contains(&r.node_at(pos)));
        }
        // Owner within subset of key 150 is id 180 (global 5).
        assert_eq!(r.node_at(*path.last().unwrap()), 5);
    }

    #[test]
    fn avg_distinct_fingers_reasonable() {
        let raw: Vec<u64> = (0..64u64).map(|i| i * 4).collect();
        let ids = ids_of(&raw);
        let r = ChordOracle::build(s8(), ids).unwrap();
        let avg = r.ring().avg_distinct_fingers();
        assert!(avg >= 3.0 && avg <= 8.0, "avg distinct fingers {avg}");
    }

    /// Seeded-loop replacement for the old property test: routing from
    /// any source always terminates at the brute-force owner and never
    /// exceeds the bit-length hop bound.
    #[test]
    fn route_always_finds_owner() {
        let mut rng = hieras_rt::Rng::seed_from_u64(0xc402d);
        for case in 0..256 {
            let seed = rng.random_range(0u64..500);
            let n = rng.random_range(1usize..40);
            let key = Id(rng.next_u64());
            let space = IdSpace::full();
            // Deterministic pseudo-random distinct ids.
            let mut raw: Vec<u64> = (0..n as u64)
                .map(|i| (seed.wrapping_add(i).wrapping_mul(0x9e37_79b9_7f4a_7c15)) ^ (i << 32))
                .collect();
            raw.sort_unstable();
            raw.dedup();
            let ids: Arc<[Id]> = raw.iter().map(|&v| Id(v)).collect::<Vec<_>>().into();
            let c = ChordOracle::build(space, ids).unwrap();
            let brute = (0..raw.len() as u32)
                .min_by_key(|&i| space.distance_cw(key, Id(raw[i as usize])))
                .unwrap();
            for src in 0..raw.len() as u32 {
                let p = c.lookup(src, key);
                assert_eq!(p.owner(), brute, "case {case} src {src}");
                assert!(p.hops() <= raw.len() + 64, "case {case}");
                assert!(p.hops() <= 2 * 64, "case {case}"); // log bound with slack
            }
        }
    }

    #[test]
    fn apply_delta_matches_full_rebuild() {
        let ids = ids_of(&[10, 50, 90, 130, 170, 210, 240, 5]);
        let r = RingView::build(s8(), ids.clone(), &[0, 1, 2, 3]).unwrap();
        // Remove 1 (id 50), insert 5 (id 210) and 7 (id 5).
        let delta = r.apply_delta(&[1], &[5, 7]).unwrap();
        let full = RingView::build(s8(), ids, &[0, 2, 3, 5, 7]).unwrap();
        assert_eq!(delta, full);
        assert_eq!(delta.arena_digest(), full.arena_digest());
        assert_eq!(delta.members(), &[7, 0, 2, 3, 5]);
    }

    #[test]
    fn apply_delta_validates_inputs() {
        let ids = ids_of(&[10, 50, 90, 300]);
        let r = RingView::build(s8(), ids, &[0, 1]).unwrap();
        assert_eq!(r.apply_delta(&[2], &[]).unwrap_err(), RingBuildError::NotAMember(2));
        assert_eq!(r.apply_delta(&[0, 0], &[]).unwrap_err(), RingBuildError::NotAMember(0));
        assert_eq!(r.apply_delta(&[], &[9]).unwrap_err(), RingBuildError::BadIndex(9));
        assert_eq!(
            r.apply_delta(&[], &[3]).unwrap_err(),
            RingBuildError::OutOfSpace(Id(300))
        );
        // Inserting an id already present (node 1 again) is a duplicate.
        assert_eq!(r.apply_delta(&[], &[1]).unwrap_err(), RingBuildError::DuplicateId(Id(50)));
        // Emptying the ring is refused.
        assert_eq!(r.apply_delta(&[0, 1], &[]).unwrap_err(), RingBuildError::Empty);
        // Remove-then-reinsert of the same node is a legal no-op.
        let same = r.apply_delta(&[1], &[1]).unwrap();
        assert_eq!(same, r);
    }

    /// Seeded fuzz: arbitrary remove/insert batches against a full
    /// rebuild of the post-delta membership — byte identity (members,
    /// arena, seek) must hold, including via the pooled path.
    #[test]
    fn apply_delta_fuzz_identity() {
        let mut rng = hieras_rt::Rng::seed_from_u64(0xde17a);
        let exec = Executor::new(1);
        let mut pool = RingArenaPool::new(16);
        for case in 0..200 {
            let n = rng.random_range(4usize..80);
            let raw: Vec<u64> = (0..n as u64)
                .map(|i| i.wrapping_mul(0x9e37_79b9_7f4a_7c15) ^ ((case as u64) << 7))
                .collect();
            let mut sorted = raw.clone();
            sorted.sort_unstable();
            sorted.dedup();
            let ids: Arc<[Id]> = sorted.iter().map(|&v| Id(v)).collect::<Vec<_>>().into();
            let n = ids.len();
            // Current membership: each node in with probability ~2/3.
            let mut members: Vec<u32> = (0..n as u32)
                .filter(|_| rng.random_range(0u32..3) > 0)
                .collect();
            if members.is_empty() {
                members.push(0);
            }
            let ring = RingView::build(IdSpace::full(), Arc::clone(&ids), &members).unwrap();
            // Random delta over the complement/membership.
            let remove: Vec<u32> = members
                .iter()
                .copied()
                .filter(|_| rng.random_range(0u32..4) == 0)
                .collect();
            let insert: Vec<u32> = (0..n as u32)
                .filter(|m| !members.contains(m))
                .filter(|_| rng.random_range(0u32..3) == 0)
                .collect();
            let after: Vec<u32> = members
                .iter()
                .copied()
                .filter(|m| !remove.contains(m))
                .chain(insert.iter().copied())
                .collect();
            if after.is_empty() {
                continue;
            }
            let delta = ring.apply_delta_on(&exec, &remove, &insert, &mut pool).unwrap();
            let full = RingView::build(IdSpace::full(), Arc::clone(&ids), &after).unwrap();
            assert_eq!(delta, full, "case {case}");
            assert_eq!(delta.arena_digest(), full.arena_digest(), "case {case}");
            // Retire the delta ring into the pool for the next case.
            delta.recycle_into(&mut pool);
        }
        assert!(pool.stats().reused > 0, "the pool must have served some builds");
    }
}
