//! Chord DHT — the paper's baseline and HIERAS's underlying routing
//! algorithm.
//!
//! Two operating modes (DESIGN.md §2):
//!
//! * [`RingView`] / [`ChordOracle`] — *oracle mode*: finger tables are
//!   constructed directly from a known membership, lookups are replayed
//!   synchronously and deterministically. This is what trace-driven DHT
//!   simulators (including the paper's) do, and what all figures use.
//!   `RingView` is membership-generic: HIERAS reuses it verbatim to
//!   build the *lower-layer* finger tables over ring subsets, which is
//!   precisely the paper's observation that "the same underlying DHT
//!   routing algorithm keeps being used in different layer rings with
//!   the corresponding finger table" (§3.2).
//! * [`DynChord`] — *dynamic mode*: nodes join through a bootstrap
//!   peer, maintain successor lists and predecessors, run
//!   `stabilize` / `notify` / `fix_fingers` rounds, and may fail
//!   silently. Message counts are tracked for the §3.4 cost analysis.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod dynamic;
mod oracle;
mod path;
mod pool;

pub use dynamic::{DynChord, DynError, LookupTrace, MaintStats};
pub use oracle::{ChordOracle, LookupPath, RingBuildError, RingView};
pub use path::PathBuf;
pub use pool::{ArenaPoolStats, RingArenaPool};
