//! Equivalence properties behind the scale-out replay engine:
//!
//! * routing into a reused (dirty) [`PathBuf`] scratch yields exactly
//!   the path the allocating `route()` wrappers return,
//! * parallel packed-arena construction is bit-identical to serial at
//!   every thread count, and
//! * the closed-form routing over the packed arena reproduces, hop for
//!   hop, the classic top-down scan over materialized finger tables it
//!   replaced.

use hieras_chord::{ChordOracle, PathBuf, RingView};
use hieras_id::{Id, IdSpace};
use hieras_rt::{Executor, Rng};
use std::sync::Arc;

fn scrambled_ids(n: u64) -> Arc<[Id]> {
    (0..n).map(|i| Id(i.wrapping_mul(0x9e37_79b9_7f4a_7c15) | 1)).collect::<Vec<_>>().into()
}

/// The pre-packing algorithm, reconstructed over the public API: scan
/// the (now on-demand) finger table from the top for the highest entry
/// strictly inside `(id(pos), key)`.
fn reference_closest_preceding_finger(r: &RingView, pos: u32, key: Id) -> u32 {
    let me = r.id_at(pos);
    for i in (0..r.space().bits()).rev() {
        let f = r.finger(pos, i);
        if f != pos && r.space().in_open(me, key, r.id_at(f)) {
            return f;
        }
    }
    pos
}

/// The pre-packing iterative route, verbatim: predecessor/successor
/// ownership stops, then forward to the scanned closest preceding
/// finger (successor fallback when the scan returns `pos`).
fn reference_route(r: &RingView, start: u32, key: Id, to_predecessor: bool) -> Vec<u32> {
    let mut out = vec![start];
    let mut cur = start;
    loop {
        assert!(out.len() <= r.len() + 66, "reference route did not terminate");
        let pred = r.predecessor(cur);
        if r.space().in_open_closed(r.id_at(pred), r.id_at(cur), key) {
            if to_predecessor && pred != cur {
                out.push(pred);
            }
            return out;
        }
        let succ = r.successor(cur);
        if r.space().in_open_closed(r.id_at(cur), r.id_at(succ), key) {
            if !to_predecessor && succ != cur {
                out.push(succ);
            }
            return out;
        }
        let next = reference_closest_preceding_finger(r, cur, key);
        let next = if next == cur { succ } else { next };
        out.push(next);
        cur = next;
    }
}

/// Random rings in full and tiny id spaces: the packed closed-form
/// route (and its hand-off variant) must be byte-identical to the old
/// finger-table scan on every hop, including exact-member keys (the
/// distance-zero edge) and single-member rings.
#[test]
fn packed_route_matches_reference_finger_scan() {
    let mut rng = Rng::seed_from_u64(0x5eed_0006);
    for case in 0..200 {
        let space = if case % 3 == 0 { IdSpace::new(8).unwrap() } else { IdSpace::full() };
        let n = rng.random_range(1usize..100);
        let mut raw: Vec<u64> = (0..n).map(|_| rng.next_u64() & space.mask()).collect();
        raw.sort_unstable();
        raw.dedup();
        let ids: Arc<[Id]> = raw.iter().map(|&v| Id(v)).collect::<Vec<_>>().into();
        let members: Vec<u32> = (0..ids.len() as u32).collect();
        let ring = RingView::build(space, ids, &members).expect("valid ring");
        let len = ring.len() as u64;
        for probe in 0..40 {
            let start = rng.next_u64_below(len) as u32;
            let key = if rng.random_bool(0.25) {
                ring.id_at(rng.next_u64_below(len) as u32) // exact member id
            } else {
                Id(rng.next_u64() & space.mask())
            };
            assert_eq!(
                ring.route(start, key),
                reference_route(&ring, start, key, false),
                "case {case} probe {probe}: delivery route diverged"
            );
            assert_eq!(
                ring.route_to_predecessor(start, key),
                reference_route(&ring, start, key, true),
                "case {case} probe {probe}: hand-off route diverged"
            );
            assert_eq!(
                ring.closest_preceding_finger(start, key),
                reference_closest_preceding_finger(&ring, start, key),
                "case {case} probe {probe}: closest preceding finger diverged"
            );
        }
    }
}

/// A ring over every node (positions == member indices).
fn full_ring(n: u64) -> RingView {
    let ids = scrambled_ids(n);
    let members: Vec<u32> = (0..n as u32).collect();
    RingView::build(IdSpace::full(), ids, &members).expect("valid ring")
}

#[test]
fn route_into_reused_scratch_matches_route() {
    let ring = full_ring(257);
    let mut rng = Rng::seed_from_u64(0xfeed_beef);
    let mut scratch = PathBuf::new();
    // Pre-dirty the scratch so the test catches any state leaking
    // between lookups.
    for p in 0..40 {
        scratch.push(p * 3 + 1);
    }
    for _ in 0..2000 {
        let start = rng.next_u64_below(257) as u32;
        let key = Id(rng.next_u64());
        let fresh = ring.route(start, key);
        ring.route_into(start, key, &mut scratch);
        assert_eq!(scratch.as_slice(), &fresh[..], "start={start} key={key:?}");
    }
}

#[test]
fn route_to_predecessor_into_reused_scratch_matches_route_to_predecessor() {
    let ring = full_ring(257);
    let mut rng = Rng::seed_from_u64(0xdead_cafe);
    let mut scratch = PathBuf::new();
    for _ in 0..2000 {
        let start = rng.next_u64_below(257) as u32;
        let key = Id(rng.next_u64());
        let fresh = ring.route_to_predecessor(start, key);
        ring.route_to_predecessor_into(start, key, &mut scratch);
        assert_eq!(scratch.as_slice(), &fresh[..], "start={start} key={key:?}");
    }
}

#[test]
fn lookup_into_reused_scratch_matches_lookup() {
    let oracle = ChordOracle::build(IdSpace::full(), scrambled_ids(300)).expect("valid oracle");
    let mut rng = Rng::seed_from_u64(0x1234_5678);
    let mut scratch = PathBuf::new();
    for _ in 0..1000 {
        let src = rng.next_u64_below(300) as u32;
        let key = Id(rng.next_u64());
        let fresh = oracle.lookup(src, key);
        oracle.lookup_into(src, key, &mut scratch);
        assert_eq!(scratch.as_slice(), &fresh.path[..], "src={src} key={key:?}");
    }
}

#[test]
fn parallel_arena_build_is_bit_identical_across_thread_counts() {
    // 80000 members — past the packed-arena parallel-build threshold,
    // so the multi-thread builds exercise the chunked par_fill path for
    // both the id arena and the seek index.
    const N: u32 = 80_000;
    let ids = scrambled_ids(N as u64);
    let members: Vec<u32> = (0..N).collect();
    let serial = RingView::build_on(&Executor::new(1), IdSpace::full(), Arc::clone(&ids), &members)
        .expect("serial build");
    for threads in [2, 8] {
        let par =
            RingView::build_on(&Executor::new(threads), IdSpace::full(), Arc::clone(&ids), &members)
                .expect("parallel build");
        for pos in (0..N).step_by(37) {
            for i in 0..64u32 {
                assert_eq!(
                    par.finger(pos, i),
                    serial.finger(pos, i),
                    "threads={threads} pos={pos} finger={i}"
                );
            }
        }
        assert_eq!(par.arena_bytes(), serial.arena_bytes(), "threads={threads} arena size");
    }
}

#[test]
fn parallel_build_routes_identically() {
    let ids = scrambled_ids(2048);
    let members: Vec<u32> = (0..2048).collect();
    let rings: Vec<RingView> = [1, 2, 8]
        .iter()
        .map(|&t| {
            RingView::build_on(&Executor::new(t), IdSpace::full(), Arc::clone(&ids), &members)
                .expect("build")
        })
        .collect();
    let mut rng = Rng::seed_from_u64(0xabcd_ef01);
    for _ in 0..500 {
        let start = rng.next_u64_below(2048) as u32;
        let key = Id(rng.next_u64());
        let base = rings[0].route(start, key);
        for (ri, ring) in rings.iter().enumerate().skip(1) {
            assert_eq!(ring.route(start, key), base, "ring {ri} diverged");
        }
    }
}
