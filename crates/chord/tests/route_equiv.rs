//! Equivalence properties behind the scale-out replay engine:
//!
//! * routing into a reused (dirty) [`PathBuf`] scratch yields exactly
//!   the path the allocating `route()` wrappers return, and
//! * parallel finger-table construction is bit-identical to serial at
//!   every thread count.

use hieras_chord::{ChordOracle, PathBuf, RingView};
use hieras_id::{Id, IdSpace};
use hieras_rt::{Executor, Rng};
use std::sync::Arc;

fn scrambled_ids(n: u64) -> Arc<[Id]> {
    (0..n).map(|i| Id(i.wrapping_mul(0x9e37_79b9_7f4a_7c15) | 1)).collect::<Vec<_>>().into()
}

/// A ring over every node (positions == member indices).
fn full_ring(n: u64) -> RingView {
    let ids = scrambled_ids(n);
    let members: Vec<u32> = (0..n as u32).collect();
    RingView::build(IdSpace::full(), ids, &members).expect("valid ring")
}

#[test]
fn route_into_reused_scratch_matches_route() {
    let ring = full_ring(257);
    let mut rng = Rng::seed_from_u64(0xfeed_beef);
    let mut scratch = PathBuf::new();
    // Pre-dirty the scratch so the test catches any state leaking
    // between lookups.
    for p in 0..40 {
        scratch.push(p * 3 + 1);
    }
    for _ in 0..2000 {
        let start = rng.next_u64_below(257) as u32;
        let key = Id(rng.next_u64());
        let fresh = ring.route(start, key);
        ring.route_into(start, key, &mut scratch);
        assert_eq!(scratch.as_slice(), &fresh[..], "start={start} key={key:?}");
    }
}

#[test]
fn route_to_predecessor_into_reused_scratch_matches_route_to_predecessor() {
    let ring = full_ring(257);
    let mut rng = Rng::seed_from_u64(0xdead_cafe);
    let mut scratch = PathBuf::new();
    for _ in 0..2000 {
        let start = rng.next_u64_below(257) as u32;
        let key = Id(rng.next_u64());
        let fresh = ring.route_to_predecessor(start, key);
        ring.route_to_predecessor_into(start, key, &mut scratch);
        assert_eq!(scratch.as_slice(), &fresh[..], "start={start} key={key:?}");
    }
}

#[test]
fn lookup_into_reused_scratch_matches_lookup() {
    let oracle = ChordOracle::build(IdSpace::full(), scrambled_ids(300)).expect("valid oracle");
    let mut rng = Rng::seed_from_u64(0x1234_5678);
    let mut scratch = PathBuf::new();
    for _ in 0..1000 {
        let src = rng.next_u64_below(300) as u32;
        let key = Id(rng.next_u64());
        let fresh = oracle.lookup(src, key);
        oracle.lookup_into(src, key, &mut scratch);
        assert_eq!(scratch.as_slice(), &fresh.path[..], "src={src} key={key:?}");
    }
}

#[test]
fn parallel_finger_build_is_bit_identical_across_thread_counts() {
    // 2048 members × 64 bits = 131072 finger slots — well past the
    // parallel-build threshold, so the multi-thread builds exercise
    // the chunked par_fill path.
    let ids = scrambled_ids(2048);
    let members: Vec<u32> = (0..2048).collect();
    let serial = RingView::build_on(&Executor::new(1), IdSpace::full(), Arc::clone(&ids), &members)
        .expect("serial build");
    for threads in [2, 8] {
        let par =
            RingView::build_on(&Executor::new(threads), IdSpace::full(), Arc::clone(&ids), &members)
                .expect("parallel build");
        for pos in 0..2048u32 {
            for i in 0..64u32 {
                assert_eq!(
                    par.finger(pos, i),
                    serial.finger(pos, i),
                    "threads={threads} pos={pos} finger={i}"
                );
            }
        }
    }
}

#[test]
fn parallel_build_routes_identically() {
    let ids = scrambled_ids(2048);
    let members: Vec<u32> = (0..2048).collect();
    let rings: Vec<RingView> = [1, 2, 8]
        .iter()
        .map(|&t| {
            RingView::build_on(&Executor::new(t), IdSpace::full(), Arc::clone(&ids), &members)
                .expect("build")
        })
        .collect();
    let mut rng = Rng::seed_from_u64(0xabcd_ef01);
    for _ in 0..500 {
        let start = rng.next_u64_below(2048) as u32;
        let key = Id(rng.next_u64());
        let base = rings[0].route(start, key);
        for (ri, ring) in rings.iter().enumerate().skip(1) {
            assert_eq!(ring.route(start, key), base, "ring {ri} diverged");
        }
    }
}
