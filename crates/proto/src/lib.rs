//! Message-level HIERAS protocol engine.
//!
//! The oracle crates compute *what* HIERAS routes; this crate shows the
//! system actually *exchanging the messages* the paper describes —
//! most importantly the §3.3 join choreography (landmark table fetch →
//! binning → ring-table request routed over the global ring →
//! finger-table creation through an in-ring entry point → ring-table
//! modification message).
//!
//! Architecture: node behaviour is a *pure message handler*
//! ([`NodeState::handle`]) that maps an incoming [`Payload`] to a list
//! of outgoing messages, with no knowledge of how messages move. Two
//! transports drive it:
//!
//! * [`SimNet`] — single-threaded, deterministic discrete-event
//!   delivery with per-link latencies from a caller-supplied delay
//!   function; used for join-cost and message-count experiments.
//! * [`ThreadNet`] — one OS thread per node, std mpsc channels, and a
//!   serialized wire format ([`wire`]); demonstrates the same handler
//!   running under real concurrency.
//!
//! Protocol-vs-oracle equivalence is tested: a `SimNet` bootstrapped
//! from a [`hieras_core::HierasOracle`] produces *hop-for-hop identical*
//! lookups, because both sides implement the same §3.2 routing rules.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod messages;
mod sim_net;
mod state;
mod thread_net;
pub mod wire;

pub use messages::Payload;
pub use sim_net::{JoinOutcome, LookupOutcome, RetriedLookup, SimNet, TrafficStats};
pub use state::{LayerState, NodeState};
pub use thread_net::ThreadNet;
