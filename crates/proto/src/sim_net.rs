//! Deterministic discrete-event transport.
//!
//! [`SimNet`] owns every node's [`NodeState`], delivers messages
//! through an [`EventQueue`] with per-link latencies, and exposes the
//! two *drivers* experiments need:
//!
//! * [`SimNet::lookup`] — injects a hierarchical `FindSucc` at a node's
//!   lowest layer and runs the queue until the owner answers.
//! * [`SimNet::join`] — executes the full §3.3 join choreography for a
//!   new node, counting every message.
//!
//! Drivers consume the response messages (`FoundSucc`, `PredIs`, …)
//! addressed to the node they orchestrate; everything else flows
//! through [`NodeState::handle`].

use crate::state::{order_from_name, states_from_oracle};
use crate::{LayerState, NodeState, Payload};
use hieras_core::{HierasConfig, HierasOracle};
use hieras_id::{Id, Key};
use hieras_sim::EventQueue;
use std::collections::HashMap;

/// Message-traffic counters by purpose.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct TrafficStats {
    /// Messages delivered, by payload kind.
    pub by_kind: HashMap<&'static str, u64>,
    /// Total messages delivered.
    pub total: u64,
}

impl TrafficStats {
    fn count(&mut self, kind: &'static str) {
        *self.by_kind.entry(kind).or_insert(0) += 1;
        self.total += 1;
    }
}

/// Result of one message-driven lookup.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LookupOutcome {
    /// The key's owner.
    pub owner: Id,
    /// Routing hops (FindSucc forwardings).
    pub hops: u32,
    /// Simulated time from injection until the owner answered, ms.
    pub latency_ms: u64,
}

/// Result of one §3.3 join.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct JoinOutcome {
    /// Messages exchanged on behalf of this join.
    pub messages: u64,
    /// Simulated wall-clock duration of the join, ms.
    pub duration_ms: u64,
    /// Rings joined (= hierarchy depth).
    pub rings_joined: usize,
    /// How many rings this node *founded* (was first member of).
    pub rings_founded: usize,
}

#[derive(Debug, PartialEq, Eq)]
struct Envelope {
    from: Id,
    to: Id,
    msg_seq: u64,
}

/// A deterministic, single-threaded message-passing HIERAS network.
///
/// The lifetime parameter lets the delay function borrow experiment
/// state (e.g. a latency oracle) instead of owning it.
pub struct SimNet<'a> {
    nodes: HashMap<Id, NodeState>,
    /// Link latency between two nodes, ms.
    delay: Box<dyn Fn(Id, Id) -> u64 + 'a>,
    queue: EventQueue<Envelope>,
    payloads: HashMap<u64, Payload>,
    next_msg: u64,
    next_req: u64,
    stats: TrafficStats,
    config: HierasConfig,
}

impl<'a> SimNet<'a> {
    /// Bootstraps a consistent network from a built oracle (every node
    /// starts with exact successors, predecessors and fingers — a
    /// stabilized system).
    #[must_use]
    pub fn from_oracle(
        oracle: &HierasOracle,
        landmarks: &[u32],
        delay: impl Fn(Id, Id) -> u64 + 'a,
    ) -> Self {
        let states = states_from_oracle(oracle, landmarks);
        let nodes = states.into_iter().map(|s| (s.id, s)).collect();
        SimNet {
            nodes,
            delay: Box::new(delay),
            queue: EventQueue::new(),
            payloads: HashMap::new(),
            next_msg: 0,
            next_req: 0,
            stats: TrafficStats::default(),
            config: oracle.config().clone(),
        }
    }

    /// Number of nodes.
    #[must_use]
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// True if the network has no nodes.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    /// Traffic counters.
    #[must_use]
    pub fn stats(&self) -> &TrafficStats {
        &self.stats
    }

    /// Immutable view of a node's state (tests, diagnostics).
    #[must_use]
    pub fn node(&self, id: Id) -> Option<&NodeState> {
        self.nodes.get(&id)
    }

    /// Current simulated time (ms).
    #[must_use]
    pub fn now(&self) -> u64 {
        self.queue.now()
    }

    fn fresh_req(&mut self) -> u64 {
        self.next_req += 1;
        self.next_req
    }

    fn post(&mut self, from: Id, to: Id, msg: Payload) {
        let d = if from == to { 0 } else { (self.delay)(from, to) };
        let seq = self.next_msg;
        self.next_msg += 1;
        self.payloads.insert(seq, msg);
        self.queue.schedule_in(d, Envelope { from, to, msg_seq: seq });
    }

    /// Runs the queue until a message matching `stop` arrives at
    /// `watch_node` (that message is consumed and returned), or the
    /// queue drains (returns `None`).
    fn run_until(
        &mut self,
        watch_node: Id,
        stop: impl Fn(&Payload) -> bool,
    ) -> Option<(Id, Payload, u64)> {
        while let Some((at, env)) = self.queue.pop() {
            let msg = self.payloads.remove(&env.msg_seq).expect("payload stored at post");
            self.stats.count(msg.kind());
            if env.to == watch_node && stop(&msg) {
                return Some((env.from, msg, at));
            }
            let Some(node) = self.nodes.get_mut(&env.to) else {
                continue; // message to a vanished node: dropped
            };
            for (dest, out) in node.handle(env.from, msg) {
                self.post(env.to, dest, out);
            }
        }
        None
    }

    /// Message-driven hierarchical lookup from `origin` (§3.2).
    ///
    /// # Panics
    /// Panics if `origin` is not a member or the network loses the
    /// request (a protocol bug, surfaced loudly).
    #[must_use]
    pub fn lookup(&mut self, origin: Id, key: Key) -> LookupOutcome {
        let depth = self.nodes.get(&origin).expect("origin must exist").depth() as u8;
        let req = self.fresh_req();
        let start = self.queue.now();
        // The originator processes the FindSucc locally first.
        self.post(origin, origin, Payload::FindSucc { key, layer: depth, origin, req, hops: 0 });
        let (_, msg, at) = self
            .run_until(origin, |m| matches!(m, Payload::FoundSucc { req: r, .. } if *r == req))
            .expect("lookup lost in the network");
        match msg {
            Payload::FoundSucc { owner, hops, .. } => {
                // The routing latency the paper measures is the chain of
                // FindSucc forwardings; subtract the owner's direct
                // response leg (owner == origin ⇔ zero hops, no leg).
                let response_leg =
                    if owner == origin { 0 } else { (self.delay)(owner, origin) };
                LookupOutcome { owner, hops, latency_ms: at - start - response_leg }
            }
            _ => unreachable!("run_until matched FoundSucc"),
        }
    }

    /// RPC helper for drivers: send `msg` to `to` on behalf of
    /// `driver`, then run until the matching reply arrives back.
    fn rpc(
        &mut self,
        driver: Id,
        to: Id,
        msg: Payload,
        matches: impl Fn(&Payload) -> bool,
    ) -> Payload {
        self.post(driver, to, msg);
        let (_, reply, _) =
            self.run_until(driver, matches).expect("rpc reply lost in the network");
        reply
    }

    /// Resolves the ring-local owner of `key` in `layer` by routing
    /// from `via` (an existing ring member) — the "ordinary Chord
    /// routing procedure" §3.3 uses for join-time successors and
    /// ring-table requests. Driver-initiated, so usable before the
    /// driver has joined.
    fn resolve_via(&mut self, driver: Id, via: Id, key: Key, layer: u8) -> (Id, u32) {
        let req = self.fresh_req();
        let msg = Payload::FindRingSucc { key, layer, origin: driver, req, hops: 0 };
        let reply = self.rpc(driver, via, msg, |m| {
            matches!(m, Payload::FoundSucc { req: r, .. } if *r == req)
        });
        match reply {
            Payload::FoundSucc { owner, hops, .. } => (owner, hops),
            _ => unreachable!(),
        }
    }

    /// Executes the §3.3 join choreography for a new node.
    ///
    /// `bootstrap` is the nearby member n′; `rtts` are the newcomer's
    /// measured RTTs to the landmark set (the ping phase happens
    /// outside the overlay). Steps, each a real message exchange:
    ///
    /// 1. fetch the landmark table from n′;
    /// 2. bin locally → landmark order → ring names per layer;
    /// 3. resolve the layer-1 successor through n′ and splice into the
    ///    global ring (GetPred / Notify / UpdateSucc);
    /// 4. for each lower layer: route a ring-table request to the
    ///    holder, fetch the table, enter through a recorded member,
    ///    splice into the ring, copy the entry point's finger table as
    ///    the initial approximation, and send the ring-table
    ///    modification message if the newcomer's id belongs in the
    ///    table (founding the ring if it did not exist).
    ///
    /// # Panics
    /// Panics if `new_id` already exists or `bootstrap` does not.
    pub fn join(&mut self, new_id: Id, bootstrap: Id, rtts: &[u16]) -> JoinOutcome {
        assert!(!self.nodes.contains_key(&new_id), "node already joined");
        assert!(self.nodes.contains_key(&bootstrap), "bootstrap unknown");
        let start_total = self.stats.total;
        let start_time = self.queue.now();
        let space = self.nodes[&bootstrap].space;
        let bits = space.bits();
        let depth = self.config.depth;

        // Step 1: landmark table from n'.
        let req = self.fresh_req();
        let reply = self.rpc(new_id, bootstrap, Payload::GetLandmarks { req }, |m| {
            matches!(m, Payload::LandmarksAre { req: r, .. } if *r == req)
        });
        let landmarks = match reply {
            Payload::LandmarksAre { landmarks, .. } => landmarks,
            _ => unreachable!(),
        };

        // Step 2: bin locally.
        let order = self.config.binning.order(rtts);
        let mut layers: Vec<LayerState> = Vec::with_capacity(depth);
        let mut founded = 0usize;

        // Step 3: global ring (layer 1) through n'.
        let (g_succ, _) = self.resolve_via(new_id, bootstrap, new_id, 1);
        layers.push(self.splice_layer(new_id, 1, String::new(), g_succ, bits));

        // Step 4: lower layers.
        for layer_no in 2..=depth as u8 {
            let plen = self.config.prefix_len(layer_no as usize);
            let ring_name = order.prefix(plen).name();
            let ring_id = order_from_name(&ring_name).ring_id();
            // Ring-table request routed over the global ring (ordinary
            // Chord lookup, §3.3).
            let (holder, _) = self.resolve_via(new_id, bootstrap, ring_id, 1);
            let req = self.fresh_req();
            let reply = self.rpc(
                new_id,
                holder,
                Payload::GetRingTable { ring_name: ring_name.clone(), req },
                |m| matches!(m, Payload::RingTableIs { req: r, .. } if *r == req),
            );
            let table = match reply {
                Payload::RingTableIs { table, .. } => table,
                _ => unreachable!(),
            };
            let entry = table.as_ref().and_then(|t| t.entry_points().first().copied());
            let ls = match entry {
                Some(p) if self.nodes.contains_key(&p) => {
                    // Resolve our in-ring successor through entry point p.
                    let (succ, _) = self.resolve_via(new_id, p, new_id, layer_no);
                    let mut ls = self.splice_layer(new_id, layer_no, ring_name.clone(), succ, bits);
                    // Initial finger approximation: copy p's table (§3.3's
                    // "p generates the finger table of n and sends it back").
                    let req = self.fresh_req();
                    let reply = self.rpc(new_id, p, Payload::GetFingers { layer: layer_no, req }, |m| {
                        matches!(m, Payload::FingersAre { req: r, .. } if *r == req)
                    });
                    if let Payload::FingersAre { fingers, .. } = reply {
                        ls.fingers = fingers;
                    }
                    ls
                }
                _ => {
                    // First member of this ring: found it.
                    founded += 1;
                    LayerState::solo(ring_name.clone(), new_id, bits)
                }
            };
            layers.push(ls);
            // Ring-table modification message (§3.3) — also what creates
            // the table at the holder for a founded ring.
            self.post(new_id, holder, Payload::RingTableUpdate { ring_name, node: new_id });
            self.drain();
        }

        self.nodes.insert(
            new_id,
            NodeState { id: new_id, space, layers, ring_tables: HashMap::new(), landmarks },
        );
        JoinOutcome {
            messages: self.stats.total - start_total,
            duration_ms: self.queue.now() - start_time,
            rings_joined: depth,
            rings_founded: founded,
        }
    }

    /// Splices the joining node between `succ` and `succ`'s current
    /// predecessor in `layer`: GetPred(succ) → adopt pred →
    /// Notify(succ) → UpdateSucc(pred). Returns the new layer state.
    fn splice_layer(
        &mut self,
        new_id: Id,
        layer: u8,
        ring_name: String,
        succ: Id,
        bits: u32,
    ) -> LayerState {
        if succ == new_id {
            return LayerState::solo(ring_name, new_id, bits);
        }
        let req = self.fresh_req();
        let reply = self.rpc(new_id, succ, Payload::GetPred { layer, req }, |m| {
            matches!(m, Payload::PredIs { req: r, .. } if *r == req)
        });
        let pred = match reply {
            Payload::PredIs { pred, .. } => pred,
            _ => unreachable!(),
        };
        self.post(new_id, succ, Payload::Notify { layer });
        if let Some(p) = pred.filter(|&p| p != new_id && p != succ) {
            self.post(new_id, p, Payload::UpdateSucc { layer });
        }
        self.drain();
        LayerState {
            ring_name,
            succ,
            // Until told otherwise we sit between succ's old pred and succ.
            pred: pred.or(Some(succ)),
            fingers: vec![None; bits as usize],
        }
    }

    /// Delivers everything currently in flight.
    fn drain(&mut self) {
        while let Some((_, env)) = self.queue.pop() {
            let msg = self.payloads.remove(&env.msg_seq).expect("payload stored");
            self.stats.count(msg.kind());
            let Some(node) = self.nodes.get_mut(&env.to) else { continue };
            for (dest, out) in node.handle(env.from, msg) {
                self.post(env.to, dest, out);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hieras_core::{Binning, HierasConfig};
    use hieras_id::IdSpace;
    use std::sync::Arc;

    fn build(n: u64, depth: usize) -> (HierasOracle, Vec<Vec<u16>>) {
        let ids: Arc<[Id]> = (0..n)
            .map(|i| Id(i.wrapping_mul(0x9e37_79b9_7f4a_7c15).wrapping_add(1)))
            .collect::<Vec<_>>()
            .into();
        let rtts: Vec<Vec<u16>> = (0..n)
            .map(|i| {
                vec![
                    if i % 2 == 0 { 5 } else { 150 },
                    if i % 4 < 2 { 10 } else { 130 },
                ]
            })
            .collect();
        let o = HierasOracle::from_rtts(
            IdSpace::full(),
            ids,
            &rtts,
            HierasConfig { depth, landmarks: 2, binning: Binning::paper() },
        )
        .unwrap();
        (o, rtts)
    }

    /// Link delay model for tests: cheap within a ring-mate pair,
    /// expensive otherwise — but any deterministic function works.
    fn delay(a: Id, b: Id) -> u64 {
        5 + (a.raw() ^ b.raw()) % 90
    }

    #[test]
    fn message_lookup_matches_oracle_hop_for_hop() {
        let (o, _) = build(40, 2);
        let mut net = SimNet::from_oracle(&o, &[1, 2], delay);
        for k in 0..120u64 {
            let key = Id(k.wrapping_mul(0x517c_c1b7_2722_0a95));
            let src = (k % 40) as u32;
            let oracle_trace = o.route(src, key);
            let got = net.lookup(o.id_of(src), key);
            assert_eq!(got.owner, o.id_of(oracle_trace.destination()), "key {k}");
            assert_eq!(got.hops as usize, oracle_trace.hop_count(), "key {k}");
        }
    }

    #[test]
    fn lookup_latency_accumulates_link_delays() {
        let (o, _) = build(30, 2);
        let mut net = SimNet::from_oracle(&o, &[], delay);
        let key = Id(0xdead_beef);
        let src = o.id_of(3);
        let out = net.lookup(src, key);
        // Latency counts the FindSucc chain; zero hops → zero latency.
        if out.hops == 0 {
            assert_eq!(out.latency_ms, 0);
        } else {
            assert!(out.latency_ms >= u64::from(out.hops) * 5);
        }
    }

    #[test]
    fn join_integrates_new_node_into_all_layers() {
        let (o, _) = build(40, 2);
        let mut net = SimNet::from_oracle(&o, &[1, 2], delay);
        let new_id = Id(0x7777_7777_7777_7777);
        let bootstrap = o.id_of(0);
        let outcome = net.join(new_id, bootstrap, &[5, 10]); // ring "00"
        assert_eq!(outcome.rings_joined, 2);
        assert!(outcome.messages >= 8, "join used only {} messages", outcome.messages);
        assert!(net.node(new_id).is_some());
        let state = net.node(new_id).unwrap();
        assert_eq!(state.layer(2).ring_name, "00");
        // The newcomer resolves lookups & is found by others:
        let out = net.lookup(new_id, Id(123456));
        assert_eq!(out.owner, net.node(out.owner).unwrap().id);
        // Keys directly behind the new node now belong to it.
        let probe = net.lookup(bootstrap, new_id);
        assert_eq!(probe.owner, new_id, "existing nodes must find the newcomer");
    }

    #[test]
    fn join_founds_a_new_ring_when_bin_is_empty() {
        let (o, _) = build(20, 2);
        let mut net = SimNet::from_oracle(&o, &[1, 2], delay);
        let new_id = Id(0x1234_5678_9abc_def0);
        // RTTs that produce a bin no existing node occupies: every
        // fixture node has level-0 or level-2 RTTs only, so the
        // mid-level 50 ms reading yields the unoccupied ring "10".
        let outcome = net.join(new_id, o.id_of(0), &[50, 10]);
        assert_eq!(outcome.rings_founded, 1);
        let s = net.node(new_id).unwrap();
        assert_eq!(s.layer(2).ring_name, "10");
        assert_eq!(s.layer(2).succ, new_id); // solo ring
        // The ring table now exists at its holder.
        let ring_id = order_from_name("10").ring_id();
        let holder = net.lookup(o.id_of(0), ring_id).owner;
        let held = net.node(holder).unwrap().ring_tables.get("10").unwrap();
        assert_eq!(held.entry_points(), &[new_id]);
    }

    #[test]
    fn sequential_joins_preserve_lookup_correctness() {
        let (o, _) = build(30, 2);
        let mut net = SimNet::from_oracle(&o, &[1, 2], delay);
        let mut members: Vec<Id> = (0..30).map(|i| o.id_of(i)).collect();
        for j in 0..6u64 {
            let new_id = Id(0x0101_0101_0101_0101u64.wrapping_mul(j + 1));
            let rtts = if j % 2 == 0 { vec![5, 10] } else { vec![150, 130] };
            net.join(new_id, members[j as usize % members.len()], &rtts);
            members.push(new_id);
        }
        // Every key resolves to the node whose id is its true successor.
        let mut sorted = members.clone();
        sorted.sort_unstable();
        for k in 0..60u64 {
            let key = Id(k.wrapping_mul(0xabcd_ef01_2345_6789));
            let want = *sorted.iter().find(|&&m| m >= key).unwrap_or(&sorted[0]);
            let got = net.lookup(members[(k % members.len() as u64) as usize], key);
            assert_eq!(got.owner, want, "key {k}");
        }
    }

    #[test]
    fn traffic_stats_categorize_messages() {
        let (o, _) = build(25, 2);
        let mut net = SimNet::from_oracle(&o, &[1], delay);
        let _ = net.lookup(o.id_of(1), Id(42));
        let stats = net.stats();
        assert!(stats.total > 0);
        assert!(stats.by_kind.contains_key("found_succ"));
        let before = stats.total;
        let _ = net.join(Id(0x4242_4242_4242_4242), o.id_of(0), &[5, 10]);
        assert!(net.stats().total > before);
        assert!(net.stats().by_kind.contains_key("get_ring_table"));
        assert!(net.stats().by_kind.contains_key("ring_table_update"));
        assert!(net.stats().by_kind.contains_key("get_landmarks"));
    }

    #[test]
    fn deeper_hierarchy_joins_every_layer() {
        let (o, _) = build(40, 3);
        let mut net = SimNet::from_oracle(&o, &[1, 2], delay);
        let new_id = Id(0x0f0f_0f0f_0f0f_0f0f);
        let outcome = net.join(new_id, o.id_of(2), &[5, 10]);
        assert_eq!(outcome.rings_joined, 3);
        let s = net.node(new_id).unwrap();
        assert_eq!(s.depth(), 3);
        // Layer ring names are prefixes of each other (nesting).
        let n2 = s.layer(2).ring_name.clone();
        let n3 = s.layer(3).ring_name.clone();
        assert!(n3.starts_with(&n2));
    }
}
