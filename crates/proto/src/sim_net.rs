//! Deterministic discrete-event transport.
//!
//! [`SimNet`] owns every node's [`NodeState`], delivers messages
//! through an [`EventQueue`] with per-link latencies, and exposes the
//! two *drivers* experiments need:
//!
//! * [`SimNet::lookup`] — injects a hierarchical `FindSucc` at a node's
//!   lowest layer and runs the queue until the owner answers.
//! * [`SimNet::join`] — executes the full §3.3 join choreography for a
//!   new node, counting every message.
//!
//! Drivers consume the response messages (`FoundSucc`, `PredIs`, …)
//! addressed to the node they orchestrate; everything else flows
//! through [`NodeState::handle`].

use crate::state::{order_from_name, states_from_oracle};
use crate::{LayerState, NodeState, Payload};
use hieras_core::{HierasConfig, HierasOracle};
use hieras_id::{Id, Key};
use hieras_obs::{Registry, Tracer};
use hieras_sim::EventQueue;
use std::collections::{HashMap, HashSet};

/// Message-traffic counters by purpose.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct TrafficStats {
    /// Messages delivered, by payload kind.
    pub by_kind: HashMap<&'static str, u64>,
    /// Total messages delivered.
    pub total: u64,
    /// Sends whose destination was dead and that cost the sender an
    /// RTO (routed payloads, plus driver RPCs against dead peers).
    pub timeouts: u64,
    /// Messages silently discarded: non-routed payloads to dead nodes
    /// and routed payloads whose hop count exceeded the TTL.
    pub drops: u64,
}

impl TrafficStats {
    fn count(&mut self, kind: &'static str) {
        *self.by_kind.entry(kind).or_insert(0) += 1;
        self.total += 1;
    }
}

/// Result of one message-driven lookup.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LookupOutcome {
    /// The key's owner.
    pub owner: Id,
    /// Routing hops (FindSucc forwardings).
    pub hops: u32,
    /// Simulated time from injection until the owner answered, ms.
    pub latency_ms: u64,
}

/// Result of a [`SimNet::try_lookup`] under churn: the attempt may
/// fail (every retry lost to dead nodes) and latency includes the
/// timeouts and backoffs spent getting an answer.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RetriedLookup {
    /// The successful resolution, if any attempt got through.
    pub outcome: Option<LookupOutcome>,
    /// Attempts consumed (1 = first try succeeded).
    pub attempts: u32,
}

/// Result of one §3.3 join.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct JoinOutcome {
    /// Messages exchanged on behalf of this join.
    pub messages: u64,
    /// Simulated wall-clock duration of the join, ms.
    pub duration_ms: u64,
    /// Rings joined (= hierarchy depth).
    pub rings_joined: usize,
    /// How many rings this node *founded* (was first member of).
    pub rings_founded: usize,
}

#[derive(Debug, PartialEq, Eq)]
struct Envelope {
    from: Id,
    to: Id,
    msg_seq: u64,
}

/// A deterministic, single-threaded message-passing HIERAS network.
///
/// The lifetime parameter lets the delay function borrow experiment
/// state (e.g. a latency oracle) instead of owning it.
pub struct SimNet<'a> {
    nodes: HashMap<Id, NodeState>,
    /// Link latency between two nodes, ms.
    delay: Box<dyn Fn(Id, Id) -> u64 + 'a>,
    queue: EventQueue<Envelope>,
    payloads: HashMap<u64, Payload>,
    next_msg: u64,
    next_req: u64,
    stats: TrafficStats,
    config: HierasConfig,
    /// Retransmission timeout: how long a sender waits before declaring
    /// a routed message's destination dead (ms).
    rto_ms: u64,
    /// Hop budget for routed messages; exceeding it drops the message
    /// (bounds transient routing loops while pointers heal).
    ttl: u32,
    /// Optional per-message-type counter / latency-histogram registry.
    /// `None` (the default) costs one branch per message.
    registry: Option<Box<Registry>>,
    /// Optional structured event sink: per-lookup and per-join spans,
    /// per-hop instants. `None` (the default) costs one branch.
    tracer: Option<Box<Tracer>>,
}

impl<'a> SimNet<'a> {
    /// Bootstraps a consistent network from a built oracle (every node
    /// starts with exact successors, predecessors and fingers — a
    /// stabilized system).
    #[must_use]
    pub fn from_oracle(
        oracle: &HierasOracle,
        landmarks: &[u32],
        delay: impl Fn(Id, Id) -> u64 + 'a,
    ) -> Self {
        let states = states_from_oracle(oracle, landmarks);
        let nodes = states.into_iter().map(|s| (s.id, s)).collect();
        SimNet {
            nodes,
            delay: Box::new(delay),
            queue: EventQueue::new(),
            payloads: HashMap::new(),
            next_msg: 0,
            next_req: 0,
            stats: TrafficStats::default(),
            config: oracle.config().clone(),
            rto_ms: 250,
            ttl: 96,
            registry: None,
            tracer: None,
        }
    }

    /// Turns on the metric registry: per-message-type
    /// `net.send.*` / `net.deliver.*` counters, `net.drop.*` /
    /// `net.timeout` totals, and `lookup.*` / `join.*` histograms.
    pub fn enable_registry(&mut self) {
        if self.registry.is_none() {
            self.registry = Some(Box::default());
        }
    }

    /// Installs a structured event tracer (replacing any previous one).
    pub fn set_tracer(&mut self, tracer: Tracer) {
        self.tracer = Some(Box::new(tracer));
    }

    /// The registry, if enabled.
    #[must_use]
    pub fn registry(&self) -> Option<&Registry> {
        self.registry.as_deref()
    }

    /// Mutable registry access for drivers layering their own counters
    /// (e.g. the churn engine's per-event accounting).
    pub fn registry_mut(&mut self) -> Option<&mut Registry> {
        self.registry.as_deref_mut()
    }

    /// Mutable tracer access for drivers opening their own spans.
    pub fn tracer_mut(&mut self) -> Option<&mut Tracer> {
        self.tracer.as_deref_mut()
    }

    /// Removes and returns the registry.
    pub fn take_registry(&mut self) -> Option<Registry> {
        self.registry.take().map(|b| *b)
    }

    /// Removes and returns the tracer.
    pub fn take_tracer(&mut self) -> Option<Tracer> {
        self.tracer.take().map(|b| *b)
    }

    /// Overrides the failure-detection parameters (RTO in ms, routed
    /// hop TTL). The defaults — 250 ms, 96 hops — suit the paper-scale
    /// topologies.
    pub fn set_churn_params(&mut self, rto_ms: u64, ttl: u32) {
        self.rto_ms = rto_ms;
        self.ttl = ttl.max(1);
    }

    /// The hierarchy configuration this network was built with.
    #[must_use]
    pub fn config(&self) -> &HierasConfig {
        &self.config
    }

    /// True if `id` is currently a member (has not left or failed).
    #[must_use]
    pub fn alive(&self, id: Id) -> bool {
        self.nodes.contains_key(&id)
    }

    /// All current member ids, ascending — the deterministic iteration
    /// order every maintenance driver uses.
    #[must_use]
    pub fn sorted_ids(&self) -> Vec<Id> {
        let mut ids: Vec<Id> = self.nodes.keys().copied().collect();
        ids.sort_unstable();
        ids
    }

    /// Number of nodes.
    #[must_use]
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// True if the network has no nodes.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    /// Traffic counters.
    #[must_use]
    pub fn stats(&self) -> &TrafficStats {
        &self.stats
    }

    /// Immutable view of a node's state (tests, diagnostics).
    #[must_use]
    pub fn node(&self, id: Id) -> Option<&NodeState> {
        self.nodes.get(&id)
    }

    /// Current simulated time (ms).
    #[must_use]
    pub fn now(&self) -> u64 {
        self.queue.now()
    }

    fn fresh_req(&mut self) -> u64 {
        self.next_req += 1;
        self.next_req
    }

    fn post(&mut self, from: Id, to: Id, msg: Payload) {
        if let Some(r) = self.registry.as_deref_mut() {
            r.inc(msg.send_counter());
        }
        let d = if from == to { 0 } else { (self.delay)(from, to) };
        let seq = self.next_msg;
        self.next_msg += 1;
        self.payloads.insert(seq, msg);
        self.queue.schedule_in(d, Envelope { from, to, msg_seq: seq });
    }

    /// Delivers one popped message: normal handling when the
    /// destination is alive (routed payloads over the TTL are
    /// dropped); a routed payload to a dead node becomes a
    /// [`Payload::Timeout`] fired back at the sender one RTO later;
    /// anything else to a dead node is silently dropped.
    fn deliver(&mut self, env: Envelope, msg: Payload) {
        if self.nodes.contains_key(&env.to) {
            if let Payload::FindSucc { hops, layer, .. }
            | Payload::FindRingSucc { hops, layer, .. } = msg
            {
                if hops >= self.ttl {
                    self.stats.drops += 1;
                    if let Some(r) = self.registry.as_deref_mut() {
                        r.inc("net.drop.ttl");
                    }
                    return;
                }
                // Each delivered routed message is one step of a lookup
                // chain: the layer field exposes ring transitions, the
                // hops field the chain position.
                if let Some(t) = self.tracer.as_deref_mut() {
                    t.instant(self.queue.now(), "hop", &[
                        ("layer", u64::from(layer)),
                        ("hops", u64::from(hops)),
                        ("at", env.to.raw()),
                    ]);
                }
            }
            let node = self.nodes.get_mut(&env.to).expect("checked above");
            for (dest, out) in node.handle(env.from, msg) {
                self.post(env.to, dest, out);
            }
        } else if msg.is_routed() && env.from != env.to && self.nodes.contains_key(&env.from) {
            self.stats.timeouts += 1;
            if let Some(r) = self.registry.as_deref_mut() {
                r.inc("net.timeout");
            }
            let timeout = Payload::Timeout { dead: env.to, original: Box::new(msg) };
            let seq = self.next_msg;
            self.next_msg += 1;
            self.payloads.insert(seq, timeout);
            // Self-addressed so the sender's handler scrubs and
            // reroutes; delay = RTO, not the link latency.
            self.queue.schedule_in(self.rto_ms, Envelope {
                from: env.from,
                to: env.from,
                msg_seq: seq,
            });
        } else {
            self.stats.drops += 1;
            if let Some(r) = self.registry.as_deref_mut() {
                r.inc("net.drop.dead");
            }
        }
    }

    /// Runs the queue until a message matching `stop` arrives at
    /// `watch_node` (that message is consumed and returned), or the
    /// queue drains (returns `None`).
    fn run_until(
        &mut self,
        watch_node: Id,
        stop: impl Fn(&Payload) -> bool,
    ) -> Option<(Id, Payload, u64)> {
        while let Some((at, env)) = self.queue.pop() {
            let msg = self.payloads.remove(&env.msg_seq).expect("payload stored at post");
            self.stats.count(msg.kind());
            if let Some(r) = self.registry.as_deref_mut() {
                r.inc(msg.deliver_counter());
            }
            if env.to == watch_node && stop(&msg) {
                return Some((env.from, msg, at));
            }
            self.deliver(env, msg);
        }
        None
    }

    /// Message-driven hierarchical lookup from `origin` (§3.2).
    ///
    /// # Panics
    /// Panics if `origin` is not a member or the network loses the
    /// request (a protocol bug, surfaced loudly).
    #[must_use]
    pub fn lookup(&mut self, origin: Id, key: Key) -> LookupOutcome {
        let depth = self.nodes.get(&origin).expect("origin must exist").depth() as u8;
        let req = self.fresh_req();
        let start = self.queue.now();
        let span = self.tracer.as_deref_mut().map(|t| {
            t.open(start, "lookup", &[
                ("origin", origin.raw()),
                ("key", key.raw()),
                ("start_layer", u64::from(depth)),
            ])
        });
        // The originator processes the FindSucc locally first.
        self.post(origin, origin, Payload::FindSucc { key, layer: depth, origin, req, hops: 0 });
        let (_, msg, at) = self
            .run_until(origin, |m| matches!(m, Payload::FoundSucc { req: r, .. } if *r == req))
            .expect("lookup lost in the network");
        match msg {
            Payload::FoundSucc { owner, hops, .. } => {
                // The routing latency the paper measures is the chain of
                // FindSucc forwardings; subtract the owner's direct
                // response leg (owner == origin ⇔ zero hops, no leg).
                let response_leg =
                    if owner == origin { 0 } else { (self.delay)(owner, origin) };
                let out = LookupOutcome { owner, hops, latency_ms: at - start - response_leg };
                self.record_lookup(span, &out, 1, 0);
                out
            }
            _ => unreachable!("run_until matched FoundSucc"),
        }
    }

    /// Folds a finished lookup into the obs sinks: closes its span
    /// (fields reconcile with the aggregate metrics) and records the
    /// registry histograms. `retry_wait_ms` is the simulated time the
    /// lookup spent on attempts that died in the network (lost
    /// forwarding chains plus backoff) before the answering attempt
    /// was injected — the timeout-inflation share of `latency_ms`.
    fn record_lookup(
        &mut self,
        span: Option<u64>,
        out: &LookupOutcome,
        attempts: u32,
        retry_wait_ms: u64,
    ) {
        let now = self.queue.now();
        if let Some(t) = self.tracer.as_deref_mut() {
            if let Some(span) = span {
                t.close(now, span, &[
                    ("owner", out.owner.raw()),
                    ("hops", u64::from(out.hops)),
                    ("latency_ms", out.latency_ms),
                    ("attempts", u64::from(attempts)),
                ]);
            }
        }
        if let Some(r) = self.registry.as_deref_mut() {
            r.inc("lookup.count");
            r.observe("lookup.hops", u64::from(out.hops));
            r.observe("lookup.latency_ms", out.latency_ms);
            if attempts > 1 {
                r.inc_by("lookup.retries", u64::from(attempts - 1));
                // A histogram, not just a counter: the tail of this
                // distribution is what separates "retried once, cheap"
                // from "burned the whole attempt budget" when live-mode
                // latency tails inflate under churn.
                r.observe("lookup.retry_wait_ms", retry_wait_ms);
            }
        }
    }

    /// Lookup with the churn-era failure path: each attempt that dies
    /// in the network (TTL drop, or a timeout chain that hit another
    /// dead node) costs `backoff_ms` of simulated time before the next
    /// try. Latency is measured from the *first* injection, so RTOs
    /// and backoffs inflate it — the metric the churn experiments
    /// report.
    ///
    /// # Panics
    /// Panics if `origin` is not a live member or `max_attempts == 0`.
    pub fn try_lookup(
        &mut self,
        origin: Id,
        key: Key,
        max_attempts: u32,
        backoff_ms: u64,
    ) -> RetriedLookup {
        assert!(max_attempts > 0, "need at least one attempt");
        let depth = self.nodes.get(&origin).expect("origin must exist").depth() as u8;
        let start = self.queue.now();
        let span = self.tracer.as_deref_mut().map(|t| {
            t.open(start, "lookup", &[
                ("origin", origin.raw()),
                ("key", key.raw()),
                ("start_layer", u64::from(depth)),
            ])
        });
        for attempt in 1..=max_attempts {
            // Time burned by earlier attempts that died in the network:
            // everything between the first injection and this attempt's
            // start is retry-attributable latency.
            let retry_wait_ms = self.queue.now() - start;
            let req = self.fresh_req();
            self.post(origin, origin, Payload::FindSucc {
                key,
                layer: depth,
                origin,
                req,
                hops: 0,
            });
            let reply = self.run_until(origin, |m| {
                matches!(m, Payload::FoundSucc { req: r, .. } if *r == req)
            });
            match reply {
                Some((_, Payload::FoundSucc { owner, hops, .. }, at)) => {
                    let response_leg =
                        if owner == origin { 0 } else { (self.delay)(owner, origin) };
                    let out = LookupOutcome {
                        owner,
                        hops,
                        latency_ms: (at - start).saturating_sub(response_leg),
                    };
                    self.record_lookup(span, &out, attempt, retry_wait_ms);
                    return RetriedLookup { outcome: Some(out), attempts: attempt };
                }
                _ => {
                    // Lost: wait out the backoff, then retry against the
                    // (hopefully scrubbed) tables.
                    if let Some(t) = self.tracer.as_deref_mut() {
                        t.instant(self.queue.now(), "retry", &[("attempt", u64::from(attempt))]);
                    }
                    let t = self.queue.now() + backoff_ms;
                    self.queue.advance_to(t);
                }
            }
        }
        let now = self.queue.now();
        if let Some(t) = self.tracer.as_deref_mut() {
            if let Some(span) = span {
                t.close(now, span, &[
                    ("unresolved", 1),
                    ("attempts", u64::from(max_attempts)),
                ]);
            }
        }
        if let Some(r) = self.registry.as_deref_mut() {
            r.inc("lookup.unresolved");
            r.inc_by("lookup.retries", u64::from(max_attempts - 1));
            // An unresolved lookup burned its entire elapsed time on
            // retries — record it so the histogram's tail covers the
            // worst case, not only the lookups that eventually won.
            r.observe("lookup.retry_wait_ms", now - start);
        }
        RetriedLookup { outcome: None, attempts: max_attempts }
    }

    /// RPC helper for drivers: send `msg` to `to` on behalf of
    /// `driver`, then run until the matching reply arrives back.
    /// `None` when the reply is lost (dead peer, TTL drop) — the
    /// queue has drained by then.
    fn try_rpc(
        &mut self,
        driver: Id,
        to: Id,
        msg: Payload,
        matches: impl Fn(&Payload) -> bool,
    ) -> Option<Payload> {
        self.post(driver, to, msg);
        self.run_until(driver, matches).map(|(_, reply, _)| reply)
    }

    /// Resolves the ring-local owner of `key` in `layer` by routing
    /// from `via` (an existing ring member) — the "ordinary Chord
    /// routing procedure" §3.3 uses for join-time successors and
    /// ring-table requests. Driver-initiated, so usable before the
    /// driver has joined. `None` when the request died in the network
    /// (only possible under churn).
    fn resolve_via(&mut self, driver: Id, via: Id, key: Key, layer: u8) -> Option<(Id, u32)> {
        let req = self.fresh_req();
        let msg = Payload::FindRingSucc { key, layer, origin: driver, req, hops: 0 };
        let reply = self.try_rpc(driver, via, msg, |m| {
            matches!(m, Payload::FoundSucc { req: r, .. } if *r == req)
        })?;
        match reply {
            Payload::FoundSucc { owner, hops, .. } => Some((owner, hops)),
            _ => unreachable!(),
        }
    }

    /// Executes the §3.3 join choreography for a new node.
    ///
    /// `bootstrap` is the nearby member n′; `rtts` are the newcomer's
    /// measured RTTs to the landmark set (the ping phase happens
    /// outside the overlay). Steps, each a real message exchange:
    ///
    /// 1. fetch the landmark table from n′;
    /// 2. bin locally → landmark order → ring names per layer;
    /// 3. resolve the layer-1 successor through n′ and splice into the
    ///    global ring (GetPred / Notify / UpdateSucc);
    /// 4. for each lower layer: route a ring-table request to the
    ///    holder, fetch the table, enter through a recorded member,
    ///    splice into the ring, copy the entry point's finger table as
    ///    the initial approximation, and send the ring-table
    ///    modification message if the newcomer's id belongs in the
    ///    table (founding the ring if it did not exist).
    ///
    /// # Panics
    /// Panics if `new_id` already exists, `bootstrap` does not, or the
    /// join's messages are lost (impossible in a churn-free network).
    pub fn join(&mut self, new_id: Id, bootstrap: Id, rtts: &[u16]) -> JoinOutcome {
        self.try_join(new_id, bootstrap, rtts).expect("join lost in the network")
    }

    /// Churn-safe [`SimNet::join`]: returns `None` when one of the
    /// choreography's exchanges dies in the network (the caller
    /// retries later through another bootstrap; pointers half-spliced
    /// by the aborted attempt heal through timeouts and stabilization).
    ///
    /// # Panics
    /// Panics if `new_id` already exists or `bootstrap` does not.
    pub fn try_join(&mut self, new_id: Id, bootstrap: Id, rtts: &[u16]) -> Option<JoinOutcome> {
        let start = self.queue.now();
        let span = self.tracer.as_deref_mut().map(|t| {
            t.open(start, "join", &[("node", new_id.raw()), ("bootstrap", bootstrap.raw())])
        });
        let outcome = self.try_join_inner(new_id, bootstrap, rtts);
        let now = self.queue.now();
        if let Some(t) = self.tracer.as_deref_mut() {
            if let Some(span) = span {
                match &outcome {
                    Some(o) => t.close(now, span, &[
                        ("messages", o.messages),
                        ("duration_ms", o.duration_ms),
                        ("rings_founded", o.rings_founded as u64),
                    ]),
                    None => t.close(now, span, &[("abort", 1)]),
                }
            }
        }
        if let Some(r) = self.registry.as_deref_mut() {
            match &outcome {
                Some(o) => {
                    r.inc("join.count");
                    r.observe("join.messages", o.messages);
                    r.observe("join.duration_ms", o.duration_ms);
                }
                None => r.inc("join.abort"),
            }
        }
        outcome
    }

    /// The §3.3 choreography proper; split out so [`SimNet::try_join`]
    /// can close its span on every early-exit path.
    fn try_join_inner(&mut self, new_id: Id, bootstrap: Id, rtts: &[u16]) -> Option<JoinOutcome> {
        assert!(!self.nodes.contains_key(&new_id), "node already joined");
        assert!(self.nodes.contains_key(&bootstrap), "bootstrap unknown");
        let start_total = self.stats.total;
        let start_time = self.queue.now();
        let space = self.nodes[&bootstrap].space;
        let bits = space.bits();
        let depth = self.config.depth;

        // Step 1: landmark table from n'.
        let req = self.fresh_req();
        let reply = self.try_rpc(new_id, bootstrap, Payload::GetLandmarks { req }, |m| {
            matches!(m, Payload::LandmarksAre { req: r, .. } if *r == req)
        })?;
        let landmarks = match reply {
            Payload::LandmarksAre { landmarks, .. } => landmarks,
            _ => unreachable!(),
        };

        // Step 2: bin locally.
        let order = self.config.binning.order(rtts);
        let mut layers: Vec<LayerState> = Vec::with_capacity(depth);
        let mut founded = 0usize;

        // Step 3: global ring (layer 1) through n'.
        let (g_succ, _) = self.resolve_via(new_id, bootstrap, new_id, 1)?;
        layers.push(self.splice_layer(new_id, 1, String::new(), g_succ, bits)?);

        // Step 4: lower layers.
        for layer_no in 2..=depth as u8 {
            let plen = self.config.prefix_len(layer_no as usize);
            let ring_name = order.prefix(plen).name();
            let (ls, was_founded) =
                self.join_lower_layer(new_id, layer_no, ring_name, bootstrap, bits)?;
            founded += usize::from(was_founded);
            layers.push(ls);
        }

        self.nodes.insert(
            new_id,
            NodeState {
                id: new_id,
                space,
                layers,
                ring_tables: HashMap::new(),
                landmarks,
                suspects: HashSet::new(),
            },
        );
        Some(JoinOutcome {
            messages: self.stats.total - start_total,
            duration_ms: self.queue.now() - start_time,
            rings_joined: depth,
            rings_founded: founded,
        })
    }

    /// The §3.3 lower-layer entry sequence, shared by joins and
    /// re-binning: route the ring-table request to the holder over the
    /// global ring, enter through a recorded live member (splice +
    /// finger copy) or found the ring, then send the ring-table
    /// modification message. Returns the built layer state and whether
    /// the ring was founded.
    fn join_lower_layer(
        &mut self,
        node: Id,
        layer_no: u8,
        ring_name: String,
        via: Id,
        bits: u32,
    ) -> Option<(LayerState, bool)> {
        let ring_id = order_from_name(&ring_name).ring_id();
        let (holder, _) = self.resolve_via(node, via, ring_id, 1)?;
        let req = self.fresh_req();
        let reply = self.try_rpc(
            node,
            holder,
            Payload::GetRingTable { ring_name: ring_name.clone(), req },
            |m| matches!(m, Payload::RingTableIs { req: r, .. } if *r == req),
        )?;
        let table = match reply {
            Payload::RingTableIs { table, .. } => table,
            _ => unreachable!(),
        };
        // First *live* recorded member; dead entries are stale table
        // slots awaiting repair.
        let entry = table.as_ref().and_then(|t| {
            t.entry_points().iter().copied().find(|p| *p != node && self.nodes.contains_key(p))
        });
        let (ls, founded) = match entry {
            Some(p) => {
                // Resolve our in-ring successor through entry point p.
                let (succ, _) = self.resolve_via(node, p, node, layer_no)?;
                let mut ls = self.splice_layer(node, layer_no, ring_name.clone(), succ, bits)?;
                // Initial finger approximation: copy p's table (§3.3's
                // "p generates the finger table of n and sends it back").
                let req = self.fresh_req();
                let reply =
                    self.try_rpc(node, p, Payload::GetFingers { layer: layer_no, req }, |m| {
                        matches!(m, Payload::FingersAre { req: r, .. } if *r == req)
                    })?;
                if let Payload::FingersAre { fingers, .. } = reply {
                    ls.fingers = fingers;
                }
                (ls, false)
            }
            None => {
                // First member of this ring: found it.
                (LayerState::solo(ring_name.clone(), node, bits), true)
            }
        };
        // Ring-table modification message (§3.3) — also what creates
        // the table at the holder for a founded ring.
        self.post(node, holder, Payload::RingTableUpdate { ring_name, node });
        self.drain();
        Some((ls, founded))
    }

    /// Splices the joining node between `succ` and `succ`'s current
    /// predecessor in `layer`: GetPred(succ) → adopt pred →
    /// Notify(succ) → UpdateSucc(pred). Returns the new layer state,
    /// or `None` when `succ` died before answering.
    fn splice_layer(
        &mut self,
        new_id: Id,
        layer: u8,
        ring_name: String,
        succ: Id,
        bits: u32,
    ) -> Option<LayerState> {
        if succ == new_id {
            return Some(LayerState::solo(ring_name, new_id, bits));
        }
        let req = self.fresh_req();
        let reply = self.try_rpc(new_id, succ, Payload::GetPred { layer, req }, |m| {
            matches!(m, Payload::PredIs { req: r, .. } if *r == req)
        })?;
        let pred = match reply {
            Payload::PredIs { pred, .. } => pred,
            _ => unreachable!(),
        };
        self.post(new_id, succ, Payload::Notify { layer });
        if let Some(p) = pred.filter(|&p| p != new_id && p != succ) {
            self.post(new_id, p, Payload::UpdateSucc { layer });
        }
        self.drain();
        Some(LayerState {
            ring_name,
            succ,
            // Until told otherwise we sit between succ's old pred and succ.
            pred: pred.or(Some(succ)),
            fingers: vec![None; bits as usize],
        })
    }

    /// Removes a node abruptly — a silent fail. No goodbye messages:
    /// the rest of the network discovers the death through RTO
    /// timeouts and failure-detection pings. Returns false if the node
    /// was already gone.
    pub fn fail_node(&mut self, id: Id) -> bool {
        self.nodes.remove(&id).is_some()
    }

    /// Graceful departure. The leaver patches its ring neighbours'
    /// pointers in every layer (`LeaveUpdate`), delists itself from
    /// each lower-layer ring table (`RingTableRemove` routed to the
    /// holder), hands any ring tables *it* holds to its global
    /// successor (`RingTableHandoff`) — then vanishes. Returns false
    /// if the node was already gone.
    pub fn leave_node(&mut self, id: Id) -> bool {
        let Some(state) = self.nodes.get(&id).cloned() else { return false };
        // Phase 1: neighbour pointer patches, all layers, fully
        // delivered before the table maintenance below routes anything
        // (so repair probes never re-learn the leaver).
        for (i, ls) in state.layers.iter().enumerate() {
            let layer = u8::try_from(i + 1).expect("depth fits u8");
            if ls.succ == id {
                continue; // solo ring: nobody to patch
            }
            let pred = ls.pred.filter(|&p| p != id);
            if let Some(p) = pred {
                self.post(id, p, Payload::LeaveUpdate {
                    layer,
                    new_succ: Some(ls.succ),
                    new_pred: None,
                });
            }
            self.post(id, ls.succ, Payload::LeaveUpdate {
                layer,
                new_succ: None,
                new_pred: pred,
            });
        }
        self.drain();
        // Phase 2: delist from lower-layer ring tables while the
        // leaver can still route, and hand off held tables.
        for ls in state.layers.iter().skip(1) {
            let ring_id = order_from_name(&ls.ring_name).ring_id();
            if let Some((holder, _)) = self.resolve_via(id, id, ring_id, 1) {
                self.post(id, holder, Payload::RingTableRemove {
                    ring_name: ls.ring_name.clone(),
                    node: id,
                });
            }
        }
        let heir = state.layers[0].succ;
        if heir != id {
            let mut names: Vec<&String> = state.ring_tables.keys().collect();
            names.sort_unstable();
            for name in names {
                self.post(id, heir, Payload::RingTableHandoff {
                    table: state.ring_tables[name].clone(),
                });
            }
        }
        self.drain();
        self.nodes.remove(&id);
        true
    }

    /// One stabilization round over `layer`, members visited in
    /// ascending id order (the deterministic schedule). Each member
    /// scrubs dead successors (one RTO each), asks the live successor
    /// for its predecessor, adopts a closer live one, and notifies.
    pub fn stabilize_layer(&mut self, layer: u8) {
        for n in self.sorted_ids() {
            if self.nodes[&n].depth() < layer as usize {
                continue;
            }
            // A dead successor costs an RTO before it is scrubbed;
            // note_dead promotes the best alive finger.
            loop {
                let succ = self.nodes[&n].layer(layer).succ;
                if succ == n || self.nodes.contains_key(&succ) {
                    break;
                }
                self.stats.timeouts += 1;
                if let Some(r) = self.registry.as_deref_mut() {
                    r.inc("net.timeout");
                }
                let t = self.queue.now() + self.rto_ms;
                self.queue.advance_to(t);
                self.nodes.get_mut(&n).expect("alive").note_dead(succ);
            }
            let succ = self.nodes[&n].layer(layer).succ;
            if succ == n {
                continue;
            }
            let req = self.fresh_req();
            let reply = self.try_rpc(n, succ, Payload::GetPred { layer, req }, |m| {
                matches!(m, Payload::PredIs { req: r, .. } if *r == req)
            });
            let Some(Payload::PredIs { pred, .. }) = reply else { continue };
            let space = self.nodes[&n].space;
            let target = match pred {
                Some(x) if x != n && self.nodes.contains_key(&x) && space.in_open(n, succ, x) => {
                    self.nodes.get_mut(&n).expect("alive").layer_mut(layer).succ = x;
                    x
                }
                _ => succ,
            };
            self.post(n, target, Payload::Notify { layer });
            self.drain();
        }
    }

    /// One failure-detection round over `layer`: every member pings
    /// its predecessor. A dead predecessor costs an RTO and is marked
    /// suspect; the pointer itself stays (stale but safe) until the
    /// next live claimant notifies.
    pub fn check_predecessors_layer(&mut self, layer: u8) {
        for n in self.sorted_ids() {
            if self.nodes[&n].depth() < layer as usize {
                continue;
            }
            let Some(p) = self.nodes[&n].layer(layer).pred.filter(|&p| p != n) else {
                continue;
            };
            if self.nodes.contains_key(&p) {
                let req = self.fresh_req();
                let _ = self.try_rpc(n, p, Payload::Ping { req }, |m| {
                    matches!(m, Payload::Pong { req: r } if *r == req)
                });
            } else {
                self.stats.timeouts += 1;
                if let Some(r) = self.registry.as_deref_mut() {
                    r.inc("net.timeout");
                }
                let t = self.queue.now() + self.rto_ms;
                self.queue.advance_to(t);
                self.nodes.get_mut(&n).expect("alive").note_dead(p);
            }
        }
    }

    /// One fix-fingers round over `layer`: every member re-resolves
    /// finger index `round % bits` with a ring-confined lookup from
    /// itself. Dead fingers cost timeouts inside the lookup; a lost
    /// lookup leaves the entry for the next round.
    pub fn fix_fingers_layer(&mut self, layer: u8, round: u64) {
        for n in self.sorted_ids() {
            if self.nodes[&n].depth() < layer as usize {
                continue;
            }
            let space = self.nodes[&n].space;
            let i = (round % u64::from(space.bits())) as u32;
            let start = space.finger_start(n, i);
            let req = self.fresh_req();
            self.post(n, n, Payload::FindRingSucc { key: start, layer, origin: n, req, hops: 0 });
            let reply = self.run_until(n, |m| {
                matches!(m, Payload::FoundSucc { req: r, .. } if *r == req)
            });
            if let Some((_, Payload::FoundSucc { owner, .. }, _)) = reply {
                let ls = self.nodes.get_mut(&n).expect("alive").layer_mut(layer);
                ls.fingers[i as usize] = (owner != n).then_some(owner);
            }
        }
    }

    /// Landmark-loss recovery: re-bins `id` against freshly measured
    /// RTTs (a surviving/replacement landmark set) and moves it to the
    /// lower-layer rings the new bin names, leaving the old ones
    /// gracefully. Unchanged layers are untouched. Returns how many
    /// layers the node moved.
    pub fn rebin_node(&mut self, id: Id, rtts: &[u16]) -> usize {
        let Some(state) = self.nodes.get(&id) else { return 0 };
        let bits = state.space.bits();
        let depth = self.config.depth;
        let order = self.config.binning.order(rtts);
        let mut moved = 0usize;
        for layer_no in 2..=depth as u8 {
            let plen = self.config.prefix_len(layer_no as usize);
            let new_name = order.prefix(plen).name();
            let old = self.nodes[&id].layer(layer_no).clone();
            if old.ring_name == new_name {
                continue;
            }
            // Leave the old ring: patch its neighbours, delist from its
            // table.
            if old.succ != id {
                let pred = old.pred.filter(|&p| p != id);
                if let Some(p) = pred {
                    self.post(id, p, Payload::LeaveUpdate {
                        layer: layer_no,
                        new_succ: Some(old.succ),
                        new_pred: None,
                    });
                }
                self.post(id, old.succ, Payload::LeaveUpdate {
                    layer: layer_no,
                    new_succ: None,
                    new_pred: pred,
                });
            }
            self.drain();
            let old_ring_id = order_from_name(&old.ring_name).ring_id();
            if let Some((holder, _)) = self.resolve_via(id, id, old_ring_id, 1) {
                self.post(id, holder, Payload::RingTableRemove {
                    ring_name: old.ring_name.clone(),
                    node: id,
                });
            }
            self.drain();
            // Join the new ring through ourselves — we still route over
            // the global ring.
            if let Some((ls, _)) = self.join_lower_layer(id, layer_no, new_name, id, bits) {
                *self.nodes.get_mut(&id).expect("alive").layer_mut(layer_no) = ls;
                moved += 1;
            }
        }
        moved
    }

    /// Delivers everything currently in flight.
    fn drain(&mut self) {
        while let Some((_, env)) = self.queue.pop() {
            let msg = self.payloads.remove(&env.msg_seq).expect("payload stored");
            self.stats.count(msg.kind());
            if let Some(r) = self.registry.as_deref_mut() {
                r.inc(msg.deliver_counter());
            }
            self.deliver(env, msg);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hieras_core::{Binning, HierasConfig};
    use hieras_id::IdSpace;
    use std::sync::Arc;

    fn build(n: u64, depth: usize) -> (HierasOracle, Vec<Vec<u16>>) {
        let ids: Arc<[Id]> = (0..n)
            .map(|i| Id(i.wrapping_mul(0x9e37_79b9_7f4a_7c15).wrapping_add(1)))
            .collect::<Vec<_>>()
            .into();
        let rtts: Vec<Vec<u16>> = (0..n)
            .map(|i| {
                vec![
                    if i % 2 == 0 { 5 } else { 150 },
                    if i % 4 < 2 { 10 } else { 130 },
                ]
            })
            .collect();
        let o = HierasOracle::from_rtts(
            IdSpace::full(),
            ids,
            &rtts,
            HierasConfig { depth, landmarks: 2, binning: Binning::paper() },
        )
        .unwrap();
        (o, rtts)
    }

    /// Link delay model for tests: cheap within a ring-mate pair,
    /// expensive otherwise — but any deterministic function works.
    fn delay(a: Id, b: Id) -> u64 {
        5 + (a.raw() ^ b.raw()) % 90
    }

    #[test]
    fn message_lookup_matches_oracle_hop_for_hop() {
        let (o, _) = build(40, 2);
        let mut net = SimNet::from_oracle(&o, &[1, 2], delay);
        for k in 0..120u64 {
            let key = Id(k.wrapping_mul(0x517c_c1b7_2722_0a95));
            let src = (k % 40) as u32;
            let oracle_trace = o.route(src, key);
            let got = net.lookup(o.id_of(src), key);
            assert_eq!(got.owner, o.id_of(oracle_trace.destination()), "key {k}");
            assert_eq!(got.hops as usize, oracle_trace.hop_count(), "key {k}");
        }
    }

    #[test]
    fn lookup_latency_accumulates_link_delays() {
        let (o, _) = build(30, 2);
        let mut net = SimNet::from_oracle(&o, &[], delay);
        let key = Id(0xdead_beef);
        let src = o.id_of(3);
        let out = net.lookup(src, key);
        // Latency counts the FindSucc chain; zero hops → zero latency.
        if out.hops == 0 {
            assert_eq!(out.latency_ms, 0);
        } else {
            assert!(out.latency_ms >= u64::from(out.hops) * 5);
        }
    }

    #[test]
    fn join_integrates_new_node_into_all_layers() {
        let (o, _) = build(40, 2);
        let mut net = SimNet::from_oracle(&o, &[1, 2], delay);
        let new_id = Id(0x7777_7777_7777_7777);
        let bootstrap = o.id_of(0);
        let outcome = net.join(new_id, bootstrap, &[5, 10]); // ring "00"
        assert_eq!(outcome.rings_joined, 2);
        assert!(outcome.messages >= 8, "join used only {} messages", outcome.messages);
        assert!(net.node(new_id).is_some());
        let state = net.node(new_id).unwrap();
        assert_eq!(state.layer(2).ring_name, "00");
        // The newcomer resolves lookups & is found by others:
        let out = net.lookup(new_id, Id(123456));
        assert_eq!(out.owner, net.node(out.owner).unwrap().id);
        // Keys directly behind the new node now belong to it.
        let probe = net.lookup(bootstrap, new_id);
        assert_eq!(probe.owner, new_id, "existing nodes must find the newcomer");
    }

    #[test]
    fn join_founds_a_new_ring_when_bin_is_empty() {
        let (o, _) = build(20, 2);
        let mut net = SimNet::from_oracle(&o, &[1, 2], delay);
        let new_id = Id(0x1234_5678_9abc_def0);
        // RTTs that produce a bin no existing node occupies: every
        // fixture node has level-0 or level-2 RTTs only, so the
        // mid-level 50 ms reading yields the unoccupied ring "10".
        let outcome = net.join(new_id, o.id_of(0), &[50, 10]);
        assert_eq!(outcome.rings_founded, 1);
        let s = net.node(new_id).unwrap();
        assert_eq!(s.layer(2).ring_name, "10");
        assert_eq!(s.layer(2).succ, new_id); // solo ring
        // The ring table now exists at its holder.
        let ring_id = order_from_name("10").ring_id();
        let holder = net.lookup(o.id_of(0), ring_id).owner;
        let held = net.node(holder).unwrap().ring_tables.get("10").unwrap();
        assert_eq!(held.entry_points(), &[new_id]);
    }

    #[test]
    fn sequential_joins_preserve_lookup_correctness() {
        let (o, _) = build(30, 2);
        let mut net = SimNet::from_oracle(&o, &[1, 2], delay);
        let mut members: Vec<Id> = (0..30).map(|i| o.id_of(i)).collect();
        for j in 0..6u64 {
            let new_id = Id(0x0101_0101_0101_0101u64.wrapping_mul(j + 1));
            let rtts = if j % 2 == 0 { vec![5, 10] } else { vec![150, 130] };
            net.join(new_id, members[j as usize % members.len()], &rtts);
            members.push(new_id);
        }
        // Every key resolves to the node whose id is its true successor.
        let mut sorted = members.clone();
        sorted.sort_unstable();
        for k in 0..60u64 {
            let key = Id(k.wrapping_mul(0xabcd_ef01_2345_6789));
            let want = *sorted.iter().find(|&&m| m >= key).unwrap_or(&sorted[0]);
            let got = net.lookup(members[(k % members.len() as u64) as usize], key);
            assert_eq!(got.owner, want, "key {k}");
        }
    }

    #[test]
    fn traffic_stats_categorize_messages() {
        let (o, _) = build(25, 2);
        let mut net = SimNet::from_oracle(&o, &[1], delay);
        let _ = net.lookup(o.id_of(1), Id(42));
        let stats = net.stats();
        assert!(stats.total > 0);
        assert!(stats.by_kind.contains_key("found_succ"));
        let before = stats.total;
        let _ = net.join(Id(0x4242_4242_4242_4242), o.id_of(0), &[5, 10]);
        assert!(net.stats().total > before);
        assert!(net.stats().by_kind.contains_key("get_ring_table"));
        assert!(net.stats().by_kind.contains_key("ring_table_update"));
        assert!(net.stats().by_kind.contains_key("get_landmarks"));
    }

    #[test]
    fn graceful_leave_patches_pointers_and_keeps_lookups_exact() {
        let (o, _) = build(30, 2);
        let mut net = SimNet::from_oracle(&o, &[1, 2], delay);
        let leaver = o.id_of(7);
        let old_succ = net.node(leaver).unwrap().layer(1).succ;
        let old_pred = net.node(leaver).unwrap().layer(1).pred.unwrap();
        assert!(net.leave_node(leaver));
        assert!(!net.alive(leaver));
        assert!(!net.leave_node(leaver), "second leave is a no-op");
        // Neighbours were patched synchronously: no timeouts needed.
        assert_eq!(net.stats().timeouts, 0);
        assert_eq!(net.node(old_pred).unwrap().layer(1).succ, old_succ);
        assert_eq!(net.node(old_succ).unwrap().layer(1).pred, Some(old_pred));
        // Keys the leaver owned now resolve to its old successor, first try.
        let got = net.try_lookup(old_pred, leaver, 3, 500);
        assert_eq!(got.attempts, 1);
        assert_eq!(got.outcome.unwrap().owner, old_succ);
    }

    #[test]
    fn silent_fail_costs_timeouts_then_maintenance_heals() {
        let (o, _) = build(30, 2);
        let mut net = SimNet::from_oracle(&o, &[1, 2], delay);
        let dead = o.id_of(11);
        let old_succ = net.node(dead).unwrap().layer(1).succ;
        assert!(net.fail_node(dead));
        assert!(!net.fail_node(dead));
        // Failure detection + stabilization over both layers.
        for layer in 1..=2u8 {
            net.check_predecessors_layer(layer);
            net.stabilize_layer(layer);
        }
        for round in 0..64u64 {
            net.fix_fingers_layer(1, round);
        }
        assert!(net.stats().timeouts > 0, "a silent fail must cost timeouts");
        // The dead node's range was absorbed by its successor.
        let probe = net.try_lookup(o.id_of(0), dead, 5, 500);
        let out = probe.outcome.expect("lookup must succeed after maintenance");
        assert_eq!(out.owner, old_succ);
        // The successor's neighbours now list it as suspect.
        assert!(net.node(old_succ).unwrap().suspects.contains(&dead));
    }

    #[test]
    fn routed_message_into_dead_node_reroutes_via_timeout() {
        // Depth 1 = pure global routing, so the forwarding choice is
        // fully predictable: the dead node's predecessor must forward a
        // lookup for the dead node's successor straight into the corpse.
        let (o, _) = build(30, 1);
        let mut net = SimNet::from_oracle(&o, &[1, 2], delay);
        let dead = o.id_of(5);
        let p = net.node(dead).unwrap().layer(1).pred.unwrap();
        let s = net.node(dead).unwrap().layer(1).succ;
        net.fail_node(dead);
        let timeouts_before = net.stats().timeouts;
        let got = net.try_lookup(p, s, 8, 1000);
        let out = got.outcome.expect("timeout path must eventually resolve");
        assert_eq!(out.owner, s, "the successor owns its own id");
        assert!(
            net.stats().timeouts > timeouts_before,
            "the first hop was into a dead node — it must cost a timeout"
        );
        // Timeout-inflated latency: at least one RTO on a first-attempt win.
        if got.attempts == 1 {
            assert!(out.latency_ms >= 250);
        }
        // The rerouting sender has marked the corpse as suspect.
        assert!(net.node(p).unwrap().suspects.contains(&dead));
    }

    #[test]
    fn lookup_survives_dead_lower_layer_predecessor() {
        // Regression: a ring-local owner used to bounce an overshooting
        // FindSucc to its layer-2 predecessor unconditionally. With
        // that predecessor silently dead, the RTO re-handle bounced to
        // the same corpse again — an infinite timeout loop, because
        // note_dead deliberately leaves pred pointers stale.
        let (o, _) = build(40, 2);
        let mut net = SimNet::from_oracle(&o, &[1, 2], delay);
        let space = IdSpace::full();
        // A node whose ring-2 predecessor sits strictly behind its
        // global predecessor: keys in between are ring-locally owned
        // by it but globally owned by someone else — the bounce path.
        let (owner, ring_pred, global_pred) = net
            .sorted_ids()
            .iter()
            .find_map(|&n| {
                let s = net.node(n).unwrap();
                let rp = s.layer(2).pred.filter(|&p| p != n)?;
                let gp = s.layer(1).pred.filter(|&p| p != n && p != rp)?;
                space.in_open(rp, n, gp).then_some((n, rp, gp))
            })
            .expect("a 40-node two-layer fixture has an interleaved ring");
        net.fail_node(ring_pred);
        // The global predecessor's own id: ring-2-owned by `owner`,
        // globally owned by `global_pred` itself.
        let got = net.try_lookup(owner, global_pred, 3, 500);
        let out = got.outcome.expect("bounce into the corpse must reroute, not loop");
        assert_eq!(out.owner, global_pred);
        assert!(net.stats().timeouts >= 1, "the dead pred costs one RTO");
        assert!(net.node(owner).unwrap().suspects.contains(&ring_pred));
    }

    #[test]
    fn leave_hands_ring_tables_to_global_successor() {
        let (o, _) = build(30, 2);
        let mut net = SimNet::from_oracle(&o, &[1, 2], delay);
        let holder = *net
            .sorted_ids()
            .iter()
            .find(|id| !net.node(**id).unwrap().ring_tables.is_empty())
            .expect("some node holds a ring table");
        let names: Vec<String> =
            net.node(holder).unwrap().ring_tables.keys().cloned().collect();
        let heir = net.node(holder).unwrap().layer(1).succ;
        net.leave_node(holder);
        for name in &names {
            assert!(
                net.node(heir).unwrap().ring_tables.contains_key(name),
                "table {name} must move to the heir"
            );
        }
    }

    #[test]
    fn rebin_moves_node_to_new_lower_ring() {
        let (o, _) = build(40, 2);
        let mut net = SimNet::from_oracle(&o, &[1, 2], delay);
        // Node 0 has RTTs [5, 10] → ring "00"; re-measure as [150, 130]
        // → ring "22" (both occupied by fixture nodes).
        let id = o.id_of(0);
        assert_eq!(net.node(id).unwrap().layer(2).ring_name, "00");
        let moved = net.rebin_node(id, &[150, 130]);
        assert_eq!(moved, 1);
        let s = net.node(id).unwrap();
        assert_eq!(s.layer(2).ring_name, "22");
        // Still resolves hierarchical lookups from its new ring.
        let out = net.try_lookup(id, Id(0xfeed_f00d), 3, 500);
        assert!(out.outcome.is_some());
        // And unchanged RTTs are a no-op.
        assert_eq!(net.rebin_node(id, &[150, 130]), 0);
    }

    #[test]
    fn obs_counters_and_spans_reconcile_with_stats() {
        use hieras_obs::{TraceKind, Tracer};
        let (o, _) = build(30, 2);
        let mut net = SimNet::from_oracle(&o, &[1, 2], delay);
        net.enable_registry();
        net.set_tracer(Tracer::bounded(4096));
        let mut total_hops = 0u64;
        for k in 0..25u64 {
            let out = net.lookup(o.id_of((k % 30) as u32), Id(k.wrapping_mul(0x9e37)));
            total_hops += u64::from(out.hops);
        }
        let _ = net.join(Id(0x5151_5151_5151_5151), o.id_of(0), &[5, 10]);
        let r = net.take_registry().unwrap();
        // Deliver counters mirror TrafficStats exactly, kind by kind.
        for (kind, n) in &net.stats().by_kind {
            assert_eq!(r.counter(&["net.deliver.", kind].concat()), *n, "kind {kind}");
        }
        assert_eq!(r.counter("lookup.count"), 25);
        assert_eq!(r.counter("join.count"), 1);
        assert_eq!(r.hist("lookup.hops").unwrap().sum(), total_hops);
        // Every lookup span's closing hops field reconciles with the
        // aggregate: summed per-span hops == histogram sum.
        let t = net.take_tracer().unwrap();
        assert_eq!(t.dropped, 0);
        // Close events carry no name — join them to their open by span id.
        let lookup_spans: std::collections::HashSet<u64> = t
            .events()
            .iter()
            .filter(|e| e.kind == TraceKind::Open && e.name == "lookup")
            .map(|e| e.span)
            .collect();
        let mut span_hops = 0u64;
        let mut closes = 0u64;
        for e in t.events() {
            if e.kind == TraceKind::Close && lookup_spans.contains(&e.span) {
                closes += 1;
                span_hops += e.fields.iter().find(|(k, _)| k == "hops").unwrap().1;
            }
        }
        assert_eq!(closes, 25);
        assert_eq!(span_hops, total_hops);
    }

    #[test]
    fn deeper_hierarchy_joins_every_layer() {
        let (o, _) = build(40, 3);
        let mut net = SimNet::from_oracle(&o, &[1, 2], delay);
        let new_id = Id(0x0f0f_0f0f_0f0f_0f0f);
        let outcome = net.join(new_id, o.id_of(2), &[5, 10]);
        assert_eq!(outcome.rings_joined, 3);
        let s = net.node(new_id).unwrap();
        assert_eq!(s.depth(), 3);
        // Layer ring names are prefixes of each other (nesting).
        let n2 = s.layer(2).ring_name.clone();
        let n3 = s.layer(3).ring_name.clone();
        assert!(n3.starts_with(&n2));
    }
}
