//! Per-node protocol state and the pure message handler.

use crate::Payload;
use hieras_core::{HierasOracle, RingTable};
use hieras_id::{Id, IdSpace, Key};
use std::collections::{HashMap, HashSet};

/// One ring membership: the node's routing state in a single layer.
#[derive(Debug, Clone, PartialEq)]
pub struct LayerState {
    /// Ring name (empty string for the global ring).
    pub ring_name: String,
    /// Ring successor.
    pub succ: Id,
    /// Ring predecessor (`None` until learned).
    pub pred: Option<Id>,
    /// Finger table, one entry per id bit; `None` = not yet resolved.
    pub fingers: Vec<Option<Id>>,
}

impl LayerState {
    /// A single-member ring (a node founding a new ring, or the first
    /// node of the system).
    #[must_use]
    pub fn solo(ring_name: String, me: Id, bits: u32) -> Self {
        LayerState { ring_name, succ: me, pred: Some(me), fingers: vec![None; bits as usize] }
    }
}

/// A node's complete protocol state.
#[derive(Debug, Clone)]
pub struct NodeState {
    /// This node's identifier.
    pub id: Id,
    /// The identifier space.
    pub space: IdSpace,
    /// Per-layer state; index 0 = layer 1 (global), last = lowest.
    pub layers: Vec<LayerState>,
    /// Ring tables this node stores (it is their holder).
    pub ring_tables: HashMap<String, RingTable>,
    /// Landmark router ids (the landmark table of §3.1).
    pub landmarks: Vec<u32>,
    /// Nodes this node has observed to be dead (a send to them timed
    /// out). Suspects are never routed to or re-adopted as neighbours.
    pub suspects: HashSet<Id>,
}

impl NodeState {
    /// The hierarchy depth this node participates in.
    #[must_use]
    pub fn depth(&self) -> usize {
        self.layers.len()
    }

    /// Layer state by 1-based layer number.
    ///
    /// # Panics
    /// Panics if `layer` is outside `1..=depth`.
    #[must_use]
    pub fn layer(&self, layer: u8) -> &LayerState {
        &self.layers[layer as usize - 1]
    }

    /// Mutable layer state by 1-based layer number.
    pub fn layer_mut(&mut self, layer: u8) -> &mut LayerState {
        &mut self.layers[layer as usize - 1]
    }

    /// True if this node owns `key` within its layer-`layer` ring:
    /// `key ∈ (pred, me]`. Nodes without a predecessor pointer answer
    /// `false` (they cannot prove ownership yet).
    #[must_use]
    pub fn owns_in_layer(&self, layer: u8, key: Key) -> bool {
        let ls = self.layer(layer);
        match ls.pred {
            Some(p) => self.space.in_open_closed(p, self.id, key),
            None => false,
        }
    }

    /// Chord forwarding choice within one layer: the closest preceding
    /// candidate for `key` among fingers and the successor (suspects
    /// are never chosen); falls back to the successor.
    #[must_use]
    pub fn next_hop_in_layer(&self, layer: u8, key: Key) -> Id {
        let ls = self.layer(layer);
        let mut best: Option<Id> = None;
        let mut consider = |cand: Id| {
            if cand != self.id
                && !self.suspects.contains(&cand)
                && self.space.in_open(self.id, key, cand)
            {
                best = Some(match best {
                    None => cand,
                    Some(b) => self.space.closer_predecessor(key, cand, b),
                });
            }
        };
        for f in ls.fingers.iter().rev().flatten() {
            consider(*f);
        }
        consider(ls.succ);
        best.unwrap_or(ls.succ)
    }

    /// Failure-detection bookkeeping: marks `dead` as a suspect and
    /// scrubs it out of every layer's routing state. Fingers pointing
    /// at it are nulled (fix-fingers re-resolves them); a successor
    /// pointing at it is replaced by the closest alive clockwise finger
    /// (self when none is known — stabilization then repairs it). The
    /// predecessor pointer is deliberately left stale: a suspect pred
    /// keeps the ownership range a safe subset until a live predecessor
    /// notifies, at which point the suspect check in the notify rule
    /// lets the replacement through.
    pub fn note_dead(&mut self, dead: Id) {
        if dead == self.id {
            return;
        }
        self.suspects.insert(dead);
        let me = self.id;
        let space = self.space;
        for ls in &mut self.layers {
            for f in &mut ls.fingers {
                if *f == Some(dead) {
                    *f = None;
                }
            }
            if ls.succ == dead {
                let mut best: Option<Id> = None;
                for &f in ls.fingers.iter().flatten() {
                    if f == me {
                        continue;
                    }
                    best = Some(match best {
                        None => f,
                        // Closest clockwise after me = the one the other
                        // precedes on the arc (me, best].
                        Some(b) => {
                            if space.in_open(me, b, f) {
                                f
                            } else {
                                b
                            }
                        }
                    });
                }
                ls.succ = best.unwrap_or(me);
            }
        }
    }

    /// The §3.2 routing step for an incoming [`Payload::FindSucc`].
    ///
    /// Mirrors [`hieras_core::HierasOracle::route`] hop for hop: the
    /// global owner answers; a node that is the closest-*preceding*
    /// member of the key in a lower ring hands the message up a layer
    /// at no hop cost; a node that ring-locally owns the key in a lower
    /// ring overshoots it in id space and bounces one backward hop to
    /// its predecessor (the hand-off point); everyone else forwards via
    /// the layer's fingers. Returns the messages to emit.
    fn on_find_succ(&self, key: Key, mut layer: u8, origin: Id, req: u64, hops: u32) -> Vec<(Id, Payload)> {
        // The destination check that ends each m loop early (§3.2).
        if self.owns_in_layer(1, key) {
            return vec![(origin, Payload::FoundSucc { key, owner: self.id, req, hops })];
        }
        while layer > 1 {
            let ls = self.layer(layer);
            if ls.succ == self.id || self.space.in_open_closed(self.id, ls.succ, key) {
                // Closest-preceding member of the key in this ring (or a
                // solo ring): ascend toward the global ring.
                layer -= 1;
            } else if self.owns_in_layer(layer, key) {
                // Overshoot bounce: hand the key back to the ring-local
                // predecessor. Only to one believed alive — bouncing to
                // a suspect pred would RTO, re-handle, and bounce again
                // forever, since note_dead leaves pred pointers stale.
                let pred = ls.pred.filter(|p| *p != self.id && !self.suspects.contains(p));
                match pred {
                    Some(p) => {
                        return vec![(
                            p,
                            Payload::FindSucc { key, layer, origin, req, hops: hops + 1 },
                        )];
                    }
                    // Hand-off point unknown or dead: ascend — the
                    // upper layers still reach the global owner.
                    None => layer -= 1,
                }
            } else {
                break;
            }
        }
        let next = self.next_hop_in_layer(layer, key);
        if next == self.id {
            // Degenerate solo ring that doesn't own the key can only
            // happen at layer 1 with one node — which owns everything —
            // so reaching here means state corruption.
            return vec![(origin, Payload::FoundSucc { key, owner: self.id, req, hops })];
        }
        vec![(next, Payload::FindSucc { key, layer, origin, req, hops: hops + 1 })]
    }

    /// The §3.3 routing step for [`Payload::FindRingSucc`]: ordinary
    /// Chord routing confined to `layer`'s ring, answered by the
    /// ring-local owner.
    fn on_find_ring_succ(&self, key: Key, layer: u8, origin: Id, req: u64, hops: u32) -> Vec<(Id, Payload)> {
        if self.owns_in_layer(layer, key) {
            return vec![(origin, Payload::FoundSucc { key, owner: self.id, req, hops })];
        }
        let next = self.next_hop_in_layer(layer, key);
        if next == self.id {
            return vec![(origin, Payload::FoundSucc { key, owner: self.id, req, hops })];
        }
        vec![(next, Payload::FindRingSucc { key, layer, origin, req, hops: hops + 1 })]
    }

    /// Handles one incoming message, returning the messages to send.
    /// Pure with respect to the transport: no I/O, no clocks.
    pub fn handle(&mut self, from: Id, msg: Payload) -> Vec<(Id, Payload)> {
        match msg {
            Payload::FindSucc { key, layer, origin, req, hops } => {
                self.on_find_succ(key, layer, origin, req, hops)
            }
            Payload::FindRingSucc { key, layer, origin, req, hops } => {
                self.on_find_ring_succ(key, layer, origin, req, hops)
            }
            Payload::FoundSucc { .. } => Vec::new(), // consumed by drivers
            Payload::GetPred { layer, req } => {
                let pred = self.layer(layer).pred;
                vec![(from, Payload::PredIs { layer, pred, req })]
            }
            Payload::PredIs { .. } => Vec::new(), // consumed by drivers
            Payload::Notify { layer } => {
                let me = self.id;
                let space = self.space;
                let adopt = match self.layer(layer).pred {
                    None => true,
                    // A suspect predecessor is replaced by any live
                    // claimant — this is how the successor of a failed
                    // node absorbs its key range.
                    Some(p) => {
                        p == me || self.suspects.contains(&p) || space.in_open(p, me, from)
                    }
                };
                if adopt && from != me && !self.suspects.contains(&from) {
                    self.layer_mut(layer).pred = Some(from);
                }
                Vec::new()
            }
            Payload::UpdateSucc { layer } => {
                let me = self.id;
                let space = self.space;
                let succ = self.layer(layer).succ;
                // Accept only if the sender actually sits between us and
                // our current successor (or we are solo).
                if from != me
                    && !self.suspects.contains(&from)
                    && (succ == me || space.in_open(me, succ, from))
                {
                    self.layer_mut(layer).succ = from;
                }
                Vec::new()
            }
            Payload::GetRingTable { ring_name, req } => {
                let table = self.ring_tables.get(&ring_name).cloned();
                vec![(from, Payload::RingTableIs { table, req })]
            }
            Payload::RingTableIs { .. } => Vec::new(), // consumed by drivers
            Payload::RingTableUpdate { ring_name, node } => {
                let table = self
                    .ring_tables
                    .entry(ring_name.clone())
                    .or_insert_with(|| {
                        RingTable::new(&order_from_name(&ring_name))
                    });
                table.observe(node);
                Vec::new()
            }
            Payload::GetFingers { layer, req } => {
                let fingers = self.layer(layer).fingers.clone();
                vec![(from, Payload::FingersAre { layer, fingers, req })]
            }
            Payload::FingersAre { .. } => Vec::new(), // consumed by drivers
            Payload::GetLandmarks { req } => {
                vec![(from, Payload::LandmarksAre { landmarks: self.landmarks.clone(), req })]
            }
            Payload::LandmarksAre { .. } => Vec::new(), // consumed by drivers
            Payload::Ping { req } => vec![(from, Payload::Pong { req })],
            Payload::Pong { .. } => Vec::new(), // consumed by drivers
            Payload::LeaveUpdate { layer, new_succ, new_pred } => {
                let me = self.id;
                let ls = self.layer_mut(layer);
                for f in &mut ls.fingers {
                    if *f == Some(from) {
                        *f = None;
                    }
                }
                if let Some(s) = new_succ {
                    if ls.succ == from {
                        // A leaver pointing at itself means the ring
                        // collapses to the receiver alone.
                        ls.succ = if s == from { me } else { s };
                    }
                }
                if let Some(p) = new_pred {
                    if ls.pred == Some(from) {
                        ls.pred = Some(if p == from { me } else { p });
                    }
                }
                Vec::new()
            }
            Payload::RingTableRemove { ring_name, node } => {
                let probe = match self.ring_tables.get_mut(&ring_name) {
                    Some(t) => {
                        t.remove(node);
                        if t.needs_repair() {
                            // §3.1 failure repair: ask a surviving member
                            // for its ring neighbours to refill the slots.
                            t.entry_points().first().copied()
                        } else {
                            None
                        }
                    }
                    None => None,
                };
                match probe {
                    Some(p) => vec![(p, Payload::GetRingNeighbors { ring_name, req: 0 })],
                    None => Vec::new(),
                }
            }
            Payload::GetRingNeighbors { ring_name, req } => {
                match self.layers.iter().find(|l| l.ring_name == ring_name) {
                    Some(ls) => vec![(
                        from,
                        Payload::RingNeighborsAre {
                            ring_name,
                            succ: ls.succ,
                            pred: ls.pred,
                            req,
                        },
                    )],
                    None => Vec::new(), // not a member — probe went stale
                }
            }
            Payload::RingNeighborsAre { ring_name, succ, pred, .. } => {
                if let Some(t) = self.ring_tables.get_mut(&ring_name) {
                    for m in [Some(from), Some(succ), pred].into_iter().flatten() {
                        if !self.suspects.contains(&m) {
                            t.observe(m);
                        }
                    }
                }
                Vec::new()
            }
            Payload::RingTableHandoff { table } => {
                match self.ring_tables.get_mut(&table.ring_name) {
                    Some(existing) => {
                        existing.repair_from(table.entry_points().iter().copied());
                    }
                    None => {
                        self.ring_tables.insert(table.ring_name.clone(), table);
                    }
                }
                Vec::new()
            }
            Payload::Timeout { dead, original } => {
                self.note_dead(dead);
                // Reroute with the failed forward refunded: the re-handle
                // below re-increments the hop count, so net hops stay
                // honest while the timeout cost shows up in latency.
                match *original {
                    Payload::FindSucc { key, layer, origin, req, hops } => {
                        self.on_find_succ(key, layer, origin, req, hops.saturating_sub(1))
                    }
                    Payload::FindRingSucc { key, layer, origin, req, hops } => {
                        self.on_find_ring_succ(key, layer, origin, req, hops.saturating_sub(1))
                    }
                    _ => Vec::new(),
                }
            }
        }
    }
}

/// Parses a ring name back into a [`hieras_core::LandmarkOrder`]
/// (digit characters '0'–'9').
#[must_use]
pub(crate) fn order_from_name(name: &str) -> hieras_core::LandmarkOrder {
    hieras_core::LandmarkOrder(name.bytes().map(|b| b.saturating_sub(b'0')).collect())
}

/// Extracts every node's protocol state from a built oracle — the
/// "warm bootstrap" used to initialize transports with a consistent,
/// fully stabilized network.
#[must_use]
pub fn states_from_oracle(oracle: &HierasOracle, landmarks: &[u32]) -> Vec<NodeState> {
    let space = oracle.space();
    let bits = space.bits() as usize;
    let n = oracle.len();
    let mut states: Vec<NodeState> = (0..n as u32)
        .map(|node| NodeState {
            id: oracle.id_of(node),
            space,
            layers: Vec::with_capacity(oracle.layers().len()),
            ring_tables: HashMap::new(),
            landmarks: landmarks.to_vec(),
            suspects: HashSet::new(),
        })
        .collect();
    for layer in oracle.layers() {
        for (name, ring) in layer.rings() {
            for (pos, &member) in ring.members().iter().enumerate() {
                let pos = pos as u32;
                let succ = oracle.id_of(ring.node_at(ring.successor(pos)));
                let pred = oracle.id_of(ring.node_at(ring.predecessor(pos)));
                let mut fingers = vec![None; bits];
                for (i, f) in fingers.iter_mut().enumerate() {
                    *f = Some(oracle.id_of(ring.node_at(ring.finger(pos, i as u32))));
                }
                states[member as usize].layers.push(LayerState {
                    ring_name: name.name(),
                    succ,
                    pred: Some(pred),
                    fingers,
                });
            }
        }
    }
    // Ring tables live at their holders.
    for table in oracle.ring_tables().values() {
        let holder = oracle.ring_table_holder(table.ring_id);
        states[holder as usize].ring_tables.insert(table.ring_name.clone(), table.clone());
    }
    states
}

#[cfg(test)]
mod tests {
    use super::*;
    use hieras_core::{Binning, HierasConfig};
    use std::sync::Arc;

    fn oracle() -> HierasOracle {
        let ids: Arc<[Id]> = (0..16u64)
            .map(|i| Id(i.wrapping_mul(0x9e37_79b9_7f4a_7c15)))
            .collect::<Vec<_>>()
            .into();
        let rtts: Vec<Vec<u16>> =
            (0..16).map(|i| vec![if i % 2 == 0 { 5 } else { 150 }, 30]).collect();
        HierasOracle::from_rtts(
            IdSpace::full(),
            ids,
            &rtts,
            HierasConfig { depth: 2, landmarks: 2, binning: Binning::paper() },
        )
        .unwrap()
    }

    #[test]
    fn states_from_oracle_are_complete() {
        let o = oracle();
        let states = states_from_oracle(&o, &[7, 9]);
        assert_eq!(states.len(), 16);
        for s in &states {
            assert_eq!(s.depth(), 2);
            assert_eq!(s.landmarks, vec![7, 9]);
            for l in &s.layers {
                assert!(l.pred.is_some());
                assert!(l.fingers.iter().all(Option::is_some));
            }
        }
        // Ring tables distributed to holders only.
        let held: usize = states.iter().map(|s| s.ring_tables.len()).sum();
        assert_eq!(held, o.ring_tables().len());
    }

    #[test]
    fn ownership_matches_oracle() {
        let o = oracle();
        let states = states_from_oracle(&o, &[]);
        for k in 0..50u64 {
            let key = Id(k.wrapping_mul(0x517c_c1b7_2722_0a95));
            let owner = o.owner_of(key);
            for (i, s) in states.iter().enumerate() {
                assert_eq!(
                    s.owns_in_layer(1, key),
                    i as u32 == owner,
                    "node {i} key {k}"
                );
            }
        }
    }

    #[test]
    fn get_pred_and_fingers_roundtrip() {
        let o = oracle();
        let mut states = states_from_oracle(&o, &[]);
        let asker = states[1].id;
        let out = states[0].handle(asker, Payload::GetPred { layer: 1, req: 9 });
        assert_eq!(out.len(), 1);
        assert_eq!(out[0].0, asker);
        match &out[0].1 {
            Payload::PredIs { pred, req: 9, .. } => assert!(pred.is_some()),
            other => panic!("unexpected {other:?}"),
        }
        let out = states[0].handle(asker, Payload::GetFingers { layer: 2, req: 1 });
        match &out[0].1 {
            Payload::FingersAre { fingers, .. } => assert_eq!(fingers.len(), 64),
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn notify_adopts_closer_predecessor_only() {
        let o = oracle();
        let mut states = states_from_oracle(&o, &[]);
        let me = states[0].id;
        let old_pred = states[0].layer(1).pred.unwrap();
        // A node *behind* the current predecessor must not displace it.
        let space = states[0].space;
        let worse = space.sub(old_pred, 1);
        let out = states[0].handle(worse, Payload::Notify { layer: 1 });
        assert!(out.is_empty());
        assert_eq!(states[0].layer(1).pred, Some(old_pred));
        // A node between pred and me is adopted.
        let better = space.sub(me, 1);
        if better != old_pred {
            states[0].handle(better, Payload::Notify { layer: 1 });
            assert_eq!(states[0].layer(1).pred, Some(better));
        }
    }

    #[test]
    fn ring_table_update_creates_table_on_demand() {
        let o = oracle();
        let mut states = states_from_oracle(&o, &[]);
        let sender = states[4].id;
        let out = states[3].handle(
            sender,
            Payload::RingTableUpdate { ring_name: "99".into(), node: Id(42) },
        );
        assert!(out.is_empty());
        let t = states[3].ring_tables.get("99").unwrap();
        assert_eq!(t.entry_points(), &[Id(42)]);
    }

    #[test]
    fn order_from_name_roundtrips() {
        let o = order_from_name("0212");
        assert_eq!(o.0, vec![0, 2, 1, 2]);
        assert_eq!(o.name(), "0212");
    }
}
