//! Wire format: length-free, self-describing JSON frames in `Vec<u8>`.
//!
//! The thread transport serializes every message before it crosses a
//! channel, proving the protocol state machine is fully
//! serializable — nothing in [`crate::Payload`] smuggles process-local
//! references. JSON (the in-tree `hieras_rt` writer/reader) keeps
//! frames debuggable; a production deployment would swap in a binary
//! codec behind the same two functions.

use crate::Payload;
use hieras_id::Id;
use hieras_rt::{FromJson, Json, JsonError, ToJson};

/// A framed protocol message: source, destination, payload.
#[derive(Debug, Clone, PartialEq)]
pub struct Frame {
    /// Sender id.
    pub from: Id,
    /// Destination id.
    pub to: Id,
    /// The protocol payload.
    pub payload: Payload,
}

impl ToJson for Frame {
    fn to_json(&self) -> Json {
        Json::obj([
            ("from", self.from.to_json()),
            ("to", self.to.to_json()),
            ("payload", self.payload.to_json()),
        ])
    }
}

impl FromJson for Frame {
    fn from_json(v: &Json) -> Result<Self, JsonError> {
        Ok(Frame {
            from: v.field("from")?,
            to: v.field("to")?,
            payload: v.field("payload")?,
        })
    }
}

/// Encodes a frame.
#[must_use]
pub fn encode(frame: &Frame) -> Vec<u8> {
    frame.to_json().dump().into_bytes()
}

/// Decodes a frame.
///
/// # Errors
/// Returns the underlying JSON error for malformed input.
pub fn decode(bytes: &[u8]) -> Result<Frame, JsonError> {
    let text = std::str::from_utf8(bytes)
        .map_err(|e| JsonError(format!("frame is not UTF-8: {e}")))?;
    Frame::from_json(&Json::parse(text)?)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_every_variant() {
        let frames = vec![
            Payload::FindSucc { key: Id(7), layer: 2, origin: Id(1), req: 3, hops: 4 },
            Payload::FoundSucc { key: Id(7), owner: Id(9), req: 3, hops: 6 },
            Payload::GetPred { layer: 1, req: 1 },
            Payload::PredIs { layer: 1, pred: Some(Id(5)), req: 1 },
            Payload::Notify { layer: 2 },
            Payload::UpdateSucc { layer: 1 },
            Payload::GetRingTable { ring_name: "012".into(), req: 8 },
            Payload::RingTableIs { table: None, req: 8 },
            Payload::RingTableUpdate { ring_name: "012".into(), node: Id(11) },
            Payload::GetFingers { layer: 2, req: 9 },
            Payload::FingersAre { layer: 2, fingers: vec![None, Some(Id(3))], req: 9 },
            Payload::GetLandmarks { req: 2 },
            Payload::LandmarksAre { landmarks: vec![10, 20], req: 2 },
            Payload::Ping { req: 4 },
            Payload::Pong { req: 4 },
            Payload::LeaveUpdate { layer: 2, new_succ: Some(Id(6)), new_pred: None },
            Payload::RingTableRemove { ring_name: "012".into(), node: Id(11) },
            Payload::GetRingNeighbors { ring_name: "012".into(), req: 5 },
            Payload::RingNeighborsAre {
                ring_name: "012".into(),
                succ: Id(13),
                pred: Some(Id(12)),
                req: 5,
            },
            Payload::RingTableHandoff {
                table: hieras_core::RingTable::new(&hieras_core::LandmarkOrder(vec![0, 1, 2])),
            },
            Payload::Timeout {
                dead: Id(99),
                original: Box::new(Payload::FindSucc {
                    key: Id(7),
                    layer: 1,
                    origin: Id(1),
                    req: 3,
                    hops: 2,
                }),
            },
        ];
        for payload in frames {
            let f = Frame { from: Id(100), to: Id(200), payload };
            let encoded = encode(&f);
            let decoded = decode(&encoded).unwrap();
            assert_eq!(decoded, f);
        }
    }

    #[test]
    fn decode_rejects_garbage() {
        assert!(decode(b"not json").is_err());
        assert!(decode(b"{}").is_err());
    }
}
