//! Wire format: length-free, self-describing JSON frames in
//! [`bytes::Bytes`].
//!
//! The thread transport serializes every message before it crosses a
//! channel, proving the protocol state machine is fully
//! serializable — nothing in [`crate::Payload`] smuggles process-local
//! references. JSON keeps frames debuggable; a production deployment
//! would swap in a binary codec behind the same two functions.

use crate::Payload;
use bytes::Bytes;
use hieras_id::Id;
use serde::{Deserialize, Serialize};

/// A framed protocol message: source, destination, payload.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Frame {
    /// Sender id.
    pub from: Id,
    /// Destination id.
    pub to: Id,
    /// The protocol payload.
    pub payload: Payload,
}

/// Encodes a frame.
///
/// # Panics
/// Panics if serialization fails (impossible for these types — all
/// fields are plain data).
#[must_use]
pub fn encode(frame: &Frame) -> Bytes {
    Bytes::from(serde_json::to_vec(frame).expect("Payload is plain data"))
}

/// Decodes a frame.
///
/// # Errors
/// Returns the underlying JSON error for malformed input.
pub fn decode(bytes: &Bytes) -> Result<Frame, serde_json::Error> {
    serde_json::from_slice(bytes)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_every_variant() {
        let frames = vec![
            Payload::FindSucc { key: Id(7), layer: 2, origin: Id(1), req: 3, hops: 4 },
            Payload::FoundSucc { key: Id(7), owner: Id(9), req: 3, hops: 6 },
            Payload::GetPred { layer: 1, req: 1 },
            Payload::PredIs { layer: 1, pred: Some(Id(5)), req: 1 },
            Payload::Notify { layer: 2 },
            Payload::UpdateSucc { layer: 1 },
            Payload::GetRingTable { ring_name: "012".into(), req: 8 },
            Payload::RingTableIs { table: None, req: 8 },
            Payload::RingTableUpdate { ring_name: "012".into(), node: Id(11) },
            Payload::GetFingers { layer: 2, req: 9 },
            Payload::FingersAre { layer: 2, fingers: vec![None, Some(Id(3))], req: 9 },
            Payload::GetLandmarks { req: 2 },
            Payload::LandmarksAre { landmarks: vec![10, 20], req: 2 },
        ];
        for payload in frames {
            let f = Frame { from: Id(100), to: Id(200), payload };
            let encoded = encode(&f);
            let decoded = decode(&encoded).unwrap();
            assert_eq!(decoded, f);
        }
    }

    #[test]
    fn decode_rejects_garbage() {
        assert!(decode(&Bytes::from_static(b"not json")).is_err());
        assert!(decode(&Bytes::from_static(b"{}")).is_err());
    }
}
