//! Real-concurrency transport: one OS thread per node, std mpsc
//! channels, serialized frames.
//!
//! The same pure handler that drives [`crate::SimNet`] runs here under
//! genuine parallel delivery — no simulated clock, no global lock
//! around the network. Each node thread owns its [`NodeState`]
//! exclusively (share-nothing actor style, per the hpc-parallel
//! guides); the only shared structure is the immutable routing map
//! from node id to channel sender.
//!
//! Scope: lookups against a bootstrapped (already stabilized) network.
//! Join choreography is exercised deterministically in `SimNet`; this
//! transport exists to prove the handler is thread-safe and the wire
//! format complete.

use crate::state::states_from_oracle;
use crate::wire::{decode, encode, Frame};
use crate::Payload;
use hieras_core::HierasOracle;
use hieras_id::{Id, Key};
use std::collections::HashMap;
use std::sync::mpsc::{channel, Receiver, Sender};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;

/// Channel item: a serialized frame, or the stop signal.
enum WireMsg {
    /// A serialized [`Frame`].
    Frame(Vec<u8>),
    /// Orderly shutdown request for the node thread.
    Stop,
}

/// Shared, immutable-after-construction routing table.
struct Fabric {
    routes: HashMap<Id, Sender<WireMsg>>,
    /// Lookup responses are delivered here, keyed by origin id.
    client_inbox: Mutex<HashMap<Id, Sender<Frame>>>,
}

impl Fabric {
    fn send(&self, frame: &Frame) {
        // Responses to a client driver are intercepted by id.
        if let Some(tx) = self.client_inbox.lock().expect("inbox lock poisoned").get(&frame.to) {
            let _ = tx.send(frame.clone());
            return;
        }
        if let Some(tx) = self.routes.get(&frame.to) {
            let _ = tx.send(WireMsg::Frame(encode(frame)));
        }
    }
}

/// A running threaded HIERAS network.
pub struct ThreadNet {
    fabric: Arc<Fabric>,
    handles: Vec<JoinHandle<u64>>,
    node_ids: Vec<Id>,
    next_req: std::sync::atomic::AtomicU64,
}

impl ThreadNet {
    /// Spawns one thread per node, bootstrapped from a built oracle.
    #[must_use]
    pub fn spawn(oracle: &HierasOracle, landmarks: &[u32]) -> Self {
        let states = states_from_oracle(oracle, landmarks);
        let node_ids: Vec<Id> = states.iter().map(|s| s.id).collect();
        let mut routes = HashMap::with_capacity(states.len());
        let mut inboxes: Vec<(crate::NodeState, Receiver<WireMsg>)> =
            Vec::with_capacity(states.len());
        for state in states {
            let (tx, rx) = channel::<WireMsg>();
            routes.insert(state.id, tx);
            inboxes.push((state, rx));
        }
        let fabric = Arc::new(Fabric { routes, client_inbox: Mutex::new(HashMap::new()) });
        let handles = inboxes
            .into_iter()
            .map(|(mut state, rx)| {
                let fabric = Arc::clone(&fabric);
                std::thread::spawn(move || {
                    let mut processed = 0u64;
                    while let Ok(item) = rx.recv() {
                        let raw = match item {
                            WireMsg::Frame(raw) => raw,
                            WireMsg::Stop => break,
                        };
                        let frame = decode(&raw).expect("peers only send valid frames");
                        processed += 1;
                        for (to, payload) in state.handle(frame.from, frame.payload) {
                            fabric.send(&Frame { from: state.id, to, payload });
                        }
                    }
                    processed
                })
            })
            .collect();
        ThreadNet {
            fabric,
            handles,
            node_ids,
            next_req: std::sync::atomic::AtomicU64::new(1),
        }
    }

    /// The ids of all running nodes.
    #[must_use]
    pub fn node_ids(&self) -> &[Id] {
        &self.node_ids
    }

    /// Performs a hierarchical lookup, injecting the request at
    /// `origin`'s lowest layer and blocking until the owner's response
    /// arrives. The response is routed to a transient client address.
    ///
    /// # Panics
    /// Panics if `origin` is not a member, or if the network drops the
    /// request (all node threads are alive by construction).
    #[must_use]
    pub fn lookup(&self, origin: Id, key: Key, depth: u8) -> (Id, u32) {
        assert!(self.node_ids.contains(&origin), "origin must be a member");
        let req = self.next_req.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
        // A unique client address per request keeps concurrent lookups apart.
        let client = Id(0x8000_0000_0000_0000u64 | req);
        let (tx, rx) = channel::<Frame>();
        self.fabric.client_inbox.lock().expect("inbox lock poisoned").insert(client, tx);
        self.fabric.send(&Frame {
            from: client,
            to: origin,
            payload: Payload::FindSucc { key, layer: depth, origin: client, req, hops: 0 },
        });
        let reply = rx
            .recv_timeout(std::time::Duration::from_secs(30))
            .expect("lookup timed out — network wedged");
        self.fabric.client_inbox.lock().expect("inbox lock poisoned").remove(&client);
        match reply.payload {
            Payload::FoundSucc { owner, hops, .. } => (owner, hops),
            other => panic!("client received unexpected message {other:?}"),
        }
    }

    /// Shuts the network down (stop signal to every node thread, then
    /// join), returning the total number of messages processed.
    #[must_use]
    pub fn shutdown(self) -> u64 {
        for tx in self.fabric.routes.values() {
            let _ = tx.send(WireMsg::Stop);
        }
        self.handles.into_iter().map(|h| h.join().unwrap_or(0)).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hieras_core::{Binning, HierasConfig};
    use hieras_id::IdSpace;
    use std::sync::Arc as StdArc;

    fn oracle(n: u64) -> HierasOracle {
        let ids: StdArc<[Id]> = (0..n)
            .map(|i| Id(i.wrapping_mul(0x9e37_79b9_7f4a_7c15).wrapping_add(3)))
            .collect::<Vec<_>>()
            .into();
        let rtts: Vec<Vec<u16>> =
            (0..n).map(|i| vec![if i % 2 == 0 { 5 } else { 150 }, 40]).collect();
        HierasOracle::from_rtts(
            IdSpace::full(),
            ids,
            &rtts,
            HierasConfig { depth: 2, landmarks: 2, binning: Binning::paper() },
        )
        .unwrap()
    }

    #[test]
    fn threaded_lookups_match_oracle() {
        let o = oracle(16);
        let net = ThreadNet::spawn(&o, &[1, 2]);
        for k in 0..40u64 {
            let key = Id(k.wrapping_mul(0x517c_c1b7_2722_0a95));
            let src = o.id_of((k % 16) as u32);
            let (owner, hops) = net.lookup(src, key, 2);
            let trace = o.route((k % 16) as u32, key);
            assert_eq!(owner, o.id_of(trace.destination()), "key {k}");
            assert_eq!(hops as usize, trace.hop_count(), "key {k}");
        }
        let _ = net.shutdown();
    }

    #[test]
    fn concurrent_lookups_from_multiple_client_threads() {
        let o = oracle(12);
        let net = StdArc::new(ThreadNet::spawn(&o, &[]));
        let owners: Vec<Id> =
            (0..60u64).map(|k| o.id_of(o.route(0, Id(k * 977 + 5)).destination())).collect();
        std::thread::scope(|s| {
            for t in 0..4u64 {
                let net = StdArc::clone(&net);
                let o = &o;
                let owners = &owners;
                s.spawn(move || {
                    for k in (t..60).step_by(4) {
                        let key = Id(k * 977 + 5);
                        let src = o.id_of((k % 12) as u32);
                        let (owner, _) = net.lookup(src, key, 2);
                        assert_eq!(owner, owners[k as usize], "key {k}");
                    }
                });
            }
        });
        let net = StdArc::try_unwrap(net).unwrap_or_else(|_| panic!("net still shared"));
        let processed = net.shutdown();
        assert!(processed >= 60, "only {processed} messages processed");
    }
}
