//! The HIERAS wire protocol.
//!
//! Layer numbers are 1-based as in the paper: layer 1 is the global
//! ring, layer `depth` the lowest. A lookup starts at the originator's
//! lowest layer and *ascends* toward layer 1 (§3.2's m loops).

use hieras_core::RingTable;
use hieras_id::Id;
use hieras_rt::{FromJson, Json, JsonError, ToJson};

/// Protocol messages. Every message is addressed to a node id; the
/// transport resolves ids to endpoints.
#[derive(Debug, Clone, PartialEq)]
pub enum Payload {
    /// Hierarchical find-successor, forwarded recursively. `layer` is
    /// the ring currently being searched; `hops` counts forwarding
    /// steps so far (the paper's routing-hop metric).
    FindSucc {
        /// Key being resolved.
        key: Id,
        /// Ring layer being searched (1 = global).
        layer: u8,
        /// Node that issued the lookup (receives [`Payload::FoundSucc`]).
        origin: Id,
        /// Request correlation id.
        req: u64,
        /// Routing hops taken so far.
        hops: u32,
    },
    /// Single-ring find-successor: ordinary Chord routing confined to
    /// one ring (§3.3 resolves join-time successors and ring-table
    /// holders this way). Unlike [`Payload::FindSucc`] it never ascends
    /// layers; the ring-local owner answers.
    FindRingSucc {
        /// Key being resolved.
        key: Id,
        /// Ring layer to route in (1 = global).
        layer: u8,
        /// Node that issued the lookup (receives [`Payload::FoundSucc`]).
        origin: Id,
        /// Request correlation id.
        req: u64,
        /// Routing hops taken so far.
        hops: u32,
    },
    /// Final response to a [`Payload::FindSucc`] or
    /// [`Payload::FindRingSucc`], sent by the owner directly to the
    /// originator.
    FoundSucc {
        /// The resolved key.
        key: Id,
        /// The key's owner.
        owner: Id,
        /// Request correlation id.
        req: u64,
        /// Total routing hops.
        hops: u32,
    },
    /// Asks for the receiver's predecessor in `layer` (join/stabilize).
    GetPred {
        /// Ring layer.
        layer: u8,
        /// Request correlation id.
        req: u64,
    },
    /// Response to [`Payload::GetPred`].
    PredIs {
        /// Ring layer.
        layer: u8,
        /// The predecessor, if known.
        pred: Option<Id>,
        /// Request correlation id.
        req: u64,
    },
    /// Chord `notify`: the sender believes it is the receiver's
    /// predecessor in `layer`.
    Notify {
        /// Ring layer.
        layer: u8,
    },
    /// Aggressive-join counterpart of [`Payload::Notify`]: tells the
    /// receiver its layer-`layer` successor is now the sender.
    UpdateSucc {
        /// Ring layer.
        layer: u8,
    },
    /// Asks the receiver (the table holder) for the ring table of
    /// `ring_name` (§3.3: "sends a ring table request message").
    GetRingTable {
        /// Ring name (landmark-order digit string).
        ring_name: String,
        /// Request correlation id.
        req: u64,
    },
    /// Response to [`Payload::GetRingTable`]. `table` is `None` when
    /// the holder has never heard of the ring — the joining node is
    /// founding it.
    RingTableIs {
        /// The stored table, if any.
        table: Option<RingTable>,
        /// Request correlation id.
        req: u64,
    },
    /// Ring-table modification message (§3.3): the sender joined
    /// `ring_name` and its id may belong in the table.
    RingTableUpdate {
        /// Ring name.
        ring_name: String,
        /// The joining node's id.
        node: Id,
    },
    /// Asks the receiver for its full finger table in `layer`
    /// (§3.3: finger-table creation request, answered with the entry
    /// point's own table as the initial approximation).
    GetFingers {
        /// Ring layer.
        layer: u8,
        /// Request correlation id.
        req: u64,
    },
    /// Response to [`Payload::GetFingers`].
    FingersAre {
        /// Ring layer.
        layer: u8,
        /// Finger entries (one per id bit; `None` = unresolved).
        fingers: Vec<Option<Id>>,
        /// Request correlation id.
        req: u64,
    },
    /// Asks for the landmark table (§3.3 step 1: the newcomer fetches
    /// landmark information from a nearby member).
    GetLandmarks {
        /// Request correlation id.
        req: u64,
    },
    /// Response to [`Payload::GetLandmarks`]: landmark router ids.
    LandmarksAre {
        /// Landmark router identifiers (opaque to the protocol).
        landmarks: Vec<u32>,
        /// Request correlation id.
        req: u64,
    },
    /// Liveness probe (check-predecessor and failure detection).
    Ping {
        /// Request correlation id.
        req: u64,
    },
    /// Response to [`Payload::Ping`].
    Pong {
        /// Request correlation id.
        req: u64,
    },
    /// Graceful-leave pointer patch: the sender is departing `layer`
    /// and tells the receiver its replacement neighbours. `new_succ`
    /// is set when the receiver was the leaver's predecessor,
    /// `new_pred` when it was the successor.
    LeaveUpdate {
        /// Ring layer.
        layer: u8,
        /// The receiver's new successor, if it changes.
        new_succ: Option<Id>,
        /// The receiver's new predecessor, if it changes.
        new_pred: Option<Id>,
    },
    /// Tells a ring-table holder that `node` left or died; the holder
    /// removes it and starts a repair probe (§3.1's failure note).
    RingTableRemove {
        /// Ring name.
        ring_name: String,
        /// The departed node.
        node: Id,
    },
    /// Holder repair probe: asks a surviving ring member for its
    /// ring-local neighbours so freed table slots can be refilled.
    GetRingNeighbors {
        /// Ring name the receiver is expected to be a member of.
        ring_name: String,
        /// Request correlation id.
        req: u64,
    },
    /// Response to [`Payload::GetRingNeighbors`]: the sender's
    /// in-ring successor and predecessor. Consumed by the holder's
    /// message handler, not a driver.
    RingNeighborsAre {
        /// Ring name.
        ring_name: String,
        /// The member's ring successor.
        succ: Id,
        /// The member's ring predecessor, if known.
        pred: Option<Id>,
        /// Request correlation id.
        req: u64,
    },
    /// Graceful leave of a ring-table holder: the stored table moves
    /// to the sender's global-ring successor (the new id closest to
    /// `SHA-1(ringname)`).
    RingTableHandoff {
        /// The table being handed over.
        table: RingTable,
    },
    /// Transport-generated timer: a message the receiver previously
    /// sent to `dead` was never acknowledged (the destination failed).
    /// Fires one RTO after the send; the receiver marks `dead` as
    /// suspect, scrubs its tables and reroutes `original`.
    Timeout {
        /// The unresponsive destination.
        dead: Id,
        /// The payload whose delivery timed out.
        original: Box<Payload>,
    },
}

/// Expands the payload→tag table into [`Payload::kind`] plus the
/// precomposed `net.send.*` / `net.deliver.*` counter names, so the
/// per-message accounting in the transport never builds a `String`
/// (the names are `concat!`-assembled at compile time).
macro_rules! payload_kinds {
    ($($variant:ident => $tag:literal),+ $(,)?) => {
        /// Short tag for traffic accounting.
        #[must_use]
        pub fn kind(&self) -> &'static str {
            match self { $(Payload::$variant { .. } => $tag,)+ }
        }

        /// The `net.send.<kind>` counter name for this payload.
        #[must_use]
        pub fn send_counter(&self) -> &'static str {
            match self { $(Payload::$variant { .. } => concat!("net.send.", $tag),)+ }
        }

        /// The `net.deliver.<kind>` counter name for this payload.
        #[must_use]
        pub fn deliver_counter(&self) -> &'static str {
            match self { $(Payload::$variant { .. } => concat!("net.deliver.", $tag),)+ }
        }
    };
}

impl Payload {
    payload_kinds! {
        FindSucc => "find_succ",
        FindRingSucc => "find_ring_succ",
        FoundSucc => "found_succ",
        GetPred => "get_pred",
        PredIs => "pred_is",
        Notify => "notify",
        UpdateSucc => "update_succ",
        GetRingTable => "get_ring_table",
        RingTableIs => "ring_table_is",
        RingTableUpdate => "ring_table_update",
        GetFingers => "get_fingers",
        FingersAre => "fingers_are",
        GetLandmarks => "get_landmarks",
        LandmarksAre => "landmarks_are",
        Ping => "ping",
        Pong => "pong",
        LeaveUpdate => "leave_update",
        RingTableRemove => "ring_table_remove",
        GetRingNeighbors => "get_ring_neighbors",
        RingNeighborsAre => "ring_neighbors_are",
        RingTableHandoff => "ring_table_handoff",
        Timeout => "timeout",
    }

    /// True for messages routed hop-by-hop through finger tables —
    /// the ones whose loss the transport converts into a
    /// [`Payload::Timeout`] at the sender (dead-node delivery
    /// semantics); everything else is dropped silently.
    #[must_use]
    pub fn is_routed(&self) -> bool {
        matches!(self, Payload::FindSucc { .. } | Payload::FindRingSucc { .. })
    }
}

impl ToJson for Payload {
    fn to_json(&self) -> Json {
        let kind = ("kind", self.kind().to_json());
        match self {
            Payload::FindSucc { key, layer, origin, req, hops } => Json::obj([
                kind,
                ("key", key.to_json()),
                ("layer", layer.to_json()),
                ("origin", origin.to_json()),
                ("req", req.to_json()),
                ("hops", hops.to_json()),
            ]),
            Payload::FindRingSucc { key, layer, origin, req, hops } => Json::obj([
                kind,
                ("key", key.to_json()),
                ("layer", layer.to_json()),
                ("origin", origin.to_json()),
                ("req", req.to_json()),
                ("hops", hops.to_json()),
            ]),
            Payload::FoundSucc { key, owner, req, hops } => Json::obj([
                kind,
                ("key", key.to_json()),
                ("owner", owner.to_json()),
                ("req", req.to_json()),
                ("hops", hops.to_json()),
            ]),
            Payload::GetPred { layer, req } => {
                Json::obj([kind, ("layer", layer.to_json()), ("req", req.to_json())])
            }
            Payload::PredIs { layer, pred, req } => Json::obj([
                kind,
                ("layer", layer.to_json()),
                ("pred", pred.to_json()),
                ("req", req.to_json()),
            ]),
            Payload::Notify { layer } => Json::obj([kind, ("layer", layer.to_json())]),
            Payload::UpdateSucc { layer } => Json::obj([kind, ("layer", layer.to_json())]),
            Payload::GetRingTable { ring_name, req } => Json::obj([
                kind,
                ("ring_name", ring_name.to_json()),
                ("req", req.to_json()),
            ]),
            Payload::RingTableIs { table, req } => {
                Json::obj([kind, ("table", table.to_json()), ("req", req.to_json())])
            }
            Payload::RingTableUpdate { ring_name, node } => Json::obj([
                kind,
                ("ring_name", ring_name.to_json()),
                ("node", node.to_json()),
            ]),
            Payload::GetFingers { layer, req } => {
                Json::obj([kind, ("layer", layer.to_json()), ("req", req.to_json())])
            }
            Payload::FingersAre { layer, fingers, req } => Json::obj([
                kind,
                ("layer", layer.to_json()),
                ("fingers", fingers.to_json()),
                ("req", req.to_json()),
            ]),
            Payload::GetLandmarks { req } => Json::obj([kind, ("req", req.to_json())]),
            Payload::LandmarksAre { landmarks, req } => Json::obj([
                kind,
                ("landmarks", landmarks.to_json()),
                ("req", req.to_json()),
            ]),
            Payload::Ping { req } => Json::obj([kind, ("req", req.to_json())]),
            Payload::Pong { req } => Json::obj([kind, ("req", req.to_json())]),
            Payload::LeaveUpdate { layer, new_succ, new_pred } => Json::obj([
                kind,
                ("layer", layer.to_json()),
                ("new_succ", new_succ.to_json()),
                ("new_pred", new_pred.to_json()),
            ]),
            Payload::RingTableRemove { ring_name, node } => Json::obj([
                kind,
                ("ring_name", ring_name.to_json()),
                ("node", node.to_json()),
            ]),
            Payload::GetRingNeighbors { ring_name, req } => Json::obj([
                kind,
                ("ring_name", ring_name.to_json()),
                ("req", req.to_json()),
            ]),
            Payload::RingNeighborsAre { ring_name, succ, pred, req } => Json::obj([
                kind,
                ("ring_name", ring_name.to_json()),
                ("succ", succ.to_json()),
                ("pred", pred.to_json()),
                ("req", req.to_json()),
            ]),
            Payload::RingTableHandoff { table } => {
                Json::obj([kind, ("table", table.to_json())])
            }
            Payload::Timeout { dead, original } => Json::obj([
                kind,
                ("dead", dead.to_json()),
                ("original", original.to_json()),
            ]),
        }
    }
}

impl FromJson for Payload {
    fn from_json(v: &Json) -> Result<Self, JsonError> {
        let kind: String = v.field("kind")?;
        match kind.as_str() {
            "find_succ" => Ok(Payload::FindSucc {
                key: v.field("key")?,
                layer: v.field("layer")?,
                origin: v.field("origin")?,
                req: v.field("req")?,
                hops: v.field("hops")?,
            }),
            "find_ring_succ" => Ok(Payload::FindRingSucc {
                key: v.field("key")?,
                layer: v.field("layer")?,
                origin: v.field("origin")?,
                req: v.field("req")?,
                hops: v.field("hops")?,
            }),
            "found_succ" => Ok(Payload::FoundSucc {
                key: v.field("key")?,
                owner: v.field("owner")?,
                req: v.field("req")?,
                hops: v.field("hops")?,
            }),
            "get_pred" => Ok(Payload::GetPred { layer: v.field("layer")?, req: v.field("req")? }),
            "pred_is" => Ok(Payload::PredIs {
                layer: v.field("layer")?,
                pred: v.field("pred")?,
                req: v.field("req")?,
            }),
            "notify" => Ok(Payload::Notify { layer: v.field("layer")? }),
            "update_succ" => Ok(Payload::UpdateSucc { layer: v.field("layer")? }),
            "get_ring_table" => Ok(Payload::GetRingTable {
                ring_name: v.field("ring_name")?,
                req: v.field("req")?,
            }),
            "ring_table_is" => {
                Ok(Payload::RingTableIs { table: v.field("table")?, req: v.field("req")? })
            }
            "ring_table_update" => Ok(Payload::RingTableUpdate {
                ring_name: v.field("ring_name")?,
                node: v.field("node")?,
            }),
            "get_fingers" => {
                Ok(Payload::GetFingers { layer: v.field("layer")?, req: v.field("req")? })
            }
            "fingers_are" => Ok(Payload::FingersAre {
                layer: v.field("layer")?,
                fingers: v.field("fingers")?,
                req: v.field("req")?,
            }),
            "get_landmarks" => Ok(Payload::GetLandmarks { req: v.field("req")? }),
            "landmarks_are" => Ok(Payload::LandmarksAre {
                landmarks: v.field("landmarks")?,
                req: v.field("req")?,
            }),
            "ping" => Ok(Payload::Ping { req: v.field("req")? }),
            "pong" => Ok(Payload::Pong { req: v.field("req")? }),
            "leave_update" => Ok(Payload::LeaveUpdate {
                layer: v.field("layer")?,
                new_succ: v.field("new_succ")?,
                new_pred: v.field("new_pred")?,
            }),
            "ring_table_remove" => Ok(Payload::RingTableRemove {
                ring_name: v.field("ring_name")?,
                node: v.field("node")?,
            }),
            "get_ring_neighbors" => Ok(Payload::GetRingNeighbors {
                ring_name: v.field("ring_name")?,
                req: v.field("req")?,
            }),
            "ring_neighbors_are" => Ok(Payload::RingNeighborsAre {
                ring_name: v.field("ring_name")?,
                succ: v.field("succ")?,
                pred: v.field("pred")?,
                req: v.field("req")?,
            }),
            "ring_table_handoff" => {
                Ok(Payload::RingTableHandoff { table: v.field("table")? })
            }
            "timeout" => Ok(Payload::Timeout {
                dead: v.field("dead")?,
                original: Box::new(v.field("original")?),
            }),
            other => Err(JsonError(format!("unknown payload kind `{other}`"))),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn kinds_are_distinct() {
        let msgs = [
            Payload::FindSucc { key: Id(1), layer: 1, origin: Id(2), req: 0, hops: 0 },
            Payload::FindRingSucc { key: Id(1), layer: 2, origin: Id(2), req: 0, hops: 0 },
            Payload::FoundSucc { key: Id(1), owner: Id(2), req: 0, hops: 3 },
            Payload::GetPred { layer: 1, req: 0 },
            Payload::PredIs { layer: 1, pred: None, req: 0 },
            Payload::Notify { layer: 1 },
            Payload::UpdateSucc { layer: 1 },
            Payload::GetRingTable { ring_name: "01".into(), req: 0 },
            Payload::RingTableIs { table: None, req: 0 },
            Payload::RingTableUpdate { ring_name: "01".into(), node: Id(3) },
            Payload::GetFingers { layer: 2, req: 0 },
            Payload::FingersAre { layer: 2, fingers: vec![], req: 0 },
            Payload::GetLandmarks { req: 0 },
            Payload::LandmarksAre { landmarks: vec![1, 2], req: 0 },
            Payload::Ping { req: 0 },
            Payload::Pong { req: 0 },
            Payload::LeaveUpdate { layer: 2, new_succ: Some(Id(4)), new_pred: None },
            Payload::RingTableRemove { ring_name: "01".into(), node: Id(3) },
            Payload::GetRingNeighbors { ring_name: "01".into(), req: 0 },
            Payload::RingNeighborsAre { ring_name: "01".into(), succ: Id(4), pred: None, req: 0 },
            Payload::RingTableHandoff {
                table: RingTable::new(&hieras_core::LandmarkOrder(vec![0, 1])),
            },
            Payload::Timeout {
                dead: Id(9),
                original: Box::new(Payload::FindSucc {
                    key: Id(1),
                    layer: 1,
                    origin: Id(2),
                    req: 0,
                    hops: 0,
                }),
            },
        ];
        let mut kinds: Vec<&str> = msgs.iter().map(Payload::kind).collect();
        kinds.sort_unstable();
        kinds.dedup();
        assert_eq!(kinds.len(), msgs.len());
    }
}
