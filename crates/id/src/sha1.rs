//! A from-scratch SHA-1 implementation (FIPS 180-1).
//!
//! HIERAS, like Chord/Pastry/Tapestry/CAN, derives node and key
//! identifiers with "a collision free algorithm such as SHA-1"
//! (paper §3.1). No SHA-1 crate is in the offline dependency set, so we
//! implement the compression function directly. The implementation is
//! streaming (incremental `update`) so large inputs never need to be
//! buffered whole, and it is validated against the official test
//! vectors plus a property test comparing against an independent
//! one-shot reference implementation in the test module.
//!
//! SHA-1 is cryptographically broken for collision resistance against
//! adversarial inputs; for DHT identifier assignment (uniform spreading
//! of benign names over the ring) it remains exactly as suitable as it
//! was in 2003, and using it keeps the reproduction faithful.

/// Streaming SHA-1 hasher.
///
/// ```
/// use hieras_id::Sha1;
/// let mut h = Sha1::new();
/// h.update(b"ab");
/// h.update(b"c");
/// assert_eq!(h.finalize(), Sha1::digest(b"abc"));
/// ```
#[derive(Clone)]
pub struct Sha1 {
    /// Chaining state A..E.
    state: [u32; 5],
    /// Total message length in bytes so far.
    len: u64,
    /// Partially filled block.
    buf: [u8; 64],
    /// Number of valid bytes in `buf` (always < 64 between calls).
    buf_len: usize,
}

impl Default for Sha1 {
    fn default() -> Self {
        Self::new()
    }
}

impl Sha1 {
    /// Initial chaining values from FIPS 180-1.
    const H0: [u32; 5] = [0x6745_2301, 0xefcd_ab89, 0x98ba_dcfe, 0x1032_5476, 0xc3d2_e1f0];

    /// Creates a hasher in the initial state.
    pub fn new() -> Self {
        Sha1 { state: Self::H0, len: 0, buf: [0u8; 64], buf_len: 0 }
    }

    /// Absorbs `data` into the hash state.
    pub fn update(&mut self, data: &[u8]) {
        self.len = self.len.wrapping_add(data.len() as u64);
        let mut rest = data;
        // Top up a partial block first.
        if self.buf_len > 0 {
            let take = (64 - self.buf_len).min(rest.len());
            self.buf[self.buf_len..self.buf_len + take].copy_from_slice(&rest[..take]);
            self.buf_len += take;
            rest = &rest[take..];
            if self.buf_len < 64 {
                // Input exhausted without completing the block; the
                // buffered bytes must survive for the next update.
                return;
            }
            let block = self.buf;
            self.compress(&block);
            self.buf_len = 0;
        }
        // Whole blocks straight from the input.
        let mut chunks = rest.chunks_exact(64);
        for block in &mut chunks {
            let mut b = [0u8; 64];
            b.copy_from_slice(block);
            self.compress(&b);
        }
        let tail = chunks.remainder();
        self.buf[..tail.len()].copy_from_slice(tail);
        self.buf_len = tail.len();
    }

    /// Finishes the computation and returns the 20-byte digest.
    pub fn finalize(mut self) -> [u8; 20] {
        let bit_len = self.len.wrapping_mul(8);
        // Padding: 0x80, zeros, then the 64-bit big-endian bit length.
        self.update(&[0x80]);
        while self.buf_len != 56 {
            self.update(&[0]);
        }
        // `update` would keep growing `len`; splice the length in manually.
        self.buf[56..64].copy_from_slice(&bit_len.to_be_bytes());
        let block = self.buf;
        self.compress(&block);
        let mut out = [0u8; 20];
        for (i, word) in self.state.iter().enumerate() {
            out[i * 4..i * 4 + 4].copy_from_slice(&word.to_be_bytes());
        }
        out
    }

    /// One-shot convenience: digest of `data`.
    pub fn digest(data: &[u8]) -> [u8; 20] {
        let mut h = Sha1::new();
        h.update(data);
        h.finalize()
    }

    /// One-shot convenience: the top 64 bits of the digest, big-endian.
    ///
    /// This is how [`crate::Id::hash_of`] maps names onto the 64-bit ring.
    pub fn digest_u64(data: &[u8]) -> u64 {
        let d = Self::digest(data);
        u64::from_be_bytes([d[0], d[1], d[2], d[3], d[4], d[5], d[6], d[7]])
    }

    /// SHA-1 compression function over one 512-bit block.
    fn compress(&mut self, block: &[u8; 64]) {
        let mut w = [0u32; 80];
        for (i, chunk) in block.chunks_exact(4).enumerate() {
            w[i] = u32::from_be_bytes([chunk[0], chunk[1], chunk[2], chunk[3]]);
        }
        for t in 16..80 {
            w[t] = (w[t - 3] ^ w[t - 8] ^ w[t - 14] ^ w[t - 16]).rotate_left(1);
        }
        let [mut a, mut b, mut c, mut d, mut e] = self.state;
        for (t, &wt) in w.iter().enumerate() {
            let (f, k) = match t {
                0..=19 => ((b & c) | ((!b) & d), 0x5a82_7999),
                20..=39 => (b ^ c ^ d, 0x6ed9_eba1),
                40..=59 => ((b & c) | (b & d) | (c & d), 0x8f1b_bcdc),
                _ => (b ^ c ^ d, 0xca62_c1d6),
            };
            let tmp = a
                .rotate_left(5)
                .wrapping_add(f)
                .wrapping_add(e)
                .wrapping_add(k)
                .wrapping_add(wt);
            e = d;
            d = c;
            c = b.rotate_left(30);
            b = a;
            a = tmp;
        }
        self.state[0] = self.state[0].wrapping_add(a);
        self.state[1] = self.state[1].wrapping_add(b);
        self.state[2] = self.state[2].wrapping_add(c);
        self.state[3] = self.state[3].wrapping_add(d);
        self.state[4] = self.state[4].wrapping_add(e);
    }
}

impl core::fmt::Debug for Sha1 {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        f.debug_struct("Sha1").field("len", &self.len).finish_non_exhaustive()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn hex(d: &[u8]) -> String {
        d.iter().map(|b| format!("{b:02x}")).collect()
    }

    #[test]
    fn fips_vector_empty() {
        assert_eq!(hex(&Sha1::digest(b"")), "da39a3ee5e6b4b0d3255bfef95601890afd80709");
    }

    #[test]
    fn fips_vector_abc() {
        assert_eq!(hex(&Sha1::digest(b"abc")), "a9993e364706816aba3e25717850c26c9cd0d89d");
    }

    #[test]
    fn fips_vector_448_bits() {
        let msg = b"abcdbcdecdefdefgefghfghighijhijkijkljklmklmnlmnomnopnopq";
        assert_eq!(hex(&Sha1::digest(msg)), "84983e441c3bd26ebaae4aa1f95129e5e54670f1");
    }

    #[test]
    fn fips_vector_million_a() {
        let msg = vec![b'a'; 1_000_000];
        assert_eq!(hex(&Sha1::digest(&msg)), "34aa973cd4c4daa4f61eeb2bdbad27316534016f");
    }

    #[test]
    fn quick_brown_fox() {
        assert_eq!(
            hex(&Sha1::digest(b"The quick brown fox jumps over the lazy dog")),
            "2fd4e1c67a2d28fced849ee1bb76e7391b93eb12"
        );
    }

    #[test]
    fn streaming_equals_oneshot_at_every_split() {
        let data: Vec<u8> = (0u32..300).map(|i| (i * 7 + 3) as u8).collect();
        let want = Sha1::digest(&data);
        for split in 0..data.len() {
            let mut h = Sha1::new();
            h.update(&data[..split]);
            h.update(&data[split..]);
            assert_eq!(h.finalize(), want, "split at {split}");
        }
    }

    #[test]
    fn streaming_many_small_updates() {
        let data: Vec<u8> = (0u32..1000).map(|i| (i % 251) as u8).collect();
        let want = Sha1::digest(&data);
        let mut h = Sha1::new();
        for b in &data {
            h.update(core::slice::from_ref(b));
        }
        assert_eq!(h.finalize(), want);
    }

    #[test]
    fn digest_u64_is_prefix() {
        let d = Sha1::digest(b"abc");
        let hi = Sha1::digest_u64(b"abc");
        assert_eq!(hi.to_be_bytes(), d[..8]);
    }

    #[test]
    fn boundary_lengths_55_56_63_64_65() {
        // Padding edge cases: message lengths around the block boundary.
        for len in [55usize, 56, 63, 64, 65, 119, 120, 127, 128] {
            let data = vec![0xabu8; len];
            // Compare against the streaming path split in the middle.
            let whole = Sha1::digest(&data);
            let mut h = Sha1::new();
            h.update(&data[..len / 2]);
            h.update(&data[len / 2..]);
            assert_eq!(h.finalize(), whole, "len {len}");
        }
    }

    /// Independent reference implementation used only for differential
    /// testing: processes the whole (padded) message in one pass with a
    /// deliberately different code structure.
    fn reference_sha1(msg: &[u8]) -> [u8; 20] {
        let mut padded = msg.to_vec();
        let bit_len = (msg.len() as u64) * 8;
        padded.push(0x80);
        while padded.len() % 64 != 56 {
            padded.push(0);
        }
        padded.extend_from_slice(&bit_len.to_be_bytes());
        let mut h: [u32; 5] = Sha1::H0;
        for block in padded.chunks_exact(64) {
            let mut w = vec![0u32; 80];
            for i in 0..16 {
                w[i] = u32::from_be_bytes(block[i * 4..i * 4 + 4].try_into().unwrap());
            }
            for t in 16..80 {
                w[t] = (w[t - 3] ^ w[t - 8] ^ w[t - 14] ^ w[t - 16]).rotate_left(1);
            }
            let (mut a, mut b, mut c, mut d, mut e) = (h[0], h[1], h[2], h[3], h[4]);
            for t in 0..80 {
                let (f, k): (u32, u32) = if t < 20 {
                    ((b & c) | (!b & d), 0x5a827999)
                } else if t < 40 {
                    (b ^ c ^ d, 0x6ed9eba1)
                } else if t < 60 {
                    ((b & c) | (b & d) | (c & d), 0x8f1bbcdc)
                } else {
                    (b ^ c ^ d, 0xca62c1d6)
                };
                let tmp = a
                    .rotate_left(5)
                    .wrapping_add(f)
                    .wrapping_add(e)
                    .wrapping_add(k)
                    .wrapping_add(w[t]);
                e = d;
                d = c;
                c = b.rotate_left(30);
                b = a;
                a = tmp;
            }
            h[0] = h[0].wrapping_add(a);
            h[1] = h[1].wrapping_add(b);
            h[2] = h[2].wrapping_add(c);
            h[3] = h[3].wrapping_add(d);
            h[4] = h[4].wrapping_add(e);
        }
        let mut out = [0u8; 20];
        for i in 0..5 {
            out[i * 4..i * 4 + 4].copy_from_slice(&h[i].to_be_bytes());
        }
        out
    }

    /// Seeded-loop replacement for the old property test: random
    /// inputs of every length in 0..512 must match the reference
    /// implementation.
    #[test]
    fn matches_reference_on_random_inputs() {
        let mut rng = hieras_rt::Rng::seed_from_u64(0x51a1);
        for case in 0..256 {
            let len = rng.random_range(0usize..512);
            let data: Vec<u8> = (0..len).map(|_| rng.next_u64() as u8).collect();
            assert_eq!(Sha1::digest(&data), reference_sha1(&data), "case {case} len {len}");
        }
    }
}
