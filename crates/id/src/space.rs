//! Modular arithmetic on the identifier circle.
//!
//! A [`IdSpace`] fixes the ring size `2^bits` and provides the interval
//! predicates Chord-style routing is built from. Keeping them here (and
//! property-testing them exhaustively) means the DHT layers never do
//! raw wraparound arithmetic themselves — historically the single most
//! bug-prone part of Chord implementations.

use crate::Id;
use hieras_rt::{FromJson, Json, JsonError, ToJson};

/// Errors constructing or using an identifier space.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SpaceError {
    /// `bits` was 0 or greater than 64.
    BadBits(u32),
    /// An id had bits set outside the space's mask.
    OutOfSpace(Id),
}

impl core::fmt::Display for SpaceError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            SpaceError::BadBits(b) => write!(f, "identifier space bits must be 1..=64, got {b}"),
            SpaceError::OutOfSpace(id) => write!(f, "id {id} has bits outside the space"),
        }
    }
}

impl std::error::Error for SpaceError {}

/// An identifier circle with `2^bits` points.
///
/// All arithmetic is modulo the ring size. `bits = 64` (the
/// [`IdSpace::full`] space) is the production configuration; smaller
/// spaces exist to reproduce the paper's worked examples and to make
/// exhaustive tests feasible.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct IdSpace {
    bits: u32,
}

impl ToJson for IdSpace {
    fn to_json(&self) -> Json {
        Json::obj([("bits", Json::U64(u64::from(self.bits)))])
    }
}

impl FromJson for IdSpace {
    fn from_json(v: &Json) -> Result<Self, JsonError> {
        let bits: u32 = v.field("bits")?;
        IdSpace::new(bits).map_err(|e| JsonError(e.to_string()))
    }
}

impl Default for IdSpace {
    fn default() -> Self {
        Self::full()
    }
}

impl IdSpace {
    /// The full 64-bit identifier space used in production.
    #[must_use]
    pub const fn full() -> Self {
        IdSpace { bits: 64 }
    }

    /// A space with `2^bits` identifiers.
    ///
    /// # Errors
    /// Returns [`SpaceError::BadBits`] unless `1 <= bits <= 64`.
    pub const fn new(bits: u32) -> Result<Self, SpaceError> {
        if bits == 0 || bits > 64 {
            Err(SpaceError::BadBits(bits))
        } else {
            Ok(IdSpace { bits })
        }
    }

    /// Number of bits, i.e. the maximum length of a finger table.
    #[inline]
    #[must_use]
    pub const fn bits(self) -> u32 {
        self.bits
    }

    /// Bit mask selecting the valid id bits.
    #[inline]
    #[must_use]
    pub const fn mask(self) -> u64 {
        if self.bits == 64 {
            u64::MAX
        } else {
            (1u64 << self.bits) - 1
        }
    }

    /// True if `id` lies inside this space.
    #[inline]
    #[must_use]
    pub const fn contains(self, id: Id) -> bool {
        id.0 & !self.mask() == 0
    }

    /// Reduces an arbitrary 64-bit id into this space (keeps the low bits).
    #[inline]
    #[must_use]
    pub const fn reduce(self, id: Id) -> Id {
        Id(id.0 & self.mask())
    }

    /// `(a + k) mod 2^bits`.
    #[inline]
    #[must_use]
    pub const fn add(self, a: Id, k: u64) -> Id {
        Id(a.0.wrapping_add(k) & self.mask())
    }

    /// `(a - k) mod 2^bits`.
    #[inline]
    #[must_use]
    pub const fn sub(self, a: Id, k: u64) -> Id {
        Id(a.0.wrapping_sub(k) & self.mask())
    }

    /// The clockwise distance from `a` to `b`: the unique `d` with
    /// `0 <= d < 2^bits` and `a + d ≡ b`.
    #[inline]
    #[must_use]
    pub const fn distance_cw(self, a: Id, b: Id) -> u64 {
        b.0.wrapping_sub(a.0) & self.mask()
    }

    /// The i-th finger start of node `n`: `n + 2^i mod 2^bits`
    /// (fingers are numbered from 0; the Chord paper's `finger[k].start`
    /// with 1-based `k` equals `finger_start(n, k-1)`).
    ///
    /// # Panics
    /// Panics if `i >= bits` — a finger index outside the table is a
    /// programming error, not a runtime condition.
    #[inline]
    #[must_use]
    pub fn finger_start(self, n: Id, i: u32) -> Id {
        assert!(i < self.bits, "finger index {i} out of range for {}-bit space", self.bits);
        self.add(n, 1u64 << i)
    }

    /// True if `x ∈ (a, b)` on the circle (clockwise open arc).
    ///
    /// When `a == b` the open arc is the whole circle minus `a`, which
    /// matches Chord's usage (a single-node ring owns everything).
    #[inline]
    #[must_use]
    pub const fn in_open(self, a: Id, b: Id, x: Id) -> bool {
        let dab = self.distance_cw(a, b);
        let dax = self.distance_cw(a, x);
        if dab == 0 {
            // Whole circle minus the endpoint.
            dax != 0
        } else {
            dax != 0 && dax < dab
        }
    }

    /// True if `x ∈ (a, b]` on the circle.
    #[inline]
    #[must_use]
    pub const fn in_open_closed(self, a: Id, b: Id, x: Id) -> bool {
        let dab = self.distance_cw(a, b);
        let dax = self.distance_cw(a, x);
        if dab == 0 {
            // (a, a] is the whole circle: every point qualifies
            // (wrapping all the way around ends at a itself).
            true
        } else {
            dax != 0 && dax <= dab
        }
    }

    /// True if `x ∈ [a, b)` on the circle.
    #[inline]
    #[must_use]
    pub const fn in_closed_open(self, a: Id, b: Id, x: Id) -> bool {
        let dab = self.distance_cw(a, b);
        let dax = self.distance_cw(a, x);
        if dab == 0 {
            true
        } else {
            dax < dab
        }
    }

    /// Of `a` and `b`, the one clockwise-closer to `target` *from*
    /// `target`'s perspective going counter-clockwise — i.e. the better
    /// predecessor of `target`. Used by routing tie-breaks.
    #[inline]
    #[must_use]
    pub const fn closer_predecessor(self, target: Id, a: Id, b: Id) -> Id {
        // Smaller clockwise distance *to* the target wins.
        if self.distance_cw(a, target) <= self.distance_cw(b, target) {
            a
        } else {
            b
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn new_rejects_bad_bits() {
        assert_eq!(IdSpace::new(0), Err(SpaceError::BadBits(0)));
        assert_eq!(IdSpace::new(65), Err(SpaceError::BadBits(65)));
        assert!(IdSpace::new(1).is_ok());
        assert!(IdSpace::new(64).is_ok());
    }

    #[test]
    fn mask_and_contains() {
        let s8 = IdSpace::new(8).unwrap();
        assert_eq!(s8.mask(), 0xff);
        assert!(s8.contains(Id(255)));
        assert!(!s8.contains(Id(256)));
        assert_eq!(s8.reduce(Id(0x1_2f)), Id(0x2f));
        assert_eq!(IdSpace::full().mask(), u64::MAX);
    }

    #[test]
    fn add_sub_wrap() {
        let s8 = IdSpace::new(8).unwrap();
        assert_eq!(s8.add(Id(250), 10), Id(4));
        assert_eq!(s8.sub(Id(4), 10), Id(250));
        let full = IdSpace::full();
        assert_eq!(full.add(Id::MAX, 1), Id::ZERO);
        assert_eq!(full.sub(Id::ZERO, 1), Id::MAX);
    }

    #[test]
    fn distance_cw_basics() {
        let s8 = IdSpace::new(8).unwrap();
        assert_eq!(s8.distance_cw(Id(10), Id(20)), 10);
        assert_eq!(s8.distance_cw(Id(20), Id(10)), 246);
        assert_eq!(s8.distance_cw(Id(7), Id(7)), 0);
    }

    #[test]
    fn finger_starts_match_chord_paper() {
        // Chord paper figure: node 1 in a 3-bit space has finger starts 2,3,5.
        let s3 = IdSpace::new(3).unwrap();
        assert_eq!(s3.finger_start(Id(1), 0), Id(2));
        assert_eq!(s3.finger_start(Id(1), 1), Id(3));
        assert_eq!(s3.finger_start(Id(1), 2), Id(5));
    }

    #[test]
    #[should_panic(expected = "finger index")]
    fn finger_start_rejects_out_of_range() {
        let s3 = IdSpace::new(3).unwrap();
        let _ = s3.finger_start(Id(1), 3);
    }

    #[test]
    fn intervals_non_wrapping() {
        let s = IdSpace::new(8).unwrap();
        assert!(s.in_open(Id(10), Id(20), Id(15)));
        assert!(!s.in_open(Id(10), Id(20), Id(10)));
        assert!(!s.in_open(Id(10), Id(20), Id(20)));
        assert!(s.in_open_closed(Id(10), Id(20), Id(20)));
        assert!(!s.in_open_closed(Id(10), Id(20), Id(10)));
        assert!(s.in_closed_open(Id(10), Id(20), Id(10)));
        assert!(!s.in_closed_open(Id(10), Id(20), Id(20)));
    }

    #[test]
    fn intervals_wrapping() {
        let s = IdSpace::new(8).unwrap();
        // (250, 5): contains 255, 0, 3 but not 250, 5, 100.
        assert!(s.in_open(Id(250), Id(5), Id(255)));
        assert!(s.in_open(Id(250), Id(5), Id(0)));
        assert!(s.in_open(Id(250), Id(5), Id(3)));
        assert!(!s.in_open(Id(250), Id(5), Id(250)));
        assert!(!s.in_open(Id(250), Id(5), Id(5)));
        assert!(!s.in_open(Id(250), Id(5), Id(100)));
    }

    #[test]
    fn degenerate_intervals() {
        let s = IdSpace::new(8).unwrap();
        // (a, a) = circle minus a; (a, a] = whole circle.
        assert!(s.in_open(Id(7), Id(7), Id(8)));
        assert!(!s.in_open(Id(7), Id(7), Id(7)));
        assert!(s.in_open_closed(Id(7), Id(7), Id(7)));
        assert!(s.in_open_closed(Id(7), Id(7), Id(200)));
        assert!(s.in_closed_open(Id(7), Id(7), Id(7)));
    }

    #[test]
    fn closer_predecessor_picks_smaller_cw_distance() {
        let s = IdSpace::new(8).unwrap();
        assert_eq!(s.closer_predecessor(Id(100), Id(90), Id(10)), Id(90));
        assert_eq!(s.closer_predecessor(Id(5), Id(250), Id(100)), Id(250));
    }

    /// Deterministic case generator replacing the old proptest
    /// strategies: a random space and three ids inside it per case.
    fn random_cases(seed: u64, cases: usize) -> impl Iterator<Item = (IdSpace, Id, Id, Id)> {
        let mut rng = hieras_rt::Rng::seed_from_u64(seed);
        (0..cases).map(move |_| {
            let s = IdSpace::new(rng.random_range(1u32..=64)).unwrap();
            let a = s.reduce(Id(rng.next_u64()));
            let b = s.reduce(Id(rng.next_u64()));
            let x = s.reduce(Id(rng.next_u64()));
            (s, a, b, x)
        })
    }

    #[test]
    fn distance_is_additive_inverse() {
        for (s, a, b, _) in random_cases(0xd157, 2000) {
            let d = s.distance_cw(a, b);
            assert_eq!(s.add(a, d), b);
            if a != b {
                assert_eq!(s.distance_cw(b, a), (s.mask() - d).wrapping_add(1) & s.mask());
            }
        }
    }

    #[test]
    fn open_closed_partition() {
        // Every point is in exactly one of (a,b] or (b,a] when a != b.
        for (s, a, b, x) in random_cases(0x0c9a, 2000) {
            if a == b {
                continue;
            }
            let in1 = s.in_open_closed(a, b, x);
            let in2 = s.in_open_closed(b, a, x);
            assert!(in1 ^ in2, "x={x:?} a={a:?} b={b:?}");
        }
    }

    #[test]
    fn open_is_open_closed_minus_endpoint() {
        for (s, a, b, x) in random_cases(0x09e4, 2000) {
            if a == b {
                continue;
            }
            let open = s.in_open(a, b, x);
            let oc = s.in_open_closed(a, b, x);
            assert_eq!(open, oc && x != b);
        }
    }

    #[test]
    fn finger_start_monotone_distance() {
        for (s, n, _, _) in random_cases(0xf19e, 500) {
            let mut prev = 0u64;
            for i in 0..s.bits() {
                let d = s.distance_cw(n, s.finger_start(n, i));
                assert_eq!(d, 1u64 << i);
                assert!(d > prev || i == 0);
                prev = d;
            }
        }
    }
}
