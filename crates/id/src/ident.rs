//! The [`Id`] newtype: a point on the identifier circle.

use crate::Sha1;
use hieras_rt::{FromJson, Json, JsonError, ToJson};

/// A point on the identifier circle.
///
/// Stored as a `u64`. In the full production space the circle has
/// `2^64` points and an `Id` is the top 64 bits of a SHA-1 digest; in
/// demo spaces (see [`crate::IdSpace::new`]) only the low `bits` bits
/// are significant and the rest must be zero.
///
/// `Ord` on `Id` is *linear* order on the underlying integer, which is
/// what ring construction (sorting node ids) needs. Circular relations
/// ("is x between a and b going clockwise?") live on
/// [`crate::IdSpace`], because they depend on the ring size.
#[derive(Copy, Clone, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct Id(pub u64);

impl ToJson for Id {
    /// Transparent: an `Id` serializes as its bare `u64`.
    fn to_json(&self) -> Json {
        Json::U64(self.0)
    }
}

impl FromJson for Id {
    fn from_json(v: &Json) -> Result<Self, JsonError> {
        v.as_u64().map(Id).ok_or_else(|| JsonError("expected id (u64)".into()))
    }
}

impl Id {
    /// The identifier `0`.
    pub const ZERO: Id = Id(0);

    /// The largest identifier in the full 64-bit space.
    pub const MAX: Id = Id(u64::MAX);

    /// Hashes an arbitrary name onto the full 64-bit circle with SHA-1.
    ///
    /// This is the production way of assigning node ids (hash of the
    /// node's IP address and port) and file keys (hash of the file
    /// name), exactly as the paper prescribes in §3.1.
    #[must_use]
    pub fn hash_of(name: &[u8]) -> Id {
        Id(Sha1::digest_u64(name))
    }

    /// Raw integer value.
    #[inline]
    #[must_use]
    pub fn raw(self) -> u64 {
        self.0
    }
}

impl From<u64> for Id {
    fn from(v: u64) -> Self {
        Id(v)
    }
}

impl From<Id> for u64 {
    fn from(v: Id) -> Self {
        v.0
    }
}

impl core::fmt::Debug for Id {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        write!(f, "Id({:#018x})", self.0)
    }
}

impl core::fmt::Display for Id {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        write!(f, "{:016x}", self.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hash_of_is_deterministic_and_spreads() {
        let a = Id::hash_of(b"node-a");
        let b = Id::hash_of(b"node-b");
        assert_eq!(a, Id::hash_of(b"node-a"));
        assert_ne!(a, b);
    }

    #[test]
    fn display_is_fixed_width_hex() {
        assert_eq!(Id(0xff).to_string(), "00000000000000ff");
        assert_eq!(Id::MAX.to_string(), "ffffffffffffffff");
    }

    #[test]
    fn ordering_is_linear() {
        assert!(Id(1) < Id(2));
        assert!(Id::ZERO < Id::MAX);
    }

    #[test]
    fn conversions_roundtrip() {
        let x: Id = 42u64.into();
        let y: u64 = x.into();
        assert_eq!(y, 42);
        assert_eq!(x.raw(), 42);
    }

    #[test]
    fn zero_and_max_constants() {
        assert_eq!(Id::ZERO.raw(), 0);
        assert_eq!(Id::MAX.raw(), u64::MAX);
    }

    #[test]
    fn hash_uniformity_rough_check() {
        // Top-bit balance over 4k hashed names: expect roughly half set.
        let ones = (0..4096)
            .filter(|i| Id::hash_of(format!("name-{i}").as_bytes()).raw() >> 63 == 1)
            .count();
        assert!((1600..=2500).contains(&ones), "top-bit count {ones} badly skewed");
    }
}
