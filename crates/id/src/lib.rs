//! Identifier space for the HIERAS reproduction.
//!
//! Every node and every file key in HIERAS (and in its underlying DHT,
//! Chord) is named by a fixed-width identifier produced by a
//! collision-resistant hash — the paper specifies SHA-1. This crate
//! provides:
//!
//! * [`Sha1`] — a from-scratch SHA-1 implementation (no external crypto
//!   dependency is available offline), validated against the FIPS 180-1
//!   test vectors.
//! * [`Id`] — a point on the identifier circle, stored as a `u64`
//!   (the top 64 bits of the SHA-1 digest; see DESIGN.md §3.1 for the
//!   collision analysis).
//! * [`IdSpace`] — modular arithmetic on a `2^bits` circle for any
//!   `bits ∈ 1..=64`. Production code uses the full 64-bit space; the
//!   small demo spaces reproduce the paper's worked examples (Table 2
//!   uses an 8-bit space).
//!
//! Interval conventions follow the Chord paper: `(a, b]` is the
//! clockwise-open/closed arc used for successor ownership, `(a, b)` the
//! open arc used by `closest_preceding_finger`.
//!
//! # Example
//!
//! ```
//! use hieras_id::{Id, IdSpace, Sha1};
//!
//! let space = IdSpace::full();
//! let node = Id::hash_of(b"node:10.0.0.1:4000");
//! let key = Id::hash_of(b"file:paper.pdf");
//! // Clockwise distance from the node to the key never exceeds the ring size.
//! let _d = space.distance_cw(node, key);
//! let digest = Sha1::digest(b"abc");
//! assert_eq!(digest[0], 0xa9);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod ident;
mod sha1;
mod space;

pub use ident::Id;
pub use sha1::Sha1;
pub use space::{IdSpace, SpaceError};

/// A lookup key is just an [`Id`]; the alias keeps signatures readable.
pub type Key = Id;
