//! Canonical metric names shared across the workspace.
//!
//! The replay loop, the latency-oracle backends, and the bench
//! harness all publish into a [`crate::Registry`] under these keys.
//! Centralizing the strings keeps producers (`hieras-sim`) and
//! consumers (`hieras-bench`, `scripts/verify.sh`, dashboards) from
//! drifting apart: a typo becomes a compile error instead of a metric
//! that silently never reconciles.
//!
//! Naming scheme: `<subsystem>.<metric>` with an algorithm segment
//! where one applies (`replay.chord.hops`). Counters count events,
//! gauges snapshot state, histograms end in the unit they observe.

/// Requests replayed (counter).
pub const REPLAY_REQUESTS: &str = "replay.requests";
/// Chord hops per request (histogram).
pub const REPLAY_CHORD_HOPS: &str = "replay.chord.hops";
/// Chord end-to-end latency per request, ms (histogram).
pub const REPLAY_CHORD_LATENCY_MS: &str = "replay.chord.latency_ms";
/// HIERAS hops per request (histogram).
pub const REPLAY_HIERAS_HOPS: &str = "replay.hieras.hops";
/// HIERAS hops taken in lower layers (histogram).
pub const REPLAY_HIERAS_LOWER_HOPS: &str = "replay.hieras.lower_hops";
/// HIERAS end-to-end latency per request, ms (histogram).
pub const REPLAY_HIERAS_LATENCY_MS: &str = "replay.hieras.latency_ms";

/// Latency queries served from a resident row (counter).
pub const LATENCY_CACHE_HITS: &str = "latency_cache.hits";
/// Latency queries that recomputed a Dijkstra row (counter).
pub const LATENCY_CACHE_MISSES: &str = "latency_cache.misses";
/// Rows evicted from the bounded overflow shards (counter).
pub const LATENCY_CACHE_EVICTIONS: &str = "latency_cache.evictions";
/// Rows pinned in the lock-free segment (gauge).
pub const LATENCY_CACHE_PINNED_ROWS: &str = "latency_cache.pinned_rows";
/// Rows currently resident, pinned + overflow (gauge).
pub const LATENCY_CACHE_RESIDENT_ROWS: &str = "latency_cache.resident_rows";
/// Configured row budget of a bounded oracle (gauge).
pub const LATENCY_CACHE_ROW_BUDGET: &str = "latency_cache.row_budget";

/// Hub count of the label index (gauge).
pub const LATENCY_LABELS_HUBS: &str = "latency_labels.hubs";
/// Total label entries across all nodes (gauge).
pub const LATENCY_LABELS_ENTRIES: &str = "latency_labels.entries";
/// Mean label length in thousandths of an entry (gauge; the registry
/// holds integers, so 2.5 entries/node is published as 2500).
pub const LATENCY_LABELS_AVG_LEN_MILLI: &str = "latency_labels.avg_len_milli";
/// Longest per-node label list (gauge).
pub const LATENCY_LABELS_MAX_LEN: &str = "latency_labels.max_len";
/// Wall-clock label construction time, whole ms (gauge).
pub const LATENCY_LABELS_BUILD_MS: &str = "latency_labels.build_ms";
/// Queries answered by label merge (counter).
pub const LATENCY_LABELS_QUERIES: &str = "latency_labels.queries";
/// Bytes held by the label arrays (gauge).
pub const LATENCY_LABELS_BYTES: &str = "latency_labels.bytes";

/// Label queries answered from the per-thread memo (counter).
pub const LABEL_MEMO_HITS: &str = "label_memo.hits";
/// Label queries that fell through to a label merge (counter).
pub const LABEL_MEMO_MISSES: &str = "label_memo.misses";

/// Packed rings across all hierarchy layers (gauge).
pub const RING_ARENA_RINGS: &str = "ring_arena.rings";
/// Member slots across all packed rings (gauge).
pub const RING_ARENA_MEMBER_SLOTS: &str = "ring_arena.member_slots";
/// Bytes held by the packed routing state (gauge).
pub const RING_ARENA_BYTES: &str = "ring_arena.bytes";

/// Snapshots published by the serving maintenance thread (counter).
pub const SERVE_EPOCHS_PUBLISHED: &str = "serve.epochs_published";
/// Retired snapshots reclaimed after every reader advanced (counter).
pub const SERVE_SNAPSHOTS_RECLAIMED: &str = "serve.snapshots_reclaimed";
/// Peak retired-but-unreclaimed snapshot count (gauge).
pub const SERVE_RECLAIM_LAG_PEAK: &str = "serve.reclaim_lag_peak";
/// Epochs-behind-published per lookup — the stale-read window
/// (histogram).
pub const SERVE_STALE_EPOCHS: &str = "serve.stale_epochs";
/// Lookups completed per reader thread (histogram over readers).
pub const SERVE_READER_LOOKUPS: &str = "serve.reader_lookups";
/// Total lookups served (counter).
pub const SERVE_LOOKUPS: &str = "serve.lookups";
/// Join events applied to the serving membership (counter).
pub const SERVE_JOINS: &str = "serve.joins";
/// Graceful leaves applied to the serving membership (counter).
pub const SERVE_LEAVES: &str = "serve.leaves";
/// Silent failures applied to the serving membership (counter).
pub const SERVE_FAILS: &str = "serve.fails";
/// Peers whose landmark order changed at a re-bin epoch (counter).
pub const SERVE_REBINNED: &str = "serve.rebinned_peers";

// Reader-side hot-key result cache (`serve.cache.*`): run totals in
// the run registry, per-window activity in each telemetry window's
// health registry.

/// Lookups answered from a cached owner (counter).
pub const SERVE_CACHE_HITS: &str = "serve.cache.hits";
/// Lookups that fell through to a full route (counter).
pub const SERVE_CACHE_MISSES: &str = "serve.cache.misses";
/// Cache entries written — fresh fills and admission-gated
/// displacements (counter).
pub const SERVE_CACHE_ADMITS: &str = "serve.cache.admits";
/// Wholesale cache invalidations, one per snapshot-checksum change a
/// reader observed (counter).
pub const SERVE_CACHE_INVALIDATIONS: &str = "serve.cache.invalidations";
/// Cache hits inside the window (per-window health counter).
pub const SERVE_CACHE_WINDOW_HITS: &str = "serve.cache.window.hits";
/// Cache probes inside the window, hits + misses (per-window health
/// counter).
pub const SERVE_CACHE_WINDOW_LOOKUPS: &str = "serve.cache.window.lookups";
/// Window hit rate in parts per million — derived from the window
/// counters when the report is assembled (per-window health gauge).
pub const SERVE_CACHE_HIT_RATE_PPM: &str = "serve.cache.window.hit_rate_ppm";

// Per-window epoch-health block (`serve.epoch.*`): published into a
// window's health registry by the serving maintenance path, so every
// telemetry window carries the maintenance activity that ran inside
// it. Counters count events within the window; gauges snapshot state
// as of the window (max-merged across producers).

/// Snapshots published inside the window (counter).
pub const SERVE_EPOCH_PUBLISHED: &str = "serve.epoch.published";
/// Join events applied inside the window (counter).
pub const SERVE_EPOCH_JOINS: &str = "serve.epoch.joins";
/// Graceful leaves applied inside the window (counter).
pub const SERVE_EPOCH_LEAVES: &str = "serve.epoch.leaves";
/// Silent failures applied inside the window (counter).
pub const SERVE_EPOCH_FAILS: &str = "serve.epoch.fails";
/// Peers re-binned into a new landmark order inside the window
/// (counter).
pub const SERVE_EPOCH_REBINNED: &str = "serve.epoch.rebinned";
/// Age of the published snapshot on the maintenance clock, ms (gauge).
pub const SERVE_EPOCH_SNAPSHOT_AGE_MS: &str = "serve.epoch.snapshot_age_ms";
/// Retired-but-unreclaimed snapshot backlog (gauge).
pub const SERVE_EPOCH_RETIRED_BACKLOG: &str = "serve.epoch.retired_backlog";
/// Worst reader pin lag seen this window, epochs behind published
/// (gauge).
pub const SERVE_EPOCH_READER_LAG: &str = "serve.epoch.reader_lag";
/// Wall-clock snapshot publish latency (rebuild + swap), µs
/// (histogram; free-running windows only — wall durations would break
/// deterministic identity).
pub const SERVE_EPOCH_PUBLISH_US: &str = "serve.epoch.publish_us";
/// Wall-clock hierarchy rebuild duration, µs (histogram; free-running
/// windows only).
pub const SERVE_EPOCH_REBUILD_US: &str = "serve.epoch.rebuild_us";
/// Wall-clock re-bin pass duration, µs (histogram; free-running
/// windows only).
pub const SERVE_EPOCH_REBIN_US: &str = "serve.epoch.rebin_us";
/// Snapshots rebuilt incrementally from the churn delta inside the
/// window (counter).
pub const SERVE_EPOCH_DELTA_REBUILDS: &str = "serve.epoch.delta_rebuilds";
/// Snapshots rebuilt from scratch inside the window — the maintainer's
/// fallback when a churn batch touches too many rings (counter).
pub const SERVE_EPOCH_FULL_REBUILDS: &str = "serve.epoch.full_rebuilds";
/// Arena-buffer withdrawals served by the maintainer's recycling pool
/// (counter).
pub const SERVE_EPOCH_ARENA_REUSED: &str = "serve.epoch.arena_reuse.reused";
/// Retired arena buffers deposited for reuse (counter).
pub const SERVE_EPOCH_ARENA_RETURNED: &str = "serve.epoch.arena_reuse.returned";
/// Retired arena buffers dropped because the pool was full (counter).
pub const SERVE_EPOCH_ARENA_DROPPED: &str = "serve.epoch.arena_reuse.dropped";

/// Populated telemetry windows at end of run (gauge).
pub const TELEMETRY_WINDOWS: &str = "telemetry.windows";
/// Flight-recorded slow lookups kept across all windows (counter).
pub const TELEMETRY_SLOW_LOOKUPS: &str = "telemetry.slow_lookups";
/// Windows that breached the SLO (counter).
pub const TELEMETRY_SLO_BREACHES: &str = "telemetry.slo_breaches";
