//! Wall-clock phase profiling: nested named scopes reported as a
//! self-time tree.
//!
//! A [`Profiler`] times `start`/`end` pairs on the real clock and
//! accumulates them into a tree keyed by scope name *per parent* —
//! entering "dijkstra" twice under "build" yields one node with
//! `calls == 2`. The report ([`PhaseReport`]) carries, per node, the
//! inclusive total and the **self time** (total minus children), which
//! is the number that tells you where a phase actually spends its
//! wall-clock rather than merely which phase contains the hot one.
//!
//! Wall-clock values are inherently nondeterministic, so phase trees
//! never participate in the thread-identity comparisons — they are
//! operator-facing output embedded in the bench JSON files.

use hieras_rt::{FromJson, Json, JsonError, ToJson};
use std::time::Instant;

#[derive(Debug)]
struct Node {
    name: String,
    calls: u64,
    total_ns: u64,
    children: Vec<usize>,
}

/// A nesting wall-clock profiler.
#[derive(Debug)]
pub struct Profiler {
    nodes: Vec<Node>,
    /// Root-level node indices, in first-entry order.
    roots: Vec<usize>,
    /// Open scopes: (node index, entry time).
    stack: Vec<(usize, Instant)>,
}

impl Default for Profiler {
    fn default() -> Self {
        Self::new()
    }
}

impl Profiler {
    /// A fresh profiler with no scopes.
    #[must_use]
    pub fn new() -> Self {
        Profiler { nodes: Vec::new(), roots: Vec::new(), stack: Vec::new() }
    }

    fn child_named(&mut self, name: &str) -> usize {
        let siblings: &[usize] = match self.stack.last() {
            Some(&(parent, _)) => &self.nodes[parent].children,
            None => &self.roots,
        };
        if let Some(&idx) = siblings.iter().find(|&&i| self.nodes[i].name == name) {
            return idx;
        }
        let idx = self.nodes.len();
        self.nodes.push(Node {
            name: name.to_owned(),
            calls: 0,
            total_ns: 0,
            children: Vec::new(),
        });
        match self.stack.last() {
            Some(&(parent, _)) => self.nodes[parent].children.push(idx),
            None => self.roots.push(idx),
        }
        idx
    }

    /// Enters scope `name` (nested under the innermost open scope).
    pub fn start(&mut self, name: &str) {
        let idx = self.child_named(name);
        self.stack.push((idx, Instant::now()));
    }

    /// Leaves the innermost open scope, accumulating its elapsed time.
    ///
    /// # Panics
    /// Panics if no scope is open — a mismatched `start`/`end` pair is
    /// a bug at the instrumentation site.
    pub fn end(&mut self) {
        let (idx, started) = self.stack.pop().expect("Profiler::end without a start");
        let node = &mut self.nodes[idx];
        node.calls += 1;
        node.total_ns += u64::try_from(started.elapsed().as_nanos()).unwrap_or(u64::MAX);
    }

    /// Times a closure as a scope — the ergonomic form for leaf phases.
    pub fn scope<T>(&mut self, name: &str, f: impl FnOnce() -> T) -> T {
        self.start(name);
        let out = f();
        self.end();
        out
    }

    /// Snapshots the accumulated tree. Open scopes are reported with
    /// the time they have accrued in *finished* visits only.
    #[must_use]
    pub fn report(&self) -> PhaseReport {
        let phases = self.roots.iter().map(|&i| self.phase_of(i)).collect();
        PhaseReport { phases }
    }

    fn phase_of(&self, idx: usize) -> Phase {
        let n = &self.nodes[idx];
        let children: Vec<Phase> = n.children.iter().map(|&c| self.phase_of(c)).collect();
        let child_ns: u64 = children.iter().map(|c| c.total_ns).sum();
        Phase {
            name: n.name.clone(),
            calls: n.calls,
            total_ns: n.total_ns,
            self_ns: n.total_ns.saturating_sub(child_ns),
            children,
        }
    }
}

/// One node of a [`PhaseReport`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Phase {
    /// Scope name.
    pub name: String,
    /// Completed `start`/`end` visits.
    pub calls: u64,
    /// Inclusive wall-clock, ns.
    pub total_ns: u64,
    /// Exclusive wall-clock: total minus children, ns.
    pub self_ns: u64,
    /// Nested scopes, in first-entry order.
    pub children: Vec<Phase>,
}

/// A snapshot of a [`Profiler`]'s scope tree.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct PhaseReport {
    /// Top-level phases, in first-entry order.
    pub phases: Vec<Phase>,
}

impl PhaseReport {
    /// Renders the tree as indented text, one line per phase:
    /// `name  total_ms (self self_ms, calls n)`.
    #[must_use]
    pub fn render(&self) -> String {
        fn line(out: &mut String, p: &Phase, depth: usize) {
            use std::fmt::Write as _;
            let _ = writeln!(
                out,
                "{:indent$}{:<24} {:>9.2} ms (self {:>9.2} ms, calls {})",
                "",
                p.name,
                p.total_ns as f64 / 1e6,
                p.self_ns as f64 / 1e6,
                p.calls,
                indent = depth * 2,
            );
            for c in &p.children {
                line(out, c, depth + 1);
            }
        }
        let mut out = String::new();
        for p in &self.phases {
            line(&mut out, p, 0);
        }
        out
    }

    /// Total inclusive time across the top-level phases, ns.
    #[must_use]
    pub fn total_ns(&self) -> u64 {
        self.phases.iter().map(|p| p.total_ns).sum()
    }
}

impl ToJson for Phase {
    fn to_json(&self) -> Json {
        Json::obj([
            ("name", self.name.to_json()),
            ("calls", self.calls.to_json()),
            ("total_ns", self.total_ns.to_json()),
            ("self_ns", self.self_ns.to_json()),
            ("children", self.children.to_json()),
        ])
    }
}

impl FromJson for Phase {
    fn from_json(v: &Json) -> Result<Self, JsonError> {
        Ok(Phase {
            name: v.field("name")?,
            calls: v.field("calls")?,
            total_ns: v.field("total_ns")?,
            self_ns: v.field("self_ns")?,
            children: v.field("children")?,
        })
    }
}

impl ToJson for PhaseReport {
    fn to_json(&self) -> Json {
        Json::obj([("phases", self.phases.to_json())])
    }
}

impl FromJson for PhaseReport {
    fn from_json(v: &Json) -> Result<Self, JsonError> {
        Ok(PhaseReport { phases: v.field("phases")? })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scopes_aggregate_by_name_per_parent() {
        let mut p = Profiler::new();
        p.start("build");
        p.scope("dijkstra", || {});
        p.scope("dijkstra", || {});
        p.end();
        p.scope("replay", || {});
        let r = p.report();
        assert_eq!(r.phases.len(), 2);
        assert_eq!(r.phases[0].name, "build");
        assert_eq!(r.phases[0].children.len(), 1, "same-name scopes merge");
        assert_eq!(r.phases[0].children[0].calls, 2);
        assert_eq!(r.phases[1].name, "replay");
        assert_eq!(r.phases[1].calls, 1);
    }

    #[test]
    fn self_time_excludes_children() {
        let mut p = Profiler::new();
        p.start("outer");
        p.scope("inner", || std::thread::sleep(std::time::Duration::from_millis(2)));
        p.end();
        let r = p.report();
        let outer = &r.phases[0];
        assert!(outer.total_ns >= outer.children[0].total_ns);
        assert_eq!(outer.self_ns, outer.total_ns - outer.children[0].total_ns);
        assert!(r.total_ns() >= 2_000_000);
    }

    #[test]
    fn same_name_under_different_parents_stays_distinct() {
        let mut p = Profiler::new();
        p.start("a");
        p.scope("work", || {});
        p.end();
        p.start("b");
        p.scope("work", || {});
        p.scope("work", || {});
        p.end();
        let r = p.report();
        assert_eq!(r.phases[0].children[0].calls, 1);
        assert_eq!(r.phases[1].children[0].calls, 2);
    }

    #[test]
    fn render_and_json_round_trip() {
        let mut p = Profiler::new();
        p.scope("alpha", || {
            // a measurable but tiny scope
        });
        let r = p.report();
        let text = r.render();
        assert!(text.contains("alpha"));
        assert!(text.contains("calls 1"));
        let back: PhaseReport = hieras_rt::from_str(&hieras_rt::to_string(&r)).unwrap();
        assert_eq!(back, r);
    }

    #[test]
    #[should_panic(expected = "without a start")]
    fn unbalanced_end_panics() {
        Profiler::new().end();
    }
}
