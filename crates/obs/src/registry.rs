//! The metric registry: named counters, gauges, and log-bucketed
//! histograms.
//!
//! Like `hieras_sim::Metrics`, every container here is *mergeable* and
//! the merge is **order-invariant**: counters and histogram buckets
//! add, gauges take the maximum, and all maps iterate in key order
//! (`BTreeMap`), so folding per-thread registries in any sequence
//! produces byte-identical snapshots. That is the property the
//! parallel replay loop relies on.

use hieras_rt::{FromJson, Json, JsonError, ToJson};
use std::collections::BTreeMap;

/// A histogram over `u64` values with logarithmic (power-of-two)
/// buckets — constant memory regardless of the value range, exact
/// count/sum/min/max, and nearest-rank quantiles resolved to the
/// bucket upper bound (clamped into the observed `[min, max]`).
///
/// Bucket `0` holds the value `0`; bucket `b ≥ 1` holds values in
/// `[2^(b-1), 2^b - 1]` — i.e. the bucket index is the value's bit
/// length.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct LogHistogram {
    counts: Vec<u64>,
    total: u64,
    sum: u64,
    min: u64,
    max: u64,
}

/// Bucket index of a value: its bit length (0 for 0).
#[inline]
#[must_use]
fn bucket_of(v: u64) -> usize {
    (u64::BITS - v.leading_zeros()) as usize
}

/// Largest value bucket `b` can hold.
#[inline]
fn bucket_hi(b: usize) -> u64 {
    if b == 0 {
        0
    } else if b >= 64 {
        u64::MAX
    } else {
        (1u64 << b) - 1
    }
}

impl LogHistogram {
    /// An empty histogram.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Records one observation.
    #[inline]
    pub fn record(&mut self, v: u64) {
        let b = bucket_of(v);
        if self.counts.len() <= b {
            self.counts.resize(b + 1, 0);
        }
        self.counts[b] += 1;
        if self.total == 0 {
            self.min = v;
            self.max = v;
        } else {
            self.min = self.min.min(v);
            self.max = self.max.max(v);
        }
        self.total += 1;
        self.sum = self.sum.saturating_add(v);
    }

    /// Number of observations.
    #[must_use]
    pub fn total(&self) -> u64 {
        self.total
    }

    /// Sum of all observations (saturating).
    #[must_use]
    pub fn sum(&self) -> u64 {
        self.sum
    }

    /// Smallest observation (0 if empty).
    #[must_use]
    pub fn min(&self) -> u64 {
        self.min
    }

    /// Largest observation (0 if empty).
    #[must_use]
    pub fn max(&self) -> u64 {
        self.max
    }

    /// Mean of the observations (0.0 if empty).
    #[must_use]
    pub fn mean(&self) -> f64 {
        if self.total == 0 {
            0.0
        } else {
            self.sum as f64 / self.total as f64
        }
    }

    /// The nearest-rank `q`-quantile (0.0 ≤ q ≤ 1.0), resolved to the
    /// upper bound of the bucket holding the rank-th observation and
    /// clamped into `[min, max]`. Empty histogram → 0.
    ///
    /// # Panics
    /// Panics if `q` is outside `[0, 1]`.
    #[must_use]
    pub fn quantile(&self, q: f64) -> u64 {
        assert!((0.0..=1.0).contains(&q), "q must be in [0,1]");
        if self.total == 0 {
            return 0;
        }
        // Nearest rank: the ceil(q*N)-th observation, 1-based (≥ 1).
        let rank = ((q * self.total as f64).ceil() as u64).max(1);
        let mut seen = 0u64;
        for (b, &c) in self.counts.iter().enumerate() {
            seen += c;
            if seen >= rank {
                return bucket_hi(b).clamp(self.min, self.max);
            }
        }
        self.max
    }

    /// Merges another histogram into this one (order-invariant).
    pub fn merge(&mut self, other: &LogHistogram) {
        if other.total == 0 {
            return;
        }
        if self.counts.len() < other.counts.len() {
            self.counts.resize(other.counts.len(), 0);
        }
        for (a, b) in self.counts.iter_mut().zip(other.counts.iter()) {
            *a += b;
        }
        if self.total == 0 {
            self.min = other.min;
            self.max = other.max;
        } else {
            self.min = self.min.min(other.min);
            self.max = self.max.max(other.max);
        }
        self.total += other.total;
        self.sum = self.sum.saturating_add(other.sum);
    }
}

impl ToJson for LogHistogram {
    fn to_json(&self) -> Json {
        Json::obj([
            ("counts", self.counts.to_json()),
            ("total", self.total.to_json()),
            ("sum", self.sum.to_json()),
            ("min", self.min.to_json()),
            ("max", self.max.to_json()),
        ])
    }
}

impl FromJson for LogHistogram {
    fn from_json(v: &Json) -> Result<Self, JsonError> {
        let h = LogHistogram {
            counts: v.field("counts")?,
            total: v.field("total")?,
            sum: v.field("sum")?,
            min: v.field("min")?,
            max: v.field("max")?,
        };
        if h.counts.iter().sum::<u64>() != h.total {
            return Err(JsonError("log histogram total does not match counts".into()));
        }
        Ok(h)
    }
}

/// A named-metric registry: monotonic counters, gauges, and
/// [`LogHistogram`]s, each addressed by a dotted string name
/// (`net.deliver.find_succ`, `lookup.latency_ms`, …).
///
/// Backed by `BTreeMap`s so snapshots serialize in name order and the
/// merge is order-invariant — two registries folded in any order yield
/// the same bytes.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Registry {
    counters: BTreeMap<String, u64>,
    gauges: BTreeMap<String, i64>,
    hists: BTreeMap<String, LogHistogram>,
}

impl Registry {
    /// An empty registry.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Increments counter `name` by 1.
    pub fn inc(&mut self, name: &str) {
        self.inc_by(name, 1);
    }

    /// Increments counter `name` by `by`.
    pub fn inc_by(&mut self, name: &str, by: u64) {
        match self.counters.get_mut(name) {
            Some(c) => *c += by,
            None => {
                self.counters.insert(name.to_owned(), by);
            }
        }
    }

    /// Current value of counter `name` (0 if never incremented).
    #[must_use]
    pub fn counter(&self, name: &str) -> u64 {
        self.counters.get(name).copied().unwrap_or(0)
    }

    /// Sets gauge `name`. On merge, gauges resolve to the maximum —
    /// the only commutative choice for last-value semantics — so use
    /// them for high-water marks.
    pub fn gauge_set(&mut self, name: &str, v: i64) {
        match self.gauges.get_mut(name) {
            Some(g) => *g = v,
            None => {
                self.gauges.insert(name.to_owned(), v);
            }
        }
    }

    /// Current value of gauge `name`.
    #[must_use]
    pub fn gauge(&self, name: &str) -> Option<i64> {
        self.gauges.get(name).copied()
    }

    /// Records `v` into histogram `name`.
    pub fn observe(&mut self, name: &str, v: u64) {
        match self.hists.get_mut(name) {
            Some(h) => h.record(v),
            None => {
                let mut h = LogHistogram::new();
                h.record(v);
                self.hists.insert(name.to_owned(), h);
            }
        }
    }

    /// Histogram `name`, if any value was observed.
    #[must_use]
    pub fn hist(&self, name: &str) -> Option<&LogHistogram> {
        self.hists.get(name)
    }

    /// Counter names and values in name order.
    pub fn counters(&self) -> impl Iterator<Item = (&str, u64)> {
        self.counters.iter().map(|(k, &v)| (k.as_str(), v))
    }

    /// True if nothing has been recorded.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.counters.is_empty() && self.gauges.is_empty() && self.hists.is_empty()
    }

    /// Merges another registry into this one. Counters and histograms
    /// add, gauges take the maximum; the operation is associative and
    /// commutative, so any fold order yields identical snapshots.
    pub fn merge(&mut self, other: &Registry) {
        for (k, &v) in &other.counters {
            self.inc_by(k, v);
        }
        for (k, &v) in &other.gauges {
            match self.gauges.get_mut(k) {
                Some(g) => *g = (*g).max(v),
                None => {
                    self.gauges.insert(k.clone(), v);
                }
            }
        }
        for (k, h) in &other.hists {
            match self.hists.get_mut(k) {
                Some(mine) => mine.merge(h),
                None => {
                    self.hists.insert(k.clone(), h.clone());
                }
            }
        }
    }

    /// Consuming merge for executor folds.
    #[must_use]
    pub fn merged(mut self, other: Registry) -> Registry {
        self.merge(&other);
        self
    }

    /// The canonical snapshot: pretty JSON, keys in name order.
    /// Byte-identical for equal registries — the thread-identity tests
    /// compare exactly this.
    #[must_use]
    pub fn snapshot(&self) -> String {
        self.to_json().dump_pretty()
    }
}

impl ToJson for Registry {
    fn to_json(&self) -> Json {
        let counters =
            Json::obj(self.counters.iter().map(|(k, v)| (k.clone(), v.to_json())));
        let gauges = Json::obj(self.gauges.iter().map(|(k, v)| (k.clone(), v.to_json())));
        let hists = Json::obj(self.hists.iter().map(|(k, h)| (k.clone(), h.to_json())));
        Json::obj([("counters", counters), ("gauges", gauges), ("hists", hists)])
    }
}

impl FromJson for Registry {
    fn from_json(v: &Json) -> Result<Self, JsonError> {
        let obj_fields = |key: &str| -> Result<Vec<(String, Json)>, JsonError> {
            match v.get(key) {
                Some(Json::Obj(fields)) => Ok(fields.clone()),
                Some(_) => Err(JsonError(format!("field `{key}`: expected object"))),
                None => Err(JsonError(format!("missing field `{key}`"))),
            }
        };
        let mut r = Registry::default();
        for (k, c) in obj_fields("counters")? {
            r.counters.insert(k, u64::from_json(&c)?);
        }
        for (k, g) in obj_fields("gauges")? {
            r.gauges.insert(k, i64::from_json(&g)?);
        }
        for (k, h) in obj_fields("hists")? {
            r.hists.insert(k, LogHistogram::from_json(&h)?);
        }
        Ok(r)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn buckets_are_bit_lengths() {
        assert_eq!(bucket_of(0), 0);
        assert_eq!(bucket_of(1), 1);
        assert_eq!(bucket_of(2), 2);
        assert_eq!(bucket_of(3), 2);
        assert_eq!(bucket_of(4), 3);
        assert_eq!(bucket_of(u64::MAX), 64);
        assert_eq!(bucket_hi(0), 0);
        assert_eq!(bucket_hi(2), 3);
        assert_eq!(bucket_hi(64), u64::MAX);
    }

    #[test]
    fn log_histogram_stats() {
        let mut h = LogHistogram::new();
        for v in [0u64, 1, 5, 5, 100] {
            h.record(v);
        }
        assert_eq!(h.total(), 5);
        assert_eq!(h.sum(), 111);
        assert_eq!(h.min(), 0);
        assert_eq!(h.max(), 100);
        assert!((h.mean() - 22.2).abs() < 1e-12);
    }

    #[test]
    fn quantiles_resolve_to_bucket_bounds() {
        let mut h = LogHistogram::new();
        for v in [10u64, 20, 30, 40] {
            h.record(v);
        }
        // rank(0.5) = 2nd obs (20) → bucket [16,31] → hi 31.
        assert_eq!(h.quantile(0.5), 31);
        // p0 clamps to min, p100 to max.
        assert_eq!(h.quantile(0.0), 15.max(h.min()));
        assert_eq!(h.quantile(1.0), 40);
    }

    #[test]
    fn quantile_edge_cases() {
        assert_eq!(LogHistogram::new().quantile(0.5), 0, "empty");
        let mut one = LogHistogram::new();
        one.record(7);
        for q in [0.0, 0.5, 0.99, 1.0] {
            assert_eq!(one.quantile(q), 7, "single observation at q={q}");
        }
        let mut ties = LogHistogram::new();
        for _ in 0..10 {
            ties.record(64);
        }
        assert_eq!(ties.quantile(0.5), 64, "all-ties clamp to the observed value");
    }

    #[test]
    fn histogram_merge_matches_combined_recording() {
        let mut a = LogHistogram::new();
        let mut b = LogHistogram::new();
        let mut all = LogHistogram::new();
        for v in [3u64, 9, 1000] {
            a.record(v);
            all.record(v);
        }
        for v in [0u64, 500_000] {
            b.record(v);
            all.record(v);
        }
        a.merge(&b);
        assert_eq!(a, all);
        // Merging an empty histogram changes nothing.
        a.merge(&LogHistogram::new());
        assert_eq!(a, all);
        let mut empty = LogHistogram::new();
        empty.merge(&all);
        assert_eq!(empty, all);
    }

    #[test]
    fn registry_counters_gauges_hists() {
        let mut r = Registry::new();
        r.inc("a.x");
        r.inc_by("a.x", 4);
        r.gauge_set("g", -3);
        r.gauge_set("g", 7);
        r.observe("h", 12);
        assert_eq!(r.counter("a.x"), 5);
        assert_eq!(r.counter("missing"), 0);
        assert_eq!(r.gauge("g"), Some(7));
        assert_eq!(r.hist("h").unwrap().total(), 1);
        assert!(!r.is_empty());
        assert!(Registry::new().is_empty());
    }

    #[test]
    fn merge_is_order_invariant() {
        let mk = |vals: &[u64], c: u64| {
            let mut r = Registry::new();
            r.inc_by("count", c);
            r.gauge_set("peak", c as i64);
            for &v in vals {
                r.observe("lat", v);
            }
            r
        };
        let (a, b, c) = (mk(&[1, 2], 3), mk(&[100], 1), mk(&[7, 7, 7], 9));
        let abc = a.clone().merged(b.clone()).merged(c.clone());
        let cba = c.merged(b).merged(a);
        assert_eq!(abc, cba);
        assert_eq!(abc.snapshot(), cba.snapshot(), "snapshots must be byte-identical");
        assert_eq!(abc.counter("count"), 13);
        assert_eq!(abc.gauge("peak"), Some(9));
        assert_eq!(abc.hist("lat").unwrap().total(), 6);
    }

    #[test]
    fn snapshot_is_sorted_by_name() {
        let mut r = Registry::new();
        r.inc("zeta");
        r.inc("alpha");
        let s = r.snapshot();
        assert!(s.find("alpha").unwrap() < s.find("zeta").unwrap());
    }
}
