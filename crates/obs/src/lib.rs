//! # hieras-obs — observability substrate for the HIERAS workspace
//!
//! The paper's whole evaluation (§4) is about *where* hops and
//! milliseconds go: per-layer hop splits, latency CDFs, maintenance
//! cost. This crate gives every layer of the reproduction the
//! instruments to answer those questions live instead of only as
//! end-of-run aggregates — with zero external dependencies, on the
//! same `hieras_rt` JSON the rest of the workspace serializes through.
//!
//! Three instruments, designed around the workspace's two invariants
//! (determinism at any thread count; near-zero cost when off):
//!
//! * [`Registry`] — named monotonic counters, gauges, and log-bucketed
//!   [`LogHistogram`]s with nearest-rank quantiles. Mergeable and
//!   **merge-order-invariant** (like `hieras_sim::Metrics`), so
//!   per-thread instances fold deterministically in the parallel
//!   replay loop: the merged snapshot is byte-identical at 1, 2 or 64
//!   threads.
//! * [`Tracer`] — a bounded ring-buffer of sim-time-stamped
//!   [`TraceEvent`]s: span open/close with parent ids plus instant
//!   events. Producers hold an `Option<Tracer>`; the disabled path is
//!   a single `Option` check with no allocation. Exports JSONL whose
//!   per-span fields reconcile exactly with the aggregate counters.
//! * [`Profiler`] — wall-clock phase scopes (topology build, APSP,
//!   binning, ring construction, join choreography, replay, churn
//!   horizon) reported as a self-time tree ([`PhaseReport`]).
//! * [`TelemetryShard`] — time-resolved telemetry: rotating windowed
//!   metrics (per-window lookup rate, tails, failures, epoch-health
//!   gauges), a bounded K-slowest-lookups flight recorder, and an SLO
//!   monitor ([`SloSpec`]), assembled into a [`TimeSeriesReport`] with
//!   a JSONL stream format. Shards fold merge-order-invariantly, so
//!   deterministic runs emit bit-identical windows at any reader
//!   count.
//!
//! Every type round-trips through [`hieras_rt::ToJson`] /
//! [`hieras_rt::FromJson`].

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod profile;
mod registry;
mod trace;
mod window;

pub mod names;

pub use profile::{Phase, PhaseReport, Profiler};
pub use registry::{LogHistogram, Registry};
pub use trace::{chrome_trace, TraceEvent, TraceKind, Tracer};
pub use window::{
    HopRecord, SloBreach, SloSpec, SlowLookup, TelemetryShard, TelemetryWindow, TimeSeriesMeta,
    TimeSeriesReport, TIMESERIES_SCHEMA,
};
