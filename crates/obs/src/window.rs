//! Time-resolved telemetry: rotating windowed metrics, a bounded
//! slow-lookup flight recorder, and an SLO monitor.
//!
//! End-of-run aggregates hide transients — a two-second p99 spike
//! during a landmark death disappears into a sixty-second mean. The
//! types here keep the time axis: producers feed per-thread
//! [`TelemetryShard`]s that bucket every observation into a
//! fixed-width **window** (sim-time in deterministic modes, wall-clock
//! in free-running ones), and the shards fold **merge-order-invariantly**
//! — counters add, histograms add bucket-wise, gauges take the
//! maximum, and the per-window top-K slow-lookup sets merge by
//! union-then-truncate under a total order — so a deterministic run
//! produces bit-identical windowed output at any thread count.
//!
//! The assembled [`TimeSeriesReport`] serializes two ways: embedded
//! JSON (everything, including slow lookups and SLO breaches) and a
//! JSONL stream ([`TimeSeriesReport::to_jsonl`]) of one meta line plus
//! one line per window, parseable back through [`hieras_rt::FromJson`].

use crate::names;
use crate::registry::{LogHistogram, Registry};
use crate::trace::Tracer;
use hieras_rt::{FromJson, Json, JsonError, ToJson};
use std::cmp::Ordering;
use std::collections::BTreeMap;

/// Schema tag of the JSONL stream's leading meta line.
pub const TIMESERIES_SCHEMA: &str = "hieras.timeseries/v1";

/// One window of telemetry: fixed-width slice of the run's time axis.
///
/// `lookups` counts every lookup that landed in the window; `latency`
/// holds only the *successful* ones (in engines without a failure
/// path, that is all of them), `failures` and `retries` count the
/// rest. `health` carries the maintenance-side `serve.epoch.*` gauges
/// and counters observed during the window.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct TelemetryWindow {
    /// Window index: `floor(now / window_ms)` on the producer's clock.
    pub index: u64,
    /// Lookups that completed in this window (success or not).
    pub lookups: u64,
    /// Lookups that failed (wrong owner, unresolved, …).
    pub failures: u64,
    /// Retry attempts beyond the first, summed over the window.
    pub retries: u64,
    /// Latency of each successful lookup, ms.
    pub latency: LogHistogram,
    /// Epoch-health gauges and counters (`serve.epoch.*`).
    pub health: Registry,
}

impl TelemetryWindow {
    /// An empty window at `index`.
    #[must_use]
    pub fn empty(index: u64) -> Self {
        TelemetryWindow { index, ..TelemetryWindow::default() }
    }

    /// Merges a sibling observation of the **same** window
    /// (order-invariant: counters add, histograms add, gauges max).
    ///
    /// # Panics
    /// Panics if the indices differ — merging different windows is a
    /// bucketing bug, not a degenerate merge.
    pub fn merge(&mut self, other: &TelemetryWindow) {
        assert_eq!(self.index, other.index, "merging two different windows");
        self.lookups += other.lookups;
        self.failures += other.failures;
        self.retries += other.retries;
        self.latency.merge(&other.latency);
        self.health.merge(&other.health);
    }
}

impl ToJson for TelemetryWindow {
    fn to_json(&self) -> Json {
        // The quantiles are derived from `latency` at serialization
        // time — a parse/re-serialize round trip reproduces them
        // exactly, so the JSONL stays bit-stable through `FromJson`.
        Json::obj([
            ("window", self.index.to_json()),
            ("lookups", self.lookups.to_json()),
            ("failures", self.failures.to_json()),
            ("retries", self.retries.to_json()),
            ("p50_ms", self.latency.quantile(0.50).to_json()),
            ("p95_ms", self.latency.quantile(0.95).to_json()),
            ("p99_ms", self.latency.quantile(0.99).to_json()),
            ("p999_ms", self.latency.quantile(0.999).to_json()),
            ("latency_ms", self.latency.to_json()),
            ("health", self.health.to_json()),
        ])
    }
}

impl FromJson for TelemetryWindow {
    fn from_json(v: &Json) -> Result<Self, JsonError> {
        Ok(TelemetryWindow {
            index: v.field("window")?,
            lookups: v.field("lookups")?,
            failures: v.field("failures")?,
            retries: v.field("retries")?,
            latency: v.field("latency_ms")?,
            health: v.field("health")?,
        })
    }
}

/// One hop of a recorded slow lookup.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct HopRecord {
    /// Hop source (global peer index).
    pub from: u32,
    /// Hop destination (global peer index).
    pub to: u32,
    /// Hierarchy layer the hop ran in (1 = global ring).
    pub layer: u8,
    /// Link latency of the hop, ms.
    pub ms: u16,
}

impl ToJson for HopRecord {
    fn to_json(&self) -> Json {
        Json::obj([
            ("from", self.from.to_json()),
            ("to", self.to.to_json()),
            ("layer", self.layer.to_json()),
            ("ms", self.ms.to_json()),
        ])
    }
}

impl FromJson for HopRecord {
    fn from_json(v: &Json) -> Result<Self, JsonError> {
        Ok(HopRecord {
            from: v.field("from")?,
            to: v.field("to")?,
            layer: v.field("layer")?,
            ms: v.field("ms")?,
        })
    }
}

/// A flight-recorded lookup: one of the K slowest of its window, with
/// its full hop trace.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SlowLookup {
    /// Window the lookup completed in.
    pub window: u64,
    /// End-to-end latency, ms.
    pub latency_ms: u64,
    /// Lookup source (global peer index).
    pub src: u32,
    /// Raw looked-up key.
    pub key: u64,
    /// Producer-assigned sequence number; with `src`/`key` it makes
    /// the slowest-first order total, so the merged top-K is unique.
    pub seq: u64,
    /// Every hop of the route, in order.
    pub path: Vec<HopRecord>,
}

impl SlowLookup {
    /// Replays this lookup into `tracer` as one span (opened at
    /// `t0_ms`, closed at `t0_ms + latency_ms`) with one `hop` instant
    /// per hop at its cumulative offset — the same span shape the live
    /// transport emits, so `trace2chrome` renders flight-recorder
    /// dumps without a second format.
    pub fn record_into(&self, tracer: &mut Tracer, t0_ms: u64) {
        let span = tracer.open(
            t0_ms,
            "serve.slow_lookup",
            &[
                ("window", self.window),
                ("latency_ms", self.latency_ms),
                ("src", u64::from(self.src)),
                ("key", self.key),
                ("seq", self.seq),
            ],
        );
        let mut at = t0_ms;
        for h in &self.path {
            at += u64::from(h.ms);
            tracer.instant(
                at,
                "hop",
                &[
                    ("from", u64::from(h.from)),
                    ("to", u64::from(h.to)),
                    ("layer", u64::from(h.layer)),
                    ("ms", u64::from(h.ms)),
                ],
            );
        }
        tracer.close(t0_ms + self.latency_ms, span, &[("hops", self.path.len() as u64)]);
    }
}

impl ToJson for SlowLookup {
    fn to_json(&self) -> Json {
        Json::obj([
            ("window", self.window.to_json()),
            ("latency_ms", self.latency_ms.to_json()),
            ("src", self.src.to_json()),
            ("key", self.key.to_json()),
            ("seq", self.seq.to_json()),
            ("path", Json::Arr(self.path.iter().map(ToJson::to_json).collect())),
        ])
    }
}

impl FromJson for SlowLookup {
    fn from_json(v: &Json) -> Result<Self, JsonError> {
        Ok(SlowLookup {
            window: v.field("window")?,
            latency_ms: v.field("latency_ms")?,
            src: v.field("src")?,
            key: v.field("key")?,
            seq: v.field("seq")?,
            path: v.field("path")?,
        })
    }
}

/// Slowest-first total order: latency descending, then sequence, then
/// source, then key ascending. Total, so union-then-truncate merges of
/// per-shard top-K sets are associative, commutative, and **exact**:
/// an entry dropped from a shard's local top-K is dominated by K
/// entries that all survive into any superset's top-K.
fn slow_rank(a: &SlowLookup, b: &SlowLookup) -> Ordering {
    b.latency_ms
        .cmp(&a.latency_ms)
        .then(a.seq.cmp(&b.seq))
        .then(a.src.cmp(&b.src))
        .then(a.key.cmp(&b.key))
}

/// Merges `extra` into the rank-sorted top-`k` vector `kept`.
fn merge_topk(kept: &mut Vec<SlowLookup>, extra: Vec<SlowLookup>, k: usize) {
    kept.extend(extra);
    kept.sort_by(slow_rank);
    kept.truncate(k);
}

/// A per-thread telemetry accumulator: rotates observations into
/// [`TelemetryWindow`]s and keeps the K slowest lookups per window
/// (the flight recorder).
///
/// The hot path is one branch: while observations stay inside the
/// current window they hit a resident accumulator; a window change
/// flushes it into the finished-window map. Shards merge with
/// [`TelemetryShard::merged`] in any order to the same result.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct TelemetryShard {
    k: usize,
    started: bool,
    cur_index: u64,
    cur: TelemetryWindow,
    cur_slow: Vec<SlowLookup>,
    done: BTreeMap<u64, TelemetryWindow>,
    slow_done: BTreeMap<u64, Vec<SlowLookup>>,
}

impl TelemetryShard {
    /// A fresh shard keeping the `slow_k` slowest lookups per window
    /// (0 disables the flight recorder).
    #[must_use]
    pub fn new(slow_k: usize) -> Self {
        TelemetryShard { k: slow_k, ..TelemetryShard::default() }
    }

    #[inline]
    fn roll(&mut self, window: u64) {
        if self.started && self.cur_index == window {
            return;
        }
        self.flush();
        self.started = true;
        self.cur_index = window;
        self.cur.index = window;
    }

    fn flush(&mut self) {
        if !self.started {
            return;
        }
        let w = std::mem::take(&mut self.cur);
        let slow = std::mem::take(&mut self.cur_slow);
        self.done
            .entry(self.cur_index)
            .or_insert_with(|| TelemetryWindow::empty(self.cur_index))
            .merge(&w);
        if !slow.is_empty() {
            merge_topk(self.slow_done.entry(self.cur_index).or_default(), slow, self.k);
        }
        self.started = false;
    }

    /// Records one successful lookup of `latency_ms` in `window`.
    #[inline]
    pub fn lookup(&mut self, window: u64, latency_ms: u64) {
        self.roll(window);
        self.cur.lookups += 1;
        self.cur.latency.record(latency_ms);
    }

    /// Records one successful lookup and reports whether it would
    /// enter the window's slow top-K — [`TelemetryShard::lookup`] and
    /// [`TelemetryShard::slow_qualifies`] fused into a single window
    /// roll, for the per-lookup hot path.
    #[inline]
    pub fn lookup_qualifies(&mut self, window: u64, latency_ms: u64) -> bool {
        self.roll(window);
        self.cur.lookups += 1;
        self.cur.latency.record(latency_ms);
        self.k != 0
            && (self.cur_slow.len() < self.k
                || latency_ms > self.cur_slow.last().expect("k > 0").latency_ms)
    }

    /// Records a batch of successful lookups that all completed in
    /// `window`: one window roll for the whole batch instead of one
    /// per lookup. Produces exactly the state `latencies_ms.len()`
    /// calls to [`TelemetryShard::lookup`] would — the batched reader
    /// path stays merge-identical to the single-lookup path.
    #[inline]
    pub fn lookup_bulk(&mut self, window: u64, latencies_ms: &[u64]) {
        if latencies_ms.is_empty() {
            return;
        }
        self.roll(window);
        self.cur.lookups += latencies_ms.len() as u64;
        for &ms in latencies_ms {
            self.cur.latency.record(ms);
        }
    }

    /// Records one failed lookup (counted, not observed into the
    /// latency histogram).
    pub fn lookup_failed(&mut self, window: u64) {
        self.roll(window);
        self.cur.lookups += 1;
        self.cur.failures += 1;
    }

    /// Records `n` retry attempts beyond the first.
    pub fn retries(&mut self, window: u64, n: u64) {
        self.roll(window);
        self.cur.retries += n;
    }

    /// The window's health registry, for maintenance-side gauges and
    /// counters (`serve.epoch.*`).
    pub fn health(&mut self, window: u64) -> &mut Registry {
        self.roll(window);
        &mut self.cur.health
    }

    /// Whether a lookup of `latency_ms` would enter `window`'s top-K —
    /// the cheap pre-check before paying for a hop capture. Exact: the
    /// current top-K is rank-sorted, so its last entry is the floor.
    #[inline]
    pub fn slow_qualifies(&mut self, window: u64, latency_ms: u64) -> bool {
        if self.k == 0 {
            return false;
        }
        self.roll(window);
        self.cur_slow.len() < self.k
            || latency_ms > self.cur_slow.last().expect("k > 0").latency_ms
    }

    /// The open window's top-K admission floor: the latency of its
    /// K-th slowest entry, once the set is full (`None` until then).
    ///
    /// A same-window lookup **strictly below** the floor is outranked
    /// by the K entries at or above it (greater latency dominates
    /// [`slow_rank`] regardless of tie-breaks), so it can never enter
    /// the window's final merged top-K — producers may share the
    /// largest floor across shards as an exact capture-pruning hint.
    #[must_use]
    pub fn slow_floor(&self) -> Option<u64> {
        (self.k > 0 && self.cur_slow.len() == self.k)
            .then(|| self.cur_slow.last().expect("k > 0").latency_ms)
    }

    /// Admits a captured slow lookup into its window's top-K.
    pub fn admit_slow(&mut self, rec: SlowLookup) {
        if self.k == 0 {
            return;
        }
        self.roll(rec.window);
        self.cur_slow.push(rec);
        self.cur_slow.sort_by(slow_rank);
        self.cur_slow.truncate(self.k);
    }

    /// Folds another shard into this one. Window contents merge
    /// field-wise and the per-window top-K sets merge by
    /// union-then-truncate — both order-invariant, so any fold order
    /// over any partition of the observations yields identical state.
    #[must_use]
    pub fn merged(mut self, mut other: TelemetryShard) -> TelemetryShard {
        self.flush();
        other.flush();
        self.k = self.k.max(other.k);
        for (i, w) in other.done {
            self.done.entry(i).or_insert_with(|| TelemetryWindow::empty(i)).merge(&w);
        }
        for (i, slow) in other.slow_done {
            merge_topk(self.slow_done.entry(i).or_default(), slow, self.k);
        }
        self
    }

    /// Total lookups recorded so far (including the open window).
    #[must_use]
    pub fn lookups(&self) -> u64 {
        self.done.values().map(|w| w.lookups).sum::<u64>() + self.cur.lookups
    }

    /// Finalizes into a [`TimeSeriesReport`], scanning for SLO
    /// breaches when a spec is given.
    #[must_use]
    pub fn into_report(
        mut self,
        mode: &str,
        window_ms: u64,
        slo: Option<SloSpec>,
    ) -> TimeSeriesReport {
        self.flush();
        let windows: Vec<TelemetryWindow> = self.done.into_values().collect();
        let slow: Vec<SlowLookup> = self.slow_done.into_values().flatten().collect();
        let breaches = slo.map(|s| s.scan(&windows)).unwrap_or_default();
        TimeSeriesReport {
            meta: TimeSeriesMeta { mode: mode.to_owned(), window_ms },
            windows,
            slow,
            breaches,
        }
    }
}

/// Per-window service-level objective: a p99 latency budget and a
/// failure-rate budget in parts per million.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SloSpec {
    /// Largest acceptable per-window p99 latency, ms.
    pub p99_ms: u64,
    /// Largest acceptable per-window failure rate, ppm of lookups.
    pub max_failure_ppm: u64,
}

impl SloSpec {
    /// Scans finished windows and reports every breach, carrying the
    /// epoch/churn activity that co-occurred with it.
    #[must_use]
    pub fn scan(&self, windows: &[TelemetryWindow]) -> Vec<SloBreach> {
        windows
            .iter()
            .filter(|w| w.lookups > 0)
            .filter_map(|w| {
                let p99_ms = w.latency.quantile(0.99);
                let failure_ppm = w.failures * 1_000_000 / w.lookups;
                let p99_over = p99_ms > self.p99_ms;
                let failures_over = failure_ppm > self.max_failure_ppm;
                (p99_over || failures_over).then(|| SloBreach {
                    window: w.index,
                    lookups: w.lookups,
                    p99_ms,
                    failure_ppm,
                    p99_over,
                    failures_over,
                    epochs_published: w.health.counter(names::SERVE_EPOCH_PUBLISHED),
                    churn_events: w.health.counter(names::SERVE_EPOCH_JOINS)
                        + w.health.counter(names::SERVE_EPOCH_LEAVES)
                        + w.health.counter(names::SERVE_EPOCH_FAILS),
                })
            })
            .collect()
    }
}

impl ToJson for SloSpec {
    fn to_json(&self) -> Json {
        Json::obj([
            ("p99_ms", self.p99_ms.to_json()),
            ("max_failure_ppm", self.max_failure_ppm.to_json()),
        ])
    }
}

impl FromJson for SloSpec {
    fn from_json(v: &Json) -> Result<Self, JsonError> {
        Ok(SloSpec {
            p99_ms: v.field("p99_ms")?,
            max_failure_ppm: v.field("max_failure_ppm")?,
        })
    }
}

/// One window that violated the [`SloSpec`], with the epoch/churn
/// events that ran inside it.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SloBreach {
    /// The breaching window's index.
    pub window: u64,
    /// Lookups the window served.
    pub lookups: u64,
    /// The window's p99 latency, ms.
    pub p99_ms: u64,
    /// The window's failure rate, ppm.
    pub failure_ppm: u64,
    /// The p99 budget was exceeded.
    pub p99_over: bool,
    /// The failure-rate budget was exceeded.
    pub failures_over: bool,
    /// Epochs published during the window (`serve.epoch.published`).
    pub epochs_published: u64,
    /// Membership events applied during the window (joins + leaves +
    /// fails).
    pub churn_events: u64,
}

impl ToJson for SloBreach {
    fn to_json(&self) -> Json {
        Json::obj([
            ("window", self.window.to_json()),
            ("lookups", self.lookups.to_json()),
            ("p99_ms", self.p99_ms.to_json()),
            ("failure_ppm", self.failure_ppm.to_json()),
            ("p99_over", self.p99_over.to_json()),
            ("failures_over", self.failures_over.to_json()),
            ("epochs_published", self.epochs_published.to_json()),
            ("churn_events", self.churn_events.to_json()),
        ])
    }
}

impl FromJson for SloBreach {
    fn from_json(v: &Json) -> Result<Self, JsonError> {
        Ok(SloBreach {
            window: v.field("window")?,
            lookups: v.field("lookups")?,
            p99_ms: v.field("p99_ms")?,
            failure_ppm: v.field("failure_ppm")?,
            p99_over: v.field("p99_over")?,
            failures_over: v.field("failures_over")?,
            epochs_published: v.field("epochs_published")?,
            churn_events: v.field("churn_events")?,
        })
    }
}

/// How the windows of a [`TimeSeriesReport`] were cut.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TimeSeriesMeta {
    /// Window clock: `"sim"` (schedule time — deterministic) or
    /// `"wall"` (free-running wall clock).
    pub mode: String,
    /// Window width on that clock, ms.
    pub window_ms: u64,
}

impl ToJson for TimeSeriesMeta {
    fn to_json(&self) -> Json {
        Json::obj([
            ("schema", TIMESERIES_SCHEMA.to_json()),
            ("mode", self.mode.to_json()),
            ("window_ms", self.window_ms.to_json()),
        ])
    }
}

impl FromJson for TimeSeriesMeta {
    fn from_json(v: &Json) -> Result<Self, JsonError> {
        let schema: String = v.field("schema")?;
        if schema != TIMESERIES_SCHEMA {
            return Err(JsonError(format!("unknown timeseries schema `{schema}`")));
        }
        Ok(TimeSeriesMeta { mode: v.field("mode")?, window_ms: v.field("window_ms")? })
    }
}

/// The assembled time series of one run: meta, finished windows in
/// ascending index order, the flight-recorded slow lookups, and any
/// SLO breaches.
#[derive(Debug, Clone, PartialEq)]
pub struct TimeSeriesReport {
    /// Window clock and width.
    pub meta: TimeSeriesMeta,
    /// Finished windows, ascending by index. Windows that saw no
    /// observation are absent, not zero-filled.
    pub windows: Vec<TelemetryWindow>,
    /// The K slowest lookups per window, windows ascending, slowest
    /// first within a window.
    pub slow: Vec<SlowLookup>,
    /// Windows that violated the SLO, ascending.
    pub breaches: Vec<SloBreach>,
}

impl TimeSeriesReport {
    /// Populated windows.
    #[must_use]
    pub fn window_count(&self) -> usize {
        self.windows.len()
    }

    /// Lookups across all windows.
    #[must_use]
    pub fn total_lookups(&self) -> u64 {
        self.windows.iter().map(|w| w.lookups).sum()
    }

    /// The JSONL stream: one meta line, then one compact line per
    /// window. Slow lookups and breaches are *not* part of the stream
    /// (they ride in the embedded JSON and the trace dump), so
    /// [`TimeSeriesReport::parse_jsonl`] followed by `to_jsonl` is
    /// byte-identical.
    #[must_use]
    pub fn to_jsonl(&self) -> String {
        let mut out = self.meta.to_json().dump();
        out.push('\n');
        for w in &self.windows {
            out.push_str(&w.to_json().dump());
            out.push('\n');
        }
        out
    }

    /// Parses a stream produced by [`TimeSeriesReport::to_jsonl`].
    ///
    /// # Errors
    /// On a malformed line (naming its 1-based number), a bad schema
    /// tag, or windows out of ascending order.
    pub fn parse_jsonl(text: &str) -> Result<TimeSeriesReport, JsonError> {
        let mut lines = text
            .lines()
            .enumerate()
            .filter(|(_, l)| !l.trim().is_empty())
            .map(|(i, l)| {
                hieras_rt::from_str(l)
                    .map_err(|e| JsonError(format!("line {}: {}", i + 1, e.0)))
                    .map(|j| (i, j))
            });
        let (_, meta_json) =
            lines.next().ok_or_else(|| JsonError("empty timeseries stream".into()))??;
        let meta = TimeSeriesMeta::from_json(&meta_json)?;
        let mut windows = Vec::new();
        for line in lines {
            let (i, j) = line?;
            let w = TelemetryWindow::from_json(&j)
                .map_err(|e| JsonError(format!("line {}: {}", i + 1, e.0)))?;
            if let Some(prev) = windows.last() {
                let prev: &TelemetryWindow = prev;
                if w.index <= prev.index {
                    return Err(JsonError(format!(
                        "line {}: window {} out of ascending order",
                        i + 1,
                        w.index
                    )));
                }
            }
            windows.push(w);
        }
        Ok(TimeSeriesReport {
            meta,
            windows,
            slow: Vec::new(),
            breaches: Vec::new(),
        })
    }

    /// Replays every flight-recorded lookup into a fresh [`Tracer`]
    /// (spans opened at `window * window_ms`), producing the same
    /// JSONL span format the live transport emits — viewable through
    /// `scripts/trace2chrome`.
    #[must_use]
    pub fn slow_trace(&self) -> Tracer {
        let events = self.slow.iter().map(|s| s.path.len() + 2).sum::<usize>();
        let mut t = Tracer::bounded(events.max(1));
        for s in &self.slow {
            s.record_into(&mut t, s.window * self.meta.window_ms);
        }
        t
    }
}

impl ToJson for TimeSeriesReport {
    fn to_json(&self) -> Json {
        Json::obj([
            ("meta", self.meta.to_json()),
            ("windows", Json::Arr(self.windows.iter().map(ToJson::to_json).collect())),
            ("slow", Json::Arr(self.slow.iter().map(ToJson::to_json).collect())),
            ("breaches", Json::Arr(self.breaches.iter().map(ToJson::to_json).collect())),
        ])
    }
}

impl FromJson for TimeSeriesReport {
    fn from_json(v: &Json) -> Result<Self, JsonError> {
        Ok(TimeSeriesReport {
            meta: v.field("meta")?,
            windows: v.field("windows")?,
            slow: v.field("slow")?,
            breaches: v.field("breaches")?,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn slow(window: u64, latency: u64, seq: u64) -> SlowLookup {
        SlowLookup {
            window,
            latency_ms: latency,
            src: seq as u32,
            key: seq ^ 0xabcd,
            seq,
            path: vec![HopRecord { from: 0, to: 1, layer: 1, ms: latency as u16 }],
        }
    }

    #[test]
    fn windows_rotate_and_accumulate() {
        let mut s = TelemetryShard::new(2);
        s.lookup(0, 10);
        s.lookup(0, 20);
        s.lookup_failed(0);
        s.retries(0, 3);
        s.lookup(2, 5);
        let r = s.into_report("sim", 100, None);
        assert_eq!(r.window_count(), 2, "untouched windows are absent");
        assert_eq!(r.windows[0].index, 0);
        assert_eq!(r.windows[0].lookups, 3);
        assert_eq!(r.windows[0].failures, 1);
        assert_eq!(r.windows[0].retries, 3);
        assert_eq!(r.windows[0].latency.total(), 2, "failures stay out of the histogram");
        assert_eq!(r.windows[1].index, 2);
        assert_eq!(r.total_lookups(), 4);
    }

    #[test]
    fn shard_merge_is_order_invariant() {
        let feed = |s: &mut TelemetryShard, obs: &[(u64, u64)]| {
            for &(w, ms) in obs {
                s.lookup(w, ms);
                if s.slow_qualifies(w, ms) {
                    s.admit_slow(slow(w, ms, ms));
                }
            }
        };
        let mk = |obs: &[(u64, u64)]| {
            let mut s = TelemetryShard::new(2);
            feed(&mut s, obs);
            s
        };
        let a = mk(&[(0, 10), (1, 500), (1, 2)]);
        let b = mk(&[(0, 99), (2, 7)]);
        let c = mk(&[(1, 501), (1, 499), (0, 1)]);
        let abc = a.clone().merged(b.clone()).merged(c.clone());
        let cba = c.merged(b).merged(a);
        let ra = abc.into_report("sim", 10, None);
        let rb = cba.into_report("sim", 10, None);
        assert_eq!(ra, rb);
        assert_eq!(ra.to_jsonl(), rb.to_jsonl(), "windowed JSONL must be byte-identical");
        assert_eq!(ra.slow, rb.slow, "merged top-K must be identical too");
    }

    #[test]
    fn flight_recorder_keeps_the_exact_global_top_k() {
        // Split one observation stream across three shards in odd ways;
        // the merged top-2 per window must equal the brute-force top-2.
        let obs: Vec<(u64, u64, u64)> = (0..30u64)
            .map(|i| (i % 3, (i * 37) % 11, i)) // (window, latency, seq)
            .collect();
        let mut shards = vec![
            TelemetryShard::new(2),
            TelemetryShard::new(2),
            TelemetryShard::new(2),
        ];
        for (n, &(w, ms, seq)) in obs.iter().enumerate() {
            let s = &mut shards[n % 3];
            s.lookup(w, ms);
            if s.slow_qualifies(w, ms) {
                s.admit_slow(slow(w, ms, seq));
            }
        }
        let merged = shards
            .into_iter()
            .reduce(TelemetryShard::merged)
            .expect("non-empty")
            .into_report("sim", 10, None);
        for w in 0..3u64 {
            let mut want: Vec<SlowLookup> =
                obs.iter().filter(|o| o.0 == w).map(|&(w, ms, seq)| slow(w, ms, seq)).collect();
            want.sort_by(slow_rank);
            want.truncate(2);
            let got: Vec<SlowLookup> =
                merged.slow.iter().filter(|s| s.window == w).cloned().collect();
            assert_eq!(got, want, "window {w}");
        }
    }

    #[test]
    fn bulk_lookups_match_single_lookups_exactly() {
        let obs: Vec<(u64, u64)> = (0..60u64).map(|i| (i / 20, (i * 13) % 97)).collect();
        let mut single = TelemetryShard::new(2);
        let mut bulk = TelemetryShard::new(2);
        for &(w, ms) in &obs {
            single.lookup(w, ms);
            if single.slow_qualifies(w, ms) {
                single.admit_slow(slow(w, ms, ms));
            }
        }
        for w in 0..3u64 {
            let batch: Vec<u64> = obs.iter().filter(|o| o.0 == w).map(|o| o.1).collect();
            bulk.lookup_bulk(w, &batch);
            for &ms in &batch {
                if bulk.slow_qualifies(w, ms) {
                    bulk.admit_slow(slow(w, ms, ms));
                }
            }
        }
        bulk.lookup_bulk(9, &[]); // empty batches touch nothing
        let rs = single.into_report("sim", 10, None);
        let rb = bulk.into_report("sim", 10, None);
        assert_eq!(rs, rb, "bulk feed must be indistinguishable from singles");
    }

    #[test]
    fn slow_k_zero_disables_the_recorder() {
        let mut s = TelemetryShard::new(0);
        s.lookup(0, 1000);
        assert!(!s.slow_qualifies(0, 1000));
        s.admit_slow(slow(0, 1000, 1));
        assert!(s.into_report("sim", 10, None).slow.is_empty());
    }

    #[test]
    fn slo_scan_flags_breaches_with_context() {
        let mut s = TelemetryShard::new(0);
        // Window 0: healthy. Window 1: slow p99 + failures + churn.
        for _ in 0..100 {
            s.lookup(0, 10);
        }
        for _ in 0..49 {
            s.lookup(1, 10);
        }
        s.lookup(1, 5000);
        s.lookup_failed(1);
        s.health(1).inc(names::SERVE_EPOCH_PUBLISHED);
        s.health(1).inc_by(names::SERVE_EPOCH_JOINS, 2);
        s.health(1).inc(names::SERVE_EPOCH_FAILS);
        let spec = SloSpec { p99_ms: 100, max_failure_ppm: 1000 };
        let r = s.into_report("sim", 1000, Some(spec));
        assert_eq!(r.breaches.len(), 1);
        let b = r.breaches[0];
        assert_eq!(b.window, 1);
        assert!(b.p99_over, "p99 {} must exceed 100", b.p99_ms);
        assert!(b.failures_over, "1 failure in 51 lookups is ~19600 ppm");
        assert_eq!(b.epochs_published, 1);
        assert_eq!(b.churn_events, 3);
    }

    #[test]
    fn jsonl_round_trips_byte_identically() {
        let mut s = TelemetryShard::new(1);
        for i in 0..50u64 {
            s.lookup(i / 10, i * 3);
        }
        s.lookup_failed(2);
        s.health(3).gauge_set(names::SERVE_EPOCH_SNAPSHOT_AGE_MS, 42);
        let r = s.into_report("sim", 250, None);
        let text = r.to_jsonl();
        let back = TimeSeriesReport::parse_jsonl(&text).unwrap();
        assert_eq!(back.to_jsonl(), text, "parse → serialize must be the identity");
        assert_eq!(back.meta, r.meta);
        assert_eq!(back.windows, r.windows);
    }

    #[test]
    fn malformed_jsonl_is_rejected_with_line_numbers() {
        assert!(TimeSeriesReport::parse_jsonl("").is_err(), "empty stream");
        let bad_schema = "{\"schema\":\"nope/v0\",\"mode\":\"sim\",\"window_ms\":10}\n";
        assert!(TimeSeriesReport::parse_jsonl(bad_schema).is_err());
        let mut s = TelemetryShard::new(0);
        s.lookup(0, 1);
        let good = s.into_report("sim", 10, None).to_jsonl();
        let err = TimeSeriesReport::parse_jsonl(&format!("{good}not json\n")).unwrap_err();
        assert!(err.0.contains("line 3"), "{err}");
    }

    #[test]
    fn full_report_round_trips_through_json() {
        let mut s = TelemetryShard::new(2);
        s.lookup(0, 10);
        s.lookup(0, 900);
        s.lookup_failed(0);
        if s.slow_qualifies(0, 900) {
            s.admit_slow(slow(0, 900, 7));
        }
        let spec = SloSpec { p99_ms: 1, max_failure_ppm: 1 };
        let r = s.into_report("wall", 250, Some(spec));
        assert!(!r.slow.is_empty() && !r.breaches.is_empty());
        let back = TimeSeriesReport::from_json(&r.to_json()).unwrap();
        assert_eq!(back, r);
        let spec_back = SloSpec::from_json(&spec.to_json()).unwrap();
        assert_eq!(spec_back, spec);
    }

    #[test]
    fn slow_trace_replays_spans_per_hop() {
        let mut s = TelemetryShard::new(1);
        s.lookup(2, 30);
        if s.slow_qualifies(2, 30) {
            let mut rec = slow(2, 30, 0);
            rec.path = vec![
                HopRecord { from: 0, to: 4, layer: 2, ms: 10 },
                HopRecord { from: 4, to: 9, layer: 1, ms: 20 },
            ];
            s.admit_slow(rec);
        }
        let r = s.into_report("sim", 100, None);
        let t = r.slow_trace();
        assert_eq!(t.len(), 4, "open + 2 hops + close");
        let evs: Vec<_> = t.events().iter().collect();
        assert_eq!(evs[0].t_ms, 200, "span opens at window * window_ms");
        assert_eq!(evs[1].t_ms, 210, "hops land at cumulative offsets");
        assert_eq!(evs[3].t_ms, 230, "span closes after the full latency");
    }
}
