//! Structured event tracing: a bounded ring-buffer of sim-time-stamped
//! span and instant events.
//!
//! A [`Tracer`] records three event shapes:
//!
//! * **span open** — a named scope starts (a lookup, a join, a repair
//!   storm); gets a fresh span id and inherits the innermost open span
//!   as its parent;
//! * **span close** — the scope ends;
//! * **instant** — a point event (a routing hop, a retry) attributed
//!   to the innermost open span.
//!
//! Every event carries the simulated-time stamp its producer passes in
//! and a flat list of `(key, u64)` fields. The buffer is bounded: once
//! `capacity` events are held, the oldest is evicted and counted in
//! [`Tracer::dropped`], so a tracer can ride along an arbitrarily long
//! run in constant memory.
//!
//! The *disabled* path costs nothing: producers hold an
//! `Option<Tracer>` and skip every call when it is `None` — no
//! allocation, no branch deeper than the `Option` check.
//!
//! Export is JSONL via [`Tracer::to_jsonl`] — one [`TraceEvent`] per
//! line, parseable back with [`TraceEvent::from_json`] for offline
//! reconciliation against the aggregate counters.

use hieras_rt::{FromJson, Json, JsonError, ToJson};
use std::collections::VecDeque;

/// What a [`TraceEvent`] marks.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TraceKind {
    /// A span begins.
    Open,
    /// A span ends.
    Close,
    /// A point event inside the innermost open span.
    Instant,
}

impl TraceKind {
    /// Short wire tag (`open` / `close` / `instant`).
    #[must_use]
    pub fn label(self) -> &'static str {
        match self {
            TraceKind::Open => "open",
            TraceKind::Close => "close",
            TraceKind::Instant => "instant",
        }
    }
}

/// One recorded event.
#[derive(Debug, Clone, PartialEq)]
pub struct TraceEvent {
    /// Simulated time stamp (ms) supplied by the producer.
    pub t_ms: u64,
    /// Open, close, or instant.
    pub kind: TraceKind,
    /// Span id: the opened/closed span, or the span an instant belongs
    /// to (0 = outside any span).
    pub span: u64,
    /// Parent span id at open time (0 = root). Always 0 for close and
    /// instant events — the open event carries the ancestry.
    pub parent: u64,
    /// Event name (`lookup`, `hop`, `churn.join`, …).
    pub name: String,
    /// Flat numeric payload, in producer order.
    pub fields: Vec<(String, u64)>,
}

impl ToJson for TraceEvent {
    fn to_json(&self) -> Json {
        Json::obj([
            ("t", self.t_ms.to_json()),
            ("e", self.kind.label().to_json()),
            ("span", self.span.to_json()),
            ("parent", self.parent.to_json()),
            ("name", self.name.to_json()),
            ("f", Json::obj(self.fields.iter().map(|(k, v)| (k.clone(), v.to_json())))),
        ])
    }
}

impl FromJson for TraceEvent {
    fn from_json(v: &Json) -> Result<Self, JsonError> {
        let kind = match v.field::<String>("e")?.as_str() {
            "open" => TraceKind::Open,
            "close" => TraceKind::Close,
            "instant" => TraceKind::Instant,
            other => return Err(JsonError(format!("unknown event kind `{other}`"))),
        };
        let fields = match v.get("f") {
            Some(Json::Obj(fs)) => fs
                .iter()
                .map(|(k, f)| Ok((k.clone(), u64::from_json(f)?)))
                .collect::<Result<_, JsonError>>()?,
            Some(_) => return Err(JsonError("field `f`: expected object".into())),
            None => Vec::new(),
        };
        Ok(TraceEvent {
            t_ms: v.field("t")?,
            kind,
            span: v.field("span")?,
            parent: v.field("parent")?,
            name: v.field("name")?,
            fields,
        })
    }
}

/// A bounded ring-buffer event sink.
#[derive(Debug, Clone, PartialEq)]
pub struct Tracer {
    events: VecDeque<TraceEvent>,
    capacity: usize,
    next_span: u64,
    stack: Vec<u64>,
    /// Events evicted because the buffer was full.
    pub dropped: u64,
}

impl Tracer {
    /// A tracer holding at most `capacity` events (clamped to ≥ 1).
    #[must_use]
    pub fn bounded(capacity: usize) -> Self {
        Tracer {
            events: VecDeque::new(),
            capacity: capacity.max(1),
            next_span: 0,
            stack: Vec::new(),
            dropped: 0,
        }
    }

    fn push(&mut self, ev: TraceEvent) {
        if self.events.len() == self.capacity {
            self.events.pop_front();
            self.dropped += 1;
        }
        self.events.push_back(ev);
    }

    /// Opens a span named `name` under the innermost open span and
    /// returns its id (ids start at 1; 0 means "no span").
    pub fn open(&mut self, t_ms: u64, name: &str, fields: &[(&str, u64)]) -> u64 {
        self.next_span += 1;
        let span = self.next_span;
        let parent = self.stack.last().copied().unwrap_or(0);
        self.stack.push(span);
        self.push(TraceEvent {
            t_ms,
            kind: TraceKind::Open,
            span,
            parent,
            name: name.to_owned(),
            fields: fields.iter().map(|&(k, v)| (k.to_owned(), v)).collect(),
        });
        span
    }

    /// Closes span `span`. Also pops any younger spans left open on
    /// the stack (a crash-safe close for early returns).
    pub fn close(&mut self, t_ms: u64, span: u64, fields: &[(&str, u64)]) {
        while let Some(top) = self.stack.pop() {
            if top == span {
                break;
            }
        }
        self.push(TraceEvent {
            t_ms,
            kind: TraceKind::Close,
            span,
            parent: 0,
            name: String::new(),
            fields: fields.iter().map(|&(k, v)| (k.to_owned(), v)).collect(),
        });
    }

    /// Records a point event inside the innermost open span.
    pub fn instant(&mut self, t_ms: u64, name: &str, fields: &[(&str, u64)]) {
        let span = self.stack.last().copied().unwrap_or(0);
        self.push(TraceEvent {
            t_ms,
            kind: TraceKind::Instant,
            span,
            parent: 0,
            name: name.to_owned(),
            fields: fields.iter().map(|&(k, v)| (k.to_owned(), v)).collect(),
        });
    }

    /// Events currently held, oldest first.
    #[must_use]
    pub fn events(&self) -> &VecDeque<TraceEvent> {
        &self.events
    }

    /// Number of events currently held.
    #[must_use]
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// True if no events are held.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// The configured capacity.
    #[must_use]
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Serializes the buffer as JSONL: one compact event per line.
    #[must_use]
    pub fn to_jsonl(&self) -> String {
        let mut out = String::new();
        for ev in &self.events {
            out.push_str(&ev.to_json().dump());
            out.push('\n');
        }
        out
    }

    /// Parses a JSONL document produced by [`Tracer::to_jsonl`].
    ///
    /// # Errors
    /// On any malformed line, naming its 1-based number.
    pub fn parse_jsonl(text: &str) -> Result<Vec<TraceEvent>, JsonError> {
        text.lines()
            .enumerate()
            .filter(|(_, l)| !l.trim().is_empty())
            .map(|(i, l)| {
                hieras_rt::from_str(l)
                    .map_err(|e| JsonError(format!("line {}: {}", i + 1, e.0)))
            })
            .collect()
    }
}

/// Converts trace events to the Chrome trace-event format — a JSON
/// object loadable by `chrome://tracing`, Perfetto, or Speedscope.
///
/// Span opens become `"B"` (begin) events, closes `"E"` (end),
/// instants `"i"` with thread scope; sim-time milliseconds map onto
/// the format's microsecond `ts` axis. The [`Tracer`] is
/// single-threaded and stack-disciplined, so emitting everything on
/// one pid/tid track nests correctly.
#[must_use]
pub fn chrome_trace(events: &[TraceEvent]) -> Json {
    let trace_events: Vec<Json> = events
        .iter()
        .map(|ev| {
            let mut fields: Vec<(String, Json)> = vec![
                (
                    "name".into(),
                    if ev.name.is_empty() { Json::Str(format!("span {}", ev.span)) } else { ev.name.clone().to_json() },
                ),
                (
                    "ph".into(),
                    match ev.kind {
                        TraceKind::Open => "B",
                        TraceKind::Close => "E",
                        TraceKind::Instant => "i",
                    }
                    .to_json(),
                ),
                ("ts".into(), (ev.t_ms * 1000).to_json()),
                ("pid".into(), 0u64.to_json()),
                ("tid".into(), 0u64.to_json()),
            ];
            if ev.kind == TraceKind::Instant {
                fields.push(("s".into(), "t".to_json()));
            }
            let mut args: Vec<(String, Json)> = vec![("span".into(), ev.span.to_json())];
            if ev.parent != 0 {
                args.push(("parent".into(), ev.parent.to_json()));
            }
            args.extend(ev.fields.iter().map(|(k, v)| (k.clone(), v.to_json())));
            fields.push(("args".into(), Json::Obj(args)));
            Json::Obj(fields)
        })
        .collect();
    Json::obj([
        ("traceEvents", Json::Arr(trace_events)),
        ("displayTimeUnit", "ms".to_json()),
    ])
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn spans_nest_and_parent() {
        let mut t = Tracer::bounded(16);
        let outer = t.open(0, "outer", &[]);
        let inner = t.open(5, "inner", &[("k", 1)]);
        t.instant(6, "tick", &[("v", 9)]);
        t.close(7, inner, &[]);
        t.close(9, outer, &[("total", 2)]);
        let evs: Vec<_> = t.events().iter().collect();
        assert_eq!(evs.len(), 5);
        assert_eq!(evs[0].parent, 0);
        assert_eq!(evs[1].parent, outer);
        assert_eq!(evs[2].span, inner, "instants attach to the innermost span");
        assert_eq!(evs[3].kind, TraceKind::Close);
        assert_eq!(evs[4].fields, vec![("total".to_owned(), 2)]);
    }

    #[test]
    fn close_pops_abandoned_children() {
        let mut t = Tracer::bounded(16);
        let outer = t.open(0, "outer", &[]);
        let _abandoned = t.open(1, "inner", &[]);
        t.close(2, outer, &[]); // inner never closed explicitly
        let s = t.open(3, "next", &[]);
        assert_eq!(
            t.events().back().unwrap().parent,
            0,
            "the stack must be clean after closing an outer span"
        );
        t.close(4, s, &[]);
    }

    #[test]
    fn ring_buffer_bounds_memory() {
        let mut t = Tracer::bounded(3);
        for i in 0..10u64 {
            t.instant(i, "e", &[("i", i)]);
        }
        assert_eq!(t.len(), 3);
        assert_eq!(t.dropped, 7);
        assert_eq!(t.events()[0].fields[0].1, 7, "oldest events evicted first");
        assert_eq!(t.capacity(), 3);
        assert!(!t.is_empty());
    }

    #[test]
    fn jsonl_round_trips() {
        let mut t = Tracer::bounded(8);
        let s = t.open(10, "lookup", &[("origin", 42), ("key", 7)]);
        t.instant(15, "hop", &[("layer", 2), ("hops", 1)]);
        t.close(20, s, &[("hops", 3)]);
        let text = t.to_jsonl();
        assert_eq!(text.lines().count(), 3);
        let back = Tracer::parse_jsonl(&text).unwrap();
        assert_eq!(back.len(), 3);
        for (a, b) in t.events().iter().zip(back.iter()) {
            assert_eq!(a, b);
        }
    }

    #[test]
    fn chrome_trace_maps_spans_to_begin_end_pairs() {
        let mut t = Tracer::bounded(8);
        let s = t.open(10, "lookup", &[("key", 7)]);
        t.instant(15, "hop", &[("layer", 2)]);
        t.close(20, s, &[("hops", 3)]);
        let j = chrome_trace(&t.events().iter().cloned().collect::<Vec<_>>());
        let text = j.dump();
        assert!(text.starts_with("{\"traceEvents\":["), "{text}");
        assert!(text.contains("\"displayTimeUnit\":\"ms\""));
        let evs = match j.get("traceEvents") {
            Some(Json::Arr(evs)) => evs,
            other => panic!("traceEvents missing: {other:?}"),
        };
        assert_eq!(evs.len(), 3);
        assert_eq!(evs[0].field::<String>("ph").unwrap(), "B");
        assert_eq!(evs[0].field::<u64>("ts").unwrap(), 10_000, "ms map to µs");
        assert_eq!(evs[1].field::<String>("ph").unwrap(), "i");
        assert_eq!(evs[1].field::<String>("s").unwrap(), "t");
        assert_eq!(evs[2].field::<String>("ph").unwrap(), "E");
        assert_eq!(evs[2].field::<u64>("ts").unwrap(), 20_000);
        let args = evs[2].get("args").unwrap();
        assert_eq!(args.field::<u64>("hops").unwrap(), 3);
    }

    #[test]
    fn malformed_jsonl_names_the_line() {
        let err = Tracer::parse_jsonl("{\"t\":1,\"e\":\"open\",\"span\":1,\"parent\":0,\"name\":\"x\",\"f\":{}}\nnot json\n")
            .unwrap_err();
        assert!(err.0.contains("line 2"), "{err}");
    }
}
