//! JSON round-trip coverage for every public obs type: a value
//! serialized with `ToJson` must parse back equal through `FromJson`,
//! and malformed shapes must be rejected rather than silently zeroed.

use hieras_obs::{LogHistogram, PhaseReport, Profiler, Registry, TraceEvent, Tracer};
use hieras_rt::{from_str, to_string, FromJson, Json, ToJson};

#[test]
fn log_histogram_round_trips() {
    let mut h = LogHistogram::new();
    for v in [0u64, 1, 3, 250, 250, 1_000_000, u64::MAX] {
        h.record(v);
    }
    let back: LogHistogram = from_str(&to_string(&h)).unwrap();
    assert_eq!(back, h);
    assert_eq!(back.quantile(0.5), h.quantile(0.5));
    // Empty histograms round-trip too.
    let empty: LogHistogram = from_str(&to_string(&LogHistogram::new())).unwrap();
    assert_eq!(empty, LogHistogram::new());
}

#[test]
fn log_histogram_rejects_inconsistent_totals() {
    let mut h = LogHistogram::new();
    h.record(5);
    let mut json = h.to_json();
    if let Json::Obj(fields) = &mut json {
        for (k, v) in fields.iter_mut() {
            if k == "total" {
                *v = Json::U64(99);
            }
        }
    }
    assert!(LogHistogram::from_json(&json).is_err());
}

#[test]
fn registry_round_trips_with_all_three_kinds() {
    let mut r = Registry::new();
    r.inc_by("net.deliver.find_succ", 41);
    r.inc("net.timeout");
    r.gauge_set("population", 300);
    r.gauge_set("negative", -7);
    for v in [12u64, 90, 3000] {
        r.observe("lookup.latency_ms", v);
    }
    let back: Registry = from_str(&to_string(&r)).unwrap();
    assert_eq!(back, r);
    assert_eq!(back.snapshot(), r.snapshot());
    assert_eq!(back.counter("net.deliver.find_succ"), 41);
    assert_eq!(back.gauge("negative"), Some(-7));
    assert_eq!(back.hist("lookup.latency_ms").unwrap().total(), 3);
}

#[test]
fn empty_registry_round_trips() {
    let back: Registry = from_str(&to_string(&Registry::new())).unwrap();
    assert!(back.is_empty());
    assert!(from_str::<Registry>("{\"counters\":{}}").is_err(), "missing sections rejected");
}

#[test]
fn trace_events_round_trip_via_jsonl() {
    let mut t = Tracer::bounded(64);
    let lookup = t.open(100, "lookup", &[("origin", 7), ("layer", 2)]);
    t.instant(130, "hop", &[("layer", 2), ("hops", 1)]);
    t.instant(160, "hop", &[("layer", 1), ("hops", 2)]);
    t.close(200, lookup, &[("hops", 2), ("latency_ms", 100)]);
    let events = Tracer::parse_jsonl(&t.to_jsonl()).unwrap();
    assert_eq!(events.len(), 4);
    for (a, b) in t.events().iter().zip(events.iter()) {
        assert_eq!(a, b);
    }
    // Single-event round trip through the value API as well.
    let one: TraceEvent = from_str(&to_string(&events[0])).unwrap();
    assert_eq!(one, events[0]);
}

#[test]
fn trace_event_rejects_unknown_kind() {
    assert!(from_str::<TraceEvent>(
        "{\"t\":1,\"e\":\"explode\",\"span\":1,\"parent\":0,\"name\":\"x\",\"f\":{}}"
    )
    .is_err());
}

#[test]
fn phase_report_round_trips() {
    let mut p = Profiler::new();
    p.start("build");
    p.scope("topology", || {});
    p.scope("apsp", || {});
    p.end();
    p.scope("replay", || {});
    let r = p.report();
    let back: PhaseReport = from_str(&to_string(&r)).unwrap();
    assert_eq!(back, r);
    assert_eq!(back.phases[0].children.len(), 2);
    assert!(back.render().contains("topology"));
}
