//! Acceptance-scale churn experiments: ≥ 300 nodes, ≥ 5 % membership
//! turnover, seeded and fully deterministic.

use hieras_churn::{run_churn, ChurnExperimentConfig};
use hieras_sim::{ChurnConfig, Lifetime};

/// 300 initial nodes and ~30 departures (~10 % turnover) inside the
/// horizon, plus a stream of arrivals.
fn acceptance_churn(graceful: f64, seed: u64) -> ChurnConfig {
    ChurnConfig {
        initial_nodes: 300,
        arrivals: 20,
        inter_arrival: Lifetime::Fixed { ms: 500 },
        lifetime: Lifetime::Exponential { mean_ms: 120_000.0 },
        graceful_fraction: graceful,
        horizon_ms: 12_000,
        seed,
    }
}

#[test]
fn graceful_churn_resolves_every_lookup() {
    let cfg = ChurnExperimentConfig::standard(acceptance_churn(1.0, 20030415));
    let r = run_churn(&cfg);
    assert!(r.population_start >= 300, "acceptance floor: ≥ 300 nodes");
    assert!(r.turnover >= 0.05, "acceptance floor: ≥ 5 % turnover, got {}", r.turnover);
    assert!(r.events.leaves > 0 && r.events.fails == 0, "graceful-only scenario");
    assert!(r.hieras.lookups >= 100, "needs a meaningful lookup volume");
    // The §3.3 choreography splices synchronously and graceful leaves
    // patch every neighbour before vanishing, so lookups stay exact —
    // timeouts against stale fingers inflate latency, never outcomes.
    assert_eq!(r.hieras.failed(), 0, "HIERAS lookup failed under graceful churn: {r:?}");
    assert_eq!(r.chord.failed(), 0, "Chord lookup failed under graceful churn");
    assert_eq!(
        r.population_end,
        r.population_start + r.events.joins as usize - r.events.leaves as usize,
    );
}

#[test]
fn silent_fails_fail_some_lookups_but_bounded() {
    let mut cfg = ChurnExperimentConfig::standard(acceptance_churn(0.0, 20030415));
    // Widen the exposure window: several events pass between
    // maintenance rounds, and more lookups probe each window.
    cfg.lookups_per_event = 12;
    cfg.maintenance_every = 4;
    let r = run_churn(&cfg);
    assert!(r.turnover >= 0.05, "acceptance floor: ≥ 5 % turnover, got {}", r.turnover);
    assert!(r.events.fails > 0 && r.events.leaves == 0, "silent-only scenario");
    // Dead nodes cost timeouts and, until stabilization transfers
    // ownership, some lookups land on the wrong owner or die — a
    // non-zero but bounded failure rate.
    assert!(r.hieras.failed() > 0, "expected some HIERAS failures: {:?}", r.hieras);
    assert!(
        r.hieras.failure_rate() < 0.10,
        "HIERAS failure rate out of bounds: {}",
        r.hieras.failure_rate()
    );
    // The Chord baseline's driver-level lookup consults live successor
    // lists directly — failure detection is perfect, so its rate stays
    // bounded (typically zero); HIERAS pays for message-level repair.
    assert!(
        r.chord.failure_rate() < 0.10,
        "Chord failure rate out of bounds: {}",
        r.chord.failure_rate()
    );
    // Timeout-inflated latency: the surviving lookups paid RTOs.
    assert!(r.timeouts_total > 0, "silent fails must cost timeouts");
}

#[test]
fn maintenance_overhead_is_split_by_layer_and_purpose() {
    let mut cfg = ChurnExperimentConfig::standard(acceptance_churn(0.5, 7));
    cfg.churn.initial_nodes = 120;
    cfg.churn.arrivals = 10;
    let r = run_churn(&cfg);
    assert_eq!(r.hieras.maint.len(), cfg.hieras.depth, "one bucket per layer");
    // Every layer ran stabilization and finger repair.
    for (i, m) in r.hieras.maint.iter().enumerate() {
        assert!(m.stabilize_msgs > 0, "layer {} saw no stabilize traffic", i + 1);
        assert!(m.fix_finger_msgs > 0, "layer {} saw no fix-finger traffic", i + 1);
    }
    // Cross-layer purposes land in the global bucket.
    assert!(r.hieras.maint[0].join_msgs > 0, "joins must be accounted");
    assert!(r.hieras.maint[0].lookup_msgs > 0, "lookups must be accounted");
    assert!(r.hieras.maint[0].repair_msgs > 0, "graceful leaves must be accounted");
    // And the attribution is exhaustive.
    assert_eq!(r.hieras.maint_total().total(), r.messages_total + r.timeouts_total);
    // The Chord baseline kept its own books.
    let cm = r.chord.maint_total();
    assert!(cm.stabilize_msgs > 0 && cm.lookup_msgs > 0 && cm.join_msgs > 0);
}
