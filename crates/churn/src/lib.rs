//! Churn engine — membership dynamics as a measurable experiment.
//!
//! The paper's evaluation (§4) is a static snapshot; its maintenance
//! story (§2.3 ring tables, §3.3 joins, §3.4 cost analysis) only
//! becomes measurable when nodes actually come and go. This crate
//! closes that gap: a deterministic, seed-reproducible engine that
//!
//! 1. samples a [`hieras_sim::ChurnSchedule`] from configurable
//!    lifetime / inter-arrival distributions,
//! 2. replays it simultaneously onto the message-level HIERAS network
//!    ([`hieras_proto::SimNet`] — §3.3 join choreography, graceful
//!    leaves with ring-table handoff, silent fails discovered through
//!    RTO timeouts, per-layer stabilize / notify / fix-fingers rounds,
//!    landmark death with re-binning) and onto the dynamic Chord
//!    baseline ([`hieras_chord::DynChord`]), and
//! 3. interleaves timeout/retry/backoff lookups, scoring each answer
//!    against the ground-truth owner derived from the live membership.
//!
//! The output is a [`ChurnReport`]: lookup failure rate (wrong owner
//! vs. lost request), timeout-inflated routing latency in the same
//! mergeable [`hieras_sim::Metrics`] containers the static experiments
//! use, and maintenance-message overhead split by layer and by purpose
//! ([`hieras_chord::MaintStats`]). Everything is a pure function of the
//! seed: the same [`ChurnExperimentConfig`] produces a bit-identical
//! report on any machine and any thread count.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod config;
mod engine;
mod replay;
mod report;

pub use config::{ChurnExperimentConfig, DomainFail, LandmarkFail};
pub use engine::{run_churn, run_churn_traced, ChurnObs, CHURN_WINDOW_MS};
pub use replay::{MembershipReplay, ReplayDelta};
pub use report::{AlgoChurnStats, ChurnReport, EventCounts};
