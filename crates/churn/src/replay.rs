//! Membership replay decoupled from the event loop.
//!
//! [`crate::run_churn`] drives a [`hieras_sim::ChurnSchedule`] through
//! the full discrete-event simulator — message delays, retries,
//! reconciliation. The live serving engine needs something much
//! smaller: *which peers are alive after the next K events*, so the
//! maintenance thread can rebuild a snapshot per epoch without paying
//! for a `SimNet`. [`MembershipReplay`] is that cursor: it owns a
//! live-bit per node and applies schedule events in time order, a
//! bounded batch at a time.

use hieras_sim::{ChurnEventKind, ChurnSchedule, SimClock};

/// What one [`MembershipReplay::apply_next`] batch did to the overlay.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ReplayDelta {
    /// Events consumed from the schedule (≤ the requested batch size).
    pub applied: usize,
    /// Nodes that came up.
    pub joins: u32,
    /// Graceful departures applied.
    pub leaves: u32,
    /// Silent failures applied.
    pub fails: u32,
    /// Departures *refused* because they would have emptied the
    /// overlay — a one-node ring cannot lose its last member.
    pub refused: u32,
    /// Schedule time of the last applied event, ms.
    pub now_ms: SimClock,
    /// True once the schedule is exhausted.
    pub done: bool,
}

impl ReplayDelta {
    /// True when the batch changed the membership at all.
    #[must_use]
    pub fn changed(&self) -> bool {
        self.joins + self.leaves + self.fails > 0
    }
}

/// A cursor over a churn schedule that tracks only liveness.
///
/// Nodes `0..initial_nodes` start live; arrivals start dead and come
/// up at their `Join` event. Events apply in schedule (time) order.
#[derive(Debug, Clone)]
pub struct MembershipReplay {
    schedule: ChurnSchedule,
    /// Index of the next unapplied event.
    next: usize,
    live: Vec<bool>,
    live_count: u32,
    now_ms: SimClock,
}

impl MembershipReplay {
    /// Creates the cursor at time zero with `initial_nodes` live.
    ///
    /// # Panics
    /// Panics if `initial_nodes` is zero or exceeds the schedule's
    /// node universe.
    #[must_use]
    pub fn new(initial_nodes: u32, schedule: ChurnSchedule) -> Self {
        assert!(initial_nodes > 0, "overlay cannot start empty");
        assert!(
            initial_nodes <= schedule.nodes_total,
            "initial nodes exceed the schedule's universe"
        );
        let mut live = vec![false; schedule.nodes_total as usize];
        for slot in live.iter_mut().take(initial_nodes as usize) {
            *slot = true;
        }
        MembershipReplay { schedule, next: 0, live, live_count: initial_nodes, now_ms: 0 }
    }

    /// Applies up to `max_events` further events and reports what
    /// changed. A departure that would drop the last live node is
    /// skipped (counted in [`ReplayDelta::refused`]) — the overlay
    /// never empties.
    pub fn apply_next(&mut self, max_events: usize) -> ReplayDelta {
        self.apply_core(max_events, None)
    }

    /// Like [`MembershipReplay::apply_next`], but also records the
    /// batch's *net* membership movement into `joined` / `departed`
    /// (both cleared first): a node that came up and went down within
    /// one batch appears in neither list. This is exactly the delta
    /// shape incremental snapshot maintenance consumes.
    pub fn apply_next_recording(
        &mut self,
        max_events: usize,
        joined: &mut Vec<u32>,
        departed: &mut Vec<u32>,
    ) -> ReplayDelta {
        joined.clear();
        departed.clear();
        self.apply_core(max_events, Some((joined, departed)))
    }

    fn apply_core(
        &mut self,
        max_events: usize,
        mut rec: Option<(&mut Vec<u32>, &mut Vec<u32>)>,
    ) -> ReplayDelta {
        let mut delta = ReplayDelta { now_ms: self.now_ms, ..ReplayDelta::default() };
        while delta.applied < max_events {
            let Some(ev) = self.schedule.events.get(self.next) else {
                break;
            };
            self.next += 1;
            delta.applied += 1;
            delta.now_ms = ev.at;
            let node = ev.kind.node();
            match ev.kind {
                ChurnEventKind::Join { .. } => {
                    if !self.live[node as usize] {
                        self.live[node as usize] = true;
                        self.live_count += 1;
                        delta.joins += 1;
                        if let Some((joined, departed)) = rec.as_mut() {
                            // A rejoin inside the batch cancels out.
                            if let Some(i) = departed.iter().position(|&d| d == node) {
                                departed.swap_remove(i);
                            } else {
                                joined.push(node);
                            }
                        }
                    }
                }
                ChurnEventKind::Leave { .. } | ChurnEventKind::Fail { .. } => {
                    if !self.live[node as usize] {
                        continue;
                    }
                    if self.live_count == 1 {
                        delta.refused += 1;
                        continue;
                    }
                    self.live[node as usize] = false;
                    self.live_count -= 1;
                    if matches!(ev.kind, ChurnEventKind::Leave { .. }) {
                        delta.leaves += 1;
                    } else {
                        delta.fails += 1;
                    }
                    if let Some((joined, departed)) = rec.as_mut() {
                        if let Some(i) = joined.iter().position(|&j| j == node) {
                            joined.swap_remove(i);
                        } else {
                            departed.push(node);
                        }
                    }
                }
            }
        }
        self.now_ms = delta.now_ms;
        delta.done = self.next >= self.schedule.events.len();
        delta
    }

    /// Schedule time of the next unapplied event, or `None` when the
    /// schedule is exhausted — what a paced maintainer sleeps towards.
    #[must_use]
    pub fn next_event_at(&self) -> Option<SimClock> {
        self.schedule.events.get(self.next).map(|e| e.at)
    }

    /// Live node indices, ascending — the membership a snapshot builds
    /// from.
    #[must_use]
    pub fn live_members(&self) -> Vec<u32> {
        self.live
            .iter()
            .enumerate()
            .filter_map(|(i, &alive)| alive.then_some(i as u32))
            .collect()
    }

    /// Whether node `node` is currently live.
    #[must_use]
    pub fn is_live(&self, node: u32) -> bool {
        self.live.get(node as usize).copied().unwrap_or(false)
    }

    /// Number of live nodes.
    #[must_use]
    pub fn live_count(&self) -> u32 {
        self.live_count
    }

    /// Schedule time of the last applied event, ms.
    #[must_use]
    pub fn now_ms(&self) -> SimClock {
        self.now_ms
    }

    /// True once every event has been applied.
    #[must_use]
    pub fn is_done(&self) -> bool {
        self.next >= self.schedule.events.len()
    }

    /// Events not yet applied.
    #[must_use]
    pub fn remaining(&self) -> usize {
        self.schedule.events.len() - self.next
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hieras_sim::{ChurnConfig, Lifetime};

    fn schedule(initial: u32, arrivals: u32, horizon: SimClock) -> ChurnSchedule {
        ChurnConfig {
            initial_nodes: initial,
            arrivals,
            inter_arrival: Lifetime::Fixed { ms: 200 },
            lifetime: Lifetime::Exponential { mean_ms: 2_000.0 },
            graceful_fraction: 0.5,
            horizon_ms: horizon,
            seed: 0xc0ffee,
        }
        .schedule()
    }

    #[test]
    fn replay_tracks_live_set_through_full_schedule() {
        let sched = schedule(30, 10, 10_000);
        let mut replay = MembershipReplay::new(30, sched.clone());
        assert_eq!(replay.live_count(), 30);
        assert_eq!(replay.live_members().len(), 30);
        let mut joins = 0u32;
        let mut departures = 0u32;
        loop {
            let d = replay.apply_next(7);
            joins += d.joins;
            departures += d.leaves + d.fails;
            assert_eq!(
                replay.live_members().len() as u32,
                replay.live_count(),
                "live list and count must agree"
            );
            if d.done {
                break;
            }
        }
        assert!(replay.is_done());
        assert_eq!(replay.remaining(), 0);
        assert_eq!(joins, 10, "every arrival joins inside the horizon");
        assert!(departures > 0, "the exponential lifetimes must kill someone");
        assert_eq!(replay.live_count(), 30 + joins - departures);
        // Time advanced monotonically to within the horizon.
        assert!(replay.now_ms() > 0 && replay.now_ms() <= 10_000);
        // Replays are deterministic: a second pass lands identically.
        let mut again = MembershipReplay::new(30, sched);
        while !again.apply_next(usize::MAX).done {}
        assert_eq!(again.live_members(), replay.live_members());
    }

    #[test]
    fn batches_respect_the_event_budget() {
        let sched = schedule(20, 5, 8_000);
        let total = sched.events.len();
        let mut replay = MembershipReplay::new(20, sched);
        let d = replay.apply_next(3);
        assert_eq!(d.applied, 3.min(total));
        assert_eq!(replay.remaining(), total - d.applied);
    }

    #[test]
    fn recording_replay_tracks_net_movement() {
        let sched = schedule(25, 8, 10_000);
        let mut plain = MembershipReplay::new(25, sched.clone());
        let mut rec = MembershipReplay::new(25, sched);
        let mut joined = Vec::new();
        let mut departed = Vec::new();
        loop {
            let before = rec.live_members();
            let d1 = plain.apply_next(5);
            let d2 = rec.apply_next_recording(5, &mut joined, &mut departed);
            assert_eq!(d1, d2, "recording must not change replay semantics");
            // Net movement applied to the pre-batch membership must
            // reproduce the post-batch membership.
            let mut expect = before;
            expect.retain(|m| !departed.contains(m));
            expect.extend_from_slice(&joined);
            expect.sort_unstable();
            assert_eq!(expect, rec.live_members());
            // Net lists never overlap.
            assert!(joined.iter().all(|j| !departed.contains(j)));
            if d2.done {
                break;
            }
        }
        assert_eq!(plain.live_members(), rec.live_members());
    }

    #[test]
    fn next_event_at_walks_the_schedule() {
        let sched = schedule(10, 3, 5_000);
        let first = sched.events.first().map(|e| e.at);
        let mut replay = MembershipReplay::new(10, sched);
        assert_eq!(replay.next_event_at(), first);
        while !replay.apply_next(1).done {
            let at = replay.next_event_at().expect("events remain");
            assert!(at >= replay.now_ms(), "schedule is time-ordered");
        }
        assert_eq!(replay.next_event_at(), None);
    }

    #[test]
    fn never_drops_the_last_live_node() {
        // One initial node with a finite lifetime: its departure must
        // be refused, not applied.
        let sched = ChurnConfig {
            initial_nodes: 1,
            arrivals: 0,
            inter_arrival: Lifetime::Fixed { ms: 100 },
            lifetime: Lifetime::Fixed { ms: 50 },
            graceful_fraction: 1.0,
            horizon_ms: 1_000,
            seed: 7,
        }
        .schedule();
        let mut replay = MembershipReplay::new(1, sched);
        let d = replay.apply_next(usize::MAX);
        assert!(d.refused >= 1, "last-node departure must be refused");
        assert_eq!(replay.live_count(), 1);
        assert!(replay.is_live(0));
    }
}
