//! Churn-experiment configuration.

use hieras_core::HierasConfig;
use hieras_rt::{Json, ToJson};
use hieras_sim::{ChurnConfig, TopologyKind};

/// A landmark death injected mid-run: after the given churn event the
/// landmark is replaced by a backup measurement point, every live node
/// re-measures its RTT vector, and nodes whose bin changed re-join the
/// lower-layer rings the new order names (§2.2's landmark dependency,
/// exercised as a failure).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LandmarkFail {
    /// The landmark dies once this many churn events have fired.
    pub after_event: u32,
    /// Index into the landmark set (taken modulo its length).
    pub landmark: u32,
}

impl ToJson for LandmarkFail {
    fn to_json(&self) -> Json {
        Json::obj([
            ("after_event", self.after_event.to_json()),
            ("landmark", self.landmark.to_json()),
        ])
    }
}

/// A domain-correlated failure injected mid-run: after the given churn
/// event, every live peer attached to one Transit-Stub failure domain
/// ([`hieras_topology::Topology::domain`]) fails silently at the same
/// instant — a power cut or uplink loss at a site, against which the
/// independent-death lifetime model says nothing. The victim is the
/// most-populated live domain at that instant (deterministic), capped
/// so at least two peers survive the cut.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DomainFail {
    /// The domain dies once this many churn events have fired.
    pub after_event: u32,
}

impl ToJson for DomainFail {
    fn to_json(&self) -> Json {
        Json::obj([("after_event", self.after_event.to_json())])
    }
}

/// Full description of one churn experiment.
#[derive(Debug, Clone, PartialEq)]
pub struct ChurnExperimentConfig {
    /// Network model peers are placed on.
    pub kind: TopologyKind,
    /// HIERAS parameters (depth, landmarks, binning).
    pub hieras: HierasConfig,
    /// Membership dynamics: initial population, arrival process,
    /// lifetimes, graceful fraction, horizon and master seed.
    pub churn: ChurnConfig,
    /// Application lookups injected after every churn event (each is
    /// run through both algorithms against the same ground truth).
    pub lookups_per_event: u32,
    /// Maintenance cadence: run one full round (failure-detection
    /// pings, stabilize, fix-fingers — per layer for HIERAS, global
    /// for Chord) every this many churn events. 0 disables maintenance.
    pub maintenance_every: u32,
    /// Retransmission timeout charged for every RPC against a dead
    /// node, ms.
    pub rto_ms: u64,
    /// Hop TTL for routed messages (bounds transient routing loops
    /// while pointers heal).
    pub ttl: u32,
    /// Lookup retry budget: attempts per lookup before it is declared
    /// failed.
    pub lookup_attempts: u32,
    /// Backoff between lookup attempts, ms (inflates the measured
    /// latency of retried lookups).
    pub backoff_ms: u64,
    /// Successor-list length of the Chord baseline.
    pub succ_list_len: usize,
    /// Optional landmark death injected mid-run.
    pub landmark_fail: Option<LandmarkFail>,
    /// Optional domain-correlated failure injected mid-run.
    pub domain_fail: Option<DomainFail>,
}

impl ChurnExperimentConfig {
    /// The standard setup around a given churn scenario: TS topology,
    /// paper HIERAS config, 250 ms RTO, 4 lookup attempts with 400 ms
    /// backoff, maintenance after every event.
    #[must_use]
    pub fn standard(churn: ChurnConfig) -> Self {
        ChurnExperimentConfig {
            kind: TopologyKind::TransitStub,
            hieras: HierasConfig::paper(),
            churn,
            lookups_per_event: 4,
            maintenance_every: 1,
            rto_ms: 250,
            ttl: 96,
            lookup_attempts: 4,
            backoff_ms: 400,
            succ_list_len: 8,
            landmark_fail: None,
            domain_fail: None,
        }
    }
}

impl ToJson for ChurnExperimentConfig {
    fn to_json(&self) -> Json {
        // ChurnConfig lives in hieras-sim without a ToJson impl of its
        // own; serialize its public fields here.
        let churn = Json::obj([
            ("initial_nodes", self.churn.initial_nodes.to_json()),
            ("arrivals", self.churn.arrivals.to_json()),
            ("inter_arrival", self.churn.inter_arrival.to_json()),
            ("lifetime", self.churn.lifetime.to_json()),
            ("graceful_fraction", self.churn.graceful_fraction.to_json()),
            ("horizon_ms", self.churn.horizon_ms.to_json()),
            ("seed", self.churn.seed.to_json()),
        ]);
        Json::obj([
            ("kind", self.kind.to_json()),
            ("hieras", self.hieras.to_json()),
            ("churn", churn),
            ("lookups_per_event", self.lookups_per_event.to_json()),
            ("maintenance_every", self.maintenance_every.to_json()),
            ("rto_ms", self.rto_ms.to_json()),
            ("ttl", self.ttl.to_json()),
            ("lookup_attempts", self.lookup_attempts.to_json()),
            ("backoff_ms", self.backoff_ms.to_json()),
            ("succ_list_len", self.succ_list_len.to_json()),
            ("landmark_fail", match self.landmark_fail {
                Some(lf) => lf.to_json(),
                None => Json::Null,
            }),
            ("domain_fail", match self.domain_fail {
                Some(df) => df.to_json(),
                None => Json::Null,
            }),
        ])
    }
}
