//! Churn-run results: failure rates, timeout-inflated latency, and
//! per-layer maintenance overhead.

use hieras_chord::MaintStats;
use hieras_rt::{Json, ToJson};
use hieras_sim::Metrics;

/// What happened to the membership over one run.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct EventCounts {
    /// Arrivals that completed the §3.3 join choreography.
    pub joins: u64,
    /// Join attempts that died in the network and were retried through
    /// another bootstrap.
    pub join_retries: u64,
    /// Arrivals abandoned after exhausting their bootstrap retries.
    pub join_aborts: u64,
    /// Graceful departures executed.
    pub leaves: u64,
    /// Silent failures executed.
    pub fails: u64,
    /// Departure events skipped because the node never joined.
    pub skipped: u64,
    /// Layer moves performed by landmark-death re-binning.
    pub rebinned: u64,
    /// Peers killed by the correlated domain failure (0 without one).
    pub domain_killed: u64,
}

impl ToJson for EventCounts {
    fn to_json(&self) -> Json {
        Json::obj([
            ("joins", self.joins.to_json()),
            ("join_retries", self.join_retries.to_json()),
            ("join_aborts", self.join_aborts.to_json()),
            ("leaves", self.leaves.to_json()),
            ("fails", self.fails.to_json()),
            ("skipped", self.skipped.to_json()),
            ("rebinned", self.rebinned.to_json()),
            ("domain_killed", self.domain_killed.to_json()),
        ])
    }
}

/// Lookup and maintenance accounting for one algorithm under churn.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct AlgoChurnStats {
    /// Lookups injected.
    pub lookups: u64,
    /// Lookups that resolved to the wrong owner (stale pointers during
    /// the repair window).
    pub wrong_owner: u64,
    /// Lookups that never resolved (every retry lost to dead nodes or
    /// TTL drops).
    pub unresolved: u64,
    /// Total attempts consumed (≥ `lookups`; the excess is retries).
    pub attempts: u64,
    /// Hop / latency metrics of the *successful* lookups. Latency is
    /// timeout-inflated: every RPC into a dead node costs one RTO, and
    /// retried lookups carry their backoff.
    pub routing: Metrics,
    /// Maintenance traffic split by purpose, one entry per layer
    /// (index 0 = the global ring; Chord has a single entry).
    /// Cross-layer work — joins, graceful-leave repair, lookups — is
    /// attributed to the global-ring entry; landmark re-binning to the
    /// lowest layer.
    pub maint: Vec<MaintStats>,
}

impl AlgoChurnStats {
    /// An empty accumulator with one maintenance bucket per layer.
    #[must_use]
    pub fn new(layers: usize) -> Self {
        AlgoChurnStats { maint: vec![MaintStats::default(); layers], ..Default::default() }
    }

    /// Lookups that did not produce the true owner.
    #[must_use]
    pub fn failed(&self) -> u64 {
        self.wrong_owner + self.unresolved
    }

    /// Failed lookups as a fraction of all lookups.
    #[must_use]
    pub fn failure_rate(&self) -> f64 {
        if self.lookups == 0 {
            0.0
        } else {
            self.failed() as f64 / self.lookups as f64
        }
    }

    /// All layers' maintenance counters merged.
    #[must_use]
    pub fn maint_total(&self) -> MaintStats {
        let mut total = MaintStats::default();
        for m in &self.maint {
            total.merge(m);
        }
        total
    }
}

impl ToJson for AlgoChurnStats {
    fn to_json(&self) -> Json {
        Json::obj([
            ("lookups", self.lookups.to_json()),
            ("wrong_owner", self.wrong_owner.to_json()),
            ("unresolved", self.unresolved.to_json()),
            ("failed", self.failed().to_json()),
            ("failure_rate", self.failure_rate().to_json()),
            ("attempts", self.attempts.to_json()),
            ("routing", self.routing.summary().to_json()),
            ("maint_by_layer", self.maint.to_json()),
            ("maint_total", self.maint_total().to_json()),
        ])
    }
}

/// The full result of one churn run.
#[derive(Debug, Clone, PartialEq)]
pub struct ChurnReport {
    /// Departures as a fraction of the initial population.
    pub turnover: f64,
    /// Membership-event outcomes.
    pub events: EventCounts,
    /// Population at t = 0.
    pub population_start: usize,
    /// Population when the schedule ran out.
    pub population_end: usize,
    /// HIERAS under churn.
    pub hieras: AlgoChurnStats,
    /// The Chord baseline under the identical schedule and lookups.
    pub chord: AlgoChurnStats,
    /// Every message the HIERAS network delivered.
    pub messages_total: u64,
    /// RPCs that timed out against dead HIERAS nodes.
    pub timeouts_total: u64,
    /// Messages the HIERAS network dropped (dead destination, TTL).
    pub drops_total: u64,
}

impl ToJson for ChurnReport {
    fn to_json(&self) -> Json {
        Json::obj([
            ("turnover", self.turnover.to_json()),
            ("events", self.events.to_json()),
            ("population_start", self.population_start.to_json()),
            ("population_end", self.population_end.to_json()),
            ("hieras", self.hieras.to_json()),
            ("chord", self.chord.to_json()),
            ("messages_total", self.messages_total.to_json()),
            ("timeouts_total", self.timeouts_total.to_json()),
            ("drops_total", self.drops_total.to_json()),
        ])
    }
}
