//! The churn engine: replays a [`ChurnSchedule`] onto both DHTs.
//!
//! Everything is strictly sequential and index-addressed, so a run is
//! a pure function of its configuration: the same seed produces a
//! bit-identical [`ChurnReport`] on any machine and any thread count
//! (callers parallelize *across* scenarios, never within one).
//!
//! One run proceeds as:
//!
//! 1. **World building.** An [`Experiment`] is assembled over the full
//!    node pool (initial members + future arrivals) so every node has
//!    a topology attachment, landmark RTT vector and identifier from
//!    the start. A second [`HierasOracle`] over just the initial
//!    members bootstraps the message network in its stabilized state;
//!    the Chord baseline bootstraps through its own join +
//!    stabilization protocol until ring-consistent. Bootstrap traffic
//!    is not counted.
//! 2. **Schedule replay.** Each churn event is applied to both
//!    networks: arrivals run the §3.3 join choreography through a
//!    seed-chosen live bootstrap (retried through another bootstrap if
//!    the messages die), graceful leaves patch neighbours and hand off
//!    ring tables, silent fails just vanish. After every event a batch
//!    of lookups runs through both algorithms, each scored against the
//!    ground-truth owner (the first live id clockwise from the key);
//!    maintenance rounds fire on their configured cadence.
//! 3. **Accounting.** HIERAS message deltas are attributed around each
//!    driver call into per-layer [`MaintStats`] buckets; Chord keeps
//!    its own internal attribution. Successful-lookup hops and
//!    timeout-inflated latencies land in [`hieras_sim::Metrics`].

use crate::{ChurnExperimentConfig, ChurnReport, EventCounts};
use crate::report::AlgoChurnStats;
use hieras_chord::{DynChord, DynError};
use hieras_core::HierasOracle;
use hieras_id::{Id, IdSpace};
use hieras_obs::{Registry, TelemetryShard, TimeSeriesReport, Tracer};
use hieras_proto::SimNet;
use hieras_rt::splitmix64;
use hieras_sim::{ChurnEventKind, Experiment, ExperimentConfig, Sample};
use std::collections::HashMap;
use std::sync::Arc;

/// Observability artifacts captured by [`run_churn_traced`]: the
/// network's metric registry (per-message-type counters, lookup/join
/// histograms, `churn.*` event counters) and — when a trace capacity
/// was requested — the structured event stream.
#[derive(Debug, Clone, PartialEq)]
pub struct ChurnObs {
    /// Merged counters / gauges / histograms for the whole run.
    pub registry: Registry,
    /// The span/instant event buffer, `None` when tracing was off.
    pub tracer: Option<Tracer>,
    /// Time-resolved lookup telemetry over the churn horizon:
    /// [`CHURN_WINDOW_MS`]-wide sim windows with per-window success
    /// latencies, failures (wrong owner or unresolved), and retry
    /// counts. Windowed and aggregate accounting reconcile exactly —
    /// the identity `tests/` assert.
    pub timeseries: TimeSeriesReport,
}

/// Width of the churn engine's telemetry windows on the sim clock, ms.
pub const CHURN_WINDOW_MS: u64 = 1_000;

/// Message counters captured before a driver call; the difference
/// afterwards is the call's traffic.
#[derive(Clone, Copy)]
struct Snap {
    total: u64,
    timeouts: u64,
}

fn snap(net: &SimNet) -> Snap {
    Snap { total: net.stats().total, timeouts: net.stats().timeouts }
}

fn delta(net: &SimNet, before: Snap) -> Snap {
    Snap {
        total: net.stats().total - before.total,
        timeouts: net.stats().timeouts - before.timeouts,
    }
}

/// Ground truth: the live member that owns `key` — the first id
/// clockwise at or after it (a node owns its own id).
fn owner_of(members: &[Id], key: Id) -> Id {
    let i = members.partition_point(|&m| m < key);
    if i == members.len() {
        members[0]
    } else {
        members[i]
    }
}

/// Runs one churn experiment end to end.
///
/// # Panics
/// Panics on configurations the engine cannot replay: fewer than two
/// initial nodes, a schedule that drains the network below two
/// members, or internal protocol invariants breaking.
#[must_use]
pub fn run_churn(cfg: &ChurnExperimentConfig) -> ChurnReport {
    run_churn_impl(cfg, None).0
}

/// [`run_churn`] with observability on: the network's metric registry
/// is enabled for the whole run and — when `trace_capacity > 0` — a
/// bounded [`Tracer`] records per-event spans (`churn.join`,
/// `churn.leave`, `churn.repair`, …) with the per-lookup / per-join
/// spans from the transport nested beneath them.
///
/// The returned [`ChurnReport`] is bit-identical to what [`run_churn`]
/// produces for the same configuration — instrumentation only reads.
///
/// # Panics
/// As [`run_churn`].
#[must_use]
pub fn run_churn_traced(
    cfg: &ChurnExperimentConfig,
    trace_capacity: usize,
) -> (ChurnReport, ChurnObs) {
    let (report, obs) = run_churn_impl(cfg, Some(trace_capacity));
    (report, obs.expect("obs requested"))
}

#[allow(clippy::too_many_lines)] // one linear replay loop reads better unsplit
fn run_churn_impl(
    cfg: &ChurnExperimentConfig,
    obs: Option<usize>,
) -> (ChurnReport, Option<ChurnObs>) {
    let churn = cfg.churn;
    let initial = churn.initial_nodes as usize;
    let pool = initial + churn.arrivals as usize;
    assert!(initial >= 2, "churn engine needs at least two initial nodes");

    // World: topology, placement, landmark RTTs and ids for the *full*
    // pool, so arrivals are measurable before they join.
    let exp = Experiment::build(ExperimentConfig {
        kind: cfg.kind,
        nodes: pool,
        requests: 0,
        hieras: cfg.hieras.clone(),
        seed: churn.seed,
        rtt_noise: 0.0,
    });
    let space = IdSpace::full();
    let index_of: HashMap<Id, u32> =
        exp.ids.iter().enumerate().map(|(i, &id)| (id, i as u32)).collect();
    let mut landmarks = exp.landmarks.clone();

    // HIERAS network over the initial members only, born stabilized.
    let init_ids: Arc<[Id]> = exp.ids[..initial].to_vec().into();
    let init_orders = exp.orders[..initial].to_vec();
    let oracle = HierasOracle::build(space, init_ids, init_orders, cfg.hieras.clone())
        .expect("initial subset of a validated configuration");
    let mut net = SimNet::from_oracle(&oracle, &landmarks, |a, b| {
        u64::from(exp.peer_latency(index_of[&a], index_of[&b]))
    });
    net.set_churn_params(cfg.rto_ms, cfg.ttl);
    if let Some(cap) = obs {
        net.enable_registry();
        if cap > 0 {
            net.set_tracer(Tracer::bounded(cap));
        }
    }

    // Chord baseline over the same membership, converged through its
    // own protocol (the TR completes joins via stabilization).
    let mut sorted_init: Vec<Id> = exp.ids[..initial].to_vec();
    sorted_init.sort_unstable();
    let mut chord = DynChord::new(space, cfg.succ_list_len);
    chord.create(sorted_init[0]).expect("fresh network");
    for &id in &sorted_init[1..] {
        chord.join(id, sorted_init[0]).expect("bootstrap ring is consistent");
        chord.stabilize_round();
        chord.stabilize_round();
    }
    chord.fix_all_fingers();
    assert!(chord.ring_consistent(), "chord bootstrap failed to converge");
    chord.reset_stats();

    let depth = cfg.hieras.depth;
    let mut h = AlgoChurnStats::new(depth);
    let mut c = AlgoChurnStats::new(1);
    let mut counts = EventCounts::default();
    let mut fix_rounds = vec![0u64; depth];
    let mut lookup_no = 0u64;
    // Windowed lookup telemetry (obs runs only; the plain run stays
    // untouched). The churn engine has no hop-capture path, so the
    // flight recorder stays off (k = 0).
    let mut tele = obs.map(|_| TelemetryShard::new(0));
    let seed = churn.seed;
    let schedule = churn.schedule();

    let measure = |landmarks: &[u32], peer: usize| -> Vec<u16> {
        landmarks.iter().map(|&lm| exp.lat.latency(lm, exp.router_of[peer])).collect()
    };

    for (ev_no, ev) in schedule.events.iter().enumerate() {
        match ev.kind {
            ChurnEventKind::Join { node } => {
                let id = exp.ids[node as usize];
                let rtts = measure(&landmarks, node as usize);
                let t_now = net.now();
                let span = net.tracer_mut().map(|t| {
                    t.open(t_now, "churn.join", &[("ev", ev_no as u64), ("node", id.raw())])
                });
                let mut joined_via = None;
                for attempt in 0..3u64 {
                    let members = net.sorted_ids();
                    let r = splitmix64(seed ^ 0xb007_57a9 ^ ((ev_no as u64) << 8) ^ attempt);
                    let bootstrap = members[r as usize % members.len()];
                    let before = snap(&net);
                    let outcome = net.try_join(id, bootstrap, &rtts);
                    let d = delta(&net, before);
                    h.maint[0].join_msgs += d.total;
                    h.maint[0].timeout_msgs += d.timeouts;
                    if outcome.is_some() {
                        joined_via = Some(bootstrap);
                        break;
                    }
                    counts.join_retries += 1;
                    if let Some(r) = net.registry_mut() {
                        r.inc("churn.join.retry");
                    }
                }
                match joined_via {
                    Some(bootstrap) => {
                        let mut ok = false;
                        for _ in 0..4 {
                            match chord.join(id, bootstrap) {
                                Ok(()) => {
                                    ok = true;
                                    break;
                                }
                                Err(DynError::LookupFailed(_)) => chord.stabilize_round(),
                                Err(e) => unreachable!("chord join via live bootstrap: {e}"),
                            }
                        }
                        if ok {
                            // Two immediate rounds complete the splice
                            // (notify + predecessor adoption) so the
                            // newcomer is visible to lookups — HIERAS's
                            // choreography splices synchronously, and
                            // the membership ground truth includes the
                            // node from this instant.
                            chord.stabilize_round();
                            chord.stabilize_round();
                            counts.joins += 1;
                        } else {
                            // Chord could not place the node; keep the
                            // two memberships identical by undoing the
                            // HIERAS join.
                            net.fail_node(id);
                            counts.join_aborts += 1;
                        }
                    }
                    None => counts.join_aborts += 1,
                }
                let joined = u64::from(joined_via.is_some());
                let t_now = net.now();
                if let Some(t) = net.tracer_mut() {
                    if let Some(s) = span {
                        t.close(t_now, s, &[("joined", joined)]);
                    }
                }
                if let Some(r) = net.registry_mut() {
                    r.inc(if joined == 1 { "churn.join.ok" } else { "churn.join.abort" });
                }
            }
            ChurnEventKind::Leave { node } => {
                let id = exp.ids[node as usize];
                if net.alive(id) {
                    let t_now = net.now();
                    let span = net.tracer_mut().map(|t| {
                        t.open(t_now, "churn.leave", &[("ev", ev_no as u64), ("node", id.raw())])
                    });
                    let before = snap(&net);
                    net.leave_node(id);
                    let d = delta(&net, before);
                    h.maint[0].repair_msgs += d.total;
                    h.maint[0].timeout_msgs += d.timeouts;
                    let t_now = net.now();
                    if let Some(t) = net.tracer_mut() {
                        if let Some(s) = span {
                            t.close(t_now, s, &[("messages", d.total)]);
                        }
                    }
                    if let Some(r) = net.registry_mut() {
                        r.inc("churn.leave");
                    }
                    chord.leave(id).expect("memberships are mirrored");
                    counts.leaves += 1;
                } else {
                    counts.skipped += 1;
                }
            }
            ChurnEventKind::Fail { node } => {
                let id = exp.ids[node as usize];
                if net.alive(id) {
                    net.fail_node(id);
                    let t_now = net.now();
                    if let Some(t) = net.tracer_mut() {
                        t.instant(t_now, "churn.fail", &[
                            ("ev", ev_no as u64),
                            ("node", id.raw()),
                        ]);
                    }
                    if let Some(r) = net.registry_mut() {
                        r.inc("churn.fail");
                    }
                    chord.fail(id).expect("memberships are mirrored");
                    counts.fails += 1;
                } else {
                    counts.skipped += 1;
                }
            }
        }
        assert!(net.len() >= 2, "churn schedule drained the network");

        // Application lookups, scored against the live ground truth.
        for _ in 0..cfg.lookups_per_event {
            lookup_no += 1;
            let members = net.sorted_ids();
            let src =
                members[splitmix64(seed ^ 0x5eed_0502 ^ lookup_no) as usize % members.len()];
            let key = Id(splitmix64(seed ^ 0x0ca7_10ad ^ lookup_no));
            let truth = owner_of(&members, key);

            let before = snap(&net);
            let rl = net.try_lookup(src, key, cfg.lookup_attempts, cfg.backoff_ms);
            let d = delta(&net, before);
            h.maint[0].lookup_msgs += d.total;
            h.maint[0].timeout_msgs += d.timeouts;
            h.lookups += 1;
            h.attempts += u64::from(rl.attempts);
            let win = net.now() / CHURN_WINDOW_MS;
            if let Some(t) = tele.as_mut() {
                if rl.attempts > 1 {
                    t.retries(win, u64::from(rl.attempts) - 1);
                }
            }
            match rl.outcome {
                Some(o) if o.owner == truth => {
                    if let Some(t) = tele.as_mut() {
                        t.lookup(win, o.latency_ms);
                    }
                    h.routing.record(Sample {
                        hops: o.hops,
                        lower_hops: 0,
                        latency_ms: u32::try_from(o.latency_ms).unwrap_or(u32::MAX),
                        lower_latency_ms: 0,
                    });
                }
                Some(_) => {
                    if let Some(t) = tele.as_mut() {
                        t.lookup_failed(win);
                    }
                    h.wrong_owner += 1;
                }
                None => {
                    if let Some(t) = tele.as_mut() {
                        t.lookup_failed(win);
                    }
                    h.unresolved += 1;
                }
            }

            c.lookups += 1;
            c.attempts += 1;
            match chord.find_successor_traced(src, key) {
                Ok(t) if t.owner == truth => {
                    let mut lat = t.timeouts * cfg.rto_ms;
                    for w in t.path.windows(2) {
                        lat += u64::from(exp.peer_latency(index_of[&w[0]], index_of[&w[1]]));
                    }
                    c.routing.record(Sample {
                        hops: (t.path.len() - 1) as u32,
                        lower_hops: 0,
                        latency_ms: u32::try_from(lat).unwrap_or(u32::MAX),
                        lower_latency_ms: 0,
                    });
                }
                Ok(_) => c.wrong_owner += 1,
                Err(_) => c.unresolved += 1,
            }
        }

        // Maintenance on its cadence: per-layer failure detection,
        // stabilization and finger repair for HIERAS; the TR rounds
        // for Chord.
        if cfg.maintenance_every > 0
            && (ev_no as u64 + 1) % u64::from(cfg.maintenance_every) == 0
        {
            let t_now = net.now();
            let repair_span = net.tracer_mut().map(|t| {
                t.open(t_now, "churn.repair", &[("ev", ev_no as u64)])
            });
            let repair_before = snap(&net);
            for layer in 1..=depth as u8 {
                let li = layer as usize - 1;
                let before = snap(&net);
                net.check_predecessors_layer(layer);
                net.stabilize_layer(layer);
                let d = delta(&net, before);
                h.maint[li].stabilize_msgs += d.total;
                h.maint[li].timeout_msgs += d.timeouts;

                let before = snap(&net);
                net.fix_fingers_layer(layer, fix_rounds[li]);
                fix_rounds[li] += 1;
                let d = delta(&net, before);
                h.maint[li].fix_finger_msgs += d.total;
                h.maint[li].timeout_msgs += d.timeouts;
            }
            let d = delta(&net, repair_before);
            let t_now = net.now();
            if let Some(t) = net.tracer_mut() {
                if let Some(s) = repair_span {
                    t.close(t_now, s, &[("messages", d.total), ("timeouts", d.timeouts)]);
                }
            }
            if let Some(r) = net.registry_mut() {
                r.inc("churn.repair.rounds");
            }
            chord.stabilize_round();
            chord.fix_fingers_round();
        }

        // Landmark death: swap in the backup measurement point and
        // re-bin every live node against the new RTT vectors.
        if let Some(lf) = cfg.landmark_fail {
            if ev_no as u64 + 1 == u64::from(lf.after_event) && !landmarks.is_empty() {
                let li = lf.landmark as usize % landmarks.len();
                landmarks[li] = exp.router_of[pool - 1];
                let t_now = net.now();
                let rebin_span = net.tracer_mut().map(|t| {
                    t.open(t_now, "churn.rebin", &[("ev", ev_no as u64)])
                });
                let rebinned_before = counts.rebinned;
                let before = snap(&net);
                for id in net.sorted_ids() {
                    let peer = index_of[&id] as usize;
                    let rtts = measure(&landmarks, peer);
                    counts.rebinned += net.rebin_node(id, &rtts) as u64;
                }
                let d = delta(&net, before);
                let lowest = depth.saturating_sub(1);
                h.maint[lowest].repair_msgs += d.total;
                h.maint[lowest].timeout_msgs += d.timeouts;
                let moved = counts.rebinned - rebinned_before;
                let t_now = net.now();
                if let Some(t) = net.tracer_mut() {
                    if let Some(s) = rebin_span {
                        t.close(t_now, s, &[("moved", moved), ("messages", d.total)]);
                    }
                }
                if let Some(r) = net.registry_mut() {
                    r.inc_by("churn.rebinned", moved);
                }
            }
        }

        // Domain-correlated failure: a whole Transit-Stub failure
        // domain (site power cut / uplink loss) dies at one instant.
        // Every live peer attached to the most-populated domain fails
        // silently, back to back, with no maintenance in between — the
        // repair bill lands on the rounds that follow.
        if let Some(df) = cfg.domain_fail {
            if ev_no as u64 + 1 == u64::from(df.after_event) {
                let mut by_domain: HashMap<u32, Vec<Id>> = HashMap::new();
                for id in net.sorted_ids() {
                    let router = exp.router_of[index_of[&id] as usize];
                    by_domain.entry(exp.topo.domain_of(router)).or_default().push(id);
                }
                // Deterministic victim: most live peers, lowest domain
                // id on ties; capped so at least two peers survive.
                let victim = by_domain
                    .iter()
                    .max_by_key(|(dom, peers)| (peers.len(), u32::MAX - **dom))
                    .map(|(dom, _)| *dom);
                if let Some(dom) = victim {
                    let doomed = &by_domain[&dom];
                    let survivors = net.len() - doomed.len();
                    let kill: &[Id] =
                        if survivors >= 2 { doomed } else { &doomed[..net.len() - 2] };
                    let t_now = net.now();
                    let span = net.tracer_mut().map(|t| {
                        t.open(t_now, "churn.domain_fail", &[
                            ("ev", ev_no as u64),
                            ("domain", u64::from(dom)),
                        ])
                    });
                    for &id in kill {
                        net.fail_node(id);
                        chord.fail(id).expect("memberships are mirrored");
                        counts.domain_killed += 1;
                    }
                    let t_now = net.now();
                    if let Some(t) = net.tracer_mut() {
                        if let Some(s) = span {
                            t.close(t_now, s, &[("killed", kill.len() as u64)]);
                        }
                    }
                    if let Some(r) = net.registry_mut() {
                        r.inc_by("churn.domain_fail.killed", kill.len() as u64);
                    }
                }
            }
        }
    }

    c.maint = vec![chord.stats()];
    let pop_end = net.len();
    if let Some(r) = net.registry_mut() {
        r.gauge_set("churn.population.start", initial as i64);
        r.gauge_set("churn.population.end", pop_end as i64);
    }
    let traffic = net.stats();
    let report = ChurnReport {
        turnover: schedule.turnover(churn.initial_nodes),
        events: counts,
        population_start: initial,
        population_end: pop_end,
        messages_total: traffic.total,
        timeouts_total: traffic.timeouts,
        drops_total: traffic.drops,
        hieras: h,
        chord: c,
    };
    let obs_out = obs.map(|_| ChurnObs {
        registry: net.take_registry().expect("registry enabled when obs requested"),
        tracer: net.take_tracer(),
        timeseries: tele
            .take()
            .expect("telemetry shard runs whenever obs does")
            .into_report("sim", CHURN_WINDOW_MS, None),
    });
    (report, obs_out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ChurnExperimentConfig;
    use hieras_sim::{ChurnConfig, Lifetime};

    fn small_cfg(graceful: f64, seed: u64) -> ChurnExperimentConfig {
        ChurnExperimentConfig::standard(ChurnConfig {
            initial_nodes: 60,
            arrivals: 10,
            inter_arrival: Lifetime::Fixed { ms: 400 },
            lifetime: Lifetime::Exponential { mean_ms: 40_000.0 },
            graceful_fraction: graceful,
            horizon_ms: 10_000,
            seed,
        })
    }

    #[test]
    fn owner_of_picks_clockwise_successor() {
        let members = [Id(10), Id(20), Id(30)];
        assert_eq!(owner_of(&members, Id(5)), Id(10));
        assert_eq!(owner_of(&members, Id(10)), Id(10));
        assert_eq!(owner_of(&members, Id(11)), Id(20));
        assert_eq!(owner_of(&members, Id(31)), Id(10), "wraps to the minimum");
    }

    #[test]
    fn same_seed_same_report() {
        let cfg = small_cfg(0.5, 11);
        let a = run_churn(&cfg);
        let b = run_churn(&cfg);
        assert_eq!(a, b, "the engine must be a pure function of its config");
        assert!(a.hieras.lookups > 0);
        assert_eq!(a.hieras.lookups, a.chord.lookups, "identical workload for both");
    }

    #[test]
    fn different_seed_different_report() {
        let a = run_churn(&small_cfg(0.5, 11));
        let b = run_churn(&small_cfg(0.5, 12));
        assert_ne!(a, b);
    }

    #[test]
    fn attribution_covers_every_message() {
        let r = run_churn(&small_cfg(0.3, 7));
        assert_eq!(
            r.hieras.maint_total().total(),
            r.messages_total + r.timeouts_total,
            "per-layer attribution must account for all traffic"
        );
    }

    #[test]
    fn traced_run_matches_untraced_and_reconciles() {
        let cfg = small_cfg(0.5, 11);
        let plain = run_churn(&cfg);
        let (traced, obs) = run_churn_traced(&cfg, 1 << 16);
        assert_eq!(plain, traced, "instrumentation must not perturb the run");
        let r = &obs.registry;
        // Event counters mirror the report's accounting.
        assert_eq!(r.counter("churn.join.ok"), traced.events.joins);
        assert_eq!(r.counter("churn.join.abort"), traced.events.join_aborts);
        assert_eq!(r.counter("churn.leave"), traced.events.leaves);
        assert_eq!(r.counter("churn.fail"), traced.events.fails);
        assert_eq!(r.counter("churn.join.retry"), traced.events.join_retries);
        // Every delivered message was counted by kind.
        let delivered: u64 = r
            .counters()
            .filter(|(k, _)| k.starts_with("net.deliver."))
            .map(|(_, v)| v)
            .sum();
        assert_eq!(delivered, traced.messages_total);
        // Timeouts too — including the maintenance-path RTOs charged
        // by the dead-successor scrub and predecessor checks.
        assert_eq!(r.counter("net.timeout"), traced.timeouts_total);
        assert_eq!(r.gauge("churn.population.end"), Some(traced.population_end as i64));
        // Lookup histogram covers every application lookup.
        assert_eq!(
            r.hist("lookup.latency_ms").expect("lookups ran").total()
                + r.counter("lookup.unresolved"),
            traced.hieras.lookups
        );
        // Retry latency is a histogram, not just a counter: one
        // observation per lookup that retried (resolved late or burned
        // the whole budget), so tail inflation is attributable.
        let retried_lookups = r.hist("lookup.retry_wait_ms").map_or(0, |h| h.total());
        assert!(
            r.counter("lookup.retries") >= retried_lookups,
            "each retried lookup carries >= 1 retry"
        );
        if r.counter("lookup.retries") > 0 {
            assert!(retried_lookups > 0, "retries happened but no retry-wait was observed");
            assert!(
                r.hist("lookup.retry_wait_ms").expect("observed").max() > 0,
                "retry waits include backoff time"
            );
        }
        let t = obs.tracer.expect("tracing was on");
        assert!(!t.is_empty());
        // Windowed telemetry reconciles exactly with the aggregates:
        // every lookup lands in one window, failures split into wrong
        // owner + unresolved, retries match the attempt surplus, and
        // the per-window success histograms merge to the same total
        // the run-level routing stats carry.
        let ts = &obs.timeseries;
        assert_eq!(ts.meta.mode, "sim");
        assert_eq!(ts.meta.window_ms, CHURN_WINDOW_MS);
        assert!(ts.window_count() > 1, "a 10 s horizon spans several 1 s windows");
        assert_eq!(ts.total_lookups(), traced.hieras.lookups);
        let failures: u64 = ts.windows.iter().map(|w| w.failures).sum();
        assert_eq!(failures, traced.hieras.wrong_owner + traced.hieras.unresolved);
        let retries: u64 = ts.windows.iter().map(|w| w.retries).sum();
        assert_eq!(retries, traced.hieras.attempts - traced.hieras.lookups);
        let mut merged = hieras_obs::LogHistogram::default();
        for w in &ts.windows {
            merged.merge(&w.latency);
        }
        assert_eq!(merged.total(), traced.hieras.lookups - failures);
        assert_eq!(
            merged.total(),
            traced.hieras.routing.requests,
            "windowed latencies cover exactly the successful lookups"
        );
        // And the stream format round-trips bit-identically.
        let text = ts.to_jsonl();
        let back = TimeSeriesReport::parse_jsonl(&text).expect("own stream parses");
        assert_eq!(back.to_jsonl(), text);
    }

    #[test]
    fn landmark_death_rebins_some_nodes() {
        let mut cfg = small_cfg(1.0, 21);
        cfg.landmark_fail = Some(crate::LandmarkFail { after_event: 2, landmark: 0 });
        let r = run_churn(&cfg);
        // The backup measurement point sits elsewhere in the topology,
        // so at least some nodes change bins; repair traffic was paid
        // in the lowest layer.
        assert!(r.events.rebinned > 0, "no node moved rings after landmark death");
        assert!(r.hieras.maint.last().expect("depth >= 1").repair_msgs > 0);
    }

    #[test]
    fn domain_death_kills_a_site_at_one_instant() {
        let mut cfg = small_cfg(1.0, 33);
        let base = run_churn(&cfg);
        assert_eq!(base.events.domain_killed, 0, "no cut without a DomainFail");
        cfg.domain_fail = Some(crate::DomainFail { after_event: 3 });
        let r = run_churn(&cfg);
        // A whole stub domain's worth of correlated deaths: more than
        // one peer went down in the same instant, and the network
        // stayed serviceable (the engine asserts `len >= 2` throughout,
        // and later lookups still resolve).
        assert!(r.events.domain_killed > 1, "a site cut must kill several peers at once");
        // Membership arithmetic: the cut's victims are accounted
        // separately from the schedule's own departures.
        assert_eq!(
            r.population_end as u64,
            60 + r.events.joins - r.events.leaves - r.events.fails - r.events.domain_killed
        );
        assert!(r.hieras.lookups == base.hieras.lookups, "same schedule, same lookup count");
        // Correlated loss is strictly harsher than the independent
        // baseline for at least one of the failure counters.
        let failed = r.hieras.wrong_owner + r.hieras.unresolved + r.hieras.attempts;
        let failed_base =
            base.hieras.wrong_owner + base.hieras.unresolved + base.hieras.attempts;
        assert!(failed >= failed_base, "a site cut cannot make routing healthier");
    }
}
