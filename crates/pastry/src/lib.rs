//! Pastry baseline with proximity neighbour selection.
//!
//! The HIERAS paper positions Pastry (Rowstron & Druschel, Middleware
//! 2001) as the topology-aware alternative: its routing tables prefer
//! topologically nearby nodes, at the price of "complex data
//! structures" (§1). The paper's §6 lists a HIERAS-vs-Pastry
//! comparison as future work — this crate supplies the baseline so the
//! `compare-pastry` bench target can run it.
//!
//! Oracle-mode implementation (same philosophy as
//! `hieras_chord::ChordOracle`): tables are built from the full
//! membership.
//!
//! * Identifiers are read as 16 hexadecimal digits (base `2^4`,
//!   Pastry's default `b = 4`, most significant digit first).
//! * **Routing table**: row `l`, column `d` holds a node sharing an
//!   `l`-digit prefix with the owner and having digit `d` next —
//!   chosen as the *topologically closest* such node (proximity
//!   neighbour selection), via a caller-supplied latency function.
//! * **Leaf set**: the `L/2` numerically closest nodes on each side
//!   (`L = 16`).
//! * **Routing**: deliver within the leaf set if possible, otherwise
//!   follow the routing-table entry for the first differing digit;
//!   if that entry is empty, forward to any known node that shares at
//!   least as long a prefix and is numerically closer (the "rare
//!   case" rule of the Pastry paper).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use hieras_id::{Id, Key};
use hieras_rt::{FromJson, Json, JsonError, ToJson};
use std::sync::Arc;

/// Digits per id: 64-bit ids, base-16 → 16 digits.
pub const DIGITS: usize = 16;
/// Base of the digit alphabet (`2^b`, b = 4).
pub const BASE: usize = 16;
/// Leaf-set size (L/2 = 8 per side).
pub const LEAF_EACH_SIDE: usize = 8;

/// Errors building a Pastry network.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum PastryBuildError {
    /// No nodes supplied.
    Empty,
    /// Duplicate identifier.
    DuplicateId(Id),
}

impl core::fmt::Display for PastryBuildError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            PastryBuildError::Empty => write!(f, "Pastry needs at least one node"),
            PastryBuildError::DuplicateId(id) => write!(f, "duplicate node id {id}"),
        }
    }
}

impl std::error::Error for PastryBuildError {}

/// The hop path of one Pastry lookup (global node indices).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PastryPath {
    /// Visited nodes, origin first, key root last.
    pub path: Vec<u32>,
}

impl PastryPath {
    /// Number of hops.
    #[must_use]
    pub fn hops(&self) -> usize {
        self.path.len().saturating_sub(1)
    }

    /// The node the key resolved to.
    #[must_use]
    pub fn owner(&self) -> u32 {
        *self.path.last().expect("path never empty")
    }
}

impl ToJson for PastryPath {
    fn to_json(&self) -> Json {
        Json::obj([("path", self.path.to_json())])
    }
}

impl FromJson for PastryPath {
    fn from_json(v: &Json) -> Result<Self, JsonError> {
        let r = PastryPath { path: v.field("path")? };
        if r.path.is_empty() {
            return Err(JsonError("Pastry path must be non-empty".into()));
        }
        Ok(r)
    }
}

/// Digit `l` (0 = most significant) of an id in base 16.
#[inline]
#[must_use]
pub fn digit(id: Id, l: usize) -> usize {
    debug_assert!(l < DIGITS);
    ((id.raw() >> ((DIGITS - 1 - l) * 4)) & 0xf) as usize
}

/// Length of the shared hex-digit prefix of two ids.
#[inline]
#[must_use]
pub fn shared_prefix(a: Id, b: Id) -> usize {
    let x = a.raw() ^ b.raw();
    if x == 0 {
        DIGITS
    } else {
        (x.leading_zeros() / 4) as usize
    }
}


/// Circular numerical distance on the 2^64 id circle (0 for equality).
#[inline]
#[must_use]
pub fn circular_distance(a: Id, b: Id) -> u64 {
    let d = a.raw().abs_diff(b.raw());
    if d == 0 {
        0
    } else {
        d.min((u64::MAX - d) + 1)
    }
}

/// An oracle-mode Pastry network.
#[derive(Debug, Clone)]
pub struct PastryOracle {
    ids: Arc<[Id]>,
    /// Node indices sorted by id (for leaf sets and key roots).
    sorted: Box<[u32]>,
    /// `tables[n][l * BASE + d]`: routing entry, `u32::MAX` = empty.
    tables: Vec<Box<[u32]>>,
    /// `leaves[n]`: the leaf set of node `n` (node indices).
    leaves: Vec<Box<[u32]>>,
}

impl PastryOracle {
    /// Builds the network. `latency(a, b)` is the proximity metric used
    /// to pick routing-table entries (pass `|_, _| 0` for
    /// topology-oblivious tables).
    ///
    /// # Errors
    /// See [`PastryBuildError`].
    pub fn build(
        ids: Arc<[Id]>,
        mut latency: impl FnMut(u32, u32) -> u16,
    ) -> Result<Self, PastryBuildError> {
        let n = ids.len();
        if n == 0 {
            return Err(PastryBuildError::Empty);
        }
        let mut sorted: Vec<u32> = (0..n as u32).collect();
        sorted.sort_unstable_by_key(|&i| ids[i as usize]);
        for w in sorted.windows(2) {
            if ids[w[0] as usize] == ids[w[1] as usize] {
                return Err(PastryBuildError::DuplicateId(ids[w[0] as usize]));
            }
        }
        // Bucket nodes by (prefix_len, next_digit) is equivalent to a
        // trie walk; build per-node tables by scanning candidates per
        // bucket. Buckets keyed by the l-digit prefix value.
        use std::collections::HashMap;
        // prefix value (l digits) -> nodes having that prefix, per l.
        let mut buckets: Vec<HashMap<u64, Vec<u32>>> = Vec::with_capacity(DIGITS);
        for l in 0..DIGITS {
            let mut m: HashMap<u64, Vec<u32>> = HashMap::new();
            for i in 0..n as u32 {
                let shift = (DIGITS - l) * 4;
                let prefix =
                    if shift == 64 { 0 } else { ids[i as usize].raw() >> shift };
                m.entry(prefix).or_default().push(i);
            }
            buckets.push(m);
        }
        let mut tables = Vec::with_capacity(n);
        for me in 0..n as u32 {
            let mut table = vec![u32::MAX; DIGITS * BASE].into_boxed_slice();
            for l in 0..DIGITS {
                let shift = (DIGITS - l) * 4;
                let my_prefix =
                    if shift == 64 { 0 } else { ids[me as usize].raw() >> shift };
                let Some(cands) = buckets[l].get(&my_prefix) else { continue };
                if cands.len() <= 1 {
                    // Only me under this prefix: all deeper rows empty too.
                    break;
                }
                for &c in cands {
                    if c == me {
                        continue;
                    }
                    let d = digit(ids[c as usize], l);
                    if d == digit(ids[me as usize], l) {
                        continue; // belongs to a deeper row
                    }
                    let slot = &mut table[l * BASE + d];
                    // Proximity neighbour selection: keep the closest.
                    if *slot == u32::MAX || latency(me, c) < latency(me, *slot) {
                        *slot = c;
                    }
                }
            }
            tables.push(table);
        }
        // Leaf sets from the sorted order.
        let mut rank = vec![0u32; n];
        for (r, &i) in sorted.iter().enumerate() {
            rank[i as usize] = r as u32;
        }
        let mut leaves = Vec::with_capacity(n);
        for me in 0..n {
            let r = rank[me] as usize;
            let mut set = Vec::with_capacity(2 * LEAF_EACH_SIDE);
            for k in 1..=LEAF_EACH_SIDE.min(n - 1) {
                set.push(sorted[(r + k) % n]);
                set.push(sorted[(r + n - k) % n]);
            }
            set.sort_unstable();
            set.dedup();
            set.retain(|&x| x != me as u32);
            leaves.push(set.into_boxed_slice());
        }
        Ok(PastryOracle { ids, sorted: sorted.into_boxed_slice(), tables, leaves })
    }

    /// Number of nodes.
    #[must_use]
    pub fn len(&self) -> usize {
        self.ids.len()
    }

    /// Never empty by construction.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        false
    }

    /// The node numerically closest to `key` (ties: the smaller id) —
    /// Pastry's key root and the routing ground truth.
    #[must_use]
    pub fn owner_of(&self, key: Key) -> u32 {
        let pos = self
            .sorted
            .binary_search_by_key(&key, |&i| self.ids[i as usize])
            .unwrap_or_else(|p| p);
        let n = self.sorted.len();
        let lo = self.sorted[(pos + n - 1) % n];
        let hi = self.sorted[pos % n];
        let dist = |i: u32| circular_distance(self.ids[i as usize], key);
        match dist(lo).cmp(&dist(hi)) {
            core::cmp::Ordering::Less => lo,
            core::cmp::Ordering::Greater => hi,
            core::cmp::Ordering::Equal => {
                if self.ids[lo as usize] < self.ids[hi as usize] {
                    lo
                } else {
                    hi
                }
            }
        }
    }

    /// A node's routing-table entry (row `l`, digit `d`), if present.
    #[must_use]
    pub fn table_entry(&self, node: u32, l: usize, d: usize) -> Option<u32> {
        let e = self.tables[node as usize][l * BASE + d];
        (e != u32::MAX).then_some(e)
    }

    /// A node's leaf set.
    #[must_use]
    pub fn leaf_set(&self, node: u32) -> &[u32] {
        &self.leaves[node as usize]
    }

    /// Routes `key` from `src` with the Pastry forwarding rule.
    ///
    /// # Panics
    /// Panics if routing fails to converge (corrupt tables).
    #[must_use]
    pub fn route(&self, src: u32, key: Key) -> PastryPath {
        let owner = self.owner_of(key);
        let mut path = vec![src];
        let mut cur = src;
        let cap = DIGITS * 4 + self.ids.len();
        let dist = |i: u32| circular_distance(self.ids[i as usize], key);
        while cur != owner {
            assert!(path.len() <= cap, "Pastry routing did not converge");
            // Leaf-set delivery: if the owner is in our leaf set (or is
            // us), go straight there.
            let next = if self.leaves[cur as usize].contains(&owner) {
                owner
            } else {
                let l = shared_prefix(self.ids[cur as usize], key);
                let d = digit(key, l);
                match self.table_entry(cur, l, d) {
                    Some(e) => e,
                    None => {
                        // Rare case: any known node with >= prefix and
                        // strictly smaller numerical distance.
                        let candidates: Vec<u32> = self.leaves[cur as usize]
                            .iter()
                            .chain(
                                self.tables[cur as usize]
                                    .iter()
                                    .filter(|&&e| e != u32::MAX),
                            )
                            .copied()
                            .collect();
                        let cur_d = dist(cur);
                        candidates
                            .iter()
                            .copied()
                            .filter(|&c| {
                                shared_prefix(self.ids[c as usize], key) >= l
                                    && dist(c) < cur_d
                            })
                            .min_by_key(|&c| dist(c))
                            .unwrap_or_else(|| {
                                // Second stage: the leaf set always holds the
                                // sorted neighbours, one of which is strictly
                                // numerically closer whenever cur != owner.
                                candidates
                                    .iter()
                                    .copied()
                                    .filter(|&c| dist(c) < cur_d)
                                    .min_by_key(|&c| dist(c))
                                    .expect("a sorted neighbour is always closer")
                            })
                    }
                }
            };
            path.push(next);
            cur = next;
        }
        PastryPath { path }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ids(n: u64) -> Arc<[Id]> {
        (0..n).map(|i| Id::hash_of(&i.to_be_bytes())).collect::<Vec<_>>().into()
    }

    #[test]
    fn digit_and_prefix_helpers() {
        let a = Id(0xfedc_ba98_7654_3210);
        assert_eq!(digit(a, 0), 0xf);
        assert_eq!(digit(a, 1), 0xe);
        assert_eq!(digit(a, 15), 0x0);
        assert_eq!(shared_prefix(a, a), DIGITS);
        assert_eq!(shared_prefix(a, Id(0xfedc_ba98_7654_3211)), 15);
        assert_eq!(shared_prefix(a, Id(0x0edc_ba98_7654_3210)), 0);
    }

    #[test]
    fn build_rejects_empty_and_duplicates() {
        assert_eq!(
            PastryOracle::build(Vec::<Id>::new().into(), |_, _| 0).unwrap_err(),
            PastryBuildError::Empty
        );
        let dup: Arc<[Id]> = vec![Id(5), Id(5)].into();
        assert_eq!(
            PastryOracle::build(dup, |_, _| 0).unwrap_err(),
            PastryBuildError::DuplicateId(Id(5))
        );
    }

    #[test]
    fn owner_is_numerically_closest() {
        let set: Arc<[Id]> = vec![Id(100), Id(200), Id(u64::MAX - 50)].into();
        let p = PastryOracle::build(set, |_, _| 0).unwrap();
        assert_eq!(p.owner_of(Id(120)), 0); // 100 is closer than 200
        assert_eq!(p.owner_of(Id(180)), 1);
        assert_eq!(p.owner_of(Id(u64::MAX - 10)), 2);
        // Wraparound: 20 is 70 from MAX-50 (through 0) vs 80 from 100.
        assert_eq!(p.owner_of(Id(20)), 2);
    }

    #[test]
    fn routing_reaches_owner_from_everywhere() {
        let p = PastryOracle::build(ids(300), |_, _| 0).unwrap();
        for k in 0..100u64 {
            let key = Id::hash_of(format!("k{k}").as_bytes());
            let owner = p.owner_of(key);
            for src in (0..300u32).step_by(37) {
                let r = p.route(src, key);
                assert_eq!(r.owner(), owner, "key {k} src {src}");
            }
        }
    }

    #[test]
    fn hops_are_logarithmic_in_digits() {
        let p = PastryOracle::build(ids(1000), |_, _| 0).unwrap();
        let mut max_hops = 0;
        for k in 0..200u64 {
            let key = Id::hash_of(&k.to_le_bytes());
            max_hops = max_hops.max(p.route((k % 1000) as u32, key).hops());
        }
        // log16(1000) ≈ 2.5; leaf set finishes the tail. Generous bound:
        assert!(max_hops <= 7, "Pastry hops {max_hops} not logarithmic");
    }

    #[test]
    fn proximity_selection_prefers_close_nodes() {
        // Latency = |i - j| over node indices: proximity tables should
        // pick numerically-near *indices* whenever digits allow.
        let set = ids(400);
        let near = PastryOracle::build(set.clone(), |a, b| a.abs_diff(b) as u16).unwrap();
        let far = PastryOracle::build(set, |a, b| 1000 - a.abs_diff(b) as u16).unwrap();
        // Average index distance of populated row-0 entries:
        let avg = |p: &PastryOracle| {
            let mut sum = 0u64;
            let mut cnt = 0u64;
            for n in 0..400u32 {
                for d in 0..BASE {
                    if let Some(e) = p.table_entry(n, 0, d) {
                        sum += u64::from(n.abs_diff(e));
                        cnt += 1;
                    }
                }
            }
            sum as f64 / cnt as f64
        };
        assert!(
            avg(&near) < avg(&far),
            "proximity metric must steer entry choice: {} vs {}",
            avg(&near),
            avg(&far)
        );
    }

    #[test]
    fn leaf_sets_hold_nearest_ids() {
        let set = ids(64);
        let p = PastryOracle::build(set.clone(), |_, _| 0).unwrap();
        let mut sorted: Vec<Id> = set.to_vec();
        sorted.sort_unstable();
        for n in 0..64u32 {
            let leaves = p.leaf_set(n);
            assert!(leaves.len() >= LEAF_EACH_SIDE, "leaf set too small");
            assert!(!leaves.contains(&n));
            // The immediate successor id must be in the leaf set.
            let my = set[n as usize];
            let pos = sorted.binary_search(&my).unwrap();
            let succ = sorted[(pos + 1) % 64];
            let succ_idx = set.iter().position(|&i| i == succ).unwrap() as u32;
            assert!(leaves.contains(&succ_idx), "node {n} missing successor");
        }
    }

    #[test]
    fn single_node_owns_everything() {
        let p = PastryOracle::build(vec![Id(7)].into(), |_, _| 0).unwrap();
        let r = p.route(0, Id(999));
        assert_eq!(r.hops(), 0);
    }

    #[test]
    fn always_terminates_at_numerically_closest() {
        let mut rng = hieras_rt::Rng::seed_from_u64(0x9a57_e7);
        for case in 0..200 {
            let seed: u64 = rng.random_range(0..200u64);
            let n: usize = rng.random_range(2..80usize);
            let set: Arc<[Id]> = (0..n as u64)
                .map(|i| Id::hash_of(&(seed ^ (i << 8)).to_be_bytes()))
                .collect::<Vec<_>>()
                .into();
            let p = PastryOracle::build(set.clone(), |_, _| 0).unwrap();
            let key = Id::hash_of(&seed.to_le_bytes());
            let owner = p.owner_of(key);
            // Brute force the numerically closest (with wraparound).
            let brute = (0..n as u32)
                .min_by_key(|&i| circular_distance(set[i as usize], key))
                .unwrap();
            let dist = |i: u32| circular_distance(set[i as usize], key);
            assert_eq!(dist(owner), dist(brute), "case {case}");
            for src in 0..n as u32 {
                assert_eq!(p.route(src, key).owner(), owner, "case {case} src {src}");
            }
        }
    }
}
