//! Oracle-mode CAN: zone assignment by sequential joins, greedy routing.

use crate::Zone;
use hieras_id::{Id, Sha1};
use hieras_rt::{FromJson, Json, JsonError, Rng, ToJson};

/// Errors building a CAN.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CanBuildError {
    /// No nodes were supplied.
    Empty,
    /// Zero dimensions requested.
    BadDims,
}

impl core::fmt::Display for CanBuildError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            CanBuildError::Empty => write!(f, "CAN needs at least one node"),
            CanBuildError::BadDims => write!(f, "CAN needs at least one dimension"),
        }
    }
}

impl std::error::Error for CanBuildError {}

/// The hop path of one CAN lookup (member indices local to the CAN).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CanRoute {
    /// Visited members, origin first, owner last.
    pub path: Vec<u32>,
}

impl CanRoute {
    /// Number of hops.
    #[must_use]
    pub fn hops(&self) -> usize {
        self.path.len().saturating_sub(1)
    }

    /// The zone owner of the key point.
    #[must_use]
    pub fn owner(&self) -> u32 {
        *self.path.last().expect("path never empty")
    }
}

impl ToJson for CanRoute {
    fn to_json(&self) -> Json {
        Json::obj([("path", self.path.to_json())])
    }
}

impl FromJson for CanRoute {
    fn from_json(v: &Json) -> Result<Self, JsonError> {
        let r = CanRoute { path: v.field("path")? };
        if r.path.is_empty() {
            return Err(JsonError("CAN route path must be non-empty".into()));
        }
        Ok(r)
    }
}

/// A d-dimensional CAN over an arbitrary membership.
///
/// Members are identified by *positions* `0..len` in the order given
/// at build time; callers keep their own mapping to global node
/// indices (exactly like [`hieras_chord::RingView`] does for Chord
/// rings).
#[derive(Debug, Clone)]
pub struct CanOracle {
    dims: usize,
    zones: Vec<Zone>,
    neighbors: Vec<Vec<u32>>,
}

impl CanOracle {
    /// Builds a CAN of `members` nodes by replaying the CAN join
    /// protocol: node 0 owns the whole space; each subsequent node
    /// picks a deterministic pseudo-random point (from `seed`), routes
    /// to the zone containing it, and splits that zone in half.
    ///
    /// # Errors
    /// See [`CanBuildError`].
    pub fn build(members: usize, dims: usize, seed: u64) -> Result<Self, CanBuildError> {
        if members == 0 {
            return Err(CanBuildError::Empty);
        }
        if dims == 0 {
            return Err(CanBuildError::BadDims);
        }
        let mut rng = Rng::seed_from_u64(seed);
        let mut zones: Vec<Zone> = vec![Zone::whole(dims)];
        for _ in 1..members {
            let p: Vec<f64> = (0..dims).map(|_| rng.random_range(0.0..1.0)).collect();
            let target = zones
                .iter()
                .position(|z| z.contains(&p))
                .expect("zones partition the space");
            let (a, b) = zones[target].split();
            // The splitting owner keeps the half containing its center;
            // centres always stay inside their half after a halving.
            let keep_center = zones[target].center();
            if a.contains(&keep_center) {
                zones[target] = a;
                zones.push(b);
            } else {
                zones[target] = b;
                zones.push(a);
            }
        }
        let neighbors = Self::compute_neighbors(&zones);
        Ok(CanOracle { dims, zones, neighbors })
    }

    fn compute_neighbors(zones: &[Zone]) -> Vec<Vec<u32>> {
        let n = zones.len();
        let mut nb = vec![Vec::new(); n];
        for i in 0..n {
            for j in i + 1..n {
                if zones[i].is_neighbor(&zones[j]) {
                    nb[i].push(j as u32);
                    nb[j].push(i as u32);
                }
            }
        }
        nb
    }

    /// Number of members.
    #[must_use]
    pub fn len(&self) -> usize {
        self.zones.len()
    }

    /// Never empty by construction.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        false
    }

    /// Dimensionality.
    #[must_use]
    pub fn dims(&self) -> usize {
        self.dims
    }

    /// The zone of member `m`.
    #[must_use]
    pub fn zone(&self, m: u32) -> &Zone {
        &self.zones[m as usize]
    }

    /// Neighbour set of member `m` (CAN's per-node routing state).
    #[must_use]
    pub fn neighbors(&self, m: u32) -> &[u32] {
        &self.neighbors[m as usize]
    }

    /// Maps a DHT key to its coordinate point: `dims` independent
    /// hashes of the key, each scaled into `[0,1)`.
    #[must_use]
    pub fn key_point(&self, key: Id) -> Vec<f64> {
        (0..self.dims)
            .map(|d| {
                let mut h = Sha1::new();
                h.update(&key.raw().to_be_bytes());
                h.update(&[d as u8]);
                let digest = h.finalize();
                let v = u64::from_be_bytes(digest[..8].try_into().expect("20-byte digest"));
                (v >> 11) as f64 / (1u64 << 53) as f64
            })
            .collect()
    }

    /// The member owning point `p`.
    ///
    /// # Panics
    /// Panics if `p` lies outside the unit box (keys always map inside).
    #[must_use]
    pub fn owner_of_point(&self, p: &[f64]) -> u32 {
        self.zones
            .iter()
            .position(|z| z.contains(p))
            .expect("zones partition the unit space") as u32
    }

    /// Greedy CAN routing from member `start` to the zone containing
    /// `p`: each hop moves to the neighbour whose zone is closest to
    /// the target (strictly closer than the current zone).
    ///
    /// # Panics
    /// Panics if routing stalls — impossible while zones partition the
    /// space and neighbour sets are complete, so a stall means state
    /// corruption.
    #[must_use]
    pub fn route_point(&self, start: u32, p: &[f64]) -> CanRoute {
        let mut path = vec![start];
        let mut cur = start;
        let cap = self.zones.len() + 4;
        while !self.zones[cur as usize].contains(p) {
            assert!(path.len() <= cap, "CAN routing stalled — corrupt neighbour sets");
            let cur_d = self.zones[cur as usize].torus_distance(p);
            let next = self.neighbors[cur as usize]
                .iter()
                .copied()
                .min_by(|&a, &b| {
                    let da = self.zones[a as usize].torus_distance(p);
                    let db = self.zones[b as usize].torus_distance(p);
                    da.partial_cmp(&db).expect("finite distances")
                })
                .expect("every zone has neighbours when len > 1");
            let next_d = self.zones[next as usize].torus_distance(p);
            assert!(
                next_d < cur_d,
                "greedy CAN step made no progress ({cur_d} -> {next_d})"
            );
            path.push(next);
            cur = next;
        }
        CanRoute { path }
    }

    /// Routes a DHT key (hash → point → greedy routing).
    #[must_use]
    pub fn route(&self, start: u32, key: Id) -> CanRoute {
        self.route_point(start, &self.key_point(key))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn build_rejects_degenerate_inputs() {
        assert_eq!(CanOracle::build(0, 2, 1).unwrap_err(), CanBuildError::Empty);
        assert_eq!(CanOracle::build(5, 0, 1).unwrap_err(), CanBuildError::BadDims);
    }

    #[test]
    fn zones_partition_the_space() {
        let can = CanOracle::build(64, 2, 42).unwrap();
        let vol: f64 = (0..64u32).map(|m| can.zone(m).volume()).sum();
        assert!((vol - 1.0).abs() < 1e-9, "volumes sum to {vol}");
        // Random points land in exactly one zone.
        let mut rng = Rng::seed_from_u64(7);
        for _ in 0..500 {
            let p: Vec<f64> = (0..2).map(|_| rng.random_range(0.0..1.0)).collect();
            let owners =
                (0..64u32).filter(|&m| can.zone(m).contains(&p)).count();
            assert_eq!(owners, 1, "point {p:?} owned by {owners} zones");
        }
    }

    #[test]
    fn neighbor_sets_are_symmetric_and_nonempty() {
        let can = CanOracle::build(40, 2, 3).unwrap();
        for m in 0..40u32 {
            assert!(!can.neighbors(m).is_empty());
            for &n in can.neighbors(m) {
                assert!(can.neighbors(n).contains(&m));
            }
        }
    }

    #[test]
    fn routing_reaches_owner_from_every_start() {
        let can = CanOracle::build(50, 2, 11).unwrap();
        for k in 0..30u64 {
            let key = Id(k.wrapping_mul(0x9e37_79b9_7f4a_7c15));
            let p = can.key_point(key);
            let owner = can.owner_of_point(&p);
            for start in 0..50u32 {
                let r = can.route(start, key);
                assert_eq!(r.owner(), owner, "key {k} start {start}");
                assert_eq!(r.path[0], start);
            }
        }
    }

    #[test]
    fn hops_scale_sublinearly() {
        // CAN: expected O(d * n^(1/d)) hops; for n=256, d=2 → ~O(16·)
        let can = CanOracle::build(256, 2, 5).unwrap();
        let mut total = 0usize;
        let mut count = 0usize;
        for k in 0..100u64 {
            let key = Id(k.wrapping_mul(0x517c_c1b7_2722_0a95));
            total += can.route((k % 256) as u32, key).hops();
            count += 1;
        }
        let avg = total as f64 / count as f64;
        assert!(avg < 30.0, "average CAN hops {avg} way above d·n^(1/d)");
        assert!(avg > 1.0);
    }

    #[test]
    fn key_point_is_deterministic_and_in_unit_box() {
        let can = CanOracle::build(8, 3, 2).unwrap();
        let p1 = can.key_point(Id(12345));
        let p2 = can.key_point(Id(12345));
        assert_eq!(p1, p2);
        assert_eq!(p1.len(), 3);
        assert!(p1.iter().all(|&x| (0.0..1.0).contains(&x)));
        assert_ne!(can.key_point(Id(1)), can.key_point(Id(2)));
    }

    #[test]
    fn single_node_owns_everything() {
        let can = CanOracle::build(1, 2, 9).unwrap();
        let r = can.route(0, Id(999));
        assert_eq!(r.hops(), 0);
        assert_eq!(r.owner(), 0);
    }

    #[test]
    fn higher_dims_reduce_hops() {
        let mut avgs = Vec::new();
        for dims in [1usize, 2, 4] {
            let can = CanOracle::build(128, dims, 13).unwrap();
            let total: usize = (0..100u64)
                .map(|k| can.route((k % 128) as u32, Id(k * 7919 + 3)).hops())
                .sum();
            avgs.push(total as f64 / 100.0);
        }
        assert!(avgs[0] > avgs[2], "1-D should need more hops than 4-D: {avgs:?}");
    }
}
