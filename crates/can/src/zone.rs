//! Zones: axis-aligned half-open boxes on the unit torus.
//!
//! All splits are exact binary halvings, so every coordinate is a
//! dyadic rational representable exactly in `f64` — equality tests on
//! borders are therefore exact, not approximate.

use hieras_rt::{FromJson, Json, JsonError, ToJson};

/// An axis-aligned half-open box `[lo, hi)` per dimension inside the
/// unit torus `[0,1)^d`.
#[derive(Debug, Clone, PartialEq)]
pub struct Zone {
    /// Inclusive lower corner.
    pub lo: Vec<f64>,
    /// Exclusive upper corner.
    pub hi: Vec<f64>,
}

impl Zone {
    /// The whole unit space of dimension `dims`.
    ///
    /// # Panics
    /// Panics if `dims == 0`.
    #[must_use]
    pub fn whole(dims: usize) -> Self {
        assert!(dims > 0, "CAN needs at least one dimension");
        Zone { lo: vec![0.0; dims], hi: vec![1.0; dims] }
    }

    /// Dimensionality.
    #[must_use]
    pub fn dims(&self) -> usize {
        self.lo.len()
    }

    /// True if `p` lies in this zone.
    #[must_use]
    pub fn contains(&self, p: &[f64]) -> bool {
        p.iter()
            .zip(self.lo.iter().zip(self.hi.iter()))
            .all(|(&x, (&lo, &hi))| x >= lo && x < hi)
    }

    /// Side length along `dim`.
    #[must_use]
    pub fn extent(&self, dim: usize) -> f64 {
        self.hi[dim] - self.lo[dim]
    }

    /// Volume of the box.
    #[must_use]
    pub fn volume(&self) -> f64 {
        (0..self.dims()).map(|d| self.extent(d)).product()
    }

    /// The center point.
    #[must_use]
    pub fn center(&self) -> Vec<f64> {
        self.lo.iter().zip(self.hi.iter()).map(|(&l, &h)| (l + h) / 2.0).collect()
    }

    /// Splits in half along the longest dimension (ties: lowest index),
    /// returning `(lower_half, upper_half)` — the classic CAN split.
    #[must_use]
    pub fn split(&self) -> (Zone, Zone) {
        // Strictly-greater comparison keeps the lowest index on ties
        // (`Iterator::max_by` would keep the last).
        let mut dim = 0;
        for d in 1..self.dims() {
            if self.extent(d) > self.extent(dim) {
                dim = d;
            }
        }
        let mid = (self.lo[dim] + self.hi[dim]) / 2.0;
        let mut lower = self.clone();
        let mut upper = self.clone();
        lower.hi[dim] = mid;
        upper.lo[dim] = mid;
        (lower, upper)
    }

    /// Torus distance from a point to this box: 0 if inside, otherwise
    /// the Euclidean distance accounting for wraparound per dimension.
    #[must_use]
    pub fn torus_distance(&self, p: &[f64]) -> f64 {
        let mut sum = 0.0;
        for d in 0..self.dims() {
            let x = p[d];
            let (lo, hi) = (self.lo[d], self.hi[d]);
            let dd = if x >= lo && x < hi {
                0.0
            } else {
                // Distance to the interval, directly or around the torus.
                let direct = if x < lo { lo - x } else { x - hi };
                let wrap = if x < lo { x + 1.0 - hi } else { lo + 1.0 - x };
                direct.min(wrap)
            };
            sum += dd * dd;
        }
        sum.sqrt()
    }

    /// True if `self` and `other` are CAN neighbours on the torus:
    /// their intervals *abut* in exactly one dimension and *overlap*
    /// (positive measure) in every other.
    #[must_use]
    pub fn is_neighbor(&self, other: &Zone) -> bool {
        let mut abut = 0usize;
        for d in 0..self.dims() {
            let (al, ah) = (self.lo[d], self.hi[d]);
            let (bl, bh) = (other.lo[d], other.hi[d]);
            let touches = ah == bl || bh == al || (ah == 1.0 && bl == 0.0) || (bh == 1.0 && al == 0.0);
            let overlaps = al < bh && bl < ah;
            if overlaps {
                continue;
            }
            if touches {
                abut += 1;
                if abut > 1 {
                    return false;
                }
                continue;
            }
            return false; // disjoint and not touching in this dim
        }
        abut == 1
    }
}

impl ToJson for Zone {
    fn to_json(&self) -> Json {
        Json::obj([("lo", self.lo.to_json()), ("hi", self.hi.to_json())])
    }
}

impl FromJson for Zone {
    fn from_json(v: &Json) -> Result<Self, JsonError> {
        let z = Zone { lo: v.field("lo")?, hi: v.field("hi")? };
        if z.lo.is_empty() || z.lo.len() != z.hi.len() {
            return Err(JsonError("zone corners must be non-empty and equal-length".into()));
        }
        Ok(z)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn whole_contains_everything_in_unit_box() {
        let z = Zone::whole(3);
        assert!(z.contains(&[0.0, 0.5, 0.999]));
        assert!(!z.contains(&[1.0, 0.5, 0.5]));
        assert_eq!(z.volume(), 1.0);
        assert_eq!(z.center(), vec![0.5, 0.5, 0.5]);
    }

    #[test]
    fn split_halves_longest_dimension() {
        let z = Zone::whole(2);
        let (a, b) = z.split(); // splits dim 0 (tie → lowest index)
        assert_eq!(a.hi[0], 0.5);
        assert_eq!(b.lo[0], 0.5);
        assert_eq!(a.volume() + b.volume(), 1.0);
        // Second-generation split goes along dim 1.
        let (c, d) = a.split();
        assert_eq!(c.hi[1], 0.5);
        assert_eq!(d.lo[1], 0.5);
    }

    #[test]
    fn contains_respects_half_open_borders() {
        let (a, b) = Zone::whole(1).split();
        assert!(a.contains(&[0.4999]));
        assert!(!a.contains(&[0.5]));
        assert!(b.contains(&[0.5]));
    }

    #[test]
    fn torus_distance_inside_is_zero_and_wraps() {
        let (a, b) = Zone::whole(1).split(); // [0,0.5) and [0.5,1)
        assert_eq!(a.torus_distance(&[0.25]), 0.0);
        assert!((a.torus_distance(&[0.6]) - 0.1).abs() < 1e-12);
        // 0.95 is 0.05 from [0,0.5) around the wrap, not 0.45 direct.
        assert!((a.torus_distance(&[0.95]) - 0.05).abs() < 1e-12);
        assert_eq!(b.torus_distance(&[0.99]), 0.0);
    }

    #[test]
    fn neighbors_abut_in_one_dim_and_overlap_elsewhere() {
        let (left, right) = Zone::whole(2).split();
        assert!(left.is_neighbor(&right));
        // They also wrap around the torus — but that is the same single
        // abutting dimension; still neighbours.
        let (ll, lr) = left.split(); // split along dim 1
        let (rl, rr) = right.split();
        assert!(ll.is_neighbor(&lr));
        assert!(ll.is_neighbor(&rl));
        // Diagonal: corners touch but intervals only touch in both dims.
        assert!(!ll.is_neighbor(&rr) || ll.is_neighbor(&rr) == rr.is_neighbor(&ll));
        assert_eq!(ll.is_neighbor(&rr), rr.is_neighbor(&ll));
    }

    #[test]
    fn torus_wrap_neighbors() {
        // [0,0.25) and [0.75,1) in 1-D abut around the wrap.
        let (a0, b0) = Zone::whole(1).split();
        let (a, _) = a0.split(); // [0,0.25)
        let (_, b) = b0.split(); // [0.75,1)
        assert!(a.is_neighbor(&b));
    }

    #[test]
    #[should_panic(expected = "at least one dimension")]
    fn zero_dims_rejected() {
        let _ = Zone::whole(0);
    }
}
