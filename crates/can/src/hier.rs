//! Hierarchical CAN: the paper's §3.2 transplant of HIERAS onto CAN.
//!
//! Each landmark-order bin runs its own CAN over the full coordinate
//! space, containing only that bin's peers; the global CAN contains
//! everyone. A lookup first routes inside the originator's bin-CAN to
//! the bin-local owner of the key point, then continues on the global
//! CAN — exactly the two-loop structure of Chord-HIERAS, with zones
//! and neighbour sets instead of rings and finger tables.

use crate::{CanBuildError, CanOracle};
use hieras_core::LandmarkOrder;
use hieras_id::Key;
use std::collections::HashMap;

/// A two-layer hierarchical CAN over a binned membership.
#[derive(Debug, Clone)]
pub struct HierCan {
    global: CanOracle,
    /// Bin CANs with their member lists (global node indices).
    bins: Vec<(Vec<u32>, CanOracle)>,
    /// Bin index per global node.
    bin_of: Vec<u32>,
    /// Position of each global node within its bin's CAN.
    pos_in_bin: Vec<u32>,
}

/// One hop of a hierarchical CAN route.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct HierCanHop {
    /// Global node index of the sender.
    pub from: u32,
    /// Global node index of the receiver.
    pub to: u32,
    /// True if the hop ran inside a bin CAN (lower layer).
    pub lower: bool,
}

impl HierCan {
    /// Builds the hierarchy: one CAN per bin plus the global CAN.
    /// `orders[i]` is node `i`'s landmark order (bins group equal
    /// orders, as in Chord-HIERAS).
    ///
    /// # Errors
    /// See [`CanBuildError`].
    pub fn build(orders: &[LandmarkOrder], dims: usize, seed: u64) -> Result<Self, CanBuildError> {
        if orders.is_empty() {
            return Err(CanBuildError::Empty);
        }
        let n = orders.len();
        let global = CanOracle::build(n, dims, seed)?;
        let mut groups: HashMap<&LandmarkOrder, Vec<u32>> = HashMap::new();
        for (i, o) in orders.iter().enumerate() {
            groups.entry(o).or_default().push(i as u32);
        }
        let mut names: Vec<&LandmarkOrder> = groups.keys().copied().collect();
        names.sort();
        let mut bins = Vec::with_capacity(names.len());
        let mut bin_of = vec![0u32; n];
        let mut pos_in_bin = vec![0u32; n];
        for (bi, name) in names.into_iter().enumerate() {
            let members = groups.remove(name).expect("key from map");
            for (pos, &m) in members.iter().enumerate() {
                bin_of[m as usize] = bi as u32;
                pos_in_bin[m as usize] = pos as u32;
            }
            // Per-bin CAN seeded distinctly but deterministically.
            let can = CanOracle::build(members.len(), dims, seed ^ (bi as u64 + 1))?;
            bins.push((members, can));
        }
        Ok(HierCan { global, bins, bin_of, pos_in_bin })
    }

    /// Number of peers.
    #[must_use]
    pub fn len(&self) -> usize {
        self.bin_of.len()
    }

    /// Never empty by construction.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        false
    }

    /// Number of bins (lower-layer CANs).
    #[must_use]
    pub fn bin_count(&self) -> usize {
        self.bins.len()
    }

    /// The global CAN.
    #[must_use]
    pub fn global(&self) -> &CanOracle {
        &self.global
    }

    /// The global owner of `key` (ground truth, same as plain CAN).
    #[must_use]
    pub fn owner_of(&self, key: Key) -> u32 {
        self.global.owner_of_point(&self.global.key_point(key))
    }

    /// Two-loop hierarchical routing from global node `src`.
    #[must_use]
    pub fn route(&self, src: u32, key: Key) -> Vec<HierCanHop> {
        let p = self.global.key_point(key);
        let owner = self.global.owner_of_point(&p);
        let mut hops = Vec::new();
        let mut cur = src;
        // Loop 1: inside the originator's bin CAN.
        if cur != owner {
            let (members, can) = &self.bins[self.bin_of[cur as usize] as usize];
            let r = can.route_point(self.pos_in_bin[cur as usize], &p);
            for w in r.path.windows(2) {
                hops.push(HierCanHop {
                    from: members[w[0] as usize],
                    to: members[w[1] as usize],
                    lower: true,
                });
            }
            cur = members[r.owner() as usize];
        }
        // Loop 2: global CAN (the destination check between loops is
        // the `cur != owner` test).
        if cur != owner {
            let r = self.global.route_point(cur, &p);
            for w in r.path.windows(2) {
                hops.push(HierCanHop { from: w[0], to: w[1], lower: false });
            }
            cur = r.owner();
        }
        debug_assert_eq!(cur, owner);
        hops
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hieras_core::Binning;
    use hieras_id::Id;

    fn orders(n: usize) -> Vec<LandmarkOrder> {
        let b = Binning::paper();
        (0..n)
            .map(|i| {
                b.order(&[
                    if i % 2 == 0 { 5 } else { 150 },
                    if i % 4 < 2 { 10 } else { 130 },
                ])
            })
            .collect()
    }

    #[test]
    fn build_groups_bins_correctly() {
        let h = HierCan::build(&orders(32), 2, 7).unwrap();
        assert_eq!(h.len(), 32);
        assert_eq!(h.bin_count(), 4);
        let total: usize = h.bins.iter().map(|(m, _)| m.len()).sum();
        assert_eq!(total, 32);
    }

    #[test]
    fn hierarchical_route_reaches_global_owner() {
        let h = HierCan::build(&orders(48), 2, 3).unwrap();
        for k in 0..60u64 {
            let key = Id(k.wrapping_mul(0x9e37_79b9_7f4a_7c15));
            let owner = h.owner_of(key);
            for src in (0..48u32).step_by(5) {
                let hops = h.route(src, key);
                let dest = hops.last().map_or(src, |h| h.to);
                assert_eq!(dest, owner, "key {k} src {src}");
            }
        }
    }

    #[test]
    fn lower_hops_precede_global_hops() {
        let h = HierCan::build(&orders(48), 2, 9).unwrap();
        let mut saw_lower = false;
        for k in 0..40u64 {
            let key = Id(k.wrapping_mul(0x517c_c1b7_2722_0a95));
            let hops = h.route((k % 48) as u32, key);
            let mut seen_global = false;
            for hop in &hops {
                if !hop.lower {
                    seen_global = true;
                }
                assert!(!(hop.lower && seen_global), "lower hop after global hop");
                saw_lower |= hop.lower;
            }
        }
        assert!(saw_lower, "no lookup ever used a bin CAN");
    }

    #[test]
    fn lower_hops_stay_within_origin_bin() {
        let h = HierCan::build(&orders(40), 2, 5).unwrap();
        for k in 0..40u64 {
            let key = Id(k.wrapping_mul(0xdead_beef_cafe_1234));
            let src = (k % 40) as u32;
            let bin = h.bin_of[src as usize];
            for hop in h.route(src, key).iter().filter(|h| h.lower) {
                assert_eq!(h.bin_of[hop.from as usize], bin);
                assert_eq!(h.bin_of[hop.to as usize], bin);
            }
        }
    }

    #[test]
    fn empty_orders_rejected() {
        assert_eq!(HierCan::build(&[], 2, 1).unwrap_err(), CanBuildError::Empty);
    }

    #[test]
    fn singleton_bins_work() {
        // Every node in its own bin: lower loop is always trivial.
        let orders: Vec<LandmarkOrder> =
            (0..6u8).map(|i| LandmarkOrder(vec![i, i])).collect();
        let h = HierCan::build(&orders, 2, 2).unwrap();
        assert_eq!(h.bin_count(), 6);
        for k in 0..20u64 {
            let key = Id(k * 7919);
            let hops = h.route((k % 6) as u32, key);
            assert!(hops.iter().all(|hp| !hp.lower));
            let dest = hops.last().map_or((k % 6) as u32, |hp| hp.to);
            assert_eq!(dest, h.owner_of(key));
        }
    }
}
