//! CAN underlay and hierarchical CAN.
//!
//! The paper claims (§3.2) that HIERAS is not Chord-specific: "if we
//! use CAN as the underlying algorithm, the whole coordinate space can
//! be divided multiple times in different layers, we can create
//! multi-layer neighbor sets accordingly and use these neighbor sets in
//! different loops during a routing procedure." This crate implements
//! that claim end to end:
//!
//! * [`CanOracle`] — a d-dimensional Content-Addressable Network
//!   (Ratnasamy et al.): the unit torus is partitioned into zones by
//!   binary splits as nodes join; keys hash to points; routing is
//!   greedy through zone neighbours.
//! * [`HierCan`] — the hierarchical variant: peers are binned by
//!   landmark order exactly as in Chord-HIERAS; each bin runs its own
//!   CAN over the full coordinate space, and a lookup routes inside the
//!   originator's bin-CAN first, then finishes on the global CAN.
//!
//! The `ablate-can` bench target compares the two, reproducing the
//! paper's claim that the hierarchy transplants to CAN.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod hier;
mod oracle;
mod zone;

pub use hier::HierCan;
pub use oracle::{CanBuildError, CanOracle, CanRoute};
pub use zone::Zone;
