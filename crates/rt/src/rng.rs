//! A small, fast, deterministic PRNG: xoshiro256++ seeded via
//! SplitMix64, with the sampling helpers the workspace needs.
//!
//! Not cryptographic. Streams are fully determined by the seed, which
//! is what the experiments require: every topology, placement and
//! workload must be replayable from a config line.

use std::ops::{Range, RangeInclusive};

/// xoshiro256++ generator (Blackman & Vigna), SplitMix64-seeded.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Rng {
    s: [u64; 4],
}

impl Rng {
    /// Seeds the full 256-bit state from one `u64` by running
    /// SplitMix64 four times, as the xoshiro authors recommend.
    #[must_use]
    pub fn seed_from_u64(seed: u64) -> Self {
        let mut z = seed;
        let mut next = || {
            z = z.wrapping_add(0x9e37_79b9_7f4a_7c15);
            let mut w = z;
            w = (w ^ (w >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
            w = (w ^ (w >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
            w ^ (w >> 31)
        };
        Rng { s: [next(), next(), next(), next()] }
    }

    /// The next raw 64-bit output.
    #[inline]
    pub fn next_u64(&mut self) -> u64 {
        let [s0, s1, s2, s3] = self.s;
        let result = s0.wrapping_add(s3).rotate_left(23).wrapping_add(s0);
        let t = s1 << 17;
        let mut s2 = s2 ^ s0;
        let mut s3 = s3 ^ s1;
        let s1 = s1 ^ s2;
        let s0 = s0 ^ s3;
        s2 ^= t;
        s3 = s3.rotate_left(45);
        self.s = [s0, s1, s2, s3];
        result
    }

    /// Uniform in `[0, 1)` with 53 random bits.
    #[inline]
    pub fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Uniform in `[0, bound)` by Lemire's multiply-shift with a
    /// rejection pass, so every value is exactly equally likely.
    ///
    /// # Panics
    /// Panics if `bound == 0`.
    #[inline]
    pub fn next_u64_below(&mut self, bound: u64) -> u64 {
        assert!(bound > 0, "empty sampling range");
        // Widening multiply: high 64 bits of x * bound are uniform in
        // [0, bound) once low-bits bias is rejected.
        let threshold = bound.wrapping_neg() % bound;
        loop {
            let x = self.next_u64();
            let wide = u128::from(x) * u128::from(bound);
            if (wide as u64) >= threshold {
                return (wide >> 64) as u64;
            }
        }
    }

    /// Uniform sample from `range` (see [`SampleRange`] for the
    /// supported range types — half-open integer ranges, half-open and
    /// inclusive `f64` ranges).
    ///
    /// # Panics
    /// Panics if the range is empty.
    #[inline]
    pub fn random_range<R: SampleRange>(&mut self, range: R) -> R::Output {
        range.sample(self)
    }

    /// A bernoulli draw: true with probability `p` (clamped to [0,1]).
    #[inline]
    pub fn random_bool(&mut self, p: f64) -> bool {
        self.next_f64() < p
    }

    /// Fisher–Yates shuffle in place.
    pub fn shuffle<T>(&mut self, slice: &mut [T]) {
        for i in (1..slice.len()).rev() {
            let j = self.next_u64_below(i as u64 + 1) as usize;
            slice.swap(i, j);
        }
    }

    /// A uniformly random element, or `None` if the slice is empty.
    pub fn choose<'a, T>(&mut self, slice: &'a [T]) -> Option<&'a T> {
        if slice.is_empty() {
            None
        } else {
            Some(&slice[self.next_u64_below(slice.len() as u64) as usize])
        }
    }

    /// `k` distinct indices drawn uniformly from `0..len`, in selection
    /// order (partial Fisher–Yates over an index vector).
    ///
    /// # Panics
    /// Panics if `k > len`.
    #[must_use]
    pub fn sample_indices(&mut self, len: usize, k: usize) -> Vec<usize> {
        assert!(k <= len, "cannot sample {k} of {len}");
        let mut idx: Vec<usize> = (0..len).collect();
        for i in 0..k {
            let j = i + self.next_u64_below((len - i) as u64) as usize;
            idx.swap(i, j);
        }
        idx.truncate(k);
        idx
    }
}

/// Range types [`Rng::random_range`] can sample from.
pub trait SampleRange {
    /// The sampled value type.
    type Output;
    /// Draws one uniform sample.
    fn sample(self, rng: &mut Rng) -> Self::Output;
}

macro_rules! int_range {
    ($($t:ty),*) => {$(
        impl SampleRange for Range<$t> {
            type Output = $t;
            #[inline]
            fn sample(self, rng: &mut Rng) -> $t {
                assert!(self.start < self.end, "empty sampling range");
                let span = (self.end - self.start) as u64;
                self.start + rng.next_u64_below(span) as $t
            }
        }
        impl SampleRange for RangeInclusive<$t> {
            type Output = $t;
            #[inline]
            fn sample(self, rng: &mut Rng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty sampling range");
                let span = (hi - lo) as u64 + 1;
                lo + rng.next_u64_below(span) as $t
            }
        }
    )*};
}

int_range!(usize, u64, u32, u16, u8);

impl SampleRange for Range<f64> {
    type Output = f64;
    #[inline]
    fn sample(self, rng: &mut Rng) -> f64 {
        assert!(self.start < self.end, "empty sampling range");
        self.start + (self.end - self.start) * rng.next_f64()
    }
}

impl SampleRange for RangeInclusive<f64> {
    type Output = f64;
    #[inline]
    fn sample(self, rng: &mut Rng) -> f64 {
        let (lo, hi) = (*self.start(), *self.end());
        assert!(lo <= hi, "empty sampling range");
        lo + (hi - lo) * rng.next_f64()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_seed_same_stream() {
        let mut a = Rng::seed_from_u64(42);
        let mut b = Rng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = Rng::seed_from_u64(43);
        assert_ne!(a.next_u64(), c.next_u64());
    }

    #[test]
    fn range_samples_stay_in_bounds() {
        let mut rng = Rng::seed_from_u64(7);
        for _ in 0..2000 {
            let x = rng.random_range(3usize..17);
            assert!((3..17).contains(&x));
            let f = rng.random_range(-0.5f64..=0.5);
            assert!((-0.5..=0.5).contains(&f));
            let u = rng.next_f64();
            assert!((0.0..1.0).contains(&u));
        }
    }

    #[test]
    fn below_is_roughly_uniform() {
        let mut rng = Rng::seed_from_u64(11);
        let mut counts = [0usize; 8];
        for _ in 0..80_000 {
            counts[rng.next_u64_below(8) as usize] += 1;
        }
        for &c in &counts {
            assert!((9_000..11_000).contains(&c), "bucket count {c} far from 10000");
        }
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut rng = Rng::seed_from_u64(5);
        let mut v: Vec<u32> = (0..100).collect();
        rng.shuffle(&mut v);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..100).collect::<Vec<_>>());
        assert_ne!(v, sorted, "a 100-element shuffle virtually never is the identity");
    }

    #[test]
    fn choose_and_sample_indices() {
        let mut rng = Rng::seed_from_u64(9);
        assert_eq!(rng.choose::<u8>(&[]), None);
        let xs = [10, 20, 30];
        for _ in 0..50 {
            assert!(xs.contains(rng.choose(&xs).unwrap()));
        }
        let picked = rng.sample_indices(50, 10);
        assert_eq!(picked.len(), 10);
        let mut dedup = picked.clone();
        dedup.sort_unstable();
        dedup.dedup();
        assert_eq!(dedup.len(), 10, "sampled indices must be distinct");
    }

    #[test]
    fn splitmix_free_function_matches_reference() {
        // Reference values from the public-domain splitmix64.c.
        assert_eq!(crate::splitmix64(0), 0xe220_a839_7b1d_cdaf);
        assert_eq!(crate::splitmix64(0xe220_a839_7b1d_cdaf) != 0, true);
    }
}
