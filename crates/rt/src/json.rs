//! Minimal JSON: a value type, writer, and recursive-descent reader.
//!
//! Exactly the subset the workspace serializes — objects, arrays,
//! strings, booleans, null, and numbers. Integers are kept in native
//! 64-bit form (node ids are full-width `u64`s that do not fit in an
//! `f64` mantissa), floats round-trip via Rust's shortest-repr
//! `Display`. Object fields preserve insertion order.
//!
//! Types opt in by hand-implementing [`ToJson`] / [`FromJson`]; the
//! [`Json::field`] helper keeps those impls one line per field.

use std::fmt::Write as _;

/// A parsed or under-construction JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`
    Null,
    /// `true` / `false`
    Bool(bool),
    /// A non-negative integer (canonical form for all unsigned fields).
    U64(u64),
    /// A negative integer.
    I64(i64),
    /// A number with a fraction or exponent.
    F64(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object; insertion-ordered key/value pairs.
    Obj(Vec<(String, Json)>),
}

/// A parse or conversion failure, with a human-readable message.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JsonError(pub String);

impl std::fmt::Display for JsonError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "json error: {}", self.0)
    }
}

impl std::error::Error for JsonError {}

fn err<T>(msg: impl Into<String>) -> Result<T, JsonError> {
    Err(JsonError(msg.into()))
}

impl Json {
    /// Builds an object from `(key, value)` pairs.
    pub fn obj<K: Into<String>>(fields: impl IntoIterator<Item = (K, Json)>) -> Json {
        Json::Obj(fields.into_iter().map(|(k, v)| (k.into(), v)).collect())
    }

    /// Builds an array.
    pub fn arr(items: impl IntoIterator<Item = Json>) -> Json {
        Json::Arr(items.into_iter().collect())
    }

    /// Object field lookup.
    #[must_use]
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// Typed object field lookup; errors name the missing field.
    ///
    /// # Errors
    /// If the field is absent or fails `T`'s conversion.
    pub fn field<T: FromJson>(&self, key: &str) -> Result<T, JsonError> {
        match self.get(key) {
            Some(v) => T::from_json(v)
                .map_err(|e| JsonError(format!("field `{key}`: {}", e.0))),
            None => err(format!("missing field `{key}`")),
        }
    }

    /// The boolean value, if this is a boolean.
    #[must_use]
    pub fn as_bool(&self) -> Option<bool> {
        if let Json::Bool(b) = self { Some(*b) } else { None }
    }

    /// The value as `u64`, if it is a non-negative integer.
    #[must_use]
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Json::U64(u) => Some(*u),
            Json::I64(i) => u64::try_from(*i).ok(),
            _ => None,
        }
    }

    /// The value as `i64`, if it is an integer in range.
    #[must_use]
    pub fn as_i64(&self) -> Option<i64> {
        match self {
            Json::U64(u) => i64::try_from(*u).ok(),
            Json::I64(i) => Some(*i),
            _ => None,
        }
    }

    /// The value as `f64` (integers coerce).
    #[must_use]
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::U64(u) => Some(*u as f64),
            Json::I64(i) => Some(*i as f64),
            Json::F64(f) => Some(*f),
            _ => None,
        }
    }

    /// The string slice, if this is a string.
    #[must_use]
    pub fn as_str(&self) -> Option<&str> {
        if let Json::Str(s) = self { Some(s) } else { None }
    }

    /// The element slice, if this is an array.
    #[must_use]
    pub fn as_arr(&self) -> Option<&[Json]> {
        if let Json::Arr(a) = self { Some(a) } else { None }
    }

    /// Serializes compactly (no whitespace).
    #[must_use]
    pub fn dump(&self) -> String {
        let mut s = String::new();
        self.write(&mut s, None, 0);
        s
    }

    /// Serializes with two-space indentation.
    #[must_use]
    pub fn dump_pretty(&self) -> String {
        let mut s = String::new();
        self.write(&mut s, Some(2), 0);
        s
    }

    fn write(&self, out: &mut String, indent: Option<usize>, depth: usize) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(true) => out.push_str("true"),
            Json::Bool(false) => out.push_str("false"),
            Json::U64(u) => {
                let _ = write!(out, "{u}");
            }
            Json::I64(i) => {
                let _ = write!(out, "{i}");
            }
            Json::F64(f) => {
                if f.is_finite() {
                    let mut t = format!("{f}");
                    // Keep whole-valued floats self-describing ("5.0",
                    // not "5") so they parse back as F64.
                    if !t.contains(['.', 'e', 'E']) {
                        t.push_str(".0");
                    }
                    out.push_str(&t);
                } else {
                    out.push_str("null"); // JSON has no NaN/inf
                }
            }
            Json::Str(s) => write_escaped(out, s),
            Json::Arr(items) => {
                if items.is_empty() {
                    out.push_str("[]");
                    return;
                }
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    newline_indent(out, indent, depth + 1);
                    item.write(out, indent, depth + 1);
                }
                newline_indent(out, indent, depth);
                out.push(']');
            }
            Json::Obj(fields) => {
                if fields.is_empty() {
                    out.push_str("{}");
                    return;
                }
                out.push('{');
                for (i, (k, v)) in fields.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    newline_indent(out, indent, depth + 1);
                    write_escaped(out, k);
                    out.push(':');
                    if indent.is_some() {
                        out.push(' ');
                    }
                    v.write(out, indent, depth + 1);
                }
                newline_indent(out, indent, depth);
                out.push('}');
            }
        }
    }

    /// Parses a complete JSON document (trailing whitespace allowed).
    ///
    /// # Errors
    /// On malformed input, with a byte offset in the message.
    pub fn parse(text: &str) -> Result<Json, JsonError> {
        let mut p = Parser { bytes: text.as_bytes(), pos: 0 };
        p.skip_ws();
        let v = p.value()?;
        p.skip_ws();
        if p.pos != p.bytes.len() {
            return err(format!("trailing data at byte {}", p.pos));
        }
        Ok(v)
    }
}

fn newline_indent(out: &mut String, indent: Option<usize>, depth: usize) {
    if let Some(w) = indent {
        out.push('\n');
        out.extend(std::iter::repeat(' ').take(w * depth));
    }
}

fn write_escaped(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if matches!(b, b' ' | b'\t' | b'\n' | b'\r') {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), JsonError> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            err(format!("expected `{}` at byte {}", b as char, self.pos))
        }
    }

    fn eat_lit(&mut self, lit: &str, v: Json) -> Result<Json, JsonError> {
        if self.bytes[self.pos..].starts_with(lit.as_bytes()) {
            self.pos += lit.len();
            Ok(v)
        } else {
            err(format!("bad literal at byte {}", self.pos))
        }
    }

    fn value(&mut self) -> Result<Json, JsonError> {
        match self.peek() {
            Some(b'n') => self.eat_lit("null", Json::Null),
            Some(b't') => self.eat_lit("true", Json::Bool(true)),
            Some(b'f') => self.eat_lit("false", Json::Bool(false)),
            Some(b'"') => Ok(Json::Str(self.string()?)),
            Some(b'[') => self.array(),
            Some(b'{') => self.object(),
            Some(b'-' | b'0'..=b'9') => self.number(),
            Some(b) => err(format!("unexpected byte `{}` at {}", b as char, self.pos)),
            None => err("unexpected end of input"),
        }
    }

    fn array(&mut self) -> Result<Json, JsonError> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Arr(items));
                }
                _ => return err(format!("expected `,` or `]` at byte {}", self.pos)),
            }
        }
    }

    fn object(&mut self) -> Result<Json, JsonError> {
        self.expect(b'{')?;
        let mut fields = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Obj(fields));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.value()?;
            fields.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Obj(fields));
                }
                _ => return err(format!("expected `,` or `}}` at byte {}", self.pos)),
            }
        }
    }

    fn string(&mut self) -> Result<String, JsonError> {
        self.expect(b'"')?;
        let mut s = String::new();
        loop {
            let start = self.pos;
            // Fast path: copy runs of plain bytes.
            while let Some(&b) = self.bytes.get(self.pos) {
                if b == b'"' || b == b'\\' || b < 0x20 {
                    break;
                }
                self.pos += 1;
            }
            s.push_str(
                std::str::from_utf8(&self.bytes[start..self.pos])
                    .map_err(|_| JsonError("invalid utf-8".into()))?,
            );
            match self.peek() {
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(s);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => s.push('"'),
                        Some(b'\\') => s.push('\\'),
                        Some(b'/') => s.push('/'),
                        Some(b'n') => s.push('\n'),
                        Some(b'r') => s.push('\r'),
                        Some(b't') => s.push('\t'),
                        Some(b'b') => s.push('\u{8}'),
                        Some(b'f') => s.push('\u{c}'),
                        Some(b'u') => {
                            let hex = self
                                .bytes
                                .get(self.pos + 1..self.pos + 5)
                                .and_then(|h| std::str::from_utf8(h).ok())
                                .ok_or_else(|| JsonError("truncated \\u escape".into()))?;
                            let cp = u32::from_str_radix(hex, 16)
                                .map_err(|_| JsonError("bad \\u escape".into()))?;
                            // Surrogate pairs are not produced by our writer;
                            // map lone surrogates to the replacement char.
                            s.push(char::from_u32(cp).unwrap_or('\u{fffd}'));
                            self.pos += 4;
                        }
                        _ => return err(format!("bad escape at byte {}", self.pos)),
                    }
                    self.pos += 1;
                }
                _ => return err("unterminated string"),
            }
        }
    }

    fn number(&mut self) -> Result<Json, JsonError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        let mut is_float = false;
        while let Some(b) = self.peek() {
            match b {
                b'0'..=b'9' => self.pos += 1,
                b'.' | b'e' | b'E' | b'+' | b'-' => {
                    is_float = true;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| JsonError("invalid utf-8 in number".into()))?;
        if !is_float {
            if let Ok(u) = text.parse::<u64>() {
                return Ok(Json::U64(u));
            }
            if let Ok(i) = text.parse::<i64>() {
                return Ok(Json::I64(i));
            }
        }
        text.parse::<f64>()
            .map(Json::F64)
            .map_err(|_| JsonError(format!("bad number `{text}` at byte {start}")))
    }
}

/// Serializes a value to JSON.
pub trait ToJson {
    /// The JSON form of `self`.
    fn to_json(&self) -> Json;
}

/// Reconstructs a value from JSON.
pub trait FromJson: Sized {
    /// Parses `self` out of a JSON value.
    ///
    /// # Errors
    /// If the value has the wrong shape.
    fn from_json(v: &Json) -> Result<Self, JsonError>;
}

/// Compact JSON text for any [`ToJson`] type.
pub fn to_string<T: ToJson + ?Sized>(v: &T) -> String {
    v.to_json().dump()
}

/// Pretty (2-space indented) JSON text for any [`ToJson`] type.
pub fn to_string_pretty<T: ToJson + ?Sized>(v: &T) -> String {
    v.to_json().dump_pretty()
}

/// Parses JSON text straight into a [`FromJson`] type.
///
/// # Errors
/// On malformed JSON or a shape mismatch.
pub fn from_str<T: FromJson>(text: &str) -> Result<T, JsonError> {
    T::from_json(&Json::parse(text)?)
}

impl ToJson for Json {
    fn to_json(&self) -> Json {
        self.clone()
    }
}

impl FromJson for Json {
    fn from_json(v: &Json) -> Result<Self, JsonError> {
        Ok(v.clone())
    }
}

macro_rules! uint_json {
    ($($t:ty),*) => {$(
        impl ToJson for $t {
            fn to_json(&self) -> Json {
                Json::U64(u64::from(*self))
            }
        }
        impl FromJson for $t {
            fn from_json(v: &Json) -> Result<Self, JsonError> {
                let u = v.as_u64().ok_or_else(|| JsonError(
                    concat!("expected ", stringify!($t)).into()))?;
                <$t>::try_from(u).map_err(|_| JsonError(
                    concat!("out of range for ", stringify!($t)).into()))
            }
        }
    )*};
}

uint_json!(u8, u16, u32, u64);

impl ToJson for usize {
    fn to_json(&self) -> Json {
        Json::U64(*self as u64)
    }
}

impl FromJson for usize {
    fn from_json(v: &Json) -> Result<Self, JsonError> {
        let u = v.as_u64().ok_or_else(|| JsonError("expected usize".into()))?;
        usize::try_from(u).map_err(|_| JsonError("out of range for usize".into()))
    }
}

impl ToJson for i64 {
    fn to_json(&self) -> Json {
        if *self >= 0 { Json::U64(*self as u64) } else { Json::I64(*self) }
    }
}

impl FromJson for i64 {
    fn from_json(v: &Json) -> Result<Self, JsonError> {
        v.as_i64().ok_or_else(|| JsonError("expected i64".into()))
    }
}

impl ToJson for f64 {
    fn to_json(&self) -> Json {
        Json::F64(*self)
    }
}

impl FromJson for f64 {
    fn from_json(v: &Json) -> Result<Self, JsonError> {
        v.as_f64().ok_or_else(|| JsonError("expected number".into()))
    }
}

impl ToJson for bool {
    fn to_json(&self) -> Json {
        Json::Bool(*self)
    }
}

impl FromJson for bool {
    fn from_json(v: &Json) -> Result<Self, JsonError> {
        v.as_bool().ok_or_else(|| JsonError("expected bool".into()))
    }
}

impl ToJson for str {
    fn to_json(&self) -> Json {
        Json::Str(self.to_owned())
    }
}

impl ToJson for String {
    fn to_json(&self) -> Json {
        Json::Str(self.clone())
    }
}

impl FromJson for String {
    fn from_json(v: &Json) -> Result<Self, JsonError> {
        v.as_str().map(str::to_owned).ok_or_else(|| JsonError("expected string".into()))
    }
}

impl<T: ToJson> ToJson for Vec<T> {
    fn to_json(&self) -> Json {
        Json::Arr(self.iter().map(ToJson::to_json).collect())
    }
}

impl<T: FromJson> FromJson for Vec<T> {
    fn from_json(v: &Json) -> Result<Self, JsonError> {
        v.as_arr()
            .ok_or_else(|| JsonError("expected array".into()))?
            .iter()
            .map(T::from_json)
            .collect()
    }
}

impl<T: ToJson> ToJson for [T] {
    fn to_json(&self) -> Json {
        Json::Arr(self.iter().map(ToJson::to_json).collect())
    }
}

impl<T: ToJson> ToJson for Option<T> {
    fn to_json(&self) -> Json {
        match self {
            Some(v) => v.to_json(),
            None => Json::Null,
        }
    }
}

impl<T: FromJson> FromJson for Option<T> {
    fn from_json(v: &Json) -> Result<Self, JsonError> {
        match v {
            Json::Null => Ok(None),
            other => T::from_json(other).map(Some),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn full_width_u64_round_trips_exactly() {
        let id: u64 = 0xdead_beef_1234_5678;
        let text = to_string(&id);
        assert_eq!(text, "16045690981402826360");
        assert_eq!(from_str::<u64>(&text).unwrap(), id);
        assert_eq!(from_str::<u64>("18446744073709551615").unwrap(), u64::MAX);
    }

    #[test]
    fn floats_round_trip_bitwise() {
        for f in [0.25f64, 1.0 / 3.0, -17.125, 1e-12, 2.5e17, 0.0] {
            let back: f64 = from_str(&to_string(&f)).unwrap();
            assert_eq!(back.to_bits(), f.to_bits(), "{f} mangled");
        }
    }

    #[test]
    fn whole_floats_stay_floats() {
        let v = Json::F64(5.0);
        assert_eq!(v.dump(), "5.0"); // not "5", which would parse as U64
        assert_eq!(Json::parse("5.0").unwrap(), Json::F64(5.0));
    }

    #[test]
    fn strings_escape_and_unescape() {
        let s = "line\nbreak \"quote\" back\\slash\ttab\u{1}";
        let back: String = from_str(&to_string(&s.to_owned())).unwrap();
        assert_eq!(back, s);
        assert_eq!(from_str::<String>(r#""aAb""#).unwrap(), "aAb");
    }

    #[test]
    fn nested_structures_parse() {
        let v = Json::parse(r#" {"a": [1, -2, 3.5, null, true], "b": {"c": "d"}, "e": []} "#)
            .unwrap();
        assert_eq!(v.field::<u64>("a").unwrap_err().0.contains("field `a`"), true);
        let a = v.get("a").unwrap().as_arr().unwrap();
        assert_eq!(a[0], Json::U64(1));
        assert_eq!(a[1], Json::I64(-2));
        assert_eq!(a[2], Json::F64(3.5));
        assert_eq!(a[3], Json::Null);
        assert_eq!(a[4], Json::Bool(true));
        assert_eq!(v.get("b").unwrap().field::<String>("c").unwrap(), "d");
        assert_eq!(v.get("e").unwrap().as_arr().unwrap().len(), 0);
    }

    #[test]
    fn object_round_trip_preserves_order() {
        let v = Json::obj([
            ("zeta", Json::U64(1)),
            ("alpha", Json::arr([Json::Bool(false), Json::Null])),
        ]);
        let compact = v.dump();
        assert_eq!(compact, r#"{"zeta":1,"alpha":[false,null]}"#);
        assert_eq!(Json::parse(&compact).unwrap(), v);
        let pretty = v.dump_pretty();
        assert!(pretty.contains("\n  \"zeta\": 1"));
        assert_eq!(Json::parse(&pretty).unwrap(), v);
    }

    #[test]
    fn malformed_inputs_error() {
        for bad in ["{", "[1,", "\"unterminated", "nul", "{\"a\" 1}", "1 2", "{\"a\":01x}"] {
            assert!(Json::parse(bad).is_err(), "`{bad}` should not parse");
        }
    }

    #[test]
    fn options_and_vecs() {
        let some: Option<u32> = Some(7);
        let none: Option<u32> = None;
        assert_eq!(to_string(&some), "7");
        assert_eq!(to_string(&none), "null");
        assert_eq!(from_str::<Option<u32>>("null").unwrap(), None);
        assert_eq!(from_str::<Option<u32>>("7").unwrap(), Some(7));
        let v = vec![1u16, 2, 3];
        assert_eq!(from_str::<Vec<u16>>(&to_string(&v)).unwrap(), v);
    }
}
