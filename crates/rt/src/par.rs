//! Deterministic parallel executor.
//!
//! The replay loop folds per-request samples into `Metrics`, and the
//! merged result must be **bit-identical regardless of thread count**
//! (sample vectors are order-dependent). rayon's `fold`/`reduce` does
//! not promise that: its reduction tree depends on work stealing.
//!
//! This executor does. The index range is split into fixed-size chunks
//! — the chunk size never depends on the thread count — and workers
//! claim chunks dynamically off a shared atomic counter. Each chunk is
//! folded sequentially into its own accumulator, the accumulator lands
//! in the chunk's dedicated slot, and after the scope joins, the main
//! thread merges all slots **sequentially in chunk order**. The merge
//! sequence is therefore a pure function of `(len, chunk_size)`:
//! running with 1, 2 or 64 threads produces the same bytes.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::OnceLock;

/// A scoped-thread pool-less executor: threads are spawned per call,
/// which is fine for the coarse-grained work here (thousands of
/// lookups or Dijkstra rows per chunk, calls lasting milliseconds to
/// minutes).
#[derive(Debug, Clone, Copy)]
pub struct Executor {
    threads: usize,
}

impl Default for Executor {
    /// An executor with [`Executor::default_threads`] workers.
    fn default() -> Self {
        Executor::new(Self::default_threads())
    }
}

impl Executor {
    /// An executor with exactly `threads` workers (clamped to ≥ 1).
    #[must_use]
    pub fn new(threads: usize) -> Self {
        Executor { threads: threads.max(1) }
    }

    /// The worker count the default executor uses: the
    /// `HIERAS_THREADS` environment variable if set to a positive
    /// integer, otherwise [`std::thread::available_parallelism`].
    #[must_use]
    pub fn default_threads() -> usize {
        static CACHED: OnceLock<usize> = OnceLock::new();
        *CACHED.get_or_init(|| {
            if let Ok(v) = std::env::var("HIERAS_THREADS") {
                if let Ok(n) = v.trim().parse::<usize>() {
                    if n > 0 {
                        return n;
                    }
                }
            }
            std::thread::available_parallelism().map_or(1, std::num::NonZeroUsize::get)
        })
    }

    /// Number of worker threads this executor runs.
    #[must_use]
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// Folds `0..len` into one accumulator, deterministically.
    ///
    /// * `chunk` — indices per chunk. Pick it per call site and keep it
    ///   fixed: it defines the merge structure, so changing it changes
    ///   which (identical-value, differently-ordered) result you get.
    /// * `init` — a fresh accumulator (called once per chunk plus once
    ///   for the final merge seed).
    /// * `fold` — folds index `i` into the chunk accumulator.
    /// * `merge` — combines two accumulators; applied left-to-right in
    ///   ascending chunk order.
    ///
    /// # Panics
    /// Panics if `chunk == 0` or a worker thread panicked.
    pub fn par_fold<A, I, F, M>(&self, len: usize, chunk: usize, init: I, fold: F, merge: M) -> A
    where
        A: Send + Sync,
        I: Fn() -> A + Sync,
        F: Fn(&mut A, usize) + Sync,
        M: Fn(A, A) -> A,
    {
        assert!(chunk > 0, "chunk size must be positive");
        let n_chunks = len.div_ceil(chunk);
        let slots: Vec<OnceLock<A>> = (0..n_chunks).map(|_| OnceLock::new()).collect();
        let next = AtomicUsize::new(0);
        let workers = self.threads.min(n_chunks.max(1));

        let run = |_worker: usize| {
            loop {
                let c = next.fetch_add(1, Ordering::Relaxed);
                if c >= n_chunks {
                    break;
                }
                let lo = c * chunk;
                let hi = (lo + chunk).min(len);
                let mut acc = init();
                for i in lo..hi {
                    fold(&mut acc, i);
                }
                slots[c].set(acc).map_err(|_| ()).expect("chunk slot set twice");
            }
        };

        if workers <= 1 {
            run(0);
        } else {
            let run = &run;
            std::thread::scope(|scope| {
                for w in 0..workers {
                    scope.spawn(move || run(w));
                }
            });
        }

        // Sequential merge in chunk order — the determinism guarantee.
        let mut out = init();
        for slot in slots {
            let part = slot.into_inner().expect("all chunks completed");
            out = merge(out, part);
        }
        out
    }

    /// Runs `f(i)` for every `i in 0..len` across the workers, in
    /// chunks of `chunk`. No ordering guarantee between calls — use it
    /// only for order-independent effects (e.g. filling `OnceLock`
    /// slots keyed by `i`).
    ///
    /// # Panics
    /// Panics if `chunk == 0` or a worker thread panicked.
    pub fn par_for_each<F>(&self, len: usize, chunk: usize, f: F)
    where
        F: Fn(usize) + Sync,
    {
        self.par_fold(len, chunk, || (), |(), i| f(i), |(), ()| ());
    }

    /// Fills `out[i] = f(i)` for every index, in parallel.
    ///
    /// The value of each element is a pure function of its index, so
    /// the result is bit-identical at any thread count — this is the
    /// primitive the parallel finger-table builds rely on. Workers
    /// produce per-chunk vectors that the deterministic merge
    /// concatenates in ascending chunk order (one transient copy of
    /// `out`; no `unsafe`, in keeping with the crate-wide
    /// `forbid(unsafe_code)`).
    ///
    /// # Panics
    /// Panics if `chunk == 0` or a worker thread panicked.
    pub fn par_fill<T, F>(&self, out: &mut [T], chunk: usize, f: F)
    where
        T: Clone + Send + Sync,
        F: Fn(usize) -> T + Sync,
    {
        let merged = self.par_fold(
            out.len(),
            chunk,
            Vec::new,
            |acc, i| acc.push(f(i)),
            |mut a, mut b| {
                a.append(&mut b);
                a
            },
        );
        out.clone_from_slice(&merged);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicU64;

    fn fold_samples(threads: usize, len: usize, chunk: usize) -> Vec<usize> {
        Executor::new(threads).par_fold(
            len,
            chunk,
            Vec::new,
            |acc, i| acc.push(i * 7),
            |mut a, mut b| {
                a.append(&mut b);
                a
            },
        )
    }

    #[test]
    fn par_fold_is_bit_identical_across_thread_counts() {
        let base = fold_samples(1, 10_007, 64);
        for threads in [2, 3, 8, 32] {
            assert_eq!(fold_samples(threads, 10_007, 64), base, "{threads} threads diverged");
        }
        // And the order is simply ascending: chunk order == index order.
        assert!(base.windows(2).all(|w| w[0] < w[1]));
        assert_eq!(base.len(), 10_007);
    }

    #[test]
    fn par_fold_handles_edge_sizes() {
        assert_eq!(fold_samples(4, 0, 16), Vec::<usize>::new());
        assert_eq!(fold_samples(4, 1, 16), vec![0]);
        assert_eq!(fold_samples(4, 16, 16), (0..16).map(|i| i * 7).collect::<Vec<_>>());
        assert_eq!(fold_samples(4, 17, 16).len(), 17);
    }

    #[test]
    fn par_for_each_visits_every_index_once() {
        let hits: Vec<AtomicU64> = (0..5000).map(|_| AtomicU64::new(0)).collect();
        Executor::new(8).par_for_each(5000, 37, |i| {
            hits[i].fetch_add(1, Ordering::Relaxed);
        });
        assert!(hits.iter().all(|h| h.load(Ordering::Relaxed) == 1));
    }

    #[test]
    fn sum_matches_sequential() {
        let par = Executor::new(6).par_fold(
            100_000,
            256,
            || 0u64,
            |acc, i| *acc += i as u64,
            |a, b| a + b,
        );
        assert_eq!(par, (0..100_000u64).sum::<u64>());
    }

    #[test]
    fn threads_clamped_to_at_least_one() {
        assert_eq!(Executor::new(0).threads(), 1);
        assert!(Executor::default_threads() >= 1);
    }

    #[test]
    fn par_fill_matches_serial_at_any_thread_count() {
        let f = |i: usize| (i as u64).wrapping_mul(0x9e37_79b9_7f4a_7c15);
        let mut want = vec![0u64; 10_007];
        for (i, w) in want.iter_mut().enumerate() {
            *w = f(i);
        }
        for threads in [1, 2, 8, 32] {
            let mut got = vec![0u64; 10_007];
            Executor::new(threads).par_fill(&mut got, 61, f);
            assert_eq!(got, want, "{threads} threads diverged");
        }
    }

    #[test]
    fn par_fill_handles_empty_and_tiny() {
        let mut empty: [u32; 0] = [];
        Executor::new(4).par_fill(&mut empty, 8, |i| i as u32);
        let mut one = [99u32];
        Executor::new(4).par_fill(&mut one, 8, |i| i as u32);
        assert_eq!(one, [0]);
    }
}
