//! # hieras-rt — the in-tree runtime for the HIERAS workspace
//!
//! This environment builds offline, so the workspace depends on no
//! registry crates at all. Everything the reproduction needs beyond
//! `std` lives here, purpose-built and small:
//!
//! * [`Rng`] — a SplitMix64-seeded xoshiro256++ PRNG with the range /
//!   shuffle / sample helpers the topology generators and workloads
//!   use (replaces `rand`).
//! * [`Executor`] — a deterministic parallel executor over scoped
//!   worker threads. Work is split into *fixed-size* chunks that are
//!   claimed dynamically but merged sequentially in chunk order, so
//!   `par_fold` produces bit-identical results at any thread count
//!   (replaces `rayon` in the replay and APSP hot paths).
//! * [`Json`] — a minimal JSON value, writer and recursive-descent
//!   reader, plus the [`ToJson`]/[`FromJson`] traits the config,
//!   metrics and figure structs implement by hand (replaces
//!   `serde`/`serde_json`).
//!
//! The zero-dependency policy is documented in the repository's
//! DESIGN.md; new code must build on these primitives instead of
//! reintroducing registry dependencies.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod json;
mod par;
mod rng;

pub use json::{from_str, to_string, to_string_pretty, FromJson, Json, JsonError, ToJson};
pub use par::Executor;
pub use rng::{Rng, SampleRange};

/// Mixes a `u64` with the SplitMix64 finalizer — handy for deriving
/// stream seeds from `(seed, index)` pairs without constructing an RNG.
#[must_use]
pub fn splitmix64(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9e37_79b9_7f4a_7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}
