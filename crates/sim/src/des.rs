//! Discrete-event simulation primitives.
//!
//! A minimal, deterministic event queue used by the message-level
//! protocol engine (`hieras-proto`): events carry a firing time in
//! simulated milliseconds; ties break by insertion sequence so runs are
//! reproducible bit-for-bit.

use std::cmp::Reverse;
use std::collections::{BinaryHeap, HashSet};

/// Simulated time in milliseconds since simulation start.
pub type SimClock = u64;

/// Handle for a pending event scheduled with
/// [`EventQueue::schedule_cancellable`]; pass it to
/// [`EventQueue::cancel`] to revoke the event before it fires.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct CancelToken(u64);

/// An event scheduled at a point in simulated time.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TimedEvent<E> {
    /// Firing time (ms).
    pub at: SimClock,
    /// Monotonic insertion sequence (tie-breaker).
    pub seq: u64,
    /// The payload.
    pub event: E,
}

impl<E: Eq> Ord for TimedEvent<E> {
    fn cmp(&self, other: &Self) -> core::cmp::Ordering {
        (self.at, self.seq).cmp(&(other.at, other.seq))
    }
}

impl<E: Eq> PartialOrd for TimedEvent<E> {
    fn partial_cmp(&self, other: &Self) -> Option<core::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

/// A deterministic future-event list.
///
/// ```
/// use hieras_sim::EventQueue;
/// let mut q = EventQueue::new();
/// q.schedule(10, "b");
/// q.schedule(5, "a");
/// q.schedule(10, "c"); // same time as "b": FIFO among ties
/// assert_eq!(q.pop(), Some((5, "a")));
/// assert_eq!(q.pop(), Some((10, "b")));
/// assert_eq!(q.pop(), Some((10, "c")));
/// assert_eq!(q.pop(), None);
/// ```
#[derive(Debug, Clone)]
pub struct EventQueue<E: Eq> {
    heap: BinaryHeap<Reverse<TimedEvent<E>>>,
    next_seq: u64,
    now: SimClock,
    /// Seqs of pending cancellable events (removed when fired or
    /// cancelled); membership answers "can this still be revoked?".
    cancellable: HashSet<u64>,
    /// Seqs revoked before firing; their heap entries are skipped and
    /// discarded lazily on pop.
    cancelled: HashSet<u64>,
}

impl<E: Eq> Default for EventQueue<E> {
    fn default() -> Self {
        Self::new()
    }
}

impl<E: Eq> EventQueue<E> {
    /// An empty queue at time 0.
    #[must_use]
    pub fn new() -> Self {
        EventQueue {
            heap: BinaryHeap::new(),
            next_seq: 0,
            now: 0,
            cancellable: HashSet::new(),
            cancelled: HashSet::new(),
        }
    }

    /// Current simulated time: the firing time of the last popped
    /// event (0 before any pop).
    #[must_use]
    pub fn now(&self) -> SimClock {
        self.now
    }

    /// Advances the clock to `t` without popping anything — models a
    /// driver waiting out a retry backoff with the queue drained.
    ///
    /// # Panics
    /// Panics if `t` is in the past.
    pub fn advance_to(&mut self, t: SimClock) {
        assert!(t >= self.now, "cannot rewind the clock: {t} < {}", self.now);
        self.now = t;
    }

    /// Schedules `event` at absolute time `at`.
    ///
    /// # Panics
    /// Panics if `at` is in the past — scheduling into the past is a
    /// protocol-logic bug, not a recoverable condition.
    pub fn schedule(&mut self, at: SimClock, event: E) {
        assert!(at >= self.now, "cannot schedule into the past ({at} < {})", self.now);
        let seq = self.next_seq;
        self.next_seq += 1;
        self.heap.push(Reverse(TimedEvent { at, seq, event }));
    }

    /// Schedules `event` `delay` ms after the current time.
    pub fn schedule_in(&mut self, delay: SimClock, event: E) {
        self.schedule(self.now + delay, event);
    }

    /// Schedules `event` at absolute time `at` and returns a token that
    /// can revoke it before it fires — the timer pattern: schedule a
    /// timeout, cancel it when the reply arrives first.
    ///
    /// ```
    /// use hieras_sim::EventQueue;
    /// let mut q = EventQueue::new();
    /// let timeout = q.schedule_cancellable(50, "timeout");
    /// q.schedule(10, "reply");
    /// assert_eq!(q.pop(), Some((10, "reply")));
    /// assert!(q.cancel(timeout));      // reply beat the timer: revoke it
    /// assert_eq!(q.pop(), None);       // the timeout never fires
    /// assert!(!q.cancel(timeout));     // second cancel is a no-op
    /// ```
    ///
    /// # Panics
    /// Panics if `at` is in the past, like [`EventQueue::schedule`].
    pub fn schedule_cancellable(&mut self, at: SimClock, event: E) -> CancelToken {
        let token = CancelToken(self.next_seq);
        self.schedule(at, event);
        self.cancellable.insert(token.0);
        token
    }

    /// Like [`EventQueue::schedule_cancellable`] with a relative delay.
    pub fn schedule_in_cancellable(&mut self, delay: SimClock, event: E) -> CancelToken {
        self.schedule_cancellable(self.now + delay, event)
    }

    /// Revokes a pending cancellable event. Returns `true` if the event
    /// was still pending (it will never fire); `false` if it already
    /// fired or was already cancelled.
    pub fn cancel(&mut self, token: CancelToken) -> bool {
        if self.cancellable.remove(&token.0) {
            self.cancelled.insert(token.0);
            true
        } else {
            false
        }
    }

    /// Pops the earliest event, advancing the clock to its time.
    /// Cancelled events are skipped (and discarded) transparently.
    pub fn pop(&mut self) -> Option<(SimClock, E)> {
        loop {
            let Reverse(te) = self.heap.pop()?;
            if self.cancelled.remove(&te.seq) {
                continue;
            }
            self.cancellable.remove(&te.seq);
            self.now = te.at;
            return Some((te.at, te.event));
        }
    }

    /// Number of pending (non-cancelled) events.
    #[must_use]
    pub fn len(&self) -> usize {
        self.heap.len() - self.cancelled.len()
    }

    /// True if no events are pending.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pops_in_time_order() {
        let mut q = EventQueue::new();
        q.schedule(30, 3);
        q.schedule(10, 1);
        q.schedule(20, 2);
        assert_eq!(q.pop(), Some((10, 1)));
        assert_eq!(q.pop(), Some((20, 2)));
        assert_eq!(q.pop(), Some((30, 3)));
        assert!(q.is_empty());
    }

    #[test]
    fn ties_break_fifo() {
        let mut q = EventQueue::new();
        for i in 0..10 {
            q.schedule(5, i);
        }
        for i in 0..10 {
            assert_eq!(q.pop(), Some((5, i)));
        }
    }

    #[test]
    fn clock_advances_with_pops() {
        let mut q = EventQueue::new();
        q.schedule(7, "x");
        assert_eq!(q.now(), 0);
        let _ = q.pop();
        assert_eq!(q.now(), 7);
        q.schedule_in(3, "y");
        assert_eq!(q.pop(), Some((10, "y")));
    }

    #[test]
    #[should_panic(expected = "into the past")]
    fn scheduling_into_the_past_panics() {
        let mut q = EventQueue::new();
        q.schedule(10, 1);
        let _ = q.pop();
        q.schedule(5, 2);
    }

    #[test]
    fn cancel_before_fire_revokes_the_event() {
        let mut q = EventQueue::new();
        let t = q.schedule_cancellable(20, "timeout");
        q.schedule(10, "reply");
        assert_eq!(q.len(), 2);
        assert!(q.cancel(t));
        assert_eq!(q.len(), 1);
        assert_eq!(q.pop(), Some((10, "reply")));
        assert_eq!(q.pop(), None, "cancelled event must never fire");
        assert!(q.is_empty());
    }

    #[test]
    fn cancel_after_fire_is_a_noop() {
        let mut q = EventQueue::new();
        let t = q.schedule_cancellable(5, "timer");
        assert_eq!(q.pop(), Some((5, "timer")));
        assert!(!q.cancel(t), "firing consumes the token");
        // Double-cancel is also a no-op.
        let t2 = q.schedule_in_cancellable(3, "again");
        assert!(q.cancel(t2));
        assert!(!q.cancel(t2));
    }

    #[test]
    fn cancellation_does_not_disturb_ordering_or_clock() {
        let mut q = EventQueue::new();
        let a = q.schedule_cancellable(10, 'a');
        q.schedule(20, 'b');
        let c = q.schedule_cancellable(30, 'c');
        q.cancel(a);
        assert_eq!(q.pop(), Some((20, 'b')));
        assert_eq!(q.now(), 20);
        q.cancel(c);
        assert_eq!(q.pop(), None);
        // The clock never advanced to a cancelled event's time.
        assert_eq!(q.now(), 20);
    }

    #[test]
    fn cancellable_and_plain_events_interleave() {
        let mut q = EventQueue::new();
        let tokens: Vec<_> = (0..10).map(|i| q.schedule_cancellable(i, i)).collect();
        for t in tokens.iter().step_by(2) {
            assert!(q.cancel(*t));
        }
        let fired: Vec<u64> = std::iter::from_fn(|| q.pop().map(|(_, e)| e)).collect();
        assert_eq!(fired, vec![1, 3, 5, 7, 9]);
    }

    #[test]
    fn interleaved_schedule_pop() {
        let mut q = EventQueue::new();
        q.schedule(1, 'a');
        q.schedule(100, 'z');
        assert_eq!(q.pop(), Some((1, 'a')));
        q.schedule_in(2, 'b');
        assert_eq!(q.pop(), Some((3, 'b')));
        assert_eq!(q.pop(), Some((100, 'z')));
        assert_eq!(q.len(), 0);
    }
}
