//! Discrete-event simulation primitives.
//!
//! A minimal, deterministic event queue used by the message-level
//! protocol engine (`hieras-proto`): events carry a firing time in
//! simulated milliseconds; ties break by insertion sequence so runs are
//! reproducible bit-for-bit.

use std::cmp::Reverse;
use std::collections::BinaryHeap;

/// Simulated time in milliseconds since simulation start.
pub type SimClock = u64;

/// An event scheduled at a point in simulated time.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TimedEvent<E> {
    /// Firing time (ms).
    pub at: SimClock,
    /// Monotonic insertion sequence (tie-breaker).
    pub seq: u64,
    /// The payload.
    pub event: E,
}

impl<E: Eq> Ord for TimedEvent<E> {
    fn cmp(&self, other: &Self) -> core::cmp::Ordering {
        (self.at, self.seq).cmp(&(other.at, other.seq))
    }
}

impl<E: Eq> PartialOrd for TimedEvent<E> {
    fn partial_cmp(&self, other: &Self) -> Option<core::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

/// A deterministic future-event list.
///
/// ```
/// use hieras_sim::EventQueue;
/// let mut q = EventQueue::new();
/// q.schedule(10, "b");
/// q.schedule(5, "a");
/// q.schedule(10, "c"); // same time as "b": FIFO among ties
/// assert_eq!(q.pop(), Some((5, "a")));
/// assert_eq!(q.pop(), Some((10, "b")));
/// assert_eq!(q.pop(), Some((10, "c")));
/// assert_eq!(q.pop(), None);
/// ```
#[derive(Debug, Clone)]
pub struct EventQueue<E: Eq> {
    heap: BinaryHeap<Reverse<TimedEvent<E>>>,
    next_seq: u64,
    now: SimClock,
}

impl<E: Eq> Default for EventQueue<E> {
    fn default() -> Self {
        Self::new()
    }
}

impl<E: Eq> EventQueue<E> {
    /// An empty queue at time 0.
    #[must_use]
    pub fn new() -> Self {
        EventQueue { heap: BinaryHeap::new(), next_seq: 0, now: 0 }
    }

    /// Current simulated time: the firing time of the last popped
    /// event (0 before any pop).
    #[must_use]
    pub fn now(&self) -> SimClock {
        self.now
    }

    /// Schedules `event` at absolute time `at`.
    ///
    /// # Panics
    /// Panics if `at` is in the past — scheduling into the past is a
    /// protocol-logic bug, not a recoverable condition.
    pub fn schedule(&mut self, at: SimClock, event: E) {
        assert!(at >= self.now, "cannot schedule into the past ({at} < {})", self.now);
        let seq = self.next_seq;
        self.next_seq += 1;
        self.heap.push(Reverse(TimedEvent { at, seq, event }));
    }

    /// Schedules `event` `delay` ms after the current time.
    pub fn schedule_in(&mut self, delay: SimClock, event: E) {
        self.schedule(self.now + delay, event);
    }

    /// Pops the earliest event, advancing the clock to its time.
    pub fn pop(&mut self) -> Option<(SimClock, E)> {
        let Reverse(te) = self.heap.pop()?;
        self.now = te.at;
        Some((te.at, te.event))
    }

    /// Number of pending events.
    #[must_use]
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// True if no events are pending.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pops_in_time_order() {
        let mut q = EventQueue::new();
        q.schedule(30, 3);
        q.schedule(10, 1);
        q.schedule(20, 2);
        assert_eq!(q.pop(), Some((10, 1)));
        assert_eq!(q.pop(), Some((20, 2)));
        assert_eq!(q.pop(), Some((30, 3)));
        assert!(q.is_empty());
    }

    #[test]
    fn ties_break_fifo() {
        let mut q = EventQueue::new();
        for i in 0..10 {
            q.schedule(5, i);
        }
        for i in 0..10 {
            assert_eq!(q.pop(), Some((5, i)));
        }
    }

    #[test]
    fn clock_advances_with_pops() {
        let mut q = EventQueue::new();
        q.schedule(7, "x");
        assert_eq!(q.now(), 0);
        let _ = q.pop();
        assert_eq!(q.now(), 7);
        q.schedule_in(3, "y");
        assert_eq!(q.pop(), Some((10, "y")));
    }

    #[test]
    #[should_panic(expected = "into the past")]
    fn scheduling_into_the_past_panics() {
        let mut q = EventQueue::new();
        q.schedule(10, 1);
        let _ = q.pop();
        q.schedule(5, 2);
    }

    #[test]
    fn interleaved_schedule_pop() {
        let mut q = EventQueue::new();
        q.schedule(1, 'a');
        q.schedule(100, 'z');
        assert_eq!(q.pop(), Some((1, 'a')));
        q.schedule_in(2, 'b');
        assert_eq!(q.pop(), Some((3, 'b')));
        assert_eq!(q.pop(), Some((100, 'z')));
        assert_eq!(q.len(), 0);
    }
}
