//! Trace-driven simulation of HIERAS vs. Chord — the paper's §4.
//!
//! The pipeline mirrors the paper's evaluation exactly:
//!
//! 1. Generate a network model ([`TopologyKind`]: GT-ITM Transit-Stub,
//!    Inet or BRITE) and place N overlay peers on it.
//! 2. Pick landmark routers, measure each peer's landmark RTTs through
//!    the latency oracle, and bin peers into rings.
//! 3. Build the Chord baseline and the HIERAS hierarchy over the same
//!    membership.
//! 4. Replay R uniform-random routing requests (the paper uses
//!    100 000) through both, collecting hop and latency metrics.
//!
//! [`Experiment`] owns steps 1–3; [`Experiment::run`] performs step 4
//! in parallel on the in-tree `hieras_rt::Executor` with deterministic
//! per-request RNG streams and a fixed chunked merge order, so the same
//! seed always reproduces the same numbers — bit-identical — regardless
//! of thread count.
//!
//! The crate also hosts the discrete-event machinery ([`EventQueue`],
//! [`SimClock`]) used by the message-level protocol engine
//! (`hieras-proto`) for churn and join-cost experiments.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod churn;
mod des;
mod experiment;
mod metrics;
mod workload;

pub use churn::{ChurnConfig, ChurnEvent, ChurnEventKind, ChurnSchedule, Lifetime};
pub use des::{CancelToken, EventQueue, SimClock, TimedEvent};
pub use experiment::{
    AlgoStats, BuildOptions, ComparisonResult, Experiment, ExperimentConfig, OracleBackend,
    TopologyKind,
};
pub use metrics::{Cdf, Histogram, Metrics, Sample, Summary, TailLatency};
pub use workload::{
    FlashCrowd, SkewParams, Workload, WorkloadModel, WorkloadSpec, HOT_RANK_MAX,
};
