//! Dumps a small churn schedule as JSON — a determinism-debugging aid.
//!
//! ```text
//! cargo run -p hieras-sim --bin churn_trace [-- seed [initial arrivals horizon_ms]] \
//!     [--out <path>]
//! ```
//!
//! Prints the configuration, every per-node fate (birth, departure,
//! graceful?), and the materialized event log. Two runs with the same
//! arguments must emit byte-identical output; diffing two seeds shows
//! exactly which sampled quantity moved. With `--out <path>` the JSON
//! goes to a file instead of stdout; a failed write exits non-zero.

use hieras_sim::{ChurnConfig, ChurnEventKind, Lifetime};
use hieras_rt::{Json, ToJson};

fn main() {
    let mut out_path: Option<String> = None;
    let mut nums: Vec<u64> = Vec::new();
    let mut raw = std::env::args().skip(1);
    while let Some(a) = raw.next() {
        if a == "--out" {
            match raw.next() {
                Some(p) => out_path = Some(p),
                None => {
                    eprintln!("--out needs a path argument");
                    std::process::exit(2);
                }
            }
        } else {
            nums.push(a.parse().unwrap_or_else(|_| usage(&a)));
        }
    }
    let seed = nums.first().copied().unwrap_or(1);
    let initial = nums.get(1).copied().unwrap_or(20) as u32;
    let arrivals = nums.get(2).copied().unwrap_or(10) as u32;
    let horizon_ms = nums.get(3).copied().unwrap_or(60_000);

    let cfg = ChurnConfig {
        initial_nodes: initial,
        arrivals,
        inter_arrival: Lifetime::Exponential { mean_ms: horizon_ms as f64 / (arrivals.max(1) as f64) },
        lifetime: Lifetime::Exponential { mean_ms: horizon_ms as f64 / 2.0 },
        graceful_fraction: 0.5,
        horizon_ms,
        seed,
    };
    let schedule = cfg.schedule();

    let fates: Vec<Json> = (0..schedule.nodes_total)
        .map(|i| {
            let (birth, departure, graceful) = cfg.node_fate(i);
            Json::obj([
                ("node", i.to_json()),
                ("birth_ms", birth.to_json()),
                ("departure_ms", departure.to_json()),
                ("graceful", graceful.to_json()),
            ])
        })
        .collect();
    let events: Vec<Json> = schedule.events.iter().map(ToJson::to_json).collect();
    let counts = |k: &str| {
        schedule.events.iter().filter(|e| e.kind.label() == k).count()
    };
    let fails = schedule
        .events
        .iter()
        .filter(|e| matches!(e.kind, ChurnEventKind::Fail { .. }))
        .count();

    let out = Json::obj([
        ("seed", seed.to_json()),
        ("initial_nodes", initial.to_json()),
        ("arrivals", arrivals.to_json()),
        ("horizon_ms", horizon_ms.to_json()),
        ("inter_arrival", cfg.inter_arrival.to_json()),
        ("lifetime", cfg.lifetime.to_json()),
        ("joins", counts("join").to_json()),
        ("leaves", counts("leave").to_json()),
        ("fails", fails.to_json()),
        ("turnover", schedule.turnover(initial).to_json()),
        ("fates", Json::Arr(fates)),
        ("events", Json::Arr(events)),
    ]);
    let text = out.dump_pretty();
    match out_path {
        Some(path) => {
            if let Err(err) = std::fs::write(&path, &text) {
                eprintln!("cannot write `{path}`: {err}");
                std::process::exit(1);
            }
            println!("wrote {path}");
        }
        None => println!("{text}"),
    }
}

fn usage(bad: &str) -> ! {
    eprintln!("invalid argument `{bad}`");
    eprintln!("usage: churn_trace [seed [initial arrivals horizon_ms]] [--out <path>]");
    std::process::exit(2);
}
