//! Experiment assembly and parallel replay — the paper's §4 pipeline.

use crate::metrics::{Metrics, Sample};
use crate::Workload;
use hieras_chord::{ChordOracle, PathBuf};
use hieras_core::{HierasConfig, HierasOracle, LandmarkOrder};
use hieras_id::{Id, IdSpace};
use hieras_obs::{names, Profiler, Registry};
use hieras_topology::{BriteConfig, InetConfig, LatencyOracle, Topology, TransitStubConfig};
use hieras_rt::{Executor, FromJson, Json, JsonError, Rng, ToJson};
use std::collections::HashSet;
use std::sync::Arc;

/// Which of the paper's three network models to simulate (§4.1).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TopologyKind {
    /// GT-ITM Transit-Stub — the primary model.
    TransitStub,
    /// Inet-style power-law AS topology (paper minimum: 3000 nodes).
    Inet,
    /// BRITE-style Barabási–Albert with planar delays.
    Brite,
}

impl TopologyKind {
    /// Short name used in figure output ("TS", "Inet", "BRITE").
    #[must_use]
    pub fn label(self) -> &'static str {
        match self {
            TopologyKind::TransitStub => "TS",
            TopologyKind::Inet => "Inet",
            TopologyKind::Brite => "BRITE",
        }
    }

    fn generate_on(self, exec: &Executor, peers: usize, seed: u64) -> Topology {
        match self {
            TopologyKind::TransitStub => {
                TransitStubConfig::for_peers(peers, seed).generate_on(exec)
            }
            TopologyKind::Inet => InetConfig::for_peers(peers, seed).generate_on(exec),
            TopologyKind::Brite => BriteConfig::for_peers(peers, seed).generate_on(exec),
        }
    }
}

impl ToJson for TopologyKind {
    fn to_json(&self) -> Json {
        Json::Str(
            match self {
                TopologyKind::TransitStub => "transit_stub",
                TopologyKind::Inet => "inet",
                TopologyKind::Brite => "brite",
            }
            .to_owned(),
        )
    }
}

impl FromJson for TopologyKind {
    fn from_json(v: &Json) -> Result<Self, JsonError> {
        match v.as_str() {
            Some("transit_stub") => Ok(TopologyKind::TransitStub),
            Some("inet") => Ok(TopologyKind::Inet),
            Some("brite") => Ok(TopologyKind::Brite),
            _ => Err(JsonError("expected topology kind string".into())),
        }
    }
}

/// Full description of one simulation run.
#[derive(Debug, Clone, PartialEq)]
pub struct ExperimentConfig {
    /// Network model.
    pub kind: TopologyKind,
    /// Number of overlay peers (the paper sweeps 1000–10000).
    pub nodes: usize,
    /// Number of routing requests to replay (the paper uses 100 000).
    pub requests: usize,
    /// HIERAS parameters (depth, landmarks, binning).
    pub hieras: HierasConfig,
    /// Master seed: topology, placement, ids and workload all derive
    /// from it deterministically.
    pub seed: u64,
    /// Multiplicative landmark-RTT measurement noise: each RTT is
    /// scaled by a uniform factor in `[1-noise, 1+noise]` before
    /// binning. 0.0 reproduces the paper's exact-measurement setting;
    /// > 0 models `ping` inaccuracy (§2.2 ablation).
    pub rtt_noise: f64,
}

impl ExperimentConfig {
    /// The paper's standard setup at a given network size: TS model,
    /// 2-layer HIERAS with 4 landmarks, 100 000 requests.
    #[must_use]
    pub fn paper(nodes: usize, seed: u64) -> Self {
        ExperimentConfig {
            kind: TopologyKind::TransitStub,
            nodes,
            requests: 100_000,
            hieras: HierasConfig::paper(),
            seed,
            rtt_noise: 0.0,
        }
    }
}

impl ToJson for ExperimentConfig {
    fn to_json(&self) -> Json {
        Json::obj([
            ("kind", self.kind.to_json()),
            ("nodes", self.nodes.to_json()),
            ("requests", self.requests.to_json()),
            ("hieras", self.hieras.to_json()),
            ("seed", self.seed.to_json()),
            ("rtt_noise", self.rtt_noise.to_json()),
        ])
    }
}

impl FromJson for ExperimentConfig {
    fn from_json(v: &Json) -> Result<Self, JsonError> {
        Ok(ExperimentConfig {
            kind: v.field("kind")?,
            nodes: v.field("nodes")?,
            requests: v.field("requests")?,
            hieras: v.field("hieras")?,
            seed: v.field("seed")?,
            rtt_noise: v.field("rtt_noise")?,
        })
    }
}

/// Replay results for both algorithms over the identical workload.
#[derive(Debug, Clone, PartialEq)]
pub struct ComparisonResult {
    /// Chord baseline metrics.
    pub chord: Metrics,
    /// HIERAS metrics.
    pub hieras: Metrics,
}

impl ToJson for ComparisonResult {
    fn to_json(&self) -> Json {
        Json::obj([("chord", self.chord.to_json()), ("hieras", self.hieras.to_json())])
    }
}

impl FromJson for ComparisonResult {
    fn from_json(v: &Json) -> Result<Self, JsonError> {
        Ok(ComparisonResult { chord: v.field("chord")?, hieras: v.field("hieras")? })
    }
}

/// Per-algorithm view used by sweep helpers.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AlgoStats {
    /// The Chord baseline.
    Chord,
    /// HIERAS.
    Hieras,
}

/// Which [`LatencyOracle`] backend an experiment builds on. Every
/// backend answers identical latencies — exactness is an invariant,
/// not a quality setting — so the choice only moves build time,
/// memory, and per-query cost.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum OracleBackend {
    /// Unbounded lazy Dijkstra rows ([`LatencyOracle::new`]). O(1)
    /// queries; O(N²) residency once every source has been touched.
    #[default]
    Rows,
    /// Row cache capped at this many resident rows
    /// ([`LatencyOracle::with_row_budget`]).
    Bounded(usize),
    /// Exact 2-hop hub labels ([`LatencyOracle::with_labels_on`]):
    /// sub-quadratic build and memory, label-merge queries.
    Labels,
}

impl OracleBackend {
    /// Short name used in bench output ("rows", "bounded", "labels").
    #[must_use]
    pub fn label(self) -> &'static str {
        match self {
            OracleBackend::Rows => "rows",
            OracleBackend::Bounded(_) => "bounded",
            OracleBackend::Labels => "labels",
        }
    }
}

/// Knobs for [`Experiment::build_with`] that change *how* (not what)
/// an experiment is assembled: the executor every parallel build phase
/// runs on, the latency-oracle backend, and whether to warm the
/// latency cache up front. All combinations produce identical routing
/// structures; with an unbounded or labels oracle the replay metrics
/// are bit-identical too.
#[derive(Debug, Clone, Copy)]
pub struct BuildOptions {
    /// Executor for ring construction, label builds, and latency
    /// precompute.
    pub exec: Executor,
    /// Latency-oracle backend to build on.
    pub oracle: OracleBackend,
    /// Warm the latency rows of every peer router during build. Skip
    /// for memory-bounded runs where rows should fault in on demand;
    /// a no-op on the labels backend (its build is its precompute).
    pub precompute: bool,
}

impl Default for BuildOptions {
    fn default() -> Self {
        BuildOptions { exec: Executor::default(), oracle: OracleBackend::Rows, precompute: true }
    }
}

/// A fully assembled experiment: topology, peer placement, landmark
/// measurements, and both routing structures over one membership.
pub struct Experiment {
    /// The configuration this experiment realizes.
    pub config: ExperimentConfig,
    /// The generated internetwork.
    pub topo: Topology,
    /// Latency oracle over the router graph.
    pub lat: LatencyOracle,
    /// Attachment router of each overlay peer.
    pub router_of: Vec<u32>,
    /// Node identifiers (index = peer).
    pub ids: Arc<[Id]>,
    /// Landmark routers.
    pub landmarks: Vec<u32>,
    /// Landmark orders per peer (after optional noise).
    pub orders: Vec<LandmarkOrder>,
    /// The Chord baseline.
    pub chord: ChordOracle,
    /// The HIERAS hierarchy.
    pub hieras: HierasOracle,
}

impl Experiment {
    /// Requests per work chunk. Each request is a pair of table
    /// lookups (microseconds), so a few hundred per claim amortizes
    /// the atomic increment without starving the workers.
    const REPLAY_CHUNK: usize = 256;

    /// Assembles the experiment: generates the topology, places peers,
    /// measures landmark RTTs, bins, and builds both DHTs.
    ///
    /// This is the expensive step (it warms the latency rows of every
    /// peer router in parallel); [`Experiment::run`] afterwards is pure
    /// replay.
    ///
    /// # Panics
    /// Panics on invalid configurations (zero nodes) or on the
    /// astronomically unlikely failure to find distinct 64-bit ids.
    #[must_use]
    pub fn build(config: ExperimentConfig) -> Self {
        Self::build_profiled(config, &mut Profiler::new())
    }

    /// [`Experiment::build`] with every assembly phase timed into
    /// `prof` as a `build` scope (topology generation, peer placement,
    /// landmark selection, binning, id generation, both DHT builds,
    /// and the parallel latency precompute). The built experiment is
    /// identical to an unprofiled build.
    ///
    /// # Panics
    /// As [`Experiment::build`].
    #[must_use]
    pub fn build_profiled(config: ExperimentConfig, prof: &mut Profiler) -> Self {
        Self::build_with(config, prof, BuildOptions::default())
    }

    /// [`Experiment::build_profiled`] with explicit [`BuildOptions`]:
    /// the parallel phases (finger tables, label builds, latency
    /// precompute) run on `opts.exec`, and the latency oracle is built
    /// on the backend `opts.oracle` selects.
    ///
    /// # Panics
    /// As [`Experiment::build`].
    #[must_use]
    #[allow(clippy::too_many_lines)] // linear phase sequence, one scope per step
    pub fn build_with(config: ExperimentConfig, prof: &mut Profiler, opts: BuildOptions) -> Self {
        assert!(config.nodes > 0, "experiment needs at least one peer");
        config.hieras.validate().expect("invalid HIERAS config");
        prof.start("build");
        prof.start("topology");
        let topo = config.kind.generate_on(&opts.exec, config.nodes, config.seed);
        prof.end();
        let mut rng = Rng::seed_from_u64(config.seed ^ 0xe9_5e_ed_5e_ed);
        prof.start("place_peers");
        let router_of = topo.place_peers(config.nodes, &mut rng);
        prof.end();
        // The oracle build is the dominant cost at scale for the
        // labels backend (the row backends defer theirs to
        // latency_precompute / query time), so it gets its own phase.
        prof.start("latency_oracle");
        let lat = match opts.oracle {
            OracleBackend::Rows => LatencyOracle::new(topo.graph.clone()),
            OracleBackend::Bounded(b) => LatencyOracle::with_row_budget(topo.graph.clone(), b),
            OracleBackend::Labels => LatencyOracle::with_labels_on(&opts.exec, topo.graph.clone()),
        };
        prof.end();

        // Landmarks + per-peer RTT measurement. Only the landmark rows
        // are needed here (cheap: L Dijkstras).
        prof.start("landmarks");
        let lm_count = config.hieras.landmarks;
        let landmarks = if lm_count > 0 {
            topo.pick_landmarks(lm_count, &lat, &mut rng)
        } else {
            Vec::new()
        };
        prof.end();
        prof.start("binning");
        let mut orders = Vec::with_capacity(config.nodes);
        let binning = &config.hieras.binning;
        for &r in &router_of {
            let rtts: Vec<u16> = landmarks.iter().map(|&lm| lat.latency(lm, r)).collect();
            if config.rtt_noise > 0.0 {
                let noise: Vec<f64> = (0..rtts.len())
                    .map(|_| 1.0 + rng.random_range(-config.rtt_noise..=config.rtt_noise))
                    .collect();
                orders.push(binning.order_with_noise(&rtts, &noise));
            } else {
                orders.push(binning.order(&rtts));
            }
        }
        prof.end();

        // Locality packing: renumber peers by binning order (stable on
        // the old index) so every ring's membership — a ring is an
        // order-prefix group at each layer — becomes a contiguous peer
        // range. Packed ring arenas then walk `ids`/`router_of`
        // sequentially instead of striding the whole peer space. Peers
        // are interchangeable before ids exist, so this changes which
        // id a peer draws, not any distribution the experiment samples.
        prof.start("locality_pack");
        let mut perm: Vec<u32> = (0..config.nodes as u32).collect();
        perm.sort_by(|&a, &b| orders[a as usize].cmp(&orders[b as usize]).then(a.cmp(&b)));
        let router_of: Vec<u32> = perm.iter().map(|&p| router_of[p as usize]).collect();
        let orders: Vec<LandmarkOrder> =
            perm.iter().map(|&p| orders[p as usize].clone()).collect();
        prof.end();

        // Unique node identifiers (production path: SHA-1 of a name).
        prof.start("ids");
        let mut seen = HashSet::with_capacity(config.nodes);
        let mut ids = Vec::with_capacity(config.nodes);
        for i in 0..config.nodes {
            let mut salt = 0u32;
            loop {
                let id =
                    Id::hash_of(format!("node-{seed}-{i}-{salt}", seed = config.seed).as_bytes());
                if seen.insert(id) {
                    ids.push(id);
                    break;
                }
                salt += 1;
                assert!(salt < 64, "could not find a distinct id — broken hash?");
            }
        }
        let ids: Arc<[Id]> = ids.into();
        prof.end();
        let space = IdSpace::full();
        prof.start("chord_build");
        let chord =
            ChordOracle::build_on(&opts.exec, space, Arc::clone(&ids)).expect("ids are distinct");
        prof.end();
        prof.start("hieras_build");
        let hieras = HierasOracle::build_on(
            &opts.exec,
            space,
            Arc::clone(&ids),
            orders.clone(),
            config.hieras.clone(),
        )
        .expect("validated config and matching orders");
        prof.end();

        // Warm the latency rows every replay hop can touch, in
        // parallel. Labels need no warming: their build already
        // answers every pair.
        prof.start("latency_precompute");
        if opts.precompute && opts.oracle != OracleBackend::Labels {
            let mut distinct: Vec<u32> = router_of.clone();
            distinct.sort_unstable();
            distinct.dedup();
            lat.precompute_on(&opts.exec, &distinct);
        }
        prof.end();
        prof.end(); // build

        Experiment { config, topo, lat, router_of, ids, landmarks, orders, chord, hieras }
    }

    /// Link latency between two *peers* (their attachment routers).
    #[inline]
    #[must_use]
    pub fn peer_latency(&self, a: u32, b: u32) -> u16 {
        self.lat.latency(self.router_of[a as usize], self.router_of[b as usize])
    }

    /// Builds a HIERAS hierarchy over a *subset* of this experiment's
    /// peers — the snapshot constructor of the live serving engine.
    /// `members` are global peer indices (ascending, the live set of a
    /// churn epoch); `orders` and `config` default to this experiment's
    /// own when `None`, or carry re-binned orders after a landmark
    /// change. The resulting oracle shares this experiment's id table
    /// (`Arc` clone) and speaks global indices, so
    /// [`Experiment::peer_latency`] remains the link callback.
    ///
    /// # Errors
    /// See [`hieras_core::HierasBuildError`].
    pub fn subset_hieras_on(
        &self,
        exec: &Executor,
        members: &[u32],
        orders: Option<&[LandmarkOrder]>,
        config: Option<&HierasConfig>,
    ) -> Result<HierasOracle, hieras_core::HierasBuildError> {
        HierasOracle::build_members_on(
            exec,
            self.hieras.space(),
            Arc::clone(&self.ids),
            orders.unwrap_or(&self.orders).to_vec(),
            members,
            config.unwrap_or(self.hieras.config()).clone(),
        )
    }

    /// Replays `requests` random lookups through both algorithms in
    /// parallel and returns the merged metrics. Deterministic in the
    /// experiment seed regardless of thread count.
    #[must_use]
    pub fn run_requests(&self, requests: usize) -> ComparisonResult {
        self.run_requests_on(&Executor::default(), requests)
    }

    /// Like [`Experiment::run_requests`] but on a caller-supplied
    /// executor — used to pin the thread count (determinism tests, the
    /// bench harness). The chunk size is fixed independently of the
    /// executor, so the merged metrics — including the order of
    /// `latency_samples` — are bit-identical at any parallelism level.
    #[must_use]
    pub fn run_requests_on(&self, exec: &Executor, requests: usize) -> ComparisonResult {
        let w = Workload::new(self.config.nodes as u32, requests, self.config.seed ^ 0x517c_c1b7);
        // Each chunk accumulator carries its own path scratch, so the
        // hot loop never touches the heap; the scratch is dropped at
        // merge time and cannot influence the metrics.
        let (chord, hieras, _) = exec.par_fold(
            requests,
            Self::REPLAY_CHUNK,
            || (Metrics::default(), Metrics::default(), PathBuf::new()),
            |acc, i| {
                let (src, key) = w.request(i);
                let cs = self.eval_chord(src, key, &mut acc.2);
                let hs = self.eval_hieras(src, key, &mut acc.2);
                acc.0.record(cs);
                acc.1.record(hs);
            },
            |a, b| (a.0.merged(b.0), a.1.merged(b.1), a.2),
        );
        ComparisonResult { chord, hieras }
    }

    /// Replays the configured number of requests.
    #[must_use]
    pub fn run(&self) -> ComparisonResult {
        self.run_requests(self.config.requests)
    }

    /// Replays an arbitrary [`Workload`] — uniform or skewed — through
    /// both algorithms. With `Workload::new(nodes, requests,
    /// seed ^ 0x517c_c1b7)` this reproduces [`Experiment::run_requests_on`]
    /// bit-exactly; skewed models reuse the same chunked merge, so
    /// they are equally thread-invariant.
    ///
    /// # Panics
    /// Panics if the workload draws sources outside this experiment's
    /// peer range.
    #[must_use]
    pub fn run_workload_on(&self, exec: &Executor, w: &Workload) -> ComparisonResult {
        assert!(
            w.nodes as usize <= self.config.nodes,
            "workload sources exceed the peer range"
        );
        let (chord, hieras, _) = exec.par_fold(
            w.requests,
            Self::REPLAY_CHUNK,
            || (Metrics::default(), Metrics::default(), PathBuf::new()),
            |acc, i| {
                let (src, key) = w.request(i);
                let cs = self.eval_chord(src, key, &mut acc.2);
                let hs = self.eval_hieras(src, key, &mut acc.2);
                acc.0.record(cs);
                acc.1.record(hs);
            },
            |a, b| (a.0.merged(b.0), a.1.merged(b.1), a.2),
        );
        ComparisonResult { chord, hieras }
    }

    /// Like [`Experiment::run_requests_on`] but additionally folds a
    /// per-chunk [`Registry`] (hop / latency histograms per algorithm,
    /// a request counter) alongside the metrics. Chunks merge in
    /// deterministic chunk order and the registry itself is
    /// merge-order-invariant, so the merged snapshot — like the
    /// metrics — is byte-identical at any thread count.
    #[must_use]
    pub fn run_requests_traced(
        &self,
        exec: &Executor,
        requests: usize,
    ) -> (ComparisonResult, Registry) {
        let w = Workload::new(self.config.nodes as u32, requests, self.config.seed ^ 0x517c_c1b7);
        let (chord, hieras, reg, _) = exec.par_fold(
            requests,
            Self::REPLAY_CHUNK,
            || (Metrics::default(), Metrics::default(), Registry::new(), PathBuf::new()),
            |acc, i| {
                let (src, key) = w.request(i);
                let cs = self.eval_chord(src, key, &mut acc.3);
                let hs = self.eval_hieras(src, key, &mut acc.3);
                acc.2.inc(names::REPLAY_REQUESTS);
                acc.2.observe(names::REPLAY_CHORD_HOPS, u64::from(cs.hops));
                acc.2.observe(names::REPLAY_CHORD_LATENCY_MS, u64::from(cs.latency_ms));
                acc.2.observe(names::REPLAY_HIERAS_HOPS, u64::from(hs.hops));
                acc.2.observe(names::REPLAY_HIERAS_LOWER_HOPS, u64::from(hs.lower_hops));
                acc.2.observe(names::REPLAY_HIERAS_LATENCY_MS, u64::from(hs.latency_ms));
                acc.0.record(cs);
                acc.1.record(hs);
            },
            |a, b| (a.0.merged(b.0), a.1.merged(b.1), a.2.merged(b.2), a.3),
        );
        (ComparisonResult { chord, hieras }, reg)
    }

    /// One Chord lookup, evaluated allocation-free: the path lands in
    /// `scratch` and is costed in place.
    fn eval_chord(&self, src: u32, key: Id, scratch: &mut PathBuf) -> Sample {
        self.chord.lookup_into(src, key, scratch);
        let path = scratch.as_slice();
        let mut latency = 0u32;
        for w in path.windows(2) {
            latency += u32::from(self.peer_latency(w[0], w[1]));
        }
        Sample {
            hops: (path.len() - 1) as u32,
            lower_hops: 0,
            latency_ms: latency,
            lower_latency_ms: 0,
        }
    }

    /// One HIERAS route, evaluated allocation-free via
    /// [`HierasOracle::eval`] — no `RouteTrace` is materialized.
    fn eval_hieras(&self, src: u32, key: Id, scratch: &mut PathBuf) -> Sample {
        let c = self.hieras.eval(src, key, scratch, |a, b| self.peer_latency(a, b));
        Sample {
            hops: c.hops,
            lower_hops: c.lower_hops,
            latency_ms: c.latency_ms as u32,
            lower_latency_ms: c.lower_latency_ms as u32,
        }
    }

    /// Publishes the latency oracle's state into `reg`: the
    /// [`hieras_topology::CacheStats`] as `latency_cache.*` on the row
    /// backends, and the [`hieras_topology::LabelStats`] plus query
    /// counter as `latency_labels.*` on the labels backend. The packed
    /// routing-state footprint goes out as `ring_arena.*` on every
    /// backend, and the per-thread memo tallies as `label_memo.*`
    /// where the labels backend has one.
    pub fn record_cache_stats(&self, reg: &mut Registry) {
        let arena = self.hieras.arena_stats();
        reg.gauge_set(names::RING_ARENA_RINGS, arena.rings as i64);
        reg.gauge_set(names::RING_ARENA_MEMBER_SLOTS, arena.member_slots as i64);
        reg.gauge_set(names::RING_ARENA_BYTES, arena.bytes as i64);
        if let Some((hits, misses)) = self.lat.memo_stats() {
            reg.inc_by(names::LABEL_MEMO_HITS, hits);
            reg.inc_by(names::LABEL_MEMO_MISSES, misses);
        }
        if let Some((l, queries)) = self.lat.label_stats() {
            reg.gauge_set(names::LATENCY_LABELS_HUBS, l.hubs as i64);
            reg.gauge_set(names::LATENCY_LABELS_ENTRIES, l.entries as i64);
            #[allow(clippy::cast_possible_truncation)] // label lists are tiny
            reg.gauge_set(names::LATENCY_LABELS_AVG_LEN_MILLI, (l.avg_len * 1000.0) as i64);
            reg.gauge_set(names::LATENCY_LABELS_MAX_LEN, l.max_len as i64);
            #[allow(clippy::cast_possible_truncation)]
            reg.gauge_set(names::LATENCY_LABELS_BUILD_MS, l.build_ms as i64);
            reg.gauge_set(names::LATENCY_LABELS_BYTES, self.lat.cache_bytes() as i64);
            reg.inc_by(names::LATENCY_LABELS_QUERIES, queries);
            return;
        }
        let s = self.lat.cache_stats();
        reg.inc_by(names::LATENCY_CACHE_HITS, s.hits);
        reg.inc_by(names::LATENCY_CACHE_MISSES, s.misses);
        reg.inc_by(names::LATENCY_CACHE_EVICTIONS, s.evictions);
        reg.gauge_set(names::LATENCY_CACHE_PINNED_ROWS, s.pinned as i64);
        reg.gauge_set(names::LATENCY_CACHE_RESIDENT_ROWS, s.resident as i64);
        if let Some(b) = s.budget {
            reg.gauge_set(names::LATENCY_CACHE_ROW_BUDGET, b as i64);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small_cfg() -> ExperimentConfig {
        ExperimentConfig {
            kind: TopologyKind::TransitStub,
            nodes: 300,
            requests: 2000,
            hieras: HierasConfig::paper(),
            seed: 7,
            rtt_noise: 0.0,
        }
    }

    #[test]
    fn build_produces_consistent_structures() {
        let e = Experiment::build(small_cfg());
        assert_eq!(e.ids.len(), 300);
        assert_eq!(e.router_of.len(), 300);
        assert_eq!(e.landmarks.len(), 4);
        assert_eq!(e.chord.len(), 300);
        assert_eq!(e.hieras.len(), 300);
        assert!(e.hieras.layers()[1].ring_count() > 1, "binning produced a single ring");
    }

    #[test]
    fn hieras_beats_chord_on_latency_in_ts_model() {
        let e = Experiment::build(small_cfg());
        let r = e.run();
        let (c, h) = (r.chord.summary(), r.hieras.summary());
        assert_eq!(c.requests, 2000);
        // The paper's headline (Fig. 3): HIERAS latency well below Chord.
        assert!(
            h.avg_latency_ms < 0.85 * c.avg_latency_ms,
            "HIERAS {h:.1?} vs Chord {c:.1?}"
        );
        // Hops comparable (within ~15 % — paper: +0.8..3.4 %).
        assert!(h.avg_hops < 1.15 * c.avg_hops);
        // A solid share of hops run in the lower layer.
        assert!(h.lower_hop_share > 0.3, "lower-layer share {}", h.lower_hop_share);
        // Lower-layer links are cheaper on average than top links.
        assert!(h.avg_link_delay_lower_ms < c.avg_latency_ms / c.avg_hops);
    }

    #[test]
    fn replay_is_bit_identical_across_thread_counts() {
        let e = Experiment::build(ExperimentConfig { nodes: 200, ..small_cfg() });
        let base = e.run_requests_on(&Executor::new(1), 1500);
        for threads in [2, 3, 8] {
            let r = e.run_requests_on(&Executor::new(threads), 1500);
            assert_eq!(r, base, "metrics diverge at {threads} threads");
        }
    }

    #[test]
    fn traced_replay_matches_plain_and_is_thread_invariant() {
        let e = Experiment::build(ExperimentConfig { nodes: 200, ..small_cfg() });
        let plain = e.run_requests_on(&Executor::new(2), 1500);
        let (traced, reg) = e.run_requests_traced(&Executor::new(1), 1500);
        assert_eq!(traced, plain, "the registry fold must not perturb the metrics");
        assert_eq!(reg.counter(names::REPLAY_REQUESTS), 1500);
        assert_eq!(
            reg.hist(names::REPLAY_HIERAS_HOPS).unwrap().sum(),
            traced.hieras.total_hops,
            "histogram sum reconciles with the metric totals"
        );
        let snap = reg.snapshot();
        for threads in [2, 8] {
            let (_, r) = e.run_requests_traced(&Executor::new(threads), 1500);
            assert_eq!(r.snapshot(), snap, "registry snapshot diverges at {threads} threads");
        }
    }

    #[test]
    fn profiled_build_records_every_phase() {
        let mut prof = Profiler::new();
        let e = Experiment::build_profiled(
            ExperimentConfig { nodes: 120, ..small_cfg() },
            &mut prof,
        );
        assert_eq!(e.ids.len(), 120);
        let report = prof.report();
        assert_eq!(report.phases.len(), 1);
        assert_eq!(report.phases[0].name, "build");
        let children: Vec<&str> =
            report.phases[0].children.iter().map(|p| p.name.as_str()).collect();
        for want in
            ["topology", "place_peers", "latency_oracle", "landmarks", "binning",
             "locality_pack", "ids", "chord_build", "hieras_build", "latency_precompute"]
        {
            assert!(children.contains(&want), "phase {want} missing from {children:?}");
        }
        assert!(report.render().contains("hieras_build"));
    }

    #[test]
    fn build_is_bit_identical_across_thread_counts() {
        let cfg = ExperimentConfig { nodes: 200, ..small_cfg() };
        let base = Experiment::build_with(
            cfg.clone(),
            &mut Profiler::new(),
            BuildOptions { exec: Executor::new(1), ..BuildOptions::default() },
        )
        .run_requests_on(&Executor::new(1), 1200);
        for threads in [2, 8] {
            let e = Experiment::build_with(
                cfg.clone(),
                &mut Profiler::new(),
                BuildOptions { exec: Executor::new(threads), ..BuildOptions::default() },
            );
            let r = e.run_requests_on(&Executor::new(1), 1200);
            assert_eq!(r, base, "a {threads}-thread build changed the replay metrics");
        }
    }

    #[test]
    fn build_is_thread_invariant_on_every_model() {
        // End-to-end: topology generation, binning, locality packing,
        // and both ring builds all run on the supplied executor, and
        // the replay metrics must not notice its thread count.
        for kind in [TopologyKind::TransitStub, TopologyKind::Brite, TopologyKind::Inet] {
            let cfg = ExperimentConfig { kind, nodes: 150, requests: 0, ..small_cfg() };
            let build = |threads| {
                Experiment::build_with(
                    cfg.clone(),
                    &mut Profiler::new(),
                    BuildOptions { exec: Executor::new(threads), ..BuildOptions::default() },
                )
                .run_requests_on(&Executor::new(1), 600)
            };
            let base = build(1);
            for threads in [2, 8] {
                assert_eq!(
                    build(threads),
                    base,
                    "{threads}-thread build diverged on {}",
                    kind.label()
                );
            }
        }
    }

    #[test]
    fn locality_pack_makes_ring_members_contiguous() {
        let e = Experiment::build(small_cfg());
        // Binning orders must be sorted after the renumbering...
        assert!(e.orders.windows(2).all(|w| w[0] <= w[1]), "orders not locality-packed");
        // ...so every lower-layer ring owns a contiguous peer range
        // (the members array itself stays in ring/id order, so check
        // the span, not the sequence).
        for layer in &e.hieras.layers()[1..] {
            for (_, ring) in layer.rings() {
                let m = ring.members();
                let lo = *m.iter().min().unwrap();
                let hi = *m.iter().max().unwrap();
                assert_eq!(
                    (hi - lo + 1) as usize,
                    m.len(),
                    "ring members not a contiguous peer range"
                );
            }
        }
    }

    #[test]
    fn record_cache_stats_publishes_arena_footprint() {
        let e = Experiment::build(ExperimentConfig { nodes: 120, ..small_cfg() });
        let mut reg = Registry::new();
        e.record_cache_stats(&mut reg);
        let arena = e.hieras.arena_stats();
        assert_eq!(reg.gauge(names::RING_ARENA_RINGS), Some(arena.rings as i64));
        assert_eq!(reg.gauge(names::RING_ARENA_MEMBER_SLOTS), Some(arena.member_slots as i64));
        assert_eq!(reg.gauge(names::RING_ARENA_BYTES), Some(arena.bytes as i64));
        assert!(arena.member_slots >= 2 * 120, "every peer sits in ≥ 2 rings");
        // Rows backend: no memo counters.
        assert_eq!(reg.counter(names::LABEL_MEMO_HITS), 0);
        assert_eq!(reg.counter(names::LABEL_MEMO_MISSES), 0);
    }

    #[test]
    fn labels_backend_publishes_memo_counters() {
        let e = Experiment::build_with(
            ExperimentConfig { nodes: 120, ..small_cfg() },
            &mut Profiler::new(),
            BuildOptions { oracle: OracleBackend::Labels, ..BuildOptions::default() },
        );
        let _ = e.run_requests_on(&Executor::new(1), 800);
        let mut reg = Registry::new();
        e.record_cache_stats(&mut reg);
        let (hits, misses) = e.lat.memo_stats().expect("labels backend carries a memo");
        assert_eq!(reg.counter(names::LABEL_MEMO_HITS), hits);
        assert_eq!(reg.counter(names::LABEL_MEMO_MISSES), misses);
        assert!(hits > 0, "replay re-queries pairs — the memo must hit");
        assert_eq!(
            hits + misses,
            reg.counter(names::LATENCY_LABELS_QUERIES),
            "every label query is either a memo hit or a miss"
        );
    }

    #[test]
    fn bounded_latency_cache_leaves_metrics_unchanged() {
        let cfg = ExperimentConfig { nodes: 200, ..small_cfg() };
        let free = Experiment::build(cfg.clone()).run_requests(1000);
        let tight = Experiment::build_with(
            cfg,
            &mut Profiler::new(),
            BuildOptions {
                oracle: OracleBackend::Bounded(24),
                precompute: false,
                ..BuildOptions::default()
            },
        );
        // Single-threaded replay: a bounded cache is slower, not wrong.
        assert_eq!(tight.run_requests_on(&Executor::new(1), 1000), free);
        let mut reg = Registry::new();
        tight.record_cache_stats(&mut reg);
        let (hits, misses) =
            (reg.counter(names::LATENCY_CACHE_HITS), reg.counter(names::LATENCY_CACHE_MISSES));
        assert!(hits > 0 && misses > 0, "a tight budget must both hit and miss");
        assert!(reg.counter(names::LATENCY_CACHE_EVICTIONS) <= misses);
        assert_eq!(reg.gauge(names::LATENCY_CACHE_ROW_BUDGET), Some(24));
    }

    #[test]
    fn labels_oracle_leaves_metrics_unchanged() {
        let cfg = ExperimentConfig { nodes: 200, ..small_cfg() };
        let rows = Experiment::build(cfg.clone()).run_requests_on(&Executor::new(1), 1000);
        let labeled = Experiment::build_with(
            cfg,
            &mut Profiler::new(),
            BuildOptions { oracle: OracleBackend::Labels, ..BuildOptions::default() },
        );
        assert_eq!(labeled.lat.backend_name(), "labels");
        assert_eq!(
            labeled.run_requests_on(&Executor::new(1), 1000),
            rows,
            "labels are exact — replay metrics must be byte-identical to rows"
        );
        let mut reg = Registry::new();
        labeled.record_cache_stats(&mut reg);
        assert!(reg.gauge(names::LATENCY_LABELS_HUBS).unwrap() > 0);
        assert!(reg.gauge(names::LATENCY_LABELS_ENTRIES).unwrap() > 0);
        assert!(reg.gauge(names::LATENCY_LABELS_MAX_LEN).unwrap() > 0);
        assert!(reg.gauge(names::LATENCY_LABELS_BYTES).unwrap() > 0);
        assert!(reg.counter(names::LATENCY_LABELS_QUERIES) > 0);
        assert_eq!(reg.counter(names::LATENCY_CACHE_HITS), 0, "no cache metrics on labels");
    }

    #[test]
    fn labels_build_is_bit_identical_across_thread_counts() {
        let cfg = ExperimentConfig { nodes: 200, ..small_cfg() };
        let build = |threads| {
            Experiment::build_with(
                cfg.clone(),
                &mut Profiler::new(),
                BuildOptions { exec: Executor::new(threads), oracle: OracleBackend::Labels,
                               precompute: true },
            )
            .run_requests_on(&Executor::new(1), 1200)
        };
        let base = build(1);
        for threads in [2, 8] {
            assert_eq!(build(threads), base, "{threads}-thread label build changed the metrics");
        }
    }

    #[test]
    fn replay_is_deterministic_across_runs() {
        let e = Experiment::build(small_cfg());
        let a = e.run_requests(500);
        let b = e.run_requests(500);
        assert_eq!(a.chord.total_latency_ms, b.chord.total_latency_ms);
        assert_eq!(a.hieras.total_hops, b.hieras.total_hops);
        // And across rebuilds from the same config.
        let e2 = Experiment::build(small_cfg());
        let c = e2.run_requests(500);
        assert_eq!(a.hieras.total_latency_ms, c.hieras.total_latency_ms);
    }

    #[test]
    fn run_workload_on_uniform_matches_run_requests_on() {
        let e = Experiment::build(small_cfg());
        let exec = Executor::new(2);
        let w = Workload::new(e.config.nodes as u32, 500, e.config.seed ^ 0x517c_c1b7);
        assert_eq!(
            e.run_workload_on(&exec, &w),
            e.run_requests_on(&exec, 500),
            "the uniform workload path must reproduce the legacy stream bit-exactly"
        );
    }

    #[test]
    fn skewed_workload_is_thread_invariant_and_comparable() {
        let e = Experiment::build(small_cfg());
        let w = Workload::with_model(
            e.config.nodes as u32,
            600,
            e.config.seed ^ 0x5103,
            crate::WorkloadModel::Skew(crate::SkewParams::zipf(0.99)),
        );
        let one = e.run_workload_on(&Executor::new(1), &w);
        for threads in [2, 8] {
            assert_eq!(
                e.run_workload_on(&Executor::new(threads), &w),
                one,
                "{threads}-thread skewed replay diverged"
            );
        }
        assert_eq!(one.chord.requests, 600);
        assert!(one.hieras.summary().avg_latency_ms > 0.0);
    }

    #[test]
    fn destinations_agree_between_algorithms() {
        let e = Experiment::build(ExperimentConfig { nodes: 120, requests: 0, ..small_cfg() });
        let w = Workload::new(120, 300, 99);
        for (src, key) in w.iter() {
            let c = e.chord.lookup(src, key);
            let h = e.hieras.route(src, key);
            assert_eq!(c.owner(), h.destination());
        }
    }

    #[test]
    fn noise_perturbs_binning_but_not_correctness() {
        let mut cfg = small_cfg();
        cfg.nodes = 150;
        cfg.rtt_noise = 0.5;
        let e = Experiment::build(cfg);
        let w = Workload::new(150, 200, 3);
        for (src, key) in w.iter() {
            assert_eq!(e.hieras.route(src, key).destination(), e.chord.lookup(src, key).owner());
        }
    }

    #[test]
    fn brite_and_inet_models_run() {
        for kind in [TopologyKind::Brite, TopologyKind::Inet] {
            let cfg = ExperimentConfig {
                kind,
                nodes: 150,
                requests: 300,
                hieras: HierasConfig::paper(),
                seed: 5,
                rtt_noise: 0.0,
            };
            let e = Experiment::build(cfg);
            let r = e.run();
            assert_eq!(r.chord.requests, 300);
            assert!(r.hieras.summary().avg_hops > 0.0);
            assert_eq!(e.topo.model, if kind == TopologyKind::Brite { "brite" } else { "inet" });
        }
    }

    #[test]
    fn depth1_hieras_equals_chord_metrics() {
        let cfg = ExperimentConfig {
            hieras: HierasConfig { depth: 1, landmarks: 0, ..HierasConfig::paper() },
            nodes: 100,
            requests: 500,
            ..small_cfg()
        };
        let e = Experiment::build(cfg);
        let r = e.run();
        let (c, h) = (r.chord.summary(), r.hieras.summary());
        assert_eq!(c.avg_hops, h.avg_hops);
        assert_eq!(c.avg_latency_ms, h.avg_latency_ms);
        assert_eq!(h.lower_hop_share, 0.0);
    }
}
