//! Workload generation: "randomly generated routing requests" (§4.1),
//! plus skewed models for realistic traffic.
//!
//! Requests are derived from the request *index* through a SplitMix64
//! stream, so request `i` is identical whether the replay is
//! sequential, chunked, or parallel — determinism is independent of
//! thread count.
//!
//! Beyond the paper's uniform draws, [`WorkloadModel::Skew`] generates
//! Zipf-popular keys (bounded-Pareto inverse CDF — O(1), no frequency
//! tables), landmark-clustered source draws (peers are numbered
//! locality-packed, so a contiguous index slice approximates one
//! landmark region), and an optional time-windowed [`FlashCrowd`] that
//! redirects a fraction of requests in one stretch of the stream onto
//! a small hot key region. All of it is a pure function of
//! `(seed, i)`, so the skewed streams inherit the same thread
//! invariance as the uniform one.

use hieras_id::{Id, Key};
use hieras_rt::{Json, ToJson};

/// Requests with popularity rank at or below this count form the
/// "hot-key subset" that cache benchmarks report separately.
pub const HOT_RANK_MAX: u32 = 16;

/// A time-windowed flash crowd: inside the window
/// `[start, start + len)` (fractions of the request-index range), each
/// request is redirected with probability `intensity` onto one of
/// `region` hot keys, with its source drawn from those keys' home
/// clusters.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FlashCrowd {
    /// Window start as a fraction of the request stream (0..1).
    pub start: f64,
    /// Window length as a fraction of the request stream.
    pub len: f64,
    /// Probability a request inside the window joins the crowd.
    pub intensity: f64,
    /// Number of distinct keys the crowd piles onto.
    pub region: u32,
}

impl FlashCrowd {
    /// The standard smoke flash crowd: the middle fifth of the stream,
    /// 80% of requests piling onto 4 keys.
    #[must_use]
    pub fn standard() -> Self {
        FlashCrowd { start: 0.4, len: 0.2, intensity: 0.8, region: 4 }
    }

    fn active(&self, i: usize, requests: usize) -> bool {
        let frac = if requests == 0 { 0.0 } else { i as f64 / requests as f64 };
        frac >= self.start && frac < self.start + self.len
    }
}

impl ToJson for FlashCrowd {
    fn to_json(&self) -> Json {
        Json::obj([
            ("start", self.start.to_json()),
            ("len", self.len.to_json()),
            ("intensity", self.intensity.to_json()),
            ("region", self.region.to_json()),
        ])
    }
}

/// Skewed-draw parameters shared by the Zipf and flash-crowd models.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SkewParams {
    /// Zipf exponent `s` (0 = uniform over the universe, 0.99 = the
    /// classic web-trace figure, >1 = heavy head).
    pub exponent: f64,
    /// Number of distinct keys (popularity ranks 1..=universe).
    pub key_universe: u32,
    /// Number of source clusters (≈ landmark regions; peers are
    /// locality-packed so cluster `c` is one contiguous index slice).
    pub clusters: u32,
    /// Probability a request's source comes from its key's home
    /// cluster rather than uniformly from all peers.
    pub cluster_bias: f64,
    /// Optional flash-crowd overlay.
    pub flash: Option<FlashCrowd>,
}

impl SkewParams {
    /// Zipf(`exponent`) keys over a 64k-key universe with 8 source
    /// clusters at 70% home-cluster bias — the bench sweep's default.
    #[must_use]
    pub fn zipf(exponent: f64) -> Self {
        SkewParams {
            exponent,
            key_universe: 65_536,
            clusters: 8,
            cluster_bias: 0.7,
            flash: None,
        }
    }

    /// The Zipf(0.99) smoke model with the standard flash crowd.
    #[must_use]
    pub fn flash_crowd() -> Self {
        SkewParams { flash: Some(FlashCrowd::standard()), ..SkewParams::zipf(0.99) }
    }
}

/// How `(source, key)` pairs are drawn from the request index.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum WorkloadModel {
    /// The paper's model: uniform source, uniform 64-bit key. The
    /// derivation is bit-exact with the pre-skew `Workload`, so every
    /// historical metric stays byte-identical.
    Uniform,
    /// Zipf keys, clustered sources, optional flash crowd.
    Skew(SkewParams),
}

impl WorkloadModel {
    /// Short model name for bench descriptors.
    #[must_use]
    pub fn name(&self) -> &'static str {
        match self {
            WorkloadModel::Uniform => "uniform",
            WorkloadModel::Skew(p) if p.flash.is_some() => "flash",
            WorkloadModel::Skew(_) => "zipf",
        }
    }
}

/// A deterministic stream of `(source node, lookup key)` requests.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Workload {
    /// Number of overlay nodes (sources are drawn from `0..nodes`).
    pub nodes: u32,
    /// Number of requests.
    pub requests: usize,
    /// Stream seed.
    pub seed: u64,
    /// Draw model (uniform unless configured otherwise).
    pub model: WorkloadModel,
}

impl Workload {
    /// Creates a uniform workload description.
    ///
    /// # Panics
    /// Panics if `nodes == 0`.
    #[must_use]
    pub fn new(nodes: u32, requests: usize, seed: u64) -> Self {
        assert!(nodes > 0, "workload needs at least one node");
        Workload { nodes, requests, seed, model: WorkloadModel::Uniform }
    }

    /// Creates a workload with an explicit draw model.
    ///
    /// # Panics
    /// Panics if `nodes == 0`, or if a skewed model has an empty key
    /// universe or zero clusters.
    #[must_use]
    pub fn with_model(nodes: u32, requests: usize, seed: u64, model: WorkloadModel) -> Self {
        assert!(nodes > 0, "workload needs at least one node");
        if let WorkloadModel::Skew(p) = &model {
            assert!(p.key_universe > 0, "skewed workload needs a non-empty key universe");
            assert!(p.clusters > 0, "skewed workload needs at least one cluster");
        }
        Workload { nodes, requests, seed, model }
    }

    /// The `i`-th request.
    #[must_use]
    pub fn request(&self, i: usize) -> (u32, Key) {
        let (src, key, _) = self.request_detail(i);
        (src, key)
    }

    /// The `i`-th request plus its popularity rank (1-based; `None`
    /// for the uniform model, whose keys have no rank structure).
    #[must_use]
    pub fn request_detail(&self, i: usize) -> (u32, Key, Option<u32>) {
        let mut x = self.seed ^ (i as u64).wrapping_mul(0x9e37_79b9_7f4a_7c15);
        let a = splitmix64(&mut x);
        let b = splitmix64(&mut x);
        match &self.model {
            WorkloadModel::Uniform => {
                ((a % u64::from(self.nodes)) as u32, Id(b), None)
            }
            WorkloadModel::Skew(p) => {
                let c = splitmix64(&mut x);
                let d = splitmix64(&mut x);
                let mut rank = zipf_rank(to_unit(b), p.key_universe, p.exponent);
                let mut in_crowd = false;
                if let Some(f) = &p.flash {
                    if f.active(i, self.requests) && to_unit(d) < f.intensity {
                        // Pile onto a small region of top ranks; the
                        // crowd's keys are the globally hottest ones,
                        // which is what a breaking-news spike does.
                        rank = 1 + (d >> 32) as u32 % f.region.max(1);
                        in_crowd = true;
                    }
                }
                let cluster = self.cluster_of_rank(rank, p.clusters);
                let src = if in_crowd || to_unit(c) < p.cluster_bias {
                    self.cluster_source(cluster, p.clusters, a)
                } else {
                    (a % u64::from(self.nodes)) as u32
                };
                (src, self.key_of_rank(rank), Some(rank))
            }
        }
    }

    /// The stable 64-bit key identified by popularity rank `rank`.
    #[must_use]
    pub fn key_of_rank(&self, rank: u32) -> Key {
        Id(mix(self.seed ^ 0x6b79_5f72_616e_6b21 ^ u64::from(rank)))
    }

    /// Which cluster a key rank calls home (stable per seed).
    fn cluster_of_rank(&self, rank: u32, clusters: u32) -> u32 {
        (mix(self.seed ^ 0x636c_7573_7465_7221 ^ u64::from(rank)) % u64::from(clusters)) as u32
    }

    /// A source drawn from cluster `cluster`'s contiguous index slice.
    fn cluster_source(&self, cluster: u32, clusters: u32, entropy: u64) -> u32 {
        let clusters = clusters.min(self.nodes);
        let cluster = cluster % clusters;
        let lo = (u64::from(self.nodes) * u64::from(cluster) / u64::from(clusters)) as u32;
        let hi = (u64::from(self.nodes) * u64::from(cluster + 1) / u64::from(clusters)) as u32;
        let span = (hi - lo).max(1);
        lo + (entropy % u64::from(span)) as u32
    }

    /// Iterates all requests.
    pub fn iter(&self) -> impl Iterator<Item = (u32, Key)> + '_ {
        (0..self.requests).map(|i| self.request(i))
    }

    /// Self-describing descriptor for bench JSON rows.
    #[must_use]
    pub fn spec(&self) -> WorkloadSpec {
        WorkloadSpec { model: self.model, seed: self.seed }
    }
}

/// Bench-row descriptor: which model generated a row's traffic.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct WorkloadSpec {
    /// Draw model.
    pub model: WorkloadModel,
    /// Stream seed.
    pub seed: u64,
}

impl WorkloadSpec {
    /// Descriptor for the legacy uniform stream at `seed`.
    #[must_use]
    pub fn uniform(seed: u64) -> Self {
        WorkloadSpec { model: WorkloadModel::Uniform, seed }
    }
}

impl ToJson for WorkloadSpec {
    fn to_json(&self) -> Json {
        let mut fields = vec![
            ("model", self.model.name().to_json()),
            ("seed", self.seed.to_json()),
        ];
        if let WorkloadModel::Skew(p) = &self.model {
            fields.push(("zipf_exponent", p.exponent.to_json()));
            fields.push(("key_universe", p.key_universe.to_json()));
            fields.push(("clusters", p.clusters.to_json()));
            fields.push(("cluster_bias", p.cluster_bias.to_json()));
            if let Some(f) = &p.flash {
                fields.push(("flash", f.to_json()));
            }
        }
        Json::obj(fields)
    }
}

/// Inverse-CDF Zipf rank in `1..=universe` via the bounded-Pareto
/// continuous approximation — O(1), table-free, and a pure function of
/// the unit draw `u`, so it keeps the stream index-addressable.
fn zipf_rank(u: f64, universe: u32, exponent: f64) -> u32 {
    let n = f64::from(universe);
    let u = u.clamp(0.0, 1.0 - 1e-12);
    let r = if (exponent - 1.0).abs() < 1e-9 {
        // s → 1 limit: CDF ∝ ln(rank), so rank = N^u.
        n.powf(u)
    } else {
        let one_minus_s = 1.0 - exponent;
        (u * (n.powf(one_minus_s) - 1.0) + 1.0).powf(1.0 / one_minus_s)
    };
    (r.floor() as u32).clamp(1, universe)
}

/// Maps a 64-bit draw onto `[0, 1)`.
fn to_unit(x: u64) -> f64 {
    (x >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

/// Stateless 64-bit finalizer (same mix as the SplitMix64 step).
fn mix(z: u64) -> u64 {
    let mut z = z.wrapping_add(0x9e37_79b9_7f4a_7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// SplitMix64 step — tiny, seedable, and stateless per request.
fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn requests_are_deterministic_and_index_addressable() {
        let w = Workload::new(100, 1000, 42);
        let all: Vec<_> = w.iter().collect();
        assert_eq!(all.len(), 1000);
        for (i, &(src, key)) in all.iter().enumerate() {
            assert_eq!(w.request(i), (src, key));
            assert!(src < 100);
        }
    }

    #[test]
    fn different_seeds_differ() {
        let a: Vec<_> = Workload::new(50, 100, 1).iter().collect();
        let b: Vec<_> = Workload::new(50, 100, 2).iter().collect();
        assert_ne!(a, b);
    }

    #[test]
    fn sources_cover_the_node_range() {
        let w = Workload::new(16, 2000, 7);
        let mut seen = vec![false; 16];
        for (src, _) in w.iter() {
            seen[src as usize] = true;
        }
        assert!(seen.iter().all(|&s| s), "some node never originates a request");
    }

    #[test]
    fn keys_are_spread() {
        let w = Workload::new(4, 4096, 11);
        let high = w.iter().filter(|(_, k)| k.raw() >> 63 == 1).count();
        assert!((1600..=2500).contains(&high), "keys badly skewed: {high}");
    }

    #[test]
    #[should_panic(expected = "at least one node")]
    fn zero_nodes_rejected() {
        let _ = Workload::new(0, 10, 0);
    }

    /// The uniform derivation through the model enum must remain
    /// bit-exact with the historical two-draw stream: every bench
    /// metric recorded before skewed models existed depends on it.
    #[test]
    fn uniform_model_matches_legacy_derivation() {
        let w = Workload::new(128, 512, 0xdead_beef);
        for i in 0..512 {
            let mut x = 0xdead_beefu64 ^ (i as u64).wrapping_mul(0x9e37_79b9_7f4a_7c15);
            let a = splitmix64(&mut x);
            let b = splitmix64(&mut x);
            assert_eq!(w.request(i), ((a % 128) as u32, Id(b)));
        }
    }

    #[test]
    fn zipf_stream_is_deterministic_and_skewed() {
        let w = Workload::with_model(200, 8000, 7, WorkloadModel::Skew(SkewParams::zipf(0.99)));
        let again = Workload::with_model(200, 8000, 7, WorkloadModel::Skew(SkewParams::zipf(0.99)));
        let hot_key = w.key_of_rank(1);
        let mut hot = 0usize;
        let mut hot_subset = 0usize;
        for i in 0..8000 {
            let (src, key, rank) = w.request_detail(i);
            assert_eq!(again.request_detail(i), (src, key, rank));
            assert!(src < 200);
            let rank = rank.expect("skewed draws carry a rank");
            assert!(rank >= 1);
            if key == hot_key {
                assert_eq!(rank, 1);
                hot += 1;
            }
            if rank <= HOT_RANK_MAX {
                hot_subset += 1;
            }
        }
        // Zipf(0.99) over 64k keys: rank 1 alone carries ~8% of
        // draws, the top-16 subset roughly a quarter. Wide bounds —
        // this asserts skew exists, not an exact distribution.
        assert!(hot > 8000 / 25, "rank-1 key drew only {hot} of 8000");
        assert!(hot_subset > 8000 / 8, "hot subset drew only {hot_subset} of 8000");
        assert!(hot_subset < 8000, "degenerate: everything hot");
    }

    #[test]
    fn zipf_exponent_orders_head_mass() {
        let mass = |s: f64| {
            let w = Workload::with_model(64, 6000, 3, WorkloadModel::Skew(SkewParams::zipf(s)));
            (0..6000)
                .filter(|&i| w.request_detail(i).2.expect("rank") <= HOT_RANK_MAX)
                .count()
        };
        let (lo, mid, hi) = (mass(0.8), mass(0.99), mass(1.2));
        assert!(lo < mid && mid < hi, "head mass not monotone in s: {lo} {mid} {hi}");
    }

    #[test]
    fn flash_crowd_spikes_inside_its_window_only() {
        let w = Workload::with_model(
            100,
            10_000,
            21,
            WorkloadModel::Skew(SkewParams::flash_crowd()),
        );
        let region = 4u32;
        let in_window = |i: usize| (0.4..0.6).contains(&(i as f64 / 10_000.0));
        let mut crowd_inside = 0usize;
        let mut crowd_outside = 0usize;
        for i in 0..10_000 {
            let (_, _, rank) = w.request_detail(i);
            if rank.expect("rank") <= region {
                if in_window(i) {
                    crowd_inside += 1;
                } else {
                    crowd_outside += 1;
                }
            }
        }
        // The window holds 2000 requests at 80% redirect intensity on
        // top of the Zipf base rate; outside it only the base rate
        // (~12% of draws land in the top 4 ranks at s=0.99) remains.
        assert!(crowd_inside > 1600, "flash window under-spiked: {crowd_inside}");
        assert!(
            crowd_outside < 8000 / 4,
            "flash leaked outside its window: {crowd_outside}"
        );
    }

    #[test]
    fn clustered_sources_concentrate_per_key() {
        let p = SkewParams { cluster_bias: 1.0, ..SkewParams::zipf(0.99) };
        let w = Workload::with_model(800, 4000, 9, WorkloadModel::Skew(p));
        // With bias 1.0 every draw of a given rank must come from one
        // contiguous slice of 100 peer indices (800 peers, 8 clusters).
        let mut slice_of_rank: std::collections::HashMap<u32, u32> = std::collections::HashMap::new();
        for i in 0..4000 {
            let (src, _, rank) = w.request_detail(i);
            let slice = src / 100;
            let prev = slice_of_rank.entry(rank.expect("rank")).or_insert(slice);
            assert_eq!(*prev, slice, "rank {:?} drew from two clusters", rank);
        }
        assert!(slice_of_rank.len() > 8, "too few distinct ranks to trust the test");
    }

    #[test]
    fn workload_spec_describes_the_model() {
        let u = Workload::new(10, 10, 5).spec().to_json().dump();
        assert!(u.contains("\"model\":\"uniform\""), "{u}");
        let z = Workload::with_model(10, 10, 5, WorkloadModel::Skew(SkewParams::zipf(1.2)))
            .spec()
            .to_json()
            .dump();
        assert!(z.contains("\"model\":\"zipf\""), "{z}");
        assert!(z.contains("\"zipf_exponent\""), "{z}");
        let f =
            Workload::with_model(10, 10, 5, WorkloadModel::Skew(SkewParams::flash_crowd()))
                .spec()
                .to_json()
                .dump();
        assert!(f.contains("\"model\":\"flash\""), "{f}");
        assert!(f.contains("\"intensity\""), "{f}");
    }
}
