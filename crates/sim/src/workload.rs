//! Workload generation: "randomly generated routing requests" (§4.1).
//!
//! Requests are derived from the request *index* through a SplitMix64
//! stream, so request `i` is identical whether the replay is
//! sequential, chunked, or parallel — determinism is independent of
//! thread count.

use hieras_id::{Id, Key};

/// A deterministic stream of `(source node, lookup key)` requests.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Workload {
    /// Number of overlay nodes (sources are uniform over `0..nodes`).
    pub nodes: u32,
    /// Number of requests.
    pub requests: usize,
    /// Stream seed.
    pub seed: u64,
}

impl Workload {
    /// Creates a workload description.
    ///
    /// # Panics
    /// Panics if `nodes == 0`.
    #[must_use]
    pub fn new(nodes: u32, requests: usize, seed: u64) -> Self {
        assert!(nodes > 0, "workload needs at least one node");
        Workload { nodes, requests, seed }
    }

    /// The `i`-th request: uniform source and uniform 64-bit key.
    #[must_use]
    pub fn request(&self, i: usize) -> (u32, Key) {
        let mut x = self.seed ^ (i as u64).wrapping_mul(0x9e37_79b9_7f4a_7c15);
        let a = splitmix64(&mut x);
        let b = splitmix64(&mut x);
        ((a % u64::from(self.nodes)) as u32, Id(b))
    }

    /// Iterates all requests.
    pub fn iter(&self) -> impl Iterator<Item = (u32, Key)> + '_ {
        (0..self.requests).map(|i| self.request(i))
    }
}

/// SplitMix64 step — tiny, seedable, and stateless per request.
fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn requests_are_deterministic_and_index_addressable() {
        let w = Workload::new(100, 1000, 42);
        let all: Vec<_> = w.iter().collect();
        assert_eq!(all.len(), 1000);
        for (i, &(src, key)) in all.iter().enumerate() {
            assert_eq!(w.request(i), (src, key));
            assert!(src < 100);
        }
    }

    #[test]
    fn different_seeds_differ() {
        let a: Vec<_> = Workload::new(50, 100, 1).iter().collect();
        let b: Vec<_> = Workload::new(50, 100, 2).iter().collect();
        assert_ne!(a, b);
    }

    #[test]
    fn sources_cover_the_node_range() {
        let w = Workload::new(16, 2000, 7);
        let mut seen = vec![false; 16];
        for (src, _) in w.iter() {
            seen[src as usize] = true;
        }
        assert!(seen.iter().all(|&s| s), "some node never originates a request");
    }

    #[test]
    fn keys_are_spread() {
        let w = Workload::new(4, 4096, 11);
        let high = w.iter().filter(|(_, k)| k.raw() >> 63 == 1).count();
        assert!((1600..=2500).contains(&high), "keys badly skewed: {high}");
    }

    #[test]
    #[should_panic(expected = "at least one node")]
    fn zero_nodes_rejected() {
        let _ = Workload::new(0, 10, 0);
    }
}
