//! Churn schedule generation: membership dynamics as data.
//!
//! A [`ChurnSchedule`] is a deterministic, seed-reproducible list of
//! join / graceful-leave / silent-fail events sampled from configurable
//! lifetime and inter-arrival distributions. Like [`crate::Workload`],
//! every quantity is derived from the *node index* through SplitMix64
//! streams, so the schedule is identical no matter how (or on how many
//! threads) it is materialized — the churn engine replays it onto the
//! event queue and the same seed always produces the same experiment.

use crate::SimClock;
use hieras_rt::{splitmix64, Json, ToJson};

/// A sampling distribution for node lifetimes and inter-arrival gaps.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Lifetime {
    /// Exponential with the given mean (memoryless churn, the classic
    /// Poisson-process model).
    Exponential {
        /// Mean of the distribution, ms.
        mean_ms: f64,
    },
    /// Pareto with scale `x_m` and shape `alpha` (heavy-tailed session
    /// times, as measured in deployed P2P systems; finite mean requires
    /// `alpha > 1`).
    Pareto {
        /// Scale parameter `x_m` (minimum value), ms.
        scale_ms: f64,
        /// Shape parameter `alpha`.
        shape: f64,
    },
    /// Every sample is exactly `ms` (degenerate; useful in tests).
    Fixed {
        /// The constant value, ms.
        ms: u64,
    },
}

impl Lifetime {
    /// The `index`-th sample of the stream named `stream`, in ms.
    /// Index-addressable: no sampler state, any order, any thread.
    #[must_use]
    pub fn sample(&self, stream: u64, index: u64) -> SimClock {
        // A uniform draw in (0, 1]: never exactly 0 so ln() is finite.
        let raw = splitmix64(stream ^ index.wrapping_mul(0x9e37_79b9_7f4a_7c15));
        let u = ((raw >> 11) as f64 + 1.0) / (1u64 << 53) as f64;
        match *self {
            Lifetime::Exponential { mean_ms } => (-mean_ms * u.ln()).round() as SimClock,
            Lifetime::Pareto { scale_ms, shape } => {
                (scale_ms / u.powf(1.0 / shape)).round() as SimClock
            }
            Lifetime::Fixed { ms } => ms,
        }
    }

    /// The distribution's theoretical mean, ms (infinite-mean Pareto
    /// shapes return `f64::INFINITY`).
    #[must_use]
    pub fn mean_ms(&self) -> f64 {
        match *self {
            Lifetime::Exponential { mean_ms } => mean_ms,
            Lifetime::Pareto { scale_ms, shape } => {
                if shape > 1.0 {
                    scale_ms * shape / (shape - 1.0)
                } else {
                    f64::INFINITY
                }
            }
            Lifetime::Fixed { ms } => ms as f64,
        }
    }
}

impl ToJson for Lifetime {
    fn to_json(&self) -> Json {
        match *self {
            Lifetime::Exponential { mean_ms } => Json::obj([
                ("dist", "exponential".to_json()),
                ("mean_ms", mean_ms.to_json()),
            ]),
            Lifetime::Pareto { scale_ms, shape } => Json::obj([
                ("dist", "pareto".to_json()),
                ("scale_ms", scale_ms.to_json()),
                ("shape", shape.to_json()),
            ]),
            Lifetime::Fixed { ms } => {
                Json::obj([("dist", "fixed".to_json()), ("ms", ms.to_json())])
            }
        }
    }
}

/// Parameters of one churn scenario.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ChurnConfig {
    /// Nodes alive at t = 0 (the engine bootstraps them instantly).
    pub initial_nodes: u32,
    /// Additional nodes that join during the run.
    pub arrivals: u32,
    /// Gap between consecutive arrivals.
    pub inter_arrival: Lifetime,
    /// Session length of every node (initial nodes age from t = 0,
    /// arrivals from their join time).
    pub lifetime: Lifetime,
    /// Probability that a departure is a graceful leave rather than a
    /// silent fail.
    pub graceful_fraction: f64,
    /// Schedule horizon, ms: departures past it never happen.
    pub horizon_ms: SimClock,
    /// Master seed; all sampling streams derive from it.
    pub seed: u64,
}

impl ChurnConfig {
    /// Per-node facts, index-addressable: `(birth, departure, graceful)`
    /// for node `i` (`departure` is `None` when the node outlives the
    /// horizon). Birth of an initial node is 0; birth of arrival `j`
    /// (`i = initial_nodes + j`) is the prefix sum of the first `j + 1`
    /// inter-arrival gaps.
    #[must_use]
    pub fn node_fate(&self, i: u32) -> (SimClock, Option<SimClock>, bool) {
        let birth = if i < self.initial_nodes {
            0
        } else {
            // O(arrival index) prefix sum: schedules are built once per
            // experiment, so clarity beats memoization here.
            (self.initial_nodes..=i)
                .map(|j| self.inter_arrival.sample(self.seed ^ 0xa881_7a1, u64::from(j)).max(1))
                .sum()
        };
        let death = birth + self.lifetime.sample(self.seed ^ 0x11f3_71f3, u64::from(i)).max(1);
        let graceful_draw =
            splitmix64(self.seed ^ 0x6ac3_fu64 ^ u64::from(i).wrapping_mul(0x2545_f491_4f6c_dd1d));
        let graceful =
            (graceful_draw >> 11) as f64 / ((1u64 << 53) as f64) < self.graceful_fraction;
        let departure = (death <= self.horizon_ms).then_some(death);
        (birth, departure, graceful)
    }

    /// Materializes the full schedule: one `Join` per arrival inside
    /// the horizon, one `Leave`/`Fail` per node whose session ends
    /// inside it, sorted by time with a deterministic tie order.
    #[must_use]
    pub fn schedule(&self) -> ChurnSchedule {
        let total = self.initial_nodes + self.arrivals;
        let mut events = Vec::new();
        for i in 0..total {
            let (birth, departure, graceful) = self.node_fate(i);
            if i >= self.initial_nodes && birth <= self.horizon_ms {
                events.push(ChurnEvent { at: birth, kind: ChurnEventKind::Join { node: i } });
            }
            if let Some(at) = departure {
                if birth <= self.horizon_ms {
                    let kind = if graceful {
                        ChurnEventKind::Leave { node: i }
                    } else {
                        ChurnEventKind::Fail { node: i }
                    };
                    events.push(ChurnEvent { at, kind });
                }
            }
        }
        // Stable by construction order, so ties break join-before-death
        // per node and by node index — identical every time.
        events.sort_by_key(|e| e.at);
        ChurnSchedule { nodes_total: total, events }
    }
}

/// What happens to the membership at one instant.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ChurnEventKind {
    /// Node `node` joins the overlay.
    Join {
        /// Birth-order node index.
        node: u32,
    },
    /// Node `node` leaves gracefully (hands off state, notifies peers).
    Leave {
        /// Birth-order node index.
        node: u32,
    },
    /// Node `node` fails silently (just vanishes).
    Fail {
        /// Birth-order node index.
        node: u32,
    },
}

impl ChurnEventKind {
    /// The affected node index.
    #[must_use]
    pub fn node(&self) -> u32 {
        match *self {
            ChurnEventKind::Join { node }
            | ChurnEventKind::Leave { node }
            | ChurnEventKind::Fail { node } => node,
        }
    }

    /// Short tag ("join" / "leave" / "fail").
    #[must_use]
    pub fn label(&self) -> &'static str {
        match self {
            ChurnEventKind::Join { .. } => "join",
            ChurnEventKind::Leave { .. } => "leave",
            ChurnEventKind::Fail { .. } => "fail",
        }
    }
}

/// One scheduled membership event.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ChurnEvent {
    /// Firing time, ms.
    pub at: SimClock,
    /// What happens.
    pub kind: ChurnEventKind,
}

impl ToJson for ChurnEvent {
    fn to_json(&self) -> Json {
        Json::obj([
            ("at", self.at.to_json()),
            ("kind", self.kind.label().to_json()),
            ("node", self.kind.node().to_json()),
        ])
    }
}

/// A materialized, time-sorted churn schedule.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ChurnSchedule {
    /// Total distinct nodes the scenario ever references
    /// (`initial_nodes + arrivals`).
    pub nodes_total: u32,
    /// Events, ascending by time.
    pub events: Vec<ChurnEvent>,
}

impl ChurnSchedule {
    /// Number of events.
    #[must_use]
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// True if the scenario has no membership events.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// Membership turnover: departures (leaves + fails) as a fraction
    /// of the peak population — the "% churn" knob experiments report.
    #[must_use]
    pub fn turnover(&self, initial_nodes: u32) -> f64 {
        let departures = self
            .events
            .iter()
            .filter(|e| !matches!(e.kind, ChurnEventKind::Join { .. }))
            .count();
        departures as f64 / f64::from(initial_nodes.max(1))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hieras_rt::Executor;

    fn cfg() -> ChurnConfig {
        ChurnConfig {
            initial_nodes: 100,
            arrivals: 40,
            inter_arrival: Lifetime::Exponential { mean_ms: 500.0 },
            lifetime: Lifetime::Exponential { mean_ms: 60_000.0 },
            graceful_fraction: 0.5,
            horizon_ms: 120_000,
            seed: 42,
        }
    }

    #[test]
    fn schedule_is_sorted_and_complete() {
        let s = cfg().schedule();
        assert!(s.events.windows(2).all(|w| w[0].at <= w[1].at));
        assert_eq!(s.nodes_total, 140);
        // Every arrival inside the horizon produces exactly one Join.
        let joins = s.events.iter().filter(|e| e.kind.label() == "join").count();
        assert!(joins > 0 && joins <= 40);
        // No node departs before (or without) being born.
        for e in &s.events {
            let (birth, _, _) = cfg().node_fate(e.kind.node());
            assert!(e.at >= birth, "{e:?} fires before birth {birth}");
        }
    }

    #[test]
    fn same_seed_same_schedule_different_seed_differs() {
        let a = cfg().schedule();
        let b = cfg().schedule();
        assert_eq!(a, b);
        let c = ChurnConfig { seed: 43, ..cfg() }.schedule();
        assert_ne!(a, c);
    }

    #[test]
    fn exponential_empirical_mean_within_tolerance() {
        let d = Lifetime::Exponential { mean_ms: 10_000.0 };
        let n = 20_000u64;
        let sum: u64 = (0..n).map(|i| d.sample(7, i)).sum();
        let mean = sum as f64 / n as f64;
        let want = d.mean_ms();
        assert!(
            (mean - want).abs() / want < 0.05,
            "exponential mean {mean} vs theoretical {want}"
        );
    }

    #[test]
    fn pareto_empirical_mean_within_tolerance() {
        // Shape 3 keeps the variance finite so the sample mean settles.
        let d = Lifetime::Pareto { scale_ms: 4_000.0, shape: 3.0 };
        let n = 20_000u64;
        let sum: u64 = (0..n).map(|i| d.sample(9, i)).sum();
        let mean = sum as f64 / n as f64;
        let want = d.mean_ms();
        assert!((mean - want).abs() / want < 0.05, "pareto mean {mean} vs theoretical {want}");
        assert!((0..n).all(|i| d.sample(9, i) >= 4_000), "pareto samples below scale");
    }

    #[test]
    fn fixed_is_degenerate_and_infinite_mean_pareto_flagged() {
        let f = Lifetime::Fixed { ms: 123 };
        assert_eq!(f.sample(1, 99), 123);
        assert_eq!(f.mean_ms(), 123.0);
        assert_eq!(Lifetime::Pareto { scale_ms: 1.0, shape: 0.9 }.mean_ms(), f64::INFINITY);
    }

    #[test]
    fn node_fates_are_identical_across_thread_counts() {
        // Materialize every node's fate on executors of different
        // widths; the chunk-merged vectors must be bit-identical, and
        // equal to the sequential schedule's view.
        let c = cfg();
        let total = c.initial_nodes + c.arrivals;
        let run = |threads: usize| {
            Executor::new(threads).par_fold(
                total as usize,
                8,
                Vec::new,
                |acc: &mut Vec<(SimClock, Option<SimClock>, bool)>, i| {
                    acc.push(c.node_fate(i as u32));
                },
                |mut a, b| {
                    a.extend(b);
                    a
                },
            )
        };
        let seq: Vec<_> = (0..total).map(|i| c.node_fate(i)).collect();
        for threads in [1, 2, 8] {
            assert_eq!(run(threads), seq, "fates diverge at {threads} threads");
        }
        // And therefore the materialized schedules agree too.
        assert_eq!(c.schedule(), c.schedule());
    }

    #[test]
    fn turnover_counts_departures() {
        let s = cfg().schedule();
        let departures =
            s.events.iter().filter(|e| e.kind.label() != "join").count();
        assert!((s.turnover(100) - departures as f64 / 100.0).abs() < 1e-12);
    }
}
