//! Metric containers: hop histograms (PDF), latency CDFs, summaries.
//!
//! All containers are mergeable so the replay loop can fold per-thread
//! accumulators and reduce them at the end — no shared mutable state on
//! the hot path (hpc-parallel guide idiom).

use hieras_rt::{FromJson, Json, JsonError, ToJson};

/// A dense histogram over small non-negative integers (hop counts).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Histogram {
    counts: Vec<u64>,
    total: u64,
}

impl Histogram {
    /// An empty histogram.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Records one observation of `value`.
    pub fn record(&mut self, value: usize) {
        if self.counts.len() <= value {
            self.counts.resize(value + 1, 0);
        }
        self.counts[value] += 1;
        self.total += 1;
    }

    /// Number of observations.
    #[must_use]
    pub fn total(&self) -> u64 {
        self.total
    }

    /// Count at `value`.
    #[must_use]
    pub fn count(&self, value: usize) -> u64 {
        self.counts.get(value).copied().unwrap_or(0)
    }

    /// Largest observed value (0 for an empty histogram).
    #[must_use]
    pub fn max_value(&self) -> usize {
        self.counts.len().saturating_sub(1)
    }

    /// Mean of the observations (0.0 if empty).
    #[must_use]
    pub fn mean(&self) -> f64 {
        if self.total == 0 {
            return 0.0;
        }
        let sum: u64 = self.counts.iter().enumerate().map(|(v, c)| v as u64 * c).sum();
        sum as f64 / self.total as f64
    }

    /// The probability density function: `pdf()[v]` = fraction of
    /// observations equal to `v`. Empty histogram → empty vector.
    #[must_use]
    pub fn pdf(&self) -> Vec<f64> {
        if self.total == 0 {
            return Vec::new();
        }
        self.counts.iter().map(|&c| c as f64 / self.total as f64).collect()
    }

    /// The nearest-rank `q`-quantile (0.0 ≤ q ≤ 1.0): the smallest
    /// observed value such that at least `ceil(q·N)` observations are
    /// ≤ it. Returns 0 for an empty histogram; `q = 0` yields the
    /// smallest observed value.
    ///
    /// # Panics
    /// Panics if `q` is outside `[0, 1]`.
    #[must_use]
    pub fn quantile(&self, q: f64) -> usize {
        assert!((0.0..=1.0).contains(&q), "q must be in [0,1]");
        if self.total == 0 {
            return 0;
        }
        #[allow(clippy::cast_sign_loss, clippy::cast_possible_truncation)]
        let rank = ((q * self.total as f64).ceil() as u64).clamp(1, self.total);
        let mut seen = 0u64;
        for (v, &c) in self.counts.iter().enumerate() {
            seen += c;
            if seen >= rank {
                return v;
            }
        }
        self.counts.len() - 1
    }

    /// Merges another histogram into this one.
    pub fn merge(&mut self, other: &Histogram) {
        if self.counts.len() < other.counts.len() {
            self.counts.resize(other.counts.len(), 0);
        }
        for (a, b) in self.counts.iter_mut().zip(other.counts.iter()) {
            *a += b;
        }
        self.total += other.total;
    }
}

/// An empirical CDF over latency samples (milliseconds).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Cdf {
    sorted: Vec<u32>,
}

impl Cdf {
    /// Builds from raw samples (takes ownership, sorts once).
    #[must_use]
    pub fn from_samples(mut samples: Vec<u32>) -> Self {
        samples.sort_unstable();
        Cdf { sorted: samples }
    }

    /// Number of samples.
    #[must_use]
    pub fn len(&self) -> usize {
        self.sorted.len()
    }

    /// True if no samples were collected.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.sorted.is_empty()
    }

    /// `P(X <= x)`.
    #[must_use]
    pub fn at(&self, x: u32) -> f64 {
        if self.sorted.is_empty() {
            return 0.0;
        }
        let idx = self.sorted.partition_point(|&v| v <= x);
        idx as f64 / self.sorted.len() as f64
    }

    /// The `p`-quantile (0.0 ≤ p ≤ 1.0); e.g. `quantile(0.5)` = median.
    ///
    /// # Panics
    /// Panics if the CDF is empty or `p` is outside `[0, 1]`.
    #[must_use]
    pub fn quantile(&self, p: f64) -> u32 {
        assert!(!self.sorted.is_empty(), "quantile of empty CDF");
        assert!((0.0..=1.0).contains(&p), "p must be in [0,1]");
        let idx = ((p * (self.sorted.len() - 1) as f64).round()) as usize;
        self.sorted[idx]
    }

    /// Mean of the samples.
    #[must_use]
    pub fn mean(&self) -> f64 {
        if self.sorted.is_empty() {
            return 0.0;
        }
        self.sorted.iter().map(|&v| u64::from(v)).sum::<u64>() as f64 / self.sorted.len() as f64
    }

    /// Evenly spaced `(x, P(X<=x))` points for plotting, from 0 to the
    /// max sample, `points` entries.
    #[must_use]
    pub fn curve(&self, points: usize) -> Vec<(u32, f64)> {
        if self.sorted.is_empty() || points == 0 {
            return Vec::new();
        }
        let max = *self.sorted.last().expect("non-empty");
        (0..=points)
            .map(|i| {
                let x = (u64::from(max) * i as u64 / points as u64) as u32;
                (x, self.at(x))
            })
            .collect()
    }
}

/// Per-request sample folded into [`Metrics`].
#[derive(Debug, Clone, Copy, Default)]
pub struct Sample {
    /// Total hops for the request.
    pub hops: u32,
    /// Hops taken in lower-layer rings (0 for Chord).
    pub lower_hops: u32,
    /// End-to-end routing latency, ms.
    pub latency_ms: u32,
    /// Portion of the latency spent in lower-layer hops, ms.
    pub lower_latency_ms: u32,
}

/// A mergeable metric accumulator for one routing algorithm.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Metrics {
    /// Number of requests replayed.
    pub requests: u64,
    /// Sum of hop counts.
    pub total_hops: u64,
    /// Sum of lower-layer hop counts.
    pub lower_hops: u64,
    /// Sum of latencies (ms).
    pub total_latency_ms: u64,
    /// Sum of lower-layer latencies (ms).
    pub lower_latency_ms: u64,
    /// Histogram of per-request total hops (Figure 4 PDF).
    pub hop_hist: Histogram,
    /// Histogram of per-request lower-layer hops (Figure 4, third curve).
    pub lower_hop_hist: Histogram,
    /// Raw per-request latencies for the CDF (Figure 5).
    pub latency_samples: Vec<u32>,
}

impl Metrics {
    /// Records one request.
    pub fn record(&mut self, s: Sample) {
        self.requests += 1;
        self.total_hops += u64::from(s.hops);
        self.lower_hops += u64::from(s.lower_hops);
        self.total_latency_ms += u64::from(s.latency_ms);
        self.lower_latency_ms += u64::from(s.lower_latency_ms);
        self.hop_hist.record(s.hops as usize);
        self.lower_hop_hist.record(s.lower_hops as usize);
        self.latency_samples.push(s.latency_ms);
    }

    /// Merges a sibling accumulator (parallel-replay merge step).
    #[must_use]
    pub fn merged(mut self, other: Metrics) -> Metrics {
        self.requests += other.requests;
        self.total_hops += other.total_hops;
        self.lower_hops += other.lower_hops;
        self.total_latency_ms += other.total_latency_ms;
        self.lower_latency_ms += other.lower_latency_ms;
        self.hop_hist.merge(&other.hop_hist);
        self.lower_hop_hist.merge(&other.lower_hop_hist);
        self.latency_samples.extend_from_slice(&other.latency_samples);
        self
    }

    /// Condenses into the headline numbers.
    #[must_use]
    pub fn summary(&self) -> Summary {
        let req = self.requests.max(1) as f64;
        let avg_hops = self.total_hops as f64 / req;
        let avg_lower_hops = self.lower_hops as f64 / req;
        let top_hops = self.total_hops - self.lower_hops;
        let top_latency = self.total_latency_ms - self.lower_latency_ms;
        let mut sorted = self.latency_samples.clone();
        sorted.sort_unstable();
        let latency_tail = TailLatency {
            p50_ms: nearest_rank(&sorted, 0.50),
            p95_ms: nearest_rank(&sorted, 0.95),
            p99_ms: nearest_rank(&sorted, 0.99),
            p999_ms: nearest_rank(&sorted, 0.999),
        };
        Summary {
            latency_tail,
            requests: self.requests,
            avg_hops,
            avg_latency_ms: self.total_latency_ms as f64 / req,
            avg_lower_hops,
            lower_hop_share: if self.total_hops == 0 {
                0.0
            } else {
                self.lower_hops as f64 / self.total_hops as f64
            },
            lower_latency_share: if self.total_latency_ms == 0 {
                0.0
            } else {
                self.lower_latency_ms as f64 / self.total_latency_ms as f64
            },
            avg_link_delay_top_ms: if top_hops == 0 {
                0.0
            } else {
                top_latency as f64 / top_hops as f64
            },
            avg_link_delay_lower_ms: if self.lower_hops == 0 {
                0.0
            } else {
                self.lower_latency_ms as f64 / self.lower_hops as f64
            },
        }
    }

    /// The latency CDF (consumes a clone of the samples).
    #[must_use]
    pub fn latency_cdf(&self) -> Cdf {
        Cdf::from_samples(self.latency_samples.clone())
    }
}

/// The nearest-rank `q`-quantile of pre-sorted samples: the value at
/// rank `ceil(q·N)` (1-based). 0 for an empty slice.
fn nearest_rank(sorted: &[u32], q: f64) -> u32 {
    if sorted.is_empty() {
        return 0;
    }
    #[allow(clippy::cast_sign_loss, clippy::cast_possible_truncation)]
    let rank = ((q * sorted.len() as f64).ceil() as usize).clamp(1, sorted.len());
    sorted[rank - 1]
}

/// Nearest-rank tail latencies (ms) — the CDF's headline points.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct TailLatency {
    /// Median latency.
    pub p50_ms: u32,
    /// 95th-percentile latency.
    pub p95_ms: u32,
    /// 99th-percentile latency.
    pub p99_ms: u32,
    /// 99.9th-percentile latency — the extreme tail the live-serving
    /// bench watches for timeout inflation under churn.
    pub p999_ms: u32,
}

impl ToJson for TailLatency {
    fn to_json(&self) -> Json {
        Json::obj([
            ("p50_ms", self.p50_ms.to_json()),
            ("p95_ms", self.p95_ms.to_json()),
            ("p99_ms", self.p99_ms.to_json()),
            ("p999_ms", self.p999_ms.to_json()),
        ])
    }
}

impl FromJson for TailLatency {
    fn from_json(v: &Json) -> Result<Self, JsonError> {
        Ok(TailLatency {
            p50_ms: v.field("p50_ms")?,
            p95_ms: v.field("p95_ms")?,
            p99_ms: v.field("p99_ms")?,
            p999_ms: v.field("p999_ms")?,
        })
    }
}

/// Headline statistics for one algorithm on one experiment — the
/// numbers the paper's figures plot.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Summary {
    /// Requests replayed.
    pub requests: u64,
    /// Average routing hops per request (Figures 2, 6, 8).
    pub avg_hops: f64,
    /// Average routing latency per request, ms (Figures 3, 7, 9).
    pub avg_latency_ms: f64,
    /// Average lower-layer hops per request (Figure 6, second curve).
    pub avg_lower_hops: f64,
    /// Fraction of hops executed in lower-layer rings (§4.3: 71.38 %).
    pub lower_hop_share: f64,
    /// Fraction of latency spent in lower-layer hops (§4.3: 47.24 %).
    pub lower_latency_share: f64,
    /// Mean per-hop link delay in the global ring (§4.3: 79 ms).
    pub avg_link_delay_top_ms: f64,
    /// Mean per-hop link delay in lower rings (§4.3: 27.758 ms).
    pub avg_link_delay_lower_ms: f64,
    /// Nearest-rank latency tail (p50 / p95 / p99).
    pub latency_tail: TailLatency,
}

impl ToJson for Histogram {
    fn to_json(&self) -> Json {
        Json::obj([("counts", self.counts.to_json()), ("total", self.total.to_json())])
    }
}

impl FromJson for Histogram {
    fn from_json(v: &Json) -> Result<Self, JsonError> {
        let counts: Vec<u64> = v.field("counts")?;
        let total: u64 = v.field("total")?;
        if counts.iter().sum::<u64>() != total {
            return Err(JsonError("histogram total does not match counts".into()));
        }
        Ok(Histogram { counts, total })
    }
}

impl ToJson for Cdf {
    fn to_json(&self) -> Json {
        Json::obj([("sorted", self.sorted.to_json())])
    }
}

impl FromJson for Cdf {
    fn from_json(v: &Json) -> Result<Self, JsonError> {
        let sorted: Vec<u32> = v.field("sorted")?;
        if sorted.windows(2).any(|w| w[0] > w[1]) {
            return Err(JsonError("cdf samples must be sorted".into()));
        }
        Ok(Cdf { sorted })
    }
}

impl ToJson for Metrics {
    fn to_json(&self) -> Json {
        Json::obj([
            ("requests", self.requests.to_json()),
            ("total_hops", self.total_hops.to_json()),
            ("lower_hops", self.lower_hops.to_json()),
            ("total_latency_ms", self.total_latency_ms.to_json()),
            ("lower_latency_ms", self.lower_latency_ms.to_json()),
            ("hop_hist", self.hop_hist.to_json()),
            ("lower_hop_hist", self.lower_hop_hist.to_json()),
            ("latency_samples", self.latency_samples.to_json()),
        ])
    }
}

impl FromJson for Metrics {
    fn from_json(v: &Json) -> Result<Self, JsonError> {
        Ok(Metrics {
            requests: v.field("requests")?,
            total_hops: v.field("total_hops")?,
            lower_hops: v.field("lower_hops")?,
            total_latency_ms: v.field("total_latency_ms")?,
            lower_latency_ms: v.field("lower_latency_ms")?,
            hop_hist: v.field("hop_hist")?,
            lower_hop_hist: v.field("lower_hop_hist")?,
            latency_samples: v.field("latency_samples")?,
        })
    }
}

impl ToJson for Summary {
    fn to_json(&self) -> Json {
        Json::obj([
            ("requests", self.requests.to_json()),
            ("avg_hops", self.avg_hops.to_json()),
            ("avg_latency_ms", self.avg_latency_ms.to_json()),
            ("avg_lower_hops", self.avg_lower_hops.to_json()),
            ("lower_hop_share", self.lower_hop_share.to_json()),
            ("lower_latency_share", self.lower_latency_share.to_json()),
            ("avg_link_delay_top_ms", self.avg_link_delay_top_ms.to_json()),
            ("avg_link_delay_lower_ms", self.avg_link_delay_lower_ms.to_json()),
            ("latency_tail", self.latency_tail.to_json()),
        ])
    }
}

impl FromJson for Summary {
    fn from_json(v: &Json) -> Result<Self, JsonError> {
        Ok(Summary {
            requests: v.field("requests")?,
            avg_hops: v.field("avg_hops")?,
            avg_latency_ms: v.field("avg_latency_ms")?,
            avg_lower_hops: v.field("avg_lower_hops")?,
            lower_hop_share: v.field("lower_hop_share")?,
            lower_latency_share: v.field("lower_latency_share")?,
            avg_link_delay_top_ms: v.field("avg_link_delay_top_ms")?,
            avg_link_delay_lower_ms: v.field("avg_link_delay_lower_ms")?,
            latency_tail: v.field("latency_tail")?,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn histogram_basics() {
        let mut h = Histogram::new();
        for v in [1usize, 2, 2, 3, 3, 3] {
            h.record(v);
        }
        assert_eq!(h.total(), 6);
        assert_eq!(h.count(3), 3);
        assert_eq!(h.count(99), 0);
        assert_eq!(h.max_value(), 3);
        assert!((h.mean() - 14.0 / 6.0).abs() < 1e-12);
        let pdf = h.pdf();
        assert!((pdf[2] - 2.0 / 6.0).abs() < 1e-12);
        assert!((pdf.iter().sum::<f64>() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn histogram_merge() {
        let mut a = Histogram::new();
        a.record(1);
        let mut b = Histogram::new();
        b.record(5);
        b.record(1);
        a.merge(&b);
        assert_eq!(a.total(), 3);
        assert_eq!(a.count(1), 2);
        assert_eq!(a.count(5), 1);
    }

    #[test]
    fn empty_histogram_edge_cases() {
        let h = Histogram::new();
        assert_eq!(h.mean(), 0.0);
        assert!(h.pdf().is_empty());
        assert_eq!(h.max_value(), 0);
    }

    #[test]
    fn cdf_basics() {
        let c = Cdf::from_samples(vec![10, 20, 30, 40]);
        assert_eq!(c.len(), 4);
        assert_eq!(c.at(9), 0.0);
        assert_eq!(c.at(10), 0.25);
        assert_eq!(c.at(25), 0.5);
        assert_eq!(c.at(40), 1.0);
        assert_eq!(c.at(1000), 1.0);
        assert_eq!(c.quantile(0.0), 10);
        assert_eq!(c.quantile(1.0), 40);
        assert!((c.mean() - 25.0).abs() < 1e-12);
    }

    #[test]
    fn cdf_curve_is_monotone() {
        let c = Cdf::from_samples((0..100u32).map(|i| i * i % 301).collect());
        let curve = c.curve(20);
        assert_eq!(curve.len(), 21);
        for w in curve.windows(2) {
            assert!(w[0].1 <= w[1].1);
        }
        assert!((curve.last().unwrap().1 - 1.0).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "empty")]
    fn cdf_quantile_empty_panics() {
        let _ = Cdf::from_samples(vec![]).quantile(0.5);
    }

    #[test]
    fn histogram_quantile_nearest_rank() {
        // Empty → 0 at every q.
        let empty = Histogram::new();
        assert_eq!(empty.quantile(0.0), 0);
        assert_eq!(empty.quantile(0.5), 0);
        assert_eq!(empty.quantile(1.0), 0);
        // Single observation → that value at every q.
        let mut one = Histogram::new();
        one.record(7);
        for q in [0.0, 0.5, 0.99, 1.0] {
            assert_eq!(one.quantile(q), 7, "q={q}");
        }
        // All ties → the tied value at every q.
        let mut ties = Histogram::new();
        for _ in 0..10 {
            ties.record(4);
        }
        assert_eq!(ties.quantile(0.01), 4);
        assert_eq!(ties.quantile(0.99), 4);
        // Nearest rank on a known distribution: 1..=10, one each.
        let mut h = Histogram::new();
        for v in 1..=10usize {
            h.record(v);
        }
        assert_eq!(h.quantile(0.0), 1, "q=0 is the minimum");
        assert_eq!(h.quantile(0.5), 5, "rank ceil(0.5*10)=5");
        assert_eq!(h.quantile(0.51), 6, "rank ceil(0.51*10)=6");
        assert_eq!(h.quantile(0.95), 10);
        assert_eq!(h.quantile(1.0), 10);
    }

    #[test]
    fn summary_tail_latency_is_nearest_rank() {
        let mut m = Metrics::default();
        for ms in [10u32, 20, 30, 40, 50, 60, 70, 80, 90, 100] {
            m.record(Sample { hops: 1, lower_hops: 0, latency_ms: ms, lower_latency_ms: 0 });
        }
        let t = m.summary().latency_tail;
        assert_eq!(t.p50_ms, 50);
        assert_eq!(t.p95_ms, 100, "rank ceil(0.95*10)=10");
        assert_eq!(t.p99_ms, 100);
        assert_eq!(t.p999_ms, 100);
        // Empty metrics: all-zero tail.
        assert_eq!(Metrics::default().summary().latency_tail, TailLatency::default());
        // Single sample: every percentile is that sample.
        let mut one = Metrics::default();
        one.record(Sample { hops: 1, lower_hops: 0, latency_ms: 42, lower_latency_ms: 0 });
        let t = one.summary().latency_tail;
        assert_eq!((t.p50_ms, t.p95_ms, t.p99_ms, t.p999_ms), (42, 42, 42, 42));
        // Ties: every percentile is the tied value.
        let mut ties = Metrics::default();
        for _ in 0..7 {
            ties.record(Sample { hops: 1, lower_hops: 0, latency_ms: 9, lower_latency_ms: 0 });
        }
        let t = ties.summary().latency_tail;
        assert_eq!((t.p50_ms, t.p95_ms, t.p99_ms), (9, 9, 9));
    }

    #[test]
    fn p999_is_nearest_rank_on_a_large_sample() {
        // 1..=1000, one each: rank ceil(0.999*1000) = 999 → value 999,
        // one below the p100 max — p99.9 resolves the extreme tail.
        let mut m = Metrics::default();
        for ms in 1..=1000u32 {
            m.record(Sample { hops: 1, lower_hops: 0, latency_ms: ms, lower_latency_ms: 0 });
        }
        let t = m.summary().latency_tail;
        assert_eq!(t.p99_ms, 990);
        assert_eq!(t.p999_ms, 999);
    }

    #[test]
    fn tail_latency_round_trips_in_summary_json() {
        let mut m = Metrics::default();
        for ms in [5u32, 15, 25] {
            m.record(Sample { hops: 2, lower_hops: 1, latency_ms: ms, lower_latency_ms: 1 });
        }
        let s = m.summary();
        let back = Summary::from_json(&s.to_json()).unwrap();
        assert_eq!(back, s);
        assert_eq!(back.latency_tail.p50_ms, 15);
    }

    #[test]
    fn metrics_summary_matches_hand_computation() {
        let mut m = Metrics::default();
        m.record(Sample { hops: 6, lower_hops: 4, latency_ms: 300, lower_latency_ms: 100 });
        m.record(Sample { hops: 4, lower_hops: 2, latency_ms: 200, lower_latency_ms: 50 });
        let s = m.summary();
        assert_eq!(s.requests, 2);
        assert!((s.avg_hops - 5.0).abs() < 1e-12);
        assert!((s.avg_latency_ms - 250.0).abs() < 1e-12);
        assert!((s.lower_hop_share - 6.0 / 10.0).abs() < 1e-12);
        assert!((s.lower_latency_share - 150.0 / 500.0).abs() < 1e-12);
        // top: 4 hops, 350 ms; lower: 6 hops, 150 ms.
        assert!((s.avg_link_delay_top_ms - 87.5).abs() < 1e-12);
        assert!((s.avg_link_delay_lower_ms - 25.0).abs() < 1e-12);
    }

    #[test]
    fn metrics_merge_is_sum() {
        let mut a = Metrics::default();
        a.record(Sample { hops: 3, lower_hops: 0, latency_ms: 90, lower_latency_ms: 0 });
        let mut b = Metrics::default();
        b.record(Sample { hops: 5, lower_hops: 5, latency_ms: 50, lower_latency_ms: 50 });
        let m = a.merged(b);
        assert_eq!(m.requests, 2);
        assert_eq!(m.total_hops, 8);
        assert_eq!(m.latency_samples.len(), 2);
        assert_eq!(m.hop_hist.total(), 2);
    }

    #[test]
    fn zero_request_summary_is_finite() {
        let s = Metrics::default().summary();
        assert_eq!(s.requests, 0);
        assert_eq!(s.avg_hops, 0.0);
        assert_eq!(s.avg_link_delay_top_ms, 0.0);
        assert_eq!(s.avg_link_delay_lower_ms, 0.0);
    }
}
