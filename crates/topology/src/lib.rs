//! Network topology substrate for the HIERAS evaluation.
//!
//! The paper (§4.1) drives its simulations with three internetwork
//! topology models:
//!
//! * **GT-ITM Transit-Stub** ([`TransitStubConfig`]) — the primary
//!   model. Transit domains form a top-level backbone; each transit
//!   node attaches several stub domains. Link delays follow the paper
//!   exactly: 100 ms intra-transit, 20 ms transit–stub, 5 ms intra-stub.
//! * **Inet** ([`InetConfig`]) — AS-level power-law degree topology
//!   (the paper uses ≥ 3000 nodes for Inet runs).
//! * **BRITE** ([`BriteConfig`]) — Barabási–Albert incremental growth
//!   with nodes on a plane and distance-proportional delays.
//!
//! The original external generators are replaced by faithful synthetic
//! equivalents (see DESIGN.md §5 for the substitution log). All
//! generators are fully deterministic given a seed.
//!
//! On top of a generated [`Topology`], the [`LatencyOracle`] answers
//! "what is the underlay latency between overlay peers u and v?" —
//! the quantity every routing-latency figure in the paper integrates
//! over — through one of three exact backends: cached single-source
//! Dijkstra rows, a residency-bounded row cache, or 2-hop hub labels
//! ([`HubLabels`]) whose sub-quadratic build makes 10⁵-router graphs
//! cheap.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod brite;
mod graph;
mod inet;
mod labels;
mod latency;
mod topo;
mod transit_stub;

pub use brite::BriteConfig;
pub use graph::{DijkstraScratch, Edge, Graph};
pub use inet::InetConfig;
pub use labels::{HubLabels, LabelStats};
pub use latency::{CacheStats, LatencyOracle};
pub use topo::{NodeKind, Topology};
pub use transit_stub::TransitStubConfig;
