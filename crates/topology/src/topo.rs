//! The [`Topology`] wrapper: a generated router graph plus the
//! metadata overlay construction needs (which routers host peers,
//! where landmarks should sit).

use crate::{Graph, LatencyOracle};
use hieras_rt::Rng;

/// Role of a router in the generated internetwork.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum NodeKind {
    /// Backbone router inside a transit domain (GT-ITM only).
    Transit,
    /// Edge router inside a stub domain (GT-ITM only).
    Stub,
    /// Undifferentiated router (Inet / BRITE flat models).
    Router,
}

/// A generated internetwork: router graph + roles + attachment points.
#[derive(Debug, Clone)]
pub struct Topology {
    /// The router-level graph.
    pub graph: Graph,
    /// Role of each router.
    pub kind: Vec<NodeKind>,
    /// Routers on which overlay peers may attach (stub routers for the
    /// Transit-Stub model, every router for flat models).
    pub attach_candidates: Vec<u32>,
    /// Correlated-failure domain of each router. In the Transit-Stub
    /// model, transit routers carry their transit-domain index and stub
    /// routers their stub-domain index offset past the transit domains
    /// — a power cut or uplink loss takes a whole domain at once. Flat
    /// models (Inet / BRITE) have no domain structure: every router is
    /// its own singleton domain.
    pub domain: Vec<u32>,
    /// Human-readable model name ("transit-stub", "inet", "brite").
    pub model: &'static str,
}

impl Topology {
    /// Number of routers.
    #[must_use]
    pub fn router_count(&self) -> usize {
        self.graph.node_count()
    }

    /// Correlated-failure domain of a router ([`Topology::domain`]).
    #[must_use]
    pub fn domain_of(&self, router: u32) -> u32 {
        self.domain[router as usize]
    }

    /// Chooses attachment routers for `n` overlay peers.
    ///
    /// Peers occupy distinct candidate routers while any remain
    /// (sampling without replacement); if `n` exceeds the number of
    /// candidates, additional peers share routers (several hosts on one
    /// LAN — latency between co-attached peers is then 0 ms at the
    /// router level, a faithful model of same-site hosts).
    #[must_use]
    pub fn place_peers(&self, n: usize, rng: &mut Rng) -> Vec<u32> {
        let mut cands = self.attach_candidates.clone();
        rng.shuffle(&mut cands);
        let mut out = Vec::with_capacity(n);
        if n <= cands.len() {
            out.extend_from_slice(&cands[..n]);
        } else {
            out.extend_from_slice(&cands);
            for _ in cands.len()..n {
                out.push(*rng.choose(&cands).expect("non-empty candidates"));
            }
        }
        out
    }

    /// Picks `k` landmark routers "spread across the Internet" (§2.3).
    ///
    /// Uses greedy farthest-point traversal (k-center seeding) over the
    /// latency oracle: the first landmark is random, each subsequent
    /// landmark is the attach candidate maximizing the minimum latency
    /// to the landmarks chosen so far. This matches the paper's
    /// assumption of well-separated, well-known machines regardless of
    /// the underlying model.
    #[must_use]
    pub fn pick_landmarks(&self, k: usize, oracle: &LatencyOracle, rng: &mut Rng) -> Vec<u32> {
        assert!(k >= 1, "at least one landmark required");
        let cands = &self.attach_candidates;
        assert!(!cands.is_empty(), "topology has no attach candidates");
        let mut landmarks = Vec::with_capacity(k);
        landmarks.push(*rng.choose(cands).expect("non-empty"));
        let mut min_d: Vec<u32> = cands
            .iter()
            .map(|&c| u32::from(oracle.latency(landmarks[0], c)))
            .collect();
        while landmarks.len() < k.min(cands.len()) {
            let (best_i, _) = min_d
                .iter()
                .enumerate()
                .max_by_key(|&(_, d)| *d)
                .expect("non-empty");
            let lm = cands[best_i];
            landmarks.push(lm);
            for (i, &c) in cands.iter().enumerate() {
                min_d[i] = min_d[i].min(u32::from(oracle.latency(lm, c)));
            }
        }
        // Degenerate tiny topologies: repeat landmarks if k > candidates.
        while landmarks.len() < k {
            landmarks.push(*rng.choose(cands).expect("non-empty"));
        }
        landmarks
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::TransitStubConfig;

    fn small_topo() -> Topology {
        TransitStubConfig::for_peers(64, 7).generate()
    }

    #[test]
    fn place_peers_without_replacement_when_possible() {
        let t = small_topo();
        let mut rng = Rng::seed_from_u64(1);
        let n = t.attach_candidates.len().min(20);
        let placed = t.place_peers(n, &mut rng);
        let mut uniq = placed.clone();
        uniq.sort_unstable();
        uniq.dedup();
        assert_eq!(uniq.len(), n, "peers should occupy distinct routers");
    }

    #[test]
    fn place_peers_overflow_shares_routers() {
        let t = small_topo();
        let mut rng = Rng::seed_from_u64(2);
        let n = t.attach_candidates.len() + 10;
        let placed = t.place_peers(n, &mut rng);
        assert_eq!(placed.len(), n);
        for &r in &placed {
            assert!(t.attach_candidates.contains(&r));
        }
    }

    #[test]
    fn place_peers_is_deterministic_per_seed() {
        let t = small_topo();
        let a = t.place_peers(10, &mut Rng::seed_from_u64(42));
        let b = t.place_peers(10, &mut Rng::seed_from_u64(42));
        assert_eq!(a, b);
    }

    #[test]
    fn landmarks_are_spread() {
        let t = small_topo();
        let oracle = LatencyOracle::new(t.graph.clone());
        let mut rng = Rng::seed_from_u64(3);
        let lms = t.pick_landmarks(4, &oracle, &mut rng);
        assert_eq!(lms.len(), 4);
        // Pairwise distances among landmarks should all be non-trivial:
        // farther than an intra-stub hop (5 ms) apart.
        for i in 0..lms.len() {
            for j in i + 1..lms.len() {
                assert!(
                    oracle.latency(lms[i], lms[j]) > 5,
                    "landmarks {i},{j} too close"
                );
            }
        }
    }

    #[test]
    fn landmarks_count_exceeding_candidates_still_returns_k() {
        let t = small_topo();
        let oracle = LatencyOracle::new(t.graph.clone());
        let mut rng = Rng::seed_from_u64(4);
        let k = t.attach_candidates.len() + 3;
        let lms = t.pick_landmarks(k, &oracle, &mut rng);
        assert_eq!(lms.len(), k);
    }
}
