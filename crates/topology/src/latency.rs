//! The latency oracle: exact underlay shortest-path delays behind one
//! query interface, with three interchangeable backends.
//!
//! Every overlay hop in the simulation costs the underlay shortest-path
//! delay between the two peers' attachment routers. The oracle answers
//! `latency(u, v)` identically under all backends — they trade build
//! time, memory, and per-query cost, never values:
//!
//! * **Rows** ([`LatencyOracle::new`]) — lazily cached full Dijkstra
//!   rows (`u16` milliseconds), memoized behind `OnceLock`s so
//!   concurrent readers race benignly. O(1) queries, but N distinct
//!   sources cost N Dijkstras and N×N `u16`s of residency: 20 GB and
//!   ~20 CPU-minutes at 10⁵ routers.
//! * **Bounded** ([`LatencyOracle::with_row_budget`]) — Rows with a cap
//!   on resident rows: the first `budget/2` distinct sources pin
//!   permanently into the lock-free `OnceLock` segment, the remainder
//!   cycle through 16 mutex-sharded CLOCK caches whose capacities
//!   partition the rest of the budget *exactly* (pinned + overflow
//!   never exceeds the budget). Misses recompute through a pooled
//!   row/scratch pair ([`Graph::dijkstra_into`]), so steady state
//!   allocates nothing. Hit/miss/eviction counters ([`CacheStats`])
//!   quantify the trade.
//! * **Labels** ([`LatencyOracle::with_labels_on`]) — exact 2-hop hub
//!   labels ([`HubLabels`]): sub-quadratic build (pruned landmark
//!   labeling), tens of bytes per router instead of a row, queries by
//!   sorted label merge. The backend that takes a 10⁵-router build
//!   from ~20 minutes / 20 GB to seconds / tens of MB.

use crate::graph::DijkstraScratch;
use crate::{Graph, HubLabels, LabelStats};
use hieras_rt::Executor;
use std::cell::RefCell;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::{Mutex, OnceLock};

/// Sources per work chunk for parallel row precomputation. One
/// Dijkstra over a 10⁴-router graph takes milliseconds, so small
/// chunks keep the workers balanced without scheduling overhead.
const PRECOMPUTE_CHUNK: usize = 4;

/// Slots in the per-thread direct-mapped `(u, v)` memo on the labels
/// backend: 2^15 slots × 16 B = 512 KB per worker thread — large
/// enough to hold a replay's working set of router pairs, small enough
/// to live in L2.
const MEMO_SLOTS: usize = 1 << 15;

/// One entry of the per-thread label-query memo.
#[derive(Clone, Copy)]
struct MemoSlot {
    /// Oracle tag the entry answers for; 0 = never written.
    epoch: u64,
    /// Packed pair `(min << 32) | max` (latency is symmetric).
    key: u64,
    /// The memoized answer.
    val: u16,
}

thread_local! {
    /// One direct-mapped memo per worker thread, shared by every
    /// labels oracle alive on that thread. Entries are claimed per
    /// oracle through the epoch tag, so a fresh oracle can never read
    /// another oracle's (or a dead oracle's) value. Allocated lazily on
    /// the first memoized query of the thread.
    static MEMO: RefCell<Vec<MemoSlot>> = const { RefCell::new(Vec::new()) };
}

/// Distinct-tag source for [`MemoSlot::epoch`]; starts at 1 so 0 always
/// means "empty slot".
static MEMO_EPOCH: AtomicU64 = AtomicU64::new(1);

/// The per-thread query memo of one labels oracle: its epoch tag plus
/// hit/miss counters (the `label_memo.*` metrics).
#[derive(Debug)]
struct LabelMemo {
    epoch: u64,
    hits: AtomicU64,
    misses: AtomicU64,
}

impl LabelMemo {
    /// Answers `latency(u, v)` through the calling thread's memo,
    /// falling back to (and recording) a label merge on miss.
    #[inline]
    fn latency(&self, labels: &HubLabels, u: u32, v: u32) -> u16 {
        let (lo, hi) = if u < v { (u, v) } else { (v, u) };
        let key = (u64::from(lo) << 32) | u64::from(hi);
        let slot_i = (key.wrapping_mul(0x9e37_79b9_7f4a_7c15) >> 49) as usize;
        MEMO.with(|cell| {
            let memo = &mut *cell.borrow_mut();
            if memo.is_empty() {
                memo.resize(MEMO_SLOTS, MemoSlot { epoch: 0, key: 0, val: 0 });
            }
            let slot = &mut memo[slot_i];
            if slot.epoch == self.epoch && slot.key == key {
                self.hits.fetch_add(1, Ordering::Relaxed);
                return slot.val;
            }
            let val = labels.latency(u, v);
            *slot = MemoSlot { epoch: self.epoch, key, val };
            self.misses.fetch_add(1, Ordering::Relaxed);
            val
        })
    }
}

/// Mutex shards for the bounded overflow cache. Sixteen shards keep
/// contention negligible at replay thread counts while the per-shard
/// linear scans stay short.
const OVERFLOW_SHARDS: usize = 16;

/// Upper bound on pooled row buffers / Dijkstra scratches kept for
/// reuse on the bounded miss path. Bounded by concurrency in practice;
/// the cap just keeps a pathological burst from pinning memory.
const POOL_CAP: usize = 16;

/// Cache-effectiveness counters of a bounded [`LatencyOracle`]
/// (all zero in unbounded mode, where no counting happens on the hot
/// path, and on the labels backend, which holds no rows).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Queries answered from a resident row (pinned or overflow).
    pub hits: u64,
    /// Queries that had to run a fresh Dijkstra.
    pub misses: u64,
    /// Rows evicted from the overflow shards. At most one per miss.
    pub evictions: u64,
    /// Rows pinned in the lock-free segment.
    pub pinned: usize,
    /// Rows currently resident (pinned + overflow).
    pub resident: usize,
    /// The row budget, if bounded.
    pub budget: Option<usize>,
}

/// One slot of a CLOCK shard: a materialized row plus its
/// second-chance bit.
#[derive(Debug)]
struct ClockSlot {
    src: u32,
    row: Box<[u16]>,
    referenced: bool,
}

/// Outcome of a [`ClockShard::insert`]: whether the row was stored,
/// and any displaced buffer handed back for pooling.
enum Insert {
    /// Row stored in a free slot.
    Stored,
    /// Row stored by evicting another; the evicted buffer is returned.
    Evicted(Box<[u16]>),
    /// Row not stored (zero capacity, or another thread raced the same
    /// source in first); the unused buffer is returned.
    Rejected(Box<[u16]>),
}

/// A CLOCK (second-chance) eviction shard. Capacity is enforced by the
/// caller; lookups are linear scans, fine for the small per-shard
/// capacities a row budget implies.
#[derive(Debug, Default)]
struct ClockShard {
    slots: Vec<ClockSlot>,
    hand: usize,
}

impl ClockShard {
    /// The cached `row[src][v]`, marking the row recently used.
    fn lookup(&mut self, src: u32, v: u32) -> Option<u16> {
        for s in &mut self.slots {
            if s.src == src {
                s.referenced = true;
                return Some(s.row[v as usize]);
            }
        }
        None
    }

    /// Inserts a freshly computed row, evicting the first
    /// not-recently-used slot once at capacity. A row another thread
    /// raced in is kept as-is; a zero-capacity shard stores nothing.
    fn insert(&mut self, src: u32, row: Box<[u16]>, cap: usize) -> Insert {
        for s in &mut self.slots {
            if s.src == src {
                s.referenced = true;
                return Insert::Rejected(row);
            }
        }
        if cap == 0 {
            return Insert::Rejected(row);
        }
        if self.slots.len() < cap {
            self.slots.push(ClockSlot { src, row, referenced: true });
            return Insert::Stored;
        }
        loop {
            let h = self.hand;
            self.hand = (self.hand + 1) % self.slots.len();
            let s = &mut self.slots[h];
            if s.referenced {
                s.referenced = false;
            } else {
                let old = std::mem::replace(s, ClockSlot { src, row, referenced: true });
                return Insert::Evicted(old.row);
            }
        }
    }
}

/// State a bounded oracle carries on top of the `OnceLock` row vector.
#[derive(Debug)]
struct Bound {
    /// Total row budget requested.
    budget: usize,
    /// Rows allowed to pin into the lock-free segment (`budget / 2`).
    pin_cap: usize,
    /// Pin slots claimed so far.
    pinned: AtomicUsize,
    /// Overflow rows divided exactly across the shards: shard `i` holds
    /// `overflow / SHARDS` slots plus one of the `overflow % SHARDS`
    /// remainder slots, so pinned + overflow capacity == budget.
    overflow_base: usize,
    overflow_rem: usize,
    shards: Box<[Mutex<ClockShard>]>,
    /// Recycled row buffers for the miss path (fed by evictions and
    /// lost insertion races).
    row_pool: Mutex<Vec<Box<[u16]>>>,
    /// Recycled Dijkstra scratches for the miss path.
    scratch_pool: Mutex<Vec<DijkstraScratch>>,
    hits: AtomicU64,
    misses: AtomicU64,
    evictions: AtomicU64,
}

impl Bound {
    fn new(budget: usize) -> Self {
        let budget = budget.max(1);
        let pin_cap = budget / 2;
        let overflow = budget - pin_cap;
        Bound {
            budget,
            pin_cap,
            pinned: AtomicUsize::new(0),
            overflow_base: overflow / OVERFLOW_SHARDS,
            overflow_rem: overflow % OVERFLOW_SHARDS,
            shards: (0..OVERFLOW_SHARDS).map(|_| Mutex::new(ClockShard::default())).collect(),
            row_pool: Mutex::new(Vec::new()),
            scratch_pool: Mutex::new(Vec::new()),
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            evictions: AtomicU64::new(0),
        }
    }

    /// Claims one pin slot if any remain.
    fn try_claim_pin(&self) -> bool {
        self.pinned
            .fetch_update(Ordering::Relaxed, Ordering::Relaxed, |p| {
                (p < self.pin_cap).then_some(p + 1)
            })
            .is_ok()
    }

    /// Returns a pin slot claimed for a row another thread pinned first.
    fn release_pin(&self) {
        self.pinned.fetch_sub(1, Ordering::Relaxed);
    }

    fn shard_index(&self, src: u32) -> usize {
        src as usize % OVERFLOW_SHARDS
    }

    fn shard_cap(&self, idx: usize) -> usize {
        self.overflow_base + usize::from(idx < self.overflow_rem)
    }

    /// Pops a recycled row buffer, or allocates one of `n` entries.
    fn take_row(&self, n: usize) -> Box<[u16]> {
        self.row_pool
            .lock()
            .expect("pool poisoned")
            .pop()
            .unwrap_or_else(|| vec![u16::MAX; n].into_boxed_slice())
    }

    /// Returns a displaced row buffer to the pool (dropped past cap).
    fn recycle_row(&self, row: Box<[u16]>) {
        let mut pool = self.row_pool.lock().expect("pool poisoned");
        if pool.len() < POOL_CAP {
            pool.push(row);
        }
    }

    fn take_scratch(&self) -> DijkstraScratch {
        self.scratch_pool.lock().expect("pool poisoned").pop().unwrap_or_default()
    }

    fn recycle_scratch(&self, scratch: DijkstraScratch) {
        let mut pool = self.scratch_pool.lock().expect("pool poisoned");
        if pool.len() < POOL_CAP {
            pool.push(scratch);
        }
    }
}

/// Storage strategy behind a [`LatencyOracle`].
#[derive(Debug)]
enum Backend {
    /// Cached full Dijkstra rows, optionally budget-bounded.
    Rows {
        rows: Vec<OnceLock<Box<[u16]>>>,
        /// Rows resident in `rows` — maintained at row-init time so
        /// [`LatencyOracle::cached_rows`] is O(1), not a scan.
        materialized: AtomicUsize,
        bound: Option<Bound>,
    },
    /// Exact 2-hop hub labels, optionally memoized per thread.
    Labels { labels: HubLabels, queries: AtomicU64, memo: Option<LabelMemo> },
}

/// Exact shortest-path delays over a router graph.
///
/// Cheap to share by reference across threads; all methods take
/// `&self`.
#[derive(Debug)]
pub struct LatencyOracle {
    graph: Graph,
    backend: Backend,
}

impl LatencyOracle {
    /// Wraps a router graph with an unbounded row cache. No shortest
    /// paths are computed yet.
    #[must_use]
    pub fn new(graph: Graph) -> Self {
        let n = graph.node_count();
        let mut rows = Vec::with_capacity(n);
        rows.resize_with(n, OnceLock::new);
        LatencyOracle {
            graph,
            backend: Backend::Rows { rows, materialized: AtomicUsize::new(0), bound: None },
        }
    }

    /// Wraps a router graph with at most `budget_rows` rows resident
    /// (clamped to ≥ 1). The first `budget_rows / 2` distinct sources
    /// pin into the lock-free segment and keep the `OnceLock` fast
    /// path; later sources share the remaining budget through sharded
    /// CLOCK caches whose capacities sum exactly to the rest of the
    /// budget. Latencies are identical to the unbounded oracle — only
    /// residency and recomputation differ.
    #[must_use]
    pub fn with_row_budget(graph: Graph, budget_rows: usize) -> Self {
        let mut o = Self::new(graph);
        if let Backend::Rows { bound, .. } = &mut o.backend {
            *bound = Some(Bound::new(budget_rows));
        }
        o
    }

    /// Wraps a router graph with exact hub labels built on the default
    /// executor (see [`LatencyOracle::with_labels_on`]).
    #[must_use]
    pub fn with_labels(graph: Graph) -> Self {
        Self::with_labels_on(&Executor::default(), graph)
    }

    /// Wraps a router graph with exact 2-hop hub labels built on
    /// `exec`. The build is the whole cost — queries never run a
    /// Dijkstra — and the labels are bit-identical at any thread
    /// count. Every query answer matches the row backends exactly.
    /// The per-thread query memo is enabled.
    #[must_use]
    pub fn with_labels_on(exec: &Executor, graph: Graph) -> Self {
        Self::with_labels_memoized(exec, graph, true)
    }

    /// [`LatencyOracle::with_labels_on`] with explicit control over the
    /// per-thread query memo. The memo exploits replay lookup locality
    /// (the same router pairs recur across requests) and never changes
    /// an answer — disabling it exists for the memo-identity tests and
    /// for isolating raw merge cost in benchmarks.
    #[must_use]
    pub fn with_labels_memoized(exec: &Executor, graph: Graph, memoized: bool) -> Self {
        let labels = HubLabels::build_on(exec, &graph);
        let memo = memoized.then(|| LabelMemo {
            epoch: MEMO_EPOCH.fetch_add(1, Ordering::Relaxed),
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
        });
        LatencyOracle {
            graph,
            backend: Backend::Labels { labels, queries: AtomicU64::new(0), memo },
        }
    }

    /// The underlying graph.
    #[must_use]
    pub fn graph(&self) -> &Graph {
        &self.graph
    }

    /// Short name of the active backend: `"rows"`, `"bounded"`, or
    /// `"labels"`.
    #[must_use]
    pub fn backend_name(&self) -> &'static str {
        match &self.backend {
            Backend::Rows { bound: None, .. } => "rows",
            Backend::Rows { bound: Some(_), .. } => "bounded",
            Backend::Labels { .. } => "labels",
        }
    }

    /// The full distance row from router `src` (computed on first use).
    ///
    /// Row backends only: on a bounded oracle this is only available
    /// for sources that fit the pinned segment — overflow rows are
    /// transient, so no `&[u16]` can be handed out for them. Prefer
    /// [`LatencyOracle::latency`].
    ///
    /// # Panics
    /// Panics on the labels backend (no rows exist), and on a bounded
    /// oracle whose pinned segment is full and does not hold `src`.
    #[must_use]
    pub fn row(&self, src: u32) -> &[u16] {
        let Backend::Rows { rows, materialized, bound } = &self.backend else {
            panic!("row({src}): labels backend holds no rows; use latency()");
        };
        let slot = &rows[src as usize];
        if let Some(row) = slot.get() {
            return row;
        }
        match bound {
            None => slot.get_or_init(|| {
                materialized.fetch_add(1, Ordering::Relaxed);
                self.graph.dijkstra(src)
            }),
            Some(b) => {
                assert!(
                    b.try_claim_pin(),
                    "row({src}): pinned segment full on a bounded LatencyOracle; use latency()"
                );
                if slot.set(self.graph.dijkstra(src)).is_ok() {
                    materialized.fetch_add(1, Ordering::Relaxed);
                } else {
                    b.release_pin();
                }
                slot.get().expect("row just pinned")
            }
        }
    }

    /// Shortest-path delay in milliseconds between routers `u` and `v`.
    ///
    /// `u == v` is answered as 0 without touching any backend state.
    /// On a bounded oracle every other query counts exactly one hit or
    /// one miss, and a miss evicts at most one overflow row, so
    /// `hits + misses == queries` and `evictions <= misses` hold
    /// exactly. All backends return identical values.
    #[inline]
    #[must_use]
    pub fn latency(&self, u: u32, v: u32) -> u16 {
        if u == v {
            return 0;
        }
        match &self.backend {
            Backend::Labels { labels, queries, memo } => {
                // Counted per query answered, memo hit or not — the
                // counter means "label queries served", and the memo is
                // invisible except in `label_memo.*`.
                queries.fetch_add(1, Ordering::Relaxed);
                match memo {
                    Some(m) => m.latency(labels, u, v),
                    None => labels.latency(u, v),
                }
            }
            Backend::Rows { rows, materialized, bound } => {
                let Some(b) = bound else {
                    return self.row(u)[v as usize];
                };
                // Pinned fast path: lock-free, same as the unbounded
                // oracle.
                if let Some(row) = rows[u as usize].get() {
                    b.hits.fetch_add(1, Ordering::Relaxed);
                    return row[v as usize];
                }
                let si = b.shard_index(u);
                if let Some(val) =
                    b.shards[si].lock().expect("shard poisoned").lookup(u, v)
                {
                    b.hits.fetch_add(1, Ordering::Relaxed);
                    return val;
                }
                b.misses.fetch_add(1, Ordering::Relaxed);
                // Dijkstra runs outside any lock, into a pooled buffer
                // with pooled scratch — steady-state misses never
                // allocate. Concurrent misses on the same source both
                // count and race benignly on insertion.
                let mut row = b.take_row(self.graph.node_count());
                let mut scratch = b.take_scratch();
                self.graph.dijkstra_into(u, &mut row, &mut scratch);
                b.recycle_scratch(scratch);
                let val = row[v as usize];
                if b.try_claim_pin() {
                    match rows[u as usize].set(row) {
                        Ok(()) => {
                            materialized.fetch_add(1, Ordering::Relaxed);
                        }
                        Err(row) => {
                            b.release_pin();
                            b.recycle_row(row);
                        }
                    }
                } else {
                    let cap = b.shard_cap(si);
                    match b.shards[si].lock().expect("shard poisoned").insert(u, row, cap) {
                        Insert::Stored => {}
                        Insert::Evicted(old) => {
                            b.evictions.fetch_add(1, Ordering::Relaxed);
                            b.recycle_row(old);
                        }
                        Insert::Rejected(row) => b.recycle_row(row),
                    }
                }
                val
            }
        }
    }

    /// Number of rows resident in the lock-free segment (0 on the
    /// labels backend). O(1): the count is maintained at row-init
    /// time, not by scanning.
    #[must_use]
    pub fn cached_rows(&self) -> usize {
        match &self.backend {
            Backend::Rows { materialized, .. } => materialized.load(Ordering::Relaxed),
            Backend::Labels { .. } => 0,
        }
    }

    /// Current cache-effectiveness counters. On an unbounded oracle
    /// only `pinned`/`resident` are meaningful (no hot-path counting);
    /// on the labels backend everything is zero — see
    /// [`LatencyOracle::label_stats`].
    #[must_use]
    pub fn cache_stats(&self) -> CacheStats {
        let pinned = self.cached_rows();
        match &self.backend {
            Backend::Labels { .. } => CacheStats::default(),
            Backend::Rows { bound: None, .. } => {
                CacheStats { pinned, resident: pinned, ..CacheStats::default() }
            }
            Backend::Rows { bound: Some(b), .. } => {
                let overflow: usize = b
                    .shards
                    .iter()
                    .map(|s| s.lock().expect("shard poisoned").slots.len())
                    .sum();
                CacheStats {
                    hits: b.hits.load(Ordering::Relaxed),
                    misses: b.misses.load(Ordering::Relaxed),
                    evictions: b.evictions.load(Ordering::Relaxed),
                    pinned,
                    resident: pinned + overflow,
                    budget: Some(b.budget),
                }
            }
        }
    }

    /// Label-size statistics plus the query counter, if this oracle
    /// runs on the labels backend.
    #[must_use]
    pub fn label_stats(&self) -> Option<(LabelStats, u64)> {
        match &self.backend {
            Backend::Labels { labels, queries, .. } => {
                Some((labels.stats(), queries.load(Ordering::Relaxed)))
            }
            Backend::Rows { .. } => None,
        }
    }

    /// `(hits, misses)` of the per-thread query memo, if this oracle
    /// runs on the labels backend with the memo enabled — the
    /// `label_memo.*` metrics. Counters aggregate across threads.
    #[must_use]
    pub fn memo_stats(&self) -> Option<(u64, u64)> {
        match &self.backend {
            Backend::Labels { memo: Some(m), .. } => {
                Some((m.hits.load(Ordering::Relaxed), m.misses.load(Ordering::Relaxed)))
            }
            _ => None,
        }
    }

    /// Eagerly computes the rows for the given sources in parallel on
    /// the default executor.
    ///
    /// Experiments know exactly which routers host peers; warming those
    /// rows up front turns the replay phase into pure lookups. A no-op
    /// on the labels backend, whose build is its own precompute.
    pub fn precompute(&self, sources: &[u32]) {
        self.precompute_on(&Executor::default(), sources);
    }

    /// [`LatencyOracle::precompute`] on a caller-supplied executor. On
    /// a bounded oracle this pins rows until the pinned segment is full
    /// and then stops — warming never counts hits or misses and never
    /// thrashes the overflow shards.
    pub fn precompute_on(&self, exec: &Executor, sources: &[u32]) {
        if matches!(self.backend, Backend::Labels { .. }) {
            return;
        }
        exec.par_for_each(sources.len(), PRECOMPUTE_CHUNK, |i| {
            self.warm(sources[i]);
        });
    }

    /// Eagerly computes every row (full APSP). Only sensible for
    /// moderate graphs; prefer [`LatencyOracle::precompute`].
    pub fn precompute_all(&self) {
        if matches!(self.backend, Backend::Labels { .. }) {
            return;
        }
        Executor::default().par_for_each(self.graph.node_count(), PRECOMPUTE_CHUNK, |i| {
            self.warm(i as u32);
        });
    }

    /// Pins `src`'s row if the cache has room for it; a no-op once the
    /// pinned segment is full on a bounded oracle.
    fn warm(&self, src: u32) {
        let Backend::Rows { rows, materialized, bound } = &self.backend else {
            return;
        };
        let slot = &rows[src as usize];
        if slot.get().is_some() {
            return;
        }
        match bound {
            None => {
                let _ = self.row(src);
            }
            Some(b) => {
                if b.try_claim_pin() {
                    if slot.set(self.graph.dijkstra(src)).is_ok() {
                        materialized.fetch_add(1, Ordering::Relaxed);
                    } else {
                        b.release_pin();
                    }
                }
            }
        }
    }

    /// Approximate bytes held by the backend (materialized rows, or
    /// the label arrays).
    #[must_use]
    pub fn cache_bytes(&self) -> usize {
        match &self.backend {
            Backend::Rows { .. } => {
                self.cache_stats().resident * self.graph.node_count() * core::mem::size_of::<u16>()
            }
            Backend::Labels { labels, .. } => labels.bytes(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn triangle() -> Graph {
        let mut g = Graph::with_nodes(3);
        g.add_edge(0, 1, 10);
        g.add_edge(1, 2, 10);
        g.add_edge(0, 2, 50);
        g
    }

    fn line(n: u32) -> Graph {
        let mut g = Graph::with_nodes(n as usize);
        for i in 0..n - 1 {
            g.add_edge(i, i + 1, 5);
        }
        g
    }

    #[test]
    fn latency_matches_dijkstra_and_is_symmetric() {
        let o = LatencyOracle::new(triangle());
        assert_eq!(o.latency(0, 2), 20);
        assert_eq!(o.latency(2, 0), 20);
        assert_eq!(o.latency(0, 0), 0);
    }

    #[test]
    fn rows_are_cached_lazily() {
        let o = LatencyOracle::new(triangle());
        assert_eq!(o.cached_rows(), 0);
        let _ = o.latency(0, 1);
        assert_eq!(o.cached_rows(), 1);
        let _ = o.latency(0, 2); // same row
        assert_eq!(o.cached_rows(), 1);
    }

    #[test]
    fn self_latency_never_materializes_a_row() {
        let o = LatencyOracle::new(triangle());
        assert_eq!(o.latency(1, 1), 0);
        assert_eq!(o.cached_rows(), 0);
    }

    #[test]
    fn precompute_warms_requested_rows() {
        let o = LatencyOracle::new(triangle());
        o.precompute(&[0, 2]);
        assert_eq!(o.cached_rows(), 2);
        o.precompute_all();
        assert_eq!(o.cached_rows(), 3);
        assert_eq!(o.cache_bytes(), 3 * 3 * 2);
    }

    #[test]
    fn concurrent_row_access_is_consistent() {
        let o = LatencyOracle::new(triangle());
        std::thread::scope(|s| {
            for _ in 0..4 {
                s.spawn(|| {
                    for u in 0..3u32 {
                        for v in 0..3u32 {
                            let fwd = o.latency(u, v);
                            let bwd = o.latency(v, u);
                            assert_eq!(fwd, bwd);
                        }
                    }
                });
            }
        });
    }

    #[test]
    fn bounded_matches_unbounded_exactly() {
        let free = LatencyOracle::new(line(24));
        let tight = LatencyOracle::with_row_budget(line(24), 3);
        for u in 0..24u32 {
            for v in 0..24u32 {
                assert_eq!(tight.latency(u, v), free.latency(u, v), "({u},{v})");
            }
        }
    }

    #[test]
    fn labels_backend_matches_rows_exactly() {
        let free = LatencyOracle::new(line(24));
        let labels = LatencyOracle::with_labels(line(24));
        assert_eq!(labels.backend_name(), "labels");
        for u in 0..24u32 {
            for v in 0..24u32 {
                assert_eq!(labels.latency(u, v), free.latency(u, v), "({u},{v})");
            }
        }
        let (stats, queries) = labels.label_stats().expect("labels backend");
        assert_eq!(queries, 24 * 23, "u == v is answered before counting");
        assert!(stats.entries > 0 && stats.hubs > 0);
        assert_eq!(labels.cached_rows(), 0);
        assert_eq!(labels.cache_stats(), CacheStats::default());
        assert!(labels.cache_bytes() > 0);
    }

    /// The memo must be invisible in answers: every query repeated
    /// twice (cold then memoized) against a memo-off oracle and the
    /// rows backend, on a graph with enough pairs to force
    /// direct-mapped slot collisions and overwrites.
    #[test]
    fn memoized_labels_match_unmemoized_and_rows() {
        let exec = Executor::new(1);
        let rows = LatencyOracle::new(line(60));
        let memo_on = LatencyOracle::with_labels_memoized(&exec, line(60), true);
        let memo_off = LatencyOracle::with_labels_memoized(&exec, line(60), false);
        assert!(memo_on.memo_stats().is_some());
        assert_eq!(memo_off.memo_stats(), None);
        assert_eq!(rows.memo_stats(), None);
        for pass in 0..2 {
            for u in 0..60u32 {
                for v in 0..60u32 {
                    let want = rows.latency(u, v);
                    assert_eq!(memo_off.latency(u, v), want, "pass {pass} ({u},{v})");
                    assert_eq!(memo_on.latency(u, v), want, "pass {pass} ({u},{v})");
                }
            }
        }
        let (hits, misses) = memo_on.memo_stats().expect("memo enabled");
        assert!(hits > 0, "second pass must hit the memo");
        assert!(misses > 0, "first pass must miss the memo");
        assert_eq!(hits + misses, 2 * 60 * 59, "every non-self query goes through the memo");
        let (_, queries) = memo_on.label_stats().expect("labels backend");
        assert_eq!(queries, 2 * 60 * 59, "memo hits still count as queries");
    }

    /// Two oracles alive on the same thread must not cross-read memo
    /// slots: the epoch tag isolates them even when their (u, v) pairs
    /// collide on the same direct-mapped slot.
    #[test]
    fn memo_epochs_isolate_oracles() {
        let exec = Executor::new(1);
        let a = LatencyOracle::with_labels_memoized(&exec, line(30), true);
        let b = LatencyOracle::with_labels_memoized(&exec, triangle(), true);
        for u in 0..30u32 {
            for v in 0..30u32 {
                let _ = a.latency(u, v);
            }
        }
        // Same small indices, different graph — must answer from b's
        // labels, not a's memoized values.
        let fresh = LatencyOracle::new(triangle());
        for u in 0..3u32 {
            for v in 0..3u32 {
                assert_eq!(b.latency(u, v), fresh.latency(u, v), "({u},{v})");
            }
        }
    }

    #[test]
    fn labels_precompute_is_a_noop() {
        let o = LatencyOracle::with_labels(triangle());
        o.precompute(&[0, 1]);
        o.precompute_all();
        assert_eq!(o.cached_rows(), 0);
        let caught = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| o.row(0)));
        assert!(caught.is_err(), "labels backend must refuse row()");
    }

    #[test]
    fn bounded_counters_reconcile() {
        // 40 sources against a 4-row budget force CLOCK collisions.
        let o = LatencyOracle::with_row_budget(line(40), 4);
        let mut queries = 0u64;
        for round in 0..3 {
            for u in 0..40u32 {
                for v in 0..40u32 {
                    let _ = o.latency(u, v);
                    if u != v {
                        queries += 1;
                    }
                }
            }
            let s = o.cache_stats();
            assert_eq!(s.hits + s.misses, queries, "round {round}");
            assert!(s.evictions <= s.misses, "round {round}");
            assert!(s.resident <= s.budget.unwrap(), "round {round}");
        }
        let s = o.cache_stats();
        assert!(s.evictions > 0, "tiny budget over 40 sources must evict");
        assert_eq!(s.pinned, 2, "budget 4 pins budget/2 rows");
    }

    /// Regression for the budget overshoot: `per_shard_cap` used to
    /// round up (`div_ceil`), letting pinned + overflow exceed the
    /// budget (BENCH_scale.json once recorded 126 resident rows
    /// against a 125-row budget). The shard capacities must partition
    /// the overflow exactly.
    #[test]
    fn bounded_residency_never_exceeds_budget() {
        let budget = 125;
        let o = LatencyOracle::with_row_budget(line(200), budget);
        for round in 0..3 {
            // Saturate from more distinct sources than the budget.
            for u in 0..200u32 {
                for v in [199u32, 0, 100] {
                    let _ = o.latency(u, v);
                }
                let s = o.cache_stats();
                assert!(
                    s.resident <= budget,
                    "round {round}: resident {} exceeds budget {budget}",
                    s.resident
                );
            }
        }
        let s = o.cache_stats();
        assert_eq!(s.resident, budget, "a saturated cache should use its whole budget");
        assert_eq!(s.pinned, budget / 2);
    }

    #[test]
    fn tiny_budgets_clamp_and_never_overshoot() {
        for budget in 1..=4usize {
            let o = LatencyOracle::with_row_budget(line(64), budget);
            for u in 0..64u32 {
                let _ = o.latency(u, 63);
            }
            let s = o.cache_stats();
            assert!(s.resident <= budget.max(1), "budget {budget}: resident {}", s.resident);
        }
    }

    #[test]
    fn bounded_precompute_pins_without_counting() {
        let o = LatencyOracle::with_row_budget(line(16), 8);
        o.precompute(&[0, 1, 2, 3, 4, 5, 6, 7]);
        let s = o.cache_stats();
        assert_eq!((s.hits, s.misses, s.evictions), (0, 0, 0));
        assert_eq!(s.pinned, 4, "pin cap is budget/2");
        // Pinned rows answer on the lock-free path as hits.
        let _ = o.latency(0, 9);
        assert_eq!(o.cache_stats().hits, 1);
    }

    #[test]
    fn bounded_row_serves_pinned_and_panics_past_cap() {
        let o = LatencyOracle::with_row_budget(line(8), 4);
        assert_eq!(o.row(0)[7], 35);
        assert_eq!(o.row(1)[7], 30);
        assert_eq!(o.row(0)[7], 35); // still resident
        let caught = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| o.row(5)));
        assert!(caught.is_err(), "third distinct row() must exceed pin cap 2");
    }

    #[test]
    fn unbounded_stats_report_no_counting() {
        let o = LatencyOracle::new(triangle());
        let _ = o.latency(0, 1);
        let s = o.cache_stats();
        assert_eq!((s.hits, s.misses, s.evictions), (0, 0, 0));
        assert_eq!(s.budget, None);
        assert_eq!(s.resident, 1);
        assert_eq!(o.backend_name(), "rows");
        assert_eq!(LatencyOracle::with_row_budget(triangle(), 2).backend_name(), "bounded");
    }
}
