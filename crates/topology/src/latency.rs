//! The latency oracle: cached all-pairs shortest-path delays.
//!
//! Every overlay hop in the simulation costs the underlay shortest-path
//! delay between the two peers' attachment routers. A full APSP matrix
//! for a 10⁴-router network is 10⁸ entries; storing them as `u16`
//! milliseconds (200 MB) is feasible but wasteful for small sweeps, so
//! rows are computed lazily — each row is one Dijkstra, memoized behind
//! a `OnceLock` so concurrent readers race benignly (first writer wins,
//! later computations of the same row are discarded).
//!
//! At 10⁵ routers the unbounded cache stops being an option for
//! memory-constrained runs: 10⁵ rows × 10⁵ `u16`s is 20 GB. The
//! bounded mode ([`LatencyOracle::with_row_budget`]) caps resident
//! rows: the first `budget/2` distinct sources pin permanently into
//! the lock-free `OnceLock` segment (the common hot set — replay
//! workloads are heavily skewed toward a few thousand attachment
//! routers), and the remainder cycle through 16 mutex-sharded CLOCK
//! caches. Hit/miss/eviction counters ([`CacheStats`]) quantify the
//! trade so experiments can report what the bound cost them.

use crate::Graph;
use hieras_rt::Executor;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::{Mutex, OnceLock};

/// Sources per work chunk for parallel row precomputation. One
/// Dijkstra over a 10⁴-router graph takes milliseconds, so small
/// chunks keep the workers balanced without scheduling overhead.
const PRECOMPUTE_CHUNK: usize = 4;

/// Mutex shards for the bounded overflow cache. Sixteen shards keep
/// contention negligible at replay thread counts while the per-shard
/// linear scans stay short.
const OVERFLOW_SHARDS: usize = 16;

/// Cache-effectiveness counters of a bounded [`LatencyOracle`]
/// (all zero in unbounded mode, where no counting happens on the hot
/// path).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Queries answered from a resident row (pinned or overflow).
    pub hits: u64,
    /// Queries that had to run a fresh Dijkstra.
    pub misses: u64,
    /// Rows evicted from the overflow shards. At most one per miss.
    pub evictions: u64,
    /// Rows pinned in the lock-free segment.
    pub pinned: usize,
    /// Rows currently resident (pinned + overflow).
    pub resident: usize,
    /// The row budget, if bounded.
    pub budget: Option<usize>,
}

/// One slot of a CLOCK shard: a materialized row plus its
/// second-chance bit.
#[derive(Debug)]
struct ClockSlot {
    src: u32,
    row: Box<[u16]>,
    referenced: bool,
}

/// A CLOCK (second-chance) eviction shard. Capacity is enforced by the
/// caller; lookups are linear scans, fine for the small per-shard
/// capacities a row budget implies.
#[derive(Debug, Default)]
struct ClockShard {
    slots: Vec<ClockSlot>,
    hand: usize,
}

impl ClockShard {
    /// The cached `row[src][v]`, marking the row recently used.
    fn lookup(&mut self, src: u32, v: u32) -> Option<u16> {
        for s in &mut self.slots {
            if s.src == src {
                s.referenced = true;
                return Some(s.row[v as usize]);
            }
        }
        None
    }

    /// Inserts a freshly computed row, evicting the first
    /// not-recently-used slot once at capacity. Returns whether a row
    /// was evicted. A row another thread raced in is kept as-is.
    fn insert(&mut self, src: u32, row: Box<[u16]>, cap: usize) -> bool {
        for s in &mut self.slots {
            if s.src == src {
                s.referenced = true;
                return false;
            }
        }
        if self.slots.len() < cap {
            self.slots.push(ClockSlot { src, row, referenced: true });
            return false;
        }
        loop {
            let h = self.hand;
            self.hand = (self.hand + 1) % self.slots.len();
            let s = &mut self.slots[h];
            if s.referenced {
                s.referenced = false;
            } else {
                *s = ClockSlot { src, row, referenced: true };
                return true;
            }
        }
    }
}

/// State a bounded oracle carries on top of the `OnceLock` row vector.
#[derive(Debug)]
struct Bound {
    /// Total row budget requested.
    budget: usize,
    /// Rows allowed to pin into the lock-free segment (`budget / 2`).
    pin_cap: usize,
    /// Pin slots claimed so far.
    pinned: AtomicUsize,
    /// Per-shard slot cap; total overflow capacity is the remaining
    /// budget rounded up to a multiple of the shard count.
    per_shard_cap: usize,
    shards: Box<[Mutex<ClockShard>]>,
    hits: AtomicU64,
    misses: AtomicU64,
    evictions: AtomicU64,
}

impl Bound {
    fn new(budget: usize) -> Self {
        let budget = budget.max(1);
        let pin_cap = budget / 2;
        let overflow = budget - pin_cap;
        Bound {
            budget,
            pin_cap,
            pinned: AtomicUsize::new(0),
            per_shard_cap: overflow.div_ceil(OVERFLOW_SHARDS).max(1),
            shards: (0..OVERFLOW_SHARDS).map(|_| Mutex::new(ClockShard::default())).collect(),
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            evictions: AtomicU64::new(0),
        }
    }

    /// Claims one pin slot if any remain.
    fn try_claim_pin(&self) -> bool {
        self.pinned
            .fetch_update(Ordering::Relaxed, Ordering::Relaxed, |p| {
                (p < self.pin_cap).then_some(p + 1)
            })
            .is_ok()
    }

    /// Returns a pin slot claimed for a row another thread pinned first.
    fn release_pin(&self) {
        self.pinned.fetch_sub(1, Ordering::Relaxed);
    }

    fn shard(&self, src: u32) -> &Mutex<ClockShard> {
        &self.shards[src as usize % OVERFLOW_SHARDS]
    }
}

/// Cached single-source shortest-path rows over a router graph.
///
/// Cheap to share by reference across threads; all methods take
/// `&self`.
#[derive(Debug)]
pub struct LatencyOracle {
    graph: Graph,
    rows: Vec<OnceLock<Box<[u16]>>>,
    /// Rows resident in `rows` — maintained at row-init time so
    /// [`LatencyOracle::cached_rows`] is O(1), not a scan.
    materialized: AtomicUsize,
    bound: Option<Bound>,
}

impl LatencyOracle {
    /// Wraps a router graph with an unbounded row cache. No shortest
    /// paths are computed yet.
    #[must_use]
    pub fn new(graph: Graph) -> Self {
        let n = graph.node_count();
        let mut rows = Vec::with_capacity(n);
        rows.resize_with(n, OnceLock::new);
        LatencyOracle { graph, rows, materialized: AtomicUsize::new(0), bound: None }
    }

    /// Wraps a router graph with at most `budget_rows` rows resident
    /// (clamped to ≥ 1). The first `budget_rows / 2` distinct sources
    /// pin into the lock-free segment and keep the `OnceLock` fast
    /// path; later sources share the remaining budget through sharded
    /// CLOCK caches. Latencies are identical to the unbounded oracle —
    /// only residency and recomputation differ.
    #[must_use]
    pub fn with_row_budget(graph: Graph, budget_rows: usize) -> Self {
        let mut o = Self::new(graph);
        o.bound = Some(Bound::new(budget_rows));
        o
    }

    /// The underlying graph.
    #[must_use]
    pub fn graph(&self) -> &Graph {
        &self.graph
    }

    /// The full distance row from router `src` (computed on first use).
    ///
    /// On a bounded oracle this is only available for sources that fit
    /// the pinned segment — overflow rows are transient, so no `&[u16]`
    /// can be handed out for them. Prefer [`LatencyOracle::latency`].
    ///
    /// # Panics
    /// Panics on a bounded oracle whose pinned segment is full and does
    /// not hold `src`.
    #[must_use]
    pub fn row(&self, src: u32) -> &[u16] {
        let slot = &self.rows[src as usize];
        if let Some(row) = slot.get() {
            return row;
        }
        match &self.bound {
            None => slot.get_or_init(|| {
                self.materialized.fetch_add(1, Ordering::Relaxed);
                self.graph.dijkstra(src)
            }),
            Some(b) => {
                assert!(
                    b.try_claim_pin(),
                    "row({src}): pinned segment full on a bounded LatencyOracle; use latency()"
                );
                if slot.set(self.graph.dijkstra(src)).is_ok() {
                    self.materialized.fetch_add(1, Ordering::Relaxed);
                } else {
                    b.release_pin();
                }
                slot.get().expect("row just pinned")
            }
        }
    }

    /// Shortest-path delay in milliseconds between routers `u` and `v`.
    ///
    /// `u == v` is answered as 0 without touching the cache. On a
    /// bounded oracle every other query counts exactly one hit or one
    /// miss, and a miss evicts at most one overflow row, so
    /// `hits + misses == queries` and `evictions <= misses` hold
    /// exactly.
    #[inline]
    #[must_use]
    pub fn latency(&self, u: u32, v: u32) -> u16 {
        if u == v {
            return 0;
        }
        let Some(b) = &self.bound else {
            return self.row(u)[v as usize];
        };
        // Pinned fast path: lock-free, same as the unbounded oracle.
        if let Some(row) = self.rows[u as usize].get() {
            b.hits.fetch_add(1, Ordering::Relaxed);
            return row[v as usize];
        }
        if let Some(val) = b.shard(u).lock().expect("shard poisoned").lookup(u, v) {
            b.hits.fetch_add(1, Ordering::Relaxed);
            return val;
        }
        b.misses.fetch_add(1, Ordering::Relaxed);
        // Dijkstra runs outside any lock; concurrent misses on the same
        // source both count and race benignly on insertion.
        let row = self.graph.dijkstra(u);
        let val = row[v as usize];
        if b.try_claim_pin() {
            if self.rows[u as usize].set(row).is_ok() {
                self.materialized.fetch_add(1, Ordering::Relaxed);
            } else {
                b.release_pin();
            }
        } else if b.shard(u).lock().expect("shard poisoned").insert(u, row, b.per_shard_cap) {
            b.evictions.fetch_add(1, Ordering::Relaxed);
        }
        val
    }

    /// Number of rows resident in the lock-free segment. O(1): the
    /// count is maintained at row-init time, not by scanning.
    #[must_use]
    pub fn cached_rows(&self) -> usize {
        self.materialized.load(Ordering::Relaxed)
    }

    /// Current cache-effectiveness counters. On an unbounded oracle
    /// only `pinned`/`resident` are meaningful (no hot-path counting).
    #[must_use]
    pub fn cache_stats(&self) -> CacheStats {
        let pinned = self.cached_rows();
        match &self.bound {
            None => CacheStats { pinned, resident: pinned, ..CacheStats::default() },
            Some(b) => {
                let overflow: usize = b
                    .shards
                    .iter()
                    .map(|s| s.lock().expect("shard poisoned").slots.len())
                    .sum();
                CacheStats {
                    hits: b.hits.load(Ordering::Relaxed),
                    misses: b.misses.load(Ordering::Relaxed),
                    evictions: b.evictions.load(Ordering::Relaxed),
                    pinned,
                    resident: pinned + overflow,
                    budget: Some(b.budget),
                }
            }
        }
    }

    /// Eagerly computes the rows for the given sources in parallel on
    /// the default executor.
    ///
    /// Experiments know exactly which routers host peers; warming those
    /// rows up front turns the replay phase into pure lookups.
    pub fn precompute(&self, sources: &[u32]) {
        self.precompute_on(&Executor::default(), sources);
    }

    /// [`LatencyOracle::precompute`] on a caller-supplied executor. On
    /// a bounded oracle this pins rows until the pinned segment is full
    /// and then stops — warming never counts hits or misses and never
    /// thrashes the overflow shards.
    pub fn precompute_on(&self, exec: &Executor, sources: &[u32]) {
        exec.par_for_each(sources.len(), PRECOMPUTE_CHUNK, |i| {
            self.warm(sources[i]);
        });
    }

    /// Eagerly computes every row (full APSP). Only sensible for
    /// moderate graphs; prefer [`LatencyOracle::precompute`].
    pub fn precompute_all(&self) {
        Executor::default().par_for_each(self.graph.node_count(), PRECOMPUTE_CHUNK, |i| {
            self.warm(i as u32);
        });
    }

    /// Pins `src`'s row if the cache has room for it; a no-op once the
    /// pinned segment is full on a bounded oracle.
    fn warm(&self, src: u32) {
        let slot = &self.rows[src as usize];
        if slot.get().is_some() {
            return;
        }
        match &self.bound {
            None => {
                let _ = self.row(src);
            }
            Some(b) => {
                if b.try_claim_pin() {
                    if slot.set(self.graph.dijkstra(src)).is_ok() {
                        self.materialized.fetch_add(1, Ordering::Relaxed);
                    } else {
                        b.release_pin();
                    }
                }
            }
        }
    }

    /// Approximate bytes held by materialized rows (diagnostics).
    #[must_use]
    pub fn cache_bytes(&self) -> usize {
        self.cache_stats().resident * self.graph.node_count() * core::mem::size_of::<u16>()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn triangle() -> Graph {
        let mut g = Graph::with_nodes(3);
        g.add_edge(0, 1, 10);
        g.add_edge(1, 2, 10);
        g.add_edge(0, 2, 50);
        g
    }

    fn line(n: u32) -> Graph {
        let mut g = Graph::with_nodes(n as usize);
        for i in 0..n - 1 {
            g.add_edge(i, i + 1, 5);
        }
        g
    }

    #[test]
    fn latency_matches_dijkstra_and_is_symmetric() {
        let o = LatencyOracle::new(triangle());
        assert_eq!(o.latency(0, 2), 20);
        assert_eq!(o.latency(2, 0), 20);
        assert_eq!(o.latency(0, 0), 0);
    }

    #[test]
    fn rows_are_cached_lazily() {
        let o = LatencyOracle::new(triangle());
        assert_eq!(o.cached_rows(), 0);
        let _ = o.latency(0, 1);
        assert_eq!(o.cached_rows(), 1);
        let _ = o.latency(0, 2); // same row
        assert_eq!(o.cached_rows(), 1);
    }

    #[test]
    fn self_latency_never_materializes_a_row() {
        let o = LatencyOracle::new(triangle());
        assert_eq!(o.latency(1, 1), 0);
        assert_eq!(o.cached_rows(), 0);
    }

    #[test]
    fn precompute_warms_requested_rows() {
        let o = LatencyOracle::new(triangle());
        o.precompute(&[0, 2]);
        assert_eq!(o.cached_rows(), 2);
        o.precompute_all();
        assert_eq!(o.cached_rows(), 3);
        assert_eq!(o.cache_bytes(), 3 * 3 * 2);
    }

    #[test]
    fn concurrent_row_access_is_consistent() {
        let o = LatencyOracle::new(triangle());
        std::thread::scope(|s| {
            for _ in 0..4 {
                s.spawn(|| {
                    for u in 0..3u32 {
                        for v in 0..3u32 {
                            let fwd = o.latency(u, v);
                            let bwd = o.latency(v, u);
                            assert_eq!(fwd, bwd);
                        }
                    }
                });
            }
        });
    }

    #[test]
    fn bounded_matches_unbounded_exactly() {
        let free = LatencyOracle::new(line(24));
        let tight = LatencyOracle::with_row_budget(line(24), 3);
        for u in 0..24u32 {
            for v in 0..24u32 {
                assert_eq!(tight.latency(u, v), free.latency(u, v), "({u},{v})");
            }
        }
    }

    #[test]
    fn bounded_counters_reconcile() {
        // 40 sources against per-shard capacity 1 forces CLOCK
        // collisions in every shard (40 sources / 16 shards).
        let o = LatencyOracle::with_row_budget(line(40), 4);
        let mut queries = 0u64;
        for round in 0..3 {
            for u in 0..40u32 {
                for v in 0..40u32 {
                    let _ = o.latency(u, v);
                    if u != v {
                        queries += 1;
                    }
                }
            }
            let s = o.cache_stats();
            assert_eq!(s.hits + s.misses, queries, "round {round}");
            assert!(s.evictions <= s.misses, "round {round}");
            assert!(s.resident <= s.budget.unwrap() + OVERFLOW_SHARDS, "round {round}");
        }
        let s = o.cache_stats();
        assert!(s.evictions > 0, "tiny budget over 16 sources must evict");
        assert_eq!(s.pinned, 2, "budget 4 pins budget/2 rows");
    }

    #[test]
    fn bounded_precompute_pins_without_counting() {
        let o = LatencyOracle::with_row_budget(line(16), 8);
        o.precompute(&[0, 1, 2, 3, 4, 5, 6, 7]);
        let s = o.cache_stats();
        assert_eq!((s.hits, s.misses, s.evictions), (0, 0, 0));
        assert_eq!(s.pinned, 4, "pin cap is budget/2");
        // Pinned rows answer on the lock-free path as hits.
        let _ = o.latency(0, 9);
        assert_eq!(o.cache_stats().hits, 1);
    }

    #[test]
    fn bounded_row_serves_pinned_and_panics_past_cap() {
        let o = LatencyOracle::with_row_budget(line(8), 4);
        assert_eq!(o.row(0)[7], 35);
        assert_eq!(o.row(1)[7], 30);
        assert_eq!(o.row(0)[7], 35); // still resident
        let caught = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| o.row(5)));
        assert!(caught.is_err(), "third distinct row() must exceed pin cap 2");
    }

    #[test]
    fn unbounded_stats_report_no_counting() {
        let o = LatencyOracle::new(triangle());
        let _ = o.latency(0, 1);
        let s = o.cache_stats();
        assert_eq!((s.hits, s.misses, s.evictions), (0, 0, 0));
        assert_eq!(s.budget, None);
        assert_eq!(s.resident, 1);
    }
}
