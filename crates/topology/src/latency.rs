//! The latency oracle: cached all-pairs shortest-path delays.
//!
//! Every overlay hop in the simulation costs the underlay shortest-path
//! delay between the two peers' attachment routers. A full APSP matrix
//! for a 10⁴-router network is 10⁸ entries; storing them as `u16`
//! milliseconds (200 MB) is feasible but wasteful for small sweeps, so
//! rows are computed lazily — each row is one Dijkstra, memoized behind
//! a `OnceLock` so concurrent readers race benignly (first writer wins,
//! later computations of the same row are discarded).

use crate::Graph;
use hieras_rt::Executor;
use std::sync::OnceLock;

/// Sources per work chunk for parallel row precomputation. One
/// Dijkstra over a 10⁴-router graph takes milliseconds, so small
/// chunks keep the workers balanced without scheduling overhead.
const PRECOMPUTE_CHUNK: usize = 4;

/// Cached single-source shortest-path rows over a router graph.
///
/// Cheap to share by reference across threads; all methods take
/// `&self`.
#[derive(Debug)]
pub struct LatencyOracle {
    graph: Graph,
    rows: Vec<OnceLock<Box<[u16]>>>,
}

impl LatencyOracle {
    /// Wraps a router graph. No shortest paths are computed yet.
    #[must_use]
    pub fn new(graph: Graph) -> Self {
        let n = graph.node_count();
        let mut rows = Vec::with_capacity(n);
        rows.resize_with(n, OnceLock::new);
        LatencyOracle { graph, rows }
    }

    /// The underlying graph.
    #[must_use]
    pub fn graph(&self) -> &Graph {
        &self.graph
    }

    /// The full distance row from router `src` (computed on first use).
    #[must_use]
    pub fn row(&self, src: u32) -> &[u16] {
        self.rows[src as usize].get_or_init(|| self.graph.dijkstra(src))
    }

    /// Shortest-path delay in milliseconds between routers `u` and `v`.
    #[inline]
    #[must_use]
    pub fn latency(&self, u: u32, v: u32) -> u16 {
        if u == v {
            return 0;
        }
        self.row(u)[v as usize]
    }

    /// Number of rows currently materialized (diagnostics/tests).
    #[must_use]
    pub fn cached_rows(&self) -> usize {
        self.rows.iter().filter(|r| r.get().is_some()).count()
    }

    /// Eagerly computes the rows for the given sources in parallel.
    ///
    /// Experiments know exactly which routers host peers; warming those
    /// rows up front turns the replay phase into pure lookups.
    pub fn precompute(&self, sources: &[u32]) {
        Executor::default().par_for_each(sources.len(), PRECOMPUTE_CHUNK, |i| {
            let _ = self.row(sources[i]);
        });
    }

    /// Eagerly computes every row (full APSP). Only sensible for
    /// moderate graphs; prefer [`LatencyOracle::precompute`].
    pub fn precompute_all(&self) {
        Executor::default().par_for_each(self.graph.node_count(), PRECOMPUTE_CHUNK, |i| {
            let _ = self.row(i as u32);
        });
    }

    /// Approximate bytes held by materialized rows (diagnostics).
    #[must_use]
    pub fn cache_bytes(&self) -> usize {
        self.cached_rows() * self.graph.node_count() * core::mem::size_of::<u16>()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn triangle() -> Graph {
        let mut g = Graph::with_nodes(3);
        g.add_edge(0, 1, 10);
        g.add_edge(1, 2, 10);
        g.add_edge(0, 2, 50);
        g
    }

    #[test]
    fn latency_matches_dijkstra_and_is_symmetric() {
        let o = LatencyOracle::new(triangle());
        assert_eq!(o.latency(0, 2), 20);
        assert_eq!(o.latency(2, 0), 20);
        assert_eq!(o.latency(0, 0), 0);
    }

    #[test]
    fn rows_are_cached_lazily() {
        let o = LatencyOracle::new(triangle());
        assert_eq!(o.cached_rows(), 0);
        let _ = o.latency(0, 1);
        assert_eq!(o.cached_rows(), 1);
        let _ = o.latency(0, 2); // same row
        assert_eq!(o.cached_rows(), 1);
    }

    #[test]
    fn self_latency_never_materializes_a_row() {
        let o = LatencyOracle::new(triangle());
        assert_eq!(o.latency(1, 1), 0);
        assert_eq!(o.cached_rows(), 0);
    }

    #[test]
    fn precompute_warms_requested_rows() {
        let o = LatencyOracle::new(triangle());
        o.precompute(&[0, 2]);
        assert_eq!(o.cached_rows(), 2);
        o.precompute_all();
        assert_eq!(o.cached_rows(), 3);
        assert_eq!(o.cache_bytes(), 3 * 3 * 2);
    }

    #[test]
    fn concurrent_row_access_is_consistent() {
        let o = LatencyOracle::new(triangle());
        std::thread::scope(|s| {
            for _ in 0..4 {
                s.spawn(|| {
                    for u in 0..3u32 {
                        for v in 0..3u32 {
                            let fwd = o.latency(u, v);
                            let bwd = o.latency(v, u);
                            assert_eq!(fwd, bwd);
                        }
                    }
                });
            }
        });
    }
}
