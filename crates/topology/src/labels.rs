//! Exact 2-hop (hub) distance labels — the sub-quadratic latency
//! backend.
//!
//! The row-matrix oracle pays one full Dijkstra per distinct source
//! and `N × N` `u16`s of residency: at 10⁵ routers that is the entire
//! build wall (≈20 min) and 20 GB of RSS. The internet-shaped graphs
//! this repo simulates (Transit-Stub, Inet power-law, BRITE) are
//! exactly the low-highway-dimension graphs on which *pruned landmark
//! labeling* (Akiba, Iwata, Yoshida — SIGMOD 2013) is known to produce
//! tiny labels: every shortest path crosses a small hierarchy of hub
//! routers, so a handful of `(hub, distance)` pairs per vertex suffice
//! to answer **exact** shortest-path queries by a sorted merge:
//!
//! ```text
//! d(u, v) = min over hubs h ∈ label(u) ∩ label(v) of d(u,h) + d(h,v)
//! ```
//!
//! Construction processes vertices in deterministic degree-descending
//! order. Each hub runs one *pruned* Dijkstra: when a visited vertex's
//! distance is already covered by previously committed labels, the
//! search neither labels nor expands it. On a Transit-Stub instance
//! the eight transit routers are ranked first and every later search
//! collapses to its own stub domain — total work scales with the label
//! size, not `N²`.
//!
//! Hubs are processed in fixed geometric warm-up batches (1, 2, 4, …,
//! [`MAX_BATCH`]); within a batch every pruned Dijkstra sees only the
//! labels committed by *prior* batches, so each batch is a pure
//! function of the previous state and [`Executor::par_fill`] can run
//! it on any number of threads with **bit-identical** results. (Less
//! intra-batch pruning only ever adds redundant — still exact —
//! entries, and the schedule is fixed, so the label set is a pure
//! function of the graph.)

use crate::graph::DijkstraScratch;
use crate::Graph;
use hieras_rt::Executor;
use std::cell::RefCell;

/// Hubs per full-speed batch. Must not depend on the thread count —
/// it defines the commit schedule and therefore the exact label set.
/// The geometric warm-up (1, 2, 4, … hubs) keeps the earliest, most
/// widely covering hubs pruning each other near-sequentially; by the
/// time batches reach this size the searches are local and intra-batch
/// redundancy is negligible.
const MAX_BATCH: usize = 256;

/// Hubs per work chunk inside a batch. Small: one pruned search is
/// microseconds to milliseconds, and chunk order fixes the merge.
const LABEL_CHUNK: usize = 2;

/// Size/effort statistics of a built [`HubLabels`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LabelStats {
    /// Vertices serving as a hub in at least one label list.
    pub hubs: usize,
    /// Total `(hub, distance)` entries across all vertices.
    pub entries: usize,
    /// Mean label length.
    pub avg_len: f64,
    /// Longest label list.
    pub max_len: usize,
    /// Wall-clock build time, milliseconds.
    pub build_ms: f64,
}

/// Exact 2-hop distance labels over a [`Graph`].
///
/// Immutable once built; queries take `&self` and are safe to share
/// across threads. Equality compares the label structure only (not
/// the recorded build time), so thread-identity tests can assert
/// builds at different widths produce the same labels.
#[derive(Debug, Clone)]
pub struct HubLabels {
    /// CSR offsets into `entries`, one slice per vertex.
    offsets: Box<[u32]>,
    /// Per-vertex label entries, packed `(hub_rank << 32) | distance`,
    /// sorted ascending by hub rank (commit order guarantees it).
    entries: Box<[u64]>,
    /// Number of distinct hubs used by at least one label.
    hubs: usize,
    /// Wall-clock build time, ms (diagnostic; not part of equality).
    build_ms: f64,
}

impl PartialEq for HubLabels {
    fn eq(&self, other: &Self) -> bool {
        self.offsets == other.offsets && self.entries == other.entries && self.hubs == other.hubs
    }
}

impl Eq for HubLabels {}

/// Per-worker working memory for one pruned Dijkstra: the shared
/// [`DijkstraScratch`] (tentative distances + Dial bucket ring, reset
/// lazily through `touched`) plus the current hub's committed label
/// scattered by rank for O(|label|) cover queries.
#[derive(Default)]
struct LabelScratch {
    dij: DijkstraScratch,
    /// Vertices whose tentative distance was set this run.
    touched: Vec<u32>,
    /// Distance from the current hub to committed hub `rank`;
    /// `u32::MAX` = hub not on the current root's label.
    hub_dist_of_rank: Vec<u32>,
    /// Ranks set in `hub_dist_of_rank`, for O(|label|) reset.
    marked: Vec<u32>,
}

impl LabelScratch {
    /// Grows the arrays to cover `n` vertices and `nb` buckets,
    /// keeping prior allocations. Distances are maintained reset by
    /// the lazy `touched`/`marked` lists, so this never refills them.
    fn ensure(&mut self, n: usize, nb: usize) {
        if self.dij.dist.len() < n {
            self.dij.dist.resize(n, u32::MAX);
        }
        if self.dij.buckets.len() < nb {
            self.dij.buckets.resize_with(nb, Vec::new);
        }
        if self.hub_dist_of_rank.len() < n {
            self.hub_dist_of_rank.resize(n, u32::MAX);
        }
    }
}

thread_local! {
    /// One scratch per worker thread. Purely an allocation cache: the
    /// labels produced are independent of scratch state, so reuse
    /// cannot perturb determinism.
    static SCRATCH: RefCell<LabelScratch> = RefCell::new(LabelScratch::default());
}

/// One pruned Dijkstra from `root`: returns the `(vertex, distance)`
/// pairs this hub must label, in deterministic settle order. Pruning
/// consults only `committed` (labels from prior batches), making the
/// result a pure function of `(graph, committed, root)`.
fn pruned_dijkstra(
    graph: &Graph,
    committed: &[Vec<(u32, u32)>],
    root: u32,
    nb: usize,
) -> Vec<(u32, u32)> {
    SCRATCH.with(|cell| {
        let scratch = &mut *cell.borrow_mut();
        scratch.ensure(graph.node_count(), nb);
        let LabelScratch { dij, touched, hub_dist_of_rank, marked } = scratch;
        let (dist, buckets) = (&mut dij.dist, &mut dij.buckets);
        let mut out = Vec::new();

        // Scatter the root's committed label for O(|label(u)|) cover
        // queries at every visited vertex u.
        for &(rank, d) in &committed[root as usize] {
            hub_dist_of_rank[rank as usize] = d;
            marked.push(rank);
        }

        let mut pending = 1usize;
        dist[root as usize] = 0;
        touched.push(root);
        buckets[0].push(root);
        let mut d = 0usize;
        while pending > 0 {
            let b = d % nb;
            while let Some(u) = buckets[b].pop() {
                pending -= 1;
                if dist[u as usize] != d as u32 {
                    continue; // superseded entry
                }
                // Pruning test: is d(root, u) already achieved through
                // a committed hub common to both labels?
                let covered = committed[u as usize].iter().any(|&(rank, du)| {
                    let dr = hub_dist_of_rank[rank as usize];
                    dr != u32::MAX && u64::from(dr) + u64::from(du) <= d as u64
                });
                if covered {
                    continue;
                }
                out.push((u, d as u32));
                for e in graph.neighbors(u) {
                    let nd = d as u32 + u32::from(e.delay_ms);
                    if nd < dist[e.to as usize] {
                        if dist[e.to as usize] == u32::MAX {
                            touched.push(e.to);
                        }
                        dist[e.to as usize] = nd;
                        buckets[nd as usize % nb].push(e.to);
                        pending += 1;
                    }
                }
            }
            d += 1;
        }

        // Lazy reset: only what this run wrote.
        for &t in touched.iter() {
            dist[t as usize] = u32::MAX;
        }
        touched.clear();
        for &r in marked.iter() {
            hub_dist_of_rank[r as usize] = u32::MAX;
        }
        marked.clear();
        out
    })
}

impl HubLabels {
    /// Builds labels on the default executor. Identical to
    /// [`HubLabels::build_on`] at any width.
    #[must_use]
    pub fn build(graph: &Graph) -> Self {
        Self::build_on(&Executor::default(), graph)
    }

    /// Builds exact hub labels for `graph`, parallelized on `exec`.
    ///
    /// The hub order (degree descending, index ascending), the batch
    /// schedule, and the per-batch chunk size are all fixed, so the
    /// resulting labels are **bit-identical at any thread count** —
    /// asserted by `tests/label_equivalence.rs`.
    #[must_use]
    pub fn build_on(exec: &Executor, graph: &Graph) -> Self {
        let t0 = std::time::Instant::now();
        let n = graph.node_count();

        // Deterministic hub priority: degree descending, index as the
        // tie-break. High-degree routers (transit cores, AS hubs) cover
        // the most shortest paths and must commit first.
        let mut order: Vec<u32> = (0..n as u32).collect();
        order.sort_by_key(|&v| (usize::MAX - graph.degree(v), v));

        let nb = usize::from(graph.max_delay()) + 1;
        let mut committed: Vec<Vec<(u32, u32)>> = vec![Vec::new(); n];
        let mut hubs = 0usize;

        let mut start = 0usize;
        let mut batch = 1usize;
        while start < n {
            let size = batch.min(n - start);
            let mut results: Vec<Vec<(u32, u32)>> = vec![Vec::new(); size];
            {
                let committed = &committed;
                let order = &order;
                exec.par_fill(&mut results, LABEL_CHUNK, |i| {
                    pruned_dijkstra(graph, committed, order[start + i], nb)
                });
            }
            // Commit sequentially in rank order; each vertex's list
            // stays sorted by hub rank by construction.
            for (i, ins) in results.into_iter().enumerate() {
                let rank = (start + i) as u32;
                if !ins.is_empty() {
                    hubs += 1;
                }
                for (v, d) in ins {
                    committed[v as usize].push((rank, d));
                }
            }
            start += size;
            if batch < MAX_BATCH {
                batch *= 2;
            }
        }

        // Flatten to CSR with packed entries.
        let total: usize = committed.iter().map(Vec::len).sum();
        let mut offsets = Vec::with_capacity(n + 1);
        let mut entries = Vec::with_capacity(total);
        offsets.push(0u32);
        for label in &committed {
            for &(rank, d) in label {
                entries.push((u64::from(rank) << 32) | u64::from(d));
            }
            offsets.push(u32::try_from(entries.len()).expect("label entries overflow u32"));
        }

        HubLabels {
            offsets: offsets.into_boxed_slice(),
            entries: entries.into_boxed_slice(),
            hubs,
            build_ms: t0.elapsed().as_secs_f64() * 1e3,
        }
    }

    /// The packed label slice of vertex `u`.
    #[inline]
    fn label(&self, u: u32) -> &[u64] {
        let lo = self.offsets[u as usize] as usize;
        let hi = self.offsets[u as usize + 1] as usize;
        &self.entries[lo..hi]
    }

    /// Exact shortest-path delay between `u` and `v` in milliseconds,
    /// saturating at `u16::MAX - 1`; `u16::MAX` = unreachable. Matches
    /// [`Graph::dijkstra`] rows entry for entry.
    #[inline]
    #[must_use]
    pub fn latency(&self, u: u32, v: u32) -> u16 {
        if u == v {
            return 0;
        }
        const DIST: u64 = 0xffff_ffff;
        let (a, b) = (self.label(u), self.label(v));
        let mut best = u64::MAX;
        let (mut i, mut j) = (0usize, 0usize);
        while i < a.len() && j < b.len() {
            let (ra, rb) = (a[i] >> 32, b[j] >> 32);
            if ra == rb {
                let sum = (a[i] & DIST) + (b[j] & DIST);
                if sum < best {
                    best = sum;
                }
                i += 1;
                j += 1;
            } else if ra < rb {
                i += 1;
            } else {
                j += 1;
            }
        }
        if best == u64::MAX {
            u16::MAX
        } else {
            best.min(u64::from(u16::MAX - 1)) as u16
        }
    }

    /// Number of vertices labeled.
    #[must_use]
    pub fn node_count(&self) -> usize {
        self.offsets.len() - 1
    }

    /// Approximate bytes held by the label arrays.
    #[must_use]
    pub fn bytes(&self) -> usize {
        self.entries.len() * core::mem::size_of::<u64>()
            + self.offsets.len() * core::mem::size_of::<u32>()
    }

    /// Size/effort statistics.
    #[must_use]
    pub fn stats(&self) -> LabelStats {
        let n = self.node_count();
        let entries = self.entries.len();
        let max_len = (0..n as u32).map(|u| self.label(u).len()).max().unwrap_or(0);
        LabelStats {
            hubs: self.hubs,
            entries,
            avg_len: if n == 0 { 0.0 } else { entries as f64 / n as f64 },
            max_len,
            build_ms: self.build_ms,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn assert_exact(g: &Graph, labels: &HubLabels) {
        for u in 0..g.node_count() as u32 {
            let row = g.dijkstra(u);
            for v in 0..g.node_count() as u32 {
                let want = if u == v { 0 } else { row[v as usize] };
                assert_eq!(labels.latency(u, v), want, "({u},{v})");
            }
        }
    }

    #[test]
    fn triangle_labels_are_exact() {
        let mut g = Graph::with_nodes(3);
        g.add_edge(0, 1, 10);
        g.add_edge(1, 2, 10);
        g.add_edge(0, 2, 50);
        assert_exact(&g, &HubLabels::build(&g));
    }

    #[test]
    fn disconnected_pairs_report_unreachable() {
        let mut g = Graph::with_nodes(4);
        g.add_edge(0, 1, 7);
        g.add_edge(2, 3, 9);
        let l = HubLabels::build(&g);
        assert_eq!(l.latency(0, 1), 7);
        assert_eq!(l.latency(0, 2), u16::MAX);
        assert_eq!(l.latency(1, 3), u16::MAX);
        assert_exact(&g, &l);
    }

    #[test]
    fn zero_weight_edges_are_exact() {
        let mut g = Graph::with_nodes(4);
        g.add_edge(0, 1, 0);
        g.add_edge(1, 2, 3);
        g.add_edge(2, 3, 0);
        assert_exact(&g, &HubLabels::build(&g));
    }

    #[test]
    fn saturating_distances_match_rows() {
        let mut g = Graph::with_nodes(3);
        g.add_edge(0, 1, u16::MAX - 1);
        g.add_edge(1, 2, u16::MAX - 1);
        let l = HubLabels::build(&g);
        assert_eq!(l.latency(0, 2), u16::MAX - 1, "saturated, still reachable");
        assert_exact(&g, &l);
    }

    #[test]
    fn empty_and_single_node_graphs() {
        let l = HubLabels::build(&Graph::with_nodes(0));
        assert_eq!(l.node_count(), 0);
        let g = Graph::with_nodes(1);
        let l = HubLabels::build(&g);
        assert_eq!(l.latency(0, 0), 0);
    }

    #[test]
    fn stats_reconcile_with_structure() {
        let mut g = Graph::with_nodes(5);
        for i in 0..4 {
            g.add_edge(i, i + 1, 2);
        }
        let l = HubLabels::build(&g);
        let s = l.stats();
        assert_eq!(s.entries, l.entries.len());
        assert!(s.hubs >= 1 && s.hubs <= 5);
        assert!(s.max_len >= 1);
        assert!((s.avg_len - s.entries as f64 / 5.0).abs() < 1e-12);
        assert!(l.bytes() >= s.entries * 8);
    }
}
