//! Exact 2-hop (hub) distance labels — the sub-quadratic latency
//! backend.
//!
//! The row-matrix oracle pays one full Dijkstra per distinct source
//! and `N × N` `u16`s of residency: at 10⁵ routers that is the entire
//! build wall (≈20 min) and 20 GB of RSS. The internet-shaped graphs
//! this repo simulates (Transit-Stub, Inet power-law, BRITE) are
//! exactly the low-highway-dimension graphs on which *pruned landmark
//! labeling* (Akiba, Iwata, Yoshida — SIGMOD 2013) is known to produce
//! tiny labels: every shortest path crosses a small hierarchy of hub
//! routers, so a handful of `(hub, distance)` pairs per vertex suffice
//! to answer **exact** shortest-path queries by a sorted merge:
//!
//! ```text
//! d(u, v) = min over hubs h ∈ label(u) ∩ label(v) of d(u,h) + d(h,v)
//! ```
//!
//! Construction processes vertices in a deterministic
//! *sampled-betweenness* order: a fixed, seeded set of shortest-path
//! trees is computed and vertices are ranked by how many sampled
//! shortest paths run through them (degree, then index, break ties).
//! Betweenness is the quantity pruned labeling actually wants —
//! "covers the most shortest paths" — and on internet-shaped graphs it
//! ranks the transit backbone above merely well-connected stub routers,
//! yielding measurably shorter labels than degree order. Each hub then
//! runs one *pruned* Dijkstra: when a visited vertex's distance is
//! already covered by previously committed labels, the search neither
//! labels nor expands it. On a Transit-Stub instance the transit
//! routers are ranked first and every later search collapses to its own
//! stub domain — total work scales with the label size, not `N²`.
//!
//! Hubs are processed in fixed geometric warm-up batches (1, 2, 4, …,
//! [`MAX_BATCH`]); within a batch every pruned Dijkstra sees only the
//! labels committed by *prior* batches, so each batch is a pure
//! function of the previous state and [`Executor::par_fill`] can run
//! it on any number of threads with **bit-identical** results. (Less
//! intra-batch pruning only ever adds redundant — still exact —
//! entries, and the schedule is fixed, so the label set is a pure
//! function of the graph.)

use crate::graph::DijkstraScratch;
use crate::Graph;
use hieras_rt::{Executor, Rng};
use std::cell::RefCell;

/// Hubs per full-speed batch. Must not depend on the thread count —
/// it defines the commit schedule and therefore the exact label set.
/// The geometric warm-up (1, 2, 4, … hubs) keeps the earliest, most
/// widely covering hubs pruning each other near-sequentially; by the
/// time batches reach this size the searches are local and intra-batch
/// redundancy is negligible.
const MAX_BATCH: usize = 256;

/// Hubs per work chunk inside a batch. Small: one pruned search is
/// microseconds to milliseconds, and chunk order fixes the merge.
const LABEL_CHUNK: usize = 2;

/// Shortest-path trees sampled to score the betweenness hub order.
/// Fixed — it is part of the label-set definition, like [`MAX_BATCH`].
const BETWEENNESS_SAMPLES: usize = 32;

/// Sample roots per betweenness work chunk: bounds the number of live
/// 8-byte-per-vertex accumulators while leaving 16 chunks to spread.
const BETWEENNESS_CHUNK: usize = 2;

/// Size/effort statistics of a built [`HubLabels`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LabelStats {
    /// Vertices serving as a hub in at least one label list.
    pub hubs: usize,
    /// Total `(hub, distance)` entries across all vertices.
    pub entries: usize,
    /// Mean label length.
    pub avg_len: f64,
    /// Longest label list.
    pub max_len: usize,
    /// Wall-clock build time, milliseconds.
    pub build_ms: f64,
}

/// Exact 2-hop distance labels over a [`Graph`].
///
/// Immutable once built; queries take `&self` and are safe to share
/// across threads. Equality compares the label structure only (not
/// the recorded build time), so thread-identity tests can assert
/// builds at different widths produce the same labels.
#[derive(Debug, Clone)]
pub struct HubLabels {
    /// CSR offsets into `entries`, one slice per vertex.
    offsets: Box<[u32]>,
    /// Per-vertex label entries, packed `(hub_rank << 32) | distance`,
    /// sorted ascending by hub rank (commit order guarantees it).
    entries: Box<[u64]>,
    /// Number of distinct hubs used by at least one label.
    hubs: usize,
    /// Wall-clock build time, ms (diagnostic; not part of equality).
    build_ms: f64,
}

impl PartialEq for HubLabels {
    fn eq(&self, other: &Self) -> bool {
        self.offsets == other.offsets && self.entries == other.entries && self.hubs == other.hubs
    }
}

impl Eq for HubLabels {}

/// Per-worker working memory for one pruned Dijkstra: the shared
/// [`DijkstraScratch`] (tentative distances + Dial bucket ring, reset
/// lazily through `touched`) plus the current hub's committed label
/// scattered by rank for O(|label|) cover queries.
#[derive(Default)]
struct LabelScratch {
    dij: DijkstraScratch,
    /// Vertices whose tentative distance was set this run.
    touched: Vec<u32>,
    /// Distance from the current hub to committed hub `rank`;
    /// `u32::MAX` = hub not on the current root's label.
    hub_dist_of_rank: Vec<u32>,
    /// Ranks set in `hub_dist_of_rank`, for O(|label|) reset.
    marked: Vec<u32>,
}

impl LabelScratch {
    /// Grows the arrays to cover `n` vertices and `nb` buckets,
    /// keeping prior allocations. Distances are maintained reset by
    /// the lazy `touched`/`marked` lists, so this never refills them.
    fn ensure(&mut self, n: usize, nb: usize) {
        if self.dij.dist.len() < n {
            self.dij.dist.resize(n, u32::MAX);
        }
        if self.dij.buckets.len() < nb {
            self.dij.buckets.resize_with(nb, Vec::new);
        }
        if self.hub_dist_of_rank.len() < n {
            self.hub_dist_of_rank.resize(n, u32::MAX);
        }
    }
}

thread_local! {
    /// One scratch per worker thread. Purely an allocation cache: the
    /// labels produced are independent of scratch state, so reuse
    /// cannot perturb determinism.
    static SCRATCH: RefCell<LabelScratch> = RefCell::new(LabelScratch::default());
}

/// Adds one sampled shortest-path tree rooted at `root` into `scores`.
///
/// Runs a canonical Dial-bucket Dijkstra (deterministic: single
/// threaded, LIFO buckets, the parent of a vertex is whichever strict
/// relaxation fixed its final distance), then accumulates subtree
/// sizes in reverse settle order — `size[v]` counts the sampled
/// shortest paths from `root` that pass through `v`, the standard
/// one-tree term of sampled betweenness centrality.
fn accumulate_sp_tree(graph: &Graph, root: u32, nb: usize, scores: &mut [u64]) {
    let n = graph.node_count();
    let mut dist = vec![u32::MAX; n];
    let mut parent = vec![u32::MAX; n];
    let mut settled: Vec<u32> = Vec::with_capacity(n);
    let mut buckets: Vec<Vec<u32>> = vec![Vec::new(); nb];
    dist[root as usize] = 0;
    buckets[0].push(root);
    let mut pending = 1usize;
    let mut d = 0usize;
    while pending > 0 {
        let b = d % nb;
        while let Some(u) = buckets[b].pop() {
            pending -= 1;
            if dist[u as usize] != d as u32 {
                continue; // superseded entry
            }
            settled.push(u);
            for e in graph.neighbors(u) {
                let nd = d as u32 + u32::from(e.delay_ms);
                if nd < dist[e.to as usize] {
                    dist[e.to as usize] = nd;
                    parent[e.to as usize] = u;
                    buckets[nd as usize % nb].push(e.to);
                    pending += 1;
                }
            }
        }
        d += 1;
    }
    // A vertex's parent settles strictly before it, so reverse settle
    // order sees every child before its parent.
    let mut size = vec![1u64; n];
    for &u in settled.iter().rev() {
        let p = parent[u as usize];
        if p != u32::MAX {
            let s = size[u as usize];
            size[p as usize] += s;
        }
    }
    for &u in &settled {
        if u != root {
            scores[u as usize] += size[u as usize];
        }
    }
}

/// Deterministic hub priority: sampled-betweenness score descending,
/// then degree descending, then index. The sample-root set is seeded
/// from the vertex count alone, so the order — and therefore the label
/// set — is a pure function of the graph at any thread count.
fn hub_order(exec: &Executor, graph: &Graph) -> Vec<u32> {
    let n = graph.node_count();
    let mut order: Vec<u32> = (0..n as u32).collect();
    let k = BETWEENNESS_SAMPLES.min(n);
    let mut scores = vec![0u64; n];
    if k > 0 {
        let mut rng = Rng::seed_from_u64(0x4865_5261_5_u64 ^ (n as u64).rotate_left(17));
        let roots = rng.sample_indices(n, k);
        let nb = usize::from(graph.max_delay()) + 1;
        scores = exec.par_fold(
            k,
            BETWEENNESS_CHUNK,
            || vec![0u64; n],
            |acc, i| accumulate_sp_tree(graph, roots[i] as u32, nb, acc),
            |mut a, b| {
                // Element-wise u64 sums: exact and order-independent,
                // so the merge is trivially thread-invariant.
                for (x, y) in a.iter_mut().zip(b) {
                    *x += y;
                }
                a
            },
        );
    }
    order.sort_by_key(|&v| {
        (u64::MAX - scores[v as usize], usize::MAX - graph.degree(v), v)
    });
    order
}

/// One pruned Dijkstra from `root`: returns the `(vertex, distance)`
/// pairs this hub must label, in deterministic settle order. Pruning
/// consults only `committed` (labels from prior batches), making the
/// result a pure function of `(graph, committed, root)`.
fn pruned_dijkstra(
    graph: &Graph,
    committed: &[Vec<(u32, u32)>],
    root: u32,
    nb: usize,
) -> Vec<(u32, u32)> {
    SCRATCH.with(|cell| {
        let scratch = &mut *cell.borrow_mut();
        scratch.ensure(graph.node_count(), nb);
        let LabelScratch { dij, touched, hub_dist_of_rank, marked } = scratch;
        let (dist, buckets) = (&mut dij.dist, &mut dij.buckets);
        let mut out = Vec::new();

        // Scatter the root's committed label for O(|label(u)|) cover
        // queries at every visited vertex u.
        for &(rank, d) in &committed[root as usize] {
            hub_dist_of_rank[rank as usize] = d;
            marked.push(rank);
        }

        let mut pending = 1usize;
        dist[root as usize] = 0;
        touched.push(root);
        buckets[0].push(root);
        let mut d = 0usize;
        while pending > 0 {
            let b = d % nb;
            while let Some(u) = buckets[b].pop() {
                pending -= 1;
                if dist[u as usize] != d as u32 {
                    continue; // superseded entry
                }
                // Pruning test: is d(root, u) already achieved through
                // a committed hub common to both labels?
                let covered = committed[u as usize].iter().any(|&(rank, du)| {
                    let dr = hub_dist_of_rank[rank as usize];
                    dr != u32::MAX && u64::from(dr) + u64::from(du) <= d as u64
                });
                if covered {
                    continue;
                }
                out.push((u, d as u32));
                for e in graph.neighbors(u) {
                    let nd = d as u32 + u32::from(e.delay_ms);
                    if nd < dist[e.to as usize] {
                        if dist[e.to as usize] == u32::MAX {
                            touched.push(e.to);
                        }
                        dist[e.to as usize] = nd;
                        buckets[nd as usize % nb].push(e.to);
                        pending += 1;
                    }
                }
            }
            d += 1;
        }

        // Lazy reset: only what this run wrote.
        for &t in touched.iter() {
            dist[t as usize] = u32::MAX;
        }
        touched.clear();
        for &r in marked.iter() {
            hub_dist_of_rank[r as usize] = u32::MAX;
        }
        marked.clear();
        out
    })
}

impl HubLabels {
    /// Builds labels on the default executor. Identical to
    /// [`HubLabels::build_on`] at any width.
    #[must_use]
    pub fn build(graph: &Graph) -> Self {
        Self::build_on(&Executor::default(), graph)
    }

    /// Builds exact hub labels for `graph`, parallelized on `exec`.
    ///
    /// The hub order (sampled betweenness, see [`hub_order`]), the
    /// batch schedule, and the per-batch chunk size are all fixed, so
    /// the resulting labels are **bit-identical at any thread count**
    /// — asserted by `tests/label_equivalence.rs`.
    #[must_use]
    pub fn build_on(exec: &Executor, graph: &Graph) -> Self {
        let t0 = std::time::Instant::now();
        let n = graph.node_count();

        let order = hub_order(exec, graph);

        let nb = usize::from(graph.max_delay()) + 1;
        let mut committed: Vec<Vec<(u32, u32)>> = vec![Vec::new(); n];
        let mut hubs = 0usize;

        let mut start = 0usize;
        let mut batch = 1usize;
        while start < n {
            let size = batch.min(n - start);
            let mut results: Vec<Vec<(u32, u32)>> = vec![Vec::new(); size];
            {
                let committed = &committed;
                let order = &order;
                exec.par_fill(&mut results, LABEL_CHUNK, |i| {
                    pruned_dijkstra(graph, committed, order[start + i], nb)
                });
            }
            // Commit sequentially in rank order; each vertex's list
            // stays sorted by hub rank by construction.
            for (i, ins) in results.into_iter().enumerate() {
                let rank = (start + i) as u32;
                if !ins.is_empty() {
                    hubs += 1;
                }
                for (v, d) in ins {
                    committed[v as usize].push((rank, d));
                }
            }
            start += size;
            if batch < MAX_BATCH {
                batch *= 2;
            }
        }

        // Flatten to CSR with packed entries.
        let total: usize = committed.iter().map(Vec::len).sum();
        let mut offsets = Vec::with_capacity(n + 1);
        let mut entries = Vec::with_capacity(total);
        offsets.push(0u32);
        for label in &committed {
            for &(rank, d) in label {
                entries.push((u64::from(rank) << 32) | u64::from(d));
            }
            offsets.push(u32::try_from(entries.len()).expect("label entries overflow u32"));
        }

        HubLabels {
            offsets: offsets.into_boxed_slice(),
            entries: entries.into_boxed_slice(),
            hubs,
            build_ms: t0.elapsed().as_secs_f64() * 1e3,
        }
    }

    /// The packed label slice of vertex `u`.
    #[inline]
    fn label(&self, u: u32) -> &[u64] {
        let lo = self.offsets[u as usize] as usize;
        let hi = self.offsets[u as usize + 1] as usize;
        &self.entries[lo..hi]
    }

    /// Exact shortest-path delay between `u` and `v` in milliseconds,
    /// saturating at `u16::MAX - 1`; `u16::MAX` = unreachable. Matches
    /// [`Graph::dijkstra`] rows entry for entry.
    #[inline]
    #[must_use]
    pub fn latency(&self, u: u32, v: u32) -> u16 {
        if u == v {
            return 0;
        }
        const DIST: u64 = 0xffff_ffff;
        let (a, b) = (self.label(u), self.label(v));
        let mut best = u64::MAX;
        let (mut i, mut j) = (0usize, 0usize);
        // Branch-free two-pointer merge: every iteration advances at
        // least one side; mismatched hubs poison the candidate with MAX
        // so the min is a no-op. The hub comparison feeds conditional
        // moves instead of a three-way branch the predictor keeps
        // missing on (rank interleavings are effectively random).
        while i < a.len() && j < b.len() {
            let (ea, eb) = (a[i], b[j]);
            let (ra, rb) = (ea >> 32, eb >> 32);
            let sum = (ea & DIST) + (eb & DIST);
            let cand = if ra == rb { sum } else { u64::MAX };
            best = best.min(cand);
            i += usize::from(ra <= rb);
            j += usize::from(rb <= ra);
        }
        if best == u64::MAX {
            u16::MAX
        } else {
            best.min(u64::from(u16::MAX - 1)) as u16
        }
    }

    /// Number of vertices labeled.
    #[must_use]
    pub fn node_count(&self) -> usize {
        self.offsets.len() - 1
    }

    /// Approximate bytes held by the label arrays.
    #[must_use]
    pub fn bytes(&self) -> usize {
        self.entries.len() * core::mem::size_of::<u64>()
            + self.offsets.len() * core::mem::size_of::<u32>()
    }

    /// Size/effort statistics.
    #[must_use]
    pub fn stats(&self) -> LabelStats {
        let n = self.node_count();
        let entries = self.entries.len();
        let max_len = (0..n as u32).map(|u| self.label(u).len()).max().unwrap_or(0);
        LabelStats {
            hubs: self.hubs,
            entries,
            avg_len: if n == 0 { 0.0 } else { entries as f64 / n as f64 },
            max_len,
            build_ms: self.build_ms,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn assert_exact(g: &Graph, labels: &HubLabels) {
        for u in 0..g.node_count() as u32 {
            let row = g.dijkstra(u);
            for v in 0..g.node_count() as u32 {
                let want = if u == v { 0 } else { row[v as usize] };
                assert_eq!(labels.latency(u, v), want, "({u},{v})");
            }
        }
    }

    #[test]
    fn triangle_labels_are_exact() {
        let mut g = Graph::with_nodes(3);
        g.add_edge(0, 1, 10);
        g.add_edge(1, 2, 10);
        g.add_edge(0, 2, 50);
        assert_exact(&g, &HubLabels::build(&g));
    }

    #[test]
    fn disconnected_pairs_report_unreachable() {
        let mut g = Graph::with_nodes(4);
        g.add_edge(0, 1, 7);
        g.add_edge(2, 3, 9);
        let l = HubLabels::build(&g);
        assert_eq!(l.latency(0, 1), 7);
        assert_eq!(l.latency(0, 2), u16::MAX);
        assert_eq!(l.latency(1, 3), u16::MAX);
        assert_exact(&g, &l);
    }

    #[test]
    fn zero_weight_edges_are_exact() {
        let mut g = Graph::with_nodes(4);
        g.add_edge(0, 1, 0);
        g.add_edge(1, 2, 3);
        g.add_edge(2, 3, 0);
        assert_exact(&g, &HubLabels::build(&g));
    }

    #[test]
    fn saturating_distances_match_rows() {
        let mut g = Graph::with_nodes(3);
        g.add_edge(0, 1, u16::MAX - 1);
        g.add_edge(1, 2, u16::MAX - 1);
        let l = HubLabels::build(&g);
        assert_eq!(l.latency(0, 2), u16::MAX - 1, "saturated, still reachable");
        assert_exact(&g, &l);
    }

    #[test]
    fn empty_and_single_node_graphs() {
        let l = HubLabels::build(&Graph::with_nodes(0));
        assert_eq!(l.node_count(), 0);
        let g = Graph::with_nodes(1);
        let l = HubLabels::build(&g);
        assert_eq!(l.latency(0, 0), 0);
    }

    #[test]
    fn stats_reconcile_with_structure() {
        let mut g = Graph::with_nodes(5);
        for i in 0..4 {
            g.add_edge(i, i + 1, 2);
        }
        let l = HubLabels::build(&g);
        let s = l.stats();
        assert_eq!(s.entries, l.entries.len());
        assert!(s.hubs >= 1 && s.hubs <= 5);
        assert!(s.max_len >= 1);
        assert!((s.avg_len - s.entries as f64 / 5.0).abs() < 1e-12);
        assert!(l.bytes() >= s.entries * 8);
    }
}
