//! GT-ITM Transit-Stub topology generator.
//!
//! Reproduces the structural model of Zegura's GT-ITM `ts` generator
//! (the paper's primary network model, §4.1): a top-level backbone of
//! *transit domains*, each a small connected random graph of transit
//! routers; every transit router attaches a few *stub domains*, each a
//! connected random graph of stub routers. The paper's link delays are
//! the defaults: intra-transit 100 ms, transit–stub 20 ms, intra-stub
//! 5 ms. Inter-transit-domain links (which the paper does not list) use
//! the intra-transit delay, as in common GT-ITM parameterizations.

use crate::{Graph, NodeKind, Topology};
use hieras_rt::{Executor, FromJson, Json, JsonError, Rng, ToJson};

/// Parameters for the Transit-Stub generator.
#[derive(Debug, Clone, PartialEq)]
pub struct TransitStubConfig {
    /// Number of transit domains (the paper varies this with network size).
    pub transit_domains: usize,
    /// Transit routers per transit domain.
    pub transit_nodes_per_domain: usize,
    /// Stub domains hanging off each transit router.
    pub stub_domains_per_transit: usize,
    /// Stub routers per stub domain.
    pub stub_nodes_per_domain: usize,
    /// Delay of intra-transit-domain (and inter-domain) links, ms. Paper: 100.
    pub intra_transit_ms: u16,
    /// Delay of transit–stub attachment links, ms. Paper: 20.
    pub transit_stub_ms: u16,
    /// Delay of intra-stub-domain links, ms. Paper: 5.
    pub intra_stub_ms: u16,
    /// Probability of extra (non-spanning-tree) edges inside a domain;
    /// controls redundancy, GT-ITM's edge-density knob.
    pub extra_edge_prob: f64,
    /// RNG seed; the generator is fully deterministic given the config.
    pub seed: u64,
}

impl ToJson for TransitStubConfig {
    fn to_json(&self) -> Json {
        Json::obj([
            ("transit_domains", self.transit_domains.to_json()),
            ("transit_nodes_per_domain", self.transit_nodes_per_domain.to_json()),
            ("stub_domains_per_transit", self.stub_domains_per_transit.to_json()),
            ("stub_nodes_per_domain", self.stub_nodes_per_domain.to_json()),
            ("intra_transit_ms", self.intra_transit_ms.to_json()),
            ("transit_stub_ms", self.transit_stub_ms.to_json()),
            ("intra_stub_ms", self.intra_stub_ms.to_json()),
            ("extra_edge_prob", self.extra_edge_prob.to_json()),
            ("seed", self.seed.to_json()),
        ])
    }
}

impl FromJson for TransitStubConfig {
    fn from_json(v: &Json) -> Result<Self, JsonError> {
        Ok(TransitStubConfig {
            transit_domains: v.field("transit_domains")?,
            transit_nodes_per_domain: v.field("transit_nodes_per_domain")?,
            stub_domains_per_transit: v.field("stub_domains_per_transit")?,
            stub_nodes_per_domain: v.field("stub_nodes_per_domain")?,
            intra_transit_ms: v.field("intra_transit_ms")?,
            transit_stub_ms: v.field("transit_stub_ms")?,
            intra_stub_ms: v.field("intra_stub_ms")?,
            extra_edge_prob: v.field("extra_edge_prob")?,
            seed: v.field("seed")?,
        })
    }
}

impl TransitStubConfig {
    /// Largest stub domain `for_peers` will configure. Past ~128k peers
    /// the fixed domain grid would otherwise inflate every stub domain
    /// without bound, and label sizes on big random subgraphs grow with
    /// domain size — a 1M-peer build would blow the memory budget.
    /// GT-ITM scales the other way: more domains, not bigger ones.
    const MAX_STUB_DOMAIN: usize = 2048;

    /// A configuration sized so the topology offers at least `peers`
    /// stub routers.
    ///
    /// The transit fabric is kept small and coarse (a handful of transit
    /// routers, each aggregating many stub domains): with the paper's
    /// link delays any path through a 100 ms transit link quantizes to
    /// the top latency level, so the landmark orders can only
    /// discriminate *within* a transit router's neighbourhood. Few, fat
    /// neighbourhoods keep the paper's `[20, 100]` binning informative —
    /// matching Table 1, where most sample RTTs straddle those
    /// boundaries — and let a 4-landmark deployment cover the network.
    #[must_use]
    pub fn for_peers(peers: usize, seed: u64) -> Self {
        let peers = peers.max(8);
        let transit_domains = (peers / 2500).clamp(2, 4);
        let transit_nodes_per_domain = 2;
        let mut stub_domains_per_transit = 8;
        let transit_total = transit_domains * transit_nodes_per_domain;
        // Sizes up to ~128k peers keep the historical 8-domain grid;
        // beyond that the domain count doubles until domains fit the cap.
        while peers.div_ceil(transit_total * stub_domains_per_transit) > Self::MAX_STUB_DOMAIN {
            stub_domains_per_transit *= 2;
        }
        let stub_slots = transit_total * stub_domains_per_transit;
        let stub_nodes_per_domain = peers.div_ceil(stub_slots).max(2);
        TransitStubConfig {
            transit_domains,
            transit_nodes_per_domain,
            stub_domains_per_transit,
            stub_nodes_per_domain,
            intra_transit_ms: 100,
            transit_stub_ms: 20,
            intra_stub_ms: 5,
            extra_edge_prob: 0.3,
            seed,
        }
    }

    /// Total stub routers this configuration will produce.
    #[must_use]
    pub fn stub_router_count(&self) -> usize {
        self.transit_domains
            * self.transit_nodes_per_domain
            * self.stub_domains_per_transit
            * self.stub_nodes_per_domain
    }

    /// Generates the topology on the default executor.
    ///
    /// # Panics
    /// Panics if any dimension is zero.
    #[must_use]
    pub fn generate(&self) -> Topology {
        self.generate_on(&Executor::default())
    }

    /// [`TransitStubConfig::generate`] on a caller-supplied executor.
    ///
    /// The transit fabric and backbone draw from the main seed stream;
    /// each stub domain draws from its own stream seeded by `(seed,
    /// domain index)` and is generated independently in parallel, with
    /// edge lists merged in domain order — so the graph is a pure
    /// function of the config at any thread count.
    ///
    /// # Panics
    /// Panics if any dimension is zero.
    #[must_use]
    pub fn generate_on(&self, exec: &Executor) -> Topology {
        assert!(self.transit_domains > 0, "need at least one transit domain");
        assert!(self.transit_nodes_per_domain > 0, "need transit nodes");
        assert!(self.stub_domains_per_transit > 0, "need stub domains");
        assert!(self.stub_nodes_per_domain > 0, "need stub nodes");
        let mut rng = Rng::seed_from_u64(self.seed);
        let transit_total = self.transit_domains * self.transit_nodes_per_domain;
        let total = transit_total + self.stub_router_count();
        let mut graph = Graph::with_nodes(total);
        let mut kind = vec![NodeKind::Stub; total];

        // Transit routers occupy indices [0, transit_total); domain d owns
        // the contiguous block starting at d * transit_nodes_per_domain.
        for k in kind.iter_mut().take(transit_total) {
            *k = NodeKind::Transit;
        }
        let domain_nodes: Vec<Vec<u32>> = (0..self.transit_domains)
            .map(|d| {
                let base = d * self.transit_nodes_per_domain;
                (base..base + self.transit_nodes_per_domain).map(|i| i as u32).collect()
            })
            .collect();

        // Connected random graph inside each transit domain.
        for nodes in &domain_nodes {
            connect_random(&mut graph, nodes, self.intra_transit_ms, self.extra_edge_prob, &mut rng);
        }

        // Backbone between transit domains: ring over the domains plus
        // random chords, each realized between random routers of the
        // two domains (GT-ITM's top-level random graph).
        for d in 0..self.transit_domains {
            let e = (d + 1) % self.transit_domains;
            if d == e {
                break;
            }
            let u = *rng.choose(&domain_nodes[d]).expect("non-empty domain");
            let v = *rng.choose(&domain_nodes[e]).expect("non-empty domain");
            graph.add_edge(u, v, self.intra_transit_ms);
        }
        if self.transit_domains > 2 {
            let chords = self.transit_domains / 2;
            for _ in 0..chords {
                let d = rng.random_range(0..self.transit_domains);
                let e = rng.random_range(0..self.transit_domains);
                if d != e {
                    let u = *rng.choose(&domain_nodes[d]).expect("non-empty domain");
                    let v = *rng.choose(&domain_nodes[e]).expect("non-empty domain");
                    graph.add_edge(u, v, self.intra_transit_ms);
                }
            }
        }

        // Stub domains: each occupies a contiguous index block after the
        // transit routers and is wired from its own seed stream, so the
        // domains generate independently in parallel; edges land in the
        // graph sequentially, in domain order.
        let per_dom = self.stub_nodes_per_domain;
        let n_domains = transit_total * self.stub_domains_per_transit;
        let domains: Vec<(u32, Vec<(u32, u32)>)> = exec.par_fold(
            n_domains,
            1,
            Vec::new,
            |acc, s| {
                let mut rng = Rng::seed_from_u64(
                    self.seed ^ (s as u64 + 1).wrapping_mul(0x9e37_79b9_7f4a_7c15),
                );
                let base = transit_total + s * per_dom;
                let nodes: Vec<u32> = (base..base + per_dom).map(|i| i as u32).collect();
                let mut edges = Vec::new();
                connect_random_pairs(&nodes, self.extra_edge_prob, &mut rng, &mut edges);
                // Attach the stub domain to its transit router via a
                // random gateway stub node.
                let gw = *rng.choose(&nodes).expect("non-empty stub domain");
                acc.push((gw, edges));
            },
            |mut a, mut b| {
                a.append(&mut b);
                a
            },
        );
        // Failure domains: transit domain d is domain d; stub domain s
        // is domain transit_domains + s.
        let mut domain = vec![0u32; total];
        for (i, d) in domain.iter_mut().enumerate().take(transit_total) {
            *d = (i / self.transit_nodes_per_domain) as u32;
        }
        let mut attach_candidates = Vec::with_capacity(self.stub_router_count());
        for (s, (gw, edges)) in domains.into_iter().enumerate() {
            for (u, v) in edges {
                graph.add_edge(u, v, self.intra_stub_ms);
            }
            let t = (s / self.stub_domains_per_transit) as u32;
            graph.add_edge(t, gw, self.transit_stub_ms);
            let base = (transit_total + s * per_dom) as u32;
            attach_candidates.extend(base..base + per_dom as u32);
            let dom = (self.transit_domains + s) as u32;
            for d in &mut domain[base as usize..base as usize + per_dom] {
                *d = dom;
            }
        }
        debug_assert_eq!(attach_candidates.len() + transit_total, total);

        Topology { graph, kind, attach_candidates, domain, model: "transit-stub" }
    }
}

/// Wires `nodes` into a connected random subgraph: random spanning tree
/// (each node links to a random earlier node) plus extra edges with
/// probability `extra_prob` per candidate pair, capped to keep density
/// linear in the domain size.
fn connect_random(
    graph: &mut Graph,
    nodes: &[u32],
    delay: u16,
    extra_prob: f64,
    rng: &mut Rng,
) {
    let mut pairs = Vec::new();
    connect_random_pairs(nodes, extra_prob, rng, &mut pairs);
    for (u, v) in pairs {
        graph.add_edge(u, v, delay);
    }
}

/// The pair-producing core of [`connect_random`]: pushes the chosen
/// endpoint pairs without touching a graph, so parallel stub-domain
/// workers can collect edges and let the caller apply them in order.
fn connect_random_pairs(
    nodes: &[u32],
    extra_prob: f64,
    rng: &mut Rng,
    out: &mut Vec<(u32, u32)>,
) {
    for (i, &u) in nodes.iter().enumerate().skip(1) {
        let v = nodes[rng.random_range(0..i)];
        out.push((u, v));
    }
    // Extra edges: sample ~extra_prob * |nodes| random pairs.
    let extras = ((nodes.len() as f64) * extra_prob).round() as usize;
    for _ in 0..extras {
        let u = *rng.choose(nodes).expect("non-empty");
        let v = *rng.choose(nodes).expect("non-empty");
        if u != v {
            out.push((u, v));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generated_topology_is_connected() {
        for seed in 0..5 {
            let t = TransitStubConfig::for_peers(300, seed).generate();
            assert!(t.graph.is_connected(), "seed {seed} produced disconnected graph");
        }
    }

    #[test]
    fn counts_match_config() {
        let cfg = TransitStubConfig {
            transit_domains: 3,
            transit_nodes_per_domain: 4,
            stub_domains_per_transit: 2,
            stub_nodes_per_domain: 5,
            intra_transit_ms: 100,
            transit_stub_ms: 20,
            intra_stub_ms: 5,
            extra_edge_prob: 0.3,
            seed: 1,
        };
        let t = cfg.generate();
        assert_eq!(t.router_count(), 3 * 4 + 3 * 4 * 2 * 5);
        assert_eq!(t.attach_candidates.len(), cfg.stub_router_count());
        let transit = t.kind.iter().filter(|k| **k == NodeKind::Transit).count();
        assert_eq!(transit, 12);
    }

    #[test]
    fn attach_candidates_are_stub_routers() {
        let t = TransitStubConfig::for_peers(200, 9).generate();
        for &c in &t.attach_candidates {
            assert_eq!(t.kind[c as usize], NodeKind::Stub);
        }
    }

    #[test]
    fn for_peers_offers_enough_stub_routers() {
        for n in [100, 1000, 5000, 10000] {
            let cfg = TransitStubConfig::for_peers(n, 0);
            assert!(cfg.stub_router_count() >= n, "n={n}");
        }
    }

    #[test]
    fn for_peers_caps_stub_domain_size() {
        for n in [200_000usize, 1_000_000] {
            let cfg = TransitStubConfig::for_peers(n, 0);
            assert!(
                cfg.stub_nodes_per_domain <= TransitStubConfig::MAX_STUB_DOMAIN,
                "n={n}: domain size {} exceeds cap",
                cfg.stub_nodes_per_domain
            );
            assert!(cfg.stub_router_count() >= n, "n={n}");
        }
        // The historical grid is untouched below the cap boundary.
        let small = TransitStubConfig::for_peers(100_000, 0);
        assert_eq!(small.stub_domains_per_transit, 8);
    }

    #[test]
    fn parallel_generation_is_thread_invariant() {
        let cfg = TransitStubConfig::for_peers(600, 17);
        let base = cfg.generate_on(&Executor::new(1));
        for threads in [2, 8] {
            let t = cfg.generate_on(&Executor::new(threads));
            assert_eq!(t.graph.edge_count(), base.graph.edge_count(), "threads={threads}");
            assert_eq!(t.attach_candidates, base.attach_candidates, "threads={threads}");
            for u in 0..base.router_count() as u32 {
                assert_eq!(t.graph.neighbors(u), base.graph.neighbors(u), "threads={threads} u={u}");
            }
        }
    }

    #[test]
    fn deterministic_per_seed() {
        let a = TransitStubConfig::for_peers(150, 5).generate();
        let b = TransitStubConfig::for_peers(150, 5).generate();
        assert_eq!(a.graph.edge_count(), b.graph.edge_count());
        assert_eq!(a.attach_candidates, b.attach_candidates);
        let c = TransitStubConfig::for_peers(150, 6).generate();
        // Different seed rewires something (counts may coincide, edges shouldn't all).
        let same_edges = (0..a.router_count() as u32)
            .all(|u| a.graph.neighbors(u) == c.graph.neighbors(u));
        assert!(!same_edges, "different seeds produced identical graphs");
    }

    #[test]
    fn intra_stub_paths_are_cheap_cross_domain_expensive() {
        let t = TransitStubConfig::for_peers(400, 11).generate();
        // Two stub routers in the same stub domain communicate in
        // multiples of 5 ms; crossing transit costs at least
        // 20 + 20 = 40 ms (two attachment links).
        let spd = t.graph.shortest_delay(t.attach_candidates[0], t.attach_candidates[1]);
        assert!(spd > 0);
        // Same-domain neighbours (first stub domain is contiguous):
        let cfg_stub = TransitStubConfig::for_peers(400, 11);
        let per_dom = cfg_stub.stub_nodes_per_domain;
        let a = t.attach_candidates[0];
        let b = t.attach_candidates[per_dom - 1];
        let local = t.graph.shortest_delay(a, b);
        assert!(local < 40, "intra-domain delay {local} should be < transit round trip");
    }

    #[test]
    fn failure_domains_partition_the_routers() {
        let cfg = TransitStubConfig::for_peers(300, 7);
        let t = cfg.generate();
        let transit_total = cfg.transit_domains * cfg.transit_nodes_per_domain;
        for (i, &d) in t.domain.iter().enumerate() {
            if i < transit_total {
                assert_eq!(d as usize, i / cfg.transit_nodes_per_domain);
            } else {
                let s = (i - transit_total) / cfg.stub_nodes_per_domain;
                assert_eq!(d as usize, cfg.transit_domains + s, "router {i}");
            }
        }
        assert_eq!(t.domain_of(0), 0);
    }

    #[test]
    fn delay_hierarchy_matches_paper_setting() {
        let cfg = TransitStubConfig::for_peers(100, 3);
        assert_eq!(
            (cfg.intra_transit_ms, cfg.transit_stub_ms, cfg.intra_stub_ms),
            (100, 20, 5)
        );
    }
}
