//! Undirected weighted router graph and single-source shortest paths.

use std::cmp::Reverse;
use std::collections::{BinaryHeap, HashMap};

/// A directed half-edge in the adjacency list (every undirected link
/// is stored twice).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Edge {
    /// Neighbour router index.
    pub to: u32,
    /// Link propagation delay in milliseconds.
    pub delay_ms: u16,
}

/// An undirected router-level graph with millisecond link delays.
///
/// Node indices are dense `u32`s; delays saturate at `u16::MAX`.
/// Everything downstream (DHT simulation, latency oracle) works on
/// these dense indices, keeping hot structures flat per the
/// hpc-parallel guides.
#[derive(Debug, Clone, Default)]
pub struct Graph {
    adj: Vec<Vec<Edge>>,
    /// Edge positions keyed by the packed `(min, max)` endpoint pair:
    /// `(position in adj[min], position in adj[max])`. Makes duplicate
    /// detection and min-delay coalescing O(1) — the Inet/BRITE
    /// generators push thousands of edges onto hub nodes, and a linear
    /// scan of the hub's adjacency list made insertion quadratic in
    /// hub degree.
    index: HashMap<u64, (u32, u32)>,
    edge_count: usize,
    /// Largest link delay present; sizes the Dial bucket array.
    max_delay: u16,
}

/// Packs an unordered node pair into one map key.
fn pair_key(u: u32, v: u32) -> u64 {
    let (a, b) = if u <= v { (u, v) } else { (v, u) };
    (u64::from(a) << 32) | u64::from(b)
}

/// Reusable working memory for [`Graph::dijkstra_into`]: the tentative
/// `u32` distance array and the Dial bucket ring. One scratch serves
/// any number of consecutive runs (even across graphs of different
/// sizes — the buffers regrow as needed), so steady-state callers like
/// the bounded latency cache's miss path and the hub-label builder
/// never allocate per Dijkstra.
#[derive(Debug, Default)]
pub struct DijkstraScratch {
    /// Tentative distances; `u32::MAX` = unseen. Reset lazily per run.
    pub(crate) dist: Vec<u32>,
    /// Dial bucket ring, one bucket per distance residue.
    pub(crate) buckets: Vec<Vec<u32>>,
}

impl DijkstraScratch {
    /// A fresh scratch with no capacity reserved yet.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Resets the scratch for a run over `n` nodes with `nb` buckets,
    /// keeping the allocations.
    pub(crate) fn reset(&mut self, n: usize, nb: usize) {
        self.dist.clear();
        self.dist.resize(n, u32::MAX);
        for b in &mut self.buckets {
            b.clear();
        }
        if self.buckets.len() < nb {
            self.buckets.resize_with(nb, Vec::new);
        }
    }
}

impl Graph {
    /// An empty graph with `n` isolated nodes.
    #[must_use]
    pub fn with_nodes(n: usize) -> Self {
        Graph {
            adj: vec![Vec::new(); n],
            index: HashMap::new(),
            edge_count: 0,
            max_delay: 0,
        }
    }

    /// Number of nodes.
    #[must_use]
    pub fn node_count(&self) -> usize {
        self.adj.len()
    }

    /// Number of undirected edges.
    #[must_use]
    pub fn edge_count(&self) -> usize {
        self.edge_count
    }

    /// Appends a new isolated node, returning its index.
    pub fn add_node(&mut self) -> u32 {
        self.adj.push(Vec::new());
        (self.adj.len() - 1) as u32
    }

    /// Adds an undirected edge `u — v` with the given delay.
    ///
    /// Parallel edges are coalesced: if the edge already exists the
    /// smaller delay wins (shortest-path semantics make the larger one
    /// irrelevant). Self-loops are ignored.
    ///
    /// # Panics
    /// Panics if `u` or `v` is out of range.
    pub fn add_edge(&mut self, u: u32, v: u32, delay_ms: u16) {
        assert!((u as usize) < self.adj.len() && (v as usize) < self.adj.len());
        if u == v {
            return;
        }
        self.max_delay = self.max_delay.max(delay_ms);
        let (a, b) = if u <= v { (u, v) } else { (v, u) };
        match self.index.entry(pair_key(u, v)) {
            std::collections::hash_map::Entry::Occupied(slot) => {
                let (pa, pb) = *slot.get();
                let ea = &mut self.adj[a as usize][pa as usize].delay_ms;
                *ea = (*ea).min(delay_ms);
                let eb = &mut self.adj[b as usize][pb as usize].delay_ms;
                *eb = (*eb).min(delay_ms);
            }
            std::collections::hash_map::Entry::Vacant(slot) => {
                slot.insert((self.adj[a as usize].len() as u32, self.adj[b as usize].len() as u32));
                self.adj[a as usize].push(Edge { to: b, delay_ms });
                self.adj[b as usize].push(Edge { to: a, delay_ms });
                self.edge_count += 1;
            }
        }
    }

    /// True if the edge `u — v` exists.
    #[must_use]
    pub fn has_edge(&self, u: u32, v: u32) -> bool {
        u != v
            && (u as usize) < self.adj.len()
            && (v as usize) < self.adj.len()
            && self.index.contains_key(&pair_key(u, v))
    }

    /// Neighbours of `u`.
    #[must_use]
    pub fn neighbors(&self, u: u32) -> &[Edge] {
        &self.adj[u as usize]
    }

    /// Degree of `u`.
    #[must_use]
    pub fn degree(&self, u: u32) -> usize {
        self.adj[u as usize].len()
    }

    /// Largest link delay present (sizes Dial bucket rings).
    #[must_use]
    pub fn max_delay(&self) -> u16 {
        self.max_delay
    }

    /// True if every node can reach every other node.
    #[must_use]
    pub fn is_connected(&self) -> bool {
        let n = self.node_count();
        if n == 0 {
            return true;
        }
        let mut seen = vec![false; n];
        let mut stack = vec![0u32];
        seen[0] = true;
        let mut visited = 1usize;
        while let Some(u) = stack.pop() {
            for e in &self.adj[u as usize] {
                if !seen[e.to as usize] {
                    seen[e.to as usize] = true;
                    visited += 1;
                    stack.push(e.to);
                }
            }
        }
        visited == n
    }

    /// Single-source shortest path delays from `src` to every node,
    /// in milliseconds, saturating at `u16::MAX - 1`. Unreachable
    /// nodes report `u16::MAX`.
    ///
    /// Implemented with Dial's algorithm (a circular bucket queue):
    /// link delays are small integers (the topology models use 5, 20
    /// and 100 ms), so a `max_delay + 1`-wide bucket ring replaces the
    /// `O(log n)` binary heap with `O(1)` pushes and pops on the
    /// `10⁴`-router all-pairs warm-up. The distances produced are
    /// identical to the heap version (see [`Graph::dijkstra_heap`] and
    /// the equivalence tests).
    #[must_use]
    pub fn dijkstra(&self, src: u32) -> Box<[u16]> {
        let mut out = vec![u16::MAX; self.node_count()].into_boxed_slice();
        self.dijkstra_into(src, &mut out, &mut DijkstraScratch::new());
        out
    }

    /// [`Graph::dijkstra`] writing into a caller-owned row, reusing
    /// `scratch` for the tentative-distance array and bucket ring.
    ///
    /// The row written into `out` is byte-identical to what
    /// [`Graph::dijkstra`] returns, for any prior state of `out` and
    /// `scratch` — steady-state callers (the bounded latency cache's
    /// miss path, the hub-label builder) recycle both and never touch
    /// the allocator.
    ///
    /// # Panics
    /// Panics if `out.len() != self.node_count()`.
    pub fn dijkstra_into(&self, src: u32, out: &mut [u16], scratch: &mut DijkstraScratch) {
        const UNSEEN: u32 = u32::MAX;
        let n = self.node_count();
        assert_eq!(out.len(), n, "output row must cover every node");
        if n == 0 {
            return;
        }
        // One bucket per distinct distance residue; max edge weight C
        // bounds every queued tentative distance to [d, d + C], so
        // C + 1 buckets suffice.
        let nb = usize::from(self.max_delay) + 1;
        scratch.reset(n, nb);
        let (dist, buckets) = (&mut scratch.dist, &mut scratch.buckets);
        let mut pending = 1usize;
        dist[src as usize] = 0;
        buckets[0].push(src);
        let mut d = 0usize;
        while pending > 0 {
            let b = d % nb;
            while let Some(u) = buckets[b].pop() {
                pending -= 1;
                if dist[u as usize] != d as u32 {
                    continue; // superseded entry
                }
                for e in &self.adj[u as usize] {
                    let nd = d as u32 + u32::from(e.delay_ms);
                    if nd < dist[e.to as usize] {
                        dist[e.to as usize] = nd;
                        buckets[nd as usize % nb].push(e.to);
                        pending += 1;
                    }
                }
            }
            d += 1;
        }
        for (o, d) in out.iter_mut().zip(dist.iter()) {
            *o = if *d == UNSEEN { u16::MAX } else { (*d).min(u32::from(u16::MAX - 1)) as u16 };
        }
    }

    /// The original binary-heap Dijkstra, kept as the reference
    /// implementation the bucket-queue version is tested against.
    #[must_use]
    pub fn dijkstra_heap(&self, src: u32) -> Box<[u16]> {
        const UNREACHABLE: u32 = u32::MAX;
        let n = self.node_count();
        let mut dist = vec![UNREACHABLE; n];
        let mut out = vec![u16::MAX; n].into_boxed_slice();
        if n == 0 {
            return out;
        }
        let mut heap: BinaryHeap<Reverse<(u32, u32)>> = BinaryHeap::new();
        dist[src as usize] = 0;
        heap.push(Reverse((0, src)));
        while let Some(Reverse((d, u))) = heap.pop() {
            if d > dist[u as usize] {
                continue;
            }
            for e in &self.adj[u as usize] {
                let nd = d + u32::from(e.delay_ms);
                if nd < dist[e.to as usize] {
                    dist[e.to as usize] = nd;
                    heap.push(Reverse((nd, e.to)));
                }
            }
        }
        for (o, d) in out.iter_mut().zip(dist) {
            if d != UNREACHABLE {
                *o = d.min(u32::from(u16::MAX - 1)) as u16;
            }
        }
        out
    }

    /// Shortest-path delay between one pair (convenience for tests;
    /// hot paths use [`crate::LatencyOracle`]).
    #[must_use]
    pub fn shortest_delay(&self, u: u32, v: u32) -> u16 {
        self.dijkstra(u)[v as usize]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hieras_rt::Rng;

    fn line(n: usize, w: u16) -> Graph {
        let mut g = Graph::with_nodes(n);
        for i in 1..n {
            g.add_edge((i - 1) as u32, i as u32, w);
        }
        g
    }

    fn random_graph(rng: &mut Rng) -> Graph {
        let n = rng.random_range(3usize..24);
        let mut g = Graph::with_nodes(n);
        for i in 1..n {
            let j = rng.random_range(0usize..i) as u32;
            g.add_edge(i as u32, j, rng.random_range(1u16..=50));
        }
        for _ in 0..n {
            let u = rng.random_range(0usize..n) as u32;
            let v = rng.random_range(0usize..n) as u32;
            g.add_edge(u, v, rng.random_range(1u16..=50));
        }
        g
    }

    #[test]
    fn empty_graph_is_connected() {
        assert!(Graph::with_nodes(0).is_connected());
        assert!(Graph::with_nodes(1).is_connected());
        assert!(!Graph::with_nodes(2).is_connected());
    }

    #[test]
    fn add_edge_is_symmetric_and_counted() {
        let mut g = Graph::with_nodes(3);
        g.add_edge(0, 1, 10);
        assert!(g.has_edge(0, 1) && g.has_edge(1, 0));
        assert_eq!(g.edge_count(), 1);
        assert_eq!(g.degree(0), 1);
    }

    #[test]
    fn parallel_edges_keep_min_delay() {
        let mut g = Graph::with_nodes(2);
        g.add_edge(0, 1, 50);
        g.add_edge(0, 1, 10);
        g.add_edge(0, 1, 90);
        assert_eq!(g.edge_count(), 1);
        assert_eq!(g.shortest_delay(0, 1), 10);
        // Coalescing works from both directions of the pair.
        g.add_edge(1, 0, 4);
        assert_eq!(g.edge_count(), 1);
        assert_eq!(g.shortest_delay(0, 1), 4);
        assert_eq!(g.shortest_delay(1, 0), 4);
    }

    #[test]
    fn self_loops_ignored() {
        let mut g = Graph::with_nodes(2);
        g.add_edge(1, 1, 5);
        assert_eq!(g.edge_count(), 0);
        assert!(!g.has_edge(1, 1));
    }

    #[test]
    fn dijkstra_on_line() {
        let g = line(5, 7);
        let d = g.dijkstra(0);
        assert_eq!(&d[..], &[0, 7, 14, 21, 28]);
    }

    #[test]
    fn dijkstra_prefers_cheaper_detour() {
        // 0-1 expensive direct, 0-2-1 cheap detour.
        let mut g = Graph::with_nodes(3);
        g.add_edge(0, 1, 100);
        g.add_edge(0, 2, 10);
        g.add_edge(2, 1, 10);
        assert_eq!(g.shortest_delay(0, 1), 20);
    }

    #[test]
    fn dijkstra_unreachable_is_max() {
        let mut g = Graph::with_nodes(3);
        g.add_edge(0, 1, 1);
        assert_eq!(g.dijkstra(0)[2], u16::MAX);
    }

    #[test]
    fn dijkstra_saturates() {
        // Chain long enough to exceed u16::MAX total delay.
        let g = line(3, u16::MAX - 1);
        let d = g.dijkstra(0);
        assert_eq!(d[2], u16::MAX - 1); // saturated, still "reachable"
    }

    #[test]
    fn dijkstra_zero_weight_edges() {
        let mut g = Graph::with_nodes(3);
        g.add_edge(0, 1, 0);
        g.add_edge(1, 2, 3);
        assert_eq!(g.shortest_delay(0, 2), 3);
    }

    #[test]
    fn dijkstra_all_zero_graph() {
        // max_delay == 0 → a single bucket; must still terminate.
        let g = line(4, 0);
        assert_eq!(&g.dijkstra(0)[..], &[0, 0, 0, 0]);
    }

    /// Triangle inequality: d(a,c) <= d(a,b) + d(b,c) on random
    /// connected graphs (modulo saturation, which the sizes avoid).
    #[test]
    fn triangle_inequality() {
        let mut rng = Rng::seed_from_u64(0x7419);
        for _ in 0..200 {
            let g = random_graph(&mut rng);
            let n = g.node_count();
            let a = rng.random_range(0usize..n) as u32;
            let b = rng.random_range(0usize..n) as u32;
            let c = rng.random_range(0usize..n) as u32;
            let dab = u32::from(g.shortest_delay(a, b));
            let dbc = u32::from(g.shortest_delay(b, c));
            let dac = u32::from(g.shortest_delay(a, c));
            assert!(dac <= dab + dbc);
        }
    }

    /// One scratch and one output row recycled across sources and
    /// across graphs of different sizes must reproduce the allocating
    /// path exactly — stale contents must never leak through.
    #[test]
    fn dijkstra_into_reuse_matches_fresh_rows() {
        let mut rng = Rng::seed_from_u64(0x5c7a);
        let mut scratch = DijkstraScratch::new();
        let mut row: Vec<u16> = Vec::new();
        for _ in 0..60 {
            let g = random_graph(&mut rng);
            row.clear();
            row.resize(g.node_count(), 123);
            for src in 0..g.node_count() as u32 {
                g.dijkstra_into(src, &mut row, &mut scratch);
                assert_eq!(&row[..], &g.dijkstra(src)[..], "src {src}");
            }
        }
    }

    /// The bucket-queue rows must be byte-identical to the heap rows
    /// on random graphs, including unreachable and saturating cases.
    #[test]
    fn bucket_queue_matches_heap_on_random_graphs() {
        let mut rng = Rng::seed_from_u64(0xd1a1);
        for _ in 0..100 {
            let g = random_graph(&mut rng);
            for src in 0..g.node_count() as u32 {
                assert_eq!(g.dijkstra(src), g.dijkstra_heap(src));
            }
        }
    }
}
