//! Undirected weighted router graph and single-source shortest paths.

use serde::{Deserialize, Serialize};
use std::cmp::Reverse;
use std::collections::BinaryHeap;

/// A directed half-edge in the adjacency list (every undirected link
/// is stored twice).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct Edge {
    /// Neighbour router index.
    pub to: u32,
    /// Link propagation delay in milliseconds.
    pub delay_ms: u16,
}

/// An undirected router-level graph with millisecond link delays.
///
/// Node indices are dense `u32`s; delays saturate at `u16::MAX`.
/// Everything downstream (DHT simulation, latency oracle) works on
/// these dense indices, keeping hot structures flat per the
/// hpc-parallel guides.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct Graph {
    adj: Vec<Vec<Edge>>,
    edge_count: usize,
}

impl Graph {
    /// An empty graph with `n` isolated nodes.
    #[must_use]
    pub fn with_nodes(n: usize) -> Self {
        Graph { adj: vec![Vec::new(); n], edge_count: 0 }
    }

    /// Number of nodes.
    #[must_use]
    pub fn node_count(&self) -> usize {
        self.adj.len()
    }

    /// Number of undirected edges.
    #[must_use]
    pub fn edge_count(&self) -> usize {
        self.edge_count
    }

    /// Appends a new isolated node, returning its index.
    pub fn add_node(&mut self) -> u32 {
        self.adj.push(Vec::new());
        (self.adj.len() - 1) as u32
    }

    /// Adds an undirected edge `u — v` with the given delay.
    ///
    /// Parallel edges are coalesced: if the edge already exists the
    /// smaller delay wins (shortest-path semantics make the larger one
    /// irrelevant). Self-loops are ignored.
    ///
    /// # Panics
    /// Panics if `u` or `v` is out of range.
    pub fn add_edge(&mut self, u: u32, v: u32, delay_ms: u16) {
        assert!((u as usize) < self.adj.len() && (v as usize) < self.adj.len());
        if u == v {
            return;
        }
        let exists = self.adj[u as usize].iter().any(|e| e.to == v);
        if exists {
            for (a, b) in [(u, v), (v, u)] {
                let e = self.adj[a as usize]
                    .iter_mut()
                    .find(|e| e.to == b)
                    .expect("symmetric adjacency");
                e.delay_ms = e.delay_ms.min(delay_ms);
            }
            return;
        }
        self.adj[u as usize].push(Edge { to: v, delay_ms });
        self.adj[v as usize].push(Edge { to: u, delay_ms });
        self.edge_count += 1;
    }

    /// True if the edge `u — v` exists.
    #[must_use]
    pub fn has_edge(&self, u: u32, v: u32) -> bool {
        self.adj.get(u as usize).is_some_and(|es| es.iter().any(|e| e.to == v))
    }

    /// Neighbours of `u`.
    #[must_use]
    pub fn neighbors(&self, u: u32) -> &[Edge] {
        &self.adj[u as usize]
    }

    /// Degree of `u`.
    #[must_use]
    pub fn degree(&self, u: u32) -> usize {
        self.adj[u as usize].len()
    }

    /// True if every node can reach every other node.
    #[must_use]
    pub fn is_connected(&self) -> bool {
        let n = self.node_count();
        if n == 0 {
            return true;
        }
        let mut seen = vec![false; n];
        let mut stack = vec![0u32];
        seen[0] = true;
        let mut visited = 1usize;
        while let Some(u) = stack.pop() {
            for e in &self.adj[u as usize] {
                if !seen[e.to as usize] {
                    seen[e.to as usize] = true;
                    visited += 1;
                    stack.push(e.to);
                }
            }
        }
        visited == n
    }

    /// Single-source shortest path delays from `src` to every node,
    /// in milliseconds, saturating at `u16::MAX - 1`. Unreachable
    /// nodes report `u16::MAX`.
    #[must_use]
    pub fn dijkstra(&self, src: u32) -> Box<[u16]> {
        const UNREACHABLE: u32 = u32::MAX;
        let n = self.node_count();
        let mut dist = vec![UNREACHABLE; n];
        let mut out = vec![u16::MAX; n].into_boxed_slice();
        let mut heap: BinaryHeap<Reverse<(u32, u32)>> = BinaryHeap::new();
        dist[src as usize] = 0;
        heap.push(Reverse((0, src)));
        while let Some(Reverse((d, u))) = heap.pop() {
            if d > dist[u as usize] {
                continue;
            }
            for e in &self.adj[u as usize] {
                let nd = d + u32::from(e.delay_ms);
                if nd < dist[e.to as usize] {
                    dist[e.to as usize] = nd;
                    heap.push(Reverse((nd, e.to)));
                }
            }
        }
        for (o, d) in out.iter_mut().zip(dist) {
            if d != UNREACHABLE {
                *o = d.min(u32::from(u16::MAX - 1)) as u16;
            }
        }
        out
    }

    /// Shortest-path delay between one pair (convenience for tests;
    /// hot paths use [`crate::LatencyOracle`]).
    #[must_use]
    pub fn shortest_delay(&self, u: u32, v: u32) -> u16 {
        self.dijkstra(u)[v as usize]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn line(n: usize, w: u16) -> Graph {
        let mut g = Graph::with_nodes(n);
        for i in 1..n {
            g.add_edge((i - 1) as u32, i as u32, w);
        }
        g
    }

    #[test]
    fn empty_graph_is_connected() {
        assert!(Graph::with_nodes(0).is_connected());
        assert!(Graph::with_nodes(1).is_connected());
        assert!(!Graph::with_nodes(2).is_connected());
    }

    #[test]
    fn add_edge_is_symmetric_and_counted() {
        let mut g = Graph::with_nodes(3);
        g.add_edge(0, 1, 10);
        assert!(g.has_edge(0, 1) && g.has_edge(1, 0));
        assert_eq!(g.edge_count(), 1);
        assert_eq!(g.degree(0), 1);
    }

    #[test]
    fn parallel_edges_keep_min_delay() {
        let mut g = Graph::with_nodes(2);
        g.add_edge(0, 1, 50);
        g.add_edge(0, 1, 10);
        g.add_edge(0, 1, 90);
        assert_eq!(g.edge_count(), 1);
        assert_eq!(g.shortest_delay(0, 1), 10);
    }

    #[test]
    fn self_loops_ignored() {
        let mut g = Graph::with_nodes(2);
        g.add_edge(1, 1, 5);
        assert_eq!(g.edge_count(), 0);
    }

    #[test]
    fn dijkstra_on_line() {
        let g = line(5, 7);
        let d = g.dijkstra(0);
        assert_eq!(&d[..], &[0, 7, 14, 21, 28]);
    }

    #[test]
    fn dijkstra_prefers_cheaper_detour() {
        // 0-1 expensive direct, 0-2-1 cheap detour.
        let mut g = Graph::with_nodes(3);
        g.add_edge(0, 1, 100);
        g.add_edge(0, 2, 10);
        g.add_edge(2, 1, 10);
        assert_eq!(g.shortest_delay(0, 1), 20);
    }

    #[test]
    fn dijkstra_unreachable_is_max() {
        let mut g = Graph::with_nodes(3);
        g.add_edge(0, 1, 1);
        assert_eq!(g.dijkstra(0)[2], u16::MAX);
    }

    #[test]
    fn dijkstra_saturates() {
        // Chain long enough to exceed u16::MAX total delay.
        let g = line(3, u16::MAX - 1);
        let d = g.dijkstra(0);
        assert_eq!(d[2], u16::MAX - 1); // saturated, still "reachable"
    }

    #[test]
    fn dijkstra_zero_weight_edges() {
        let mut g = Graph::with_nodes(3);
        g.add_edge(0, 1, 0);
        g.add_edge(1, 2, 3);
        assert_eq!(g.shortest_delay(0, 2), 3);
    }

    proptest::proptest! {
        /// Triangle inequality: d(a,c) <= d(a,b) + d(b,c) on random
        /// connected graphs (modulo saturation, which the sizes avoid).
        #[test]
        fn triangle_inequality(seed in 0u64..200) {
            use rand_like::*;
            let mut s = Lcg::new(seed);
            let n = 3 + (s.next() % 20) as usize;
            let mut g = Graph::with_nodes(n);
            for i in 1..n {
                let j = (s.next() % i as u64) as u32;
                g.add_edge(i as u32, j, (s.next() % 50) as u16 + 1);
            }
            for _ in 0..n {
                let u = (s.next() % n as u64) as u32;
                let v = (s.next() % n as u64) as u32;
                g.add_edge(u, v, (s.next() % 50) as u16 + 1);
            }
            let (a, b, c) = ((s.next()%n as u64) as u32, (s.next()%n as u64) as u32, (s.next()%n as u64) as u32);
            let dab = g.shortest_delay(a, b) as u32;
            let dbc = g.shortest_delay(b, c) as u32;
            let dac = g.shortest_delay(a, c) as u32;
            proptest::prop_assert!(dac <= dab + dbc);
        }
    }

    /// Minimal deterministic generator for tests that don't need rand.
    mod rand_like {
        pub struct Lcg(u64);
        impl Lcg {
            pub fn new(seed: u64) -> Self {
                Lcg(seed.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407))
            }
            pub fn next(&mut self) -> u64 {
                self.0 = self.0.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
                self.0 >> 11
            }
        }
    }
}
