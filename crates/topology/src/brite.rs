//! BRITE-style topology generator.
//!
//! BRITE (Medina, Lakhina, Matta & Byers, MASCOTS'01) grows router
//! topologies incrementally: nodes are placed on a plane and join one
//! at a time, connecting `m` links by Barabási–Albert preferential
//! attachment (optionally distance-weighted, Waxman style). Link delays
//! in BRITE are propagation delays — proportional to Euclidean
//! distance — which is exactly what this module produces.

use crate::{Graph, NodeKind, Topology};
use hieras_rt::{Executor, FromJson, Json, JsonError, Rng, ToJson};

/// Candidate count from which the per-link weight vector is computed in
/// parallel. Below this a single dispatch costs more than the `exp()`
/// loop it parallelizes.
const PAR_WEIGHT_THRESHOLD: usize = 8192;

/// Candidates per parallel weight chunk. Fixed: chunk boundaries define
/// the float-summation grouping, which must not depend on thread count.
const PAR_WEIGHT_CHUNK: usize = 2048;

/// Parameters for the BRITE-style generator.
#[derive(Debug, Clone, PartialEq)]
pub struct BriteConfig {
    /// Number of routers.
    pub nodes: usize,
    /// Links added per joining node (BRITE's `m`; default 2).
    pub links_per_node: usize,
    /// Side length of the placement plane.
    pub plane: f64,
    /// Delay per distance unit in milliseconds.
    pub ms_per_unit: f64,
    /// Waxman locality bias: probability weight multiplier
    /// `exp(-d / (waxman_beta * plane))`; larger β ⇒ distance matters
    /// less. BRITE's BA mode corresponds to β = ∞ (no bias); we default
    /// to a mild bias which matches BRITE's combined mode.
    pub waxman_beta: f64,
    /// RNG seed.
    pub seed: u64,
}

impl BriteConfig {
    /// Configuration for `peers` overlay nodes.
    #[must_use]
    pub fn for_peers(peers: usize, seed: u64) -> Self {
        BriteConfig {
            nodes: peers.max(16),
            links_per_node: 2,
            plane: 1000.0,
            ms_per_unit: 0.12,
            waxman_beta: 0.4,
            seed,
        }
    }

    /// Generates the topology on the default executor.
    ///
    /// # Panics
    /// Panics if `nodes < links_per_node + 1` or `links_per_node == 0`.
    #[must_use]
    pub fn generate(&self) -> Topology {
        self.generate_on(&Executor::default())
    }

    /// [`BriteConfig::generate`] on a caller-supplied executor: for
    /// large joining steps the degree × Waxman weight vector (the
    /// `exp()`-heavy inner loop) is computed in parallel. Whether a
    /// step parallelizes depends only on its size, and partial sums
    /// merge in fixed chunk order, so the graph is a pure function of
    /// the config at any thread count.
    ///
    /// # Panics
    /// Panics if `nodes < links_per_node + 1` or `links_per_node == 0`.
    #[must_use]
    pub fn generate_on(&self, exec: &Executor) -> Topology {
        assert!(self.links_per_node >= 1, "need at least one link per node");
        assert!(
            self.nodes > self.links_per_node,
            "need more nodes ({}) than links per node ({})",
            self.nodes,
            self.links_per_node
        );
        let mut rng = Rng::seed_from_u64(self.seed);
        let n = self.nodes;
        let m = self.links_per_node;

        let coords: Vec<(f64, f64)> = (0..n)
            .map(|_| (rng.random_range(0.0..self.plane), rng.random_range(0.0..self.plane)))
            .collect();
        let delay = |a: (f64, f64), b: (f64, f64)| -> u16 {
            let d = ((a.0 - b.0).powi(2) + (a.1 - b.1).powi(2)).sqrt();
            (d * self.ms_per_unit).round().clamp(1.0, f64::from(u16::MAX - 1)) as u16
        };

        let mut graph = Graph::with_nodes(n);
        // Seed clique over the first m+1 nodes.
        for u in 0..=m {
            for v in (u + 1)..=m {
                graph.add_edge(u as u32, v as u32, delay(coords[u], coords[v]));
            }
        }
        // Incremental growth: node t connects m distinct targets among
        // 0..t, weighted by degree × Waxman distance factor.
        let beta_len = self.waxman_beta * self.plane;
        for t in (m + 1)..n {
            let mut chosen: Vec<u32> = Vec::with_capacity(m);
            for _ in 0..m {
                let weight_of = |u: usize| -> f64 {
                    if chosen.contains(&(u as u32)) {
                        0.0
                    } else {
                        let deg = graph.degree(u as u32) as f64;
                        let d = dist(coords[t], coords[u]);
                        deg * (-d / beta_len).exp()
                    }
                };
                // The parallel path groups the float sum per chunk, so
                // whether it runs must depend only on `t` — never on the
                // executor's thread count — to keep graphs thread-invariant.
                let (weights, total) = if t >= PAR_WEIGHT_THRESHOLD {
                    exec.par_fold(
                        t,
                        PAR_WEIGHT_CHUNK,
                        || (Vec::new(), 0.0f64),
                        |acc, u| {
                            let w = weight_of(u);
                            acc.0.push(w);
                            acc.1 += w;
                        },
                        |mut a, mut b| {
                            a.0.append(&mut b.0);
                            a.1 += b.1;
                            a
                        },
                    )
                } else {
                    let mut total = 0.0f64;
                    let mut weights: Vec<f64> = Vec::with_capacity(t);
                    for u in 0..t {
                        let w = weight_of(u);
                        weights.push(w);
                        total += w;
                    }
                    (weights, total)
                };
                let pick = if total > 0.0 {
                    let mut r = rng.random_range(0.0..total);
                    let mut sel = t - 1;
                    for (u, w) in weights.iter().enumerate() {
                        if r < *w {
                            sel = u;
                            break;
                        }
                        r -= w;
                    }
                    sel as u32
                } else {
                    // All earlier nodes already chosen (tiny t): pick any.
                    rng.random_range(0..t) as u32
                };
                if !chosen.contains(&pick) {
                    chosen.push(pick);
                }
            }
            for &u in &chosen {
                graph.add_edge(t as u32, u, delay(coords[t], coords[u as usize]));
            }
        }

        let attach_candidates = (0..n as u32).collect();
        Topology { graph, kind: vec![NodeKind::Router; n], attach_candidates, domain: (0..n as u32).collect(), model: "brite" }
    }
}

impl ToJson for BriteConfig {
    fn to_json(&self) -> Json {
        Json::obj([
            ("nodes", self.nodes.to_json()),
            ("links_per_node", self.links_per_node.to_json()),
            ("plane", self.plane.to_json()),
            ("ms_per_unit", self.ms_per_unit.to_json()),
            ("waxman_beta", self.waxman_beta.to_json()),
            ("seed", self.seed.to_json()),
        ])
    }
}

impl FromJson for BriteConfig {
    fn from_json(v: &Json) -> Result<Self, JsonError> {
        Ok(BriteConfig {
            nodes: v.field("nodes")?,
            links_per_node: v.field("links_per_node")?,
            plane: v.field("plane")?,
            ms_per_unit: v.field("ms_per_unit")?,
            waxman_beta: v.field("waxman_beta")?,
            seed: v.field("seed")?,
        })
    }
}

fn dist(a: (f64, f64), b: (f64, f64)) -> f64 {
    ((a.0 - b.0).powi(2) + (a.1 - b.1).powi(2)).sqrt()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small(seed: u64) -> BriteConfig {
        BriteConfig { nodes: 400, ..BriteConfig::for_peers(0, seed) }
    }

    #[test]
    fn generated_topology_is_connected() {
        for seed in 0..3 {
            let t = small(seed).generate();
            assert!(t.graph.is_connected(), "seed {seed}");
        }
    }

    #[test]
    fn incremental_growth_yields_preferential_hubs() {
        let t = small(5).generate();
        let max_deg =
            (0..t.router_count() as u32).map(|u| t.graph.degree(u)).max().unwrap();
        assert!(max_deg >= 8, "BA growth should create hubs, max degree {max_deg}");
    }

    #[test]
    fn edge_count_is_roughly_m_per_node() {
        let cfg = small(6);
        let t = cfg.generate();
        let expect = (t.router_count() - cfg.links_per_node - 1) * cfg.links_per_node;
        // Seed clique adds a few; duplicates may drop a few.
        assert!(t.graph.edge_count() >= expect / 2);
        assert!(t.graph.edge_count() <= expect + 16);
    }

    #[test]
    fn delays_scale_with_distance() {
        let t = small(8).generate();
        let mut delays: Vec<u16> = Vec::new();
        for u in 0..t.router_count() as u32 {
            for e in t.graph.neighbors(u) {
                if e.to > u {
                    delays.push(e.delay_ms);
                }
            }
        }
        let max = *delays.iter().max().unwrap();
        let min = *delays.iter().min().unwrap();
        assert!(max > min, "all delays identical — distance not modelled");
    }

    #[test]
    #[should_panic(expected = "more nodes")]
    fn rejects_degenerate_config() {
        let cfg = BriteConfig { nodes: 2, links_per_node: 2, ..BriteConfig::for_peers(0, 0) };
        let _ = cfg.generate();
    }

    #[test]
    fn parallel_weight_path_is_thread_invariant() {
        // Past PAR_WEIGHT_THRESHOLD the weight vector is computed in
        // parallel; m = 1 keeps the quadratic growth loop affordable.
        let cfg = BriteConfig {
            nodes: PAR_WEIGHT_THRESHOLD + 800,
            links_per_node: 1,
            ..BriteConfig::for_peers(0, 3)
        };
        let base = cfg.generate_on(&Executor::new(1));
        for threads in [2, 8] {
            let t = cfg.generate_on(&Executor::new(threads));
            assert_eq!(t.graph.edge_count(), base.graph.edge_count());
            let same = (0..cfg.nodes as u32)
                .all(|u| t.graph.neighbors(u) == base.graph.neighbors(u));
            assert!(same, "{threads}-thread BRITE generation diverged");
        }
    }

    #[test]
    fn deterministic_per_seed() {
        let a = small(9).generate();
        let b = small(9).generate();
        assert_eq!(a.graph.edge_count(), b.graph.edge_count());
        let diff = small(10).generate();
        let same = (0..a.router_count() as u32)
            .all(|u| a.graph.neighbors(u) == diff.graph.neighbors(u));
        assert!(!same);
    }
}
