//! Inet-style power-law topology generator.
//!
//! The Inet generator (Jin, Chen & Jamin, UM-CSE-TR-443-00) produces
//! AS-level topologies whose degree distribution follows the power law
//! observed in BGP tables (frequency ∝ degree^−α with α ≈ 2.2). This
//! module reproduces that structural property: a degree sequence drawn
//! from a truncated discrete power law, realized by preferential
//! attachment with a connectivity repair pass.
//!
//! Inet emits no link delays. As in common practice (and noted in
//! DESIGN.md §5), routers are placed uniformly on a plane and each
//! link's delay is proportional to its Euclidean length, yielding the
//! heterogeneous delay distribution HIERAS exercises. The paper's Inet
//! experiments start at 3000 nodes; [`InetConfig::for_peers`] enforces
//! the same minimum.

use crate::{Graph, NodeKind, Topology};
use hieras_rt::{Executor, FromJson, Json, JsonError, Rng, ToJson};

/// Main-component size from which the connectivity repair's
/// nearest-node scan runs in parallel. The scan is a pure min
/// reduction (no float accumulation), so the threshold only trades
/// dispatch overhead against scan time — the result is identical on
/// any thread count.
const PAR_REPAIR_THRESHOLD: usize = 1 << 16;

/// Main-component nodes per parallel repair-scan chunk.
const PAR_REPAIR_CHUNK: usize = 8192;

/// Parameters for the Inet-style generator.
#[derive(Debug, Clone, PartialEq)]
pub struct InetConfig {
    /// Number of routers (Inet requires ≥ 3000 in the original tool;
    /// we allow smaller for tests but `for_peers` clamps to 3000 as the
    /// paper does).
    pub nodes: usize,
    /// Power-law exponent α for the degree distribution (Inet-3.0 ≈ 2.2).
    pub alpha: f64,
    /// Maximum degree cap (fraction of n), mirroring Inet's top-degree node.
    pub max_degree_frac: f64,
    /// Side length of the placement plane, in "distance units".
    pub plane: f64,
    /// Delay per distance unit in milliseconds.
    pub ms_per_unit: f64,
    /// RNG seed.
    pub seed: u64,
}

impl ToJson for InetConfig {
    fn to_json(&self) -> Json {
        Json::obj([
            ("nodes", self.nodes.to_json()),
            ("alpha", self.alpha.to_json()),
            ("max_degree_frac", self.max_degree_frac.to_json()),
            ("plane", self.plane.to_json()),
            ("ms_per_unit", self.ms_per_unit.to_json()),
            ("seed", self.seed.to_json()),
        ])
    }
}

impl FromJson for InetConfig {
    fn from_json(v: &Json) -> Result<Self, JsonError> {
        Ok(InetConfig {
            nodes: v.field("nodes")?,
            alpha: v.field("alpha")?,
            max_degree_frac: v.field("max_degree_frac")?,
            plane: v.field("plane")?,
            ms_per_unit: v.field("ms_per_unit")?,
            seed: v.field("seed")?,
        })
    }
}

impl InetConfig {
    /// Configuration for `peers` overlay nodes, honouring the paper's
    /// 3000-node minimum for the Inet model.
    #[must_use]
    pub fn for_peers(peers: usize, seed: u64) -> Self {
        InetConfig {
            nodes: peers.max(3000),
            alpha: 2.2,
            max_degree_frac: 0.03,
            plane: 1000.0,
            ms_per_unit: 0.12,
            seed,
        }
    }

    /// Generates the topology on the default executor.
    ///
    /// # Panics
    /// Panics if `nodes < 4` or `alpha <= 1.0`.
    #[must_use]
    pub fn generate(&self) -> Topology {
        self.generate_on(&Executor::default())
    }

    /// [`InetConfig::generate`] on a caller-supplied executor: the
    /// connectivity-repair pass scans the main component for each
    /// stranded node's nearest neighbour in parallel. The scan is an
    /// exact min reduction, so the graph is bit-identical at any
    /// thread count.
    ///
    /// # Panics
    /// Panics if `nodes < 4` or `alpha <= 1.0`.
    #[must_use]
    pub fn generate_on(&self, exec: &Executor) -> Topology {
        assert!(self.nodes >= 4, "Inet model needs at least 4 nodes");
        assert!(self.alpha > 1.0, "power-law exponent must exceed 1");
        let mut rng = Rng::seed_from_u64(self.seed);
        let n = self.nodes;

        // Node placement on the plane (drives link delays).
        let coords: Vec<(f64, f64)> = (0..n)
            .map(|_| (rng.random_range(0.0..self.plane), rng.random_range(0.0..self.plane)))
            .collect();

        // Target degree sequence: discrete power law P(d) ∝ d^-α,
        // d ∈ [1, max_degree], drawn by inverse-CDF sampling.
        let max_degree = ((n as f64 * self.max_degree_frac) as usize).clamp(3, n - 1);
        let weights: Vec<f64> = (1..=max_degree).map(|d| (d as f64).powf(-self.alpha)).collect();
        let total_w: f64 = weights.iter().sum();
        let mut degrees: Vec<usize> = (0..n)
            .map(|_| {
                let mut r = rng.random_range(0.0..total_w);
                for (i, w) in weights.iter().enumerate() {
                    if r < *w {
                        return i + 1;
                    }
                    r -= w;
                }
                max_degree
            })
            .collect();
        // Inet guarantees a connected core by promoting the top nodes;
        // give the three largest hubs generous degrees.
        degrees.sort_unstable_by(|a, b| b.cmp(a));
        let mut order: Vec<usize> = (0..n).collect();
        rng.shuffle(&mut order);
        // degrees[i] belongs to router order[i]; hubs are the first few.
        let mut want = vec![0usize; n];
        for (rank, &node) in order.iter().enumerate() {
            want[node] = degrees[rank];
        }

        let mut graph = Graph::with_nodes(n);
        let delay = |a: (f64, f64), b: (f64, f64)| -> u16 {
            let d = ((a.0 - b.0).powi(2) + (a.1 - b.1).powi(2)).sqrt();
            (d * self.ms_per_unit).round().clamp(1.0, f64::from(u16::MAX - 1)) as u16
        };

        // Preferential attachment on residual degrees: process nodes in
        // random order; each node spends its degree budget connecting to
        // nodes with remaining budget, weighted by that budget.
        let mut residual = want.clone();
        let mut stubs: Vec<u32> = Vec::new();
        for (node, &w) in want.iter().enumerate() {
            for _ in 0..w {
                stubs.push(node as u32);
            }
        }
        rng.shuffle(&mut stubs);
        // Pair off half-edge stubs (configuration-model style), skipping
        // self-loops/duplicates.
        let mut i = 0;
        while i + 1 < stubs.len() {
            let (u, v) = (stubs[i], stubs[i + 1]);
            i += 2;
            if u != v && !graph.has_edge(u, v) {
                graph.add_edge(u, v, delay(coords[u as usize], coords[v as usize]));
                residual[u as usize] = residual[u as usize].saturating_sub(1);
                residual[v as usize] = residual[v as usize].saturating_sub(1);
            }
        }

        // Connectivity repair: link every non-main component to the
        // largest component through its closest (planar) node, mimicking
        // Inet's connected-core guarantee.
        repair_connectivity(exec, &mut graph, &coords, delay);

        let attach_candidates = (0..n as u32).collect();
        Topology { graph, kind: vec![NodeKind::Router; n], attach_candidates, domain: (0..n as u32).collect(), model: "inet" }
    }
}

/// Joins all components to the largest one with shortest planar links.
fn repair_connectivity(
    exec: &Executor,
    graph: &mut Graph,
    coords: &[(f64, f64)],
    delay: impl Fn((f64, f64), (f64, f64)) -> u16,
) {
    let n = graph.node_count();
    let mut comp = vec![usize::MAX; n];
    let mut n_comp = 0usize;
    for start in 0..n {
        if comp[start] != usize::MAX {
            continue;
        }
        let id = n_comp;
        n_comp += 1;
        let mut stack = vec![start as u32];
        comp[start] = id;
        while let Some(u) = stack.pop() {
            for e in graph.neighbors(u).to_vec() {
                if comp[e.to as usize] == usize::MAX {
                    comp[e.to as usize] = id;
                    stack.push(e.to);
                }
            }
        }
    }
    if n_comp <= 1 {
        return;
    }
    // Find the largest component.
    let mut sizes = vec![0usize; n_comp];
    for &c in &comp {
        sizes[c] += 1;
    }
    let main = sizes.iter().enumerate().max_by_key(|&(_, s)| *s).map_or(0, |(i, _)| i);
    // Representative of main component nearest to each foreign node.
    let main_nodes: Vec<u32> =
        (0..n).filter(|&i| comp[i] == main).map(|i| i as u32).collect();
    let mut linked = vec![false; n_comp];
    linked[main] = true;
    for u in 0..n {
        let c = comp[u];
        if linked[c] {
            continue;
        }
        // Closest main-component node on the plane. The key orders by
        // squared distance first (`to_bits` is order-preserving for the
        // non-negative distances here), then by node index, so the min
        // is unique and the reduction order cannot matter.
        let key = |a: u32| -> (u64, u32) { (dist2(coords[u], coords[a as usize]).to_bits(), a) };
        let best = if main_nodes.len() >= PAR_REPAIR_THRESHOLD {
            exec.par_fold(
                main_nodes.len(),
                PAR_REPAIR_CHUNK,
                || (u64::MAX, u32::MAX),
                |acc, i| *acc = (*acc).min(key(main_nodes[i])),
                |a, b| a.min(b),
            )
        } else {
            main_nodes.iter().map(|&a| key(a)).min().expect("main component non-empty")
        };
        let v = best.1;
        assert!(v != u32::MAX, "main component non-empty");
        graph.add_edge(u as u32, v, delay(coords[u], coords[v as usize]));
        linked[c] = true;
    }
}

fn dist2(a: (f64, f64), b: (f64, f64)) -> f64 {
    (a.0 - b.0).powi(2) + (a.1 - b.1).powi(2)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small(seed: u64) -> InetConfig {
        InetConfig { nodes: 500, ..InetConfig::for_peers(0, seed) }
    }

    #[test]
    fn generated_topology_is_connected() {
        for seed in 0..3 {
            let t = small(seed).generate();
            assert!(t.graph.is_connected(), "seed {seed}");
        }
    }

    #[test]
    fn for_peers_respects_paper_minimum() {
        assert_eq!(InetConfig::for_peers(1000, 0).nodes, 3000);
        assert_eq!(InetConfig::for_peers(5000, 0).nodes, 5000);
    }

    #[test]
    fn degree_distribution_is_heavy_tailed() {
        let t = small(7).generate();
        let n = t.router_count();
        let degs: Vec<usize> = (0..n as u32).map(|u| t.graph.degree(u)).collect();
        let max = *degs.iter().max().unwrap();
        let ones = degs.iter().filter(|&&d| d <= 2).count();
        // Power law: most nodes have tiny degree, hubs exist.
        assert!(ones > n / 3, "expected many low-degree nodes, got {ones}/{n}");
        assert!(max >= 8, "expected hub nodes, max degree {max}");
    }

    #[test]
    fn delays_are_heterogeneous() {
        let t = small(11).generate();
        let mut delays: Vec<u16> = Vec::new();
        for u in 0..t.router_count() as u32 {
            for e in t.graph.neighbors(u) {
                if e.to > u {
                    delays.push(e.delay_ms);
                }
            }
        }
        let min = *delays.iter().min().unwrap();
        let max = *delays.iter().max().unwrap();
        assert!(max > 4 * min.max(1), "delays not heterogeneous: {min}..{max}");
    }

    #[test]
    fn all_routers_are_attach_candidates() {
        let t = small(13).generate();
        assert_eq!(t.attach_candidates.len(), t.router_count());
        assert_eq!(t.model, "inet");
    }

    #[test]
    fn deterministic_per_seed() {
        let a = small(21).generate();
        let b = small(21).generate();
        assert_eq!(a.graph.edge_count(), b.graph.edge_count());
    }
}
