//! Hub labels vs. Dijkstra rows on seeded random graphs and the
//! paper's three network models. The labels are the production latency
//! backend at scale; every query they answer must be byte-identical to
//! a fresh Dijkstra, and the label index itself must be bit-identical
//! at any build thread count.

use hieras_rt::{Executor, Rng};
use hieras_topology::{
    BriteConfig, Graph, HubLabels, InetConfig, Topology, TransitStubConfig,
};

/// Every label query against every Dijkstra row, source-sampled for
/// the large generator graphs (`stride` 1 checks all n² pairs).
fn assert_labels_exact(g: &Graph, labels: &HubLabels, stride: usize, tag: &str) {
    let n = g.node_count();
    assert_eq!(labels.node_count(), n, "{tag}: node count");
    for src in (0..n as u32).step_by(stride) {
        let row = g.dijkstra(src);
        for v in 0..n as u32 {
            assert_eq!(
                labels.latency(src, v),
                row[v as usize],
                "{tag}: labels diverge from Dijkstra at ({src},{v})"
            );
        }
    }
}

fn assert_model_labeled(topo: &Topology, tag: &str) {
    let exec = Executor::new(2);
    let labels = HubLabels::build_on(&exec, &topo.graph);
    let s = labels.stats();
    assert!(s.hubs > 0 && s.entries > 0, "{tag}: degenerate label index");
    assert!(
        s.avg_len < 64.0,
        "{tag}: hierarchy-shaped graphs must label compactly, got avg {}",
        s.avg_len
    );
    assert_labels_exact(&topo.graph, &labels, 13, tag);
}

/// Mixed bag of seeded random graphs: connected chains with chords,
/// extra disconnected islands, zero-weight edges, duplicate edges.
fn random_graph(rng: &mut Rng) -> Graph {
    let n = rng.random_range(2usize..40);
    let islands = rng.random_range(0usize..4);
    let mut g = Graph::with_nodes(n + islands);
    for i in 1..n {
        let j = rng.random_range(0usize..i) as u32;
        g.add_edge(i as u32, j, rng.random_range(0u16..=50));
    }
    for _ in 0..rng.random_range(0usize..2 * n) {
        let u = rng.random_range(0usize..n) as u32;
        let v = rng.random_range(0usize..n) as u32;
        g.add_edge(u, v, rng.random_range(0u16..=50));
    }
    g
}

#[test]
fn labels_match_dijkstra_on_random_graphs() {
    let mut rng = Rng::seed_from_u64(0x1a8e15);
    let exec = Executor::new(1);
    for case in 0..80 {
        let g = random_graph(&mut rng);
        let labels = HubLabels::build_on(&exec, &g);
        assert_labels_exact(&g, &labels, 1, &format!("random case {case}"));
    }
}

#[test]
fn transit_stub_labels_match() {
    assert_model_labeled(&TransitStubConfig::for_peers(800, 11).generate(), "TransitStub");
}

#[test]
fn inet_labels_match() {
    assert_model_labeled(&InetConfig::for_peers(3000, 12).generate(), "Inet");
}

#[test]
fn brite_labels_match() {
    assert_model_labeled(&BriteConfig::for_peers(1000, 13).generate(), "BRITE");
}

/// The label build is a pure function of the graph: fixed hub order
/// and batch schedule, pruning only against committed batches. The
/// whole index — offsets and packed entries — must come out
/// bit-identical at 1, 2, and 8 threads, on every model.
#[test]
fn label_build_is_bit_identical_across_thread_counts() {
    let topos = [
        TransitStubConfig::for_peers(600, 21).generate(),
        InetConfig::for_peers(3000, 22).generate(),
        BriteConfig::for_peers(800, 23).generate(),
    ];
    for topo in &topos {
        let base = HubLabels::build_on(&Executor::new(1), &topo.graph);
        for threads in [2, 8] {
            let built = HubLabels::build_on(&Executor::new(threads), &topo.graph);
            assert_eq!(
                built, base,
                "{}: label index diverges at {threads} threads",
                topo.model
            );
        }
    }
}
