//! Bucket-queue vs. binary-heap Dijkstra on the paper's three network
//! models — not just random graphs. The bucket queue is the production
//! path; the heap is the retained reference implementation. Rows must
//! be byte-identical, source by source, on every model.

use hieras_topology::{BriteConfig, InetConfig, Topology, TransitStubConfig};

fn assert_rows_identical(topo: &Topology, label: &str) {
    let g = &topo.graph;
    let n = g.node_count();
    assert!(n > 0, "{label}: empty graph");
    // Every ~13th source keeps the test fast while sampling transit,
    // stub, and leaf routers alike.
    for src in (0..n as u32).step_by(13) {
        let bucket = g.dijkstra(src);
        let heap = g.dijkstra_heap(src);
        assert_eq!(bucket, heap, "{label}: rows diverge from source {src}");
    }
}

#[test]
fn transit_stub_rows_match() {
    let topo = TransitStubConfig::for_peers(800, 11).generate();
    assert_rows_identical(&topo, "TransitStub");
}

#[test]
fn inet_rows_match() {
    let topo = InetConfig::for_peers(3000, 12).generate();
    assert_rows_identical(&topo, "Inet");
}

#[test]
fn brite_rows_match() {
    let topo = BriteConfig::for_peers(1000, 13).generate();
    assert_rows_identical(&topo, "BRITE");
}
