//! Micro-benchmarks of the hot primitives underneath every figure:
//! SHA-1 hashing, Chord lookups, HIERAS routing, Dijkstra rows.
//! These are the knobs to watch when optimizing; the replay loop is
//! `lookups/sec * requests` end to end.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use hieras_chord::ChordOracle;
use hieras_core::{Binning, HierasConfig, HierasOracle};
use hieras_id::{Id, IdSpace, Sha1};
use hieras_sim::Workload;
use hieras_topology::TransitStubConfig;
use std::hint::black_box;
use std::sync::Arc;

fn ids(n: u64) -> Arc<[Id]> {
    (0..n).map(|i| Id::hash_of(&i.to_be_bytes())).collect::<Vec<_>>().into()
}

fn sha1_hashing(c: &mut Criterion) {
    let mut g = c.benchmark_group("sha1");
    for size in [64usize, 1024] {
        let data = vec![0xabu8; size];
        g.throughput(Throughput::Bytes(size as u64));
        g.bench_function(format!("digest_{size}B"), |b| {
            b.iter(|| black_box(Sha1::digest(black_box(&data))));
        });
    }
    g.finish();
}

fn chord_lookup(c: &mut Criterion) {
    let n = 2000u64;
    let oracle = ChordOracle::build(IdSpace::full(), ids(n)).unwrap();
    let w = Workload::new(n as u32, usize::MAX, 7);
    let mut i = 0usize;
    c.bench_function("chord_lookup_2k", |b| {
        b.iter(|| {
            let (src, key) = w.request(i);
            i += 1;
            black_box(oracle.lookup(src, key).hops())
        });
    });
}

fn hieras_route(c: &mut Criterion) {
    let n = 2000u64;
    let node_ids = ids(n);
    let rtts: Vec<Vec<u16>> = (0..n)
        .map(|i| {
            vec![
                if i % 2 == 0 { 5 } else { 150 },
                if i % 4 < 2 { 10 } else { 130 },
                if i % 8 < 4 { 30 } else { 110 },
                40,
            ]
        })
        .collect();
    let oracle =
        HierasOracle::from_rtts(IdSpace::full(), node_ids, &rtts, HierasConfig::paper()).unwrap();
    let w = Workload::new(n as u32, usize::MAX, 9);
    let mut i = 0usize;
    c.bench_function("hieras_route_2k", |b| {
        b.iter(|| {
            let (src, key) = w.request(i);
            i += 1;
            black_box(oracle.route(src, key).hop_count())
        });
    });
}

fn hierarchy_build(c: &mut Criterion) {
    let n = 1000u64;
    let node_ids = ids(n);
    let rtts: Vec<Vec<u16>> =
        (0..n).map(|i| vec![if i % 2 == 0 { 5 } else { 150 }, 40, 70, 120]).collect();
    c.bench_function("hieras_build_1k", |b| {
        b.iter(|| {
            black_box(
                HierasOracle::from_rtts(
                    IdSpace::full(),
                    node_ids.clone(),
                    &rtts,
                    HierasConfig::paper(),
                )
                .unwrap()
                .len(),
            )
        });
    });
}

fn binning_order(c: &mut Criterion) {
    let b = Binning::paper();
    let rtts = [17u16, 88, 204, 5, 61, 140, 33, 99];
    c.bench_function("binning_order_8lm", |bench| {
        bench.iter(|| black_box(b.order(black_box(&rtts))));
    });
}

fn dijkstra_row(c: &mut Criterion) {
    let topo = TransitStubConfig::for_peers(1000, 3).generate();
    c.bench_function("dijkstra_row_1k_routers", |b| {
        let mut src = 0u32;
        b.iter(|| {
            src = (src + 1) % topo.graph.node_count() as u32;
            black_box(topo.graph.dijkstra(src).len())
        });
    });
}

criterion_group! {
    name = micro;
    config = Criterion::default().sample_size(20);
    targets = sha1_hashing, chord_lookup, hieras_route, hierarchy_build, binning_order, dijkstra_row
}
criterion_main!(micro);
