//! One criterion group per paper artifact: times the exact code path
//! that regenerates each table/figure (small sizes — the full-scale
//! numbers come from the `figures` binary; these benches track the
//! *cost* of producing them and catch performance regressions).

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use hieras_bench::{depth_sweep, landmark_sweep, size_sweep};
use hieras_can::{CanOracle, HierCan};
use hieras_core::{Binning, CostReport, HierasConfig, HierasOracle, LandmarkOrder};
use hieras_id::{Id, IdSpace};
use hieras_proto::SimNet;
use hieras_sim::{Experiment, ExperimentConfig, TopologyKind, Workload};
use std::hint::black_box;
use std::sync::Arc;

const SEED: u64 = 20030415;

fn small_experiment(nodes: usize) -> Experiment {
    Experiment::build(ExperimentConfig {
        kind: TopologyKind::TransitStub,
        nodes,
        requests: 0,
        hieras: HierasConfig::paper(),
        seed: SEED,
        rtt_noise: 0.0,
    })
}

/// Table 1 — the distributed binning computation.
fn table1_binning(c: &mut Criterion) {
    let b = Binning::paper();
    let rows: [[u16; 4]; 6] = [
        [25, 5, 30, 100],
        [40, 18, 12, 200],
        [100, 180, 5, 10],
        [160, 220, 8, 20],
        [45, 10, 100, 5],
        [20, 140, 50, 40],
    ];
    c.bench_function("table1_binning", |bench| {
        bench.iter(|| {
            for r in &rows {
                black_box(b.order(black_box(r)));
            }
        });
    });
}

/// Table 2 — multi-layer finger-table construction (the demo system).
fn table2_fingers(c: &mut Criterion) {
    let space = IdSpace::new(8).unwrap();
    let nodes: [(u64, [u8; 3]); 9] = [
        (121, [0, 1, 2]),
        (124, [0, 0, 1]),
        (131, [0, 1, 1]),
        (139, [0, 2, 2]),
        (143, [0, 1, 2]),
        (158, [0, 1, 2]),
        (192, [0, 0, 1]),
        (212, [0, 1, 2]),
        (253, [0, 1, 2]),
    ];
    let ids: Arc<[Id]> = nodes.iter().map(|&(v, _)| Id(v)).collect::<Vec<_>>().into();
    let orders: Vec<LandmarkOrder> =
        nodes.iter().map(|&(_, d)| LandmarkOrder(d.to_vec())).collect();
    let config = HierasConfig { depth: 2, landmarks: 3, binning: Binning::paper() };
    c.bench_function("table2_fingers", |bench| {
        bench.iter(|| {
            let o = HierasOracle::build(space, ids.clone(), orders.clone(), config.clone())
                .unwrap();
            black_box(o.finger_rows(0))
        });
    });
}

/// Table 3 — ring-table maintenance (observe/update churn).
fn table3_ring_table(c: &mut Criterion) {
    use hieras_core::RingTable;
    let order = LandmarkOrder(vec![0, 1, 2]);
    c.bench_function("table3_ring_table", |bench| {
        bench.iter(|| {
            let mut t = RingTable::new(&order);
            for i in 0..64u64 {
                t.observe(Id(i.wrapping_mul(0x9e37_79b9_7f4a_7c15)));
            }
            black_box(t.len())
        });
    });
}

/// Figure 2 — the hop-count comparison pipeline at one small size.
fn fig2_hops(c: &mut Criterion) {
    c.bench_function("fig2_hops_sweep_200", |bench| {
        bench.iter(|| black_box(size_sweep(TopologyKind::TransitStub, &[200], 500, SEED)));
    });
}

/// Figure 3 — latency replay over a prebuilt experiment.
fn fig3_latency(c: &mut Criterion) {
    let e = small_experiment(400);
    c.bench_function("fig3_latency_replay_1k", |bench| {
        bench.iter(|| black_box(e.run_requests(1000)));
    });
}

/// Figure 4 — hop-PDF collection (histogram accounting path).
fn fig4_pdf(c: &mut Criterion) {
    let e = small_experiment(400);
    c.bench_function("fig4_pdf_collect", |bench| {
        bench.iter_batched(
            || (),
            |()| {
                let r = e.run_requests(500);
                black_box((r.chord.hop_hist.pdf(), r.hieras.lower_hop_hist.pdf()))
            },
            BatchSize::SmallInput,
        );
    });
}

/// Figure 5 — latency-CDF construction.
fn fig5_cdf(c: &mut Criterion) {
    let e = small_experiment(400);
    let r = e.run_requests(2000);
    c.bench_function("fig5_cdf_build", |bench| {
        bench.iter(|| black_box(r.hieras.latency_cdf().curve(30)));
    });
}

/// Figure 6 — landmark sweep (binning + hierarchy rebuild cost).
fn fig6_landmarks(c: &mut Criterion) {
    c.bench_function("fig6_landmark_sweep", |bench| {
        bench.iter(|| black_box(landmark_sweep(200, 300, &[2, 6], SEED)));
    });
}

/// Figure 7 — landmark-latency metric (same sweep, latency read-out).
fn fig7_landmark_latency(c: &mut Criterion) {
    let rows = landmark_sweep(200, 300, &[4], SEED);
    c.bench_function("fig7_latency_ratio", |bench| {
        bench.iter(|| {
            black_box(
                rows.iter()
                    .map(|r| r.hieras.avg_latency_ms / r.chord.avg_latency_ms)
                    .sum::<f64>(),
            )
        });
    });
}

/// Figures 8/9 — hierarchy-depth sweep.
fn fig89_depth(c: &mut Criterion) {
    c.bench_function("fig8_fig9_depth_sweep", |bench| {
        bench.iter(|| black_box(depth_sweep(&[200], &[2, 3], 300, SEED)));
    });
}

/// Cost analysis — state accounting and the message-level join.
fn cost_join(c: &mut Criterion) {
    let e = small_experiment(200);
    c.bench_function("cost_state_report", |bench| {
        bench.iter(|| black_box(CostReport::for_oracle(&e.hieras, 8)));
    });
    c.bench_function("cost_join_choreography", |bench| {
        let mut n = 0u64;
        bench.iter_batched(
            || SimNet::from_oracle(&e.hieras, &e.landmarks, |_, _| 10),
            |mut net| {
                n += 1;
                black_box(net.join(
                    Id::hash_of(format!("bench-joiner-{n}").as_bytes()),
                    e.ids[0],
                    &[15, 40, 120, 60],
                ))
            },
            BatchSize::SmallInput,
        );
    });
}

/// CAN ablation — plain CAN vs hierarchical CAN routing.
fn ablate_can(c: &mut Criterion) {
    let e = small_experiment(300);
    let can = CanOracle::build(300, 3, SEED).unwrap();
    let hier = HierCan::build(&e.orders, 3, SEED).unwrap();
    let w = Workload::new(300, 200, SEED);
    c.bench_function("ablate_can_plain", |bench| {
        bench.iter(|| {
            let mut h = 0usize;
            for (src, key) in w.iter() {
                h += can.route(src, key).hops();
            }
            black_box(h)
        });
    });
    c.bench_function("ablate_can_hier", |bench| {
        bench.iter(|| {
            let mut h = 0usize;
            for (src, key) in w.iter() {
                h += hier.route(src, key).len();
            }
            black_box(h)
        });
    });
}

criterion_group! {
    name = artifacts;
    config = Criterion::default().sample_size(10);
    targets = table1_binning, table2_fingers, table3_ring_table,
              fig2_hops, fig3_latency, fig4_pdf, fig5_cdf,
              fig6_landmarks, fig7_landmark_latency, fig89_depth,
              cost_join, ablate_can
}
criterion_main!(artifacts);
