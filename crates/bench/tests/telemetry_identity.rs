//! Identities of the windowed-telemetry layer.
//!
//! Three contracts the time-series artifacts stand on:
//!
//! 1. **Zero perturbation** — enabling telemetry leaves the
//!    deterministic routing metrics byte-identical to a
//!    telemetry-off run; the windowed stream itself is bit-identical
//!    (as JSONL text) at 1, 2 and 8 executor lanes.
//! 2. **Exact reconciliation** — the per-window histograms and health
//!    counters are a partition of the run totals: window lookups sum
//!    to the registry's `serve.lookups`, merged window latency
//!    histograms equal one rebuilt from every routing sample, and the
//!    `serve.epoch.*` window counters sum to their run-level `serve.*`
//!    twins. Windows are a reslicing of the truth, not a sampling.
//! 3. **Flight-recorder fidelity** — every captured slow lookup's hop
//!    milliseconds sum to its recorded latency, and the slowest
//!    capture is the run's true maximum latency.

use hieras_obs::{names, LogHistogram, TimeSeriesReport};
use hieras_rt::Executor;
use hieras_serve::{ServeConfig, ServeEngine, TelemetryConfig};
use hieras_sim::{ChurnConfig, Experiment, ExperimentConfig, Lifetime};

fn world(telemetry: TelemetryConfig) -> (Experiment, ServeConfig) {
    let mut cfg = ExperimentConfig::paper(150, 7);
    cfg.requests = 1500;
    let exp = Experiment::build(cfg);
    let serve = ServeConfig {
        churn: ChurnConfig {
            initial_nodes: 130,
            arrivals: 20,
            inter_arrival: Lifetime::Fixed { ms: 400 },
            lifetime: Lifetime::Exponential { mean_ms: 60_000.0 },
            graceful_fraction: 0.5,
            horizon_ms: 25_000,
            seed: 0x1eaf,
        },
        readers: 2,
        events_per_epoch: 2,
        lookups_per_epoch: 300,
        refresh_batch: 32,
        seed: 0x5eed,
        rebin_every: 6,
        rebin_noise: 0.3,
        telemetry,
        delta_max_ring_fraction: 0.35,
        batched: false,
        pace: 0.0,
        cache: hieras_serve::CacheConfig::off(),
        workload: hieras_sim::WorkloadModel::Uniform,
    };
    (exp, serve)
}

#[test]
fn windowed_stream_is_bit_identical_at_1_2_and_8_readers() {
    let (exp, cfg) = world(TelemetryConfig::on());
    let engine = ServeEngine::new(&exp, cfg);
    let base = engine.run_deterministic(&Executor::new(1));
    let base_ts = base.timeseries.as_ref().expect("telemetry is on");
    let base_jsonl = base_ts.to_jsonl();
    assert!(base_ts.window_count() >= 2, "the horizon spans several sim windows");
    for width in [2usize, 8] {
        let r = engine.run_deterministic(&Executor::new(width));
        let ts = r.timeseries.as_ref().expect("telemetry is on");
        assert_eq!(
            ts.to_jsonl(),
            base_jsonl,
            "windowed JSONL diverged at {width} readers"
        );
        assert_eq!(
            r.registry, base.registry,
            "registry (incl. telemetry.* rollups) diverged at {width} readers"
        );
    }
}

#[test]
fn telemetry_leaves_deterministic_routing_metrics_untouched() {
    let (exp, cfg) = world(TelemetryConfig::off());
    let engine_off = ServeEngine::new(&exp, cfg.clone());
    let mut on = cfg;
    on.telemetry = TelemetryConfig::on();
    let engine_on = ServeEngine::new(&exp, on);
    let exec = Executor::new(2);
    let off = engine_off.run_deterministic(&exec);
    let with = engine_on.run_deterministic(&exec);
    assert!(off.timeseries.is_none(), "off run emits no time series");
    assert_eq!(with.metrics, off.metrics, "telemetry must not perturb routing");
    assert_eq!(with.lookups, off.lookups);
    assert_eq!(with.epochs.published, off.epochs.published);
}

#[test]
fn windows_partition_the_run_exactly() {
    let (exp, cfg) = world(TelemetryConfig::on());
    let engine = ServeEngine::new(&exp, cfg);
    let r = engine.run_deterministic(&Executor::new(2));
    let ts = r.timeseries.as_ref().expect("telemetry is on");

    // Lookup counts: windows sum to the run total and the registry.
    let windowed: u64 = ts.windows.iter().map(|w| w.lookups).sum();
    assert_eq!(windowed, r.lookups, "window lookups partition the run");
    assert_eq!(windowed, r.registry.counter(names::SERVE_LOOKUPS));

    // Latency: the merged window histograms equal one rebuilt from
    // every routing sample — same values, not just the same count.
    let mut merged = LogHistogram::default();
    for w in &ts.windows {
        merged.merge(&w.latency);
    }
    let mut from_samples = LogHistogram::default();
    for &ms in &r.metrics.latency_samples {
        from_samples.record(u64::from(ms));
    }
    assert_eq!(merged, from_samples, "windowed latency is a reslicing of the samples");

    // Epoch health: serve.epoch.* window counters sum to their
    // run-level serve.* twins.
    let health_sum = |name: &str| -> u64 {
        ts.windows.iter().map(|w| w.health.counter(name)).sum()
    };
    for (window_name, run_name) in [
        (names::SERVE_EPOCH_PUBLISHED, names::SERVE_EPOCHS_PUBLISHED),
        (names::SERVE_EPOCH_JOINS, names::SERVE_JOINS),
        (names::SERVE_EPOCH_LEAVES, names::SERVE_LEAVES),
        (names::SERVE_EPOCH_FAILS, names::SERVE_FAILS),
        (names::SERVE_EPOCH_REBINNED, names::SERVE_REBINNED),
    ] {
        assert_eq!(
            health_sum(window_name),
            r.registry.counter(run_name),
            "{window_name} must sum to {run_name}"
        );
    }

    // Run-level rollups match the report.
    assert_eq!(
        r.registry.gauge(names::TELEMETRY_WINDOWS),
        Some(ts.window_count() as i64)
    );
    assert_eq!(r.registry.counter(names::TELEMETRY_SLOW_LOOKUPS), ts.slow.len() as u64);
}

#[test]
fn flight_recorder_captures_reconcile_with_the_samples() {
    let (exp, cfg) = world(TelemetryConfig::on());
    let engine = ServeEngine::new(&exp, cfg);
    let r = engine.run_deterministic(&Executor::new(2));
    let ts = r.timeseries.as_ref().expect("telemetry is on");
    assert!(!ts.slow.is_empty(), "the recorder must capture something");
    for rec in &ts.slow {
        let hop_ms: u64 = rec.path.iter().map(|h| u64::from(h.ms)).sum();
        assert_eq!(
            hop_ms, rec.latency_ms,
            "captured hop milliseconds must sum to the recorded latency"
        );
    }
    // Per-window top-K keeps every window's slowest lookup, so the
    // global maximum latency is necessarily among the captures.
    let slowest = ts.slow.iter().map(|s| s.latency_ms).max().unwrap();
    let true_max =
        r.metrics.latency_samples.iter().copied().max().map(u64::from).unwrap();
    assert_eq!(slowest, true_max, "the run's worst lookup is on tape");
}

#[test]
fn quiesced_mode_emits_one_window_and_round_trips() {
    let (exp, cfg) = world(TelemetryConfig::on());
    let engine = ServeEngine::new(&exp, cfg);
    let q = engine.run_quiesced(&Executor::new(2), 1500);
    let ts = q.timeseries.as_ref().expect("telemetry is on");
    assert_eq!(ts.window_count(), 1, "quiesced sim time never advances");
    assert_eq!(ts.windows[0].lookups, 1500);
    assert_eq!(ts.meta.mode, "sim");
    let jsonl = ts.to_jsonl();
    let back = TimeSeriesReport::parse_jsonl(&jsonl).expect("stream parses");
    assert_eq!(back.to_jsonl(), jsonl, "JSONL round-trips byte-identically");
}
