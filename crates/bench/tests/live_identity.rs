//! Determinism identities of the live serving engine.
//!
//! Two contracts `bench_live` (and CI) stand on:
//!
//! 1. the deterministic serving mode produces bit-identical metrics
//!    *and* registries at any executor width — "readers" are executor
//!    lanes arbitrated in lock step, so 1, 2 and 8 must agree;
//! 2. the quiesced mode replays the exact workload stream
//!    `Experiment::run_requests_on` uses, so its HIERAS metrics equal
//!    the replay bench's — the identity `scripts/verify.sh` asserts
//!    byte-for-byte on the JSON artifacts.

use hieras_rt::Executor;
use hieras_serve::{ServeConfig, ServeEngine, TelemetryConfig};
use hieras_sim::{ChurnConfig, Experiment, ExperimentConfig, Lifetime};

fn world() -> (Experiment, ServeConfig) {
    let mut cfg = ExperimentConfig::paper(150, 7);
    cfg.requests = 1500;
    let exp = Experiment::build(cfg);
    let serve = ServeConfig {
        churn: ChurnConfig {
            initial_nodes: 130,
            arrivals: 20,
            inter_arrival: Lifetime::Fixed { ms: 400 },
            lifetime: Lifetime::Exponential { mean_ms: 60_000.0 },
            graceful_fraction: 0.5,
            horizon_ms: 25_000,
            seed: 0x1eaf,
        },
        readers: 2,
        events_per_epoch: 2,
        lookups_per_epoch: 300,
        refresh_batch: 32,
        seed: 0x5eed,
        rebin_every: 6,
        rebin_noise: 0.3,
        telemetry: TelemetryConfig::off(),
        delta_max_ring_fraction: 0.35,
        batched: false,
        pace: 0.0,
        cache: hieras_serve::CacheConfig::off(),
        workload: hieras_sim::WorkloadModel::Uniform,
    };
    (exp, serve)
}

#[test]
fn deterministic_mode_is_identical_at_1_2_and_8_readers() {
    let (exp, cfg) = world();
    let engine = ServeEngine::new(&exp, cfg);
    let base = engine.run_deterministic(&Executor::new(1));
    assert!(base.epochs.published > 0, "scenario must churn");
    for width in [2usize, 8] {
        let r = engine.run_deterministic(&Executor::new(width));
        assert_eq!(
            r.metrics, base.metrics,
            "routing metrics diverged at {width} readers"
        );
        assert_eq!(
            r.registry, base.registry,
            "serve.* registry diverged at {width} readers"
        );
        assert_eq!(r.lookups, base.lookups);
        assert_eq!(r.epochs.published, base.epochs.published);
        assert_eq!(r.final_live, base.final_live);
    }
}

#[test]
fn quiesced_mode_equals_the_replay_bench() {
    let (exp, cfg) = world();
    let engine = ServeEngine::new(&exp, cfg);
    let exec = Executor::new(2);
    let quiesced = engine.run_quiesced(&exec, 1500);
    let replay = exp.run_requests_on(&exec, 1500);
    assert_eq!(
        quiesced.metrics, replay.hieras,
        "quiesced serving must replay the exact bench workload"
    );
    assert_eq!(quiesced.lookups, 1500);
    // And the identity holds at a different width too — both sides are
    // chunk-deterministic.
    let wide = engine.run_quiesced(&Executor::new(8), 1500);
    assert_eq!(wide.metrics, replay.hieras);
}
