//! Observability acceptance tests:
//!
//! * the registry folded by the parallel replay must be **byte-
//!   identical** at any executor width (mirroring `churn_identity`);
//! * the traced churn sweep's registries must match across thread
//!   counts too, and must not perturb the reports;
//! * the message probe's JSONL trace must reconcile **exactly** with
//!   the aggregate hop counters — per-span close fields, per-hop
//!   instants, and the registry histogram all tell the same story.

use hieras_bench::{churn_sweep, churn_sweep_traced, message_probe};
use hieras_obs::{TraceKind, Tracer};
use hieras_rt::Executor;
use hieras_sim::{Experiment, ExperimentConfig};
use std::collections::HashMap;

fn experiment() -> Experiment {
    Experiment::build(ExperimentConfig { requests: 0, ..ExperimentConfig::paper(200, 20030415) })
}

#[test]
fn replay_registry_is_byte_identical_across_thread_counts() {
    let e = experiment();
    let (base_result, base_reg) = e.run_requests_traced(&Executor::new(1), 2000);
    let base = base_reg.snapshot();
    for threads in [2, 8] {
        let (result, reg) = e.run_requests_traced(&Executor::new(threads), 2000);
        assert_eq!(result, base_result, "metrics diverge at {threads} threads");
        assert_eq!(reg.snapshot(), base, "registry snapshot diverges at {threads} threads");
    }
}

#[test]
fn traced_churn_sweep_is_identical_across_thread_counts() {
    let run = |threads: usize| churn_sweep_traced(&Executor::new(threads), 50, 5, 3_000, 7, 0);
    let base = run(1);
    for threads in [2, 8] {
        let got = run(threads);
        assert_eq!(got.len(), base.len());
        for ((row, obs), (brow, bobs)) in got.iter().zip(base.iter()) {
            assert_eq!(row, brow, "{}: report diverges at {threads} threads", row.scenario);
            assert_eq!(
                obs.registry.snapshot(),
                bobs.registry.snapshot(),
                "{}: registry diverges at {threads} threads",
                row.scenario
            );
        }
    }
    // And the traced rows equal the untraced sweep's rows.
    let plain = churn_sweep(&Executor::new(2), 50, 5, 3_000, 7);
    for (p, (t, _)) in plain.iter().zip(base.iter()) {
        assert_eq!(p, t, "{}: tracing perturbed the report", p.scenario);
    }
}

#[test]
fn trace_jsonl_reconciles_with_aggregate_hop_counters() {
    let e = experiment();
    let probe = message_probe(&e, 120, 1 << 15);
    assert_eq!(probe.tracer.dropped, 0, "probe trace must not evict events");

    // Round-trip the trace through its JSONL wire format.
    let events = Tracer::parse_jsonl(&probe.tracer.to_jsonl()).expect("trace parses back");
    assert_eq!(events.len(), probe.tracer.len());

    // Per-span accounting: open events carry the inputs, close events
    // the outcome, hop instants attach to the owning span.
    let mut close_hops: HashMap<u64, u64> = HashMap::new();
    let mut hop_instants: HashMap<u64, u64> = HashMap::new();
    let mut opens = 0u64;
    for ev in &events {
        match ev.kind {
            TraceKind::Open => {
                assert_eq!(ev.name, "lookup");
                opens += 1;
            }
            TraceKind::Close => {
                let hops = ev
                    .fields
                    .iter()
                    .find(|(k, _)| k == "hops")
                    .expect("lookup close carries hops")
                    .1;
                close_hops.insert(ev.span, hops);
            }
            TraceKind::Instant => {
                assert_eq!(ev.name, "hop");
                *hop_instants.entry(ev.span).or_insert(0) += 1;
            }
        }
    }
    assert_eq!(opens, 120, "one span per probe lookup");
    assert_eq!(close_hops.len(), 120, "every span closed");

    // Reconciliation 1: summed per-span close hops == aggregate.
    let span_total: u64 = close_hops.values().sum();
    assert_eq!(span_total, probe.total_hops);
    assert_eq!(span_total, probe.registry.hist("lookup.hops").expect("histogram").sum());

    // Reconciliation 2: each span's hop instants equal its close
    // count — the per-hop stream is complete, not sampled. (The
    // injection delivery at hops=0 counts as one instant; a k-hop
    // lookup delivers k+1 FindSucc messages.)
    for (span, &hops) in &close_hops {
        let instants = hop_instants.get(span).copied().unwrap_or(0);
        assert_eq!(instants, hops + 1, "span {span}: instants vs close hops");
    }

    // Reconciliation 3: delivered FindSucc messages == all hop
    // instants (churn-free probe: nothing dropped or timed out).
    let find_succ = probe.registry.counter("net.deliver.find_succ");
    assert_eq!(find_succ, hop_instants.values().sum::<u64>());
    assert_eq!(probe.registry.counter("net.drop.ttl"), 0);
    assert_eq!(probe.registry.counter("net.timeout"), 0);
}
