//! The churn sweep's metrics must be bit-identical at any executor
//! width: the engine is strictly sequential per scenario and the
//! merge order is fixed by chunk index, so only wall-clock fields may
//! differ between runs.

use hieras_bench::churn_sweep;
use hieras_rt::{Executor, Json, ToJson};

/// Serializes the sweep's scenario records — everything the bench
/// binary writes except the wall-clock and thread-count fields.
fn scenarios_json(threads: usize) -> String {
    let rows = churn_sweep(&Executor::new(threads), 60, 6, 4_000, 20030415);
    Json::Arr(rows.iter().map(|r| r.to_json()).collect()).dump_pretty()
}

#[test]
fn churn_metrics_are_identical_across_thread_counts() {
    let one = scenarios_json(1);
    assert_eq!(one, scenarios_json(2), "1-thread and 2-thread sweeps diverged");
    assert_eq!(one, scenarios_json(8), "1-thread and 8-thread sweeps diverged");
}
