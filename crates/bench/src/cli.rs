//! Shared command-line surface of the bench binaries.
//!
//! Every harness accepts the same core flags — `--smoke` for the
//! CI-sized run, and (where instrumentation exists) `--obs` plus
//! `--trace-out <path.jsonl>` — and until this module existed each
//! binary carried its own copy of the parse loop. [`BenchArgs::parse`]
//! is that loop, once: binaries declare which optional flags they
//! support and get identical usage messages, exit codes, and the
//! `--trace-out ⇒ --obs` implication everywhere.

/// Which optional flags a binary supports beyond `--smoke`.
#[derive(Debug, Clone, Copy, Default)]
pub struct BenchFlags {
    /// Accept `--obs` (instrumented run with registry snapshots).
    pub obs: bool,
    /// Accept `--trace-out <path.jsonl>` (implies `--obs`).
    pub trace: bool,
    /// Accept `--timeseries-out <path.jsonl>` (windowed telemetry
    /// stream; implies `--obs`).
    pub timeseries: bool,
    /// Accept `--pace <sim-per-wall>` (free-running maintainer pacing,
    /// sim-milliseconds of schedule per wall-millisecond).
    pub pace: bool,
}

impl BenchFlags {
    /// `--smoke` only (e.g. `bench_scale`).
    #[must_use]
    pub fn smoke_only() -> Self {
        BenchFlags::default()
    }

    /// `--smoke`, `--obs` and `--trace-out` (e.g. `bench_replay`).
    #[must_use]
    pub fn full() -> Self {
        BenchFlags { obs: true, trace: true, ..BenchFlags::default() }
    }

    /// `--smoke` and `--obs`, no tracer (e.g. `churn`).
    #[must_use]
    pub fn with_obs() -> Self {
        BenchFlags { obs: true, ..BenchFlags::default() }
    }

    /// `--smoke`, `--obs`, `--timeseries-out` and `--pace`
    /// (e.g. `bench_live`).
    #[must_use]
    pub fn live() -> Self {
        BenchFlags { obs: true, timeseries: true, pace: true, ..BenchFlags::default() }
    }

    fn usage(self, bin: &str) -> String {
        let mut u = format!("usage: {bin} [--smoke]");
        if self.obs {
            u.push_str(" [--obs]");
        }
        if self.trace {
            u.push_str(" [--trace-out <path.jsonl>]");
        }
        if self.timeseries {
            u.push_str(" [--timeseries-out <path.jsonl>]");
        }
        if self.pace {
            u.push_str(" [--pace <sim-per-wall>]");
        }
        u
    }
}

/// Parsed common bench arguments.
#[derive(Debug, Clone, Default)]
pub struct BenchArgs {
    /// CI-sized run requested.
    pub smoke: bool,
    /// Instrumented run requested (set by `--obs` or `--trace-out`).
    pub obs: bool,
    /// Span/instant JSONL output path, when tracing was requested.
    pub trace_out: Option<String>,
    /// Windowed-telemetry JSONL output path, when requested.
    pub timeseries_out: Option<String>,
    /// Maintainer pacing for the free-running rows, sim-ms per
    /// wall-ms; `None` means full rate.
    pub pace: Option<f64>,
}

impl BenchArgs {
    /// Parses `std::env::args()` for binary `bin`, accepting the flags
    /// `flags` enables. Unknown arguments (and flags the binary does
    /// not support) print the usage line and exit with status 2, the
    /// behavior every bench binary already had.
    #[must_use]
    pub fn parse(bin: &str, flags: BenchFlags) -> Self {
        match Self::try_parse(bin, flags, std::env::args().skip(1)) {
            Ok(args) => args,
            Err(msg) => {
                eprintln!("{msg}");
                std::process::exit(2);
            }
        }
    }

    /// The parse loop itself, testable: consumes an argument iterator
    /// and returns the parsed flags or the exact message `parse` would
    /// print before exiting.
    ///
    /// # Errors
    /// Returns the diagnostic (including the usage line) for unknown
    /// or unsupported arguments and for `--trace-out` without a path.
    pub fn try_parse(
        bin: &str,
        flags: BenchFlags,
        args: impl IntoIterator<Item = String>,
    ) -> Result<Self, String> {
        let mut out = BenchArgs::default();
        let mut args = args.into_iter();
        while let Some(arg) = args.next() {
            match arg.as_str() {
                "--smoke" => out.smoke = true,
                "--obs" if flags.obs => out.obs = true,
                "--trace-out" if flags.trace => match args.next() {
                    Some(path) => out.trace_out = Some(path),
                    None => return Err("--trace-out needs a path argument".to_owned()),
                },
                "--timeseries-out" if flags.timeseries => match args.next() {
                    Some(path) => out.timeseries_out = Some(path),
                    None => return Err("--timeseries-out needs a path argument".to_owned()),
                },
                "--pace" if flags.pace => match args.next().map(|v| v.parse::<f64>()) {
                    Some(Ok(p)) if p >= 0.0 && p.is_finite() => out.pace = Some(p),
                    Some(_) => {
                        return Err("--pace needs a non-negative ratio".to_owned());
                    }
                    None => return Err("--pace needs a ratio argument".to_owned()),
                },
                other => {
                    return Err(format!(
                        "unknown argument `{other}` ({})",
                        flags.usage(bin)
                    ));
                }
            }
        }
        // A trace or a time series needs the instrumented run to exist.
        if out.trace_out.is_some() || out.timeseries_out.is_some() {
            out.obs = true;
        }
        Ok(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn argv(args: &[&str]) -> Vec<String> {
        args.iter().map(|s| (*s).to_owned()).collect()
    }

    #[test]
    fn parses_all_flags() {
        let a = BenchArgs::try_parse(
            "bench_replay",
            BenchFlags::full(),
            argv(&["--smoke", "--obs", "--trace-out", "t.jsonl"]),
        )
        .unwrap();
        assert!(a.smoke && a.obs);
        assert_eq!(a.trace_out.as_deref(), Some("t.jsonl"));
    }

    #[test]
    fn trace_out_implies_obs() {
        let a = BenchArgs::try_parse(
            "churn",
            BenchFlags::full(),
            argv(&["--trace-out", "t.jsonl"]),
        )
        .unwrap();
        assert!(a.obs, "--trace-out must switch the instrumented path on");
    }

    #[test]
    fn trace_out_requires_a_path() {
        let err = BenchArgs::try_parse("churn", BenchFlags::full(), argv(&["--trace-out"]))
            .unwrap_err();
        assert!(err.contains("needs a path"));
    }

    #[test]
    fn unknown_argument_reports_usage() {
        let err =
            BenchArgs::try_parse("bench_scale", BenchFlags::smoke_only(), argv(&["--nope"]))
                .unwrap_err();
        assert!(err.contains("unknown argument `--nope`"));
        assert!(err.contains("usage: bench_scale [--smoke]"));
        assert!(!err.contains("--obs"), "smoke-only binaries do not advertise --obs");
    }

    #[test]
    fn unsupported_flags_are_unknown() {
        // bench_scale has no instrumented path: --obs must be rejected
        // exactly like any other unknown argument.
        let err = BenchArgs::try_parse("bench_scale", BenchFlags::smoke_only(), argv(&["--obs"]))
            .unwrap_err();
        assert!(err.contains("unknown argument `--obs`"));
        // bench_live supports --obs and --timeseries-out but no tracer.
        let err = BenchArgs::try_parse("bench_live", BenchFlags::live(), argv(&["--trace-out"]))
            .unwrap_err();
        assert!(err.contains("unknown argument `--trace-out`"));
        assert!(err.contains(
            "usage: bench_live [--smoke] [--obs] [--timeseries-out <path.jsonl>] \
             [--pace <sim-per-wall>]"
        ));
        // churn supports --obs and --trace-out but no time series.
        let err =
            BenchArgs::try_parse("churn", BenchFlags::full(), argv(&["--timeseries-out", "x"]))
                .unwrap_err();
        assert!(err.contains("unknown argument `--timeseries-out`"));
    }

    #[test]
    fn timeseries_out_implies_obs_and_requires_a_path() {
        let a = BenchArgs::try_parse(
            "bench_live",
            BenchFlags::live(),
            argv(&["--timeseries-out", "ts.jsonl"]),
        )
        .unwrap();
        assert!(a.obs, "--timeseries-out must switch the instrumented path on");
        assert_eq!(a.timeseries_out.as_deref(), Some("ts.jsonl"));
        let err =
            BenchArgs::try_parse("bench_live", BenchFlags::live(), argv(&["--timeseries-out"]))
                .unwrap_err();
        assert!(err.contains("needs a path"));
    }

    #[test]
    fn empty_args_default_to_full_run() {
        let a = BenchArgs::try_parse("bench_replay", BenchFlags::full(), argv(&[])).unwrap();
        assert!(!a.smoke && !a.obs && a.trace_out.is_none());
        assert!(a.pace.is_none(), "no --pace means full rate");
    }

    #[test]
    fn pace_parses_a_nonnegative_ratio() {
        let a = BenchArgs::try_parse("bench_live", BenchFlags::live(), argv(&["--pace", "50"]))
            .unwrap();
        assert_eq!(a.pace, Some(50.0));
        assert!(!a.obs, "--pace alone does not imply the instrumented run");
        for bad in [&["--pace", "-1"][..], &["--pace", "nan"], &["--pace", "x"], &["--pace"]] {
            let err =
                BenchArgs::try_parse("bench_live", BenchFlags::live(), argv(bad)).unwrap_err();
            assert!(err.contains("--pace needs"), "{bad:?} must be rejected: {err}");
        }
        // Binaries without the flag reject it as unknown.
        let err = BenchArgs::try_parse("churn", BenchFlags::full(), argv(&["--pace", "2"]))
            .unwrap_err();
        assert!(err.contains("unknown argument `--pace`"));
    }
}
