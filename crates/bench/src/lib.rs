//! Benchmark harness: sweep runners and renderers that regenerate
//! every table and figure of the HIERAS paper.
//!
//! The `figures` binary (`cargo run -p hieras-bench --release --bin
//! figures -- <id>`) prints each artifact as a markdown table plus a
//! JSON record; the `bench_replay` binary times oracle construction
//! and the parallel replay (median ns/lookup) and writes
//! `BENCH_replay.json`. EXPERIMENTS.md is written from the
//! `figures all` output.
//!
//! Every sweep takes explicit sizes/requests so the same code serves
//! `--quick` (laptop-scale, minutes) and `--full` (paper-scale:
//! 10 000 nodes, 100 000 requests) runs.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod cli;
pub mod obsprobe;
pub mod render;
pub mod sweeps;

pub use cli::{BenchArgs, BenchFlags};
pub use obsprobe::{message_probe, ObsProbe};
pub use render::{sparkline, timeline_compare, timeline_table};
pub use sweeps::{
    churn_sweep, churn_sweep_traced, depth_sweep, landmark_sweep, size_sweep, ChurnRow,
    DepthRow, LandmarkRow, SizeRow,
};
