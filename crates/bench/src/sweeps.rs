//! Parameter sweeps behind the paper's figures.

use hieras_core::{Binning, HierasConfig};
use hieras_rt::{Json, ToJson};
use hieras_sim::{Experiment, ExperimentConfig, Summary, TopologyKind};

/// One row of a network-size sweep (Figures 2 and 3).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SizeRow {
    /// Network model.
    pub kind: &'static str,
    /// Number of peers.
    pub nodes: usize,
    /// Chord baseline summary.
    pub chord: Summary,
    /// HIERAS summary.
    pub hieras: Summary,
}

/// Sweeps network size for one model, comparing Chord and HIERAS
/// (Figures 2 and 3; 4 landmarks, depth 2, as §4.2).
#[must_use]
pub fn size_sweep(
    kind: TopologyKind,
    sizes: &[usize],
    requests: usize,
    seed: u64,
) -> Vec<SizeRow> {
    sizes
        .iter()
        .map(|&nodes| {
            let cfg = ExperimentConfig {
                kind,
                nodes,
                requests,
                hieras: HierasConfig::paper(),
                seed: seed ^ (nodes as u64),
                rtt_noise: 0.0,
            };
            let e = Experiment::build(cfg);
            let r = e.run();
            SizeRow {
                kind: kind.label(),
                nodes,
                chord: r.chord.summary(),
                hieras: r.hieras.summary(),
            }
        })
        .collect()
}

/// One row of the landmark-count sweep (Figures 6 and 7).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LandmarkRow {
    /// Number of landmark nodes.
    pub landmarks: usize,
    /// Number of lower-layer rings the binning produced.
    pub rings: usize,
    /// Chord baseline summary (identical workload).
    pub chord: Summary,
    /// HIERAS summary.
    pub hieras: Summary,
}

/// Sweeps the number of landmarks on a fixed TS network (§4.4: 2–12
/// landmarks, 10 000 nodes, 100 000 requests).
#[must_use]
pub fn landmark_sweep(
    nodes: usize,
    requests: usize,
    landmarks: &[usize],
    seed: u64,
) -> Vec<LandmarkRow> {
    landmarks
        .iter()
        .map(|&lm| {
            let cfg = ExperimentConfig {
                kind: TopologyKind::TransitStub,
                nodes,
                requests,
                hieras: HierasConfig { depth: 2, landmarks: lm, binning: Binning::paper() },
                seed,
                rtt_noise: 0.0,
            };
            let e = Experiment::build(cfg);
            let rings = e.hieras.layers().last().expect("depth >= 1").ring_count();
            let r = e.run();
            LandmarkRow {
                landmarks: lm,
                rings,
                chord: r.chord.summary(),
                hieras: r.hieras.summary(),
            }
        })
        .collect()
}

/// One row of the hierarchy-depth sweep (Figures 8 and 9).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DepthRow {
    /// Number of peers.
    pub nodes: usize,
    /// Hierarchy depth.
    pub depth: usize,
    /// HIERAS summary (Chord is depth-independent; compare across rows).
    pub hieras: Summary,
    /// Chord baseline at this size, for reference.
    pub chord: Summary,
}

/// Sweeps hierarchy depth × network size (§4.5: depths 2–4, 5000–10000
/// nodes, 6 landmarks).
#[must_use]
pub fn depth_sweep(
    sizes: &[usize],
    depths: &[usize],
    requests: usize,
    seed: u64,
) -> Vec<DepthRow> {
    let mut rows = Vec::with_capacity(sizes.len() * depths.len());
    for &nodes in sizes {
        for &depth in depths {
            let cfg = ExperimentConfig {
                kind: TopologyKind::TransitStub,
                nodes,
                requests,
                hieras: HierasConfig { depth, landmarks: 6, binning: Binning::paper() },
                seed: seed ^ (nodes as u64),
                rtt_noise: 0.0,
            };
            let e = Experiment::build(cfg);
            let r = e.run();
            rows.push(DepthRow {
                nodes,
                depth,
                hieras: r.hieras.summary(),
                chord: r.chord.summary(),
            });
        }
    }
    rows
}

impl ToJson for SizeRow {
    fn to_json(&self) -> Json {
        Json::obj([
            ("kind", self.kind.to_json()),
            ("nodes", self.nodes.to_json()),
            ("chord", self.chord.to_json()),
            ("hieras", self.hieras.to_json()),
        ])
    }
}

impl ToJson for LandmarkRow {
    fn to_json(&self) -> Json {
        Json::obj([
            ("landmarks", self.landmarks.to_json()),
            ("rings", self.rings.to_json()),
            ("chord", self.chord.to_json()),
            ("hieras", self.hieras.to_json()),
        ])
    }
}

impl ToJson for DepthRow {
    fn to_json(&self) -> Json {
        Json::obj([
            ("nodes", self.nodes.to_json()),
            ("depth", self.depth.to_json()),
            ("hieras", self.hieras.to_json()),
            ("chord", self.chord.to_json()),
        ])
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn size_sweep_produces_one_row_per_size() {
        let rows = size_sweep(TopologyKind::TransitStub, &[100, 200], 300, 1);
        assert_eq!(rows.len(), 2);
        assert_eq!(rows[0].nodes, 100);
        assert!(rows[1].chord.avg_hops > rows[0].chord.avg_hops * 0.8);
        for r in &rows {
            assert_eq!(r.kind, "TS");
            assert_eq!(r.chord.requests, 300);
        }
    }

    #[test]
    fn landmark_sweep_ring_counts_grow() {
        let rows = landmark_sweep(200, 200, &[2, 6], 3);
        assert_eq!(rows.len(), 2);
        assert!(
            rows[1].rings >= rows[0].rings,
            "more landmarks should not shrink the ring count: {rows:?}"
        );
    }

    #[test]
    fn depth_sweep_covers_grid() {
        let rows = depth_sweep(&[150], &[2, 3], 200, 9);
        assert_eq!(rows.len(), 2);
        assert_eq!(rows[0].depth, 2);
        assert_eq!(rows[1].depth, 3);
    }
}
