//! Parameter sweeps behind the paper's figures.

use hieras_churn::{run_churn, run_churn_traced, ChurnExperimentConfig, ChurnObs, ChurnReport};
use hieras_core::{Binning, HierasConfig};
use hieras_rt::{Executor, Json, ToJson};
use hieras_sim::{ChurnConfig, Experiment, ExperimentConfig, Lifetime, Summary, TopologyKind};

/// One row of a network-size sweep (Figures 2 and 3).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SizeRow {
    /// Network model.
    pub kind: &'static str,
    /// Number of peers.
    pub nodes: usize,
    /// Chord baseline summary.
    pub chord: Summary,
    /// HIERAS summary.
    pub hieras: Summary,
}

/// Sweeps network size for one model, comparing Chord and HIERAS
/// (Figures 2 and 3; 4 landmarks, depth 2, as §4.2).
#[must_use]
pub fn size_sweep(
    kind: TopologyKind,
    sizes: &[usize],
    requests: usize,
    seed: u64,
) -> Vec<SizeRow> {
    sizes
        .iter()
        .map(|&nodes| {
            let cfg = ExperimentConfig {
                kind,
                nodes,
                requests,
                hieras: HierasConfig::paper(),
                seed: seed ^ (nodes as u64),
                rtt_noise: 0.0,
            };
            let e = Experiment::build(cfg);
            let r = e.run();
            SizeRow {
                kind: kind.label(),
                nodes,
                chord: r.chord.summary(),
                hieras: r.hieras.summary(),
            }
        })
        .collect()
}

/// One row of the landmark-count sweep (Figures 6 and 7).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LandmarkRow {
    /// Number of landmark nodes.
    pub landmarks: usize,
    /// Number of lower-layer rings the binning produced.
    pub rings: usize,
    /// Chord baseline summary (identical workload).
    pub chord: Summary,
    /// HIERAS summary.
    pub hieras: Summary,
}

/// Sweeps the number of landmarks on a fixed TS network (§4.4: 2–12
/// landmarks, 10 000 nodes, 100 000 requests).
#[must_use]
pub fn landmark_sweep(
    nodes: usize,
    requests: usize,
    landmarks: &[usize],
    seed: u64,
) -> Vec<LandmarkRow> {
    landmarks
        .iter()
        .map(|&lm| {
            let cfg = ExperimentConfig {
                kind: TopologyKind::TransitStub,
                nodes,
                requests,
                hieras: HierasConfig { depth: 2, landmarks: lm, binning: Binning::paper() },
                seed,
                rtt_noise: 0.0,
            };
            let e = Experiment::build(cfg);
            let rings = e.hieras.layers().last().expect("depth >= 1").ring_count();
            let r = e.run();
            LandmarkRow {
                landmarks: lm,
                rings,
                chord: r.chord.summary(),
                hieras: r.hieras.summary(),
            }
        })
        .collect()
}

/// One row of the hierarchy-depth sweep (Figures 8 and 9).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DepthRow {
    /// Number of peers.
    pub nodes: usize,
    /// Hierarchy depth.
    pub depth: usize,
    /// HIERAS summary (Chord is depth-independent; compare across rows).
    pub hieras: Summary,
    /// Chord baseline at this size, for reference.
    pub chord: Summary,
}

/// Sweeps hierarchy depth × network size (§4.5: depths 2–4, 5000–10000
/// nodes, 6 landmarks).
#[must_use]
pub fn depth_sweep(
    sizes: &[usize],
    depths: &[usize],
    requests: usize,
    seed: u64,
) -> Vec<DepthRow> {
    let mut rows = Vec::with_capacity(sizes.len() * depths.len());
    for &nodes in sizes {
        for &depth in depths {
            let cfg = ExperimentConfig {
                kind: TopologyKind::TransitStub,
                nodes,
                requests,
                hieras: HierasConfig { depth, landmarks: 6, binning: Binning::paper() },
                seed: seed ^ (nodes as u64),
                rtt_noise: 0.0,
            };
            let e = Experiment::build(cfg);
            let r = e.run();
            rows.push(DepthRow {
                nodes,
                depth,
                hieras: r.hieras.summary(),
                chord: r.chord.summary(),
            });
        }
    }
    rows
}

/// One row of the churn sweep: a scenario label plus the full
/// [`ChurnReport`] the engine produced for it.
#[derive(Debug, Clone, PartialEq)]
pub struct ChurnRow {
    /// Scenario label: `graceful`, `mixed`, `silent`, or `domain`.
    pub scenario: &'static str,
    /// Fraction of departures executed as graceful leaves.
    pub graceful_fraction: f64,
    /// The engine's full report.
    pub report: ChurnReport,
}

/// The departure scenarios the churn sweep compares: three independent
/// mixes plus `domain` — the `mixed` schedule with a correlated
/// stub-domain cut injected mid-run, so its row reads directly against
/// `mixed` to isolate what simultaneous site loss costs over the same
/// independent-death background.
const CHURN_SCENARIOS: [(&str, f64, bool); 4] = [
    ("graceful", 1.0, false),
    ("mixed", 0.5, false),
    ("silent", 0.0, false),
    ("domain", 0.5, true),
];

/// Runs the churn engine over the departure scenarios — all-graceful,
/// 50/50, all-silent, and 50/50 with a correlated stub-domain cut —
/// on identically sized populations.
///
/// Scenarios are farmed out across the executor one per chunk; each
/// engine run is strictly sequential and seeded, and the merge order
/// is fixed by chunk index, so the result (and its JSON) is
/// bit-identical at any thread count.
#[must_use]
pub fn churn_sweep(
    exec: &Executor,
    initial_nodes: u32,
    arrivals: u32,
    horizon_ms: u64,
    seed: u64,
) -> Vec<ChurnRow> {
    churn_sweep_impl(exec, initial_nodes, arrivals, horizon_ms, seed, None)
        .into_iter()
        .map(|(row, _)| row)
        .collect()
}

/// [`churn_sweep`] with observability on: each scenario additionally
/// returns its [`ChurnObs`] — the transport registry plus (when
/// `trace_capacity > 0`) the structured event stream. The rows are
/// bit-identical to what [`churn_sweep`] produces for the same inputs.
#[must_use]
pub fn churn_sweep_traced(
    exec: &Executor,
    initial_nodes: u32,
    arrivals: u32,
    horizon_ms: u64,
    seed: u64,
    trace_capacity: usize,
) -> Vec<(ChurnRow, ChurnObs)> {
    churn_sweep_impl(exec, initial_nodes, arrivals, horizon_ms, seed, Some(trace_capacity))
        .into_iter()
        .map(|(row, obs)| (row, obs.expect("obs requested")))
        .collect()
}

fn churn_sweep_impl(
    exec: &Executor,
    initial_nodes: u32,
    arrivals: u32,
    horizon_ms: u64,
    seed: u64,
    obs: Option<usize>,
) -> Vec<(ChurnRow, Option<ChurnObs>)> {
    exec.par_fold(
        CHURN_SCENARIOS.len(),
        1,
        Vec::new,
        |acc: &mut Vec<(ChurnRow, Option<ChurnObs>)>, i| {
            let (scenario, graceful_fraction, domain_cut) = CHURN_SCENARIOS[i];
            let churn = ChurnConfig {
                initial_nodes,
                arrivals,
                inter_arrival: Lifetime::Fixed { ms: horizon_ms / (arrivals as u64 + 1) },
                // Mean lifetime of 10x the horizon gives each initial
                // node a ~9.5 % chance of departing inside the run.
                lifetime: Lifetime::Exponential { mean_ms: 10.0 * horizon_ms as f64 },
                graceful_fraction,
                horizon_ms,
                seed: seed ^ ((i as u64) << 32),
            };
            let mut cfg = ChurnExperimentConfig::standard(churn);
            if graceful_fraction < 1.0 {
                // Widen the window in which silent failures are
                // observable: fewer maintenance rounds, more probes.
                cfg.lookups_per_event = 12;
                cfg.maintenance_every = 4;
            }
            if domain_cut {
                // Mid-run site cut: every schedule has at least
                // `arrivals` events, so the cut always fires.
                cfg.domain_fail =
                    Some(hieras_churn::DomainFail { after_event: (arrivals / 2).max(1) });
            }
            let (report, row_obs) = match obs {
                Some(cap) => {
                    let (report, o) = run_churn_traced(&cfg, cap);
                    (report, Some(o))
                }
                None => (run_churn(&cfg), None),
            };
            acc.push((ChurnRow { scenario, graceful_fraction, report }, row_obs));
        },
        |mut a, b| {
            a.extend(b);
            a
        },
    )
}

impl ToJson for ChurnRow {
    fn to_json(&self) -> Json {
        Json::obj([
            ("scenario", self.scenario.to_json()),
            ("graceful_fraction", self.graceful_fraction.to_json()),
            ("report", self.report.to_json()),
        ])
    }
}

impl ToJson for SizeRow {
    fn to_json(&self) -> Json {
        Json::obj([
            ("kind", self.kind.to_json()),
            ("nodes", self.nodes.to_json()),
            ("chord", self.chord.to_json()),
            ("hieras", self.hieras.to_json()),
        ])
    }
}

impl ToJson for LandmarkRow {
    fn to_json(&self) -> Json {
        Json::obj([
            ("landmarks", self.landmarks.to_json()),
            ("rings", self.rings.to_json()),
            ("chord", self.chord.to_json()),
            ("hieras", self.hieras.to_json()),
        ])
    }
}

impl ToJson for DepthRow {
    fn to_json(&self) -> Json {
        Json::obj([
            ("nodes", self.nodes.to_json()),
            ("depth", self.depth.to_json()),
            ("hieras", self.hieras.to_json()),
            ("chord", self.chord.to_json()),
        ])
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn size_sweep_produces_one_row_per_size() {
        let rows = size_sweep(TopologyKind::TransitStub, &[100, 200], 300, 1);
        assert_eq!(rows.len(), 2);
        assert_eq!(rows[0].nodes, 100);
        assert!(rows[1].chord.avg_hops > rows[0].chord.avg_hops * 0.8);
        for r in &rows {
            assert_eq!(r.kind, "TS");
            assert_eq!(r.chord.requests, 300);
        }
    }

    #[test]
    fn landmark_sweep_ring_counts_grow() {
        let rows = landmark_sweep(200, 200, &[2, 6], 3);
        assert_eq!(rows.len(), 2);
        assert!(
            rows[1].rings >= rows[0].rings,
            "more landmarks should not shrink the ring count: {rows:?}"
        );
    }

    #[test]
    fn churn_sweep_covers_all_scenarios() {
        let rows = churn_sweep(&Executor::new(2), 40, 4, 3000, 11);
        assert_eq!(rows.len(), 4);
        assert_eq!(rows[0].scenario, "graceful");
        assert_eq!(rows[1].scenario, "mixed");
        assert_eq!(rows[2].scenario, "silent");
        assert_eq!(rows[3].scenario, "domain");
        for r in &rows {
            assert!(r.report.hieras.lookups > 0, "{}: no lookups ran", r.scenario);
            assert!(r.report.population_start >= 40);
        }
        // The departure mix actually differs across scenarios.
        assert_eq!(rows[0].report.events.fails, 0, "graceful scenario saw silent fails");
        assert_eq!(rows[2].report.events.leaves, 0, "silent scenario saw graceful leaves");
        // Only the domain scenario takes the correlated cut, and it
        // kills a whole site at once.
        for r in &rows[..3] {
            assert_eq!(r.report.events.domain_killed, 0, "{}", r.scenario);
        }
        assert!(rows[3].report.events.domain_killed > 1, "the site cut must fire");
    }

    #[test]
    fn traced_churn_sweep_matches_plain() {
        let exec = Executor::new(2);
        let plain = churn_sweep(&exec, 40, 4, 3000, 11);
        let traced = churn_sweep_traced(&exec, 40, 4, 3000, 11, 0);
        assert_eq!(plain.len(), traced.len());
        for (p, (t, obs)) in plain.iter().zip(traced.iter()) {
            assert_eq!(p, t, "{}: obs must not perturb the report", p.scenario);
            assert!(!obs.registry.is_empty());
            assert!(obs.tracer.is_none(), "capacity 0 → no tracer");
        }
    }

    #[test]
    fn depth_sweep_covers_grid() {
        let rows = depth_sweep(&[150], &[2, 3], 200, 9);
        assert_eq!(rows.len(), 2);
        assert_eq!(rows[0].depth, 2);
        assert_eq!(rows[1].depth, 3);
    }
}
