//! Churn benchmark — resilience under membership turnover.
//!
//! Runs the deterministic churn engine over three departure mixes
//! (all-graceful, 50/50, all-silent) and writes one record per
//! scenario to `BENCH_churn.json`: lookup failure rates,
//! timeout-inflated latency summaries, and per-layer maintenance
//! overhead for both HIERAS and the dynamic Chord baseline.
//!
//! Run with `--smoke` for the CI-sized run (120 initial nodes);
//! the full run uses the acceptance scale (300 initial nodes, ≥ 5 %
//! turnover). `HIERAS_THREADS=n` pins the executor width — the
//! engine is strictly sequential per scenario, so the JSON is
//! bit-identical at any thread count.

use hieras_bench::churn_sweep;
use hieras_rt::{Executor, Json, ToJson};
use std::time::Instant;

/// Master seed shared with the figure harness (paper publication date).
const SEED: u64 = 20030415;

fn main() {
    let mut smoke = false;
    for arg in std::env::args().skip(1) {
        match arg.as_str() {
            "--smoke" => smoke = true,
            other => {
                eprintln!("unknown argument `{other}` (usage: churn [--smoke])");
                std::process::exit(2);
            }
        }
    }
    // (initial nodes, arrivals, horizon ms): smoke is CI-sized; the
    // full run matches the acceptance floor of ≥ 300 nodes and ≥ 5 %
    // membership turnover.
    let (initial, arrivals, horizon_ms) =
        if smoke { (120, 10, 8_000) } else { (300, 20, 12_000) };

    let exec = Executor::default();
    println!(
        "churn bench: {} thread(s), {} initial nodes{}",
        exec.threads(),
        initial,
        if smoke { " [smoke]" } else { "" }
    );

    let t0 = Instant::now();
    let rows = churn_sweep(&exec, initial, arrivals, horizon_ms, SEED);
    let wall_ms = t0.elapsed().as_secs_f64() * 1e3;

    for r in &rows {
        let h = &r.report.hieras;
        let c = &r.report.chord;
        println!(
            "{:>8} | turnover {:>5.1}% | hieras {:>3}/{:<4} failed ({:.3}) | \
             chord {:>3}/{:<4} failed ({:.3}) | timeouts {}",
            r.scenario,
            r.report.turnover * 100.0,
            h.failed(),
            h.lookups,
            h.failure_rate(),
            c.failed(),
            c.lookups,
            c.failure_rate(),
            r.report.timeouts_total,
        );
    }

    let out = Json::obj([
        ("bench", "churn".to_json()),
        ("seed", SEED.to_json()),
        ("threads", exec.threads().to_json()),
        ("smoke", smoke.to_json()),
        ("initial_nodes", initial.to_json()),
        ("arrivals", arrivals.to_json()),
        ("horizon_ms", horizon_ms.to_json()),
        ("wall_ms", wall_ms.to_json()),
        ("scenarios", rows.to_json()),
    ]);

    let path = "BENCH_churn.json";
    std::fs::write(path, out.dump_pretty()).expect("write benchmark output");
    println!("wrote {path}");
}
