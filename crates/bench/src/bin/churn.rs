//! Churn benchmark — resilience under membership turnover.
//!
//! Runs the deterministic churn engine over four departure scenarios
//! — all-graceful, 50/50, all-silent, and `domain` (the 50/50 mix
//! plus a correlated stub-domain cut fired mid-run, read against
//! `mixed` to price simultaneous site loss over the same
//! independent-death background) — and writes one record per scenario
//! to `BENCH_churn.json`: lookup failure rates, timeout-inflated
//! latency summaries, and per-layer maintenance overhead for both
//! HIERAS and the dynamic Chord baseline.
//!
//! Run with `--smoke` for the CI-sized run (120 initial nodes);
//! the full run uses the acceptance scale (300 initial nodes, ≥ 5 %
//! turnover). `HIERAS_THREADS=n` pins the executor width — the
//! engine is strictly sequential per scenario, so the JSON is
//! bit-identical at any thread count.
//!
//! `--obs` swaps in the instrumented engine: each scenario record
//! gains a registry snapshot (per-message-type `net.*` counters,
//! `lookup.*` / `join.*` histograms, `churn.*` event counters) and the
//! sim-windowed lookup time series (1 s windows over the schedule
//! horizon, renderable with `hieras-timeline`). The reports themselves
//! are bit-identical to an uninstrumented run.
//! `--trace-out <path.jsonl>` additionally writes every scenario's
//! span/instant stream (`churn.join`, `churn.leave`, `churn.repair`
//! spans with transport-level lookup/join spans nested beneath) as
//! one concatenated JSONL file, in scenario order.

use hieras_bench::{churn_sweep, churn_sweep_traced, ChurnRow};
use hieras_churn::ChurnObs;
use hieras_rt::{Executor, Json, ToJson};
use hieras_sim::WorkloadSpec;
use std::time::Instant;

/// Master seed shared with the figure harness (paper publication date).
const SEED: u64 = 20030415;

/// Per-scenario tracer capacity under `--trace-out`: large enough for
/// the smoke and full sweeps without unbounded growth.
const TRACE_CAP: usize = 1 << 18;

fn main() {
    let hieras_bench::BenchArgs { smoke, obs, trace_out, .. } =
        hieras_bench::BenchArgs::parse("churn", hieras_bench::BenchFlags::full());
    // (initial nodes, arrivals, horizon ms): smoke is CI-sized; the
    // full run matches the acceptance floor of ≥ 300 nodes and ≥ 5 %
    // membership turnover.
    let (initial, arrivals, horizon_ms) =
        if smoke { (120, 10, 8_000) } else { (300, 20, 12_000) };

    let exec = Executor::default();
    println!(
        "churn bench: {} thread(s), {} initial nodes{}{}",
        exec.threads(),
        initial,
        if smoke { " [smoke]" } else { "" },
        if obs { " [obs]" } else { "" }
    );

    let t0 = Instant::now();
    let (rows, scenario_obs): (Vec<ChurnRow>, Vec<Option<ChurnObs>>) = if obs {
        let cap = if trace_out.is_some() { TRACE_CAP } else { 0 };
        churn_sweep_traced(&exec, initial, arrivals, horizon_ms, SEED, cap)
            .into_iter()
            .map(|(row, o)| (row, Some(o)))
            .unzip()
    } else {
        churn_sweep(&exec, initial, arrivals, horizon_ms, SEED)
            .into_iter()
            .map(|row| (row, None))
            .unzip()
    };
    let wall_ms = t0.elapsed().as_secs_f64() * 1e3;

    for r in &rows {
        let h = &r.report.hieras;
        let c = &r.report.chord;
        println!(
            "{:>8} | turnover {:>5.1}% | hieras {:>3}/{:<4} failed ({:.3}) | \
             chord {:>3}/{:<4} failed ({:.3}) | timeouts {}",
            r.scenario,
            r.report.turnover * 100.0,
            h.failed(),
            h.lookups,
            h.failure_rate(),
            c.failed(),
            c.lookups,
            c.failure_rate(),
            r.report.timeouts_total,
        );
    }

    if let Some(path) = trace_out.as_deref() {
        let mut jsonl = String::new();
        let mut events = 0usize;
        for o in scenario_obs.iter().flatten() {
            if let Some(t) = &o.tracer {
                jsonl.push_str(&t.to_jsonl());
                events += t.len();
            }
        }
        if let Err(err) = std::fs::write(path, jsonl) {
            eprintln!("cannot write trace to `{path}`: {err}");
            std::process::exit(1);
        }
        println!("wrote {path} ({events} events)");
    }

    let scenarios: Vec<Json> = rows
        .iter()
        .zip(scenario_obs.iter())
        .map(|(row, o)| match o {
            Some(o) => {
                let Json::Obj(mut fields) = row.to_json() else {
                    unreachable!("ChurnRow serializes as an object")
                };
                fields.push(("registry".to_owned(), o.registry.to_json()));
                fields.push((
                    "timeseries_windows".to_owned(),
                    o.timeseries.window_count().to_json(),
                ));
                fields.push(("timeseries".to_owned(), o.timeseries.to_json()));
                Json::Obj(fields)
            }
            None => row.to_json(),
        })
        .collect();

    let out = Json::obj([
        ("bench", "churn".to_json()),
        ("seed", SEED.to_json()),
        ("threads", exec.threads().to_json()),
        ("smoke", smoke.to_json()),
        ("obs", obs.to_json()),
        ("initial_nodes", initial.to_json()),
        ("arrivals", arrivals.to_json()),
        ("horizon_ms", horizon_ms.to_json()),
        // The churn engine injects uniformly drawn lookups; every
        // bench artifact names the workload model it measured under.
        ("workload", WorkloadSpec::uniform(SEED).to_json()),
        ("wall_ms", wall_ms.to_json()),
        ("scenarios", Json::Arr(scenarios)),
    ]);

    let path = "BENCH_churn.json";
    std::fs::write(path, out.dump_pretty()).expect("write benchmark output");
    println!("wrote {path}");
}
