//! `hieras-timeline` — render, diff, validate and convert the
//! windowed-telemetry artifacts the benches emit.
//!
//! Four modes over the `hieras.timeseries/v1` JSONL stream that
//! `bench_live --timeseries-out` (and `ChurnObs::timeseries`) write:
//!
//! * `hieras-timeline <ts.jsonl>` — ASCII sparklines plus the
//!   per-window table (lookups/s, tail quantiles, failures, retries,
//!   epoch activity), SLO breaches and the flight recorder's slow
//!   lookups.
//! * `hieras-timeline --compare <a.jsonl> <b.jsonl>` — per-window
//!   deltas (`b - a`) for lookups, p99 and failures.
//! * `hieras-timeline --check <ts.jsonl>` — validation gate for CI:
//!   the stream must parse (schema tag, ascending windows) and
//!   re-serialize byte-identically; exits 1 otherwise.
//! * `hieras-timeline --chrome-trace <trace.jsonl> [out.json]` —
//!   converts a `hieras-obs` span/instant trace (`bench_replay
//!   --trace-out`, or the `.slow.jsonl` flight-recorder sibling) to
//!   Chrome trace-event JSON, loadable in `about:tracing` / Perfetto.

use hieras_bench::{timeline_compare, timeline_table};
use hieras_obs::{chrome_trace, TimeSeriesReport, Tracer};

const USAGE: &str = "usage: hieras-timeline <ts.jsonl>
       hieras-timeline --compare <a.jsonl> <b.jsonl>
       hieras-timeline --check <ts.jsonl>
       hieras-timeline --chrome-trace <trace.jsonl> [out.json]";

/// Reads and parses one time-series stream, mapping both I/O and
/// schema failures to a printable diagnostic.
fn load(path: &str) -> Result<TimeSeriesReport, String> {
    let text =
        std::fs::read_to_string(path).map_err(|e| format!("{path}: {e}"))?;
    TimeSeriesReport::parse_jsonl(&text).map_err(|e| format!("{path}: {}", e.0))
}

fn run(args: &[String]) -> Result<String, String> {
    match args {
        [path] if !path.starts_with("--") => Ok(timeline_table(&load(path)?)),
        [flag, a, b] if flag == "--compare" => {
            Ok(timeline_compare(&load(a)?, &load(b)?))
        }
        [flag, path] if flag == "--check" => {
            let text =
                std::fs::read_to_string(path).map_err(|e| format!("{path}: {e}"))?;
            let ts = TimeSeriesReport::parse_jsonl(&text)
                .map_err(|e| format!("{path}: {}", e.0))?;
            if ts.to_jsonl() != text {
                return Err(format!(
                    "{path}: stream does not round-trip byte-identically"
                ));
            }
            Ok(format!(
                "ok: {path} round-trips ({} windows x {} ms, {} clock, {} lookups)\n",
                ts.window_count(),
                ts.meta.window_ms,
                ts.meta.mode,
                ts.total_lookups()
            ))
        }
        [flag, input, rest @ ..] if flag == "--chrome-trace" && rest.len() <= 1 => {
            let text =
                std::fs::read_to_string(input).map_err(|e| format!("{input}: {e}"))?;
            let events =
                Tracer::parse_jsonl(&text).map_err(|e| format!("{input}: {}", e.0))?;
            let json = chrome_trace(&events).dump();
            match rest.first() {
                Some(out) => {
                    std::fs::write(out, &json).map_err(|e| format!("{out}: {e}"))?;
                    Ok(format!("wrote {out} ({} events)\n", events.len()))
                }
                None => Ok(json + "\n"),
            }
        }
        _ => Err(USAGE.to_owned()),
    }
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match run(&args) {
        Ok(out) => print!("{out}"),
        Err(msg) => {
            eprintln!("{msg}");
            std::process::exit(1);
        }
    }
}
