//! Scale sweep — how far the replay engine stretches.
//!
//! Sweeps the experiment over {1k, 5k, 20k, 100k, 1M} peers and, per
//! size, over the latency-oracle backends: the row cache (`rows`) and
//! the exact 2-hop hub labels (`labels`). Rows is skipped past 20k —
//! its O(N²) precompute is the 20-minute / 20 GB wall the labels
//! backend exists to remove — and each skip leaves an explicit
//! `"skipped": "row budget"` entry, so 100k and 1M are labels-only.
//! Per run it records:
//!
//! * **build_ms** — full assembly (topology → oracle → precompute),
//!   with the phase breakdown and the effective build thread count;
//! * **ns/lookup** — min/median/max over `REPS` timed repetitions of
//!   the parallel replay, after one explicitly discarded warm-up rep
//!   (each lookup evaluates *both* Chord and HIERAS allocation-free);
//! * **peak_rss_bytes** (and the `_mb` rendering) — the process
//!   high-water mark (`VmHWM` from `/proc/self/status`) at the end of
//!   the run's replay. The mark is monotonic per process, so within a
//!   size the rows run reads first; `scripts/verify.sh` gates the
//!   maximum against `scripts/rss_budget_bytes`;
//! * **metrics_match_rows** — on a labels run, whether its full replay
//!   metrics are byte-identical to the rows run of the same size
//!   (labels are exact, so anything but `true` is a bug);
//! * **label_stats** — hub count, label lengths, build ms, bytes;
//! * **cache probe** (labels entry, once per size) — a third,
//!   memory-*bounded* row oracle
//!   ([`hieras_topology::LatencyOracle::with_row_budget`]) driven by a
//!   sample of the same workload, reporting hit/miss/eviction counters
//!   through a [`hieras_obs::Registry`];
//! * the replayed Chord/HIERAS routing summaries, including the
//!   lower-layer hop and latency shares the paper's §4.3 tracks.
//!
//! Output goes to `BENCH_scale.json` (and stdout). `--smoke` runs the
//! CI-sized point (500 peers, 2000 requests, both backends) only;
//! `HIERAS_THREADS=n` pins the executor width.

use hieras_chord::PathBuf;
use hieras_obs::{names, Profiler, Registry};
use hieras_rt::{Executor, Json, ToJson};
use hieras_sim::{
    BuildOptions, ComparisonResult, Experiment, ExperimentConfig, OracleBackend, Workload,
    WorkloadSpec,
};
use hieras_topology::LatencyOracle;
use std::time::Instant;

/// Master seed shared with the figure harness (paper publication date).
const SEED: u64 = 20030415;

/// Timed repetitions of the replay per size; the median filters out
/// scheduler warm-up without needing criterion's statistics.
const REPS: usize = 5;

/// Requests driven through the bounded-cache probe. Small on purpose:
/// every probe miss is a fresh Dijkstra.
const PROBE_REQUESTS: usize = 500;

/// Peer count above which the rows backend is not swept: its build is
/// quadratic in routers and would dominate the whole sweep.
const ROWS_CEILING: usize = 20_000;

struct SizePoint {
    nodes: usize,
    requests: usize,
}

/// `VmHWM` (peak resident set) of this process in bytes, if the
/// platform exposes `/proc/self/status`.
fn peak_rss_bytes() -> Option<u64> {
    let status = std::fs::read_to_string("/proc/self/status").ok()?;
    let line = status.lines().find(|l| l.starts_with("VmHWM:"))?;
    let kb: u64 = line.split_whitespace().nth(1)?.parse().ok()?;
    Some(kb * 1024)
}

/// Replays a workload sample against a *budget-bounded* latency oracle
/// and reports the cache counters through a [`Registry`]. The probe
/// shares the experiment's routing structures — only the link-cost
/// source differs — so its hit pattern is the real workload's.
fn cache_probe(e: &Experiment, requests: usize) -> Json {
    let distinct = {
        let mut r = e.router_of.clone();
        r.sort_unstable();
        r.dedup();
        r.len()
    };
    let budget = (distinct / 8).max(32);
    let bounded = LatencyOracle::with_row_budget(e.topo.graph.clone(), budget);
    let w = Workload::new(e.config.nodes as u32, requests, e.config.seed ^ 0x517c_c1b7);
    let mut scratch = PathBuf::new();
    for i in 0..requests {
        let (src, key) = w.request(i);
        let _ = e.hieras.eval(src, key, &mut scratch, |a, b| {
            bounded.latency(e.router_of[a as usize], e.router_of[b as usize])
        });
    }
    let s = bounded.cache_stats();
    let mut reg = Registry::new();
    reg.inc_by(names::LATENCY_CACHE_HITS, s.hits);
    reg.inc_by(names::LATENCY_CACHE_MISSES, s.misses);
    reg.inc_by(names::LATENCY_CACHE_EVICTIONS, s.evictions);
    reg.gauge_set(names::LATENCY_CACHE_PINNED_ROWS, s.pinned as i64);
    reg.gauge_set(names::LATENCY_CACHE_RESIDENT_ROWS, s.resident as i64);
    reg.gauge_set(names::LATENCY_CACHE_ROW_BUDGET, budget as i64);
    let hit_rate = if s.hits + s.misses > 0 {
        s.hits as f64 / (s.hits + s.misses) as f64
    } else {
        0.0
    };
    Json::obj([
        ("requests", requests.to_json()),
        ("distinct_routers", distinct.to_json()),
        ("row_budget", budget.to_json()),
        ("hit_rate", hit_rate.to_json()),
        ("registry", reg.to_json()),
    ])
}

/// One (size, backend) run. `rows_baseline` carries the rows-backend
/// replay result of the same size so a labels run can prove byte
/// identity; the run's own result is returned for exactly that reuse.
fn bench_one(
    exec: &Executor,
    point: &SizePoint,
    oracle: OracleBackend,
    rows_baseline: Option<&ComparisonResult>,
) -> (Json, ComparisonResult) {
    let mut config = ExperimentConfig::paper(point.nodes, SEED);
    config.requests = point.requests;

    let mut prof = Profiler::new();
    let t0 = Instant::now();
    let e = Experiment::build_with(
        config.clone(),
        &mut prof,
        BuildOptions { exec: *exec, oracle, precompute: true },
    );
    let build_ms = t0.elapsed().as_secs_f64() * 1e3;

    // One warm-up repetition, timed but *discarded* from the stats —
    // it pays the page faults and scheduler spin-up, and its figure is
    // reported separately so a cold-start regression is still visible.
    let t = Instant::now();
    let mut result = e.run_requests_on(exec, point.requests);
    let warmup_ns = t.elapsed().as_secs_f64() * 1e9 / point.requests as f64;

    let mut per_lookup_ns: Vec<f64> = (0..REPS)
        .map(|_| {
            let t = Instant::now();
            result = e.run_requests_on(exec, point.requests);
            t.elapsed().as_secs_f64() * 1e9 / point.requests as f64
        })
        .collect();
    per_lookup_ns.sort_by(|a, b| a.partial_cmp(b).expect("timings are finite"));
    let min_ns = per_lookup_ns[0];
    let median_ns = per_lookup_ns[per_lookup_ns.len() / 2];
    let max_ns = per_lookup_ns[per_lookup_ns.len() - 1];

    // Read the high-water mark before the probe so the entry reflects
    // build + replay, not the probe's own bounded row cache.
    let rss = peak_rss_bytes();
    let rss_mb = rss.map(|b| b as f64 / (1024.0 * 1024.0));

    let metrics_match = rows_baseline.map(|base| *base == result);
    let label_stats = e.lat.label_stats().map(|(l, _)| {
        Json::obj([
            ("hubs", l.hubs.to_json()),
            ("entries", l.entries.to_json()),
            ("avg_len", l.avg_len.to_json()),
            ("max_len", l.max_len.to_json()),
            ("build_ms", l.build_ms.to_json()),
            ("bytes", e.lat.cache_bytes().to_json()),
        ])
    });
    // The probe depends only on structures identical across backends;
    // attaching it to the labels run keeps it once per size (labels
    // runs everywhere, rows does not).
    let probe = (oracle == OracleBackend::Labels).then(|| cache_probe(&e, PROBE_REQUESTS));

    let cs = result.chord.summary();
    let hs = result.hieras.summary();
    println!(
        "{:>7} peers | {:<6} | build {:>9.1} ms | replay {:>9.1} ns/lookup | rss {:>8.1} MB | \
         hieras {:.2} hops {:.0} ms ({:.1}% lower-layer latency){}",
        point.nodes,
        oracle.label(),
        build_ms,
        median_ns,
        rss_mb.unwrap_or(0.0),
        hs.avg_hops,
        hs.avg_latency_ms,
        hs.lower_latency_share * 100.0,
        match metrics_match {
            Some(true) => " | metrics == rows",
            Some(false) => " | METRICS DIVERGE FROM ROWS",
            None => "",
        }
    );

    let json = Json::obj([
        ("nodes", point.nodes.to_json()),
        ("requests", point.requests.to_json()),
        // The replay stream `run_requests_on` derives: uniform draws
        // from the experiment seed's workload sub-stream.
        ("workload", WorkloadSpec::uniform(SEED ^ 0x517c_c1b7).to_json()),
        ("backend", oracle.label().to_json()),
        ("build_threads", exec.threads().to_json()),
        ("build_ms", build_ms.to_json()),
        ("build_phases", prof.report().to_json()),
        ("warmup_ns_per_lookup", warmup_ns.to_json()),
        ("min_ns_per_lookup", min_ns.to_json()),
        ("median_ns_per_lookup", median_ns.to_json()),
        ("max_ns_per_lookup", max_ns.to_json()),
        ("ns_per_lookup", per_lookup_ns.to_json()),
        ("peak_rss_mb", rss_mb.map_or(Json::Null, |m| m.to_json())),
        ("peak_rss_bytes", rss.map_or(Json::Null, |b| b.to_json())),
        ("metrics_match_rows", metrics_match.map_or(Json::Null, |m| m.to_json())),
        ("label_stats", label_stats.unwrap_or(Json::Null)),
        ("cache_probe", probe.unwrap_or(Json::Null)),
        ("chord", cs.to_json()),
        ("hieras", hs.to_json()),
    ]);
    (json, result)
}

fn main() {
    let args =
        hieras_bench::BenchArgs::parse("bench_scale", hieras_bench::BenchFlags::smoke_only());
    let smoke = args.smoke;
    let points: Vec<SizePoint> = if smoke {
        vec![SizePoint { nodes: 500, requests: 2000 }]
    } else {
        vec![
            SizePoint { nodes: 1000, requests: 20_000 },
            SizePoint { nodes: 5000, requests: 20_000 },
            SizePoint { nodes: 20_000, requests: 10_000 },
            SizePoint { nodes: 100_000, requests: 5000 },
            SizePoint { nodes: 1_000_000, requests: 2000 },
        ]
    };

    let exec = Executor::default();
    println!(
        "scale bench: {} thread(s), {} size point(s){}",
        exec.threads(),
        points.len(),
        if smoke { " [smoke]" } else { "" }
    );

    let mut sizes: Vec<Json> = Vec::new();
    let mut diverged = false;
    for p in &points {
        // Rows first: it is both the byte-identity baseline and —
        // because VmHWM only ever rises — the run whose RSS reading
        // must not be inflated by a neighbour.
        let rows_result = if p.nodes <= ROWS_CEILING {
            let (json, result) = bench_one(&exec, p, OracleBackend::Rows, None);
            sizes.push(json);
            Some(result)
        } else {
            // An explicit marker instead of a silent hole: consumers
            // can tell "rows was not swept here" from "rows failed".
            sizes.push(Json::obj([
                ("nodes", p.nodes.to_json()),
                ("backend", OracleBackend::Rows.label().to_json()),
                ("skipped", "row budget".to_json()),
            ]));
            None
        };
        let (json, _) = bench_one(&exec, p, OracleBackend::Labels, rows_result.as_ref());
        if let Some(Json::Bool(false)) = json.get("metrics_match_rows") {
            diverged = true;
        }
        sizes.push(json);
    }

    let out = Json::obj([
        ("bench", "scale".to_json()),
        ("seed", SEED.to_json()),
        ("threads", exec.threads().to_json()),
        ("smoke", smoke.to_json()),
        ("reps", REPS.to_json()),
        ("sizes", Json::Arr(sizes)),
    ]);

    let path = "BENCH_scale.json";
    std::fs::write(path, out.dump_pretty()).expect("write benchmark output");
    println!("wrote {path}");
    assert!(!diverged, "labels-backend metrics diverged from the rows baseline");
}
