//! Live serving benchmark — lookups under churn via epoch snapshots.
//!
//! Exercises `hieras-serve`'s three run modes over one world and
//! reports them side by side in `BENCH_live.json`:
//!
//! 1. **quiesced** — the full membership at epoch 0, no maintenance.
//!    Replays the exact workload stream `bench_replay` uses, so its
//!    HIERAS routing summary is byte-identical to the replay bench's
//!    (CI asserts this); timed as min/median/max ns per lookup over
//!    several repetitions after a discarded warm-up, which is what the
//!    `scripts/live_budget_ns` throughput gate reads.
//! 2. **live_deterministic** — the executor arbitrates the
//!    reader/maintainer interleaving in lock step. Routing metrics are
//!    bit-identical at any executor width (1, 2 or 8 readers — CI
//!    checks that too), so the quality-under-churn figures are
//!    reproducible numbers, not races.
//! 3. **live** — free-running reader threads against a full-rate
//!    maintenance thread: sustained lookups/sec and latency tails
//!    (p50/p95/p99/p99.9) under real concurrent churn.
//!
//! The churn scenario turns over well above 5% of the initial
//! population inside the horizon, so the live rows measure serving
//! under load, not a static ring with a heartbeat. Run with `--smoke`
//! for the CI-sized run (500 peers); `--obs` adds the merged `serve.*`
//! registries per live mode; `HIERAS_THREADS=n` pins the executor.

use hieras_rt::{Executor, Json, ToJson};
use hieras_serve::{EpochStats, LiveReport, ServeConfig, ServeEngine};
use hieras_sim::{ChurnConfig, Experiment, ExperimentConfig, Lifetime};

/// Master seed shared with the figure harness (paper publication date).
const SEED: u64 = 20030415;

/// Timed repetitions of the quiesced replay; median filters warm-up.
const REPS: usize = 5;

struct Scenario {
    nodes: usize,
    requests: usize,
    churn: ChurnConfig,
    events_per_epoch: usize,
    lookups_per_epoch: usize,
    readers: usize,
    refresh_batch: usize,
}

impl Scenario {
    /// The CI-sized world: 500 peers, ~19% of the initial population
    /// departing inside the horizon (well above the 5% floor).
    fn smoke() -> Self {
        Scenario {
            nodes: 500,
            requests: 2000,
            churn: ChurnConfig {
                initial_nodes: 450,
                arrivals: 50,
                inter_arrival: Lifetime::Fixed { ms: 1_000 },
                lifetime: Lifetime::Exponential { mean_ms: 300_000.0 },
                graceful_fraction: 0.5,
                horizon_ms: 60_000,
                seed: SEED,
            },
            events_per_epoch: 4,
            lookups_per_epoch: 2000,
            readers: 4,
            refresh_batch: 64,
        }
    }

    /// The full run: 2000 peers under ~26% turnover.
    fn full() -> Self {
        Scenario {
            nodes: 2000,
            requests: 20_000,
            churn: ChurnConfig {
                initial_nodes: 1800,
                arrivals: 200,
                inter_arrival: Lifetime::Fixed { ms: 500 },
                lifetime: Lifetime::Exponential { mean_ms: 400_000.0 },
                graceful_fraction: 0.5,
                horizon_ms: 120_000,
                seed: SEED,
            },
            events_per_epoch: 8,
            lookups_per_epoch: 5000,
            readers: 4,
            refresh_batch: 64,
        }
    }

    fn serve_config(&self) -> ServeConfig {
        ServeConfig {
            churn: self.churn,
            readers: self.readers,
            events_per_epoch: self.events_per_epoch,
            lookups_per_epoch: self.lookups_per_epoch,
            refresh_batch: self.refresh_batch,
            seed: SEED ^ 0xb1e5_5e1f,
            rebin_every: 8,
            rebin_noise: 0.2,
        }
    }
}

fn epochs_json(s: &EpochStats) -> Json {
    Json::obj([
        ("published", s.published.to_json()),
        ("reclaimed", s.reclaimed.to_json()),
        ("retired", s.retired.to_json()),
        ("lag_peak", s.lag_peak.to_json()),
    ])
}

fn live_json(r: &LiveReport, obs: bool) -> Json {
    let mut fields = vec![
        ("hieras", r.metrics.summary().to_json()),
        ("lookups", r.lookups.to_json()),
        ("wall_ns", r.wall_ns.to_json()),
        ("lookups_per_sec", r.lookups_per_sec().to_json()),
        ("epochs", epochs_json(&r.epochs)),
        ("final_live", r.final_live.to_json()),
        ("turnover", r.turnover.to_json()),
    ];
    if obs {
        fields.push(("registry", r.registry.to_json()));
    }
    Json::obj(fields)
}

fn main() {
    let hieras_bench::BenchArgs { smoke, obs, .. } =
        hieras_bench::BenchArgs::parse("bench_live", hieras_bench::BenchFlags::with_obs());
    let sc = if smoke { Scenario::smoke() } else { Scenario::full() };

    let exec = Executor::default();
    println!(
        "live bench: {} thread(s), {} peers, {} readers{}{}",
        exec.threads(),
        sc.nodes,
        sc.readers,
        if smoke { " [smoke]" } else { "" },
        if obs { " [obs]" } else { "" }
    );

    let mut config = ExperimentConfig::paper(sc.nodes, SEED);
    config.requests = sc.requests;
    let exp = Experiment::build(config);
    let engine = ServeEngine::new(&exp, sc.serve_config());

    // Quiesced baseline: one discarded warm-up, then REPS timed reps.
    let warm = engine.run_quiesced(&exec, sc.requests);
    let warmup_ns = warm.wall_ns as f64 / sc.requests as f64;
    let mut quiesced = warm;
    let mut per_lookup_ns: Vec<f64> = (0..REPS)
        .map(|_| {
            quiesced = engine.run_quiesced(&exec, sc.requests);
            quiesced.wall_ns as f64 / sc.requests as f64
        })
        .collect();
    per_lookup_ns.sort_by(|a, b| a.partial_cmp(b).expect("timings are finite"));
    let median_ns = per_lookup_ns[per_lookup_ns.len() / 2];
    let qs = quiesced.metrics.summary();
    println!(
        "quiesced      | {:>9.0} ns/lookup | hieras {:.2} hops {:.0} ms (p99.9 {} ms)",
        median_ns, qs.avg_hops, qs.avg_latency_ms, qs.latency_tail.p999_ms
    );

    // Deterministic live serving: reproducible quality-under-churn.
    let det = engine.run_deterministic(&exec);
    let ds = det.metrics.summary();
    println!(
        "deterministic | {:>7} lookups over {:>3} epochs | hieras {:.2} hops {:.0} ms | \
         {} live of {}",
        det.lookups,
        det.epochs.published,
        ds.avg_hops,
        ds.avg_latency_ms,
        det.final_live,
        sc.nodes
    );

    // Free-running: real reader threads, wall-clock throughput.
    let live = engine.run_live();
    let ls = live.metrics.summary();
    println!(
        "live ({} rdr)  | {:>9.0} lookups/s | hieras {:.2} hops {:.0} ms (p99.9 {} ms) | \
         turnover {:.1}%",
        sc.readers,
        live.lookups_per_sec(),
        ls.avg_hops,
        ls.avg_latency_ms,
        ls.latency_tail.p999_ms,
        100.0 * live.turnover
    );

    let out = Json::obj([
        ("bench", "live".to_json()),
        ("seed", SEED.to_json()),
        ("threads", exec.threads().to_json()),
        ("smoke", smoke.to_json()),
        ("obs", obs.to_json()),
        ("reps", REPS.to_json()),
        ("nodes", sc.nodes.to_json()),
        ("requests", sc.requests.to_json()),
        (
            "churn",
            Json::obj([
                ("initial_nodes", sc.churn.initial_nodes.to_json()),
                ("arrivals", sc.churn.arrivals.to_json()),
                ("horizon_ms", sc.churn.horizon_ms.to_json()),
                ("lifetime", sc.churn.lifetime.to_json()),
                ("graceful_fraction", sc.churn.graceful_fraction.to_json()),
                ("turnover", det.turnover.to_json()),
            ]),
        ),
        // The quiesced block must stay the first `"hieras"` object in
        // the file: CI extracts it by position to compare against
        // `BENCH_replay.json`'s replayed summary byte for byte.
        (
            "quiesced",
            Json::obj([
                ("hieras", qs.to_json()),
                ("lookups", quiesced.lookups.to_json()),
                ("warmup_ns_per_lookup", warmup_ns.to_json()),
                ("min_ns_per_lookup", per_lookup_ns[0].to_json()),
                ("median_ns_per_lookup", median_ns.to_json()),
                ("max_ns_per_lookup", per_lookup_ns[per_lookup_ns.len() - 1].to_json()),
                ("ns_per_lookup", per_lookup_ns.to_json()),
            ]),
        ),
        ("live_deterministic", live_json(&det, obs)),
        ("live", live_json(&live, obs)),
    ]);

    let path = "BENCH_live.json";
    std::fs::write(path, out.dump_pretty()).expect("write benchmark output");
    println!("wrote {path}");
}
