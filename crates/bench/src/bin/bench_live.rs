//! Live serving benchmark — lookups under churn via epoch snapshots.
//!
//! Exercises `hieras-serve`'s three run modes over one world and
//! reports them side by side in `BENCH_live.json`:
//!
//! 1. **quiesced** — the full membership at epoch 0, no maintenance.
//!    Replays the exact workload stream `bench_replay` uses, so its
//!    HIERAS routing summary is byte-identical to the replay bench's
//!    (CI asserts this); timed as min/median/max ns per lookup over
//!    several repetitions after a discarded warm-up, which is what the
//!    `scripts/live_budget_ns` throughput gate reads.
//! 2. **live_deterministic** — the executor arbitrates the
//!    reader/maintainer interleaving in lock step. Routing metrics are
//!    bit-identical at any executor width (1, 2 or 8 readers — CI
//!    checks that too), so the quality-under-churn figures are
//!    reproducible numbers, not races. Runs with telemetry enabled:
//!    its row embeds the sim-windowed [`TimeSeriesReport`].
//! 3. **live** — free-running reader threads against a full-rate
//!    maintenance thread: sustained lookups/sec and latency tails
//!    (p50/p95/p99/p99.9) under real concurrent churn. Run twice,
//!    telemetry off (`live_baseline`) then on (`live`).
//!
//! `telemetry_overhead_pct` — the number the
//! `scripts/telemetry_overhead_pct` CI gate budgets — comes from the
//! quiesced repetitions, alternating telemetry off/on and comparing
//! the **fastest** rep of each side: the same per-lookup record path
//! the live readers run, timed deterministically, and scheduler noise
//! only ever inflates a rep, so min-vs-min converges on the true cost
//! where medians still wobble on a busy box. (The free-running rows
//! race reader threads against the scheduler — ±20 % rep to rep, too
//! noisy to gate a percent-level cost.)
//!
//! Every mode's row carries a `maintenance` object (rebuild count,
//! publish/rebuild/re-bin wall latencies) so the maintainer's side of
//! the ledger is visible, not just the readers'. `--timeseries-out
//! <path.jsonl>` additionally streams the deterministic run's windows
//! to `<path>`, the free-running run's to `<path>.live.jsonl` (well,
//! `…live.jsonl` next to it), and the deterministic flight recorder's
//! hop traces to a `.slow.jsonl` sibling — all renderable with
//! `hieras-timeline`.
//!
//! Two incremental-maintenance comparisons ride along:
//! `maintenance_full` vs `maintenance_incremental` replay the same
//! deterministic schedule with the delta rebuild path off and on,
//! reporting exact publish-latency percentiles side by side
//! (`incremental_publish_ratio` is the p50 quotient the
//! `scripts/incremental_publish_ratio` gate budgets, and
//! `delta_identity` asserts both runs published byte-identical
//! snapshots); `live_batched` re-runs the free-running row with
//! epoch-pinned batched readers (`batched_vs_single_ratio`).
//!
//! The churn scenario turns over well above 5% of the initial
//! population inside the horizon, so the live rows measure serving
//! under load, not a static ring with a heartbeat. Run with `--smoke`
//! for the CI-sized run (500 peers); `--obs` adds the merged `serve.*`
//! registries per live mode; `--pace <r>` throttles the free-running
//! maintainer to `r` sim-ms of schedule per wall-ms (the 60 s smoke
//! horizon at `--pace 50` spans 1.2 s of wall clock);
//! `HIERAS_THREADS=n` pins the executor.

use hieras_rt::{Executor, Json, ToJson};
use hieras_serve::{
    CacheConfig, EpochStats, LiveReport, MaintStats, ServeConfig, ServeEngine, TelemetryConfig,
    WorkloadReport,
};
use hieras_sim::{
    ChurnConfig, Experiment, ExperimentConfig, Lifetime, SkewParams, Workload, WorkloadModel,
    WorkloadSpec,
};

/// Master seed shared with the figure harness (paper publication date).
const SEED: u64 = 20030415;

/// Timed repetitions of the quiesced replay (alternating telemetry
/// off/on); the median filters warm-up and scheduler noise for the
/// throughput figure, the min anchors the overhead ratio.
const REPS: usize = 15;

/// Back-to-back quiesced runs aggregated into one timed rep — a
/// single smoke run is sub-millisecond, too short to time reliably.
const ROUNDS: usize = 4;

/// Incremental-maintenance threshold of the reported rows: a churn
/// batch touching at most this fraction of the hierarchy's rings is
/// applied as a delta onto the previous epoch. The
/// `maintenance_full` row re-runs the same schedule with the delta
/// path disabled for the side-by-side publish-latency comparison.
const DELTA_FRACTION: f64 = 0.6;

struct Scenario {
    nodes: usize,
    requests: usize,
    churn: ChurnConfig,
    events_per_epoch: usize,
    lookups_per_epoch: usize,
    readers: usize,
    refresh_batch: usize,
}

impl Scenario {
    /// The CI-sized world: 500 peers, ~19% of the initial population
    /// departing inside the horizon (well above the 5% floor).
    fn smoke() -> Self {
        Scenario {
            nodes: 500,
            requests: 2000,
            churn: ChurnConfig {
                initial_nodes: 450,
                arrivals: 50,
                inter_arrival: Lifetime::Fixed { ms: 1_000 },
                lifetime: Lifetime::Exponential { mean_ms: 300_000.0 },
                graceful_fraction: 0.5,
                horizon_ms: 60_000,
                seed: SEED,
            },
            events_per_epoch: 4,
            lookups_per_epoch: 2000,
            readers: 4,
            refresh_batch: 64,
        }
    }

    /// The full run: 2000 peers under ~26% turnover.
    fn full() -> Self {
        Scenario {
            nodes: 2000,
            requests: 20_000,
            churn: ChurnConfig {
                initial_nodes: 1800,
                arrivals: 200,
                inter_arrival: Lifetime::Fixed { ms: 500 },
                lifetime: Lifetime::Exponential { mean_ms: 400_000.0 },
                graceful_fraction: 0.5,
                horizon_ms: 120_000,
                seed: SEED,
            },
            events_per_epoch: 8,
            lookups_per_epoch: 5000,
            readers: 4,
            refresh_batch: 64,
        }
    }

    fn serve_config(&self, telemetry: TelemetryConfig) -> ServeConfig {
        ServeConfig {
            churn: self.churn,
            readers: self.readers,
            events_per_epoch: self.events_per_epoch,
            lookups_per_epoch: self.lookups_per_epoch,
            refresh_batch: self.refresh_batch,
            seed: SEED ^ 0xb1e5_5e1f,
            rebin_every: 8,
            rebin_noise: 0.2,
            telemetry,
            delta_max_ring_fraction: DELTA_FRACTION,
            batched: false,
            pace: 0.0,
            cache: CacheConfig::off(),
            workload: WorkloadModel::Uniform,
        }
    }
}

fn epochs_json(s: &EpochStats) -> Json {
    Json::obj([
        ("published", s.published.to_json()),
        ("reclaimed", s.reclaimed.to_json()),
        ("retired", s.retired.to_json()),
        ("lag_peak", s.lag_peak.to_json()),
    ])
}

fn live_json(r: &LiveReport, workload: WorkloadSpec, obs: bool) -> Json {
    let mut fields = vec![
        ("hieras", r.metrics.summary().to_json()),
        ("workload", workload.to_json()),
        ("lookups", r.lookups.to_json()),
        ("wall_ns", r.wall_ns.to_json()),
        ("lookups_per_sec", r.lookups_per_sec().to_json()),
        ("epochs", epochs_json(&r.epochs)),
        ("final_live", r.final_live.to_json()),
        ("turnover", r.turnover.to_json()),
        ("maintenance", r.maint.to_json()),
    ];
    if let Some(ts) = &r.timeseries {
        fields.push(("timeseries_windows", ts.window_count().to_json()));
        fields.push(("timeseries", ts.to_json()));
    }
    if obs {
        fields.push(("registry", r.registry.to_json()));
    }
    Json::obj(fields)
}

/// One timed quiesced rep: `rounds` back-to-back runs, returning the
/// last report and the summed wall time. A single smoke run lasts well
/// under a millisecond — too short to time against scheduler noise —
/// so each rep aggregates several runs. `#[inline(never)]` is
/// load-bearing: the off- and on-telemetry engines must execute the
/// *same* machine code for the overhead ratio to mean anything —
/// inlined separately, the two copies of the hot loop land at
/// different alignments and the comparison measures code layout
/// (5-8 % phantom "overhead" on this box), not telemetry.
#[inline(never)]
fn timed_quiesced(
    engine: &ServeEngine<'_>,
    exec: &Executor,
    requests: usize,
    rounds: usize,
) -> (hieras_serve::QuiescedReport, u64) {
    let mut ns = 0u64;
    let mut report = engine.run_quiesced(exec, requests);
    ns += report.wall_ns;
    for _ in 1..rounds {
        report = engine.run_quiesced(exec, requests);
        ns += report.wall_ns;
    }
    (report, ns)
}

/// `BENCH_ts.jsonl` → `BENCH_ts.<tag>.jsonl` (or plain suffixing when
/// the path has no `.jsonl` extension).
fn sibling(path: &str, tag: &str) -> String {
    path.strip_suffix(".jsonl")
        .map_or_else(|| format!("{path}.{tag}"), |stem| format!("{stem}.{tag}.jsonl"))
}

fn main() {
    let hieras_bench::BenchArgs { smoke, obs, timeseries_out, pace, .. } =
        hieras_bench::BenchArgs::parse("bench_live", hieras_bench::BenchFlags::live());
    let sc = if smoke { Scenario::smoke() } else { Scenario::full() };
    // --pace throttles the free-running maintainer to the schedule
    // clock (sim-ms per wall-ms); unset replays churn at full rate,
    // the historical behavior every throughput baseline compares to.
    let pace = pace.unwrap_or(0.0);

    let exec = Executor::default();
    println!(
        "live bench: {} thread(s), {} peers, {} readers{}{}",
        exec.threads(),
        sc.nodes,
        sc.readers,
        if smoke { " [smoke]" } else { "" },
        if obs { " [obs]" } else { "" }
    );

    let mut config = ExperimentConfig::paper(sc.nodes, SEED);
    config.requests = sc.requests;
    let exp = Experiment::build(config);
    // Two engines over the same world: the timed baselines run with
    // telemetry off, the observed runs with it on — the routing
    // metrics are identical either way (the serve tests assert it),
    // only the wall clock sees the difference.
    let mut cfg_off = sc.serve_config(TelemetryConfig::off());
    cfg_off.pace = pace;
    let mut cfg_on = sc.serve_config(TelemetryConfig::on());
    cfg_on.pace = pace;
    let engine = ServeEngine::new(&exp, cfg_off);
    let engine_tel = ServeEngine::new(&exp, cfg_on);
    // The descriptor every live row reports: the serve engines draw
    // their lookup stream from the serve seed under `cfg.workload`.
    let serve_spec = WorkloadSpec { model: cfg_off.workload, seed: cfg_off.seed };

    // Quiesced baseline: one discarded warm-up per engine, then REPS
    // timed reps, alternating telemetry off/on so both sides see the
    // same machine state. The off median feeds the `live_budget_ns`
    // gate; the off/on *min* ratio is the telemetry-overhead figure —
    // the same lookup hot path, timed deterministically, and noise
    // only ever slows a rep down, so the fastest rep of each side is
    // the stable estimate of the true per-lookup cost.
    let (warm, warm_ns) = timed_quiesced(&engine, &exec, sc.requests, ROUNDS);
    let warmup_ns = warm_ns as f64 / (ROUNDS * sc.requests) as f64;
    let _ = timed_quiesced(&engine_tel, &exec, sc.requests, ROUNDS);
    let mut quiesced = warm;
    let per_rep = (ROUNDS * sc.requests) as f64;
    let mut per_lookup_ns: Vec<f64> = Vec::with_capacity(REPS);
    let mut tel_lookup_ns: Vec<f64> = Vec::with_capacity(REPS);
    // Interleave the off/on reps and alternate which side goes first
    // within each pair: clock-frequency drift over the run then lands
    // on both sides equally instead of biasing whichever block ran
    // later.
    for rep in 0..REPS {
        if rep % 2 == 0 {
            let (q, ns) = timed_quiesced(&engine, &exec, sc.requests, ROUNDS);
            quiesced = q;
            per_lookup_ns.push(ns as f64 / per_rep);
            let (_, ns) = timed_quiesced(&engine_tel, &exec, sc.requests, ROUNDS);
            tel_lookup_ns.push(ns as f64 / per_rep);
        } else {
            let (_, ns) = timed_quiesced(&engine_tel, &exec, sc.requests, ROUNDS);
            tel_lookup_ns.push(ns as f64 / per_rep);
            let (q, ns) = timed_quiesced(&engine, &exec, sc.requests, ROUNDS);
            quiesced = q;
            per_lookup_ns.push(ns as f64 / per_rep);
        }
    }
    per_lookup_ns.sort_by(|a, b| a.partial_cmp(b).expect("timings are finite"));
    tel_lookup_ns.sort_by(|a, b| a.partial_cmp(b).expect("timings are finite"));
    let median_ns = per_lookup_ns[per_lookup_ns.len() / 2];
    let tel_median_ns = tel_lookup_ns[tel_lookup_ns.len() / 2];
    let (min_ns, tel_min_ns) = (per_lookup_ns[0], tel_lookup_ns[0]);
    let overhead_pct =
        if min_ns > 0.0 { 100.0 * (tel_min_ns - min_ns) / min_ns } else { 0.0 };
    let qs = quiesced.metrics.summary();
    println!(
        "quiesced      | {:>9.0} ns/lookup | hieras {:.2} hops {:.0} ms (p99.9 {} ms)",
        median_ns, qs.avg_hops, qs.avg_latency_ms, qs.latency_tail.p999_ms
    );

    // Deterministic live serving: reproducible quality-under-churn,
    // with the sim-windowed time series riding along.
    let det = engine_tel.run_deterministic(&exec);
    let ds = det.metrics.summary();
    println!(
        "deterministic | {:>7} lookups over {:>3} epochs | hieras {:.2} hops {:.0} ms | \
         {} live of {} | {} windows",
        det.lookups,
        det.epochs.published,
        ds.avg_hops,
        ds.avg_latency_ms,
        det.final_live,
        sc.nodes,
        det.timeseries.as_ref().map_or(0, hieras_obs::TimeSeriesReport::window_count)
    );

    // Full-vs-incremental maintenance, same schedule twice in the
    // deterministic mode (publish timings are wall-clock but the
    // maintainer runs unraced, so the comparison is stable): once with
    // the delta path disabled, once at the reported threshold. The two
    // runs must publish byte-identical snapshots — `delta_identity` is
    // the serve-level proof CI greps for.
    let mut mf = sc.serve_config(TelemetryConfig::off());
    mf.delta_max_ring_fraction = 0.0;
    let maint_full = ServeEngine::new(&exp, mf).run_deterministic(&exec);
    let mut mi = sc.serve_config(TelemetryConfig::off());
    mi.delta_max_ring_fraction = DELTA_FRACTION;
    let maint_incr = ServeEngine::new(&exp, mi).run_deterministic(&exec);
    let delta_identity = maint_incr.metrics == maint_full.metrics
        && maint_incr.maint.snapshot_digest == maint_full.maint.snapshot_digest;
    assert!(delta_identity, "delta rebuilds diverged from full rebuilds");
    let full_p50 = maint_full.maint.publish_quantile_us(0.50);
    let incr_p50 = maint_incr.maint.publish_quantile_us(0.50);
    let publish_ratio =
        if full_p50 > 0 { incr_p50 as f64 / full_p50 as f64 } else { 1.0 };
    println!(
        "maintenance   | publish p50 {:>6} µs full | {:>6} µs incremental | ratio {:.2} | \
         {}/{} delta rebuilds | identity ok",
        full_p50,
        incr_p50,
        publish_ratio,
        maint_incr.maint.delta_rebuilds,
        maint_incr.maint.rebuilds,
    );

    // Free-running, telemetry off for the throughput baseline, then
    // on — the reported rows — then once more with batched readers.
    let base = engine.run_live();
    let live = engine_tel.run_live();
    let mut cfg_batched = sc.serve_config(TelemetryConfig::on());
    cfg_batched.pace = pace;
    cfg_batched.batched = true;
    let batched = ServeEngine::new(&exp, cfg_batched).run_live();
    let off_rate = base.lookups_per_sec();
    let on_rate = live.lookups_per_sec();
    let batched_rate = batched.lookups_per_sec();
    let batched_ratio = if on_rate > 0.0 { batched_rate / on_rate } else { 1.0 };
    let ls = live.metrics.summary();
    println!(
        "live ({} rdr)  | {:>9.0} lookups/s | hieras {:.2} hops {:.0} ms (p99.9 {} ms) | \
         turnover {:.1}%",
        sc.readers,
        on_rate,
        ls.avg_hops,
        ls.avg_latency_ms,
        ls.latency_tail.p999_ms,
        100.0 * live.turnover
    );
    println!(
        "batched ({} rdr)| {:>9.0} lookups/s | {:.2}x single-lookup readers",
        sc.readers, batched_rate, batched_ratio
    );
    println!(
        "telemetry     | {:>9.0} ns/lookup off | {:>9.0} on | overhead {:+.1}% (min/min) | {} windows",
        min_ns,
        tel_min_ns,
        overhead_pct,
        live.timeseries.as_ref().map_or(0, hieras_obs::TimeSeriesReport::window_count)
    );

    // Workload-skew & caching sweep: uniform vs three Zipf exponents
    // vs a flash crowd, each replayed three ways against the same
    // world — the dual-algorithm replay (HIERAS-vs-Chord latency
    // ratio as skew sharpens), then the quiesced serving path with
    // the hot-key cache off and on (in verify mode, so every hit is
    // cross-checked against the authoritative route). Cached and
    // uncached runs must answer every request with the same owner
    // (`digest_identity`), and the uniform uncached run must be
    // byte-identical to the quiesced baseline (`cache_off_identity` —
    // the cache-off no-perturbation proof CI greps for).
    let mut cfg_cache = sc.serve_config(TelemetryConfig::off());
    cfg_cache.cache = CacheConfig::on().verified();
    let engine_cached = ServeEngine::new(&exp, cfg_cache);
    let workload_seed = SEED ^ 0x517c_c1b7;
    let skew_points: [(&str, WorkloadModel); 5] = [
        ("uniform", WorkloadModel::Uniform),
        ("zipf_0.8", WorkloadModel::Skew(SkewParams::zipf(0.8))),
        ("zipf_0.99", WorkloadModel::Skew(SkewParams::zipf(0.99))),
        ("zipf_1.2", WorkloadModel::Skew(SkewParams::zipf(1.2))),
        ("flash", WorkloadModel::Skew(SkewParams::flash_crowd())),
    ];
    let mut cache_off_identity = false;
    let mut zipf_smoke_hit_rate = 0.0;
    let mut cached_hot_p50_ratio = 1.0;
    let mut sweep_rows: Vec<Json> = Vec::with_capacity(skew_points.len());
    for (label, model) in skew_points {
        let w = Workload::with_model(sc.nodes as u32, sc.requests, workload_seed, model);
        let cmp = exp.run_workload_on(&exec, &w);
        let cs = cmp.chord.summary();
        let hs = cmp.hieras.summary();
        let latency_ratio =
            if cs.avg_latency_ms > 0.0 { hs.avg_latency_ms / cs.avg_latency_ms } else { 1.0 };
        let uncached = engine.run_quiesced_workload(&exec, &w);
        let cached = engine_cached.run_quiesced_workload(&exec, &w);
        assert_eq!(
            cached.owner_digest, uncached.owner_digest,
            "{label}: the cache changed a lookup's answer"
        );
        if matches!(model, WorkloadModel::Uniform) {
            cache_off_identity = uncached.metrics == quiesced.metrics;
            assert!(cache_off_identity, "cache-off uniform replay diverged from quiesced");
        }
        let hit_rate = cached.cache.hit_rate();
        let hot = |r: &WorkloadReport| {
            (r.hot.requests > 0).then(|| r.hot.summary().latency_tail.p50_ms)
        };
        let (hot_off, hot_on) = (hot(&uncached), hot(&cached));
        let hot_ratio = match (hot_off, hot_on) {
            (Some(off), Some(on)) if off > 0 => Some(f64::from(on) / f64::from(off)),
            _ => None,
        };
        if label == "zipf_0.99" {
            zipf_smoke_hit_rate = hit_rate;
            cached_hot_p50_ratio = hot_ratio.unwrap_or(1.0);
        }
        println!(
            "workload {label:>9} | hieras/chord latency {latency_ratio:.2} | \
             cache hit rate {:>5.1}% | hot p50 {} -> {} ms",
            100.0 * hit_rate,
            hot_off.map_or_else(|| "-".into(), |v| v.to_string()),
            hot_on.map_or_else(|| "-".into(), |v| v.to_string()),
        );
        let report_json = |r: &WorkloadReport| {
            Json::obj([
                ("hot_p50_ms", hot(r).map_or(Json::Null, |v| v.to_json())),
                ("p50_ms", r.metrics.summary().latency_tail.p50_ms.to_json()),
                ("hot_requests", r.hot.requests.to_json()),
                ("lookups", r.lookups.to_json()),
                ("wall_ns", r.wall_ns.to_json()),
                ("cache_hits", r.cache.hits.to_json()),
                ("cache_misses", r.cache.misses.to_json()),
                ("cache_admits", r.cache.admits.to_json()),
                ("cache_hit_rate", r.cache.hit_rate().to_json()),
            ])
        };
        sweep_rows.push(Json::obj([
            ("label", label.to_json()),
            ("workload", w.spec().to_json()),
            ("chord", cs.to_json()),
            ("hieras", hs.to_json()),
            ("hieras_vs_chord_latency", latency_ratio.to_json()),
            ("uncached", report_json(&uncached)),
            ("cached", report_json(&cached)),
            ("cached_hot_p50_ratio", hot_ratio.map_or(Json::Null, |v| v.to_json())),
            ("digest_identity", true.to_json()),
        ]));
    }

    if let Some(path) = timeseries_out.as_deref() {
        let det_ts = det.timeseries.as_ref().expect("deterministic run carries telemetry");
        let live_ts = live.timeseries.as_ref().expect("live run carries telemetry");
        std::fs::write(path, det_ts.to_jsonl()).expect("write deterministic time series");
        let live_path = sibling(path, "live");
        std::fs::write(&live_path, live_ts.to_jsonl()).expect("write live time series");
        let slow_path = sibling(path, "slow");
        std::fs::write(&slow_path, det_ts.slow_trace().to_jsonl())
            .expect("write flight-recorder trace");
        println!("wrote {path}, {live_path}, {slow_path}");
    }

    let out = Json::obj([
        ("bench", "live".to_json()),
        ("seed", SEED.to_json()),
        ("threads", exec.threads().to_json()),
        ("smoke", smoke.to_json()),
        ("obs", obs.to_json()),
        ("reps", REPS.to_json()),
        ("nodes", sc.nodes.to_json()),
        ("requests", sc.requests.to_json()),
        (
            "churn",
            Json::obj([
                ("initial_nodes", sc.churn.initial_nodes.to_json()),
                ("arrivals", sc.churn.arrivals.to_json()),
                ("horizon_ms", sc.churn.horizon_ms.to_json()),
                ("lifetime", sc.churn.lifetime.to_json()),
                ("graceful_fraction", sc.churn.graceful_fraction.to_json()),
                ("turnover", det.turnover.to_json()),
            ]),
        ),
        ("pace", pace.to_json()),
        ("delta_max_ring_fraction", DELTA_FRACTION.to_json()),
        ("delta_identity", delta_identity.to_json()),
        ("incremental_publish_ratio", publish_ratio.to_json()),
        ("batched_vs_single_ratio", batched_ratio.to_json()),
        ("telemetry_overhead_pct", overhead_pct.to_json()),
        ("telemetry_off_min_ns", min_ns.to_json()),
        ("telemetry_on_min_ns", tel_min_ns.to_json()),
        ("telemetry_on_median_ns", tel_median_ns.to_json()),
        ("telemetry_off_ns_per_lookup", per_lookup_ns.to_json()),
        ("telemetry_on_ns_per_lookup", tel_lookup_ns.to_json()),
        // Cache gates: every cached run re-verified each hit against
        // the authoritative route (`cache_verified`), the cache-off
        // uniform replay matched the quiesced baseline byte for byte,
        // and the Zipf(0.99) point supplies the hit-rate floor and the
        // hot-key speedup ceiling `scripts/verify.sh` budgets.
        ("cache_verified", true.to_json()),
        ("cache_off_identity", cache_off_identity.to_json()),
        ("zipf_smoke_hit_rate", zipf_smoke_hit_rate.to_json()),
        ("cached_hot_p50_ratio", cached_hot_p50_ratio.to_json()),
        // The quiesced block must stay the first `"hieras"` object in
        // the file: CI extracts it by position to compare against
        // `BENCH_replay.json`'s replayed summary byte for byte.
        (
            "quiesced",
            Json::obj([
                ("hieras", qs.to_json()),
                ("workload", WorkloadSpec::uniform(SEED ^ 0x517c_c1b7).to_json()),
                ("lookups", quiesced.lookups.to_json()),
                ("warmup_ns_per_lookup", warmup_ns.to_json()),
                ("min_ns_per_lookup", per_lookup_ns[0].to_json()),
                ("median_ns_per_lookup", median_ns.to_json()),
                ("max_ns_per_lookup", per_lookup_ns[per_lookup_ns.len() - 1].to_json()),
                ("ns_per_lookup", per_lookup_ns.to_json()),
                ("maintenance", MaintStats::default().to_json()),
            ]),
        ),
        // Full-vs-incremental maintenance over the same deterministic
        // schedule: wall-clock publish profiles side by side. No
        // `hieras` key — the delta-identity assertion above already
        // proved both runs' routing equal, and position-sensitive
        // extraction must not see one.
        ("maintenance_full", maint_full.maint.to_json()),
        ("maintenance_incremental", maint_incr.maint.to_json()),
        // Throughput baseline for the overhead gate: same free-running
        // scenario, telemetry off. No `hieras` key — its routing
        // numbers are a concurrent race, the `live` row already has
        // them, and position-sensitive extraction must not see it.
        (
            "live_baseline",
            Json::obj([
                ("lookups", base.lookups.to_json()),
                ("wall_ns", base.wall_ns.to_json()),
                ("lookups_per_sec", off_rate.to_json()),
                ("epochs", epochs_json(&base.epochs)),
                ("maintenance", base.maint.to_json()),
            ]),
        ),
        ("live_deterministic", live_json(&det, serve_spec, obs)),
        ("live", live_json(&live, serve_spec, obs)),
        ("live_batched", live_json(&batched, serve_spec, obs)),
        // The skew sweep rows carry their own `hieras` summaries, so
        // they must trail everything the position-sensitive quiesced
        // extraction could see.
        ("workload_sweep", Json::Arr(sweep_rows)),
    ]);

    let path = "BENCH_live.json";
    std::fs::write(path, out.dump_pretty()).expect("write benchmark output");
    println!("wrote {path}");
}
