//! Regenerates every table and figure of the HIERAS paper.
//!
//! ```text
//! cargo run --release -p hieras-bench --bin figures -- <id> [--full]
//! ids: table1 table2 table3 fig2 fig3 fig4 fig5 fig6 fig7 fig8 fig9
//!      costs ablate-noise ablate-can all
//! ```
//!
//! `--quick` (default) uses laptop-scale sizes; `--full` uses the
//! paper's 10 000-node networks and 100 000-request workloads.
//! Markdown goes to stdout; a JSON record of each artifact is written
//! to `results/<id>.json`.

use hieras_bench::render;
use hieras_bench::{depth_sweep, landmark_sweep, size_sweep};
use hieras_can::{CanOracle, HierCan};
use hieras_chord::DynChord;
use hieras_core::{Binning, CostReport, HierasConfig, HierasOracle, LandmarkOrder};
use hieras_id::{Id, IdSpace};
use hieras_pastry::PastryOracle;
use hieras_proto::SimNet;
use hieras_rt::{Json, ToJson};
use hieras_sim::{Experiment, ExperimentConfig, TopologyKind, Workload};
use std::sync::Arc;

/// Scale knobs for quick vs full (paper-scale) runs.
struct Scale {
    sizes: Vec<usize>,
    inet_sizes: Vec<usize>,
    depth_sizes: Vec<usize>,
    dist_nodes: usize,
    requests: usize,
    dist_requests: usize,
}

impl Scale {
    fn quick() -> Self {
        Scale {
            sizes: vec![500, 1000, 2000],
            inet_sizes: vec![3000],
            depth_sizes: vec![1000, 2000],
            dist_nodes: 2000,
            requests: 10_000,
            dist_requests: 20_000,
        }
    }

    fn full() -> Self {
        Scale {
            sizes: (1..=10).map(|k| k * 1000).collect(),
            inet_sizes: (3..=10).map(|k| k * 1000).collect(),
            depth_sizes: (5..=10).map(|k| k * 1000).collect(),
            dist_nodes: 10_000,
            requests: 100_000,
            dist_requests: 100_000,
        }
    }
}

const SEED: u64 = 20030415; // ICPP 2003 — any fixed seed works.

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let full = args.iter().any(|a| a == "--full");
    let scale = if full { Scale::full() } else { Scale::quick() };
    let ids: Vec<&str> = args.iter().filter(|a| !a.starts_with("--")).map(String::as_str).collect();
    let ids: Vec<&str> = if ids.is_empty() || ids.contains(&"all") {
        vec![
            "table1", "table2", "table3", "fig2", "fig3", "fig4", "fig5", "fig6", "fig7",
            "fig8", "fig9", "costs", "ablate-noise", "ablate-can", "compare-pastry",
        ]
    } else {
        ids
    };
    std::fs::create_dir_all("results").ok();
    for id in ids {
        let started = std::time::Instant::now();
        println!("\n## {id}\n");
        let json = match id {
            "table1" => table1(),
            "table2" => table2(),
            "table3" => table3(),
            "fig2" | "fig3" => fig23(id, &scale),
            "fig4" | "fig5" => fig45(id, &scale),
            "fig6" | "fig7" => fig67(id, &scale),
            "fig8" | "fig9" => fig89(id, &scale),
            "costs" => costs(&scale),
            "ablate-noise" => ablate_noise(&scale),
            "ablate-can" => ablate_can(),
            "compare-pastry" => compare_pastry(&scale),
            other => {
                eprintln!("unknown figure id: {other}");
                continue;
            }
        };
        let path = format!("results/{id}.json");
        if let Err(e) = std::fs::write(&path, json) {
            eprintln!("could not write {path}: {e}");
        }
        println!("\n_(generated in {:.1}s; JSON at {path})_", started.elapsed().as_secs_f64());
    }
}

/// Table 1: the distributed binning worked example, verbatim.
fn table1() -> String {
    let b = Binning::paper();
    let rows: [(&str, [u16; 4]); 6] = [
        ("A", [25, 5, 30, 100]),
        ("B", [40, 18, 12, 200]),
        ("C", [100, 180, 5, 10]),
        ("D", [160, 220, 8, 20]),
        ("E", [45, 10, 100, 5]),
        ("F", [20, 140, 50, 40]),
    ];
    println!("| Node | Dist-L1 | Dist-L2 | Dist-L3 | Dist-L4 | Order |");
    println!("|------|--------:|--------:|--------:|--------:|-------|");
    let mut out = Vec::new();
    for (node, rtts) in rows {
        let order = b.order(&rtts);
        println!(
            "| {node} | {}ms | {}ms | {}ms | {}ms | {} |",
            rtts[0], rtts[1], rtts[2], rtts[3], order
        );
        out.push(Json::obj([
            ("node", node.to_json()),
            ("rtts", rtts.to_json()),
            ("order", order.name().to_json()),
        ]));
    }
    Json::obj([("table1", out.to_json())]).dump()
}

/// The paper's Table 2 demo system: a 2^8 space, 3 landmarks, node 121
/// in ring "012".
fn table2_system() -> (HierasOracle, u32) {
    let space = IdSpace::new(8).expect("8-bit space");
    // (id, ring digits) — exactly the nodes the paper's Table 2 shows.
    let nodes: [(u64, [u8; 3]); 9] = [
        (121, [0, 1, 2]),
        (124, [0, 0, 1]),
        (131, [0, 1, 1]),
        (139, [0, 2, 2]),
        (143, [0, 1, 2]),
        (158, [0, 1, 2]),
        (192, [0, 0, 1]),
        (212, [0, 1, 2]),
        (253, [0, 1, 2]),
    ];
    let ids: Arc<[Id]> = nodes.iter().map(|&(v, _)| Id(v)).collect::<Vec<_>>().into();
    let orders = nodes.iter().map(|&(_, d)| LandmarkOrder(d.to_vec())).collect();
    let config = HierasConfig { depth: 2, landmarks: 3, binning: Binning::paper() };
    let oracle = HierasOracle::build(space, ids, orders, config).expect("demo system builds");
    (oracle, 0) // node index 0 = id 121
}

/// Table 2: node 121's two-layer finger tables.
fn table2() -> String {
    let (oracle, node) = table2_system();
    let rows = oracle.finger_rows(node);
    println!("| Start | Interval | Layer-1 successor | Layer-2 successor |");
    println!("|------:|----------|-------------------|-------------------|");
    let mut out = Vec::new();
    for r in &rows {
        let l1 = r.successors[0];
        let l2 = r.successors[1];
        let name = |n: u32| oracle.layers()[1].ring_name_of(n).name();
        println!(
            "| {} | [{},{}) | {} (\"{}\") | {} (\"{}\") |",
            r.start.raw(),
            r.start.raw(),
            r.end.raw(),
            oracle.id_of(l1).raw(),
            name(l1),
            oracle.id_of(l2).raw(),
            name(l2),
        );
        out.push(Json::obj([
            ("start", r.start.raw().to_json()),
            ("layer1", oracle.id_of(l1).raw().to_json()),
            ("layer2", oracle.id_of(l2).raw().to_json()),
        ]));
    }
    Json::obj([("table2", out.to_json())]).dump()
}

/// Table 3: ring-table structure of the demo system.
fn table3() -> String {
    let (oracle, _) = table2_system();
    println!("| Ringid | Ringname | Largest | 2nd largest | Smallest | 2nd smallest | Holder |");
    println!("|--------|----------|--------:|------------:|---------:|-------------:|-------:|");
    let mut names: Vec<&String> = oracle.ring_tables().keys().collect();
    names.sort();
    let mut out = Vec::new();
    for name in names {
        let t = &oracle.ring_tables()[name];
        let holder = oracle.id_of(oracle.ring_table_holder(t.ring_id)).raw();
        let f = |v: Option<Id>| v.map_or("-".into(), |i| i.raw().to_string());
        println!(
            "| {:.8}… | \"{}\" | {} | {} | {} | {} | {} |",
            t.ring_id,
            t.ring_name,
            f(t.largest()),
            f(t.second_largest()),
            f(t.smallest()),
            f(t.second_smallest()),
            holder,
        );
        out.push(Json::obj([
            ("ring", t.ring_name.to_json()),
            ("members", t.entry_points().iter().map(|i| i.raw()).collect::<Vec<_>>().to_json()),
            ("holder", holder.to_json()),
        ]));
    }
    Json::obj([("table3", out.to_json())]).dump()
}

/// Figures 2 & 3: hops / latency vs network size across models.
fn fig23(id: &str, scale: &Scale) -> String {
    let mut rows = Vec::new();
    for (kind, sizes) in [
        (TopologyKind::TransitStub, &scale.sizes),
        (TopologyKind::Inet, &scale.inet_sizes),
        (TopologyKind::Brite, &scale.sizes),
    ] {
        rows.extend(size_sweep(kind, sizes, scale.requests, SEED));
    }
    if id == "fig2" {
        print!("{}", render::fig2_table(&rows));
    } else {
        print!("{}", render::fig3_table(&rows));
    }
    hieras_rt::to_string_pretty(&rows)
}

/// Figures 4 & 5: hop PDF and latency CDF on one large TS network.
fn fig45(id: &str, scale: &Scale) -> String {
    let cfg = ExperimentConfig {
        kind: TopologyKind::TransitStub,
        nodes: scale.dist_nodes,
        requests: scale.dist_requests,
        hieras: HierasConfig::paper(),
        seed: SEED,
        rtt_noise: 0.0,
    };
    let e = Experiment::build(cfg);
    let r = e.run();
    let (cs, hs) = (r.chord.summary(), r.hieras.summary());
    if id == "fig4" {
        print!(
            "{}",
            render::pdf_table(
                &r.chord.hop_hist.pdf(),
                &r.hieras.hop_hist.pdf(),
                &r.hieras.lower_hop_hist.pdf()
            )
        );
        println!(
            "\navg hops: Chord {:.4}, HIERAS {:.4} ({:+.2}%); lower-layer hops/request {:.3} ({:.2}% of all hops)",
            cs.avg_hops,
            hs.avg_hops,
            (hs.avg_hops / cs.avg_hops - 1.0) * 100.0,
            hs.avg_lower_hops,
            hs.lower_hop_share * 100.0
        );
    } else {
        let chord_cdf = r.chord.latency_cdf();
        let hieras_cdf = r.hieras.latency_cdf();
        let points: Vec<(u32, f64, f64)> = chord_cdf
            .curve(30)
            .into_iter()
            .map(|(x, c)| (x, c, hieras_cdf.at(x)))
            .collect();
        print!("{}", render::cdf_table(&points));
        println!(
            "\navg latency: Chord {:.2} ms, HIERAS {:.2} ms ({:.2}% of Chord)",
            cs.avg_latency_ms,
            hs.avg_latency_ms,
            hs.avg_latency_ms / cs.avg_latency_ms * 100.0
        );
        println!(
            "avg link delay: top layer {:.2} ms, lower layers {:.3} ms; lower-layer latency share {:.2}%",
            hs.avg_link_delay_top_ms,
            hs.avg_link_delay_lower_ms,
            hs.lower_latency_share * 100.0
        );
    }
    Json::obj([
        ("chord", cs.to_json()),
        ("hieras", hs.to_json()),
        ("chord_pdf", r.chord.hop_hist.pdf().to_json()),
        ("hieras_pdf", r.hieras.hop_hist.pdf().to_json()),
        ("hieras_lower_pdf", r.hieras.lower_hop_hist.pdf().to_json()),
    ])
    .dump()
}

/// Figures 6 & 7: landmark-count sweep.
fn fig67(id: &str, scale: &Scale) -> String {
    let landmarks: Vec<usize> = (2..=12).collect();
    let rows = landmark_sweep(scale.dist_nodes, scale.requests, &landmarks, SEED);
    print!("{}", render::landmark_table(&rows));
    if id == "fig7" {
        if let Some(best) = rows.iter().min_by(|a, b| {
            (a.hieras.avg_latency_ms / a.chord.avg_latency_ms)
                .partial_cmp(&(b.hieras.avg_latency_ms / b.chord.avg_latency_ms))
                .expect("finite")
        }) {
            println!(
                "\nbest: {} landmarks — HIERAS latency {:.2}% of Chord",
                best.landmarks,
                best.hieras.avg_latency_ms / best.chord.avg_latency_ms * 100.0
            );
        }
    }
    hieras_rt::to_string_pretty(&rows)
}

/// Figures 8 & 9: hierarchy-depth sweep.
fn fig89(_id: &str, scale: &Scale) -> String {
    let rows = depth_sweep(&scale.depth_sizes, &[2, 3, 4], scale.requests, SEED);
    print!("{}", render::depth_table(&rows));
    hieras_rt::to_string_pretty(&rows)
}

/// §3.4 / §6 cost analysis: state per node and join message counts.
fn costs(scale: &Scale) -> String {
    let nodes = scale.dist_nodes.min(2000);
    println!("state cost (N = {nodes}, TS model, r = 8 successor list):\n");
    println!("| depth | finger entries | distinct fingers | succ-list entries | ring tables | bytes/node | vs Chord |");
    println!("|------:|---------------:|-----------------:|------------------:|------------:|-----------:|---------:|");
    let mut reports = Vec::new();
    let mut base: Option<CostReport> = None;
    for depth in 1..=4usize {
        let cfg = ExperimentConfig {
            kind: TopologyKind::TransitStub,
            nodes,
            requests: 0,
            hieras: HierasConfig {
                depth,
                landmarks: if depth == 1 { 0 } else { 6 },
                binning: Binning::paper(),
            },
            seed: SEED,
            rtt_noise: 0.0,
        };
        let e = Experiment::build(cfg);
        let rep = CostReport::for_oracle(&e.hieras, 8);
        let overhead = base.as_ref().map_or(1.0, |b| rep.overhead_vs(b));
        println!(
            "| {} | {} | {} | {} | {} | {:.0} | {:.2}x |",
            rep.depth,
            rep.finger_entries,
            rep.distinct_finger_entries,
            rep.succ_list_entries,
            rep.ring_table_count,
            rep.bytes_per_node,
            overhead
        );
        if depth == 1 {
            base = Some(rep);
        }
        reports.push(rep);
    }

    // Join message counts: HIERAS protocol joins vs dynamic-Chord joins.
    let cfg = ExperimentConfig {
        kind: TopologyKind::TransitStub,
        nodes: 400,
        requests: 0,
        hieras: HierasConfig::paper(),
        seed: SEED,
        rtt_noise: 0.0,
    };
    let e = Experiment::build(cfg);
    let lat = &e.lat;
    let router_of = e.router_of.clone();
    let ids = e.ids.clone();
    let idx_of = move |id: Id| ids.iter().position(|&i| i == id);
    let mut net = SimNet::from_oracle(&e.hieras, &e.landmarks, move |a, b| {
        match (idx_of(a), idx_of(b)) {
            (Some(x), Some(y)) => {
                u64::from(lat.latency(router_of[x], router_of[y]))
            }
            _ => 30, // joining node not yet placed: nominal delay
        }
    });
    let mut join_msgs = Vec::new();
    for j in 0..10u64 {
        let new_id = Id::hash_of(format!("joiner-{j}").as_bytes());
        let boot = e.ids[(j as usize * 37) % e.ids.len()];
        let out = net.join(new_id, boot, &[15, 40, 120, 60]);
        join_msgs.push(out.messages);
    }
    let chord_join = {
        let mut dyn_net = DynChord::new(IdSpace::full(), 8);
        dyn_net.create(Id::hash_of(b"seed")).expect("fresh network");
        for i in 0..200u64 {
            dyn_net
                .join(Id::hash_of(format!("n{i}").as_bytes()), Id::hash_of(b"seed"))
                .expect("distinct ids");
            dyn_net.stabilize_round();
            dyn_net.stabilize_round();
        }
        dyn_net.fix_all_fingers();
        dyn_net.reset_stats();
        for i in 0..10u64 {
            dyn_net
                .join(Id::hash_of(format!("j{i}").as_bytes()), Id::hash_of(b"n3"))
                .expect("distinct ids");
            dyn_net.stabilize_round();
        }
        dyn_net.stats()
    };
    let hieras_avg = join_msgs.iter().sum::<u64>() as f64 / join_msgs.len() as f64;
    println!(
        "\njoin cost: HIERAS (2-layer, message-level) {:.1} msgs/join; dynamic Chord {:.1} msgs/join (incl. stabilize)",
        hieras_avg,
        chord_join.total() as f64 / 10.0
    );
    Json::obj([
        ("state", reports.to_json()),
        ("hieras_join_msgs", join_msgs.to_json()),
        ("chord_join_msgs_total", chord_join.total().to_json()),
    ])
    .dump()
}

/// Binning-noise ablation: does ping inaccuracy break the win?
fn ablate_noise(scale: &Scale) -> String {
    println!("| rtt noise | HIERAS ms | Chord ms | ratio | lower-hop share |");
    println!("|----------:|----------:|---------:|------:|----------------:|");
    let mut out = Vec::new();
    for noise in [0.0, 0.2, 0.5, 1.0] {
        let cfg = ExperimentConfig {
            kind: TopologyKind::TransitStub,
            nodes: scale.dist_nodes.min(2000),
            requests: scale.requests.min(20_000),
            hieras: HierasConfig::paper(),
            seed: SEED,
            rtt_noise: noise,
        };
        let e = Experiment::build(cfg);
        let r = e.run();
        let (c, h) = (r.chord.summary(), r.hieras.summary());
        println!(
            "| {:.1} | {:.1} | {:.1} | {:.1}% | {:.1}% |",
            noise,
            h.avg_latency_ms,
            c.avg_latency_ms,
            h.avg_latency_ms / c.avg_latency_ms * 100.0,
            h.lower_hop_share * 100.0
        );
        out.push(Json::obj([
            ("noise", noise.to_json()),
            ("chord", c.to_json()),
            ("hieras", h.to_json()),
        ]));
    }
    Json::obj([("ablate_noise", out.to_json())]).dump()
}

/// HIERAS-over-CAN: the §3.2 transplant, CAN vs hierarchical CAN.
fn ablate_can() -> String {
    let cfg = ExperimentConfig {
        kind: TopologyKind::TransitStub,
        nodes: 1000,
        requests: 0,
        hieras: HierasConfig::paper(),
        seed: SEED,
        rtt_noise: 0.0,
    };
    let e = Experiment::build(cfg);
    let n = e.ids.len();
    let dims = 3;
    let can = CanOracle::build(n, dims, SEED).expect("CAN builds");
    let hier = HierCan::build(&e.orders, dims, SEED).expect("HierCan builds");
    let w = Workload::new(n as u32, 10_000, SEED ^ 0xca);
    let (mut ch, mut cl, mut hh, mut hl, mut lower) = (0u64, 0u64, 0u64, 0u64, 0u64);
    for (src, key) in w.iter() {
        let r = can.route(src, key);
        ch += r.hops() as u64;
        for pair in r.path.windows(2) {
            cl += u64::from(e.peer_latency(pair[0], pair[1]));
        }
        let hops = hier.route(src, key);
        hh += hops.len() as u64;
        for hp in &hops {
            hl += u64::from(e.peer_latency(hp.from, hp.to));
            lower += u64::from(hp.lower);
        }
    }
    let req = w.requests as f64;
    println!("| system | avg hops | avg latency ms | lower-hop share |");
    println!("|--------|---------:|---------------:|----------------:|");
    println!("| CAN (d={dims}) | {:.3} | {:.1} | - |", ch as f64 / req, cl as f64 / req);
    println!(
        "| HIERAS-CAN | {:.3} | {:.1} | {:.1}% |",
        hh as f64 / req,
        hl as f64 / req,
        lower as f64 / hh.max(1) as f64 * 100.0
    );
    println!(
        "\nHIERAS-CAN latency = {:.2}% of plain CAN",
        hl as f64 / cl as f64 * 100.0
    );
    Json::obj([
        ("can", Json::obj([
            ("hops", (ch as f64 / req).to_json()),
            ("latency", (cl as f64 / req).to_json()),
        ])),
        ("hier_can", Json::obj([
            ("hops", (hh as f64 / req).to_json()),
            ("latency", (hl as f64 / req).to_json()),
        ])),
    ])
    .dump()
}

/// §6 future work: HIERAS vs Pastry (with proximity neighbour
/// selection) vs Chord on the same TS network and workload.
fn compare_pastry(scale: &Scale) -> String {
    let nodes = scale.dist_nodes.min(3000);
    let requests = scale.requests.min(20_000);
    let cfg = ExperimentConfig {
        kind: TopologyKind::TransitStub,
        nodes,
        requests,
        hieras: HierasConfig::paper(),
        seed: SEED,
        rtt_noise: 0.0,
    };
    let e = Experiment::build(cfg);
    let pastry = PastryOracle::build(e.ids.clone(), |a, b| e.peer_latency(a, b))
        .expect("distinct ids");
    let w = Workload::new(nodes as u32, requests, SEED ^ 0x517c_c1b7);
    let (mut ph, mut pl) = (0u64, 0u64);
    for (src, key) in w.iter() {
        let r = pastry.route(src, key);
        ph += r.hops() as u64;
        for pair in r.path.windows(2) {
            pl += u64::from(e.peer_latency(pair[0], pair[1]));
        }
    }
    let r = e.run();
    let (c, h) = (r.chord.summary(), r.hieras.summary());
    let req = requests as f64;
    println!("| system | avg hops | avg latency ms | vs Chord latency |");
    println!("|--------|---------:|---------------:|-----------------:|");
    println!("| Chord | {:.3} | {:.1} | 100% |", c.avg_hops, c.avg_latency_ms);
    println!(
        "| Pastry (proximity) | {:.3} | {:.1} | {:.1}% |",
        ph as f64 / req,
        pl as f64 / req,
        pl as f64 / req / c.avg_latency_ms * 100.0
    );
    println!(
        "| HIERAS | {:.3} | {:.1} | {:.1}% |",
        h.avg_hops,
        h.avg_latency_ms,
        h.avg_latency_ms / c.avg_latency_ms * 100.0
    );
    println!("
note: Pastry resolves to the numerically-closest node; Chord/HIERAS to the");
    println!("successor. Destinations differ per key, but each system pays its own full");
    println!("lookup, so the latency comparison is fair.");
    Json::obj([
        ("chord", c.to_json()),
        ("hieras", h.to_json()),
        ("pastry", Json::obj([
            ("hops", (ph as f64 / req).to_json()),
            ("latency", (pl as f64 / req).to_json()),
        ])),
    ])
    .dump()
}
