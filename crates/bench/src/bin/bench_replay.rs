//! Replay benchmark — the in-tree replacement for the criterion suite.
//!
//! Times the two expensive phases of an experiment:
//!
//! 1. **build** — topology generation, landmark measurement, binning,
//!    and oracle construction (`Experiment::build`), reported in ms;
//! 2. **replay** — the parallel lookup replay
//!    (`Experiment::run_requests_on`), reported as min/median/max ns
//!    per lookup over several timed repetitions after one explicitly
//!    discarded warm-up rep. Each lookup evaluates
//!    *both* Chord and HIERAS on the same `(src, key)` pair, so the
//!    figure is directly comparable across commits.
//!
//! Output goes to `BENCH_replay.json` (and stdout): one record per
//! network size with the timing plus the replayed Chord/HIERAS routing
//! summaries (including p50/p95/p99 tail latency), the executor thread
//! count, and the config. Run with `--smoke` for the CI-sized run
//! (500 peers, 2000 requests); `HIERAS_THREADS=n` pins the executor
//! width.
//!
//! `--obs` adds an observability section per size point: the
//! per-phase wall-clock tree of the build, a merged replay registry
//! (hop/latency histograms per algorithm), and a message-level probe
//! whose `net.send.*` / `net.deliver.*` counters break the traffic
//! down by payload kind. The timed repetitions stay on the untraced
//! path, so `--obs` does not perturb the reported ns/lookup.
//! `--trace-out <path.jsonl>` additionally writes the probe's
//! per-lookup spans (with per-hop instants) as JSONL.

use hieras_bench::message_probe;
use hieras_obs::Profiler;
use hieras_rt::{Executor, Json, ToJson};
use hieras_sim::{Experiment, ExperimentConfig, WorkloadSpec};
use std::time::Instant;

/// Master seed shared with the figure harness (paper publication date).
const SEED: u64 = 20030415;

/// Timed repetitions of the replay per size; the median filters out
/// scheduler warm-up without needing criterion's statistics.
const REPS: usize = 5;

/// Lookups driven through the message-level probe under `--obs`.
const PROBE_LOOKUPS: usize = 200;

/// Ring-buffer capacity of the probe tracer: comfortably holds every
/// open/hop/close event of the probe sample.
const PROBE_TRACE_CAP: usize = 1 << 16;

struct SizePoint {
    nodes: usize,
    requests: usize,
}

struct ObsOpts<'a> {
    enabled: bool,
    trace_out: Option<&'a str>,
}

fn bench_one(exec: &Executor, point: &SizePoint, obs: &ObsOpts) -> Json {
    let mut config = ExperimentConfig::paper(point.nodes, SEED);
    config.requests = point.requests;

    let mut prof = Profiler::new();
    let t0 = Instant::now();
    let e = Experiment::build_profiled(config.clone(), &mut prof);
    let build_ms = t0.elapsed().as_secs_f64() * 1e3;

    // One warm-up repetition, timed but *discarded* from the stats —
    // it pays the page faults and scheduler spin-up, and its figure is
    // reported separately so a cold-start regression is still visible.
    let t = Instant::now();
    let mut result = e.run_requests_on(exec, point.requests);
    let warmup_ns = t.elapsed().as_secs_f64() * 1e9 / point.requests as f64;

    // Then REPS timed repetitions, always on the untraced path.
    prof.start("timed_replay");
    let mut per_lookup_ns: Vec<f64> = (0..REPS)
        .map(|_| {
            let t = Instant::now();
            result = e.run_requests_on(exec, point.requests);
            t.elapsed().as_secs_f64() * 1e9 / point.requests as f64
        })
        .collect();
    prof.end();
    per_lookup_ns.sort_by(|a, b| a.partial_cmp(b).expect("timings are finite"));
    let min_ns = per_lookup_ns[0];
    let median_ns = per_lookup_ns[per_lookup_ns.len() / 2];
    let max_ns = per_lookup_ns[per_lookup_ns.len() - 1];

    let cs = result.chord.summary();
    let hs = result.hieras.summary();
    println!(
        "{:>6} peers | build {:>8.1} ms | replay {:>9.0} ns/lookup | \
         chord {:.2} hops {:.0} ms | hieras {:.2} hops {:.0} ms",
        point.nodes, build_ms, median_ns, cs.avg_hops, cs.avg_latency_ms, hs.avg_hops,
        hs.avg_latency_ms
    );

    let mut fields = vec![
        ("nodes", point.nodes.to_json()),
        ("requests", point.requests.to_json()),
        // The replay stream `run_requests_on` derives: uniform draws
        // from the experiment seed's workload sub-stream.
        ("workload", WorkloadSpec::uniform(config.seed ^ 0x517c_c1b7).to_json()),
        ("build_ms", build_ms.to_json()),
        ("warmup_ns_per_lookup", warmup_ns.to_json()),
        ("min_ns_per_lookup", min_ns.to_json()),
        ("median_ns_per_lookup", median_ns.to_json()),
        ("max_ns_per_lookup", max_ns.to_json()),
        ("ns_per_lookup", per_lookup_ns.to_json()),
        ("chord", cs.to_json()),
        ("hieras", hs.to_json()),
    ];

    if obs.enabled {
        // One instrumented replay for the per-algorithm registry, and a
        // message-level probe for the per-message-type breakdown. Both
        // run after the timed reps and do not touch their figures.
        prof.start("obs_replay");
        let (_, replay_reg) = e.run_requests_traced(exec, point.requests);
        prof.end();
        prof.start("obs_probe");
        let probe = message_probe(&e, PROBE_LOOKUPS, PROBE_TRACE_CAP);
        prof.end();
        if let Some(path) = obs.trace_out {
            if let Err(err) = std::fs::write(path, probe.tracer.to_jsonl()) {
                eprintln!("cannot write trace to `{path}`: {err}");
                std::process::exit(1);
            }
            println!("wrote {path} ({} events)", probe.tracer.len());
        }
        fields.push((
            "obs",
            Json::obj([
                ("phases", prof.report().to_json()),
                ("replay_registry", replay_reg.to_json()),
                ("probe_lookups", probe.lookups.to_json()),
                ("probe_hops", probe.total_hops.to_json()),
                ("probe_registry", probe.registry.to_json()),
            ]),
        ));
    }
    Json::obj(fields)
}

fn main() {
    let hieras_bench::BenchArgs { smoke, obs, trace_out, .. } =
        hieras_bench::BenchArgs::parse("bench_replay", hieras_bench::BenchFlags::full());
    let points: Vec<SizePoint> = if smoke {
        vec![SizePoint { nodes: 500, requests: 2000 }]
    } else {
        [1000usize, 3000, 5000]
            .iter()
            .map(|&nodes| SizePoint { nodes, requests: 20_000 })
            .collect()
    };

    let exec = Executor::default();
    println!(
        "replay bench: {} thread(s), {} size point(s){}{}",
        exec.threads(),
        points.len(),
        if smoke { " [smoke]" } else { "" },
        if obs { " [obs]" } else { "" }
    );

    let sizes: Vec<Json> = points
        .iter()
        .map(|p| bench_one(&exec, p, &ObsOpts { enabled: obs, trace_out: trace_out.as_deref() }))
        .collect();
    let out = Json::obj([
        ("bench", "replay".to_json()),
        ("seed", SEED.to_json()),
        ("threads", exec.threads().to_json()),
        ("smoke", smoke.to_json()),
        ("obs", obs.to_json()),
        ("reps", REPS.to_json()),
        ("sizes", Json::Arr(sizes)),
    ]);

    let path = "BENCH_replay.json";
    std::fs::write(path, out.dump_pretty()).expect("write benchmark output");
    println!("wrote {path}");
}
