//! Replay benchmark — the in-tree replacement for the criterion suite.
//!
//! Times the two expensive phases of an experiment:
//!
//! 1. **build** — topology generation, landmark measurement, binning,
//!    and oracle construction (`Experiment::build`), reported in ms;
//! 2. **replay** — the parallel lookup replay
//!    (`Experiment::run_requests_on`), reported as min/median/max ns
//!    per lookup over several timed repetitions after one explicitly
//!    discarded warm-up rep. Each lookup evaluates
//!    *both* Chord and HIERAS on the same `(src, key)` pair, so the
//!    figure is directly comparable across commits.
//!
//! Output goes to `BENCH_replay.json` (and stdout): one record per
//! network size with the timing plus the replayed Chord/HIERAS routing
//! summaries, the executor thread count, and the config. Run with
//! `--smoke` for the CI-sized run (500 peers, 2000 requests);
//! `HIERAS_THREADS=n` pins the executor width.

use hieras_rt::{Executor, Json, ToJson};
use hieras_sim::{Experiment, ExperimentConfig};
use std::time::Instant;

/// Master seed shared with the figure harness (paper publication date).
const SEED: u64 = 20030415;

/// Timed repetitions of the replay per size; the median filters out
/// scheduler warm-up without needing criterion's statistics.
const REPS: usize = 5;

struct SizePoint {
    nodes: usize,
    requests: usize,
}

fn bench_one(exec: &Executor, point: &SizePoint) -> Json {
    let mut config = ExperimentConfig::paper(point.nodes, SEED);
    config.requests = point.requests;

    let t0 = Instant::now();
    let e = Experiment::build(config.clone());
    let build_ms = t0.elapsed().as_secs_f64() * 1e3;

    // One warm-up repetition, timed but *discarded* from the stats —
    // it pays the page faults and scheduler spin-up, and its figure is
    // reported separately so a cold-start regression is still visible.
    let t = Instant::now();
    let mut result = e.run_requests_on(exec, point.requests);
    let warmup_ns = t.elapsed().as_secs_f64() * 1e9 / point.requests as f64;

    // Then REPS timed repetitions.
    let mut per_lookup_ns: Vec<f64> = (0..REPS)
        .map(|_| {
            let t = Instant::now();
            result = e.run_requests_on(exec, point.requests);
            t.elapsed().as_secs_f64() * 1e9 / point.requests as f64
        })
        .collect();
    per_lookup_ns.sort_by(|a, b| a.partial_cmp(b).expect("timings are finite"));
    let min_ns = per_lookup_ns[0];
    let median_ns = per_lookup_ns[per_lookup_ns.len() / 2];
    let max_ns = per_lookup_ns[per_lookup_ns.len() - 1];

    let cs = result.chord.summary();
    let hs = result.hieras.summary();
    println!(
        "{:>6} peers | build {:>8.1} ms | replay {:>9.0} ns/lookup | \
         chord {:.2} hops {:.0} ms | hieras {:.2} hops {:.0} ms",
        point.nodes, build_ms, median_ns, cs.avg_hops, cs.avg_latency_ms, hs.avg_hops,
        hs.avg_latency_ms
    );

    Json::obj([
        ("nodes", point.nodes.to_json()),
        ("requests", point.requests.to_json()),
        ("build_ms", build_ms.to_json()),
        ("warmup_ns_per_lookup", warmup_ns.to_json()),
        ("min_ns_per_lookup", min_ns.to_json()),
        ("median_ns_per_lookup", median_ns.to_json()),
        ("max_ns_per_lookup", max_ns.to_json()),
        ("ns_per_lookup", per_lookup_ns.to_json()),
        ("chord", cs.to_json()),
        ("hieras", hs.to_json()),
    ])
}

fn main() {
    let mut smoke = false;
    for arg in std::env::args().skip(1) {
        match arg.as_str() {
            "--smoke" => smoke = true,
            other => {
                eprintln!("unknown argument `{other}` (usage: bench_replay [--smoke])");
                std::process::exit(2);
            }
        }
    }
    let points: Vec<SizePoint> = if smoke {
        vec![SizePoint { nodes: 500, requests: 2000 }]
    } else {
        [1000usize, 3000, 5000]
            .iter()
            .map(|&nodes| SizePoint { nodes, requests: 20_000 })
            .collect()
    };

    let exec = Executor::default();
    println!(
        "replay bench: {} thread(s), {} size point(s){}",
        exec.threads(),
        points.len(),
        if smoke { " [smoke]" } else { "" }
    );

    let sizes: Vec<Json> = points.iter().map(|p| bench_one(&exec, p)).collect();
    let out = Json::obj([
        ("bench", "replay".to_json()),
        ("seed", SEED.to_json()),
        ("threads", exec.threads().to_json()),
        ("smoke", smoke.to_json()),
        ("reps", REPS.to_json()),
        ("sizes", Json::Arr(sizes)),
    ]);

    let path = "BENCH_replay.json";
    std::fs::write(path, out.dump_pretty()).expect("write benchmark output");
    println!("wrote {path}");
}
