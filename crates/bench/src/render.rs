//! Markdown renderers for the figures binary and EXPERIMENTS.md.

use crate::{DepthRow, LandmarkRow, SizeRow};
use std::fmt::Write as _;

/// Renders Figure 2 (average hops vs network size) as markdown.
#[must_use]
pub fn fig2_table(rows: &[SizeRow]) -> String {
    let mut s = String::new();
    let _ = writeln!(s, "| model | nodes | Chord hops | HIERAS hops | HIERAS/Chord |");
    let _ = writeln!(s, "|-------|------:|-----------:|------------:|-------------:|");
    for r in rows {
        let _ = writeln!(
            s,
            "| {} | {} | {:.4} | {:.4} | {:+.2}% |",
            r.kind,
            r.nodes,
            r.chord.avg_hops,
            r.hieras.avg_hops,
            (r.hieras.avg_hops / r.chord.avg_hops - 1.0) * 100.0
        );
    }
    s
}

/// Renders Figure 3 (average latency vs network size) as markdown.
#[must_use]
pub fn fig3_table(rows: &[SizeRow]) -> String {
    let mut s = String::new();
    let _ = writeln!(s, "| model | nodes | Chord ms | HIERAS ms | HIERAS/Chord |");
    let _ = writeln!(s, "|-------|------:|---------:|----------:|-------------:|");
    for r in rows {
        let _ = writeln!(
            s,
            "| {} | {} | {:.1} | {:.1} | {:.2}% |",
            r.kind,
            r.nodes,
            r.chord.avg_latency_ms,
            r.hieras.avg_latency_ms,
            r.hieras.avg_latency_ms / r.chord.avg_latency_ms * 100.0
        );
    }
    s
}

/// Renders Figures 6/7 (landmark sweep) as markdown.
#[must_use]
pub fn landmark_table(rows: &[LandmarkRow]) -> String {
    let mut s = String::new();
    let _ = writeln!(
        s,
        "| landmarks | rings | Chord hops | HIERAS hops | lower hops | Chord ms | HIERAS ms | ratio |"
    );
    let _ = writeln!(
        s,
        "|----------:|------:|-----------:|------------:|-----------:|---------:|----------:|------:|"
    );
    for r in rows {
        let _ = writeln!(
            s,
            "| {} | {} | {:.3} | {:.3} | {:.3} | {:.1} | {:.1} | {:.1}% |",
            r.landmarks,
            r.rings,
            r.chord.avg_hops,
            r.hieras.avg_hops,
            r.hieras.avg_lower_hops,
            r.chord.avg_latency_ms,
            r.hieras.avg_latency_ms,
            r.hieras.avg_latency_ms / r.chord.avg_latency_ms * 100.0
        );
    }
    s
}

/// Renders Figures 8/9 (depth sweep) as markdown.
#[must_use]
pub fn depth_table(rows: &[DepthRow]) -> String {
    let mut s = String::new();
    let _ = writeln!(s, "| nodes | depth | HIERAS hops | HIERAS ms | Chord ms | ratio |");
    let _ = writeln!(s, "|------:|------:|------------:|----------:|---------:|------:|");
    for r in rows {
        let _ = writeln!(
            s,
            "| {} | {} | {:.3} | {:.1} | {:.1} | {:.1}% |",
            r.nodes,
            r.depth,
            r.hieras.avg_hops,
            r.hieras.avg_latency_ms,
            r.chord.avg_latency_ms,
            r.hieras.avg_latency_ms / r.chord.avg_latency_ms * 100.0
        );
    }
    s
}

/// Renders a PDF histogram comparison (Figure 4).
#[must_use]
pub fn pdf_table(chord: &[f64], hieras: &[f64], hieras_lower: &[f64]) -> String {
    let mut s = String::new();
    let _ = writeln!(s, "| hops | Chord | HIERAS | HIERAS lower-layer |");
    let _ = writeln!(s, "|-----:|------:|-------:|-------------------:|");
    let len = chord.len().max(hieras.len()).max(hieras_lower.len());
    for h in 0..len {
        let g = |v: &[f64]| v.get(h).copied().unwrap_or(0.0);
        let _ = writeln!(
            s,
            "| {} | {:.4} | {:.4} | {:.4} |",
            h,
            g(chord),
            g(hieras),
            g(hieras_lower)
        );
    }
    s
}

/// Renders a latency CDF comparison (Figure 5).
#[must_use]
pub fn cdf_table(points: &[(u32, f64, f64)]) -> String {
    let mut s = String::new();
    let _ = writeln!(s, "| latency ms | Chord CDF | HIERAS CDF |");
    let _ = writeln!(s, "|-----------:|----------:|-----------:|");
    for (x, c, h) in points {
        let _ = writeln!(s, "| {x} | {c:.4} | {h:.4} |");
    }
    s
}

#[cfg(test)]
mod tests {
    use super::*;
    use hieras_sim::Summary;

    fn summary(hops: f64, ms: f64) -> Summary {
        Summary {
            requests: 10,
            avg_hops: hops,
            avg_latency_ms: ms,
            avg_lower_hops: 1.0,
            lower_hop_share: 0.5,
            lower_latency_share: 0.3,
            avg_link_delay_top_ms: 80.0,
            avg_link_delay_lower_ms: 25.0,
            latency_tail: hieras_sim::TailLatency {
                p50_ms: ms as u32,
                p95_ms: ms as u32,
                p99_ms: ms as u32,
                p999_ms: ms as u32,
            },
        }
    }

    #[test]
    fn tables_contain_all_rows_and_ratios() {
        let rows = vec![SizeRow {
            kind: "TS",
            nodes: 1000,
            chord: summary(6.0, 500.0),
            hieras: summary(6.1, 250.0),
        }];
        let t2 = fig2_table(&rows);
        assert!(t2.contains("| TS | 1000 |"));
        assert!(t2.contains("+1.67%"));
        let t3 = fig3_table(&rows);
        assert!(t3.contains("50.00%"));
    }

    #[test]
    fn pdf_table_pads_ragged_series() {
        let t = pdf_table(&[0.5, 0.5], &[1.0], &[0.2, 0.3, 0.5]);
        assert!(t.contains("| 2 | 0.0000 | 0.0000 | 0.5000 |"));
    }

    #[test]
    fn cdf_table_renders_points() {
        let t = cdf_table(&[(0, 0.0, 0.1), (100, 0.5, 0.9)]);
        assert!(t.contains("| 100 | 0.5000 | 0.9000 |"));
    }

    #[test]
    fn depth_and_landmark_tables_render() {
        let d = depth_table(&[DepthRow {
            nodes: 5000,
            depth: 3,
            hieras: summary(6.2, 240.0),
            chord: summary(6.0, 500.0),
        }]);
        assert!(d.contains("| 5000 | 3 |"));
        let l = landmark_table(&[LandmarkRow {
            landmarks: 8,
            rings: 40,
            chord: summary(6.0, 500.0),
            hieras: summary(5.9, 216.0),
        }]);
        assert!(l.contains("| 8 | 40 |"));
    }
}
